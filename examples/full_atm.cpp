// The complete ATM system (paper Section 7.2 future work): all basic ATM
// tasks under the real-time executive, with the unsimplified multi-tower
// radar environment.
//
//   $ ./full_atm [aircraft] [--multi-radar]
//
// Demonstrates: the extended schedule (tracking + display every period,
// collision + terrain every cycle, voice advisories every 4 s), terrain
// attachment, and the multi-return correlation.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/atm/extended/full_pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace atm;

  std::size_t aircraft = 1500;
  bool multi_radar = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--multi-radar") == 0) {
      multi_radar = true;
    } else {
      aircraft = static_cast<std::size_t>(std::atoll(argv[i]));
    }
  }

  auto backend = tasks::make_titan_x_pascal();
  tasks::extended::FullSystemConfig cfg = tasks::make_full_config(
      tasks::paper_airfield(), /*major_cycles=*/2, /*seed=*/2018);
  cfg.aircraft = aircraft;
  cfg.multi_radar = multi_radar;

  const auto result = tasks::extended::run_full_system(*backend, cfg);

  std::cout << "platform : " << backend->name() << "\n"
            << "aircraft : " << aircraft << "\n"
            << "radar    : "
            << (multi_radar ? "multi-tower (all radar processed)"
                            : "single-return (paper's simplification)")
            << "\n";
  if (multi_radar) {
    std::cout << "coverage : " << result.mean_coverage
              << " returns per aircraft\n";
  }
  std::cout << "\n" << result.monitor.summary() << "\n";

  if (multi_radar) {
    std::cout << "correlation: " << result.last_multi.matched_aircraft
              << " aircraft matched, " << result.last_multi.redundant_returns
              << " redundant returns, " << result.last_multi.discarded_returns
              << " discarded\n";
  } else {
    std::cout << "correlation: " << result.last_task1.matched
              << " matched, " << result.last_task1.unmatched_radars
              << " unmatched\n";
  }
  std::cout << "collision  : " << result.last_task23.conflicts
            << " in conflict, " << result.last_task23.resolved
            << " resolved\n"
            << "terrain    : " << result.last_terrain.warnings
            << " warnings, " << result.last_terrain.climbs << " climbs\n"
            << "advisories : " << result.last_advisory.total() << " ("
            << result.last_advisory.conflict << " conflict, "
            << result.last_advisory.terrain << " terrain, "
            << result.last_advisory.boundary << " boundary)\n"
            << "display    : " << result.last_display.occupied_sectors
            << " occupied sectors, busiest holds "
            << result.last_display.max_occupancy << "\n\n";

  const auto bad =
      result.monitor.total_missed() + result.monitor.total_skipped();
  std::cout << (bad == 0
                    ? "the complete system is viable: every deadline met.\n"
                    : "deadlines missed/skipped: " + std::to_string(bad) +
                          "\n");
  return 0;
}
