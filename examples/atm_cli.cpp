// atm_cli — drive the whole library from the command line.
//
//   $ ./atm_cli --platform titanx --scenario dense-en-route --cycles 2
//   $ ./atm_cli --platform staran --aircraft 4000 --multi-radar
//   $ ./atm_cli --list
//
// Options:
//   --list                 print platforms and scenarios, then exit
//   --list-scenarios       print the scenario registry (one line each)
//   --platform NAME        9800gt | 880m | titanx | staran | clearspeed |
//                          xeon | phi | reference        (default titanx)
//   --scenario NAME        one of the preset scenarios    (default paper-airfield)
//   --aircraft N           override the scenario's fleet size
//   --cycles N             major cycles to run            (default 1)
//   --seed N               simulation seed                (default 42)
//   --broadphase MODE      brute | grid: host-path candidate enumeration
//                          for Task 1 and Tasks 2+3 (default: scenario's;
//                          outcomes identical either way)
//   --shard MODE           none | sectors: host-path sector sharding —
//                          sectors runs Task 1 and Tasks 2+3 per airfield
//                          sector on the thread pool (default: scenario's;
//                          outcomes identical either way)
//   --sectors N            sectors per axis in sectors mode (default 4)
//   --kernel MODE          auto | scalar | avx2: host-path batch kernel
//                          for Task 1 and Tasks 2+3 (default auto = AVX2
//                          when the build and CPU provide it; outcomes
//                          bit-identical either way)
//   --governor             enable the deadline-aware overload governor
//                          (degrades along tasks::degradation_ladder()
//                          under sustained overload, recovers with
//                          hysteresis; transitions appear in --trace)
//   --faults               enable a representative seeded fault mix:
//                          radar dropout bursts, ghost returns, noise
//                          bursts, and stolen host time
//   --multi-radar          use the multi-tower radar environment
//   --full                 run the complete ATM system (terrain, display,
//                          advisory, sporadic) instead of the core tasks
//   --retrace ID           after the run, print aircraft ID's last 16
//                          recorded positions (core pipeline only)
//   --trace FILE.jsonl     write one JSONL trace event per line (spans,
//                          tasks, deadline outcomes); summarize with
//                          tools/trace_summary.py
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>

#include "src/airfield/history.hpp"
#include "src/atm/extended/full_pipeline.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/scenarios.hpp"
#include "src/core/kern/kernels.hpp"
#include "src/core/spatial/broadphase.hpp"
#include "src/core/table.hpp"
#include "src/obs/jsonl_sink.hpp"

namespace {

using namespace atm;

std::unique_ptr<tasks::Backend> make_platform(const std::string& key) {
  if (key == "9800gt") return tasks::make_geforce_9800_gt();
  if (key == "880m") return tasks::make_gtx_880m();
  if (key == "titanx") return tasks::make_titan_x_pascal();
  if (key == "staran") return tasks::make_staran();
  if (key == "clearspeed") return tasks::make_clearspeed();
  if (key == "xeon") return tasks::make_xeon();
  if (key == "phi") return tasks::make_xeon_phi();
  if (key == "reference") return tasks::make_reference();
  return nullptr;
}

void list_options() {
  std::cout << "platforms:\n  9800gt 880m titanx staran clearspeed xeon "
               "phi reference\n\nscenarios:\n";
  for (const tasks::Scenario& s : tasks::all_scenarios()) {
    std::cout << "  " << s.name << " (default " << s.default_aircraft
              << " aircraft)\n      " << s.description << "\n";
  }
}

// One line per registry entry: the name column is driven by
// scenario_names() so the listing and the lookup can never drift apart.
void list_scenarios() {
  for (const std::string& name : tasks::scenario_names()) {
    tasks::Scenario s;
    if (!tasks::scenario_by_name(name, s)) continue;
    std::cout << name << " — " << s.description << "\n";
  }
}

// The --faults preset: every injector feature at a rate high enough to
// be visible in a short run but low enough that tracking survives.
atm::rt::FaultConfig representative_faults() {
  atm::rt::FaultConfig f;
  f.enabled = true;
  f.dropout_burst_probability = 0.05;
  f.dropout_fraction = 0.25;
  f.ghost_probability = 0.01;
  f.noise_burst_probability = 0.05;
  f.noise_burst_nm = 1.0;
  f.stolen_time_probability = 0.10;
  f.stolen_time_ms = 50.0;
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  std::string platform_key = "titanx";
  std::string scenario_key = "paper-airfield";
  std::size_t aircraft_override = 0;
  int cycles = 1;
  std::uint64_t seed = 42;
  bool multi_radar = false;
  bool full_system = false;
  int retrace_id = -1;
  std::string trace_path;
  std::string broadphase_key;
  std::string shard_key;
  std::string kernel_key;
  int sectors_per_axis = 0;
  bool governor = false;
  bool faults = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--list") {
      list_options();
      return 0;
    } else if (arg == "--list-scenarios") {
      list_scenarios();
      return 0;
    } else if (arg == "--governor") {
      governor = true;
    } else if (arg == "--faults") {
      faults = true;
    } else if (arg == "--platform") {
      platform_key = next();
    } else if (arg == "--scenario") {
      scenario_key = next();
    } else if (arg == "--aircraft") {
      aircraft_override = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--cycles") {
      cycles = std::atoi(next());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--broadphase") {
      broadphase_key = next();
    } else if (arg.rfind("--broadphase=", 0) == 0) {
      broadphase_key = arg.substr(std::strlen("--broadphase="));
    } else if (arg == "--shard") {
      shard_key = next();
    } else if (arg.rfind("--shard=", 0) == 0) {
      shard_key = arg.substr(std::strlen("--shard="));
    } else if (arg == "--kernel") {
      kernel_key = next();
    } else if (arg.rfind("--kernel=", 0) == 0) {
      kernel_key = arg.substr(std::strlen("--kernel="));
    } else if (arg == "--sectors") {
      sectors_per_axis = std::atoi(next());
    } else if (arg == "--multi-radar") {
      multi_radar = true;
    } else if (arg == "--full") {
      full_system = true;
    } else if (arg == "--retrace") {
      retrace_id = std::atoi(next());
    } else if (arg == "--trace") {
      trace_path = next();
      if (trace_path.empty()) {
        std::cerr << "--trace needs a file path\n";
        return 2;
      }
    } else {
      std::cerr << "unknown option " << arg << " (try --list)\n";
      return 2;
    }
  }

  auto backend = make_platform(platform_key);
  if (backend == nullptr) {
    std::cerr << "unknown platform '" << platform_key << "' (try --list)\n";
    return 2;
  }
  tasks::Scenario chosen;
  if (!tasks::scenario_by_name(scenario_key, chosen)) {
    std::cerr << "unknown scenario '" << scenario_key << "' (try --list)\n";
    return 2;
  }
  if (!broadphase_key.empty()) {
    const auto mode = core::spatial::parse_broadphase(broadphase_key);
    if (!mode.has_value()) {
      std::cerr << "unknown broadphase '" << broadphase_key
                << "' (use brute or grid)\n";
      return 2;
    }
    chosen.policy.broadphase = *mode;
  }
  if (!shard_key.empty()) {
    const auto mode = core::spatial::parse_shard_mode(shard_key);
    if (!mode.has_value()) {
      std::cerr << "unknown shard mode '" << shard_key
                << "' (use none or sectors)\n";
      return 2;
    }
    chosen.policy.shard = *mode;
  }
  if (!kernel_key.empty()) {
    core::kern::KernelMode mode;
    if (!core::kern::kernel_mode_from_string(kernel_key, mode)) {
      std::cerr << "unknown kernel '" << kernel_key
                << "' (use auto, scalar, or avx2)\n";
      return 2;
    }
    chosen.policy.kernel = mode;
  }
  if (sectors_per_axis > 0) chosen.policy.sectors_per_axis = sectors_per_axis;
  if (governor) chosen.policy.governor.enabled = true;
  if (faults) chosen.policy.faults = representative_faults();

  std::cout << "platform : " << backend->name() << "\n"
            << "scenario : " << chosen.name << "\n"
            << "broadphase : "
            << core::spatial::to_string(chosen.policy.broadphase) << "\n"
            << "shard    : " << core::spatial::to_string(chosen.policy.shard);
  if (chosen.policy.shard == core::spatial::ShardMode::kSectors) {
    std::cout << " (" << chosen.policy.sectors_per_axis << "x"
              << chosen.policy.sectors_per_axis << ")";
  }
  std::cout << "\n"
            << "kernel   : "
            << core::kern::to_string(
                   core::kern::resolve(chosen.policy.kernel))
            << "\n";
  if (governor) std::cout << "governor : enabled\n";
  if (faults) std::cout << "faults   : enabled (seeded)\n";

  std::unique_ptr<obs::JsonlTraceSink> trace;
  if (!trace_path.empty()) {
    trace = std::make_unique<obs::JsonlTraceSink>(trace_path);
    if (!trace->ok()) {
      std::cerr << "cannot open trace file " << trace_path << "\n";
      return 2;
    }
  }

  if (full_system) {
    tasks::extended::FullSystemConfig cfg =
        tasks::make_full_config(chosen, cycles, seed);
    if (aircraft_override > 0) cfg.aircraft = aircraft_override;
    cfg.multi_radar = multi_radar;
    std::cout << "aircraft : " << cfg.aircraft << "\nmode     : complete "
              << "ATM system" << (multi_radar ? " + multi-tower radar" : "")
              << "\n\n";
    // The full-system executive has its own config type; attach the sink
    // straight to the backend so every task entry point still emits.
    if (trace) backend->set_trace_sink(trace.get());
    const auto result = tasks::extended::run_full_system(*backend, cfg);
    if (trace) {
      backend->set_trace_sink(nullptr);
      trace->flush();
    }
    std::cout << result.monitor.summary() << "\n";
    if (governor) {
      std::cout << "governor : final level " << result.final_governor_level
                << ", " << result.sporadic_shed << " query batches shed\n";
    }
    const auto bad =
        result.monitor.total_missed() + result.monitor.total_skipped();
    std::cout << (bad == 0 ? "all deadlines met\n"
                           : std::to_string(bad) + " missed/skipped\n");
    return bad == 0 ? 0 : 1;
  }

  tasks::PipelineConfig cfg =
      tasks::make_pipeline_config(chosen, cycles, seed);
  if (aircraft_override > 0) cfg.aircraft = aircraft_override;
  std::cout << "aircraft : " << cfg.aircraft << "\nmode     : core tasks\n\n";
  airfield::FlightRecorder recorder(cfg.aircraft,
                                    16 * std::max(1, cycles));
  cfg.recorder = &recorder;
  cfg.trace = trace.get();
  const tasks::PipelineResult result = tasks::run_pipeline(*backend, cfg);
  std::cout << result.deadlines().summary() << "\n";
  if (governor) {
    std::cout << "governor : " << result.governor_degrades << " degrades, "
              << result.governor_recovers << " recovers, final level "
              << result.final_governor_level << "\n";
  }

  if (retrace_id >= 0) {
    std::cout << "retrace of aircraft " << retrace_id
              << " (last 16 periods):\n";
    core::TextTable track({"period", "x [nm]", "y [nm]", "alt [ft]"});
    for (const airfield::TrackPoint& p :
         recorder.retrace(retrace_id, 16)) {
      track.begin_row();
      track.add_cell(static_cast<long long>(p.period));
      track.add_cell(p.x, 3);
      track.add_cell(p.y, 3);
      track.add_cell(p.alt, 0);
    }
    std::cout << track;
  }
  const auto bad =
      result.deadlines().total_missed() + result.deadlines().total_skipped();
  std::cout << (bad == 0 ? "all deadlines met\n"
                         : std::to_string(bad) + " missed/skipped\n");
  return bad == 0 ? 0 : 1;
}
