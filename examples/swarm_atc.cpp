// The paper's future-work scenario (Section 7.2): a mobile ATM center for
// a drone swarm operating in a small remote area.
//
//   $ ./swarm_atc [drones]
//
// Demonstrates: customizing the airfield (SetupParams) and the task
// parameters for a different vehicle class — slow, low-flying drones in a
// tight operating box with a much smaller separation requirement — while
// reusing the whole pipeline unchanged.
#include <cstdlib>
#include <iostream>

#include "src/airfield/setup.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/core/table.hpp"

int main(int argc, char** argv) {
  using namespace atm;

  const std::size_t drones =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 96;

  // A 8 nm x 8 nm operating box; 20-80 knot drones between 100 and
  // 1200 feet.
  airfield::SetupParams swarm;
  swarm.position_max_nm = 4.0;
  swarm.min_speed_knots = 20.0;
  swarm.max_speed_knots = 80.0;
  swarm.min_altitude_feet = 100.0;
  swarm.max_altitude_feet = 1200.0;

  // Drone separation: a 0.5 nm total band (vs 3 nm for airliners), a
  // 200 ft vertical gate, a 5-minute look-ahead, 1 minute critical, and
  // sharper turns (15-degree steps up to 90: drones can yaw hard).
  tasks::Task23Params separation;
  separation.band_nm = 0.5;
  separation.altitude_gate_feet = 200.0;
  separation.horizon_periods = core::seconds_to_periods(5 * 60);
  separation.critical_periods = core::seconds_to_periods(60);
  separation.turn_step_deg = 15.0;
  separation.turn_max_deg = 90.0;

  // Tight radar: drones report GPS-grade positions.
  airfield::RadarParams radar;
  radar.noise_nm = 0.02;

  tasks::Task1Params tracking;
  tracking.box_half_nm = 0.05;  // 0.1 nm correlation box

  // The mobile ATM center is a laptop: the paper's GTX 880M.
  auto backend = tasks::make_gtx_880m();
  backend->load(airfield::make_airfield(drones, 2024, swarm));

  std::cout << "swarm ATM: " << drones << " drones in an 8 nm box on "
            << backend->name() << "\n\n";

  core::TextTable table({"cycle", "correlated", "conflicts", "critical",
                         "resolved", "unresolved", "avg task1 [ms]",
                         "task23 [ms]"});
  for (int cycle = 0; cycle < 4; ++cycle) {
    tasks::PipelineConfig cfg;
    cfg.aircraft = drones;
    cfg.major_cycles = 1;
    cfg.seed = 2024 + static_cast<std::uint64_t>(cycle);
    cfg.radar = radar;
    cfg.task1 = tracking;
    cfg.task23 = separation;
    cfg.preloaded = true;
    const tasks::PipelineResult result = tasks::run_pipeline(*backend, cfg);
    table.begin_row();
    table.add_cell(static_cast<long long>(cycle));
    table.add_cell(static_cast<long long>(result.last_task1.matched));
    table.add_cell(static_cast<long long>(result.last_task23.conflicts));
    table.add_cell(static_cast<long long>(result.last_task23.critical));
    table.add_cell(static_cast<long long>(result.last_task23.resolved));
    table.add_cell(static_cast<long long>(result.last_task23.unresolved));
    table.add_cell(result.task1_ms.mean(), 4);
    table.add_cell(result.task23_ms.mean(), 4);
  }
  std::cout << table
            << "\nA laptop-class accelerator tracks and deconflicts a "
               "drone swarm with periods to\nspare — the Section 7.2 "
               "'mobile ATM center' use case.\n";
  return 0;
}
