// The paper's future-work scenario (Section 7.2): a mobile ATM center for
// a drone swarm operating in a small remote area.
//
//   $ ./swarm_atc [drones]
//
// Demonstrates: the drone-swarm scenario — slow, low-flying drones in a
// tight operating box with a much smaller separation requirement (0.5 nm
// band, 200 ft gate, 15-degree turn steps up to 90) — driving the whole
// pipeline unchanged through its scenario preset.
#include <cstdlib>
#include <iostream>

#include "src/airfield/setup.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/scenarios.hpp"
#include "src/core/table.hpp"

int main(int argc, char** argv) {
  using namespace atm;

  const std::size_t drones =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 96;

  // The Section 7.2 workload is a named scenario: an 8 nm x 8 nm box of
  // 20-80 knot drones under 1200 ft, GPS-grade reports, drone separation.
  const tasks::Scenario swarm = tasks::drone_swarm();

  // The mobile ATM center is a laptop: the paper's GTX 880M.
  auto backend = tasks::make_gtx_880m();
  backend->load(airfield::make_airfield(drones, 2024, swarm.setup));

  std::cout << "swarm ATM: " << drones << " drones in an 8 nm box on "
            << backend->name() << "\n\n";

  core::TextTable table({"cycle", "correlated", "conflicts", "critical",
                         "resolved", "unresolved", "avg task1 [ms]",
                         "task23 [ms]"});
  for (int cycle = 0; cycle < 4; ++cycle) {
    tasks::PipelineConfig cfg = tasks::make_pipeline_config(
        swarm, /*major_cycles=*/1,
        /*seed=*/2024 + static_cast<std::uint64_t>(cycle));
    cfg.aircraft = drones;
    cfg.preloaded = true;
    const tasks::PipelineResult result = tasks::run_pipeline(*backend, cfg);
    table.begin_row();
    table.add_cell(static_cast<long long>(cycle));
    table.add_cell(static_cast<long long>(result.last_task1.matched));
    table.add_cell(static_cast<long long>(result.last_task23.conflicts));
    table.add_cell(static_cast<long long>(result.last_task23.critical));
    table.add_cell(static_cast<long long>(result.last_task23.resolved));
    table.add_cell(static_cast<long long>(result.last_task23.unresolved));
    table.add_cell(result.task1_ms.mean(), 4);
    table.add_cell(result.task23_ms.mean(), 4);
  }
  std::cout << table
            << "\nA laptop-class accelerator tracks and deconflicts a "
               "drone swarm with periods to\nspare — the Section 7.2 "
               "'mobile ATM center' use case.\n";
  return 0;
}
