// Long-running airfield simulation with live statistics.
//
//   $ ./airfield_sim [aircraft] [major_cycles]
//
// Demonstrates: driving the pipeline cycle by cycle on a pre-loaded
// backend (PipelineConfig::preloaded), watching the airfield evolve
// (correlation quality, conflicts, grid re-entries), and reading
// per-period logs.
#include <cstdlib>
#include <iostream>

#include "src/airfield/setup.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/scenarios.hpp"
#include "src/core/table.hpp"

int main(int argc, char** argv) {
  using namespace atm;

  const std::size_t aircraft =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 800;
  const int cycles = argc > 2 ? std::atoi(argv[2]) : 5;

  auto backend = tasks::make_gtx_880m();
  backend->load(airfield::make_airfield(aircraft, 31));

  std::cout << "simulating " << aircraft << " aircraft for " << cycles
            << " major cycles (" << cycles * 8 << " simulated seconds) on "
            << backend->name() << "\n\n";

  core::TextTable table({"cycle", "avg task1 [ms]", "task23 [ms]",
                         "correlated", "conflicts", "critical", "resolved",
                         "re-entries"});
  for (int cycle = 0; cycle < cycles; ++cycle) {
    tasks::PipelineConfig cfg = tasks::make_pipeline_config(
        tasks::paper_airfield(), /*major_cycles=*/1,
        /*seed=*/31 + static_cast<std::uint64_t>(cycle));
    cfg.aircraft = aircraft;  // informational; state already loaded
    cfg.preloaded = true;
    const tasks::PipelineResult result = tasks::run_pipeline(*backend, cfg);

    std::size_t wrapped = 0;
    for (const tasks::PeriodLog& log : result.periods) {
      wrapped += log.wrapped;
    }
    table.begin_row();
    table.add_cell(static_cast<long long>(cycle));
    table.add_cell(result.task1_ms.mean(), 4);
    table.add_cell(result.task23_ms.mean(), 4);
    table.add_cell(static_cast<long long>(result.last_task1.matched));
    table.add_cell(static_cast<long long>(result.last_task23.conflicts));
    table.add_cell(static_cast<long long>(result.last_task23.critical));
    table.add_cell(static_cast<long long>(result.last_task23.resolved));
    table.add_cell(static_cast<long long>(wrapped));
  }
  std::cout << table
            << "\nAircraft leaving the 256 nm field re-enter at (-x, -y) "
               "with the same velocity\n(Section 4.1), so the population "
               "is constant and the airfield reaches a steady\nconflict "
               "rate after the first cycles.\n";
  return 0;
}
