// Quickstart: simulate one 8-second ATM major cycle on the Titan X
// (Pascal) device model and print the deadline report.
//
//   $ ./quickstart [aircraft]
//
// This is the smallest end-to-end use of the library:
//   1. pick a platform backend (any of the paper's six),
//   2. pick a scenario and instantiate its PipelineConfig,
//   3. run the real-time pipeline,
//   4. read the deadline monitor and task statistics.
#include <cstdlib>
#include <iostream>

#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace atm;

  const std::size_t aircraft =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1000;

  // 1. The platform: the paper's research card.
  auto backend = tasks::make_titan_x_pascal();

  // 2. The workload: the paper's airfield scenario for one major cycle =
  //    16 half-second periods with Task 1 (tracking & correlation) every
  //    period and Tasks 2+3 (collision detection & resolution) at the end
  //    of the cycle. Any seed reproduces exactly on this platform.
  tasks::PipelineConfig cfg = tasks::make_pipeline_config(
      tasks::paper_airfield(), /*major_cycles=*/1, /*seed=*/2018);
  cfg.aircraft = aircraft;

  // 3. Run it.
  const tasks::PipelineResult result = tasks::run_pipeline(*backend, cfg);

  // 4. Report.
  std::cout << "platform : " << backend->name() << "\n"
            << "aircraft : " << aircraft << "\n\n"
            << result.deadlines().summary() << "\n";

  std::cout << "last Task 1:  " << result.last_task1.matched
            << " radars correlated, " << result.last_task1.unmatched_radars
            << " unmatched, " << result.last_task1.ambiguous_aircraft
            << " ambiguous aircraft (" << result.last_task1.passes
            << " box passes)\n";
  std::cout << "last Tasks 2+3: " << result.last_task23.conflicts
            << " aircraft in conflict, " << result.last_task23.critical
            << " critical, " << result.last_task23.resolved << " resolved, "
            << result.last_task23.unresolved << " unresolved\n\n";

  if (result.deadlines().total_missed() + result.deadlines().total_skipped() == 0) {
    std::cout << "every deadline met — the paper's CUDA result.\n";
  } else {
    std::cout << "deadlines missed: " << result.deadlines().total_missed()
              << ", skipped: " << result.deadlines().total_skipped() << "\n";
  }
  return 0;
}
