// Compare the paper's three NVIDIA device models on one workload.
//
//   $ ./device_compare [aircraft]
//
// Demonstrates: building CUDA backends from DeviceSpecs, running single
// tasks outside the pipeline, and reading device totals (kernel time,
// transfer time, launch counts) from the SIMT engine.
#include <cstdlib>
#include <iostream>

#include "src/airfield/setup.hpp"
#include "src/atm/cuda_backend.hpp"
#include "src/core/table.hpp"

int main(int argc, char** argv) {
  using namespace atm;

  const std::size_t aircraft =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 4000;

  // One shared airfield: the cards must produce identical results, so any
  // timing difference is purely the device model.
  const airfield::FlightDb field = airfield::make_airfield(aircraft, 7);

  core::TextTable table({"device", "CC", "cores", "radar [ms]", "task1 [ms]",
                         "task2+3 [ms]", "kernel launches",
                         "bytes moved"});
  for (const auto& spec : simt::paper_device_catalog()) {
    tasks::CudaBackend card(spec);
    card.load(field);
    core::Rng rng(99);
    double radar_ms = 0.0;
    airfield::RadarFrame frame = card.generate_radar(rng, {}, &radar_ms);
    const tasks::Task1Result r1 = card.run_task1(frame, {});
    const tasks::Task23Result r23 = card.run_task23({});

    table.begin_row();
    table.add_cell(spec.name);
    char cc[32];
    std::snprintf(cc, sizeof cc, "%d.%d", spec.compute_capability / 10,
                  spec.compute_capability % 10);
    table.add_cell(std::string(cc));
    table.add_cell(static_cast<long long>(spec.total_cores()));
    table.add_cell(radar_ms, 4);
    table.add_cell(r1.modeled_ms, 4);
    table.add_cell(r23.modeled_ms, 4);
    table.add_cell(static_cast<long long>(card.device().totals().launches));
    table.add_cell(
        static_cast<long long>(card.device().totals().bytes_moved));
  }
  std::cout << "workload: " << aircraft << " aircraft, one period + one "
            << "collision pass\n\n"
            << table
            << "\nSame program, same results — the modeled time orders by "
               "SM count x clock,\nexactly the Section 6 observation that "
               "'there is a difference in execution\ntime but the code is "
               "the same'.\n";
  return 0;
}
