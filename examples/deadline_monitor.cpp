// Real-time executive demo: watch a deterministic platform hold every
// deadline while the shared-memory multi-core misses and skips.
//
//   $ ./deadline_monitor [aircraft] [--trace FILE.jsonl]
//
// Demonstrates: per-period deadline outcomes, the skip cascade when a
// platform overruns (paper Section 3: tasks whose period already ended
// must be skipped), and the difference between deterministic and
// MIMD-jittered timing. With --trace, both platforms' runs are appended
// to one JSONL trace file (inspect with tools/trace_summary.py).
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/scenarios.hpp"
#include "src/core/table.hpp"
#include "src/obs/jsonl_sink.hpp"

namespace {

const char* outcome_str(atm::rt::Outcome outcome) {
  switch (outcome) {
    case atm::rt::Outcome::kMet:
      return "met";
    case atm::rt::Outcome::kMissed:
      return "MISSED";
    case atm::rt::Outcome::kSkipped:
      return "SKIPPED";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace atm;

  std::size_t aircraft = 4000;
  std::unique_ptr<obs::JsonlTraceSink> trace;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace = std::make_unique<obs::JsonlTraceSink>(std::string(argv[++i]));
      if (!trace->ok()) {
        std::cerr << "cannot open trace file " << argv[i] << "\n";
        return 2;
      }
    } else {
      aircraft = static_cast<std::size_t>(std::atoll(argv[i]));
    }
  }

  for (auto make : {&tasks::make_titan_x_pascal, &tasks::make_xeon}) {
    auto backend = make();
    tasks::PipelineConfig cfg =
        tasks::make_pipeline_config(tasks::paper_airfield());
    cfg.aircraft = aircraft;
    cfg.trace = trace.get();
    const tasks::PipelineResult result = tasks::run_pipeline(*backend, cfg);

    std::cout << "\n== " << backend->name() << " — one major cycle, "
              << aircraft << " aircraft ==\n";
    core::TextTable table({"period", "task1 [ms]", "task1", "task23 [ms]",
                           "task23"});
    for (const tasks::PeriodLog& log : result.periods) {
      table.begin_row();
      table.add_cell(static_cast<long long>(log.period));
      table.add_cell(log.task1_ms, 3);
      table.add_cell(std::string(outcome_str(log.task1_outcome)));
      if (log.period == 15) {
        table.add_cell(log.task23_ms, 3);
        table.add_cell(std::string(outcome_str(log.task23_outcome)));
      } else {
        table.add_cell(std::string("-"));
        table.add_cell(std::string("-"));
      }
    }
    std::cout << table << result.deadlines().summary();
  }

  std::cout << "\nThe half-second period budget is absolute: an overrun "
               "delays everything behind\nit, and tasks whose period has "
               "already ended are skipped — which is how the\nXeon "
               "accumulates the paper's 'large number of missed "
               "deadlines'.\n";
  return 0;
}
