// Cross-backend equivalence: every platform backend (three CUDA device
// models, STARAN AP, ClearSpeed emulation, 16-core Xeon) must produce
// *bit-identical* flight states and identical outcome counters to the
// sequential reference, given identical inputs. This is the semantic
// backbone of the reproduction: the platforms may only differ in modeled
// time, never in what the ATM tasks compute.
#include <gtest/gtest.h>

#include <memory>

#include "src/airfield/setup.hpp"
#include "src/atm/cuda_backend.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/reference_backend.hpp"

namespace atm::tasks {
namespace {

struct NamedFactory {
  const char* label;
  std::unique_ptr<Backend> (*make)();
};

const NamedFactory kPlatforms[] = {
    {"9800gt", &make_geforce_9800_gt}, {"880m", &make_gtx_880m},
    {"titanx", &make_titan_x_pascal},  {"staran", &make_staran},
    {"clearspeed", &make_clearspeed},  {"xeon", &make_xeon},
};

class BackendEquivalenceTest
    : public ::testing::TestWithParam<NamedFactory> {};

/// Strip the architecture-dependent work counters so outcome counters can
/// be compared across platforms (work differs by design: an associative
/// search touches every PE, a sequential scan only eligible records).
Task1Stats outcome_only(Task1Stats s) {
  s.box_tests = 0;
  s.kernel = -1;
  s.lanes_masked = 0;
  return s;
}
Task23Stats outcome_only(Task23Stats s) {
  s.pair_tests = 0;
  s.pair_candidates = 0;
  s.rescans = 0;
  s.kernel = -1;
  s.lanes_masked = 0;
  return s;
}

TEST_P(BackendEquivalenceTest, SingleTask1MatchesReference) {
  const airfield::FlightDb initial = airfield::make_airfield(800, 42);

  ReferenceBackend ref;
  ref.load(initial);
  core::Rng ref_rng(7);
  airfield::RadarFrame ref_frame = ref.generate_radar(ref_rng, {}, nullptr);
  const Task1Result ref_r1 = ref.run_task1(ref_frame, {});

  auto backend = GetParam().make();
  backend->load(initial);
  core::Rng rng(7);
  airfield::RadarFrame frame = backend->generate_radar(rng, {}, nullptr);

  // Identical radar input is itself part of the contract.
  ASSERT_EQ(frame.rx, ref_frame.rx);
  ASSERT_EQ(frame.ry, ref_frame.ry);
  ASSERT_EQ(frame.truth, ref_frame.truth);

  const Task1Result r1 = backend->run_task1(frame, {});
  EXPECT_EQ(outcome_only(r1.stats), outcome_only(ref_r1.stats));
  EXPECT_EQ(frame.rmatch_with, ref_frame.rmatch_with);
  EXPECT_TRUE(backend->state().same_flight_state(ref.state()))
      << GetParam().label << " diverged from the reference after Task 1";
}

TEST_P(BackendEquivalenceTest, SingleTask23MatchesReference) {
  const airfield::FlightDb initial = airfield::make_airfield(800, 43);

  ReferenceBackend ref;
  ref.load(initial);
  const Task23Result ref_r23 = ref.run_task23({});

  auto backend = GetParam().make();
  backend->load(initial);
  const Task23Result r23 = backend->run_task23({});

  EXPECT_EQ(outcome_only(r23.stats), outcome_only(ref_r23.stats));
  EXPECT_TRUE(backend->state().same_flight_state(ref.state()))
      << GetParam().label << " diverged from the reference after Tasks 2+3";
  // Collision working state must agree too.
  for (std::size_t i = 0; i < initial.size(); ++i) {
    ASSERT_EQ(backend->state().col[i], ref.state().col[i]) << "col @" << i;
    ASSERT_EQ(backend->state().col_with[i], ref.state().col_with[i])
        << "colWith @" << i;
    ASSERT_DOUBLE_EQ(backend->state().time_till[i], ref.state().time_till[i])
        << "time_till @" << i;
  }
}

TEST_P(BackendEquivalenceTest, FullMajorCycleMatchesReference) {
  PipelineConfig cfg;
  cfg.aircraft = 400;
  cfg.major_cycles = 1;
  cfg.seed = 99;

  ReferenceBackend ref;
  const PipelineResult ref_result = run_pipeline(ref, cfg);

  auto backend = GetParam().make();
  const PipelineResult result = run_pipeline(*backend, cfg);

  EXPECT_TRUE(backend->state().same_flight_state(ref.state()))
      << GetParam().label << " diverged over a full major cycle";
  EXPECT_EQ(outcome_only(result.last_task1),
            outcome_only(ref_result.last_task1));
  EXPECT_EQ(outcome_only(result.last_task23),
            outcome_only(ref_result.last_task23));
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, BackendEquivalenceTest, ::testing::ValuesIn(kPlatforms),
    [](const ::testing::TestParamInfo<NamedFactory>& info) {
      return std::string(info.param.label);
    });

TEST(CudaBackendEquivalence, SplitKernelMatchesFusedResults) {
  // The A-1 ablation variants must agree on everything except time.
  const airfield::FlightDb initial = airfield::make_airfield(600, 17);
  CudaBackend fused(simt::titan_x_pascal());
  CudaBackend split(simt::titan_x_pascal());
  fused.load(initial);
  split.load(initial);
  const Task23Result rf = fused.run_task23({});
  const Task23Result rs = split.run_task23_split({});
  EXPECT_EQ(rf.stats, rs.stats);  // identical work AND outcomes here
  EXPECT_TRUE(fused.state().same_flight_state(split.state()));
  // The fused kernel is the paper's optimization: it must not be slower.
  EXPECT_LT(rf.modeled_ms, rs.modeled_ms);
}

TEST(CudaBackendEquivalence, PairGridMappingMatchesRowMapping) {
  // A-3 ablation: the 2-D one-thread-per-pair detection must land in
  // exactly the same flight state as the paper's one-thread-per-aircraft
  // mapping (outcome counters match; work counters differ by design).
  const airfield::FlightDb initial = airfield::make_airfield(700, 29);
  CudaBackend row(simt::titan_x_pascal());
  CudaBackend grid(simt::titan_x_pascal());
  row.load(initial);
  grid.load(initial);
  const Task23Result rr = row.run_task23({});
  const Task23Result rg = grid.run_task23_pairgrid({});
  EXPECT_EQ(rr.stats.conflicts, rg.stats.conflicts);
  EXPECT_EQ(rr.stats.critical, rg.stats.critical);
  EXPECT_EQ(rr.stats.resolved, rg.stats.resolved);
  EXPECT_EQ(rr.stats.unresolved, rg.stats.unresolved);
  EXPECT_TRUE(row.state().same_flight_state(grid.state()));
  for (std::size_t i = 0; i < initial.size(); ++i) {
    ASSERT_EQ(row.state().col[i], grid.state().col[i]);
    ASSERT_EQ(row.state().col_with[i], grid.state().col_with[i]);
    ASSERT_DOUBLE_EQ(row.state().time_till[i], grid.state().time_till[i]);
  }
}

TEST(CudaBackendEquivalence, ShuffledThreadOrderChangesNothing) {
  // Real GPUs give no thread-ordering guarantees; the kernels must not
  // depend on one.
  const airfield::FlightDb initial = airfield::make_airfield(500, 23);
  CudaBackend seq(simt::gtx_880m());
  CudaBackend shuf(simt::gtx_880m());
  shuf.device().set_thread_order(simt::ThreadOrder::kShuffled);
  seq.load(initial);
  shuf.load(initial);

  core::Rng rng_a(3), rng_b(3);
  airfield::RadarFrame fa = seq.generate_radar(rng_a, {}, nullptr);
  airfield::RadarFrame fb = shuf.generate_radar(rng_b, {}, nullptr);
  ASSERT_EQ(fa.rx, fb.rx);

  const Task1Result r1a = seq.run_task1(fa, {});
  const Task1Result r1b = shuf.run_task1(fb, {});
  EXPECT_EQ(r1a.stats, r1b.stats);
  const Task23Result r23a = seq.run_task23({});
  const Task23Result r23b = shuf.run_task23({});
  EXPECT_EQ(r23a.stats, r23b.stats);
  EXPECT_TRUE(seq.state().same_flight_state(shuf.state()));
}

TEST(CudaBackendEquivalence, ThreeCardsComputeIdenticalResults) {
  // Same program, three devices: Section 5 says "There is a difference in
  // execution time but the code is the same".
  const airfield::FlightDb initial = airfield::make_airfield(700, 55);
  CudaBackend a(simt::geforce_9800_gt());
  CudaBackend b(simt::gtx_880m());
  CudaBackend c(simt::titan_x_pascal());
  for (CudaBackend* dev : {&a, &b, &c}) dev->load(initial);
  const Task23Result ra = a.run_task23({});
  const Task23Result rb = b.run_task23({});
  const Task23Result rc = c.run_task23({});
  EXPECT_EQ(ra.stats, rb.stats);
  EXPECT_EQ(rb.stats, rc.stats);
  EXPECT_TRUE(a.state().same_flight_state(b.state()));
  EXPECT_TRUE(b.state().same_flight_state(c.state()));
  // ...but the modeled times order by device capability.
  EXPECT_GT(ra.modeled_ms, rb.modeled_ms);
  EXPECT_GT(rb.modeled_ms, rc.modeled_ms);
}

TEST(CudaBackendEquivalence, DeviceSetupFlightIsDistributionEquivalent) {
  // The SetupFlight kernel draws per-thread streams, so it is not
  // bit-identical to the host generator — but it must honour the same
  // ranges and populate a usable airfield.
  CudaBackend dev(simt::titan_x_pascal());
  const double ms = dev.setup_flights_on_device(1000, 77);
  EXPECT_GT(ms, 0.0);
  const airfield::FlightDb& db = dev.state();
  ASSERT_EQ(db.size(), 1000u);
  for (std::size_t i = 0; i < db.size(); ++i) {
    ASSERT_LE(std::fabs(db.x[i]), core::kSetupPositionMaxNm);
    const double knots =
        core::nm_per_period_to_knots(std::hypot(db.dx[i], db.dy[i]));
    ASSERT_GE(knots, core::kMinSpeedKnots - 1e-9);
    ASSERT_LE(knots, core::kMaxSpeedKnots + 1e-9);
  }
}

}  // namespace
}  // namespace atm::tasks
