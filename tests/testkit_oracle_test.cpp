// Differential oracle (src/testkit/oracle.hpp): clean forged cases pass
// every probe, the outcome projection strips exactly the work counters,
// and the comparison machinery actually catches a buggy backend — the
// planted fleet off-by-one shim must light up, or the whole differential
// harness is vacuous.
#include <gtest/gtest.h>

#include "src/atm/pipeline.hpp"
#include "src/atm/reference_backend.hpp"
#include "src/testkit/oracle.hpp"
#include "src/testkit/planted.hpp"

namespace atm::testkit {
namespace {

/// Baseline config of a forged case, deterministic for the host paths
/// (governor off, no stolen time) — mirrors the oracle's own leg_config.
tasks::PipelineConfig deterministic_config(const ForgedCase& c) {
  tasks::PipelineConfig cfg = pipeline_config(c);
  cfg.governor = rt::GovernorConfig{};
  cfg.faults.stolen_time_probability = 0.0;
  cfg.faults.stolen_time_ms = 0.0;
  return cfg;
}

TEST(OracleTest, CleanSeedsPassEveryProbe) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const OracleReport report = check_case(forge_case(seed));
    EXPECT_TRUE(report.ok())
        << "seed " << seed << " diverged:\n"
        << report.to_string();
    // Baseline + 23 matrix legs + 3 platforms + permutation pair +
    // broadphase soundness + 2 full-system runs.
    EXPECT_GE(report.runs, 30) << "seed " << seed;
  }
}

TEST(OracleTest, ProbesCanBeDisabledIndividually) {
  OracleOptions options;
  options.host_matrix = false;
  options.platform_backends = false;
  options.metamorphic = false;
  options.full_system = false;
  const OracleReport report = check_case(forge_case(1), options);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.runs, 1);  // baseline only
}

TEST(OracleTest, OutcomeProjectionStripsWorkCountersOnly) {
  tasks::Task1Stats t1;
  t1.matched = 7;
  t1.box_tests = 123;
  t1.sectors = 4;
  t1.halo_candidates = 9;
  t1.kernel = 1;
  t1.lanes_masked = 3;
  const tasks::Task1Stats p1 = outcome_only(t1);
  EXPECT_EQ(p1.matched, 7u);
  EXPECT_EQ(p1.box_tests, 0u);
  EXPECT_EQ(p1.sectors, 0);
  EXPECT_EQ(p1.halo_candidates, 0u);
  EXPECT_EQ(p1.kernel, -1);
  EXPECT_EQ(p1.lanes_masked, 0u);

  tasks::Task23Stats t23;
  t23.conflicts = 5;
  t23.critical = 2;
  t23.resolved = 1;
  t23.pair_tests = 999;
  t23.pair_candidates = 888;
  t23.rescans = 7;
  t23.sectors = 16;
  t23.halo_candidates = 4;
  t23.kernel = 0;
  t23.lanes_masked = 2;
  const tasks::Task23Stats p23 = outcome_only(t23);
  EXPECT_EQ(p23.conflicts, 5u);
  EXPECT_EQ(p23.critical, 2u);
  EXPECT_EQ(p23.resolved, 1u);
  EXPECT_EQ(p23.pair_tests, 0u);
  EXPECT_EQ(p23.pair_candidates, 0u);
  EXPECT_EQ(p23.rescans, 0u);
  EXPECT_EQ(p23.sectors, 0);
  EXPECT_EQ(p23.kernel, -1);
}

TEST(OracleTest, CompareRunsAcceptsARunAgainstItself) {
  const ForgedCase c = forge_case(2);
  tasks::ReferenceBackend ref;
  ref.load(c.db);
  const tasks::PipelineResult result =
      tasks::run_pipeline(ref, deterministic_config(c));
  OracleReport report;
  EXPECT_TRUE(compare_runs("self", result, ref.state(), result, ref.state(),
                           report));
  EXPECT_TRUE(report.ok());
}

TEST(OracleTest, CompareRunsFlagsTamperedOutcomes) {
  const ForgedCase c = forge_case(2);
  tasks::ReferenceBackend ref;
  ref.load(c.db);
  const tasks::PipelineResult want =
      tasks::run_pipeline(ref, deterministic_config(c));
  const airfield::FlightDb state = ref.state();

  tasks::PipelineResult tampered = want;
  tampered.last_task23.conflicts += 1;
  OracleReport report;
  EXPECT_FALSE(
      compare_runs("tampered", tampered, state, want, state, report));
  ASSERT_EQ(report.divergences.size(), 1u);
  EXPECT_EQ(report.divergences[0].where, "tampered");
}

TEST(OracleTest, PlantedFleetOffByOneIsDetected) {
  // Seed 1 is a pinned divergent seed for the planted shim (the shrink
  // self-test minimizes this exact failure). The full fleet's last
  // record carries a conflict, so dropping it from the scan changes the
  // conflict census.
  const ForgedCase c = forge_case(1);
  const tasks::PipelineConfig cfg = deterministic_config(c);

  tasks::ReferenceBackend ref;
  PlantedBugBackend buggy;
  ref.load(c.db);
  buggy.load(c.db);
  const tasks::PipelineResult want = tasks::run_pipeline(ref, cfg);
  const tasks::PipelineResult got = tasks::run_pipeline(buggy, cfg);

  OracleReport report;
  EXPECT_FALSE(compare_runs("planted", got, buggy.state(), want, ref.state(),
                            report));
  ASSERT_FALSE(report.divergences.empty());
  EXPECT_EQ(report.divergences[0].where, "planted");
  EXPECT_FALSE(report.to_string().empty());
}

TEST(OracleTest, PlantedBugAgreesOnConflictFreeFleets) {
  // Two distant level-separated cruisers: no conflicts anywhere, so the
  // skipped last record changes nothing — the planted bug must be
  // invisible, otherwise the shrinker could "minimize" to trivial cases.
  ForgedCase c = forge_case(1);
  c.overrides.keep = {0, 1};
  airfield::FlightDb db(2);
  db.x = {-100.0, 100.0};
  db.y = {-100.0, 100.0};
  db.dx = {0.01, -0.01};
  db.dy = {0.0, 0.0};
  db.alt = {5000.0, 25000.0};
  c.db = db;
  c.family.assign(2, 0);
  c.scenario.default_aircraft = 2;

  const tasks::PipelineConfig cfg = deterministic_config(c);
  tasks::ReferenceBackend ref;
  PlantedBugBackend buggy;
  ref.load(c.db);
  buggy.load(c.db);
  const tasks::PipelineResult want = tasks::run_pipeline(ref, cfg);
  const tasks::PipelineResult got = tasks::run_pipeline(buggy, cfg);

  OracleReport report;
  EXPECT_TRUE(compare_runs("planted", got, buggy.state(), want, ref.state(),
                           report))
      << report.to_string();
}

}  // namespace
}  // namespace atm::testkit
