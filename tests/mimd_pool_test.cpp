// Tests for the thread pool, striped locks, and the Xeon cost model
// (src/mimd).
#include "src/mimd/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "src/mimd/xeon_model.hpp"

namespace atm::mimd {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, hits.size(), 16, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, 8, [&](std::size_t) { ++calls; });
  pool.parallel_for(7, 3, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SupportsNonZeroBegin) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(40, 100, 7, [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(hits[i].load(), 0);
  for (std::size_t i = 40; i < 100; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SequentialJobsReuseWorkers) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(0, 1000, 32, [&](std::size_t i) {
      sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 20LL * 999 * 1000 / 2);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, 1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ChunkZeroIsClampedToOne) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, 50, 0, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(StripedLocks, CountsAcquisitions) {
  StripedLocks locks(8);
  int shared = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    locks.with_lock(i, [&] { ++shared; });
  }
  EXPECT_EQ(shared, 100);
  EXPECT_EQ(locks.acquisitions(), 100u);
  locks.reset_counters();
  EXPECT_EQ(locks.acquisitions(), 0u);
}

TEST(StripedLocks, ProtectsSharedCounterUnderContention) {
  StripedLocks locks(4);
  ThreadPool pool(4);
  long long shared = 0;
  pool.parallel_for(0, 20000, 8, [&](std::size_t) {
    locks.with_lock(0, [&] { ++shared; });
  });
  EXPECT_EQ(shared, 20000);
  EXPECT_EQ(locks.acquisitions(), 20000u);
}

TEST(XeonModel, DeterministicPartScalesWithWork) {
  const XeonModel model(paper_xeon_spec());
  WorkCounters small{.items = 1000, .inner_ops = 1'000'000,
                     .locked_ops = 1'000'000, .contended = 0,
                     .parallel_regions = 2};
  WorkCounters big = small;
  big.inner_ops *= 16;
  big.locked_ops *= 16;
  EXPECT_GT(model.deterministic_ms(big),
            10.0 * model.deterministic_ms(small));
}

TEST(XeonModel, ContentionGrowsWithItems) {
  const XeonModel model(paper_xeon_spec());
  WorkCounters few{.items = 1000, .inner_ops = 0, .locked_ops = 1'000'000,
                   .contended = 0, .parallel_regions = 0};
  WorkCounters many = few;
  many.items = 16000;
  EXPECT_GT(model.deterministic_ms(many), model.deterministic_ms(few));
}

TEST(XeonModel, JitterInflatesButNeverDeflates) {
  const XeonModel model(paper_xeon_spec());
  const WorkCounters work{.items = 4000, .inner_ops = 16'000'000,
                          .locked_ops = 16'000'000, .contended = 100,
                          .parallel_regions = 4};
  const double base = model.deterministic_ms(work);
  core::Rng rng(1234);
  for (int i = 0; i < 200; ++i) {
    const double t = model.model_ms(work, rng);
    EXPECT_GE(t, base);
    EXPECT_LE(t, base * (1.0 + model.spec().jitter_frac +
                         model.spec().spike_frac) + 1e-9);
  }
}

TEST(XeonModel, JitterIsNondeterministicAcrossSeeds) {
  const XeonModel model(paper_xeon_spec());
  const WorkCounters work{.items = 4000, .inner_ops = 16'000'000,
                          .locked_ops = 16'000'000, .contended = 0,
                          .parallel_regions = 4};
  core::Rng a(1), b(2);
  EXPECT_NE(model.model_ms(work, a), model.model_ms(work, b));
}

TEST(XeonModel, BarrierCostCountsParallelRegions) {
  const XeonModel model(paper_xeon_spec());
  WorkCounters none{.items = 0, .inner_ops = 0, .locked_ops = 0,
                    .contended = 0, .parallel_regions = 0};
  WorkCounters many = none;
  many.parallel_regions = 100;
  EXPECT_DOUBLE_EQ(model.deterministic_ms(none), 0.0);
  EXPECT_NEAR(model.deterministic_ms(many),
              100 * model.spec().barrier_us * 1e-3, 1e-9);
}

TEST(WorkCounters, AccumulateWithPlusEquals) {
  WorkCounters a{.items = 1, .inner_ops = 2, .locked_ops = 3,
                 .contended = 4, .parallel_regions = 5};
  const WorkCounters b{.items = 10, .inner_ops = 20, .locked_ops = 30,
                       .contended = 40, .parallel_regions = 50};
  a += b;
  EXPECT_EQ(a.items, 11u);
  EXPECT_EQ(a.inner_ops, 22u);
  EXPECT_EQ(a.locked_ops, 33u);
  EXPECT_EQ(a.contended, 44u);
  EXPECT_EQ(a.parallel_regions, 55u);
}

}  // namespace
}  // namespace atm::mimd
