// Property tests for the overload governor (src/rt/governor.hpp) and the
// ATM degradation ladder it walks (src/atm/degrade.hpp): monotone
// single-step transitions, hysteresis without oscillation, and the
// governed pipeline staying deterministic in virtual-clock mode.
#include <gtest/gtest.h>

#include <vector>

#include "src/atm/degrade.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/obs/trace.hpp"
#include "src/rt/governor.hpp"

namespace atm::tasks {
namespace {

rt::GovernorConfig enabled_config() {
  rt::GovernorConfig cfg;
  cfg.enabled = true;
  return cfg;
}

rt::Governor make_governor(const rt::GovernorConfig& cfg) {
  return rt::Governor(cfg, degradation_ladder());
}

TEST(Governor, DisabledGovernorNeverMoves) {
  rt::Governor gov = make_governor(rt::GovernorConfig{});
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(gov.observe(1000.0, 500.0, true), rt::GovernorAction::kHold);
  }
  EXPECT_EQ(gov.level(), 0);
  EXPECT_EQ(gov.degrade_count(), 0u);
}

TEST(Governor, EmptyLadderPinsLevelZero) {
  rt::Governor gov(enabled_config(), {});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(gov.observe(1000.0, 500.0, true), rt::GovernorAction::kHold);
  }
  EXPECT_EQ(gov.level(), 0);
}

TEST(Governor, DegradesOneStepPerHotPeriodAndSaturates) {
  rt::Governor gov = make_governor(enabled_config());
  // Sustained overload: exactly one step per period (monotone, bounded).
  for (int i = 0; i < gov.max_level(); ++i) {
    const int before = gov.level();
    EXPECT_EQ(gov.observe(600.0, 500.0, false), rt::GovernorAction::kDegrade);
    EXPECT_EQ(gov.level(), before + 1);
  }
  EXPECT_EQ(gov.level(), gov.max_level());
  // Saturated: more overload holds at the deepest rung.
  EXPECT_EQ(gov.observe(600.0, 500.0, false), rt::GovernorAction::kHold);
  EXPECT_EQ(gov.level(), gov.max_level());
  EXPECT_EQ(gov.degrade_count(), static_cast<std::uint64_t>(gov.max_level()));
}

TEST(Governor, DeadlineTroubleDegradesEvenUnderBudget) {
  rt::Governor gov = make_governor(enabled_config());
  EXPECT_EQ(gov.observe(100.0, 500.0, true), rt::GovernorAction::kDegrade);
  EXPECT_EQ(gov.level(), 1);
}

TEST(Governor, RecoversOnlyAfterHoldAndOneStepAtATime) {
  rt::GovernorConfig cfg = enabled_config();
  cfg.recover_hold_periods = 4;
  rt::Governor gov = make_governor(cfg);
  gov.observe(600.0, 500.0, false);
  gov.observe(600.0, 500.0, false);
  ASSERT_EQ(gov.level(), 2);
  // Three calm periods: not yet enough.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(gov.observe(100.0, 500.0, false), rt::GovernorAction::kHold);
  }
  EXPECT_EQ(gov.level(), 2);
  // The fourth completes the hold; each recovery needs a fresh streak.
  EXPECT_EQ(gov.observe(100.0, 500.0, false), rt::GovernorAction::kRecover);
  EXPECT_EQ(gov.level(), 1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(gov.observe(100.0, 500.0, false), rt::GovernorAction::kHold);
  }
  EXPECT_EQ(gov.observe(100.0, 500.0, false), rt::GovernorAction::kRecover);
  EXPECT_EQ(gov.level(), 0);
  EXPECT_EQ(gov.recover_count(), 2u);
}

TEST(Governor, DeadbandHoldsAndResetsTheRecoveryStreak) {
  rt::GovernorConfig cfg = enabled_config();
  cfg.recover_hold_periods = 2;
  rt::Governor gov = make_governor(cfg);
  gov.observe(600.0, 500.0, false);
  ASSERT_EQ(gov.level(), 1);
  // Utilization inside the hysteresis band (0.60..0.90): hold forever.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(gov.observe(375.0, 500.0, false), rt::GovernorAction::kHold);
  }
  EXPECT_EQ(gov.level(), 1);
  // One calm period, then a deadband period: the streak must restart.
  gov.observe(100.0, 500.0, false);
  gov.observe(375.0, 500.0, false);
  EXPECT_EQ(gov.observe(100.0, 500.0, false), rt::GovernorAction::kHold);
  EXPECT_EQ(gov.observe(100.0, 500.0, false), rt::GovernorAction::kRecover);
  EXPECT_EQ(gov.level(), 0);
}

TEST(Governor, NoOscillationOnAlternatingLoad) {
  // Load alternating between hot and calm every period can never satisfy
  // a recover hold of 4, so the level ratchets to the bottom and stays:
  // the hysteresis prevents degrade/recover chatter.
  rt::Governor gov = make_governor(enabled_config());
  for (int i = 0; i < 40; ++i) {
    gov.observe(i % 2 == 0 ? 600.0 : 100.0, 500.0, false);
  }
  EXPECT_EQ(gov.level(), gov.max_level());
  EXPECT_EQ(gov.recover_count(), 0u);
}

TEST(Governor, StepNamesComeFromTheLadder) {
  const rt::Governor gov = make_governor(enabled_config());
  EXPECT_EQ(gov.step_name(0), "baseline");
  EXPECT_EQ(gov.step_name(1), "grid-broadphase");
  EXPECT_EQ(gov.step_name(gov.max_level()), "shed-sporadic");
}

TEST(Governor, TransitionsEmitGovernorTraceEvents) {
  obs::RecordingSink sink;
  rt::Governor gov = make_governor(enabled_config());
  gov.set_trace(&sink);
  gov.set_trace_context("test-backend", 2, 7);
  gov.observe(600.0, 500.0, false);                  // degrade -> 1
  for (int i = 0; i < 4; ++i) gov.observe(100.0, 500.0, false);  // recover
  ASSERT_EQ(sink.count(obs::EventKind::kGovernor), 2u);
  const obs::TraceEvent& degrade = sink.events()[0];
  EXPECT_EQ(degrade.name, "grid-broadphase");
  EXPECT_EQ(degrade.outcome, "degrade");
  EXPECT_EQ(degrade.governor_from_level, 0);
  EXPECT_EQ(degrade.governor_level, 1);
  EXPECT_EQ(degrade.backend, "test-backend");
  EXPECT_EQ(degrade.cycle, 2);
  EXPECT_EQ(degrade.period, 7);
  EXPECT_DOUBLE_EQ(degrade.utilization, 600.0 / 500.0);
  const obs::TraceEvent& recover = sink.events()[1];
  EXPECT_EQ(recover.name, "grid-broadphase");  // the step being left
  EXPECT_EQ(recover.outcome, "recover");
  EXPECT_EQ(recover.governor_from_level, 1);
  EXPECT_EQ(recover.governor_level, 0);
}

TEST(DegradationLadder, StepsAreCumulativeAndOrdered) {
  const Task1Params base1;
  const Task23Params base23;
  {
    Task1Params t1 = base1;
    Task23Params t23 = base23;
    apply_degradation(0, t1, t23);
    EXPECT_EQ(t1.broadphase, base1.broadphase);
    EXPECT_EQ(t1.retries, base1.retries);
    EXPECT_EQ(t23.turn_step_deg, base23.turn_step_deg);
  }
  {
    Task1Params t1 = base1;
    Task23Params t23 = base23;
    apply_degradation(1, t1, t23);
    EXPECT_EQ(t1.broadphase, core::spatial::BroadphaseMode::kGrid);
    EXPECT_EQ(t23.broadphase, core::spatial::BroadphaseMode::kGrid);
    EXPECT_EQ(t1.shard, base1.shard);  // level 2 not yet in force
    EXPECT_EQ(t1.retries, base1.retries);
  }
  {
    Task1Params t1 = base1;
    Task23Params t23 = base23;
    apply_degradation(3, t1, t23);
    EXPECT_EQ(t1.shard, core::spatial::ShardMode::kSectors);
    EXPECT_GE(t1.sectors_per_axis, 4);
    EXPECT_LE(t1.retries, 1);
    EXPECT_EQ(t23.turn_step_deg, base23.turn_step_deg);
  }
  {
    Task1Params t1 = base1;
    Task23Params t23 = base23;
    apply_degradation(4, t1, t23);
    EXPECT_GT(t23.turn_step_deg, base23.turn_step_deg);
    EXPECT_LE(t23.turn_step_deg, t23.turn_max_deg);
  }
  EXPECT_FALSE(degradation_sheds_sporadic(4));
  EXPECT_TRUE(degradation_sheds_sporadic(5));
}

TEST(DegradationLadder, RaiseSectorsEscalatesAnAlreadyShardedBundle) {
  Task1Params t1;
  Task23Params t23;
  t1.shard = core::spatial::ShardMode::kSectors;
  t1.sectors_per_axis = 4;
  apply_degradation(2, t1, t23);
  EXPECT_EQ(t1.sectors_per_axis, 8);
  EXPECT_EQ(t23.shard, core::spatial::ShardMode::kSectors);
  EXPECT_EQ(t23.sectors_per_axis, 4);
}

TEST(GovernedPipeline, VirtualModeOverloadIsDeterministic) {
  // Stolen time in virtual-clock mode makes overload itself determinis-
  // tic: every period loses 470 of 500 ms, the governor walks to the
  // bottom of the ladder, and two identically-seeded runs agree bit for
  // bit — including the governor's transition history.
  PipelineConfig cfg;
  cfg.aircraft = 200;
  cfg.major_cycles = 2;
  cfg.governor.enabled = true;
  cfg.faults.enabled = true;
  cfg.faults.stolen_time_probability = 1.0;
  cfg.faults.stolen_time_ms = 470.0;
  auto a = make_reference();
  auto b = make_reference();
  const PipelineResult ra = run_pipeline(*a, cfg);
  const PipelineResult rb = run_pipeline(*b, cfg);

  EXPECT_GT(ra.governor_degrades, 0u);
  EXPECT_GT(ra.final_governor_level, 0);
  EXPECT_EQ(ra.governor_degrades, rb.governor_degrades);
  EXPECT_EQ(ra.governor_recovers, rb.governor_recovers);
  EXPECT_EQ(ra.final_governor_level, rb.final_governor_level);
  EXPECT_EQ(ra.virtual_end_ms, rb.virtual_end_ms);
  ASSERT_EQ(ra.periods.size(), rb.periods.size());
  for (std::size_t i = 0; i < ra.periods.size(); ++i) {
    EXPECT_EQ(ra.periods[i].governor_level, rb.periods[i].governor_level);
    EXPECT_EQ(ra.periods[i].stolen_ms, rb.periods[i].stolen_ms);
    EXPECT_EQ(ra.periods[i].task1_outcome, rb.periods[i].task1_outcome);
  }
}

TEST(GovernedPipeline, PeriodLogRecordsTheLevelEachPeriodRanAt) {
  PipelineConfig cfg;
  cfg.aircraft = 100;
  cfg.major_cycles = 1;
  cfg.governor.enabled = true;
  cfg.faults.enabled = true;
  cfg.faults.stolen_time_probability = 1.0;
  cfg.faults.stolen_time_ms = 600.0;  // every period overruns outright
  auto backend = make_reference();
  const PipelineResult result = run_pipeline(*backend, cfg);
  // Period 0 runs at the baseline; the level then ratchets one step per
  // overloaded period until the ladder bottoms out.
  EXPECT_EQ(result.periods.front().governor_level, 0);
  for (std::size_t i = 1; i < result.periods.size(); ++i) {
    const int prev = result.periods[i - 1].governor_level;
    const int cur = result.periods[i].governor_level;
    EXPECT_GE(cur, prev);
    EXPECT_LE(cur - prev, 1);
  }
  EXPECT_EQ(result.periods.back().governor_level, 5);
  EXPECT_EQ(result.final_governor_level, 5);
}

TEST(GovernedPipeline, DisabledGovernorLeavesResultsBitIdentical) {
  // The core bit-identicality guarantee of the redesign: constructing the
  // governor/fault machinery with everything disabled must not perturb a
  // single field of the result.
  PipelineConfig cfg;
  cfg.aircraft = 300;
  cfg.major_cycles = 1;
  auto a = make_titan_x_pascal();
  const PipelineResult plain = run_pipeline(*a, cfg);
  cfg.governor = rt::GovernorConfig{};  // explicit default: disabled
  cfg.faults = rt::FaultConfig{};
  auto b = make_titan_x_pascal();
  const PipelineResult defaulted = run_pipeline(*b, cfg);
  EXPECT_EQ(plain.virtual_end_ms, defaulted.virtual_end_ms);
  EXPECT_EQ(plain.deadlines().total_met(), defaulted.deadlines().total_met());
  EXPECT_EQ(plain.last_task1, defaulted.last_task1);
  EXPECT_EQ(plain.last_task23, defaulted.last_task23);
  EXPECT_EQ(plain.governor_degrades, 0u);
  EXPECT_EQ(defaulted.governor_degrades, 0u);
}

}  // namespace
}  // namespace atm::tasks
