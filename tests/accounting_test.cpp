// Accounting tests: the modeled-time bookkeeping that the figures are
// built from — device totals, transfer vs kernel attribution, radar-path
// separation, and period logs.
#include <gtest/gtest.h>

#include "src/airfield/setup.hpp"
#include "src/atm/cuda_backend.hpp"
#include "src/atm/mimd_backend.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"

namespace atm::tasks {
namespace {

TEST(Accounting, LoadModelsTheInitialUpload) {
  CudaBackend card(simt::titan_x_pascal());
  EXPECT_EQ(card.device().totals().transfers, 0u);
  card.load(airfield::make_airfield(1000, 3));
  EXPECT_EQ(card.device().totals().transfers, 1u);
  EXPECT_GT(card.device().totals().bytes_moved, 1000u * 8u * 8u);
}

TEST(Accounting, Task1LaunchCountMatchesItsPhases) {
  CudaBackend card(simt::titan_x_pascal());
  card.load(airfield::make_airfield(500, 3));
  card.device().reset_totals();
  core::Rng rng(1);
  airfield::RadarFrame frame = card.generate_radar(rng, {}, nullptr);
  const auto after_radar = card.device().totals().launches;
  EXPECT_EQ(after_radar, 1u);  // GenerateRadarData kernel

  const Task1Result r = card.run_task1(frame, {});
  // expected-position + passes x (reset, scan, ambiguity, resolve) +
  // commit.
  const auto expected_launches =
      1u + 4u * static_cast<unsigned>(r.stats.passes) + 1u;
  EXPECT_EQ(card.device().totals().launches - after_radar,
            expected_launches);
}

TEST(Accounting, FusedTask23IsExactlyTwoLaunches) {
  CudaBackend card(simt::gtx_880m());
  card.load(airfield::make_airfield(400, 5));
  card.device().reset_totals();
  (void)card.run_task23({});
  EXPECT_EQ(card.device().totals().launches, 2u);  // fused + commit
  EXPECT_EQ(card.device().totals().transfers, 0u);  // no round trips
}

TEST(Accounting, SplitTask23PaysTwoExtraTransfers) {
  CudaBackend card(simt::gtx_880m());
  card.load(airfield::make_airfield(400, 5));
  card.device().reset_totals();
  (void)card.run_task23_split({});
  EXPECT_EQ(card.device().totals().launches, 3u);  // detect+resolve+commit
  EXPECT_EQ(card.device().totals().transfers, 2u);  // flags out and back
}

TEST(Accounting, ModeledMsSumsKernelsAndTransfers) {
  CudaBackend card(simt::geforce_9800_gt());
  card.load(airfield::make_airfield(600, 7));
  card.device().reset_totals();
  core::Rng rng(2);
  airfield::RadarFrame frame = card.generate_radar(rng, {}, nullptr);
  const Task1Result r1 = card.run_task1(frame, {});
  const Task23Result r23 = card.run_task23({});
  const auto& totals = card.device().totals();
  double radar_ms = 0.0;
  {
    // Re-derive the radar path's share by running it again on a twin.
    CudaBackend twin(simt::geforce_9800_gt());
    twin.load(airfield::make_airfield(600, 7));
    core::Rng rng2(2);
    (void)twin.generate_radar(rng2, {}, &radar_ms);
  }
  EXPECT_NEAR(totals.kernel_ms + totals.transfer_ms,
              r1.modeled_ms + r23.modeled_ms + radar_ms, 1e-9);
}

TEST(Accounting, RadarPathChargedToRadarNotTask1) {
  // The modeled radar cost must not appear in run_task1's time beyond the
  // one frame upload Task 1 legitimately pays.
  CudaBackend card(simt::titan_x_pascal());
  card.load(airfield::make_airfield(2000, 9));
  core::Rng rng(3);
  double radar_ms = 0.0;
  airfield::RadarFrame frame = card.generate_radar(rng, {}, &radar_ms);
  EXPECT_GT(radar_ms, 0.0);
  const Task1Result r1 = card.run_task1(frame, {});
  // Task 1 includes the frame upload but not the device radar generation
  // or the shuffle download; radar_ms covers those two.
  EXPECT_GT(r1.modeled_ms, 0.0);
}

TEST(Accounting, PeriodLogsCarryPerPeriodDetail) {
  PipelineConfig cfg;
  cfg.aircraft = 300;
  cfg.major_cycles = 1;
  auto backend = make_geforce_9800_gt();
  const PipelineResult result = run_pipeline(*backend, cfg);
  ASSERT_EQ(result.periods.size(), 16u);
  for (int p = 0; p < 16; ++p) {
    const PeriodLog& log = result.periods[static_cast<std::size_t>(p)];
    EXPECT_EQ(log.cycle, 0);
    EXPECT_EQ(log.period, p);
    EXPECT_GT(log.task1_ms, 0.0);
    EXPECT_GT(log.radar_ms, 0.0);  // CUDA radar path is modeled
    EXPECT_EQ(log.task23_ran, p == 15);
  }
  // The monitor's mean equals the logs' mean.
  double sum = 0.0;
  for (const PeriodLog& log : result.periods) sum += log.task1_ms;
  EXPECT_NEAR(result.deadlines().task("task1").duration_ms.mean(), sum / 16.0,
              1e-12);
}

TEST(Accounting, XeonWorkCountersMatchTheoreticalShape) {
  MimdBackend xeon;
  xeon.load(airfield::make_airfield(800, 11));
  (void)xeon.run_task23({});
  const mimd::WorkCounters& work = xeon.last_work();
  EXPECT_EQ(work.items, 800u);
  // Detection sweeps the full shared table once per aircraft, plus rescan
  // sweeps: inner_ops >= n^2.
  EXPECT_GE(work.inner_ops, 800u * 800u);
  EXPECT_GE(work.locked_ops, work.inner_ops);
  EXPECT_EQ(work.parallel_regions, 2u);
}

}  // namespace
}  // namespace atm::tasks
