// Tests for the wall-clock executive mode (the paper's real busy-wait
// loop, scaled down to keep the suite fast).
#include <gtest/gtest.h>

#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/reference_backend.hpp"
#include "src/rt/clock.hpp"

namespace atm::tasks {
namespace {

TEST(WallClock, SmallWorkloadHoldsRealDeadlines) {
  // 100 aircraft with a 40 ms period: the host reference runs Task 1 in
  // well under a millisecond, so every real deadline is met and the run
  // takes (16 periods x 40 ms) of real time.
  PipelineConfig cfg;
  cfg.aircraft = 100;
  cfg.major_cycles = 1;
  cfg.clock_mode = ClockMode::kWallclock;
  cfg.real_period_ms = 40.0;
  ReferenceBackend ref;
  const rt::Stopwatch sw;
  const PipelineResult result = run_pipeline(ref, cfg);
  const double elapsed = sw.elapsed_ms();

  EXPECT_EQ(result.deadlines().total_missed(), 0u);
  EXPECT_EQ(result.deadlines().total_skipped(), 0u);
  // The executive waited out each period: the run cannot finish early.
  EXPECT_GE(elapsed, 16 * 40.0 - 5.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(result.periods.size()), 16.0);
}

TEST(WallClock, ImpossiblePeriodMissesAndSkips) {
  // A 2000-aircraft Tasks 2+3 cannot finish in a 1 ms real period on this
  // host: deadlines are missed and later periods skipped.
  PipelineConfig cfg;
  cfg.aircraft = 2000;
  cfg.major_cycles = 1;
  cfg.clock_mode = ClockMode::kWallclock;
  cfg.real_period_ms = 1.0;
  ReferenceBackend ref;
  const PipelineResult result = run_pipeline(ref, cfg);
  EXPECT_GT(result.deadlines().total_missed() + result.deadlines().total_skipped(),
            0u);
}

TEST(WallClock, DurationsAreRealNotModeled) {
  // In wall-clock mode the recorded durations are host measurements:
  // strictly positive and (for this tiny workload) well under the period.
  PipelineConfig cfg;
  cfg.aircraft = 64;
  cfg.major_cycles = 1;
  cfg.clock_mode = ClockMode::kWallclock;
  cfg.real_period_ms = 25.0;
  ReferenceBackend ref;
  const PipelineResult result = run_pipeline(ref, cfg);
  EXPECT_GT(result.task1_ms.mean(), 0.0);
  EXPECT_LT(result.task1_ms.max(), 25.0);
}

TEST(WallClock, GovernorConvertsSkipsIntoDegradedMetPeriods) {
  // 3000 aircraft brute-force Task 1 takes ~10x a 25 ms real period on
  // this host, so the ungoverned executive misses and skips nearly every
  // instance. The governed executive degrades to the grid broadphase
  // after the first bad period and then *meets* deadlines while degraded.
  PipelineConfig cfg;
  cfg.aircraft = 3000;
  cfg.major_cycles = 2;
  cfg.clock_mode = ClockMode::kWallclock;
  cfg.real_period_ms = 25.0;
  ReferenceBackend ungoverned_ref;
  const PipelineResult ungoverned = run_pipeline(ungoverned_ref, cfg);
  ASSERT_GT(ungoverned.missed_or_skipped(), 4u);

  cfg.governor.enabled = true;
  // Hold every degradation for the whole run: this smoke is about the
  // degrade direction, not the recovery schedule.
  cfg.governor.recover_hold_periods = 1000;
  ReferenceBackend governed_ref;
  const PipelineResult governed = run_pipeline(governed_ref, cfg);

  EXPECT_GT(governed.governor_degrades, 0u);
  EXPECT_LT(governed.missed_or_skipped(), ungoverned.missed_or_skipped());
  // The converted periods: degraded (level > 0) yet meeting the deadline.
  std::size_t degraded_met = 0;
  for (const PeriodLog& log : governed.periods) {
    if (log.governor_level > 0 && log.task1_outcome == rt::Outcome::kMet) {
      ++degraded_met;
    }
  }
  EXPECT_GT(degraded_met, 0u);
}

TEST(WallClock, RecorderWorksInWallClockModeToo) {
  PipelineConfig cfg;
  cfg.aircraft = 32;
  cfg.major_cycles = 1;
  airfield::FlightRecorder recorder(32, 20);
  cfg.recorder = &recorder;
  cfg.clock_mode = ClockMode::kWallclock;
  cfg.real_period_ms = 10.0;
  ReferenceBackend ref;
  run_pipeline(ref, cfg);
  EXPECT_EQ(recorder.recorded(), 16);
}

}  // namespace
}  // namespace atm::tasks
