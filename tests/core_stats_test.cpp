// Tests for streaming statistics (src/core/stats.hpp).
#include "src/core/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/rng.hpp"

namespace atm::core {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(StreamingStats, SingleSample) {
  StreamingStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(StreamingStats, KnownSmallSample) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population variance 4,
  // sample variance 32/7.
  StreamingStats s;
  for (const double x : {2, 4, 4, 4, 5, 5, 7, 9}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeEqualsBulk) {
  Rng rng(11);
  StreamingStats bulk, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    bulk.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), bulk.count());
  EXPECT_NEAR(left.mean(), bulk.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), bulk.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), bulk.min());
  EXPECT_DOUBLE_EQ(left.max(), bulk.max());
}

TEST(StreamingStats, MergeWithEmptySides) {
  StreamingStats a, b;
  a.add(1.0);
  a.add(3.0);
  StreamingStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(StreamingStats, NumericallyStableAtLargeOffset) {
  // Welford must not cancel catastrophically around a large mean.
  StreamingStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25 * 1000.0 / 999.0, 1e-6);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
  const std::vector<double> one{3.0};
  EXPECT_EQ(percentile(one, 0.0), 3.0);
  EXPECT_EQ(percentile(one, 100.0), 3.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Percentile, ClampsOutOfRangeP) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 250.0), 3.0);
}

TEST(Percentile, OfUnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile_of({5.0, 1.0, 3.0}, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile_of({5.0, 1.0, 3.0}, 100.0), 5.0);
}

class PercentileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneTest, MonotoneInP) {
  Rng rng(GetParam());
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(rng.uniform(-50.0, 50.0));
  std::sort(v.begin(), v.end());
  double prev = percentile(v, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = percentile(v, p);
    EXPECT_GE(cur, prev) << "at p = " << p;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace atm::core
