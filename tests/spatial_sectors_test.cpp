// SectorPartition unit tests: the ownership invariants (every inserted
// point has exactly one owner; the owned lists are a disjoint cover) and
// the exactness contract (every point within halo reach of a query is a
// candidate of the query's sector — including queries that were never
// inserted or lie far outside the field, which is how Task 1 maps
// dropout radar returns). The sharded executives' correctness proof
// rests entirely on these properties; the end-to-end half lives in
// sector_equivalence_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/core/rng.hpp"
#include "src/core/spatial/sectors.hpp"

namespace atm::core::spatial {
namespace {

struct Cloud {
  std::vector<double> xs, ys;
};

Cloud random_cloud(std::size_t n, std::uint64_t seed, double half_nm) {
  Cloud c;
  c.xs.reserve(n);
  c.ys.reserve(n);
  core::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    c.xs.push_back(rng.uniform(-half_nm, half_nm));
    c.ys.push_back(rng.uniform(-half_nm, half_nm));
  }
  return c;
}

TEST(SectorPartition, OwnedListsAreADisjointCoverOfTheInput) {
  const Cloud c = random_cloud(500, 0x5EC7, 128.0);
  SectorPartition part;
  part.build(c.xs, c.ys, {}, /*halo_reach_nm=*/2.0, /*sectors_per_axis=*/4);

  ASSERT_EQ(part.sectors_per_axis(), 4);
  ASSERT_EQ(part.sector_count(), 16u);
  EXPECT_EQ(part.size(), c.xs.size());

  std::vector<int> seen(c.xs.size(), 0);
  for (std::size_t s = 0; s < part.sector_count(); ++s) {
    for (const std::int32_t id : part.owned(s)) {
      ASSERT_GE(id, 0);
      ASSERT_LT(static_cast<std::size_t>(id), c.xs.size());
      ++seen[static_cast<std::size_t>(id)];
      EXPECT_EQ(part.owner_of(static_cast<std::size_t>(id)),
                static_cast<int>(s));
      EXPECT_EQ(part.sector_of(c.xs[static_cast<std::size_t>(id)],
                               c.ys[static_cast<std::size_t>(id)]),
                static_cast<int>(s));
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int k) { return k == 1; }))
      << "some point is owned by zero or by multiple sectors";
}

TEST(SectorPartition, MaskedOutPointsAreInvisible) {
  const Cloud c = random_cloud(200, 0xFACE, 100.0);
  std::vector<std::uint8_t> mask(c.xs.size(), 1);
  for (std::size_t i = 0; i < mask.size(); i += 3) mask[i] = 0;
  const std::size_t kept =
      static_cast<std::size_t>(std::count(mask.begin(), mask.end(), 1));

  SectorPartition part;
  part.build(c.xs, c.ys, mask, 1.0, 3);
  EXPECT_EQ(part.size(), kept);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] == 0) {
      EXPECT_EQ(part.owner_of(i), -1);
    } else {
      EXPECT_GE(part.owner_of(i), 0);
    }
  }
  for (std::size_t s = 0; s < part.sector_count(); ++s) {
    for (const std::int32_t id : part.candidates(s)) {
      EXPECT_NE(mask[static_cast<std::size_t>(id)], 0)
          << "masked-out point leaked into a candidate list";
    }
  }
}

TEST(SectorPartition, CoversOracleHoldsForRandomQueries) {
  // The exactness contract, checked by the partition's own debug oracle
  // at several reaches and sector counts: queries both inside and well
  // outside the point cloud's bounding box.
  const Cloud c = random_cloud(400, 0xC0FFEE, 128.0);
  for (const int axis : {1, 2, 4, 7}) {
    for (const double reach : {0.5, 2.0, 17.0}) {
      SectorPartition part;
      part.build(c.xs, c.ys, {}, reach, axis);
      core::Rng rng(0xD1CE + static_cast<std::uint64_t>(axis));
      for (int q = 0; q < 200; ++q) {
        const double px = rng.uniform(-200.0, 200.0);
        const double py = rng.uniform(-200.0, 200.0);
        EXPECT_TRUE(part.covers(px, py, c.xs, c.ys))
            << "axis=" << axis << " reach=" << reach << " query=(" << px
            << ", " << py << ")";
      }
    }
  }
}

TEST(SectorPartition, BoundaryStraddlingPairsSeeEachOther) {
  // Two points hugging a sector boundary from opposite sides, closer
  // than the halo reach: each must appear in the other owner's candidate
  // list, or a sharded pair scan would silently drop the pair.
  std::vector<double> xs, ys;
  // Spread anchor points so the 2x2 partition's midline is near 0.
  xs = {-100.0, 100.0, -0.05, 0.05};
  ys = {-100.0, 100.0, 0.2, 0.2};
  SectorPartition part;
  part.build(xs, ys, {}, /*halo_reach_nm=*/1.0, /*sectors_per_axis=*/2);

  const int left = part.sector_of(xs[2], ys[2]);
  const int right = part.sector_of(xs[3], ys[3]);
  ASSERT_NE(left, right) << "fixture no longer straddles a boundary";

  const auto contains = [&](std::size_t s, std::int32_t id) {
    const auto span = part.candidates(s);
    return std::find(span.begin(), span.end(), id) != span.end();
  };
  EXPECT_TRUE(contains(static_cast<std::size_t>(left), 3))
      << "right-hand point missing from left sector's halo";
  EXPECT_TRUE(contains(static_cast<std::size_t>(right), 2))
      << "left-hand point missing from right sector's halo";
  EXPECT_GE(part.halo_total(), 2u);
}

TEST(SectorPartition, FarOutOfBoundsQueriesClampIntoEdgeSectors) {
  // Task 1 maps dropout radar returns (coordinate 1e6) through
  // sector_of; they must clamp into a valid sector and keep the covers
  // contract (vacuously — nothing is within reach of 1e6).
  const Cloud c = random_cloud(100, 0xABBA, 128.0);
  SectorPartition part;
  part.build(c.xs, c.ys, {}, 2.0, 4);
  const int s = part.sector_of(1.0e6, 1.0e6);
  EXPECT_GE(s, 0);
  EXPECT_LT(s, static_cast<int>(part.sector_count()));
  EXPECT_TRUE(part.covers(1.0e6, 1.0e6, c.xs, c.ys));
}

TEST(SectorPartition, SingleSectorOwnsAndListsEverything) {
  const Cloud c = random_cloud(64, 0x1, 50.0);
  SectorPartition part;
  part.build(c.xs, c.ys, {}, 2.0, 1);
  EXPECT_EQ(part.sector_count(), 1u);
  EXPECT_EQ(part.owned(0).size(), c.xs.size());
  EXPECT_EQ(part.candidates(0).size(), c.xs.size());
  EXPECT_EQ(part.halo_total(), 0u);
}

TEST(SectorPartition, RebuildReusesBuffersAndStaysConsistent) {
  // The executives rebuild the partition every pass/period with changing
  // reaches and sector counts; stale state from a previous build must
  // never leak.
  SectorPartition part;
  const Cloud big = random_cloud(300, 0x77, 128.0);
  part.build(big.xs, big.ys, {}, 4.0, 6);
  const Cloud small = random_cloud(40, 0x78, 16.0);
  part.build(small.xs, small.ys, {}, 1.0, 2);
  EXPECT_EQ(part.size(), small.xs.size());
  EXPECT_EQ(part.sector_count(), 4u);
  std::size_t owned = 0;
  for (std::size_t s = 0; s < part.sector_count(); ++s) {
    owned += part.owned(s).size();
  }
  EXPECT_EQ(owned, small.xs.size());
  core::Rng rng(0x79);
  for (int q = 0; q < 100; ++q) {
    EXPECT_TRUE(part.covers(rng.uniform(-20.0, 20.0),
                            rng.uniform(-20.0, 20.0), small.xs, small.ys));
  }
}

TEST(ShardMode, NamesRoundTrip) {
  EXPECT_EQ(to_string(ShardMode::kNone), "none");
  EXPECT_EQ(to_string(ShardMode::kSectors), "sectors");
  ASSERT_TRUE(parse_shard_mode("none").has_value());
  EXPECT_EQ(*parse_shard_mode("none"), ShardMode::kNone);
  ASSERT_TRUE(parse_shard_mode("sectors").has_value());
  EXPECT_EQ(*parse_shard_mode("sectors"), ShardMode::kSectors);
  EXPECT_FALSE(parse_shard_mode("grid").has_value());
  EXPECT_FALSE(parse_shard_mode("").has_value());
  EXPECT_FALSE(parse_shard_mode("Sectors").has_value());
}

}  // namespace
}  // namespace atm::core::spatial
