// Tests for the two associative-machine adapters: the same algorithm
// template must compute identical results on both, while their costs
// differ exactly by the virtualization the ClearSpeed emulation pays.
#include <gtest/gtest.h>

#include "src/airfield/setup.hpp"
#include "src/atm/ap_backend.hpp"
#include "src/atm/clearspeed_backend.hpp"

namespace atm::tasks {
namespace {

TEST(AssocAdapters, SearchAndRespondersAgree) {
  ApAssocMachine ap(10, ap::staran_model());
  ClearSpeedAssocMachine cs(10, simd::csx600_spec());
  assoc::Mask ma, mc;
  const auto pred = [](std::size_t i) { return i % 4 == 1; };
  ap.search(pred, ma, 1);
  cs.search(pred, mc, 1);
  EXPECT_EQ(ma, mc);
  EXPECT_EQ(ap.any(ma), cs.any(mc));
  EXPECT_EQ(ap.first(ma), cs.first(mc));
  EXPECT_EQ(ap.count(ma), cs.count(mc));
}

TEST(AssocAdapters, MinIndexAgreesIncludingTies) {
  ApAssocMachine ap(6, ap::staran_model());
  ClearSpeedAssocMachine cs(6, simd::csx600_spec());
  const std::vector<double> keys{3.0, 1.0, 1.0, 5.0, 0.5, 0.5};
  const assoc::Mask mask{1, 1, 1, 1, 0, 1};  // 0.5@4 masked out
  EXPECT_EQ(ap.min_index(keys, mask), 5u);
  EXPECT_EQ(cs.min_index(keys, mask), 5u);
  const assoc::Mask none(6, 0);
  EXPECT_EQ(ap.min_index(keys, none), ApAssocMachine::npos);
  EXPECT_EQ(cs.min_index(keys, none), ClearSpeedAssocMachine::npos);
}

TEST(AssocAdapters, ApCostIsSizeIndependentClearSpeedIsNot) {
  // One parallel op on 100 records vs 100000 records.
  ApAssocMachine ap_small(100, ap::staran_model());
  ApAssocMachine ap_large(100000, ap::staran_model());
  ap_small.parallel_all([](std::size_t) {}, 1);
  ap_large.parallel_all([](std::size_t) {}, 1);
  EXPECT_DOUBLE_EQ(ap_small.elapsed_ms(), ap_large.elapsed_ms());

  ClearSpeedAssocMachine cs_small(100, simd::csx600_spec());
  ClearSpeedAssocMachine cs_large(100000, simd::csx600_spec());
  cs_small.parallel_all([](std::size_t) {}, 1);
  cs_large.parallel_all([](std::size_t) {}, 1);
  // 100000 records on 192 PEs = 521 rounds vs 1 round.
  EXPECT_NEAR(cs_large.elapsed_ms() / cs_small.elapsed_ms(), 521.0, 1.0);
}

TEST(AssocAdapters, MaskedParallelCostsFullStepOnLockstep) {
  // On a lock-step machine disabled PEs idle but the step still issues.
  ClearSpeedAssocMachine cs(192, simd::csx600_spec());
  assoc::Mask none(192, 0);
  int calls = 0;
  cs.parallel_masked(none, [&](std::size_t) { ++calls; }, 1);
  EXPECT_EQ(calls, 0);
  EXPECT_GT(cs.elapsed_ms(), 0.0);
}

TEST(AssocAdapters, SharedTemplatesAgreeOnRealWorkload) {
  // The full associative Task 1 + Tasks 2+3 templates, both adapters,
  // identical outcomes (the backend equivalence suite covers this against
  // the reference; this pins the two adapters against each other at the
  // template level).
  const airfield::FlightDb initial = airfield::make_airfield(400, 77);
  airfield::FlightDb db_ap = initial, db_cs = initial;
  ApAssocMachine ap(400, ap::staran_model());
  ClearSpeedAssocMachine cs(400, simd::csx600_spec());

  core::Rng ra(3), rb(3);
  airfield::RadarFrame fa = airfield::generate_radar(db_ap, ra, {});
  airfield::RadarFrame fb = airfield::generate_radar(db_cs, rb, {});
  const Task1Stats s1a = assoc::assoc_task1(ap, db_ap, fa, {});
  const Task1Stats s1b = assoc::assoc_task1(cs, db_cs, fb, {});
  EXPECT_EQ(s1a, s1b);

  const Task23Stats s23a = assoc::assoc_task23(ap, db_ap, {});
  const Task23Stats s23b = assoc::assoc_task23(cs, db_cs, {});
  EXPECT_EQ(s23a, s23b);
  EXPECT_TRUE(db_ap.same_flight_state(db_cs));

  // And the cost relationship: at 400 records the emulation pays
  // ceil(400/192) = 3 rounds per parallel op, but its 210 MHz word ops
  // are cheaper than the AP's bit-serial ones — both times positive,
  // both machines did the same logical ops.
  EXPECT_GT(ap.elapsed_ms(), 0.0);
  EXPECT_GT(cs.elapsed_ms(), 0.0);
}

}  // namespace
}  // namespace atm::tasks
