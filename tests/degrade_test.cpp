// Boundary tests for the degradation ladder (src/atm/degrade.hpp) and
// the governor thresholds that drive it (src/rt/governor.hpp): exact
// utilization-threshold edges, the 8x8 sector cap (including the
// clamp-DOWN when a run already shards finer than the cap), and the
// shed-sporadic rung under zero sporadic load. The equivalence and
// fault-harness tests cover the ladder's happy paths; this file pins the
// edges.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/atm/degrade.hpp"
#include "src/atm/extended/full_pipeline.hpp"
#include "src/atm/reference_backend.hpp"
#include "src/atm/scenarios.hpp"
#include "src/rt/governor.hpp"

namespace atm::tasks {
namespace {

rt::Governor make_governor(const rt::GovernorConfig& config) {
  return rt::Governor(config, degradation_ladder());
}

rt::GovernorConfig enabled_defaults() {
  rt::GovernorConfig config;
  config.enabled = true;
  return config;  // degrade 0.90 / recover 0.60, hold 1 / 4
}

// --- ladder steps ----------------------------------------------------------

TEST(DegradeLadderTest, LevelZeroIsTheIdentity) {
  const Task1Params t1_base;
  const Task23Params t23_base;
  Task1Params t1 = t1_base;
  Task23Params t23 = t23_base;
  apply_degradation(0, t1, t23);
  EXPECT_EQ(t1.broadphase, t1_base.broadphase);
  EXPECT_EQ(t1.shard, t1_base.shard);
  EXPECT_EQ(t1.retries, t1_base.retries);
  EXPECT_EQ(t23.broadphase, t23_base.broadphase);
  EXPECT_EQ(t23.turn_step_deg, t23_base.turn_step_deg);
}

TEST(DegradeLadderTest, LevelOneSwitchesBothBundlesToGrid) {
  Task1Params t1;
  Task23Params t23;
  apply_degradation(1, t1, t23);
  EXPECT_EQ(t1.broadphase, core::spatial::BroadphaseMode::kGrid);
  EXPECT_EQ(t23.broadphase, core::spatial::BroadphaseMode::kGrid);
  // Step 1 alone: sharding and the other knobs untouched.
  EXPECT_EQ(t1.shard, core::spatial::ShardMode::kNone);
  EXPECT_EQ(t1.retries, Task1Params{}.retries);
  EXPECT_EQ(t23.turn_step_deg, Task23Params{}.turn_step_deg);
}

TEST(DegradeLadderTest, LevelTwoEnablesSectorsAtFourPerAxis) {
  Task1Params t1;
  Task23Params t23;
  t1.shard = core::spatial::ShardMode::kNone;
  t1.sectors_per_axis = 2;  // below the enable floor
  t23.shard = core::spatial::ShardMode::kNone;
  t23.sectors_per_axis = 2;
  apply_degradation(2, t1, t23);
  EXPECT_EQ(t1.shard, core::spatial::ShardMode::kSectors);
  EXPECT_EQ(t1.sectors_per_axis, 4);
  EXPECT_EQ(t23.shard, core::spatial::ShardMode::kSectors);
  EXPECT_EQ(t23.sectors_per_axis, 4);
}

TEST(DegradeLadderTest, LevelTwoKeepsAFinerUnshardedConfiguration) {
  Task1Params t1;
  Task23Params t23;
  t1.sectors_per_axis = 6;  // unsharded but already configured finer
  t23.sectors_per_axis = 6;
  apply_degradation(2, t1, t23);
  EXPECT_EQ(t1.sectors_per_axis, 6);  // max(6, 4): enable, don't coarsen
  EXPECT_EQ(t23.sectors_per_axis, 6);
}

TEST(DegradeLadderTest, LevelTwoDoublesSectorsUpToTheCap) {
  const struct {
    int start;
    int expected;
  } kCases[] = {
      {2, 4},   // doubles
      {4, 8},   // doubles to exactly the cap
      {6, 8},   // doubling would overshoot: clamped at 8
      {8, 8},   // already at the cap: stays
      {16, 8},  // finer than the cap: clamped DOWN to 8
  };
  for (const auto& c : kCases) {
    Task1Params t1;
    Task23Params t23;
    t1.shard = core::spatial::ShardMode::kSectors;
    t1.sectors_per_axis = c.start;
    t23.shard = core::spatial::ShardMode::kSectors;
    t23.sectors_per_axis = c.start;
    apply_degradation(2, t1, t23);
    EXPECT_EQ(t1.sectors_per_axis, c.expected) << "start " << c.start;
    EXPECT_EQ(t23.sectors_per_axis, c.expected) << "start " << c.start;
    EXPECT_EQ(t1.shard, core::spatial::ShardMode::kSectors);
  }
}

TEST(DegradeLadderTest, LevelThreeCapsRetriesWithoutRaisingThem) {
  for (const int start : {0, 1, 2, 5}) {
    Task1Params t1;
    Task23Params t23;
    t1.retries = start;
    apply_degradation(3, t1, t23);
    EXPECT_EQ(t1.retries, std::min(start, 1)) << "start " << start;
  }
}

TEST(DegradeLadderTest, LevelFourCoarsensTheSweepUpToTurnMax) {
  {
    Task1Params t1;
    Task23Params t23;
    t23.turn_step_deg = 5.0;
    t23.turn_max_deg = 30.0;
    apply_degradation(4, t1, t23);
    EXPECT_DOUBLE_EQ(t23.turn_step_deg, 10.0);
  }
  {
    Task1Params t1;
    Task23Params t23;
    t23.turn_step_deg = 20.0;  // doubling would pass turn_max
    t23.turn_max_deg = 30.0;
    apply_degradation(4, t1, t23);
    EXPECT_DOUBLE_EQ(t23.turn_step_deg, 30.0);
  }
  {
    Task1Params t1;
    Task23Params t23;
    t23.turn_step_deg = 30.0;  // already at the extreme-angles-only sweep
    t23.turn_max_deg = 30.0;
    apply_degradation(4, t1, t23);
    EXPECT_DOUBLE_EQ(t23.turn_step_deg, 30.0);
  }
}

TEST(DegradeLadderTest, OnlyTheTopRungShedsSporadic) {
  const int top = static_cast<int>(degradation_ladder().size());
  for (int level = 0; level < top; ++level) {
    EXPECT_FALSE(degradation_sheds_sporadic(level)) << "level " << level;
  }
  EXPECT_TRUE(degradation_sheds_sporadic(top));
}

TEST(DegradeLadderTest, StepsAreCumulative) {
  Task1Params t1;
  Task23Params t23;
  apply_degradation(static_cast<int>(degradation_ladder().size()), t1, t23);
  EXPECT_EQ(t1.broadphase, core::spatial::BroadphaseMode::kGrid);
  EXPECT_EQ(t1.shard, core::spatial::ShardMode::kSectors);
  EXPECT_EQ(t1.retries, std::min(Task1Params{}.retries, 1));
  EXPECT_EQ(t23.shard, core::spatial::ShardMode::kSectors);
  EXPECT_GT(t23.turn_step_deg, Task23Params{}.turn_step_deg);
}

// --- governor threshold edges ---------------------------------------------

TEST(GovernorBoundaryTest, UtilizationExactlyAtDegradeThresholdHolds) {
  rt::Governor governor = make_governor(enabled_defaults());
  // > is strict: 90.0 / 100.0 == 0.90 is NOT hot (it is deadband).
  EXPECT_EQ(governor.observe(90.0, 100.0, false),
            rt::GovernorAction::kHold);
  EXPECT_EQ(governor.level(), 0);
}

TEST(GovernorBoundaryTest, UtilizationJustAboveDegradeThresholdDegrades) {
  rt::Governor governor = make_governor(enabled_defaults());
  EXPECT_EQ(governor.observe(90.0 + 1e-9, 100.0, false),
            rt::GovernorAction::kDegrade);
  EXPECT_EQ(governor.level(), 1);
}

TEST(GovernorBoundaryTest, DeadlineTroubleDegradesRegardlessOfUtilization) {
  rt::Governor governor = make_governor(enabled_defaults());
  EXPECT_EQ(governor.observe(1.0, 100.0, true),
            rt::GovernorAction::kDegrade);
  EXPECT_EQ(governor.level(), 1);
}

TEST(GovernorBoundaryTest, UtilizationExactlyAtRecoverThresholdIsDeadband) {
  rt::Governor governor = make_governor(enabled_defaults());
  ASSERT_EQ(governor.observe(100.0, 100.0, false),
            rt::GovernorAction::kDegrade);
  // < is strict: 60.0 / 100.0 == 0.60 never counts toward the calm
  // streak, no matter how long it persists.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(governor.observe(60.0, 100.0, false),
              rt::GovernorAction::kHold)
        << "period " << i;
  }
  EXPECT_EQ(governor.level(), 1);
}

TEST(GovernorBoundaryTest, RecoveryNeedsTheFullCalmHold) {
  rt::Governor governor = make_governor(enabled_defaults());
  ASSERT_EQ(governor.observe(100.0, 100.0, false),
            rt::GovernorAction::kDegrade);
  // recover_hold_periods = 4: three calm periods hold, the fourth steps.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(governor.observe(60.0 - 1e-6, 100.0, false),
              rt::GovernorAction::kHold)
        << "calm period " << i;
  }
  EXPECT_EQ(governor.observe(60.0 - 1e-6, 100.0, false),
            rt::GovernorAction::kRecover);
  EXPECT_EQ(governor.level(), 0);
}

TEST(GovernorBoundaryTest, DeadbandPeriodRestartsTheCalmStreak) {
  rt::Governor governor = make_governor(enabled_defaults());
  ASSERT_EQ(governor.observe(100.0, 100.0, false),
            rt::GovernorAction::kDegrade);
  // Three calm periods, then one deadband period: the streak restarts,
  // so three MORE calm periods still only hold.
  for (int i = 0; i < 3; ++i) {
    governor.observe(50.0, 100.0, false);
  }
  EXPECT_EQ(governor.observe(75.0, 100.0, false),
            rt::GovernorAction::kHold);  // deadband
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(governor.observe(50.0, 100.0, false),
              rt::GovernorAction::kHold)
        << "calm period " << i << " after deadband";
  }
  EXPECT_EQ(governor.observe(50.0, 100.0, false),
            rt::GovernorAction::kRecover);
}

TEST(GovernorBoundaryTest, LevelNeverLeavesTheLadder) {
  rt::GovernorConfig config = enabled_defaults();
  config.recover_hold_periods = 1;
  rt::Governor governor = make_governor(config);
  const int top = governor.max_level();
  ASSERT_EQ(top, static_cast<int>(degradation_ladder().size()));
  // Hammer hot observations: level saturates at the ladder top.
  for (int i = 0; i < top + 5; ++i) {
    governor.observe(200.0, 100.0, false);
  }
  EXPECT_EQ(governor.level(), top);
  // Hammer calm observations: level saturates at 0.
  for (int i = 0; i < top + 5; ++i) {
    governor.observe(1.0, 100.0, false);
  }
  EXPECT_EQ(governor.level(), 0);
  EXPECT_EQ(governor.observe(1.0, 100.0, false), rt::GovernorAction::kHold);
  EXPECT_EQ(governor.level(), 0);
}

TEST(GovernorBoundaryTest, DisabledGovernorNeverMoves) {
  rt::GovernorConfig config;  // enabled = false
  rt::Governor governor = make_governor(config);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(governor.observe(1000.0, 100.0, true),
              rt::GovernorAction::kHold);
  }
  EXPECT_EQ(governor.level(), 0);
  EXPECT_EQ(governor.degrade_count(), 0u);
}

// --- shed-sporadic under zero sporadic load --------------------------------

TEST(DegradeLadderTest, SheddingWithZeroSporadicLoadShedsNothing) {
  // Force the governor to the top rung immediately; with
  // queries_per_batch = 0 there are no batches to shed, so the shed
  // counter must stay 0 (shedding "all zero batches" is a no-op, not an
  // accounting artifact) while the governor itself still bottoms out.
  Scenario scenario = drone_swarm();
  extended::FullSystemConfig cfg = make_full_config(scenario, 1, 7);
  cfg.aircraft = 64;
  cfg.sporadic.queries_per_batch = 0;
  cfg.governor.enabled = true;
  cfg.governor.degrade_utilization = 1e-9;  // any measured work is "hot"
  cfg.governor.recover_utilization = 0.0;
  cfg.governor.degrade_hold_periods = 1;

  ReferenceBackend backend;
  const extended::FullSystemResult result =
      extended::run_full_system(backend, cfg);
  EXPECT_EQ(result.final_governor_level,
            static_cast<int>(degradation_ladder().size()));
  EXPECT_EQ(result.sporadic_shed, 0u);
  EXPECT_EQ(result.last_sporadic.queries, 0u);
  EXPECT_EQ(result.last_sporadic.hits, 0u);
}

TEST(DegradeLadderTest, SheddingWithSporadicLoadCountsShedBatches) {
  // Positive control for the zero-load case: same forced-degrade run
  // with a real query mix does shed batches once the top rung engages.
  Scenario scenario = drone_swarm();
  extended::FullSystemConfig cfg = make_full_config(scenario, 1, 7);
  cfg.aircraft = 64;
  cfg.sporadic.queries_per_batch = 3;
  cfg.governor.enabled = true;
  cfg.governor.degrade_utilization = 1e-9;
  cfg.governor.recover_utilization = 0.0;
  cfg.governor.degrade_hold_periods = 1;

  ReferenceBackend backend;
  const extended::FullSystemResult result =
      extended::run_full_system(backend, cfg);
  EXPECT_EQ(result.final_governor_level,
            static_cast<int>(degradation_ladder().size()));
  EXPECT_GT(result.sporadic_shed, 0u);
}

}  // namespace
}  // namespace atm::tasks
