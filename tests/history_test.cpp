// Tests for flight-history recording and retrace.
#include "src/airfield/history.hpp"

#include <gtest/gtest.h>

#include "src/airfield/setup.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"

namespace atm::airfield {
namespace {

FlightDb db_at(double x, double y) {
  FlightDb db(1);
  db.x[0] = x;
  db.y[0] = y;
  db.alt[0] = 10000.0;
  return db;
}

TEST(FlightRecorder, RejectsBadConstruction) {
  EXPECT_THROW(FlightRecorder(5, 0), std::invalid_argument);
  FlightRecorder rec(2, 4);
  FlightDb wrong(3);
  EXPECT_THROW(rec.record(wrong), std::invalid_argument);
}

TEST(FlightRecorder, EmptyRecorderAnswersNothing) {
  FlightRecorder rec(3, 8);
  EXPECT_EQ(rec.recorded(), 0);
  EXPECT_EQ(rec.latest_period(), -1);
  EXPECT_FALSE(rec.last_known(0).has_value());
  EXPECT_TRUE(rec.retrace(0, 5).empty());
  EXPECT_FALSE(rec.extrapolate(0, 10.0).has_value());
}

TEST(FlightRecorder, RetraceReturnsOldestFirst) {
  FlightRecorder rec(1, 8);
  for (int p = 0; p < 5; ++p) {
    rec.record(db_at(static_cast<double>(p), 0.0));
  }
  const auto track = rec.retrace(0, 3);
  ASSERT_EQ(track.size(), 3u);
  EXPECT_EQ(track[0].period, 2);
  EXPECT_DOUBLE_EQ(track[0].x, 2.0);
  EXPECT_EQ(track[2].period, 4);
  EXPECT_DOUBLE_EQ(track[2].x, 4.0);
}

TEST(FlightRecorder, RingBufferEvictsOldest) {
  FlightRecorder rec(1, 4);
  for (int p = 0; p < 10; ++p) {
    rec.record(db_at(static_cast<double>(p), 0.0));
  }
  EXPECT_EQ(rec.recorded(), 4);
  EXPECT_EQ(rec.latest_period(), 9);
  const auto track = rec.retrace(0, 100);  // ask for more than held
  ASSERT_EQ(track.size(), 4u);
  EXPECT_EQ(track.front().period, 6);
  EXPECT_EQ(track.back().period, 9);
}

TEST(FlightRecorder, LastKnownIsMostRecent) {
  FlightRecorder rec(1, 4);
  rec.record(db_at(1.0, 2.0));
  rec.record(db_at(3.0, 4.0));
  const auto last = rec.last_known(0);
  ASSERT_TRUE(last.has_value());
  EXPECT_DOUBLE_EQ(last->x, 3.0);
  EXPECT_DOUBLE_EQ(last->y, 4.0);
}

TEST(FlightRecorder, ExtrapolatesAlongLastLeg) {
  FlightRecorder rec(1, 4);
  rec.record(db_at(0.0, 0.0));
  rec.record(db_at(1.0, -0.5));
  const auto est = rec.extrapolate(0, 10.0);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->x, 11.0);
  EXPECT_DOUBLE_EQ(est->y, -5.5);
}

TEST(FlightRecorder, OutOfRangeAircraftRejected) {
  FlightRecorder rec(2, 4);
  rec.record(FlightDb(2));
  EXPECT_FALSE(rec.last_known(-1).has_value());
  EXPECT_FALSE(rec.last_known(2).has_value());
  EXPECT_TRUE(rec.retrace(5, 3).empty());
}

TEST(FlightRecorder, PipelineRecordsEveryPeriod) {
  tasks::PipelineConfig cfg;
  cfg.aircraft = 100;
  cfg.major_cycles = 2;
  FlightRecorder recorder(100, 64);
  cfg.recorder = &recorder;
  auto backend = tasks::make_titan_x_pascal();
  tasks::run_pipeline(*backend, cfg);

  EXPECT_EQ(recorder.recorded(), 32);
  // The retrace ends exactly at the aircraft's current tracked position.
  const auto last = recorder.last_known(7);
  ASSERT_TRUE(last.has_value());
  EXPECT_DOUBLE_EQ(last->x, backend->state().x[7]);
  EXPECT_DOUBLE_EQ(last->y, backend->state().y[7]);

  // A full retrace is a plausible flight: per-period displacement bounded
  // by max speed (600 knots = 1/12 nm per period) plus radar noise,
  // except at grid re-entry jumps.
  const auto track = recorder.retrace(7, 32);
  ASSERT_EQ(track.size(), 32u);
  for (std::size_t k = 1; k < track.size(); ++k) {
    const double step = std::hypot(track[k].x - track[k - 1].x,
                                   track[k].y - track[k - 1].y);
    if (step > 1.0) continue;  // re-entry teleport to (-x, -y)
    EXPECT_LE(step, 600.0 / 7200.0 + 0.5 + 1e-9);
  }
}

TEST(FlightRecorder, SupportsDisappearedAircraftWorkflow) {
  // The paper's scenario: an aircraft "disappears" (transponder off);
  // the saved radar retraces it and extrapolates a search area.
  tasks::PipelineConfig cfg;
  cfg.aircraft = 50;
  cfg.major_cycles = 1;
  FlightRecorder recorder(50, 16);
  cfg.recorder = &recorder;
  auto backend = tasks::make_gtx_880m();
  tasks::run_pipeline(*backend, cfg);

  // "Lose" aircraft 13 now; retrace and extrapolate 2 minutes ahead.
  const auto est = recorder.extrapolate(13, 240.0);
  ASSERT_TRUE(est.has_value());
  const auto last = recorder.last_known(13);
  ASSERT_TRUE(last.has_value());
  // The estimate continues the last leg. A leg is at most max speed
  // (600 knots = 1/12 nm/period) plus the radar-noise delta between two
  // tracked positions (up to ~0.7 nm), so the 240-period search point
  // stays within 240 x 0.8 nm of the last known position.
  EXPECT_LT(std::hypot(est->x - last->x, est->y - last->y), 240.0 * 0.8);
  EXPECT_EQ(est->period, last->period + 240);
}

}  // namespace
}  // namespace atm::airfield
