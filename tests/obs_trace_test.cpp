// Tests for the observability layer (src/obs) and its wiring through the
// executive: event counts and ordering, agreement with the DeadlineMonitor
// aggregates, the null-sink bit-identical guarantee, and the deprecated
// pipeline wrappers' back-compat behavior.
#include <gtest/gtest.h>

#include <sstream>

#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/reference_backend.hpp"
#include "src/obs/jsonl_sink.hpp"
#include "src/obs/trace.hpp"

namespace atm::tasks {
namespace {

using obs::EventKind;
using obs::RecordingSink;
using obs::TraceEvent;

PipelineConfig two_cycle_config(obs::TraceSink* sink) {
  PipelineConfig cfg;
  cfg.aircraft = 300;
  cfg.major_cycles = 2;
  cfg.trace = sink;
  return cfg;
}

TEST(ObsTrace, TaskEventCountsMatchSchedule) {
  RecordingSink sink;
  ReferenceBackend ref;
  const PipelineResult result = run_pipeline(ref, two_cycle_config(&sink));

  // 16 Task-1 events per cycle, exactly one Task-2+3 event per cycle.
  EXPECT_EQ(sink.count(EventKind::kTask, "task1"), 32u);
  EXPECT_EQ(sink.count(EventKind::kTask, "task23"), 2u);
  // Radar generation precedes every period.
  EXPECT_EQ(sink.count(EventKind::kTask, "radar"), 32u);
  // Spans: one per cycle, one per period.
  EXPECT_EQ(sink.count(EventKind::kSpanBegin, "cycle"), 2u);
  EXPECT_EQ(sink.count(EventKind::kSpanEnd, "cycle"), 2u);
  EXPECT_EQ(sink.count(EventKind::kSpanBegin, "period"), 32u);
  EXPECT_EQ(sink.count(EventKind::kSpanEnd, "period"), 32u);
  // Deadline events agree with the monitor's aggregates.
  EXPECT_EQ(sink.count_outcome("task1", "met"),
            result.deadlines().task("task1").met);
  EXPECT_EQ(sink.count_outcome("task23", "met"),
            result.deadlines().task("task23").met);
  EXPECT_EQ(sink.count(EventKind::kDeadline),
            result.deadlines().total_met() + result.deadlines().total_missed() +
                result.deadlines().total_skipped());
}

TEST(ObsTrace, EventsCarryContextAndPayload) {
  RecordingSink sink;
  auto titan = make_titan_x_pascal();
  run_pipeline(*titan, two_cycle_config(&sink));

  int task1_seen = 0;
  for (const TraceEvent& ev : sink.events()) {
    if (ev.kind != EventKind::kTask || ev.name != "task1") continue;
    ++task1_seen;
    EXPECT_EQ(ev.backend, titan->name());
    EXPECT_GE(ev.cycle, 0);
    EXPECT_LT(ev.cycle, 2);
    EXPECT_GE(ev.period, 0);
    EXPECT_LT(ev.period, 16);
    EXPECT_GT(ev.modeled_ms, 0.0);
    EXPECT_GE(ev.measured_ms, 0.0);
    EXPECT_EQ(ev.aircraft, 300u);
    EXPECT_GE(ev.passes, 1);
  }
  EXPECT_EQ(task1_seen, 32);
  // Task-2+3 events carry the conflict/resolution counters.
  for (const TraceEvent& ev : sink.events()) {
    if (ev.kind != EventKind::kTask || ev.name != "task23") continue;
    EXPECT_GE(ev.conflicts, 0);
    EXPECT_GE(ev.resolved, 0);
  }
}

TEST(ObsTrace, OrderingTaskEventsInsideTheirPeriodSpan) {
  RecordingSink sink;
  ReferenceBackend ref;
  PipelineConfig cfg = two_cycle_config(&sink);
  cfg.major_cycles = 1;
  run_pipeline(ref, cfg);

  int open_periods = 0;
  for (const TraceEvent& ev : sink.events()) {
    if (ev.kind == EventKind::kSpanBegin && ev.name == "period") {
      ++open_periods;
    } else if (ev.kind == EventKind::kSpanEnd && ev.name == "period") {
      --open_periods;
      EXPECT_GE(open_periods, 0);
    } else if (ev.kind == EventKind::kTask) {
      // Every task executes inside exactly one period span.
      EXPECT_EQ(open_periods, 1) << "task " << ev.name << " outside period";
    }
  }
  EXPECT_EQ(open_periods, 0);
}

TEST(ObsTrace, MissAndSkipEventsAgreeWithMonitor) {
  // A pathologically slow platform: every task blows the period, so the
  // trace must show the same misses and skips the monitor counts.
  class SlowBackend final : public ReferenceBackend {
   protected:
    Task1Result do_run_task1(airfield::RadarFrame& frame,
                             const Task1Params& params) override {
      Task1Result r = ReferenceBackend::do_run_task1(frame, params);
      r.modeled_ms = 1200.0;
      return r;
    }
  };
  RecordingSink sink;
  SlowBackend slow;
  PipelineConfig cfg;
  cfg.aircraft = 50;
  cfg.major_cycles = 1;
  cfg.trace = &sink;
  const PipelineResult result = run_pipeline(slow, cfg);

  ASSERT_GT(result.deadlines().total_missed(), 0u);
  ASSERT_GT(result.deadlines().total_skipped(), 0u);
  std::uint64_t missed = 0;
  std::uint64_t skipped = 0;
  for (const TraceEvent& ev : sink.events()) {
    if (ev.kind != EventKind::kDeadline) continue;
    if (ev.outcome == "missed") {
      ++missed;
      EXPECT_LT(ev.slack_ms, 0.0);  // negative slack on a miss
    } else if (ev.outcome == "skipped") {
      ++skipped;
    }
  }
  EXPECT_EQ(missed, result.deadlines().total_missed());
  EXPECT_EQ(skipped, result.deadlines().total_skipped());
}

TEST(ObsTrace, NullSinkProducesBitIdenticalResults) {
  auto traced = make_titan_x_pascal();
  auto bare = make_titan_x_pascal();
  RecordingSink sink;
  PipelineConfig cfg;
  cfg.aircraft = 400;
  cfg.major_cycles = 2;
  cfg.seed = 7;
  PipelineConfig traced_cfg = cfg;
  traced_cfg.trace = &sink;
  const PipelineResult with = run_pipeline(*traced, traced_cfg);
  const PipelineResult without = run_pipeline(*bare, cfg);

  ASSERT_EQ(with.periods.size(), without.periods.size());
  for (std::size_t i = 0; i < with.periods.size(); ++i) {
    EXPECT_EQ(with.periods[i].task1_ms, without.periods[i].task1_ms);
    EXPECT_EQ(with.periods[i].task23_ms, without.periods[i].task23_ms);
    EXPECT_EQ(with.periods[i].wrapped, without.periods[i].wrapped);
    EXPECT_EQ(with.periods[i].task1_outcome, without.periods[i].task1_outcome);
  }
  EXPECT_EQ(with.virtual_end_ms, without.virtual_end_ms);
  EXPECT_EQ(with.deadlines().total_met(), without.deadlines().total_met());
  EXPECT_EQ(with.deadlines().total_missed(), without.deadlines().total_missed());
  EXPECT_EQ(with.last_task1, without.last_task1);
  EXPECT_EQ(with.last_task23, without.last_task23);
  EXPECT_TRUE(traced->state().same_flight_state(bare->state()));
  EXPECT_FALSE(sink.events().empty());
}

TEST(ObsTrace, PipelineDetachesTheBorrowedSink) {
  RecordingSink sink;
  ReferenceBackend ref;
  run_pipeline(ref, two_cycle_config(&sink));
  EXPECT_EQ(ref.trace_sink(), nullptr);

  // Direct task calls after the run must not emit.
  const std::size_t before = sink.events().size();
  core::Rng rng(1);
  airfield::RadarFrame frame = ref.generate_radar(rng, {}, nullptr);
  ref.run_task1(frame, {});
  EXPECT_EQ(sink.events().size(), before);
}

TEST(ObsTrace, BackendEmitsOutsideThePipelineToo) {
  // Benches drive backends directly; an attached sink still sees tasks.
  RecordingSink sink;
  ReferenceBackend ref;
  ref.load(airfield::make_airfield(100, 3));
  ref.set_trace_sink(&sink);
  core::Rng rng(3);
  airfield::RadarFrame frame = ref.generate_radar(rng, {}, nullptr);
  ref.run_task1(frame, {});
  ref.run_task23({});
  ref.set_trace_sink(nullptr);
  EXPECT_EQ(sink.count(EventKind::kTask, "task1"), 1u);
  EXPECT_EQ(sink.count(EventKind::kTask, "task23"), 1u);
  // Outside a pipeline there is no executive position.
  for (const TraceEvent& ev : sink.events()) {
    EXPECT_EQ(ev.cycle, -1);
    EXPECT_EQ(ev.period, -1);
  }
}

TEST(ObsTrace, JsonlSinkWritesOneValidObjectPerLine) {
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  ReferenceBackend ref;
  PipelineConfig cfg = two_cycle_config(&sink);
  cfg.major_cycles = 1;
  run_pipeline(ref, cfg);

  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"kind\":\""), std::string::npos);
    // Keys and string values are quoted; no raw control characters.
    for (const char c : line) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    }
  }
  // cycle span (2) + per period: span (2) + radar + task1 deadline... at
  // least 5 events per period.
  EXPECT_GE(n, 16u * 5u + 2u);
}

TEST(ObsTrace, CounterPublishesItsValue) {
  RecordingSink sink;
  obs::Counter counter("widgets");
  counter.add();
  counter.add(41);
  counter.publish(&sink);
  counter.publish(nullptr);  // no-op, no crash
  ASSERT_EQ(sink.count(EventKind::kCounter, "widgets"), 1u);
  EXPECT_EQ(sink.events().front().value, 42u);
}

// --- PipelineConfig drives every mode of the unified entry point ----------

TEST(ObsTrace, PreloadedFlagChainsRunsOnOneFlightState) {
  PipelineConfig cfg;
  cfg.aircraft = 200;
  cfg.major_cycles = 1;

  auto a = make_titan_x_pascal();
  run_pipeline(*a, cfg);
  PipelineConfig preloaded_cfg = cfg;
  preloaded_cfg.preloaded = true;
  const PipelineResult chained = run_pipeline(*a, preloaded_cfg);

  // A preloaded run continues from the first run's state instead of
  // reloading the seed airfield, so its periods exist and the state moved.
  ASSERT_EQ(chained.periods.size(), 16u);
  auto b = make_titan_x_pascal();
  run_pipeline(*b, cfg);
  const PipelineResult chained_b = run_pipeline(*b, preloaded_cfg);
  ASSERT_EQ(chained.periods.size(), chained_b.periods.size());
  for (std::size_t i = 0; i < chained.periods.size(); ++i) {
    EXPECT_EQ(chained.periods[i].task1_ms, chained_b.periods[i].task1_ms);
  }
  EXPECT_TRUE(a->state().same_flight_state(b->state()));
}

TEST(ObsTrace, WallclockModeRunsViaConfigFields) {
  PipelineConfig cfg;
  cfg.aircraft = 32;
  cfg.major_cycles = 1;
  cfg.clock_mode = ClockMode::kWallclock;
  cfg.real_period_ms = 5.0;
  ReferenceBackend ref;
  const PipelineResult result = run_pipeline(ref, cfg);
  EXPECT_EQ(result.periods.size(), 16u);
}

}  // namespace
}  // namespace atm::tasks
