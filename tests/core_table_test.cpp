// Tests for text-table rendering (src/core/table.hpp).
#include "src/core/table.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace atm::core {
namespace {

TEST(TextTable, HeadersAndUnderline) {
  TextTable t({"a", "bb"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("a  bb"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(TextTable, CellsAlignUnderHeaders) {
  TextTable t({"name", "value"});
  t.begin_row();
  t.add_cell("x");
  t.add_cell(static_cast<long long>(42));
  t.begin_row();
  t.add_cell("longer");
  t.add_cell(1.5, 2);
  const std::string s = t.to_string();
  std::istringstream in(s);
  std::string header, underline, row1, row2;
  std::getline(in, header);
  std::getline(in, underline);
  std::getline(in, row1);
  std::getline(in, row2);
  // The value column starts at the same offset in every row.
  const auto col = row2.find("1.50");
  EXPECT_NE(col, std::string::npos);
  EXPECT_EQ(row1.find("42"), col);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, DoublePrecisionControl) {
  TextTable t({"v"});
  t.begin_row();
  t.add_cell(3.14159, 2);
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
  EXPECT_EQ(t.to_string().find("3.142"), std::string::npos);
}

TEST(TextTable, AddCellWithoutBeginRowStartsRow) {
  TextTable t({"v"});
  t.add_cell(std::string("auto"));
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TextTable, StreamOperator) {
  TextTable t({"h"});
  t.begin_row();
  t.add_cell(std::size_t{7});
  std::ostringstream os;
  os << t;
  EXPECT_NE(os.str().find('7'), std::string::npos);
}

TEST(TextTable, CsvRendering) {
  TextTable t({"name", "value"});
  t.begin_row();
  t.add_cell(std::string("plain"));
  t.add_cell(1.5, 1);
  t.begin_row();
  t.add_cell(std::string("needs,quoting"));
  t.add_cell(std::string("with \"quotes\""));
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,1.5\n"), std::string::npos);
  EXPECT_NE(csv.find("\"needs,quoting\",\"with \"\"quotes\"\"\"\n"),
            std::string::npos);
}

TEST(TextTable, WriteCsvRoundTrips) {
  TextTable t({"a"});
  t.begin_row();
  t.add_cell(std::string("x"));
  const std::string path = ::testing::TempDir() + "atm_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "a\nx\n");
}

TEST(TextTable, WriteCsvFailsOnBadPath) {
  TextTable t({"a"});
  EXPECT_FALSE(t.write_csv("/nonexistent-dir/f.csv"));
}

TEST(FormatMs, AdaptiveUnits) {
  EXPECT_EQ(format_ms(0.5), "500.0 us");
  EXPECT_EQ(format_ms(12.3456), "12.346 ms");
  EXPECT_EQ(format_ms(2500.0), "2.500 s");
}

}  // namespace
}  // namespace atm::core
