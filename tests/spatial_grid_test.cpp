// Unit and property tests for the spatial broadphase subsystem
// (src/core/spatial/): the uniform grid behind Task 1 correlation and the
// swept index behind Tasks 2+3 pruning. The load-bearing property in both
// cases is the exactness contract — every point the exact test would
// accept is enumerated, each inserted id at most once — because the task
// layers rely on it for outcome equivalence with brute force.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "src/core/rng.hpp"
#include "src/core/spatial/broadphase.hpp"
#include "src/core/spatial/swept_index.hpp"
#include "src/core/spatial/uniform_grid.hpp"

namespace atm::core::spatial {
namespace {

TEST(BroadphaseMode, RoundTripsThroughStrings) {
  EXPECT_EQ(to_string(BroadphaseMode::kBruteForce), "brute");
  EXPECT_EQ(to_string(BroadphaseMode::kGrid), "grid");
  EXPECT_EQ(parse_broadphase("brute"), BroadphaseMode::kBruteForce);
  EXPECT_EQ(parse_broadphase("brute-force"), BroadphaseMode::kBruteForce);
  EXPECT_EQ(parse_broadphase("bruteforce"), BroadphaseMode::kBruteForce);
  EXPECT_EQ(parse_broadphase("grid"), BroadphaseMode::kGrid);
  EXPECT_FALSE(parse_broadphase("octree").has_value());
  EXPECT_FALSE(parse_broadphase("").has_value());
}

// --- UniformGrid2D ---------------------------------------------------------

TEST(UniformGrid2D, EmptyBuildEnumeratesNothing) {
  UniformGrid2D grid;
  grid.build({}, {}, {}, 1.0);
  EXPECT_TRUE(grid.empty());
  int visits = 0;
  grid.for_each_in_box(-10.0, 10.0, -10.0, 10.0, [&](std::size_t) {
    ++visits;
  });
  EXPECT_EQ(visits, 0);
}

TEST(UniformGrid2D, AllMaskedOutBehavesLikeEmpty) {
  const std::vector<double> xs{0.0, 1.0}, ys{0.0, 1.0};
  const std::vector<std::uint8_t> mask{0, 0};
  UniformGrid2D grid;
  grid.build(xs, ys, mask, 1.0);
  EXPECT_TRUE(grid.empty());
}

TEST(UniformGrid2D, BoxQueryIsSupersetOfExactMatchesEachIdOnce) {
  Rng rng(2024);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 299));
    std::vector<double> xs(n), ys(n);
    std::vector<std::uint8_t> mask(n);
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = rng.uniform(-128.0, 128.0);
      ys[i] = rng.uniform(-128.0, 128.0);
      mask[i] = rng.uniform() < 0.7 ? 1 : 0;
    }
    UniformGrid2D grid;
    grid.build(xs, ys, mask, rng.uniform(0.1, 8.0));

    for (int q = 0; q < 25; ++q) {
      const double cx = rng.uniform(-140.0, 140.0);
      const double cy = rng.uniform(-140.0, 140.0);
      const double half = rng.uniform(0.05, 20.0);
      std::multiset<std::size_t> seen;
      grid.for_each_in_box(cx - half, cx + half, cy - half, cy + half,
                           [&](std::size_t id) { seen.insert(id); });
      for (std::size_t i = 0; i < n; ++i) {
        const bool inside = mask[i] != 0 && std::fabs(xs[i] - cx) < half &&
                            std::fabs(ys[i] - cy) < half;
        const std::size_t count = seen.count(i);
        EXPECT_LE(count, 1u) << "id " << i << " enumerated twice";
        if (inside) {
          EXPECT_EQ(count, 1u)
              << "id " << i << " inside the box but not enumerated";
        }
        if (mask[i] == 0) {
          EXPECT_EQ(count, 0u) << "masked id enumerated";
        }
      }
    }
  }
}

TEST(UniformGrid2D, SinglePointAndDegenerateBoundsWork) {
  const std::vector<double> xs{3.5}, ys{-7.25};
  UniformGrid2D grid;
  grid.build(xs, ys, {}, 1.0);
  EXPECT_EQ(grid.size(), 1u);
  int visits = 0;
  grid.for_each_in_box(3.0, 4.0, -8.0, -7.0, [&](std::size_t id) {
    EXPECT_EQ(id, 0u);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(UniformGrid2D, FarOutOfBoundsQueryClampsIntoEdgeCells) {
  // The Task-1 dropout sentinel puts a radar at 1e6 nm; the query must
  // clamp, enumerate only edge-cell points, and never crash.
  std::vector<double> xs, ys;
  for (int i = 0; i < 32; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(0.0);
  }
  UniformGrid2D grid;
  grid.build(xs, ys, {}, 2.0);
  std::size_t visits = 0;
  grid.for_each_in_box(1e6 - 0.5, 1e6 + 0.5, -0.5, 0.5,
                       [&](std::size_t) { ++visits; });
  // Candidates (if any) come from the right edge cells only; the exact
  // test would reject all of them.
  EXPECT_LE(visits, grid.size());
}

TEST(UniformGrid2D, RebuildReusesCleanState) {
  UniformGrid2D grid;
  const std::vector<double> xs1{0.0, 1.0, 2.0}, ys1{0.0, 0.0, 0.0};
  grid.build(xs1, ys1, {}, 0.5);
  EXPECT_EQ(grid.size(), 3u);
  const std::vector<double> xs2{5.0}, ys2{5.0};
  grid.build(xs2, ys2, {}, 0.5);
  EXPECT_EQ(grid.size(), 1u);
  int visits = 0;
  grid.for_each_in_box(4.0, 6.0, 4.0, 6.0, [&](std::size_t id) {
    EXPECT_EQ(id, 0u);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

// --- SweptIndex ------------------------------------------------------------

struct Fleet {
  std::vector<double> x, y, dx, dy, alt;
  [[nodiscard]] std::size_t size() const { return x.size(); }
};

Fleet random_fleet(Rng& rng, std::size_t n, double alt_lo, double alt_hi) {
  Fleet f;
  f.x.resize(n);
  f.y.resize(n);
  f.dx.resize(n);
  f.dy.resize(n);
  f.alt.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    f.x[i] = rng.uniform(-128.0, 128.0);
    f.y[i] = rng.uniform(-128.0, 128.0);
    f.dx[i] = rng.uniform(-0.09, 0.09);  // <= ~600 knots in nm/period
    f.dy[i] = rng.uniform(-0.09, 0.09);
    f.alt[i] = rng.uniform(alt_lo, alt_hi);
  }
  return f;
}

/// The index's documented guarantee, checked directly: any j whose
/// altitude is inside the gate of i and whose current position lies
/// within band + (|v_i| + |v_j|) * horizon of i on both axes must be
/// enumerated. (Any pair the altitude gate + Batcher test can accept
/// satisfies this, for every trial rotation of i's velocity.)
void expect_superset(const SweptIndex& index, const Fleet& f,
                     const SweptIndexParams& p) {
  for (std::size_t i = 0; i < f.size(); ++i) {
    const double speed_i = std::hypot(f.dx[i], f.dy[i]);
    std::multiset<std::size_t> seen;
    index.for_each_candidate(f.x[i], f.y[i], f.alt[i], speed_i,
                             [&](std::size_t id) {
                               seen.insert(id);
                               return false;
                             });
    for (std::size_t j = 0; j < f.size(); ++j) {
      EXPECT_LE(seen.count(j), 1u) << "id " << j << " enumerated twice";
      if (j == i) continue;
      if (std::fabs(f.alt[i] - f.alt[j]) >= p.altitude_gate_feet) continue;
      const double speed_j = std::hypot(f.dx[j], f.dy[j]);
      const double reach =
          p.band_nm + (speed_i + speed_j) * p.horizon_periods;
      if (std::fabs(f.x[i] - f.x[j]) < reach &&
          std::fabs(f.y[i] - f.y[j]) < reach) {
        EXPECT_EQ(seen.count(j), 1u)
            << "reachable pair (" << i << ", " << j << ") pruned";
      }
    }
  }
}

TEST(SweptIndex, EnumeratesSupersetOfReachablePairs) {
  Rng rng(77);
  SweptIndexParams p;
  p.horizon_periods = 2400.0;  // the paper's 20 minutes
  p.band_nm = 4.0;
  p.altitude_gate_feet = 1000.0;
  for (int round = 0; round < 6; ++round) {
    const Fleet f = random_fleet(rng, 120, 0.0, 40000.0);
    SweptIndex index;
    index.build(f.x, f.y, f.dx, f.dy, f.alt, p);
    expect_superset(index, f, p);
  }
}

TEST(SweptIndex, StratifiedAltitudesStillCoverAdjacentSlabs) {
  // Flight-level stratified traffic (the dense-en-route shape): aircraft
  // within one gate of each other can sit in adjacent slabs.
  Rng rng(91);
  SweptIndexParams p;
  p.horizon_periods = 3600.0;
  p.band_nm = 4.0;
  p.altitude_gate_feet = 1000.0;
  Fleet f = random_fleet(rng, 150, 29000.0, 41000.0);
  for (std::size_t i = 0; i < f.size(); ++i) {
    // Snap to 1000 ft flight levels with +-200 ft jitter.
    f.alt[i] = std::round(f.alt[i] / 1000.0) * 1000.0 +
               rng.uniform(-200.0, 200.0);
  }
  SweptIndex index;
  index.build(f.x, f.y, f.dx, f.dy, f.alt, p);
  expect_superset(index, f, p);
}

TEST(SweptIndex, NonPositiveGateDegeneratesToOneSlab) {
  Rng rng(5);
  SweptIndexParams p;
  p.horizon_periods = 100.0;
  p.band_nm = 2.0;
  p.altitude_gate_feet = 0.0;
  const Fleet f = random_fleet(rng, 40, 0.0, 40000.0);
  SweptIndex index;
  index.build(f.x, f.y, f.dx, f.dy, f.alt, p);
  EXPECT_EQ(index.slabs(), 1);
}

TEST(SweptIndex, EmptyBuildEnumeratesNothing) {
  SweptIndex index;
  index.build({}, {}, {}, {}, {}, SweptIndexParams{});
  EXPECT_TRUE(index.empty());
  int visits = 0;
  index.for_each_candidate(0.0, 0.0, 0.0, 0.1, [&](std::size_t) {
    ++visits;
    return false;
  });
  EXPECT_EQ(visits, 0);
}

TEST(SweptIndex, VisitorCanStopEarly) {
  Rng rng(13);
  SweptIndexParams p;
  p.horizon_periods = 2400.0;
  p.band_nm = 4.0;
  p.altitude_gate_feet = 1000.0;
  const Fleet f = random_fleet(rng, 60, 9000.0, 10000.0);
  SweptIndex index;
  index.build(f.x, f.y, f.dx, f.dy, f.alt, p);
  int visits = 0;
  index.for_each_candidate(f.x[0], f.y[0], f.alt[0], 0.05,
                           [&](std::size_t) { return ++visits >= 3; });
  EXPECT_LE(visits, 3);
}

}  // namespace
}  // namespace atm::core::spatial
