// Tests for the timed major-cycle simulation (src/atm/pipeline.hpp).
#include "src/atm/pipeline.hpp"

#include <gtest/gtest.h>

#include "src/atm/mimd_backend.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/reference_backend.hpp"
#include "src/core/units.hpp"

namespace atm::tasks {
namespace {

TEST(Pipeline, PaperScheduleShape) {
  auto titan = make_titan_x_pascal();
  PipelineConfig cfg;
  cfg.aircraft = 300;
  cfg.major_cycles = 2;
  const PipelineResult result = run_pipeline(*titan, cfg);

  // 2 cycles x 16 periods.
  ASSERT_EQ(result.periods.size(), 32u);
  // Task 1 scheduled every period; Tasks 2+3 only in period 15.
  int task23_runs = 0;
  for (const PeriodLog& log : result.periods) {
    EXPECT_GT(log.task1_ms, 0.0);
    if (log.task23_ran) {
      EXPECT_EQ(log.period, 15);
      ++task23_runs;
    }
  }
  EXPECT_EQ(task23_runs, 2);
  EXPECT_EQ(result.deadlines().task("task1").scheduled(), 32u);
  EXPECT_EQ(result.deadlines().task("task23").scheduled(), 2u);
}

TEST(Pipeline, VirtualTimeEndsOnCycleBoundary) {
  auto titan = make_titan_x_pascal();
  PipelineConfig cfg;
  cfg.aircraft = 200;
  cfg.major_cycles = 3;
  const PipelineResult result = run_pipeline(*titan, cfg);
  // A platform that never overruns ends exactly at 3 major cycles.
  EXPECT_DOUBLE_EQ(result.virtual_end_ms,
                   3.0 * core::kMajorCycleSeconds * 1000.0);
}

TEST(Pipeline, FastPlatformNeverMissesDeadlines) {
  auto titan = make_titan_x_pascal();
  PipelineConfig cfg;
  cfg.aircraft = 1500;
  cfg.major_cycles = 1;
  const PipelineResult result = run_pipeline(*titan, cfg);
  EXPECT_EQ(result.deadlines().total_missed(), 0u);
  EXPECT_EQ(result.deadlines().total_skipped(), 0u);
}

TEST(Pipeline, OverloadedPlatformMissesAndSkips) {
  // A pathologically slow platform: every task blows the period.
  class SlowBackend final : public ReferenceBackend {
   protected:
    Task1Result do_run_task1(airfield::RadarFrame& frame,
                             const Task1Params& params) override {
      Task1Result r = ReferenceBackend::do_run_task1(frame, params);
      r.modeled_ms = 1200.0;  // > 2 periods
      return r;
    }
    Task23Result do_run_task23(const Task23Params& params) override {
      Task23Result r = ReferenceBackend::do_run_task23(params);
      r.modeled_ms = 5000.0;
      return r;
    }
  };
  SlowBackend slow;
  PipelineConfig cfg;
  cfg.aircraft = 50;
  cfg.major_cycles = 1;
  const PipelineResult result = run_pipeline(slow, cfg);
  EXPECT_GT(result.deadlines().total_missed(), 0u);
  EXPECT_GT(result.deadlines().total_skipped(), 0u);
  // Overruns delay the virtual clock past the nominal cycle end.
  EXPECT_GT(result.virtual_end_ms, core::kMajorCycleSeconds * 1000.0);
}

TEST(Pipeline, DeterministicPlatformReproducesExactly) {
  PipelineConfig cfg;
  cfg.aircraft = 400;
  cfg.major_cycles = 1;
  cfg.seed = 1234;
  auto a = make_titan_x_pascal();
  auto b = make_titan_x_pascal();
  const PipelineResult ra = run_pipeline(*a, cfg);
  const PipelineResult rb = run_pipeline(*b, cfg);
  ASSERT_EQ(ra.periods.size(), rb.periods.size());
  for (std::size_t i = 0; i < ra.periods.size(); ++i) {
    // The paper's determinism claim: "we would get the exact same timings
    // again and again".
    ASSERT_DOUBLE_EQ(ra.periods[i].task1_ms, rb.periods[i].task1_ms);
    ASSERT_DOUBLE_EQ(ra.periods[i].task23_ms, rb.periods[i].task23_ms);
  }
  EXPECT_TRUE(a->state().same_flight_state(b->state()));
}

TEST(Pipeline, MimdPlatformTimingsVaryAcrossSeeds) {
  PipelineConfig cfg;
  cfg.aircraft = 300;
  cfg.major_cycles = 1;
  auto xeon_a = make_xeon();
  auto xeon_b = make_xeon();
  static_cast<MimdBackend*>(xeon_a.get());  // type sanity
  // Different jitter seeds -> different timings (the MIMD
  // unpredictability the paper contrasts against).
  dynamic_cast<MimdBackend&>(*xeon_a).set_jitter_seed(1);
  dynamic_cast<MimdBackend&>(*xeon_b).set_jitter_seed(2);
  const PipelineResult ra = run_pipeline(*xeon_a, cfg);
  const PipelineResult rb = run_pipeline(*xeon_b, cfg);
  EXPECT_NE(ra.task1_ms.mean(), rb.task1_ms.mean());
  // But the *flight states* still agree: only timing is nondeterministic.
  EXPECT_TRUE(xeon_a->state().same_flight_state(xeon_b->state()));
}

TEST(Pipeline, ReentryKeepsAircraftInGrid) {
  PipelineConfig cfg;
  cfg.aircraft = 500;
  cfg.major_cycles = 2;
  auto backend = make_titan_x_pascal();
  const PipelineResult result = run_pipeline(*backend, cfg);
  (void)result;
  const airfield::FlightDb& db = backend->state();
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_LE(std::fabs(db.x[i]), core::kGridHalfExtentNm + 1.0);
    EXPECT_LE(std::fabs(db.y[i]), core::kGridHalfExtentNm + 1.0);
  }
}

TEST(Pipeline, ReentryCanBeDisabled) {
  PipelineConfig cfg;
  cfg.aircraft = 500;
  cfg.major_cycles = 2;
  cfg.apply_reentry = false;
  auto backend = make_titan_x_pascal();
  const PipelineResult result = run_pipeline(*backend, cfg);
  for (const PeriodLog& log : result.periods) EXPECT_EQ(log.wrapped, 0u);
}

TEST(Pipeline, RadarTimeReportedButNotCharged) {
  // The CUDA radar path has nonzero modeled cost, yet a workload whose
  // Task 1 fits its period must show zero misses: radar generation is not
  // an ATM task (Section 4.2).
  PipelineConfig cfg;
  cfg.aircraft = 800;
  cfg.major_cycles = 1;
  auto backend = make_geforce_9800_gt();
  const PipelineResult result = run_pipeline(*backend, cfg);
  double radar_total = 0.0;
  for (const PeriodLog& log : result.periods) radar_total += log.radar_ms;
  EXPECT_GT(radar_total, 0.0);
  EXPECT_EQ(result.deadlines().total_missed(), 0u);
}

TEST(Pipeline, PreloadedRunContinuesExistingState) {
  auto backend = make_titan_x_pascal();
  PipelineConfig cfg;
  cfg.aircraft = 200;
  cfg.major_cycles = 1;
  run_pipeline(*backend, cfg);
  const airfield::FlightDb after_first = backend->state();
  PipelineConfig second_cfg = cfg;
  second_cfg.preloaded = true;
  const PipelineResult second = run_pipeline(*backend, second_cfg);
  (void)second;
  // State moved on: the second run did not reload the initial airfield.
  EXPECT_FALSE(backend->state().same_flight_state(after_first));
}

}  // namespace
}  // namespace atm::tasks
