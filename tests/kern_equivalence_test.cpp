// Scalar vs AVX2 kernel equivalence: the batch kernels in src/core/kern/
// are the one place the host hot paths do flight math, and the AVX2
// implementations must be *bit-identical* to the portable scalar ones —
// not merely close. Two layers of evidence:
//
//  * end to end — for every named scenario, both broadphase modes, and
//    both shard modes, a full pipeline run with the avx2 kernel must
//    produce identical outcome counters and bit-identical flight state
//    to the scalar run, on both host execution paths; and
//  * the kernels alone — direct scalar-vs-avx2 comparisons on synthetic
//    inputs that stress the lanes: tails (n not a multiple of 4), NaN
//    and denormal records, and deliberately misaligned views.
//
// On hosts without AVX2 (or ATM_HOST_SIMD=OFF builds) resolve(kAvx2)
// degrades to kScalar and the comparisons pass trivially — the suite
// stays green everywhere and bites wherever the AVX2 path actually runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/airfield/setup.hpp"
#include "src/atm/mimd_backend.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/reference_backend.hpp"
#include "src/atm/scenarios.hpp"
#include "src/core/kern/kernels.hpp"
#include "src/core/kern/soa_snapshot.hpp"

namespace atm::tasks {
namespace {

using core::kern::Kernel;
using core::kern::KernelMode;
using core::spatial::BroadphaseMode;
using core::spatial::ShardMode;

Task1Stats outcome_only(Task1Stats s) {
  s.box_tests = 0;
  s.sectors = 0;
  s.halo_candidates = 0;
  s.kernel = -1;
  s.lanes_masked = 0;
  return s;
}
Task23Stats outcome_only(Task23Stats s) {
  s.pair_tests = 0;
  s.pair_candidates = 0;
  s.rescans = 0;
  s.sectors = 0;
  s.halo_candidates = 0;
  s.kernel = -1;
  s.lanes_masked = 0;
  return s;
}

PipelineConfig make_config(const Scenario& scenario, KernelMode kernel,
                           BroadphaseMode phase, ShardMode shard) {
  Scenario s = scenario;
  s.policy.kernel = kernel;
  s.policy.broadphase = phase;
  s.policy.shard = shard;
  s.policy.sectors_per_axis = 2;
  return make_pipeline_config(s);
}

class KernelEquivalenceTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(KernelEquivalenceTest, ReferencePathAvx2MatchesScalar) {
  for (const BroadphaseMode phase :
       {BroadphaseMode::kBruteForce, BroadphaseMode::kGrid}) {
    for (const ShardMode shard : {ShardMode::kNone, ShardMode::kSectors}) {
      ReferenceBackend scalar, avx2;
      const PipelineResult rs = run_pipeline(
          scalar, make_config(GetParam(), KernelMode::kScalar, phase, shard));
      const PipelineResult rv = run_pipeline(
          avx2, make_config(GetParam(), KernelMode::kAvx2, phase, shard));
      SCOPED_TRACE(GetParam().name +
                   (phase == BroadphaseMode::kGrid ? " grid" : " brute") +
                   (shard == ShardMode::kSectors ? " sectors" : " unsharded"));
      EXPECT_EQ(outcome_only(rs.last_task1), outcome_only(rv.last_task1));
      EXPECT_EQ(rs.last_task1.passes, rv.last_task1.passes);
      EXPECT_EQ(outcome_only(rs.last_task23), outcome_only(rv.last_task23));
      EXPECT_TRUE(scalar.state().same_flight_state(avx2.state()))
          << "avx2 kernel changed the flight state";
    }
  }
}

TEST_P(KernelEquivalenceTest, MimdPathAvx2MatchesScalar) {
  for (const BroadphaseMode phase :
       {BroadphaseMode::kBruteForce, BroadphaseMode::kGrid}) {
    for (const ShardMode shard : {ShardMode::kNone, ShardMode::kSectors}) {
      MimdBackend scalar, avx2;
      const PipelineResult rs = run_pipeline(
          scalar, make_config(GetParam(), KernelMode::kScalar, phase, shard));
      const PipelineResult rv = run_pipeline(
          avx2, make_config(GetParam(), KernelMode::kAvx2, phase, shard));
      SCOPED_TRACE(GetParam().name +
                   (phase == BroadphaseMode::kGrid ? " grid" : " brute") +
                   (shard == ShardMode::kSectors ? " sectors" : " unsharded"));
      EXPECT_EQ(outcome_only(rs.last_task1), outcome_only(rv.last_task1));
      EXPECT_EQ(outcome_only(rs.last_task23), outcome_only(rv.last_task23));
      EXPECT_TRUE(scalar.state().same_flight_state(avx2.state()))
          << "avx2 kernel diverged on the MIMD path";
    }
  }
}

std::string scenario_test_name(
    const ::testing::TestParamInfo<Scenario>& info) {
  std::string name = info.param.name;
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, KernelEquivalenceTest,
                         ::testing::ValuesIn(all_scenarios()),
                         scenario_test_name);

// ---------------------------------------------------------------------------
// Direct kernel comparisons on synthetic lane-stressing inputs.

/// Deterministic "awkward" doubles: mixes magnitudes, signs, exact halves.
double wiggle(std::size_t i) {
  const double base = static_cast<double>((i * 37) % 23) - 11.0;
  return base + 0.5 * static_cast<double>(i % 3) +
         1e-7 * static_cast<double>(i);
}

struct BandFixture {
  core::kern::AlignedVector<double> x, y, dx, dy, alt;

  explicit BandFixture(std::size_t n)
      : x(n), y(n), dx(n), dy(n), alt(n) {
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = wiggle(i);
      y[i] = wiggle(i + 5);
      dx[i] = 0.01 * wiggle(i + 11);
      dy[i] = 0.01 * wiggle(i + 17);
      alt[i] = 10000.0 + 250.0 * static_cast<double>(i % 9);
    }
  }

  [[nodiscard]] core::kern::SoaView view(std::size_t offset = 0) const {
    return {x.data() + offset, y.data() + offset, dx.data() + offset,
            dy.data() + offset, alt.data() + offset, x.size() - offset};
  }
};

constexpr core::kern::BandParams kBand{3.0, 1200.0, 1000.0};

/// Run band_intersect_batch under both kernels and require bit-identical
/// flags and tmin payloads (memcmp, so NaN payloads count too).
void expect_band_bit_identical(const core::kern::SoaView& view,
                               const std::int32_t* idx, std::size_t m,
                               double xi, double yi, double alti, double vxi,
                               double vyi) {
  core::kern::AlignedVector<double> tmin_s(m), tmin_v(m);
  std::vector<std::uint8_t> flags_s(m), flags_v(m);
  std::uint64_t lanes_s = 0, lanes_v = 0;
  core::kern::band_intersect_batch(Kernel::kScalar, view, idx, m, xi, yi,
                                   alti, vxi, vyi, kBand, tmin_s.data(),
                                   flags_s.data(), &lanes_s);
  const Kernel avx2 = core::kern::resolve(KernelMode::kAvx2);
  core::kern::band_intersect_batch(avx2, view, idx, m, xi, yi, alti, vxi,
                                   vyi, kBand, tmin_v.data(), flags_v.data(),
                                   &lanes_v);
  EXPECT_EQ(flags_s, flags_v);
  EXPECT_EQ(0, std::memcmp(tmin_s.data(), tmin_v.data(),
                           m * sizeof(double)))
      << "band tmin payloads diverged bitwise";
  EXPECT_EQ(lanes_s, 0u) << "scalar kernel must not mask lanes";
  if (avx2 == Kernel::kAvx2) {
    const std::size_t rem = m % core::kern::kLanes;
    EXPECT_EQ(lanes_v, rem == 0 ? 0u : core::kern::kLanes - rem);
  }
}

TEST(KernelDirect, BoxTestTailLanesAndEligibility) {
  // 13 candidates: one full block plus a 1-lane tail under kLanes = 4.
  constexpr std::size_t kN = 13;
  core::kern::AlignedVector<double> ex(kN), ey(kN);
  std::vector<std::uint8_t> eligible(kN, 1);
  for (std::size_t i = 0; i < kN; ++i) {
    ex[i] = wiggle(i);
    ey[i] = wiggle(i + 3);
  }
  eligible[2] = 0;
  eligible[12] = 0;  // tail lane must honour eligibility too
  std::vector<std::int32_t> hits_s(kN), hits_v(kN);
  std::uint64_t lanes_s = 0, lanes_v = 0;
  const std::size_t ns = core::kern::box_test_batch(
      Kernel::kScalar, ex.data(), ey.data(), kN, eligible.data(), 0.5, 0.5,
      6.0, hits_s.data(), &lanes_s);
  const Kernel avx2 = core::kern::resolve(KernelMode::kAvx2);
  const std::size_t nv = core::kern::box_test_batch(
      avx2, ex.data(), ey.data(), kN, eligible.data(), 0.5, 0.5, 6.0,
      hits_v.data(), &lanes_v);
  ASSERT_EQ(ns, nv);
  ASSERT_GT(ns, 0u) << "fixture produced no hits; the comparison is vacuous";
  ASSERT_LT(ns, kN) << "fixture hit everything; the comparison is vacuous";
  for (std::size_t k = 0; k < ns; ++k) EXPECT_EQ(hits_s[k], hits_v[k]);
  EXPECT_EQ(lanes_s, 0u);
  if (avx2 == Kernel::kAvx2) EXPECT_EQ(lanes_v, 3u);  // 13 -> 16 lanes
}

TEST(KernelDirect, BoxTestIndexedMatchesScalarOnEveryTail) {
  constexpr std::size_t kN = 64;
  core::kern::AlignedVector<double> ex(kN), ey(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ex[i] = wiggle(i + 1);
    ey[i] = wiggle(i + 7);
  }
  const Kernel avx2 = core::kern::resolve(KernelMode::kAvx2);
  for (const std::size_t m : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u}) {
    std::vector<std::int32_t> idx;
    for (std::size_t k = 0; k < m; ++k) {
      idx.push_back(static_cast<std::int32_t>((k * 13) % kN));
    }
    std::vector<std::int32_t> hits_s(m), hits_v(m);
    std::uint64_t lanes = 0;
    const std::size_t ns = core::kern::box_test_batch_indexed(
        Kernel::kScalar, ex.data(), ey.data(), idx.data(), m, 0.0, 0.0, 7.5,
        hits_s.data(), nullptr);
    const std::size_t nv = core::kern::box_test_batch_indexed(
        avx2, ex.data(), ey.data(), idx.data(), m, 0.0, 0.0, 7.5,
        hits_v.data(), &lanes);
    SCOPED_TRACE("m=" + std::to_string(m));
    ASSERT_EQ(ns, nv);
    for (std::size_t k = 0; k < ns; ++k) EXPECT_EQ(hits_s[k], hits_v[k]);
  }
}

TEST(KernelDirect, BandKernelContiguousTailLanes) {
  for (const std::size_t n : {1u, 3u, 4u, 5u, 11u, 64u, 130u}) {
    const BandFixture fx(n);
    SCOPED_TRACE("n=" + std::to_string(n));
    expect_band_bit_identical(fx.view(), nullptr, n, 0.25, -0.75, 10500.0,
                              0.02, -0.015);
  }
}

TEST(KernelDirect, BandKernelIndexedCandidates) {
  const BandFixture fx(40);
  std::vector<std::int32_t> idx{0, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31};
  expect_band_bit_identical(fx.view(), idx.data(), idx.size(), wiggle(2),
                            wiggle(9), 10250.0, 0.01, 0.01);
}

TEST(KernelDirect, BandKernelNanAndDenormalRecords) {
  BandFixture fx(19);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double denorm = std::numeric_limits<double>::denorm_min();
  fx.x[1] = nan;          // NaN position: every comparison must be false
  fx.dy[4] = nan;         // NaN velocity feeds the band window math
  fx.alt[6] = nan;        // NaN altitude: the gate must not pass
  fx.dx[9] = denorm;      // denormal relative velocity (parallel branch)
  fx.dy[9] = -denorm;
  fx.dx[12] = 0.0;        // exactly parallel lane
  fx.dy[12] = 0.0;
  fx.alt[15] = 1e308;     // huge gate delta
  expect_band_bit_identical(fx.view(), nullptr, 19, 0.0, 0.0, 10500.0, 0.0,
                            0.0);
  // A NaN focus aircraft is the other direction of the same contract.
  expect_band_bit_identical(fx.view(), nullptr, 19, nan, 0.0, 10500.0, 0.01,
                            0.01);
}

TEST(KernelDirect, BandKernelMisalignedViewsAgree) {
  // Offsetting an aligned array by one element leaves 8-byte-aligned,
  // 32-byte-misaligned pointers — the kernels must not assume alignment.
  const BandFixture fx(21);
  for (const std::size_t offset : {1u, 2u, 3u}) {
    SCOPED_TRACE("offset=" + std::to_string(offset));
    expect_band_bit_identical(fx.view(offset), nullptr, 21 - offset, 0.5,
                              0.5, 10500.0, 0.01, -0.01);
  }
}

TEST(KernelDirect, ResolveDegradesGracefully) {
  EXPECT_EQ(core::kern::resolve(KernelMode::kScalar), Kernel::kScalar);
  const Kernel from_auto = core::kern::resolve(KernelMode::kAuto);
  const Kernel from_avx2 = core::kern::resolve(KernelMode::kAvx2);
  if (core::kern::avx2_available()) {
    EXPECT_EQ(from_auto, Kernel::kAvx2);
    EXPECT_EQ(from_avx2, Kernel::kAvx2);
  } else {
    EXPECT_EQ(from_auto, Kernel::kScalar);
    EXPECT_EQ(from_avx2, Kernel::kScalar);
  }
  KernelMode mode = KernelMode::kAuto;
  EXPECT_TRUE(core::kern::kernel_mode_from_string("scalar", mode));
  EXPECT_EQ(mode, KernelMode::kScalar);
  EXPECT_TRUE(core::kern::kernel_mode_from_string("avx2", mode));
  EXPECT_EQ(mode, KernelMode::kAvx2);
  EXPECT_TRUE(core::kern::kernel_mode_from_string("auto", mode));
  EXPECT_EQ(mode, KernelMode::kAuto);
  EXPECT_FALSE(core::kern::kernel_mode_from_string("sse9", mode));
}

TEST(KernelDirect, SnapshotGatherIsAlignedAndExact) {
  const airfield::FlightDb db = airfield::make_airfield(37, 5);
  core::kern::SoaSnapshot snap;
  snap.gather(db);
  const core::kern::SoaView view = snap.view();
  ASSERT_EQ(view.n, db.size());
  for (const double* p : {view.x, view.y, view.dx, view.dy, view.alt}) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                  core::kern::kKernelAlignment,
              0u);
  }
  for (std::size_t i = 0; i < view.n; ++i) {
    EXPECT_EQ(view.x[i], db.x[i]);
    EXPECT_EQ(view.y[i], db.y[i]);
    EXPECT_EQ(view.dx[i], db.dx[i]);
    EXPECT_EQ(view.dy[i], db.dy[i]);
    EXPECT_EQ(view.alt[i], db.alt[i]);
  }
}

}  // namespace
}  // namespace atm::tasks
