// Shrinker self-test (src/testkit/shrink.hpp): plant a known bug — the
// fleet off-by-one shim — let the fuzzer's oracle comparison catch it at
// a pinned seed, and require the greedy shrinker to minimize the failure
// to a tiny fleet, deterministically, with the exact golden corpus entry
// pinned byte-for-byte. If this breaks, either the shrinker regressed or
// the forge's sampling changed under an existing seed (which silently
// invalidates every checked-in corpus entry — bump the forge salt and
// regenerate tests/corpus/ instead of editing the golden here).
#include <gtest/gtest.h>

#include <sstream>

#include "src/atm/pipeline.hpp"
#include "src/atm/reference_backend.hpp"
#include "src/testkit/corpus.hpp"
#include "src/testkit/oracle.hpp"
#include "src/testkit/planted.hpp"
#include "src/testkit/shrink.hpp"

namespace atm::testkit {
namespace {

/// The pinned divergent seed for the planted shim (found by scanning
/// seeds from 1; seed 1 itself diverges).
constexpr std::uint64_t kPlantedSeed = 1;

/// The golden minimal repro: shrinking kPlantedSeed must land exactly
/// here. 2 aircraft (a hotspot pair), every knob zeroed.
constexpr char kGoldenEntry[] =
    "format = atm-testkit-corpus-v1\n"
    "name = planted-minimal\n"
    "note = golden\n"
    "seed = 1\n"
    "forge.min_aircraft = 24\n"
    "forge.max_aircraft = 96\n"
    "forge.min_major_cycles = 1\n"
    "forge.max_major_cycles = 2\n"
    "forge.fuzz_policy = 1\n"
    "forge.fuzz_sensor_faults = 1\n"
    "forge.fuzz_sporadic = 1\n"
    "major_cycles = 1\n"
    "zero.faults = 1\n"
    "zero.radar_noise = 1\n"
    "zero.dropout = 1\n"
    "zero.sporadic = 1\n"
    "zero.policy = 1\n"
    "keep = 72,74\n";

/// True when the planted backend's pipeline run diverges from the
/// reference on this case — the predicate handed to the shrinker.
bool planted_diverges(const ForgedCase& c) {
  tasks::PipelineConfig cfg = pipeline_config(c);
  cfg.governor = rt::GovernorConfig{};
  cfg.faults.stolen_time_probability = 0.0;
  cfg.faults.stolen_time_ms = 0.0;

  tasks::ReferenceBackend ref;
  PlantedBugBackend buggy;
  ref.load(c.db);
  buggy.load(c.db);
  const tasks::PipelineResult want = tasks::run_pipeline(ref, cfg);
  const tasks::PipelineResult got = tasks::run_pipeline(buggy, cfg);
  OracleReport report;
  return !compare_runs("planted", got, buggy.state(), want, ref.state(),
                       report);
}

TEST(ShrinkTest, PinnedSeedStillTripsThePlantedBug) {
  EXPECT_TRUE(planted_diverges(forge_case(kPlantedSeed)))
      << "seed " << kPlantedSeed
      << " no longer reproduces the planted fleet off-by-one — the forge "
         "sampling changed under existing seeds";
}

TEST(ShrinkTest, ConvergesToTheGoldenMinimalRepro) {
  const ShrinkResult result =
      shrink_case(kPlantedSeed, {}, {}, &planted_diverges);

  ASSERT_TRUE(result.failing);
  EXPECT_LE(result.minimal.db.size(), 4u)
      << "shrinker left " << result.minimal.db.size()
      << " aircraft in the repro";
  EXPECT_EQ(result.minimal.major_cycles, 1);
  // The minimal case must still fail — a shrinker that overshoots into a
  // passing case is worse than no shrinker.
  EXPECT_TRUE(planted_diverges(result.minimal));
  EXPECT_LE(result.evaluations, ShrinkOptions{}.max_evaluations);

  const CorpusEntry entry = make_entry("planted-minimal", result.minimal,
                                       "golden");
  EXPECT_EQ(serialize(entry), kGoldenEntry);
}

TEST(ShrinkTest, ShrinkingIsDeterministic) {
  const ShrinkResult a = shrink_case(kPlantedSeed, {}, {}, &planted_diverges);
  const ShrinkResult b = shrink_case(kPlantedSeed, {}, {}, &planted_diverges);
  ASSERT_TRUE(a.failing);
  ASSERT_TRUE(b.failing);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.minimal.overrides, b.minimal.overrides);
}

TEST(ShrinkTest, PassingCaseIsReportedNotShrunk) {
  // A predicate nothing satisfies: shrink_case must notice the starting
  // case does not fail and say so instead of "minimizing" a pass.
  const auto never = [](const ForgedCase&) { return false; };
  const ShrinkResult result = shrink_case(kPlantedSeed, {}, {}, never);
  EXPECT_FALSE(result.failing);
  EXPECT_EQ(result.evaluations, 1);
}

TEST(ShrinkTest, GoldenEntryRoundTripsAndStillFails) {
  // The golden string is a complete corpus entry: parse it back and the
  // materialized case must still trip the planted bug. This is the exact
  // promote-a-repro workflow from docs/TESTING.md.
  std::istringstream in{std::string(kGoldenEntry)};
  CorpusEntry entry;
  std::string error;
  ASSERT_TRUE(parse(in, entry, error)) << error;
  EXPECT_EQ(entry.name, "planted-minimal");
  const ForgedCase c = entry.materialize();
  EXPECT_EQ(c.db.size(), 2u);
  EXPECT_TRUE(planted_diverges(c));
}

}  // namespace
}  // namespace atm::testkit
