// Concurrency stress surface for ThreadSanitizer.
//
// These tests exist to give TSan (and the other sanitizers) dense,
// adversarial interleavings over every shared-memory structure in the
// MIMD execution path: the dynamically scheduled thread pool, the striped
// locks guarding the shared flight database, the MIMD backend's full task
// set, and concurrent trace-sink emission. They also assert functional
// results, so under a plain build they still verify that contended
// execution loses no updates.
//
// Keep iteration counts modest: TSan multiplies runtime ~5-15x and the
// TSan CI job runs this file on every push.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/airfield/radar.hpp"
#include "src/airfield/setup.hpp"
#include "src/atm/mimd_backend.hpp"
#include "src/atm/scenarios.hpp"
#include "src/core/rng.hpp"
#include "src/core/spatial/broadphase.hpp"
#include "src/core/sync/mutex.hpp"
#include "src/mimd/thread_pool.hpp"
#include "src/obs/jsonl_sink.hpp"
#include "src/obs/trace.hpp"

namespace atm {
namespace {

// --- sync::Mutex / sync::MutexLock ------------------------------------------

TEST(TsanStress, AnnotatedMutexGuardsPlainCounter) {
  // The same primitive the static layer proves (ATM_GUARDED_BY +
  // sync::MutexLock, see tests/static/) hammered dynamically, so the
  // compile-time and run-time race detectors cover one contract. Mixes
  // scoped locks with the manual try_lock/lock fallback with_lock uses.
  struct Guarded {
    sync::Mutex mu;
    long long value ATM_GUARDED_BY(mu) = 0;
  } counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, t] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        if ((i + t) % 3 == 0) {
          // StripedLocks::with_lock's contended shape.
          if (!counter.mu.try_lock()) counter.mu.lock();
          ++counter.value;
          counter.mu.unlock();
        } else {
          const sync::MutexLock lock(counter.mu);
          ++counter.value;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const sync::MutexLock lock(counter.mu);
  EXPECT_EQ(counter.value,
            static_cast<long long>(kThreads) * kAddsPerThread);
}

// --- mimd::ThreadPool -------------------------------------------------------

TEST(TsanStress, PoolRepeatedJobsWithSharedAccumulator) {
  mimd::ThreadPool pool(4);
  std::atomic<long long> sum{0};
  constexpr int kRounds = 50;
  constexpr std::size_t kItems = 4096;
  for (int round = 0; round < kRounds; ++round) {
    // chunk=1 maximizes claim traffic on the shared job cursor.
    pool.parallel_for(0, kItems, 1, [&](std::size_t i) {
      sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(),
            static_cast<long long>(kRounds) * kItems * (kItems - 1) / 2);
}

TEST(TsanStress, PoolConcurrentCallersAreSerializedSafely) {
  // Two caller threads race to submit jobs to one pool. The pool runs one
  // job at a time (the second submission may execute entirely on its own
  // caller thread) — what this hammers is the job registration handshake
  // and the stack-job lifetime: a worker must never touch a job object
  // after its parallel_for returned.
  mimd::ThreadPool pool(4);
  std::atomic<long long> total{0};
  constexpr std::size_t kItems = 2000;
  constexpr int kRoundsPerCaller = 25;
  auto caller = [&] {
    for (int round = 0; round < kRoundsPerCaller; ++round) {
      pool.parallel_for(0, kItems, 3, [&](std::size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
    }
  };
  std::thread a(caller);
  std::thread b(caller);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2LL * kRoundsPerCaller * kItems);
}

// --- mimd::StripedLocks -----------------------------------------------------

TEST(TsanStress, StripedLocksProtectPlainCounters) {
  // Non-atomic counters mutated by every worker: correctness (and TSan
  // cleanliness) depends entirely on the stripe discipline.
  mimd::ThreadPool pool(4);
  mimd::StripedLocks locks(8);  // few stripes -> real contention
  std::vector<long long> counters(64, 0);
  constexpr int kRounds = 20;
  constexpr std::size_t kItems = 8192;
  for (int round = 0; round < kRounds; ++round) {
    pool.parallel_for(0, kItems, 1, [&](std::size_t i) {
      const std::size_t slot = i % counters.size();
      locks.with_lock(slot, [&] { ++counters[slot]; });
    });
  }
  long long sum = 0;
  for (const long long c : counters) sum += c;
  EXPECT_EQ(sum, static_cast<long long>(kRounds) * kItems);
  EXPECT_EQ(locks.acquisitions(),
            static_cast<std::uint64_t>(kRounds) * kItems);
}

// --- The mutex-striped shared flight database (MIMD backend) ----------------

class TsanStressMimdTasks
    : public ::testing::TestWithParam<core::spatial::BroadphaseMode> {};

TEST_P(TsanStressMimdTasks, FullTaskSetOnSharedDb) {
  // The shared-database execution of [13]: every task's workers read and
  // write one airfield::FlightDb through striped locks. Drive the whole
  // task set for a few periods under both broadphase modes.
  tasks::MimdBackend backend(mimd::paper_xeon_spec(), /*pool_workers=*/4);
  const airfield::FlightDb initial = airfield::make_airfield(600, 0xA1);
  backend.load(initial);
  backend.set_terrain(std::make_shared<const airfield::TerrainMap>(5));

  tasks::Task1Params t1;
  t1.broadphase = GetParam();
  tasks::Task23Params t23;
  t23.broadphase = GetParam();

  core::Rng rng(0xBEEF);
  for (int period = 0; period < 4; ++period) {
    airfield::RadarFrame frame =
        backend.generate_radar(rng, {}, /*modeled_ms=*/nullptr);
    const tasks::Task1Result r1 = backend.run_task1(frame, t1);
    EXPECT_EQ(r1.stats.radars, frame.size());
  }
  const tasks::Task23Result r23 = backend.run_task23(t23);
  EXPECT_EQ(r23.stats.aircraft, initial.size());
  (void)backend.run_display({});
  (void)backend.run_terrain({});
  (void)backend.run_advisory({});
}

TEST_P(TsanStressMimdTasks, ShardedTaskSetGathersSnapshotsConcurrently) {
  // The sector-sharded executive replaces the striped-lock scan with
  // per-sector snapshot gathers racing against nothing but each other,
  // then commits through the pool. Drive it under both broadphase modes
  // with a live trace sink so the per-sector counter emission path runs
  // too, and cross-check outcomes against the monolithic scan so TSan
  // noise can never hide a lost update.
  tasks::MimdBackend sharded(mimd::paper_xeon_spec(), /*pool_workers=*/4);
  tasks::MimdBackend mono(mimd::paper_xeon_spec(), /*pool_workers=*/4);
  const airfield::FlightDb initial = airfield::make_airfield(600, 0xA1);
  sharded.load(initial);
  mono.load(initial);
  obs::RecordingSink sink;
  sharded.set_trace_sink(&sink);

  tasks::Task1Params t1;
  t1.broadphase = GetParam();
  tasks::Task1Params t1_sharded = t1;
  t1_sharded.shard = core::spatial::ShardMode::kSectors;
  t1_sharded.sectors_per_axis = 4;
  tasks::Task23Params t23;
  t23.broadphase = GetParam();
  tasks::Task23Params t23_sharded = t23;
  t23_sharded.shard = core::spatial::ShardMode::kSectors;
  t23_sharded.sectors_per_axis = 4;

  core::Rng rng_a(0xBEEF), rng_b(0xBEEF);
  for (int period = 0; period < 4; ++period) {
    airfield::RadarFrame frame_a =
        sharded.generate_radar(rng_a, {}, /*modeled_ms=*/nullptr);
    airfield::RadarFrame frame_b =
        mono.generate_radar(rng_b, {}, /*modeled_ms=*/nullptr);
    const tasks::Task1Result ra = sharded.run_task1(frame_a, t1_sharded);
    const tasks::Task1Result rb = mono.run_task1(frame_b, t1);
    EXPECT_EQ(ra.stats.sectors, 16);
    EXPECT_EQ(ra.stats.matched, rb.stats.matched);
    EXPECT_EQ(ra.stats.updated_aircraft, rb.stats.updated_aircraft);
  }
  const tasks::Task23Result ra = sharded.run_task23(t23_sharded);
  const tasks::Task23Result rb = mono.run_task23(t23);
  EXPECT_EQ(ra.stats.sectors, 16);
  EXPECT_EQ(ra.stats.conflicts, rb.stats.conflicts);
  EXPECT_EQ(ra.stats.resolved, rb.stats.resolved);
  EXPECT_GT(sink.count(obs::EventKind::kCounter), 0u)
      << "per-sector counters were never emitted";
}

INSTANTIATE_TEST_SUITE_P(
    BothBroadphases, TsanStressMimdTasks,
    ::testing::Values(core::spatial::BroadphaseMode::kBruteForce,
                      core::spatial::BroadphaseMode::kGrid),
    [](const auto& info) {
      return info.param == core::spatial::BroadphaseMode::kGrid ? "grid"
                                                                : "brute";
    });

// --- Governed + faulted pipelines sharing one sink --------------------------

TEST(TsanStress, GovernedFaultedPipelinesShareOneSink) {
  // Two threads each drive their own governed, fault-injected MIMD
  // pipeline (thread pool inside each backend) into ONE shared recording
  // sink: governor transitions, deadline events, and per-task events all
  // interleave through the sink's mutex while the injector perturbs
  // every frame. Each run stays independently deterministic — the shared
  // sink is observability, never state.
  obs::RecordingSink sink;
  tasks::PipelineConfig cfg;
  cfg.aircraft = 300;
  cfg.major_cycles = 1;
  cfg.trace = &sink;
  cfg.governor.enabled = true;
  cfg.faults.enabled = true;
  cfg.faults.dropout_burst_probability = 0.5;
  cfg.faults.dropout_fraction = 0.25;
  cfg.faults.ghost_probability = 0.02;
  cfg.faults.stolen_time_probability = 1.0;
  cfg.faults.stolen_time_ms = 480.0;  // keep every period hot

  double end_a = 0.0;
  double end_b = 0.0;
  std::thread ta([&] {
    tasks::MimdBackend backend(mimd::paper_xeon_spec(), /*pool_workers=*/4);
    end_a = tasks::run_pipeline(backend, cfg).virtual_end_ms;
  });
  std::thread tb([&] {
    tasks::MimdBackend backend(mimd::paper_xeon_spec(), /*pool_workers=*/4);
    end_b = tasks::run_pipeline(backend, cfg).virtual_end_ms;
  });
  ta.join();
  tb.join();
  EXPECT_EQ(end_a, end_b);
  // Both governors walked the ladder and traced it into the shared sink.
  EXPECT_GE(sink.count(obs::EventKind::kGovernor), 2u);
  EXPECT_GT(sink.count(obs::EventKind::kDeadline), 0u);
}

// --- Concurrent trace-sink emission -----------------------------------------

TEST(TsanStress, RecordingSinkConcurrentEmission) {
  obs::RecordingSink sink;
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::kCounter;
        ev.name = "stress";
        ev.value = static_cast<std::uint64_t>(t);
        sink.record(ev);
        if (i % 64 == 0) {
          // Concurrent reads through the counting API as well.
          (void)sink.count(obs::EventKind::kCounter);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(sink.count(obs::EventKind::kCounter, "stress"),
            static_cast<std::size_t>(kThreads) * kEventsPerThread);
}

TEST(TsanStress, JsonlSinkOkProbesRaceAgainstRecording) {
  // Regression for a latent lock-contract bug the annotation pass
  // surfaced: ok() used to read the stream's state (out_->good())
  // without the sink mutex — racy against record()'s writes whenever
  // the stream reports an error (healthy writes never touch the iostate
  // word, which is why TSan alone never caught it). ok() now takes the
  // lock (ATM_PT_GUARDED_BY(mutex_) on out_ makes the unlocked peek a
  // compile error under clang); this test pins the concurrent
  // ok()/record() interleaving and the lock-taking contract.
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  constexpr int kMinEvents = 2000;
  constexpr int kProbes = 2000;
  std::atomic<bool> prober_done{false};
  std::thread prober([&] {
    for (int i = 0; i < kProbes; ++i) EXPECT_TRUE(sink.ok());
    prober_done.store(true, std::memory_order_release);
  });
  // Record until the prober finished (and at least kMinEvents), so the
  // two threads are guaranteed to overlap regardless of scheduling.
  int events = 0;
  while (!prober_done.load(std::memory_order_acquire) ||
         events < kMinEvents) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kCounter;
    ev.name = "probe";
    ev.value = static_cast<std::uint64_t>(events);
    sink.record(ev);
    ++events;
  }
  prober.join();
  sink.flush();
  EXPECT_TRUE(sink.ok());
  std::size_t lines = 0;
  std::istringstream reader(out.str());
  for (std::string line; std::getline(reader, line);) ++lines;
  EXPECT_EQ(lines, static_cast<std::size_t>(events));
}

TEST(TsanStress, JsonlSinkConcurrentEmissionKeepsLinesWhole) {
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::kTask;
        ev.name = "task" + std::to_string(t);
        ev.modeled_ms = 0.25;
        sink.record(ev);
      }
      sink.flush();
    });
  }
  for (std::thread& t : threads) t.join();

  // Whole-line serialization: every line is exactly one {...} object.
  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(line.find('\n'), std::string::npos);
    ++n;
  }
  EXPECT_EQ(n, static_cast<std::size_t>(kThreads) * kEventsPerThread);
}

}  // namespace
}  // namespace atm
