// Tests for the multi-tower radar environment.
#include "src/airfield/towers.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "src/airfield/setup.hpp"

namespace atm::airfield {
namespace {

TEST(TowerLayout, GridSquaredTowers) {
  TowerLayoutParams params;
  params.grid = 3;
  const auto towers = make_tower_layout(1, params);
  EXPECT_EQ(towers.size(), 9u);
  for (const RadarTower& t : towers) {
    EXPECT_DOUBLE_EQ(t.range_nm, params.range_nm);
    // Jittered grid points stay comfortably inside (or near) the field.
    EXPECT_LE(std::fabs(t.x), core::kGridHalfExtentNm);
    EXPECT_LE(std::fabs(t.y), core::kGridHalfExtentNm);
  }
}

TEST(TowerLayout, DeterministicPerSeed) {
  const auto a = make_tower_layout(5);
  const auto b = make_tower_layout(5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y);
  }
}

TEST(MultiRadar, CoverageMatchesPaperTwoToSix) {
  // The default layout should reproduce the paper's observation that most
  // aircraft are within range of 2 to 6 radars.
  const FlightDb db = make_airfield(2000, 3);
  const auto towers = make_tower_layout(7);
  core::Rng rng(9);
  const MultiRadarFrame frame = generate_multi_radar(db, towers, rng);
  const double coverage = mean_coverage(frame, db.size());
  EXPECT_GE(coverage, 2.0);
  EXPECT_LE(coverage, 6.0);

  // Per-aircraft coverage histogram: almost everyone seen at least twice.
  std::map<std::int32_t, int> per_aircraft;
  for (const std::int32_t t : frame.base.truth) ++per_aircraft[t];
  std::size_t below_two = 0;
  for (std::size_t i = 0; i < db.size(); ++i) {
    const auto it = per_aircraft.find(static_cast<std::int32_t>(i));
    if (it == per_aircraft.end() || it->second < 2) ++below_two;
  }
  EXPECT_LT(below_two, db.size() / 5);
}

TEST(MultiRadar, ReturnsOnlyFromCoveringTowers) {
  const FlightDb db = make_airfield(300, 4);
  const auto towers = make_tower_layout(2);
  core::Rng rng(1);
  RadarParams params;
  params.noise_nm = 0.1;
  const MultiRadarFrame frame = generate_multi_radar(db, towers, rng, params);
  for (std::size_t r = 0; r < frame.size(); ++r) {
    const auto a = static_cast<std::size_t>(frame.base.truth[r]);
    const auto t = static_cast<std::size_t>(frame.tower[r]);
    const core::Vec2 expected = db.expected(a);
    const double dx = expected.x - towers[t].x;
    const double dy = expected.y - towers[t].y;
    ASSERT_LE(std::hypot(dx, dy), towers[t].range_nm + 1e-9)
        << "return " << r << " from a tower that cannot see the aircraft";
    // The return is near the expected position (tower noise only).
    ASSERT_LE(std::fabs(frame.base.rx[r] - expected.x), params.noise_nm);
    ASSERT_LE(std::fabs(frame.base.ry[r] - expected.y), params.noise_nm);
  }
}

TEST(MultiRadar, IndependentNoisePerTower) {
  // Two towers seeing the same aircraft produce different returns.
  FlightDb db(1);
  db.x[0] = 0.0;
  db.y[0] = 0.0;
  std::vector<RadarTower> towers{{-10.0, 0.0, 100.0}, {10.0, 0.0, 100.0}};
  core::Rng rng(2);
  const MultiRadarFrame frame = generate_multi_radar(db, towers, rng);
  ASSERT_EQ(frame.size(), 2u);
  EXPECT_NE(frame.base.rx[0], frame.base.rx[1]);
}

TEST(MultiRadar, DropoutRemovesReturns) {
  const FlightDb db = make_airfield(500, 4);
  const auto towers = make_tower_layout(3);
  core::Rng rng_a(5), rng_b(5);
  RadarParams no_drop;
  RadarParams with_drop;
  with_drop.dropout_probability = 0.5;
  const auto full = generate_multi_radar(db, towers, rng_a, no_drop);
  const auto dropped = generate_multi_radar(db, towers, rng_b, with_drop);
  EXPECT_LT(dropped.size(), full.size());
  EXPECT_GT(dropped.size(), full.size() / 4);
}

TEST(MultiRadar, ShuffleIsAPermutationAcrossAllArrays) {
  const FlightDb db = make_airfield(200, 6);
  const auto towers = make_tower_layout(3);
  core::Rng rng(7);
  const MultiRadarFrame frame = generate_multi_radar(db, towers, rng);
  // Each (truth, tower) pair appears exactly once.
  std::map<std::pair<std::int32_t, std::int32_t>, int> pairs;
  for (std::size_t r = 0; r < frame.size(); ++r) {
    ++pairs[{frame.base.truth[r], frame.tower[r]}];
  }
  for (const auto& [key, count] : pairs) EXPECT_EQ(count, 1);
  // And the frame is not in aircraft-major order (shuffle happened).
  bool sorted = true;
  for (std::size_t r = 1; r < frame.size(); ++r) {
    if (frame.base.truth[r] < frame.base.truth[r - 1]) {
      sorted = false;
      break;
    }
  }
  EXPECT_FALSE(sorted);
}

TEST(MultiRadar, MeanCoverageHandlesZeroAircraft) {
  MultiRadarFrame frame;
  EXPECT_DOUBLE_EQ(mean_coverage(frame, 0), 0.0);
}

}  // namespace
}  // namespace atm::airfield
