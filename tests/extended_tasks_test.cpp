// Tests for the extended-system reference tasks: display update, automatic
// voice advisory, and multi-tower correlation.
#include <gtest/gtest.h>

#include "src/airfield/setup.hpp"
#include "src/airfield/towers.hpp"
#include "src/atm/extended/advisory.hpp"
#include "src/atm/extended/display.hpp"
#include "src/atm/extended/multiradar.hpp"

namespace atm::tasks::extended {
namespace {

using airfield::FlightDb;
using airfield::kDiscarded;
using airfield::kNone;
using airfield::kRedundant;

// --- display ----------------------------------------------------------------

TEST(SectorOf, CornersAndCentre) {
  // 16 x 16 sectors over [-128, 128]^2: sector (0,0) is the south-west
  // corner, row-major ids.
  EXPECT_EQ(sector_of(-128.0, -128.0, 16), 0);
  EXPECT_EQ(sector_of(127.9, -128.0, 16), 15);
  EXPECT_EQ(sector_of(-128.0, 127.9, 16), 240);
  EXPECT_EQ(sector_of(127.9, 127.9, 16), 255);
  EXPECT_EQ(sector_of(0.0, 0.0, 16), 8 * 16 + 8);
}

TEST(SectorOf, ClampsOutsideField) {
  EXPECT_EQ(sector_of(-500.0, -500.0, 16), 0);
  EXPECT_EQ(sector_of(500.0, 500.0, 16), 255);
}

TEST(DisplayUpdate, CountsOccupancyAndHandoffs) {
  FlightDb db(3);
  db.x[0] = db.x[1] = -100.0;
  db.y[0] = db.y[1] = -100.0;
  db.x[2] = 100.0;
  db.y[2] = 100.0;

  std::vector<std::int32_t> occupancy;
  const DisplayStats first = display_update(db, occupancy);
  EXPECT_EQ(first.handoffs, 0u);  // first update: no previous sector
  EXPECT_EQ(first.occupied_sectors, 2u);
  EXPECT_EQ(first.max_occupancy, 2u);

  // Move aircraft 2 across a sector boundary; re-run.
  db.x[2] += 16.0;
  const DisplayStats second = display_update(db, occupancy);
  EXPECT_EQ(second.handoffs, 1u);
}

TEST(DisplayUpdate, OccupancySumsToAircraft) {
  FlightDb db = airfield::make_airfield(700, 8);
  std::vector<std::int32_t> occupancy;
  const DisplayStats stats = display_update(db, occupancy);
  EXPECT_EQ(stats.aircraft, 700u);
  long long total = 0;
  for (const std::int32_t c : occupancy) total += c;
  EXPECT_EQ(total, 700);
}

// --- advisory ----------------------------------------------------------------

TEST(AdvisoryScan, ClassifiesAllThreeTypes) {
  FlightDb db(4);
  for (std::size_t i = 0; i < 4; ++i) {
    db.x[i] = 0.0;
    db.y[i] = 0.0;
  }
  db.col[0] = 1;            // conflict advisory
  db.terrain_warn[1] = 1;   // terrain advisory
  db.x[2] = 125.0;          // boundary advisory (within 8 nm of the edge)
  // aircraft 3: nothing

  std::vector<Advisory> queue;
  const AdvisoryStats stats = advisory_scan(db, {}, queue);
  EXPECT_EQ(stats.conflict, 1u);
  EXPECT_EQ(stats.terrain, 1u);
  EXPECT_EQ(stats.boundary, 1u);
  EXPECT_EQ(stats.total(), 3u);
  ASSERT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue[0], (Advisory{0, AdvisoryType::kConflict}));
  EXPECT_EQ(queue[1], (Advisory{1, AdvisoryType::kTerrain}));
  EXPECT_EQ(queue[2], (Advisory{2, AdvisoryType::kBoundary}));
}

TEST(AdvisoryScan, OneAircraftCanRaiseSeveral) {
  FlightDb db(1);
  db.col[0] = 1;
  db.terrain_warn[0] = 1;
  db.y[0] = -126.0;
  std::vector<Advisory> queue;
  const AdvisoryStats stats = advisory_scan(db, {}, queue);
  EXPECT_EQ(stats.total(), 3u);
  ASSERT_EQ(queue.size(), 3u);
  // Type order within one aircraft: conflict, terrain, boundary.
  EXPECT_EQ(queue[0].type, AdvisoryType::kConflict);
  EXPECT_EQ(queue[1].type, AdvisoryType::kTerrain);
  EXPECT_EQ(queue[2].type, AdvisoryType::kBoundary);
}

TEST(AdvisoryScan, BoundaryMarginConfigurable) {
  FlightDb db(1);
  db.x[0] = 110.0;
  std::vector<Advisory> queue;
  AdvisoryParams wide;
  wide.boundary_warn_nm = 30.0;  // edge at 98 nm
  EXPECT_EQ(advisory_scan(db, wide, queue).boundary, 1u);
  AdvisoryParams narrow;
  narrow.boundary_warn_nm = 5.0;  // edge at 123 nm
  EXPECT_EQ(advisory_scan(db, narrow, queue).boundary, 0u);
}

// --- multi-tower correlation --------------------------------------------------

/// Frame with explicit returns (no shuffle) for surgical cases.
airfield::MultiRadarFrame frame_at(
    std::initializer_list<core::Vec2> positions) {
  airfield::MultiRadarFrame frame;
  std::int32_t r = 0;
  for (const auto& p : positions) {
    frame.base.rx.push_back(p.x);
    frame.base.ry.push_back(p.y);
    frame.base.truth.push_back(r);
    frame.tower.push_back(0);
    ++r;
  }
  frame.base.rmatch_with.assign(frame.base.rx.size(), kNone);
  return frame;
}

FlightDb parked(std::initializer_list<core::Vec2> positions) {
  FlightDb db(positions.size());
  std::size_t i = 0;
  for (const auto& p : positions) {
    db.x[i] = p.x;
    db.y[i] = p.y;
    db.alt[i] = 10000.0;
    ++i;
  }
  return db;
}

TEST(MultiRadarCorrelate, ClosestReturnWinsOthersRedundant) {
  FlightDb db = parked({{0, 0}});
  auto frame = frame_at({{0.3, 0.0}, {0.1, 0.0}, {0.0, 0.2}});
  const MultiRadarStats stats = correlate_multi(db, frame);
  EXPECT_EQ(stats.matched_aircraft, 1u);
  EXPECT_EQ(stats.redundant_returns, 2u);
  EXPECT_EQ(stats.unmatched_returns, 0u);
  // The winner is return 1 (distance 0.1 < 0.2 < 0.3).
  EXPECT_EQ(frame.base.rmatch_with[1], 0);
  EXPECT_EQ(frame.base.rmatch_with[0], kRedundant);
  EXPECT_EQ(frame.base.rmatch_with[2], kRedundant);
  EXPECT_DOUBLE_EQ(db.x[0], 0.1);
}

TEST(MultiRadarCorrelate, TieBreaksToLowestReturnIndex) {
  FlightDb db = parked({{0, 0}});
  auto frame = frame_at({{0.2, 0.0}, {-0.2, 0.0}});  // equal distance
  correlate_multi(db, frame);
  EXPECT_EQ(frame.base.rmatch_with[0], 0);
  EXPECT_EQ(frame.base.rmatch_with[1], kRedundant);
}

TEST(MultiRadarCorrelate, AmbiguousReturnStillDiscarded) {
  // One return covering two aircraft is ambiguous regardless of towers.
  FlightDb db = parked({{0, 0}, {0.4, 0}});
  auto frame = frame_at({{0.2, 0.0}});
  const MultiRadarStats stats = correlate_multi(db, frame);
  EXPECT_EQ(stats.discarded_returns, 1u);
  EXPECT_EQ(stats.matched_aircraft, 0u);
}

TEST(MultiRadarCorrelate, SecondPassRecoversFarReturn) {
  FlightDb db = parked({{0, 0}});
  auto frame = frame_at({{0.8, 0.0}});  // outside pass-1 box (0.5)
  const MultiRadarStats stats = correlate_multi(db, frame);
  EXPECT_EQ(stats.matched_aircraft, 1u);
  EXPECT_EQ(stats.passes, 2);
}

TEST(MultiRadarCorrelate, RealisticFieldQuality) {
  const FlightDb initial = airfield::make_airfield(1500, 21);
  FlightDb db = initial;
  const auto towers = airfield::make_tower_layout(3);
  core::Rng rng(4);
  auto frame = airfield::generate_multi_radar(db, towers, rng);
  const MultiRadarStats stats = correlate_multi(db, frame);

  EXPECT_EQ(stats.returns, frame.size());
  // Multi-coverage correlates nearly everyone...
  EXPECT_GT(stats.matched_aircraft, 1400u);
  // ...and produces plenty of redundant (multi-tower) returns.
  EXPECT_GT(stats.redundant_returns, stats.matched_aircraft / 2);
  // Accounting: every return is exactly one of the four dispositions.
  std::size_t matched_returns = 0;
  for (const std::int32_t m : frame.base.rmatch_with) {
    if (m >= 0) ++matched_returns;
  }
  EXPECT_EQ(matched_returns + stats.redundant_returns +
                stats.discarded_returns + stats.unmatched_returns,
            stats.returns);
  EXPECT_EQ(matched_returns, stats.matched_aircraft);
}

TEST(MultiRadarCorrelate, BetterAccuracyThanSingleRadar) {
  // The whole point of processing all radar: picking the closest of
  // several noisy returns tracks the aircraft more accurately than one
  // noisy return. Compare mean position error after one update.
  const FlightDb initial = airfield::make_airfield(800, 33);
  const auto towers = airfield::make_tower_layout(3);

  FlightDb multi_db = initial;
  core::Rng rng_m(5);
  auto multi_frame = airfield::generate_multi_radar(multi_db, towers, rng_m);
  correlate_multi(multi_db, multi_frame);

  double multi_err = 0.0;
  int counted = 0;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    const core::Vec2 truth = initial.expected(i);
    multi_err += std::hypot(multi_db.x[i] - truth.x,
                            multi_db.y[i] - truth.y);
    ++counted;
  }
  multi_err /= counted;
  // A single noisy return has mean |error| ~ noise/2 per axis; picking the
  // best of several must land clearly below that.
  EXPECT_LT(multi_err, 0.12);
}

}  // namespace
}  // namespace atm::tasks::extended
