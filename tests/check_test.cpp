// Contract-macro tests for src/core/check.hpp.
//
// The death tests pin down the failure-message format that check.cpp
// promises ("<kind> failed: <expr>\n  at <file>:<line>\n  context: ..."),
// since humans grep CI logs for exactly those strings. The NDEBUG tests
// verify the ATM_ASSERT compile-out contract: the condition must not be
// evaluated in release builds, but must still be type-checked.
#include <gtest/gtest.h>

#include <string>

#include "src/core/check.hpp"

namespace atm {
namespace {

// --- Passing checks are silent ----------------------------------------------

TEST(AtmCheck, PassingChecksHaveNoEffect) {
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return true;
  };
  ATM_CHECK(touch());
  ATM_CHECK_MSG(touch(), "never printed");
  EXPECT_EQ(evaluations, 2);
}

TEST(AtmCheck, ConditionIsEvaluatedExactlyOnce) {
  int evaluations = 0;
  ATM_CHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

// --- Failure message format ---------------------------------------------------

using AtmCheckDeathTest = ::testing::Test;

TEST(AtmCheckDeathTest, CheckPrintsExpressionAndLocation) {
  // The regex must match the stringized expression and the "at file:line"
  // trailer; gtest applies it to stderr.
  EXPECT_DEATH(ATM_CHECK(1 + 1 == 3),
               "ATM_CHECK failed: 1 \\+ 1 == 3\n  at .*check_test\\.cpp:[0-9]+");
}

TEST(AtmCheckDeathTest, CheckMsgPrintsStreamedContext) {
  const int half = 12;
  EXPECT_DEATH(
      ATM_CHECK_MSG(half < 0, "half=" << half << " pass=" << 3),
      "ATM_CHECK failed: half < 0\n"
      "  at .*check_test\\.cpp:[0-9]+\n"
      "  context: half=12 pass=3");
}

TEST(AtmCheckDeathTest, ContextIsOnlyEvaluatedOnFailure) {
  // The context chain must not run when the check passes — it may be
  // arbitrarily expensive (or side-effecting, as here).
  int ctx_evaluations = 0;
  ATM_CHECK_MSG(true, "n=" << ++ctx_evaluations);
  EXPECT_EQ(ctx_evaluations, 0);
}

// --- ATM_ASSERT: on in debug, off (and unevaluated) under NDEBUG -------------

TEST(AtmAssert, CompileOutContract) {
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return true;
  };
  ATM_ASSERT(touch());
  ATM_ASSERT_MSG(touch(), "ctx " << evaluations);
#ifdef NDEBUG
  // Release: the condition sits in an unevaluated sizeof and never runs.
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_EQ(evaluations, 2);
#endif
}

#ifdef NDEBUG
TEST(AtmAssert, FailingAssertIsNoOpUnderNdebug) {
  // Must not abort — and must not even evaluate the condition.
  int evaluations = 0;
  auto lie = [&evaluations] {
    ++evaluations;
    return false;
  };
  ATM_ASSERT(lie());
  ATM_ASSERT_MSG(lie(), "unused");
  EXPECT_EQ(evaluations, 0);
}
#else
TEST(AtmAssertDeathTest, FailingAssertAbortsInDebug) {
  EXPECT_DEATH(ATM_ASSERT(2 < 1),
               "ATM_ASSERT failed: 2 < 1\n  at .*check_test\\.cpp:[0-9]+");
}
#endif

// ATM_ASSERT must still type-check its condition under NDEBUG: this line
// failing to compile (rather than at runtime) is the contract. A bool-
// convertible expression referencing a real variable keeps typos caught.
TEST(AtmAssert, ConditionIsTypeCheckedEvenWhenCompiledOut) {
  const std::string name = "task1";
  ATM_ASSERT(!name.empty());
  SUCCEED();
}

}  // namespace
}  // namespace atm
