// Negative-compile snippet: reading an ATM_GUARDED_BY field without
// holding its mutex. Expected diagnostic (pinned by check_compile.cmake):
//   reading variable 'balance_' requires holding mutex 'mu_'
#include "src/core/sync/mutex.hpp"

namespace {

class Account {
 public:
  int peek() const { return balance_; }  // BAD: no lock held

 private:
  mutable atm::sync::Mutex mu_;
  int balance_ ATM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  const Account account;
  return account.peek();
}
