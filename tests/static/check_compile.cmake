# Negative-compile driver for the Clang Thread Safety Analysis rules
# (docs/STATIC_ANALYSIS.md, layer 5). Run as a ctest COMMAND:
#
#   cmake -DCOMPILER=<clang++> -DSNIPPET=<file.cpp> -DREPO_ROOT=<root>
#         -DEXPECT=<regex|COMPILES> -P check_compile.cmake
#
# EXPECT=COMPILES       the snippet must compile cleanly (positive
#                       control: proves failures below are real findings,
#                       not a broken include path or flag set).
# EXPECT=<regex>        the snippet must FAIL to compile, the diagnostics
#                       must match <regex>, and the failure must come
#                       from the thread-safety analysis — so each rule
#                       the analysis enforces is itself regression-tested,
#                       the same way lint_atm.py --self-test pins its
#                       rules.
#
# The flag set mirrors atm_apply_thread_safety() in the top-level
# CMakeLists.txt; keep the two in sync.

foreach(var COMPILER SNIPPET REPO_ROOT EXPECT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_compile.cmake: missing -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${COMPILER} -std=c++20 -fsyntax-only
          -I${REPO_ROOT}
          -Wthread-safety -Wthread-safety-beta
          -Werror=thread-safety -Werror=thread-safety-beta
          ${SNIPPET}
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
set(diagnostics "${out}${err}")

if(EXPECT STREQUAL "COMPILES")
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR
      "positive control ${SNIPPET} failed to compile — the harness "
      "itself is broken (wrong flags/include path?):\n${diagnostics}")
  endif()
  return()
endif()

if(exit_code EQUAL 0)
  message(FATAL_ERROR
    "${SNIPPET} compiled cleanly but seeds a lock-discipline violation: "
    "the thread-safety analysis no longer catches it")
endif()
if(NOT diagnostics MATCHES "thread-safety")
  message(FATAL_ERROR
    "${SNIPPET} failed for a reason other than the thread-safety "
    "analysis:\n${diagnostics}")
endif()
if(NOT diagnostics MATCHES "${EXPECT}")
  message(FATAL_ERROR
    "${SNIPPET} failed, but its diagnostics do not match the expected "
    "rule '${EXPECT}':\n${diagnostics}")
endif()
