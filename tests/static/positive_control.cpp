// Positive control for the negative-compile harness: disciplined use of
// every annotated primitive must compile warning-free under
// -Wthread-safety -Wthread-safety-beta -Werror=thread-safety. If this
// snippet fails, the harness (flags, include path, wrapper annotations)
// is broken — and every "expected failure" below it is meaningless.
#include "src/core/sync/mutex.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) {
    const atm::sync::MutexLock lock(mu_);
    balance_ += amount;
  }

  void deposit_locked(int amount) ATM_REQUIRES(mu_) { balance_ += amount; }

  void deposit_twice(int amount) {
    mu_.lock();
    deposit_locked(amount);
    deposit_locked(amount);
    mu_.unlock();
  }

  bool try_deposit(int amount) {
    if (!mu_.try_lock()) return false;
    balance_ += amount;
    mu_.unlock();
    return true;
  }

  // The StripedLocks::with_lock shape: contend, fall back to a blocking
  // lock, and join the two paths with the capability held on both.
  void deposit_contended(int amount) {
    if (!mu_.try_lock()) {
      mu_.lock();
    }
    balance_ += amount;
    mu_.unlock();
  }

  int balance() const {
    const atm::sync::MutexLock lock(mu_);
    return balance_;
  }

 private:
  mutable atm::sync::Mutex mu_;
  int balance_ ATM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  account.deposit_twice(2);
  (void)account.try_deposit(3);
  account.deposit_contended(4);
  return account.balance() == 0 ? 1 : 0;
}
