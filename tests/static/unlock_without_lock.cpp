// Negative-compile snippet: releasing a mutex that is not held.
// Expected diagnostic:
//   releasing mutex 'mu' that was not held
#include "src/core/sync/mutex.hpp"

namespace {

void oops(atm::sync::Mutex& mu) {
  mu.unlock();  // BAD: never locked
}

}  // namespace

int main() {
  atm::sync::Mutex mu;
  oops(mu);
  return 0;
}
