// Negative-compile snippet: calling an ATM_REQUIRES function without
// holding the capability it demands. Expected diagnostic:
//   calling function 'insert_locked' requires holding mutex 'mu_'
#include "src/core/sync/mutex.hpp"

namespace {

class Db {
 public:
  void insert_locked() ATM_REQUIRES(mu_) { ++rows_; }

  void insert() {
    insert_locked();  // BAD: caller never acquired mu_
  }

 private:
  atm::sync::Mutex mu_;
  int rows_ ATM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Db db;
  db.insert();
  return 0;
}
