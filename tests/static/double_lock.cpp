// Negative-compile snippet: acquiring a mutex already held (std::mutex
// self-deadlocks here at run time; the analysis rejects it at compile
// time). Expected diagnostic:
//   acquiring mutex 'mu' that is already held
#include "src/core/sync/mutex.hpp"

namespace {

void oops(atm::sync::Mutex& mu) {
  mu.lock();
  mu.lock();  // BAD: already held
  mu.unlock();
}

}  // namespace

int main() {
  atm::sync::Mutex mu;
  oops(mu);
  return 0;
}
