// Tests for the airfield simulation substrate (src/airfield).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/airfield/flight_db.hpp"
#include "src/airfield/radar.hpp"
#include "src/airfield/setup.hpp"
#include "src/core/units.hpp"

namespace atm::airfield {
namespace {

TEST(FlightDb, ResizeInitializesWorkingState) {
  FlightDb db(5);
  EXPECT_EQ(db.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(db.rmatch[i], 0);
    EXPECT_EQ(db.col[i], 0);
    EXPECT_EQ(db.col_with[i], kNone);
    EXPECT_DOUBLE_EQ(db.time_till[i], core::kCriticalTimePeriods);
  }
}

TEST(FlightDb, ExpectedPositionAddsVelocity) {
  FlightDb db(1);
  db.x[0] = 10.0;
  db.y[0] = -5.0;
  db.dx[0] = 0.25;
  db.dy[0] = -0.5;
  const core::Vec2 e = db.expected(0);
  EXPECT_DOUBLE_EQ(e.x, 10.25);
  EXPECT_DOUBLE_EQ(e.y, -5.5);
}

TEST(FlightDb, ResetCollisionStateCopiesPathToTrial) {
  FlightDb db(2);
  db.dx[1] = 0.3;
  db.dy[1] = 0.1;
  db.col[1] = 1;
  db.col_with[1] = 0;
  db.time_till[1] = 5.0;
  db.reset_collision_state();
  EXPECT_DOUBLE_EQ(db.batx[1], 0.3);
  EXPECT_DOUBLE_EQ(db.baty[1], 0.1);
  EXPECT_EQ(db.col[1], 0);
  EXPECT_EQ(db.col_with[1], kNone);
  EXPECT_DOUBLE_EQ(db.time_till[1], core::kCriticalTimePeriods);
}

TEST(FlightDb, SameFlightStateComparesPersistentFieldsOnly) {
  FlightDb a(2), b(2);
  a.x[0] = b.x[0] = 1.0;
  a.col[0] = 1;  // working state differs
  EXPECT_TRUE(a.same_flight_state(b));
  b.x[0] = 1.5;
  EXPECT_FALSE(a.same_flight_state(b));
  EXPECT_TRUE(a.same_flight_state(b, /*tol=*/1.0));
  FlightDb c(3);
  EXPECT_FALSE(a.same_flight_state(c));
}

TEST(Reentry, WrapsAtNegatedPosition) {
  FlightDb db(2);
  db.x[0] = core::kGridHalfExtentNm + 1.0;
  db.y[0] = 50.0;
  db.dx[0] = 0.1;
  EXPECT_TRUE(apply_reentry(db, 0));
  EXPECT_DOUBLE_EQ(db.x[0], -(core::kGridHalfExtentNm + 1.0));
  EXPECT_DOUBLE_EQ(db.y[0], -50.0);
  EXPECT_DOUBLE_EQ(db.dx[0], 0.1);  // velocity unchanged (same direction)
  // In-grid aircraft untouched.
  db.x[1] = 10.0;
  db.y[1] = 10.0;
  EXPECT_FALSE(apply_reentry(db, 1));
}

TEST(Reentry, AllCountsWrapped) {
  FlightDb db(3);
  db.x[0] = 200.0;
  db.y[1] = -200.0;
  db.x[2] = 0.0;
  EXPECT_EQ(apply_reentry_all(db), 2u);
}

TEST(SetupFlight, HonoursPaperRanges) {
  FlightDb db = make_airfield(2000, 99);
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_LE(std::fabs(db.x[i]), core::kSetupPositionMaxNm);
    EXPECT_LE(std::fabs(db.y[i]), core::kSetupPositionMaxNm);
    const double speed_knots = core::nm_per_period_to_knots(
        std::hypot(db.dx[i], db.dy[i]));
    EXPECT_GE(speed_knots, core::kMinSpeedKnots - 1e-9);
    EXPECT_LE(speed_knots, core::kMaxSpeedKnots + 1e-9);
    EXPECT_GE(db.alt[i], core::kMinAltitudeFeet);
    EXPECT_LE(db.alt[i], core::kMaxAltitudeFeet);
  }
}

TEST(SetupFlight, DeterministicForSeed) {
  const FlightDb a = make_airfield(100, 7);
  const FlightDb b = make_airfield(100, 7);
  EXPECT_TRUE(a.same_flight_state(b));
  const FlightDb c = make_airfield(100, 8);
  EXPECT_FALSE(a.same_flight_state(c));
}

TEST(SetupFlight, ProducesAllFourVelocityQuadrants) {
  const FlightDb db = make_airfield(500, 3);
  int quadrant[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < db.size(); ++i) {
    const int q = (db.dx[i] >= 0 ? 0 : 1) + (db.dy[i] >= 0 ? 0 : 2);
    ++quadrant[q];
  }
  for (const int count : quadrant) EXPECT_GT(count, 20);
}

TEST(GenerateRadar, NoiseStaysWithinBound) {
  const FlightDb db = make_airfield(500, 11);
  core::Rng rng(5);
  RadarParams params;
  params.noise_nm = 0.25;
  const RadarFrame frame = generate_radar(db, rng, params);
  ASSERT_EQ(frame.size(), db.size());
  for (std::size_t r = 0; r < frame.size(); ++r) {
    const auto truth = static_cast<std::size_t>(frame.truth[r]);
    const core::Vec2 expected = db.expected(truth);
    EXPECT_LE(std::fabs(frame.rx[r] - expected.x), params.noise_nm);
    EXPECT_LE(std::fabs(frame.ry[r] - expected.y), params.noise_nm);
  }
}

TEST(GenerateRadar, ShuffleDecorrelatesOrder) {
  const FlightDb db = make_airfield(400, 11);
  core::Rng rng(5);
  const RadarFrame frame = generate_radar(db, rng, {});
  std::size_t in_place = 0;
  for (std::size_t r = 0; r < frame.size(); ++r) {
    if (frame.truth[r] == static_cast<std::int32_t>(r)) ++in_place;
  }
  // Quarter reversal leaves at most a couple of fixed points per quarter.
  EXPECT_LE(in_place, 8u);
}

TEST(GenerateRadar, TruthIsAPermutation) {
  const FlightDb db = make_airfield(257, 2);  // non-multiple of 4
  core::Rng rng(9);
  const RadarFrame frame = generate_radar(db, rng, {});
  std::set<std::int32_t> seen(frame.truth.begin(), frame.truth.end());
  EXPECT_EQ(seen.size(), db.size());
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), static_cast<std::int32_t>(db.size() - 1));
}

TEST(GenerateRadar, DropoutProducesSentinels) {
  const FlightDb db = make_airfield(1000, 4);
  core::Rng rng(6);
  RadarParams params;
  params.dropout_probability = 0.2;
  const RadarFrame frame = generate_radar(db, rng, params);
  std::size_t dropped = 0;
  for (std::size_t r = 0; r < frame.size(); ++r) {
    if (frame.truth[r] == kNone) {
      ++dropped;
      EXPECT_DOUBLE_EQ(frame.rx[r], kDropoutCoordinate);
    }
  }
  EXPECT_GT(dropped, 120u);
  EXPECT_LT(dropped, 280u);
}

TEST(QuarterReversalShuffle, ExactQuarterReversal) {
  RadarFrame frame;
  frame.resize(8);
  for (std::size_t i = 0; i < 8; ++i) {
    frame.rx[i] = static_cast<double>(i);
    frame.truth[i] = static_cast<std::int32_t>(i);
  }
  quarter_reversal_shuffle(frame);
  // Quarters of size 2: [0 1][2 3][4 5][6 7] -> [1 0][3 2][5 4][7 6].
  const std::vector<double> want{1, 0, 3, 2, 5, 4, 7, 6};
  EXPECT_EQ(frame.rx, want);
}

TEST(QuarterReversalShuffle, TinyFramesReverseWhole) {
  RadarFrame frame;
  frame.resize(3);
  frame.truth = {0, 1, 2};
  frame.rx = {0.0, 1.0, 2.0};
  frame.ry = {0.0, 0.0, 0.0};
  quarter_reversal_shuffle(frame);
  EXPECT_EQ(frame.truth, (std::vector<std::int32_t>{2, 1, 0}));
}

TEST(CountCorrectMatches, ScoresAgainstTruth) {
  RadarFrame frame;
  frame.resize(3);
  frame.truth = {2, 0, 1};
  frame.rmatch_with = {2, 1, kDiscarded};
  EXPECT_EQ(count_correct_matches(frame), 1u);
}

}  // namespace
}  // namespace atm::airfield
