// Tests for the reference Task 1 implementation (tracking & correlation,
// paper Section 5.1 / Algorithm 1).
#include "src/atm/reference/correlate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/airfield/setup.hpp"

namespace atm::tasks::reference {
namespace {

using airfield::FlightDb;
using airfield::kDiscarded;
using airfield::kNone;
using airfield::MatchState;
using airfield::RadarFrame;

/// Hand-built field: aircraft at given positions, zero velocity.
FlightDb parked_aircraft(std::initializer_list<core::Vec2> positions) {
  FlightDb db(positions.size());
  std::size_t i = 0;
  for (const auto& p : positions) {
    db.x[i] = p.x;
    db.y[i] = p.y;
    db.alt[i] = 10000.0;
    ++i;
  }
  return db;
}

RadarFrame radar_at(std::initializer_list<core::Vec2> positions) {
  RadarFrame frame;
  frame.resize(positions.size());
  std::size_t r = 0;
  for (const auto& p : positions) {
    frame.rx[r] = p.x;
    frame.ry[r] = p.y;
    frame.truth[r] = static_cast<std::int32_t>(r);
    ++r;
  }
  return frame;
}

TEST(Task1Reference, CleanOneToOneMatch) {
  FlightDb db = parked_aircraft({{0, 0}, {20, 0}, {0, 20}});
  RadarFrame frame = radar_at({{0.1, 0.1}, {20.2, -0.1}, {-0.2, 19.9}});
  const Task1Stats stats = correlate_and_track(db, frame);
  EXPECT_EQ(stats.matched, 3u);
  EXPECT_EQ(stats.unmatched_radars, 0u);
  EXPECT_EQ(stats.discarded_radars, 0u);
  EXPECT_EQ(stats.passes, 1);
  // Matched aircraft take the radar position exactly.
  EXPECT_DOUBLE_EQ(db.x[0], 0.1);
  EXPECT_DOUBLE_EQ(db.y[0], 0.1);
  EXPECT_DOUBLE_EQ(db.x[1], 20.2);
  EXPECT_EQ(frame.rmatch_with[0], 0);
  EXPECT_EQ(frame.rmatch_with[1], 1);
  EXPECT_EQ(frame.rmatch_with[2], 2);
}

TEST(Task1Reference, ExpectedPositionUsesVelocity) {
  FlightDb db = parked_aircraft({{0, 0}});
  db.dx[0] = 1.0;
  db.dy[0] = -0.5;
  // Radar near the *expected* position (1, -0.5), not the current one.
  RadarFrame frame = radar_at({{1.1, -0.4}});
  const Task1Stats stats = correlate_and_track(db, frame);
  EXPECT_EQ(stats.matched, 1u);
  EXPECT_DOUBLE_EQ(db.x[0], 1.1);
}

TEST(Task1Reference, UnmatchedAircraftFliesToExpectedPosition) {
  FlightDb db = parked_aircraft({{0, 0}});
  db.dx[0] = 0.5;
  RadarFrame frame = radar_at({{100.0, 100.0}});  // radar far away
  const Task1Stats stats = correlate_and_track(db, frame);
  EXPECT_EQ(stats.matched, 0u);
  // Radar stays unmatched after the final (4 nm) pass.
  EXPECT_EQ(stats.unmatched_radars, 1u);
  EXPECT_EQ(stats.passes, 3);
  EXPECT_DOUBLE_EQ(db.x[0], 0.5);
  EXPECT_DOUBLE_EQ(db.y[0], 0.0);
}

TEST(Task1Reference, RadarCoveringTwoAircraftIsDiscarded) {
  // Two aircraft 0.4 nm apart; a radar between them covers both.
  FlightDb db = parked_aircraft({{0, 0}, {0.4, 0}});
  RadarFrame frame = radar_at({{0.2, 0.0}});
  const Task1Stats stats = correlate_and_track(db, frame);
  EXPECT_EQ(stats.matched, 0u);
  EXPECT_EQ(stats.discarded_radars, 1u);
  EXPECT_EQ(frame.rmatch_with[0], kDiscarded);
  // Both aircraft keep expected (= current, zero velocity) positions.
  EXPECT_DOUBLE_EQ(db.x[0], 0.0);
  EXPECT_DOUBLE_EQ(db.x[1], 0.4);
}

TEST(Task1Reference, AircraftCoveredByTwoRadarsBecomesAmbiguous) {
  FlightDb db = parked_aircraft({{0, 0}});
  RadarFrame frame = radar_at({{0.1, 0.0}, {-0.1, 0.0}});
  const Task1Stats stats = correlate_and_track(db, frame);
  EXPECT_EQ(stats.matched, 0u);
  EXPECT_EQ(stats.ambiguous_aircraft, 1u);
  EXPECT_EQ(db.rmatch[0], static_cast<std::int8_t>(MatchState::kAmbiguous));
  // Both radars recorded the aircraft id but failed the commit check.
  EXPECT_EQ(frame.rmatch_with[0], 0);
  EXPECT_EQ(frame.rmatch_with[1], 0);
  EXPECT_DOUBLE_EQ(db.x[0], 0.0);
}

TEST(Task1Reference, SecondPassDoublesBox) {
  // Radar 0.7 nm away: outside the 0.5 nm half-box, inside the 1.0 nm one.
  FlightDb db = parked_aircraft({{0, 0}});
  RadarFrame frame = radar_at({{0.7, 0.0}});
  const Task1Stats stats = correlate_and_track(db, frame);
  EXPECT_EQ(stats.matched, 1u);
  EXPECT_EQ(stats.passes, 2);
  EXPECT_DOUBLE_EQ(db.x[0], 0.7);
}

TEST(Task1Reference, ThirdPassDoublesAgain) {
  // Radar 1.7 nm away: needs the 2.0 nm half-box of pass 3.
  FlightDb db = parked_aircraft({{0, 0}});
  RadarFrame frame = radar_at({{1.7, 0.0}});
  const Task1Stats stats = correlate_and_track(db, frame);
  EXPECT_EQ(stats.matched, 1u);
  EXPECT_EQ(stats.passes, 3);
}

TEST(Task1Reference, NoFourthPass) {
  // Radar 2.5 nm away: beyond even the 2.0 nm half-box. Stays unmatched.
  FlightDb db = parked_aircraft({{0, 0}});
  RadarFrame frame = radar_at({{2.5, 0.0}});
  const Task1Stats stats = correlate_and_track(db, frame);
  EXPECT_EQ(stats.matched, 0u);
  EXPECT_EQ(stats.unmatched_radars, 1u);
  EXPECT_EQ(stats.passes, 3);
}

TEST(Task1Reference, MatchedAircraftNotRescannedInLaterPasses) {
  // Aircraft 0 matches radar 0 in pass 1. Radar 1 sits 0.8 nm from
  // aircraft 0 and would cover it in pass 2 — but aircraft 0 is spoken
  // for, so radar 1 must stay unmatched rather than discard anything.
  FlightDb db = parked_aircraft({{0, 0}});
  RadarFrame frame = radar_at({{0.1, 0.0}, {0.8, 0.0}});
  const Task1Stats stats = correlate_and_track(db, frame);
  EXPECT_EQ(stats.matched, 1u);
  EXPECT_EQ(frame.rmatch_with[0], 0);
  EXPECT_EQ(frame.rmatch_with[1], kNone);
  EXPECT_EQ(stats.unmatched_radars, 1u);
}

TEST(Task1Reference, AmbiguousAircraftStaysOutInLaterPasses) {
  // Aircraft 0 is hit by two radars in pass 1 (ambiguous). A third radar
  // 0.8 nm away must not match it in pass 2.
  FlightDb db = parked_aircraft({{0, 0}});
  RadarFrame frame = radar_at({{0.1, 0.0}, {-0.1, 0.0}, {0.8, 0.0}});
  const Task1Stats stats = correlate_and_track(db, frame);
  EXPECT_EQ(stats.matched, 0u);
  EXPECT_EQ(stats.ambiguous_aircraft, 1u);
  EXPECT_EQ(frame.rmatch_with[2], kNone);
}

TEST(Task1Reference, EmptyInputs) {
  FlightDb db;
  RadarFrame frame;
  const Task1Stats stats = correlate_and_track(db, frame);
  EXPECT_EQ(stats.matched, 0u);
  EXPECT_EQ(stats.radars, 0u);
  EXPECT_EQ(stats.passes, 0);
}

TEST(Task1Reference, ScratchReuseGivesSameResult) {
  const FlightDb initial = airfield::make_airfield(300, 17);
  core::Rng rng(4);
  FlightDb db1 = initial;
  RadarFrame f1 = airfield::generate_radar(db1, rng, {});
  RadarFrame f2 = f1;
  FlightDb db2 = initial;

  Task1Scratch scratch;
  const Task1Stats a = correlate_and_track(db1, f1, scratch);
  const Task1Stats b = correlate_and_track(db2, f2);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(db1.same_flight_state(db2));
}

class Task1RealisticSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Task1RealisticSweep, InvariantsHoldOnGeneratedAirfields) {
  const std::size_t n = GetParam();
  FlightDb db = airfield::make_airfield(n, 1000 + n);
  core::Rng rng(n);
  RadarFrame frame = airfield::generate_radar(db, rng, {});
  const Task1Stats stats = correlate_and_track(db, frame);

  // Accounting invariants.
  EXPECT_EQ(stats.radars, n);
  EXPECT_EQ(stats.matched, stats.updated_aircraft);
  EXPECT_LE(stats.matched + stats.discarded_radars + stats.unmatched_radars,
            n);
  EXPECT_GE(stats.passes, 1);
  EXPECT_LE(stats.passes, 3);

  // Every committed radar points at an aircraft marked matched, and each
  // matched aircraft is pointed at by exactly one radar.
  std::vector<int> claims(n, 0);
  for (std::size_t r = 0; r < frame.size(); ++r) {
    const std::int32_t a = frame.rmatch_with[r];
    if (a >= 0 &&
        db.rmatch[static_cast<std::size_t>(a)] ==
            static_cast<std::int8_t>(MatchState::kMatched)) {
      ++claims[static_cast<std::size_t>(a)];
    }
  }
  for (std::size_t a = 0; a < n; ++a) {
    if (db.rmatch[a] == static_cast<std::int8_t>(MatchState::kMatched)) {
      EXPECT_EQ(claims[a], 1) << "aircraft " << a;
    }
  }

  // With 0.25 nm noise and a sparse field, the overwhelming majority of
  // returns correlate, and correlated radars are correct.
  EXPECT_GT(stats.matched, n * 7 / 10);
  // Correlation is not just plentiful but (almost always) *correct*:
  // radars point at the aircraft that produced them. (rmatch_with is also
  // set for spent radars of ambiguous aircraft, so this is >=, and a
  // dense field can produce the occasional confidently-wrong match.)
  const std::size_t correct = airfield::count_correct_matches(frame);
  EXPECT_GT(correct, n * 7 / 10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Task1RealisticSweep,
                         ::testing::Values(64, 96, 250, 1000, 2500));

}  // namespace
}  // namespace atm::tasks::reference
