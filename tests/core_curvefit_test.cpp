// Tests for least-squares curve fitting (src/core/curvefit.hpp) — the
// MATLAB goodness-of-fit replacement behind Figures 8 and 9.
#include "src/core/curvefit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/rng.hpp"

namespace atm::core {
namespace {

std::vector<double> linspace(double lo, double hi, int n) {
  std::vector<double> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(lo + (hi - lo) * i / (n - 1));
  }
  return out;
}

TEST(FitLinear, RecoversExactLine) {
  const auto xs = linspace(0.0, 10.0, 20);
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(3.0 * x - 1.5);
  const PolyFit fit = fit_linear(xs, ys);
  ASSERT_EQ(fit.coeffs.size(), 2u);
  EXPECT_NEAR(fit.coeffs[0], -1.5, 1e-9);
  EXPECT_NEAR(fit.coeffs[1], 3.0, 1e-9);
  EXPECT_NEAR(fit.gof.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.gof.sse, 0.0, 1e-12);
  EXPECT_NEAR(fit.gof.rmse, 0.0, 1e-9);
}

TEST(FitQuadratic, RecoversExactParabola) {
  const auto xs = linspace(-5.0, 5.0, 25);
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(0.5 * x * x - 2.0 * x + 7.0);
  const PolyFit fit = fit_quadratic(xs, ys);
  ASSERT_EQ(fit.coeffs.size(), 3u);
  EXPECT_NEAR(fit.coeffs[0], 7.0, 1e-8);
  EXPECT_NEAR(fit.coeffs[1], -2.0, 1e-8);
  EXPECT_NEAR(fit.coeffs[2], 0.5, 1e-9);
  EXPECT_NEAR(fit.gof.r2, 1.0, 1e-12);
}

TEST(FitLinear, KnownHandComputedCase) {
  // Points (1,1), (2,2), (3,2): least squares slope 0.5, intercept 2/3.
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{1.0, 2.0, 2.0};
  const PolyFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.coeffs[1], 0.5, 1e-12);
  EXPECT_NEAR(fit.coeffs[0], 2.0 / 3.0, 1e-12);
  // SSE = sum of squared residuals = 1/6.
  EXPECT_NEAR(fit.gof.sse, 1.0 / 6.0, 1e-12);
  // SST = 2/3, so R^2 = 1 - (1/6)/(2/3) = 0.75.
  EXPECT_NEAR(fit.gof.r2, 0.75, 1e-12);
  // RMSE = sqrt(SSE / (n - m)) = sqrt(1/6).
  EXPECT_NEAR(fit.gof.rmse, std::sqrt(1.0 / 6.0), 1e-12);
}

TEST(FitPolynomial, AdjustedR2PenalizesExtraCoefficient) {
  // On truly linear noisy data, the quadratic fit's raw R^2 is >= the
  // linear fit's, but adjusted R^2 should not reward the extra term much.
  Rng rng(3);
  const auto xs = linspace(0.0, 100.0, 40);
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(2.0 * x + rng.uniform(-1.0, 1.0));
  const PolyFit lin = fit_linear(xs, ys);
  const PolyFit quad = fit_quadratic(xs, ys);
  EXPECT_GE(quad.gof.r2, lin.gof.r2);
  EXPECT_LT(quad.gof.adj_r2 - lin.gof.adj_r2, 1e-3);
}

TEST(FitPolynomial, ThrowsOnBadInput) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0};
  EXPECT_THROW(fit_linear(xs, ys), std::invalid_argument);
  const std::vector<double> two_x{1.0, 2.0};
  const std::vector<double> two_y{1.0, 2.0};
  EXPECT_THROW(fit_quadratic(two_x, two_y), std::invalid_argument);
  EXPECT_THROW(fit_polynomial(two_x, two_y, -1), std::invalid_argument);
}

TEST(FitPolynomial, ThrowsOnDegenerateAbscissae) {
  const std::vector<double> xs{2.0, 2.0, 2.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_THROW(fit_linear(xs, ys), std::domain_error);
}

TEST(PolyFit, EvalUsesHorner) {
  PolyFit fit;
  fit.coeffs = {1.0, -2.0, 3.0};  // 1 - 2x + 3x^2
  EXPECT_DOUBLE_EQ(fit.eval(0.0), 1.0);
  EXPECT_DOUBLE_EQ(fit.eval(2.0), 1.0 - 4.0 + 12.0);
  EXPECT_EQ(fit.degree(), 2);
}

TEST(PolyFit, ToStringMentionsEveryTerm) {
  PolyFit fit;
  fit.coeffs = {0.5, 2.0, -1.0};
  const std::string s = fit.to_string();
  EXPECT_NE(s.find("x^2"), std::string::npos);
  EXPECT_NE(s.find("0.5"), std::string::npos);
}

TEST(AnalyzeCurveShape, LinearSeriesClassifiedLinear) {
  const auto xs = linspace(1.0, 50.0, 30);
  std::vector<double> ys;
  Rng rng(9);
  for (const double x : xs) {
    ys.push_back(4.0 * x + 2.0 + rng.uniform(-0.01, 0.01));
  }
  const CurveShapeReport report = analyze_curve_shape(xs, ys);
  // Either the linear model wins outright, or the quadratic coefficient
  // is negligible — both classify as effectively linear.
  if (report.quadratic_preferred) {
    EXPECT_LT(report.quad_to_linear_coeff_ratio, 1e-3);
  }
  EXPECT_NE(report.classification().find("linear"), std::string::npos);
}

TEST(AnalyzeCurveShape, QuadraticSeriesPrefersQuadratic) {
  const auto xs = linspace(1.0, 50.0, 30);
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(0.8 * x * x + x);
  const CurveShapeReport report = analyze_curve_shape(xs, ys);
  EXPECT_TRUE(report.quadratic_preferred);
  EXPECT_GT(report.quad_to_linear_coeff_ratio, 1e-3);
  EXPECT_EQ(report.classification(), "quadratic");
}

TEST(AnalyzeCurveShape, SmallQuadraticCoefficientReadsNearLinear) {
  // The paper's Figure 9 case: quadratic fits best, but the quadratic
  // coefficient is orders of magnitude below the linear one.
  const auto xs = linspace(100.0, 8000.0, 30);
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(1e-7 * x * x + 0.5 * x);
  const CurveShapeReport report = analyze_curve_shape(xs, ys);
  EXPECT_TRUE(report.quadratic_preferred);
  EXPECT_LT(report.quad_to_linear_coeff_ratio, 1e-3);
  EXPECT_NE(report.classification().find("near-linear"), std::string::npos);
}

class FitRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(FitRoundTripTest, RandomPolynomialsAreRecovered) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int degree = GetParam() % 3 + 1;
  std::vector<double> coeffs;
  for (int k = 0; k <= degree; ++k) coeffs.push_back(rng.uniform(-3.0, 3.0));
  const auto xs = linspace(-4.0, 4.0, 40);
  std::vector<double> ys;
  for (const double x : xs) {
    double acc = 0.0;
    for (std::size_t k = coeffs.size(); k-- > 0;) acc = acc * x + coeffs[k];
    ys.push_back(acc);
  }
  const PolyFit fit = fit_polynomial(xs, ys, degree);
  for (int k = 0; k <= degree; ++k) {
    EXPECT_NEAR(fit.coeffs[static_cast<std::size_t>(k)],
                coeffs[static_cast<std::size_t>(k)], 1e-6)
        << "degree " << degree << " coeff " << k;
  }
  EXPECT_NEAR(fit.gof.r2, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FitRoundTripTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace atm::core
