// Golden regression pinning: a fixed scenario's final flight state hashes
// to a recorded value. Any semantic change to the ATM tasks — intended or
// not — trips these tests, forcing the change to be acknowledged by
// updating the snapshot constants below (and, because every backend is
// bit-equivalent to the reference, one constant covers all platforms).
#include <gtest/gtest.h>

#include <cstring>

#include "src/atm/extended/full_pipeline.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/reference_backend.hpp"

namespace atm::tasks {
namespace {

/// FNV-1a over the raw bit patterns of a double sequence.
std::uint64_t fnv1a(std::uint64_t h, const std::vector<double>& v) {
  for (const double d : v) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  }
  return h;
}

std::uint64_t state_hash(const airfield::FlightDb& db) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = fnv1a(h, db.x);
  h = fnv1a(h, db.y);
  h = fnv1a(h, db.dx);
  h = fnv1a(h, db.dy);
  h = fnv1a(h, db.alt);
  return h;
}

// Recorded snapshots. If a deliberate semantic change lands, re-run with
// --gtest_also_run_disabled_tests=0 and update from the failure message.
constexpr std::uint64_t kCoreSnapshot = 0x853282fdb21714a8ULL;
constexpr std::uint64_t kFullSnapshot = 0x1ae8ed9e6ec1b959ULL;

std::uint64_t run_core_scenario() {
  ReferenceBackend ref;
  PipelineConfig cfg;
  cfg.aircraft = 500;
  cfg.major_cycles = 1;
  cfg.seed = 20180813;  // ICPP'18 conference date
  run_pipeline(ref, cfg);
  return state_hash(ref.state());
}

std::uint64_t run_full_scenario() {
  ReferenceBackend ref;
  extended::FullSystemConfig cfg;
  cfg.aircraft = 300;
  cfg.major_cycles = 1;
  cfg.seed = 20180813;
  extended::run_full_system(ref, cfg);
  return state_hash(ref.state());
}

TEST(GoldenSnapshot, CoreScenarioIsSelfConsistent) {
  // The snapshot must at minimum be stable within a build.
  EXPECT_EQ(run_core_scenario(), run_core_scenario());
}

TEST(GoldenSnapshot, FullScenarioIsSelfConsistent) {
  EXPECT_EQ(run_full_scenario(), run_full_scenario());
}

TEST(GoldenSnapshot, EveryPlatformHashesToTheReference) {
  PipelineConfig cfg;
  cfg.aircraft = 400;
  cfg.major_cycles = 1;
  cfg.seed = 77;
  ReferenceBackend ref;
  run_pipeline(ref, cfg);
  const std::uint64_t want = state_hash(ref.state());
  for (auto& backend : make_platforms(PlatformSet::kAllPlatforms)) {
    run_pipeline(*backend, cfg);
    EXPECT_EQ(state_hash(backend->state()), want) << backend->name();
  }
}

TEST(GoldenSnapshot, PinnedCoreValue) {
  const std::uint64_t got = run_core_scenario();
  if (kCoreSnapshot == 0x0) {
    GTEST_SKIP() << "snapshot not recorded yet; value = 0x" << std::hex
                 << got;
  }
  EXPECT_EQ(got, kCoreSnapshot);
}

TEST(GoldenSnapshot, PinnedFullValue) {
  const std::uint64_t got = run_full_scenario();
  if (kFullSnapshot == 0x0) {
    GTEST_SKIP() << "snapshot not recorded yet; value = 0x" << std::hex
                 << got;
  }
  EXPECT_EQ(got, kFullSnapshot);
}

}  // namespace
}  // namespace atm::tasks
