// Cross-backend equivalence for the extended system: terrain avoidance,
// display update, advisory, multi-tower correlation, and the full-system
// pipeline must produce identical results on every platform.
#include <gtest/gtest.h>

#include <memory>

#include "src/airfield/setup.hpp"
#include "src/atm/extended/full_pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/reference_backend.hpp"

namespace atm::tasks {
namespace {

struct NamedFactory {
  const char* label;
  std::unique_ptr<Backend> (*make)();
};

const NamedFactory kPlatforms[] = {
    {"9800gt", &make_geforce_9800_gt}, {"880m", &make_gtx_880m},
    {"titanx", &make_titan_x_pascal},  {"staran", &make_staran},
    {"clearspeed", &make_clearspeed},  {"xeon", &make_xeon},
};

class ExtendedEquivalenceTest
    : public ::testing::TestWithParam<NamedFactory> {
 protected:
  void SetUp() override {
    initial_ = airfield::make_airfield(600, 77);
    terrain_ = std::make_shared<const airfield::TerrainMap>(5);
    ref_.load(initial_);
    ref_.set_terrain(terrain_);
    backend_ = GetParam().make();
    backend_->load(initial_);
    backend_->set_terrain(terrain_);
  }

  airfield::FlightDb initial_;
  std::shared_ptr<const airfield::TerrainMap> terrain_;
  ReferenceBackend ref_;
  std::unique_ptr<Backend> backend_;
};

TEST_P(ExtendedEquivalenceTest, TerrainMatchesReference) {
  // Lower everyone so warnings are plentiful.
  for (std::size_t i = 0; i < 600; ++i) {
    ref_.mutable_state().alt[i] = 2000.0;
    backend_->mutable_state().alt[i] = 2000.0;
  }
  const TerrainResult ref_r = ref_.run_terrain({});
  const TerrainResult r = backend_->run_terrain({});
  EXPECT_EQ(r.stats, ref_r.stats);
  EXPECT_GT(r.stats.warnings, 0u);
  EXPECT_TRUE(backend_->state().same_flight_state(ref_.state()))
      << GetParam().label;
  for (std::size_t i = 0; i < 600; ++i) {
    ASSERT_EQ(backend_->state().terrain_warn[i], ref_.state().terrain_warn[i]);
  }
}

TEST_P(ExtendedEquivalenceTest, DisplayMatchesReference) {
  const DisplayResult ref_r = ref_.run_display({});
  const DisplayResult r = backend_->run_display({});
  EXPECT_EQ(r.stats, ref_r.stats);
  for (std::size_t i = 0; i < 600; ++i) {
    ASSERT_EQ(backend_->state().sector[i], ref_.state().sector[i]);
  }
  // Second update after movement produces identical handoffs.
  for (auto* b : {static_cast<Backend*>(&ref_), backend_.get()}) {
    auto& db = b->mutable_state();
    for (std::size_t i = 0; i < db.size(); ++i) db.x[i] += 10.0;
  }
  EXPECT_EQ(backend_->run_display({}).stats, ref_.run_display({}).stats);
}

TEST_P(ExtendedEquivalenceTest, AdvisoryMatchesReference) {
  // Seed some flags so all three classes are exercised.
  for (auto* b : {static_cast<Backend*>(&ref_), backend_.get()}) {
    auto& db = b->mutable_state();
    db.col[3] = 1;
    db.terrain_warn[5] = 1;
    db.x[7] = 126.0;
  }
  AdvisoryResult ref_r = ref_.run_advisory({});
  AdvisoryResult r = backend_->run_advisory({});
  EXPECT_EQ(r.stats, ref_r.stats);
  EXPECT_EQ(r.queue, ref_r.queue) << GetParam().label;
  EXPECT_GE(r.stats.total(), 3u);
}

TEST_P(ExtendedEquivalenceTest, MultiRadarMatchesReference) {
  const auto towers = airfield::make_tower_layout(11);
  core::Rng rng_a(9), rng_b(9);
  auto frame_ref = airfield::generate_multi_radar(ref_.state(), towers,
                                                  rng_a, {});
  auto frame = airfield::generate_multi_radar(backend_->state(), towers,
                                              rng_b, {});
  ASSERT_EQ(frame.base.rx, frame_ref.base.rx);

  const MultiRadarResult ref_r = ref_.run_multi_task1(frame_ref, {});
  const MultiRadarResult r = backend_->run_multi_task1(frame, {});

  MultiRadarStats a = r.stats, b = ref_r.stats;
  a.box_tests = b.box_tests = 0;  // work counters differ by architecture
  EXPECT_EQ(a, b) << GetParam().label;
  EXPECT_EQ(frame.base.rmatch_with, frame_ref.base.rmatch_with);
  EXPECT_TRUE(backend_->state().same_flight_state(ref_.state()));
}

TEST_P(ExtendedEquivalenceTest, FullSystemMatchesReference) {
  extended::FullSystemConfig cfg;
  cfg.aircraft = 300;
  cfg.major_cycles = 1;
  cfg.seed = 11;

  ReferenceBackend ref;
  const auto ref_result = extended::run_full_system(ref, cfg);
  auto backend = GetParam().make();
  const auto result = extended::run_full_system(*backend, cfg);

  EXPECT_TRUE(backend->state().same_flight_state(ref.state()))
      << GetParam().label << " diverged over a full extended major cycle";
  EXPECT_EQ(result.last_display, ref_result.last_display);
  EXPECT_EQ(result.last_terrain, ref_result.last_terrain);
  EXPECT_EQ(result.last_advisory, ref_result.last_advisory);
  EXPECT_EQ(result.last_queue, ref_result.last_queue);
}

TEST_P(ExtendedEquivalenceTest, FullSystemMultiRadarMatchesReference) {
  extended::FullSystemConfig cfg;
  cfg.aircraft = 250;
  cfg.major_cycles = 1;
  cfg.seed = 13;
  cfg.multi_radar = true;

  ReferenceBackend ref;
  const auto ref_result = extended::run_full_system(ref, cfg);
  auto backend = GetParam().make();
  const auto result = extended::run_full_system(*backend, cfg);

  EXPECT_TRUE(backend->state().same_flight_state(ref.state()))
      << GetParam().label;
  MultiRadarStats a = result.last_multi, b = ref_result.last_multi;
  a.box_tests = b.box_tests = 0;
  EXPECT_EQ(a, b);
  EXPECT_GT(result.mean_coverage, 1.5);
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, ExtendedEquivalenceTest, ::testing::ValuesIn(kPlatforms),
    [](const ::testing::TestParamInfo<NamedFactory>& info) {
      return std::string(info.param.label);
    });

TEST(FullSystem, ScheduleShape) {
  extended::FullSystemConfig cfg;
  cfg.aircraft = 200;
  cfg.major_cycles = 2;
  auto backend = make_titan_x_pascal();
  const auto result = extended::run_full_system(*backend, cfg);

  // 2 cycles: task1/display 32x, advisory 2x per cycle (periods 7 and 15),
  // task23/terrain once per cycle.
  EXPECT_EQ(result.monitor.task("task1").scheduled(), 32u);
  EXPECT_EQ(result.monitor.task("display").scheduled(), 32u);
  EXPECT_EQ(result.monitor.task("advisory").scheduled(), 4u);
  EXPECT_EQ(result.monitor.task("task23").scheduled(), 2u);
  EXPECT_EQ(result.monitor.task("terrain").scheduled(), 2u);
}

TEST(FullSystem, FastPlatformHoldsAllDeadlines) {
  extended::FullSystemConfig cfg;
  cfg.aircraft = 1500;
  cfg.major_cycles = 1;
  auto backend = make_titan_x_pascal();
  const auto result = extended::run_full_system(*backend, cfg);
  EXPECT_EQ(result.monitor.total_missed(), 0u);
  EXPECT_EQ(result.monitor.total_skipped(), 0u);
}

TEST(FullSystem, DeterministicPerSeed) {
  extended::FullSystemConfig cfg;
  cfg.aircraft = 300;
  cfg.major_cycles = 1;
  auto a = make_gtx_880m();
  auto b = make_gtx_880m();
  const auto ra = extended::run_full_system(*a, cfg);
  const auto rb = extended::run_full_system(*b, cfg);
  EXPECT_TRUE(a->state().same_flight_state(b->state()));
  EXPECT_EQ(ra.last_queue, rb.last_queue);
  EXPECT_DOUBLE_EQ(ra.virtual_end_ms, rb.virtual_end_ms);
}

}  // namespace
}  // namespace atm::tasks
