// Tests for the paper-level timing relationships the cost models must
// produce: platform ordering, curve shapes, and the determinism claims of
// Section 6.2. These are the model-level assertions behind Figures 4-9.
#include <gtest/gtest.h>

#include <vector>

#include "src/airfield/setup.hpp"
#include "src/atm/ap_backend.hpp"
#include "src/atm/clearspeed_backend.hpp"
#include "src/atm/cuda_backend.hpp"
#include "src/atm/mimd_backend.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/core/curvefit.hpp"

namespace atm::tasks {
namespace {

struct TaskTimes {
  double task1_ms = 0.0;
  double task23_ms = 0.0;
};

TaskTimes run_once(Backend& backend, const airfield::FlightDb& field,
                   std::uint64_t radar_seed = 7) {
  backend.load(field);
  core::Rng rng(radar_seed);
  airfield::RadarFrame frame = backend.generate_radar(rng, {}, nullptr);
  TaskTimes t;
  t.task1_ms = backend.run_task1(frame, {}).modeled_ms;
  t.task23_ms = backend.run_task23({}).modeled_ms;
  return t;
}

TEST(CostModel, PaperPlatformOrderingHolds) {
  // Section 6.2: all three NVIDIA devices run the tasks faster than the
  // AP (STARAN), the ClearSpeed emulation, and the Xeon; and the Xeon is
  // the slowest of all at scale.
  const airfield::FlightDb field = airfield::make_airfield(2000, 11);
  auto staran = make_staran();
  auto clearspeed = make_clearspeed();
  auto xeon = make_xeon();
  auto titan = make_titan_x_pascal();
  auto gtx = make_gtx_880m();
  auto geforce = make_geforce_9800_gt();

  const TaskTimes t_st = run_once(*staran, field);
  const TaskTimes t_cs = run_once(*clearspeed, field);
  const TaskTimes t_xe = run_once(*xeon, field);
  const TaskTimes t_ti = run_once(*titan, field);
  const TaskTimes t_gx = run_once(*gtx, field);
  const TaskTimes t_gf = run_once(*geforce, field);

  for (const auto* nvidia : {&t_ti, &t_gx, &t_gf}) {
    EXPECT_LT(nvidia->task1_ms, t_st.task1_ms);
    EXPECT_LT(nvidia->task1_ms, t_cs.task1_ms);
    EXPECT_LT(nvidia->task1_ms, t_xe.task1_ms);
    EXPECT_LT(nvidia->task23_ms, t_st.task23_ms);
    EXPECT_LT(nvidia->task23_ms, t_cs.task23_ms);
    EXPECT_LT(nvidia->task23_ms, t_xe.task23_ms);
  }
  // NVIDIA cards order by capability: Titan X < 880M < 9800 GT.
  EXPECT_LT(t_ti.task1_ms, t_gx.task1_ms);
  EXPECT_LT(t_gx.task1_ms, t_gf.task1_ms);
  EXPECT_LT(t_ti.task23_ms, t_gx.task23_ms);
  EXPECT_LT(t_gx.task23_ms, t_gf.task23_ms);
  // The multi-core sits above the associative platforms at this scale.
  EXPECT_GT(t_xe.task23_ms, t_st.task23_ms);
  EXPECT_GT(t_xe.task23_ms, t_cs.task23_ms);
}

TEST(CostModel, CudaTimingIsExactlyReproducible) {
  // Section 6.2: "each time we ran the program ... we would get the exact
  // same timings again and again".
  const airfield::FlightDb field = airfield::make_airfield(1200, 3);
  std::vector<double> t1s, t23s;
  for (int run = 0; run < 3; ++run) {
    CudaBackend dev(simt::gtx_880m());
    const TaskTimes t = run_once(dev, field);
    t1s.push_back(t.task1_ms);
    t23s.push_back(t.task23_ms);
  }
  EXPECT_DOUBLE_EQ(t1s[0], t1s[1]);
  EXPECT_DOUBLE_EQ(t1s[1], t1s[2]);
  EXPECT_DOUBLE_EQ(t23s[0], t23s[1]);
  EXPECT_DOUBLE_EQ(t23s[1], t23s[2]);
}

TEST(CostModel, ApTimingIsExactlyReproducible) {
  const airfield::FlightDb field = airfield::make_airfield(900, 5);
  ApBackend a, b;
  const TaskTimes ta = run_once(a, field);
  const TaskTimes tb = run_once(b, field);
  EXPECT_DOUBLE_EQ(ta.task1_ms, tb.task1_ms);
  EXPECT_DOUBLE_EQ(ta.task23_ms, tb.task23_ms);
}

TEST(CostModel, XeonTimingIsNotReproducibleAcrossSeeds) {
  const airfield::FlightDb field = airfield::make_airfield(900, 5);
  MimdBackend a(mimd::paper_xeon_spec(), 0, /*jitter_seed=*/111);
  MimdBackend b(mimd::paper_xeon_spec(), 0, /*jitter_seed=*/222);
  const TaskTimes ta = run_once(a, field);
  const TaskTimes tb = run_once(b, field);
  EXPECT_NE(ta.task1_ms, tb.task1_ms);
  EXPECT_NE(ta.task23_ms, tb.task23_ms);
  EXPECT_FALSE(a.deterministic());
}

TEST(CostModel, ApTask1ScalesLinearly) {
  // The [12, 13] result the paper leans on: the AP runs the tasks in
  // linear time. Fit the STARAN Task 1 series and require an excellent
  // linear fit.
  std::vector<double> ns, ts;
  for (const std::size_t n : {250u, 500u, 1000u, 2000u, 3000u}) {
    ApBackend ap;
    const TaskTimes t = run_once(ap, airfield::make_airfield(n, 70 + n));
    ns.push_back(static_cast<double>(n));
    ts.push_back(t.task1_ms);
  }
  const core::PolyFit fit = core::fit_linear(ns, ts);
  EXPECT_GT(fit.gof.r2, 0.995);
  EXPECT_GT(fit.coeffs[1], 0.0);
}

TEST(CostModel, CudaCurveIsNearLinear) {
  // Figure 8/9 shape: CUDA task curves fit linear-or-small-quadratic.
  std::vector<double> ns, ts;
  for (const std::size_t n : {250u, 500u, 1000u, 2000u, 3000u}) {
    CudaBackend dev(simt::gtx_880m());
    const TaskTimes t = run_once(dev, airfield::make_airfield(n, 70 + n));
    ns.push_back(static_cast<double>(n));
    ts.push_back(t.task1_ms);
  }
  const core::CurveShapeReport shape = core::analyze_curve_shape(ns, ts);
  // Either a clean linear fit, or a quadratic whose quadratic coefficient
  // is negligible next to the linear one (the paper's own finding).
  if (shape.quadratic_preferred) {
    EXPECT_LT(shape.quad_to_linear_coeff_ratio, 0.01);
  }
  EXPECT_GT(shape.linear.gof.r2, 0.95);
}

TEST(CostModel, XeonGrowsFasterThanEveryoneElse) {
  // Figure 4/6 shape: the multi-core curve pulls away super-linearly.
  std::vector<double> ns, xeon_ts, titan_ts;
  for (const std::size_t n : {500u, 1000u, 2000u, 4000u}) {
    const airfield::FlightDb field = airfield::make_airfield(n, 70 + n);
    MimdBackend xeon;
    CudaBackend titan(simt::titan_x_pascal());
    xeon_ts.push_back(run_once(xeon, field).task23_ms);
    titan_ts.push_back(run_once(titan, field).task23_ms);
    ns.push_back(static_cast<double>(n));
  }
  // Growth factor over the 8x n range: Xeon far steeper than the GPU.
  const double xeon_growth = xeon_ts.back() / xeon_ts.front();
  const double titan_growth = titan_ts.back() / titan_ts.front();
  EXPECT_GT(xeon_growth, 2.0 * titan_growth);
  // And the absolute gap widens monotonically.
  for (std::size_t i = 1; i < ns.size(); ++i) {
    EXPECT_GT(xeon_ts[i] - titan_ts[i], xeon_ts[i - 1] - titan_ts[i - 1]);
  }
}

TEST(CostModel, WorstCaseWithinPaperFiveTimesBound) {
  // Section 7: "the variation in time needed to handle various special
  // situations [is] no larger than 5 times the usual amount of time".
  // Over a multi-cycle run, the slowest Task 1 period (extra correlation
  // passes, conflict bursts) must stay within 5x the mean period.
  PipelineConfig cfg;
  cfg.aircraft = 1500;
  cfg.major_cycles = 2;
  CudaBackend titan(simt::titan_x_pascal());
  const PipelineResult result = run_pipeline(titan, cfg);
  const auto& t1 = result.deadlines().task("task1").duration_ms;
  EXPECT_LT(t1.max(), 5.0 * t1.mean());
  EXPECT_GT(t1.max(), 0.0);
}

TEST(CostModel, RadarRoundTripCostsMoreOnOlderBus) {
  // The paper's radar shuffle round-trips device<->host every period; the
  // PCIe-2 9800 GT pays more for it than the Titan X.
  const airfield::FlightDb field = airfield::make_airfield(4000, 9);
  CudaBackend old_card(simt::geforce_9800_gt());
  CudaBackend new_card(simt::titan_x_pascal());
  old_card.load(field);
  new_card.load(field);
  core::Rng ra(1), rb(1);
  double old_ms = 0.0, new_ms = 0.0;
  (void)old_card.generate_radar(ra, {}, &old_ms);
  (void)new_card.generate_radar(rb, {}, &new_ms);
  EXPECT_GT(old_ms, new_ms);
}

}  // namespace
}  // namespace atm::tasks
