// Tests for the lock-step SIMD machine (src/simd/lockstep.hpp).
#include "src/simd/lockstep.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace atm::simd {
namespace {

TEST(MachineSpec, Csx600MatchesPaperDescription) {
  const MachineSpec spec = csx600_spec();
  // Paper Section 1.1: "two chips, each chip consisting of a SIMD system
  // with 96 processing elements".
  EXPECT_EQ(spec.pe_count, 192);
  EXPECT_DOUBLE_EQ(spec.clock_mhz, 210.0);
  EXPECT_EQ(csx600_single_chip_spec().pe_count, 96);
}

TEST(LockstepMachine, RejectsNonPositivePeCount) {
  MachineSpec spec = csx600_spec();
  spec.pe_count = 0;
  EXPECT_THROW(LockstepMachine{spec}, std::invalid_argument);
}

TEST(LockstepMachine, VirtualizationRounds) {
  LockstepMachine m(csx600_spec());
  EXPECT_EQ(m.rounds(0), 0u);
  EXPECT_EQ(m.rounds(1), 1u);
  EXPECT_EQ(m.rounds(192), 1u);
  EXPECT_EQ(m.rounds(193), 2u);
  EXPECT_EQ(m.rounds(16000), 84u);
}

TEST(LockstepMachine, PolyAppliesToEveryElement) {
  LockstepMachine m(csx600_spec());
  std::vector<int> v(500, 0);
  m.poly(v.size(), 1, [&](std::size_t i) { v[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i], static_cast<int>(i));
  }
}

TEST(LockstepMachine, PolyCostScalesWithRounds) {
  LockstepMachine m(csx600_spec());
  m.poly(192, 1, [](std::size_t) {});
  const Cycles one_round = m.cycles();
  m.reset();
  m.poly(192 * 10, 1, [](std::size_t) {});
  EXPECT_EQ(m.cycles(), one_round * 10);
}

TEST(LockstepMachine, PolyCostScalesWithWeight) {
  LockstepMachine m(csx600_spec());
  m.poly(100, 1, [](std::size_t) {});
  const Cycles w1 = m.cycles();
  m.reset();
  m.poly(100, 7, [](std::size_t) {});
  EXPECT_EQ(m.cycles(), w1 * 7);
}

TEST(LockstepMachine, BroadcastIsConstantCost) {
  LockstepMachine m(csx600_spec());
  m.broadcast();
  const Cycles c = m.cycles();
  EXPECT_EQ(c, csx600_spec().broadcast_cycles);
}

TEST(LockstepMachine, ReduceMinIndexFindsMaskedMinimum) {
  LockstepMachine m(csx600_spec());
  const std::vector<double> keys{5.0, 1.0, 3.0, 0.5, 9.0};
  const std::vector<std::uint8_t> mask{1, 1, 1, 0, 1};  // 0.5 masked out
  EXPECT_EQ(m.reduce_min_index(keys, mask), 1u);
}

TEST(LockstepMachine, ReduceMinIndexTiesToLowestIndex) {
  LockstepMachine m(csx600_spec());
  const std::vector<double> keys{2.0, 1.0, 1.0};
  const std::vector<std::uint8_t> mask{1, 1, 1};
  EXPECT_EQ(m.reduce_min_index(keys, mask), 1u);
}

TEST(LockstepMachine, ReduceMinIndexEmptyMask) {
  LockstepMachine m(csx600_spec());
  const std::vector<double> keys{1.0, 2.0};
  const std::vector<std::uint8_t> mask{0, 0};
  EXPECT_EQ(m.reduce_min_index(keys, mask), LockstepMachine::npos);
}

TEST(LockstepMachine, ReduceCount) {
  LockstepMachine m(csx600_spec());
  const std::vector<std::uint8_t> mask{1, 0, 1, 1, 0};
  EXPECT_EQ(m.reduce_count(mask), 3u);
  EXPECT_GT(m.cycles(), 0u);
}

TEST(LockstepMachine, RingShiftRotatesRightByOne) {
  LockstepMachine m(csx600_spec());
  const std::vector<double> in{1.0, 2.0, 3.0, 4.0};
  std::vector<double> out(4);
  m.ring_shift(in, out);
  EXPECT_EQ(out, (std::vector<double>{4.0, 1.0, 2.0, 3.0}));
}

TEST(LockstepMachine, RingShiftSizeMismatchThrows) {
  LockstepMachine m(csx600_spec());
  const std::vector<double> in(4);
  std::vector<double> out(3);
  EXPECT_THROW(m.ring_shift(in, out), std::invalid_argument);
}

TEST(LockstepMachine, ElapsedMsUsesClock) {
  LockstepMachine m(csx600_spec());
  m.charge_scalar(210);  // 210 op-cycle units => 420 cycles at 2 cyc/op
  EXPECT_NEAR(m.elapsed_ms(), 420.0 / (210e6) * 1e3, 1e-12);
  m.reset();
  EXPECT_EQ(m.cycles(), 0u);
}

TEST(LockstepMachine, SingleChipIsTwiceAsSlowOnBigPoly) {
  LockstepMachine two(csx600_spec());
  LockstepMachine one(csx600_single_chip_spec());
  two.poly(9600, 1, [](std::size_t) {});
  one.poly(9600, 1, [](std::size_t) {});
  EXPECT_EQ(one.cycles(), 2 * two.cycles());
}

}  // namespace
}  // namespace atm::simd
