// Property sweeps: system-level invariants that must hold for any seed and
// fleet size, run across a parameter grid.
#include <gtest/gtest.h>

#include <cmath>

#include "src/airfield/setup.hpp"
#include "src/atm/extended/full_pipeline.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/reference/collision.hpp"
#include "src/atm/reference_backend.hpp"

namespace atm::tasks {
namespace {

struct SweepCase {
  std::uint64_t seed;
  std::size_t aircraft;
};

class PipelinePropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PipelinePropertyTest, CoreInvariantsOverAFullCycle) {
  const auto [seed, aircraft] = GetParam();
  PipelineConfig cfg;
  cfg.aircraft = aircraft;
  cfg.major_cycles = 1;
  cfg.seed = seed;
  ReferenceBackend ref;
  const PipelineResult result = run_pipeline(ref, cfg);
  const airfield::FlightDb& db = ref.state();

  // Population conserved; everything stays on (or wraps back into) the
  // field; altitudes untouched by the core tasks.
  ASSERT_EQ(db.size(), aircraft);
  const airfield::FlightDb initial = airfield::make_airfield(aircraft, seed);
  for (std::size_t i = 0; i < aircraft; ++i) {
    // Re-entry preserves the exit magnitude, and radar noise can nudge an
    // edge-oscillating aircraft a bit further out before the velocity
    // carries it back in: allow ~2 periods of drift + noise past the edge.
    ASSERT_LE(std::fabs(db.x[i]), core::kGridHalfExtentNm + 1.0)
        << "seed " << seed << " aircraft " << i;
    ASSERT_DOUBLE_EQ(db.alt[i], initial.alt[i]);
    // Turning preserves speed: |v| unchanged from setup.
    ASSERT_NEAR(std::hypot(db.dx[i], db.dy[i]),
                std::hypot(initial.dx[i], initial.dy[i]), 1e-9);
  }

  // Task accounting: 16 Task 1 instances, 1 Tasks 2+3 instance.
  EXPECT_EQ(result.deadlines().task("task1").scheduled(), 16u);
  EXPECT_EQ(result.deadlines().task("task23").scheduled(), 1u);

  // Correlation sanity at the paper's noise level.
  EXPECT_GT(result.last_task1.matched, aircraft * 6 / 10);
  EXPECT_EQ(result.last_task1.matched, result.last_task1.updated_aircraft);

  // Collision accounting.
  EXPECT_EQ(result.last_task23.resolved + result.last_task23.unresolved,
            result.last_task23.critical);
  EXPECT_LE(result.last_task23.critical, result.last_task23.conflicts);
}

TEST_P(PipelinePropertyTest, ResolutionCommitsAreConflictFreeAtCommitTime) {
  // Every aircraft the resolver committed must, against the *pre-commit*
  // paths it was checked against, have no critical conflict. We re-verify
  // by reconstructing the pre-commit snapshot.
  const auto [seed, aircraft] = GetParam();
  airfield::FlightDb db = airfield::make_airfield(aircraft, seed);
  const airfield::FlightDb before = db;
  reference::detect_and_resolve(db);

  reference::ScanWork work;
  for (std::size_t i = 0; i < db.size(); ++i) {
    const bool committed =
        db.dx[i] != before.dx[i] || db.dy[i] != before.dy[i];
    if (!committed) continue;
    // Check the committed velocity against everyone's *original* path.
    const auto out = reference::scan_against_all(
        before, i, db.dx[i], db.dy[i], Task23Params{}, work, true);
    ASSERT_FALSE(out.critical)
        << "aircraft " << i << " committed a still-critical path (seed "
        << seed << ")";
  }
}

TEST_P(PipelinePropertyTest, FullSystemKeepsAllInvariants) {
  const auto [seed, aircraft] = GetParam();
  extended::FullSystemConfig cfg;
  cfg.aircraft = aircraft;
  cfg.major_cycles = 1;
  cfg.seed = seed;
  ReferenceBackend ref;
  const auto result = extended::run_full_system(ref, cfg);
  const airfield::FlightDb& db = ref.state();

  // Terrain climbs only ever raise altitude.
  const airfield::FlightDb initial = airfield::make_airfield(aircraft, seed);
  for (std::size_t i = 0; i < aircraft; ++i) {
    ASSERT_GE(db.alt[i], initial.alt[i] - 1e-9);
  }
  // Display state is fully populated after a cycle of updates.
  for (std::size_t i = 0; i < aircraft; ++i) {
    ASSERT_GE(db.sector[i], 0);
  }
  // Advisory accounting matches queue length.
  EXPECT_EQ(result.last_advisory.total(), result.last_queue.size());
  // Sporadic answers exist when the task ran.
  EXPECT_GT(result.last_sporadic.queries, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, PipelinePropertyTest,
    ::testing::Values(SweepCase{1, 200}, SweepCase{2, 200},
                      SweepCase{3, 500}, SweepCase{4, 500},
                      SweepCase{5, 900}, SweepCase{6, 1400}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.aircraft);
    });

}  // namespace
}  // namespace atm::tasks
