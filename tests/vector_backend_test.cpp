// Tests for the wide-vector future-work backend (Section 7.2) and its
// cost model.
#include "src/atm/vector_backend.hpp"

#include <gtest/gtest.h>

#include "src/airfield/setup.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/mimd/vector_model.hpp"

namespace atm::tasks {
namespace {

TEST(VectorModel, ScalesWithOpsAndSpeedsUpWithLanes) {
  const mimd::VectorModel phi(mimd::xeon_phi_spec());
  EXPECT_GT(phi.model_ms(10'000'000, 1), phi.model_ms(1'000'000, 1));

  mimd::VectorSpec narrow = mimd::xeon_phi_spec();
  narrow.lanes = 1;
  const mimd::VectorModel scalar(narrow);
  EXPECT_GT(scalar.model_ms(10'000'000, 1), phi.model_ms(10'000'000, 1));
}

TEST(VectorModel, SerialFractionBoundsSpeedup) {
  // Amdahl: with 2% serial work, the machine cannot be more than 50x
  // faster than scalar no matter its width.
  mimd::VectorSpec huge = mimd::xeon_phi_spec();
  huge.cores = 10000;
  mimd::VectorSpec one = huge;
  one.cores = 1;
  one.lanes = 1;
  one.gather_efficiency = 1.0;
  const double wide_ms = mimd::VectorModel(huge).model_ms(100'000'000, 0);
  const double scalar_ms = mimd::VectorModel(one).model_ms(100'000'000, 0);
  EXPECT_LT(scalar_ms / wide_ms, 1.0 / huge.serial_fraction + 1.0);
}

TEST(VectorModel, PeakGops) {
  const mimd::VectorModel phi(mimd::xeon_phi_spec());
  EXPECT_NEAR(phi.peak_gops(), 61 * 1.238 * 16, 1e-9);
}

TEST(VectorBackend, ComputesReferenceResults) {
  const airfield::FlightDb initial = airfield::make_airfield(500, 3);
  VectorBackend vec;
  ReferenceBackend ref;
  vec.load(initial);
  ref.load(initial);
  core::Rng ra(1), rb(1);
  auto fa = vec.generate_radar(ra, {}, nullptr);
  auto fb = ref.generate_radar(rb, {}, nullptr);
  const Task1Result r1v = vec.run_task1(fa, {});
  const Task1Result r1r = ref.run_task1(fb, {});
  EXPECT_EQ(r1v.stats, r1r.stats);
  const Task23Result r23v = vec.run_task23({});
  const Task23Result r23r = ref.run_task23({});
  EXPECT_EQ(r23v.stats, r23r.stats);
  EXPECT_TRUE(vec.state().same_flight_state(ref.state()));
}

TEST(VectorBackend, DeterministicTiming) {
  const airfield::FlightDb initial = airfield::make_airfield(400, 5);
  VectorBackend a, b;
  a.load(initial);
  b.load(initial);
  EXPECT_TRUE(a.deterministic());
  const double ta = a.run_task23({}).modeled_ms;
  const double tb = b.run_task23({}).modeled_ms;
  EXPECT_DOUBLE_EQ(ta, tb);
}

TEST(VectorBackend, LandsBetweenGpuAndLockBasedMulticore) {
  // The Section 7.2 expectation: a wide vector machine is slower than the
  // big GPUs (less raw width) but far faster than the contended 16-core
  // baseline.
  const airfield::FlightDb initial = airfield::make_airfield(2000, 7);
  VectorBackend phi;
  auto titan = make_titan_x_pascal();
  auto xeon = make_xeon();
  phi.load(initial);
  titan->load(initial);
  xeon->load(initial);
  const double t_phi = phi.run_task23({}).modeled_ms;
  const double t_titan = titan->run_task23({}).modeled_ms;
  const double t_xeon = xeon->run_task23({}).modeled_ms;
  EXPECT_GT(t_phi, t_titan);
  EXPECT_LT(t_phi, t_xeon);
}

TEST(VectorBackend, HoldsDeadlinesInPipeline) {
  PipelineConfig cfg;
  cfg.aircraft = 2000;
  cfg.major_cycles = 1;
  VectorBackend phi;
  const PipelineResult result = run_pipeline(phi, cfg);
  EXPECT_EQ(result.deadlines().total_missed(), 0u);
  EXPECT_EQ(result.deadlines().total_skipped(), 0u);
}

TEST(VectorBackend, Avx512DesktopFasterThanPhiPerCore) {
  const airfield::FlightDb initial = airfield::make_airfield(1000, 9);
  VectorBackend phi(mimd::xeon_phi_spec());
  VectorBackend desktop(mimd::avx512_desktop_spec());
  phi.load(initial);
  desktop.load(initial);
  const double t_phi = phi.run_task23({}).modeled_ms;
  const double t_desktop = desktop.run_task23({}).modeled_ms;
  // 61 weak cores vs 8 fast ones: the Phi still wins on total width...
  EXPECT_LT(t_phi, t_desktop * 10.0);
  // ...but not by its 8x core advantage (clock + gather efficiency).
  EXPECT_GT(t_phi * 16.0, t_desktop);
}

}  // namespace
}  // namespace atm::tasks
