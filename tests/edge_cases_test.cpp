// Edge cases and failure injection across the stack: empty fields, single
// aircraft, radar dropout, extreme speeds, zero-size frames, and parameter
// boundaries.
#include <gtest/gtest.h>

#include "src/airfield/setup.hpp"
#include "src/atm/cuda_backend.hpp"
#include "src/atm/extended/full_pipeline.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/reference_backend.hpp"

namespace atm::tasks {
namespace {

TEST(EdgeCases, EmptyAirfieldRunsEverywhere) {
  for (auto& backend :
       make_platforms(PlatformSet::kAllPlatforms)) {
    backend->load(airfield::FlightDb{});
    core::Rng rng(1);
    airfield::RadarFrame frame = backend->generate_radar(rng, {}, nullptr);
    const Task1Result r1 = backend->run_task1(frame, {});
    EXPECT_EQ(r1.stats.matched, 0u) << backend->name();
    const Task23Result r23 = backend->run_task23({});
    EXPECT_EQ(r23.stats.conflicts, 0u) << backend->name();
  }
}

TEST(EdgeCases, SingleAircraftNeverConflicts) {
  for (auto& backend : make_platforms(PlatformSet::kAllPlatforms)) {
    backend->load(airfield::make_airfield(1, 3));
    const Task23Result r = backend->run_task23({});
    EXPECT_EQ(r.stats.conflicts, 0u) << backend->name();
    EXPECT_EQ(r.stats.pair_tests, 0u) << backend->name();
  }
}

TEST(EdgeCases, RadarDropoutLeavesAircraftOnExpectedPath) {
  // With 100% dropout every return is an off-field sentinel: nothing
  // correlates and every aircraft flies its expected path.
  ReferenceBackend ref;
  const airfield::FlightDb initial = airfield::make_airfield(200, 9);
  ref.load(initial);
  core::Rng rng(5);
  airfield::RadarParams params;
  params.dropout_probability = 1.0;
  airfield::RadarFrame frame = ref.generate_radar(rng, params, nullptr);
  const Task1Result r = ref.run_task1(frame, {});
  EXPECT_EQ(r.stats.matched, 0u);
  for (std::size_t i = 0; i < initial.size(); ++i) {
    const core::Vec2 expected = initial.expected(i);
    ASSERT_DOUBLE_EQ(ref.state().x[i], expected.x);
    ASSERT_DOUBLE_EQ(ref.state().y[i], expected.y);
  }
}

TEST(EdgeCases, CudaDropoutPathFallsBackToHostGenerator) {
  // The device radar kernel does not implement dropout; the backend must
  // delegate to the host generator and still produce an identical frame.
  const airfield::FlightDb initial = airfield::make_airfield(300, 4);
  CudaBackend cuda(simt::titan_x_pascal());
  ReferenceBackend ref;
  cuda.load(initial);
  ref.load(initial);
  airfield::RadarParams params;
  params.dropout_probability = 0.3;
  core::Rng ra(6), rb(6);
  const airfield::RadarFrame fa = cuda.generate_radar(ra, params, nullptr);
  const airfield::RadarFrame fb = ref.generate_radar(rb, params, nullptr);
  EXPECT_EQ(fa.rx, fb.rx);
  EXPECT_EQ(fa.truth, fb.truth);
}

TEST(EdgeCases, PartialDropoutStillTracksTheRest) {
  PipelineConfig cfg;
  cfg.aircraft = 400;
  cfg.major_cycles = 1;
  cfg.radar.dropout_probability = 0.2;
  auto backend = make_gtx_880m();
  const PipelineResult result = run_pipeline(*backend, cfg);
  EXPECT_EQ(result.deadlines().total_missed(), 0u);
  // Roughly 80% of radars still correlate.
  EXPECT_GT(result.last_task1.matched, 250u);
  EXPECT_GT(result.last_task1.unmatched_radars, 30u);
}

TEST(EdgeCases, FastAircraftWrapRepeatedly) {
  // 600-knot aircraft cross the field in ~25 minutes; over 20 cycles some
  // wrap. Population must be conserved and positions stay in the grid.
  airfield::SetupParams fast;
  fast.min_speed_knots = 590.0;
  fast.max_speed_knots = 600.0;
  PipelineConfig cfg;
  cfg.aircraft = 100;
  cfg.major_cycles = 20;
  cfg.setup = fast;
  auto backend = make_titan_x_pascal();
  const PipelineResult result = run_pipeline(*backend, cfg);
  std::size_t wrapped = 0;
  for (const PeriodLog& log : result.periods) wrapped += log.wrapped;
  EXPECT_GT(wrapped, 0u);
  EXPECT_EQ(backend->state().size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_LE(std::fabs(backend->state().x[i]),
              core::kGridHalfExtentNm + 1.0);
  }
}

TEST(EdgeCases, ZeroRetriesStillCommitsPassOneMatches) {
  ReferenceBackend ref;
  ref.load(airfield::make_airfield(300, 8));
  core::Rng rng(2);
  airfield::RadarFrame frame = ref.generate_radar(rng, {}, nullptr);
  Task1Params params;
  params.retries = 0;
  const Task1Result r = ref.run_task1(frame, params);
  EXPECT_EQ(r.stats.passes, 1);
  EXPECT_GT(r.stats.matched, 200u);
}

TEST(EdgeCases, TinyTurnBudgetLeavesConflictsUnresolved) {
  // With a 1-degree max turn, the head-on pair cannot escape.
  airfield::FlightDb db(2);
  db.x[0] = 0.0;
  db.dx[0] = 0.05;
  db.x[1] = 25.0;
  db.dx[1] = -0.05;
  db.alt[0] = db.alt[1] = 9000.0;
  ReferenceBackend ref;
  ref.load(db);
  Task23Params params;
  params.turn_step_deg = 1.0;
  params.turn_max_deg = 1.0;
  const Task23Result r = ref.run_task23(params);
  EXPECT_EQ(r.stats.critical, 2u);
  EXPECT_EQ(r.stats.unresolved, 2u);
}

TEST(EdgeCases, TerrainWithoutAttachThrows) {
  for (auto& backend : make_platforms(PlatformSet::kAllPlatforms)) {
    backend->load(airfield::make_airfield(10, 1));
    EXPECT_THROW((void)backend->run_terrain({}), std::logic_error)
        << backend->name();
  }
}

TEST(EdgeCases, MismatchedRadarFrameRejected) {
  CudaBackend cuda(simt::titan_x_pascal());
  cuda.load(airfield::make_airfield(10, 1));
  airfield::RadarFrame frame;
  frame.resize(5);
  EXPECT_THROW((void)cuda.run_task1(frame, {}), std::invalid_argument);
}

TEST(EdgeCases, FullSystemWithZeroAdvisoryCadenceCollapsesGracefully) {
  extended::FullSystemConfig cfg;
  cfg.aircraft = 50;
  cfg.major_cycles = 1;
  cfg.advisory_every_periods = 16;  // once per cycle only
  auto backend = make_titan_x_pascal();
  const auto result = extended::run_full_system(*backend, cfg);
  EXPECT_EQ(result.monitor.task("advisory").scheduled(), 1u);
}

}  // namespace
}  // namespace atm::tasks
