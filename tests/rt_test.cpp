// Tests for the real-time executive pieces (src/rt).
#include <gtest/gtest.h>

#include "src/rt/clock.hpp"
#include "src/rt/deadline.hpp"
#include "src/rt/schedule.hpp"

namespace atm::rt {
namespace {

TEST(VirtualClock, AdvancesAndWaits) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now_ms(), 0.0);
  clock.advance_ms(120.0);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 120.0);
  const double waited = clock.advance_to_ms(500.0);
  EXPECT_DOUBLE_EQ(waited, 380.0);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 500.0);
}

TEST(VirtualClock, AdvanceToPastIsNoop) {
  VirtualClock clock;
  clock.advance_ms(700.0);
  const double waited = clock.advance_to_ms(500.0);
  EXPECT_DOUBLE_EQ(waited, 0.0);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 700.0);  // overruns are not given back
}

TEST(VirtualClock, Reset) {
  VirtualClock clock;
  clock.advance_ms(10.0);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now_ms(), 0.0);
}

TEST(Stopwatch, MeasuresNonNegativeWallTime) {
  const Stopwatch sw;
  EXPECT_GE(sw.elapsed_ms(), 0.0);
}

TEST(DeadlineMonitor, ClassifiesMetAndMissed) {
  DeadlineMonitor monitor;
  EXPECT_EQ(monitor.record("t", 0.0, 400.0, 500.0), Outcome::kMet);
  EXPECT_EQ(monitor.record("t", 0.0, 600.0, 500.0), Outcome::kMissed);
  EXPECT_EQ(monitor.record("t", 450.0, 50.0, 500.0), Outcome::kMet);
  EXPECT_EQ(monitor.record("t", 450.0, 50.1, 500.0), Outcome::kMissed);
  const TaskRecord& rec = monitor.task("t");
  EXPECT_EQ(rec.met, 2u);
  EXPECT_EQ(rec.missed, 2u);
  EXPECT_EQ(rec.scheduled(), 4u);
}

TEST(DeadlineMonitor, RecordsSkips) {
  DeadlineMonitor monitor;
  monitor.record_skip("t23");
  monitor.record_skip("t23");
  EXPECT_EQ(monitor.task("t23").skipped, 2u);
  EXPECT_EQ(monitor.total_skipped(), 2u);
}

TEST(DeadlineMonitor, TotalsAcrossTasks) {
  DeadlineMonitor monitor;
  monitor.record("a", 0.0, 1.0, 10.0);
  monitor.record("b", 0.0, 20.0, 10.0);
  monitor.record_skip("c");
  EXPECT_EQ(monitor.total_met(), 1u);
  EXPECT_EQ(monitor.total_missed(), 1u);
  EXPECT_EQ(monitor.total_skipped(), 1u);
}

TEST(DeadlineMonitor, UnknownTaskThrows) {
  DeadlineMonitor monitor;
  EXPECT_FALSE(monitor.has_task("nope"));
  EXPECT_THROW((void)monitor.task("nope"), std::out_of_range);
}

TEST(DeadlineMonitor, TracksDurationStats) {
  DeadlineMonitor monitor;
  monitor.record("t", 0.0, 10.0, 500.0);
  monitor.record("t", 0.0, 30.0, 500.0);
  EXPECT_DOUBLE_EQ(monitor.task("t").duration_ms.mean(), 20.0);
  EXPECT_DOUBLE_EQ(monitor.task("t").duration_ms.max(), 30.0);
}

TEST(DeadlineMonitor, SummaryMentionsEveryTask) {
  DeadlineMonitor monitor;
  monitor.record("alpha", 0.0, 1.0, 2.0);
  monitor.record_skip("beta");
  const std::string s = monitor.summary();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
}

TEST(MajorCycleSchedule, PaperScheduleShape) {
  const auto schedule = MajorCycleSchedule::paper_schedule();
  EXPECT_EQ(schedule.periods_per_cycle(), 16);
  EXPECT_DOUBLE_EQ(schedule.period_ms(), 500.0);
  EXPECT_DOUBLE_EQ(schedule.major_cycle_ms(), 8000.0);
  // Task 1 in every period.
  for (int p = 0; p < 16; ++p) {
    const auto& slots = schedule.slots(p);
    ASSERT_FALSE(slots.empty());
    EXPECT_EQ(slots[0].task, "task1");
  }
  // Tasks 2+3 only in the 16th period, after Task 1.
  EXPECT_EQ(schedule.slots(15).size(), 2u);
  EXPECT_EQ(schedule.slots(15)[1].task, "task23");
  EXPECT_EQ(schedule.slots(0).size(), 1u);
}

TEST(MajorCycleSchedule, OrderingWithinPeriod) {
  MajorCycleSchedule schedule(4, 100.0);
  schedule.add_in_period("late", 2, /*order=*/5);
  schedule.add_in_period("early", 2, /*order=*/1);
  const auto& slots = schedule.slots(2);
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0].task, "early");
  EXPECT_EQ(slots[1].task, "late");
}

TEST(MajorCycleSchedule, BoundsChecking) {
  MajorCycleSchedule schedule(4, 100.0);
  EXPECT_THROW(schedule.add_in_period("x", 4), std::out_of_range);
  EXPECT_THROW(schedule.add_in_period("x", -1), std::out_of_range);
  EXPECT_THROW((void)schedule.slots(4), std::out_of_range);
  EXPECT_THROW(MajorCycleSchedule(0, 100.0), std::invalid_argument);
  EXPECT_THROW(MajorCycleSchedule(4, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace atm::rt
