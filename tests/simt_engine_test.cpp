// Tests for the SIMT execution engine and its cost model (src/simt).
#include "src/simt/device.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/simt/device_spec.hpp"

namespace atm::simt {
namespace {

Device make_device() { return Device(titan_x_pascal()); }

TEST(Dim3, CountAndLinearIndex) {
  EXPECT_EQ((Dim3{4, 3, 2}.count()), 24u);
  EXPECT_EQ((Dim3{}.count()), 1u);
  EXPECT_EQ(linear_index(Dim3{1, 2, 0}, Dim3{4, 3, 2}), 9u);
  EXPECT_EQ(linear_index(Dim3{0, 0, 1}, Dim3{4, 3, 2}), 12u);
}

TEST(OneThreadPerItem, PaperBlockShape) {
  // Paper Section 6.1: 96 aircraft -> 1 block of 96 threads; more aircraft
  // keep 96 threads/block and grow the block count.
  const auto cfg1 = one_thread_per_item(96, 96);
  EXPECT_EQ(cfg1.grid.x, 1u);
  EXPECT_EQ(cfg1.block.x, 96u);
  const auto cfg2 = one_thread_per_item(97, 96);
  EXPECT_EQ(cfg2.grid.x, 2u);
  const auto cfg3 = one_thread_per_item(16000, 96);
  EXPECT_EQ(cfg3.grid.x, 167u);
}

TEST(OneThreadPerItem, ZeroItemsStillLaunchesOneBlock) {
  const auto cfg = one_thread_per_item(0, 96);
  EXPECT_EQ(cfg.grid.x, 1u);
}

TEST(OneThreadPerItem, RejectsNonPositiveBlock) {
  EXPECT_THROW((void)one_thread_per_item(10, 0), std::invalid_argument);
}

TEST(Device, EveryLogicalThreadRunsExactlyOnce) {
  Device dev = make_device();
  std::vector<int> hits(1000, 0);
  const auto cfg = one_thread_per_item(hits.size(), 96);
  dev.launch(cfg, [&](ThreadCtx& ctx) {
    if (ctx.global_id() < hits.size()) ++hits[ctx.global_id()];
  });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(Device, GlobalIdMatchesCudaFormula) {
  Device dev = make_device();
  const LaunchConfig cfg{.grid = Dim3{3}, .block = Dim3{4}};
  std::vector<std::uint64_t> ids;
  dev.launch(cfg, [&](ThreadCtx& ctx) {
    EXPECT_EQ(ctx.global_id(),
              ctx.block_idx().x * ctx.block_dim().x + ctx.thread_idx().x);
    ids.push_back(ctx.global_id());
  });
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);
}

TEST(Device, RejectsOversizedBlock) {
  Device dev(geforce_9800_gt());  // max 512 threads/block on CC 1.x
  const LaunchConfig cfg{.grid = Dim3{1}, .block = Dim3{1024}};
  EXPECT_THROW(dev.launch(cfg, [](ThreadCtx&) {}), std::invalid_argument);
}

TEST(Device, RejectsEmptyLaunch) {
  Device dev = make_device();
  const LaunchConfig cfg{.grid = Dim3{0}, .block = Dim3{32}};
  EXPECT_THROW(dev.launch(cfg, [](ThreadCtx&) {}), std::invalid_argument);
}

TEST(Device, ModeledTimeIncludesLaunchOverhead) {
  Device dev = make_device();
  const auto stats =
      dev.launch(one_thread_per_item(1, 96), [](ThreadCtx&) {});
  EXPECT_GE(stats.modeled_ms, dev.spec().launch_overhead_us * 1e-3);
}

TEST(Device, MoreWorkMoreCycles) {
  Device dev = make_device();
  const auto cfg = one_thread_per_item(10000, 96);
  const auto light = dev.launch(cfg, [](ThreadCtx& ctx) { ctx.charge(10); });
  const auto heavy =
      dev.launch(cfg, [](ThreadCtx& ctx) { ctx.charge(1000); });
  EXPECT_GT(heavy.cycles, light.cycles * 50);
}

TEST(Device, WarpPaysItsLongestLane) {
  // One divergent heavy thread per warp costs the warp the heavy path.
  Device dev = make_device();
  const LaunchConfig cfg{.grid = Dim3{1}, .block = Dim3{32}};
  const auto uniform = dev.launch(cfg, [](ThreadCtx& ctx) { ctx.charge(100); });
  const auto divergent = dev.launch(cfg, [](ThreadCtx& ctx) {
    ctx.charge(ctx.thread_idx().x == 0 ? 100 : 1);
  });
  EXPECT_EQ(uniform.cycles, divergent.cycles);
}

TEST(Device, ThroughputBoundKicksInOnNarrowSm) {
  // The 9800 GT has 8 cores/SM: a 96-thread block (3 warps) must serialize
  // 32/8 = 4x per warp; the Titan X (128 cores/SM) runs the 3 warps at
  // full width and pays only the longest warp.
  const LaunchConfig cfg{.grid = Dim3{1}, .block = Dim3{96}};
  Device narrow(geforce_9800_gt());
  Device wide(titan_x_pascal());
  const auto n = narrow.launch(cfg, [](ThreadCtx& ctx) { ctx.charge(1000); });
  const auto w = wide.launch(cfg, [](ThreadCtx& ctx) { ctx.charge(1000); });
  EXPECT_EQ(w.cycles, 1000u);
  EXPECT_EQ(n.cycles, 3u * 1000u * 32u / 8u);
}

TEST(Device, BlocksSpreadOverSms) {
  // sm_count identical blocks take one wave; sm_count+1 take two.
  Device dev = make_device();
  const int sms = dev.spec().sm_count;
  const auto one_wave = dev.launch(
      LaunchConfig{.grid = Dim3{static_cast<std::uint32_t>(sms)},
                   .block = Dim3{32}},
      [](ThreadCtx& ctx) { ctx.charge(500); });
  const auto two_waves = dev.launch(
      LaunchConfig{.grid = Dim3{static_cast<std::uint32_t>(sms + 1)},
                   .block = Dim3{32}},
      [](ThreadCtx& ctx) { ctx.charge(500); });
  EXPECT_EQ(one_wave.cycles, 500u);
  EXPECT_EQ(two_waves.cycles, 1000u);
}

TEST(Device, PhasedLaunchHasBarrierSemantics) {
  // Phase 1 of every thread sees the phase-0 writes of *all* threads in
  // the block.
  Device dev = make_device();
  const LaunchConfig cfg{.grid = Dim3{1}, .block = Dim3{64}};
  std::vector<int> stage(64, 0);
  bool barrier_respected = true;
  dev.launch_phased(cfg, 2, [&](ThreadCtx& ctx, int phase) {
    const auto t = ctx.thread_idx().x;
    if (phase == 0) {
      stage[t] = 1;
    } else {
      for (const int s : stage) {
        if (s != 1) barrier_respected = false;
      }
    }
  });
  EXPECT_TRUE(barrier_respected);
}

TEST(Device, PhasedChargesAccumulateAcrossPhases) {
  Device dev = make_device();
  const LaunchConfig cfg{.grid = Dim3{1}, .block = Dim3{32}};
  const auto stats = dev.launch_phased(
      cfg, 3, [](ThreadCtx& ctx, int) { ctx.charge(100); });
  EXPECT_EQ(stats.cycles, 300u);
}

TEST(Device, SharedMemoryBlockReduction) {
  // Classic two-phase block sum: phase 0 accumulates into shared scratch,
  // phase 1 (after the implicit barrier) reads the total.
  Device dev = make_device();
  const LaunchConfig cfg{.grid = Dim3{4}, .block = Dim3{64}};
  std::vector<long long> block_totals(4, -1);
  dev.launch_shared<long long>(
      cfg, 1, 2, [&](ThreadCtx& ctx, std::span<long long> shared, int phase) {
        if (phase == 0) {
          ctx.atomic_add(shared[0],
                         static_cast<long long>(ctx.thread_idx().x));
          ctx.charge(cost::kSharedAccess);
        } else if (ctx.thread_idx().x == 0) {
          block_totals[ctx.block_idx().x] = shared[0];
        }
      });
  for (const long long total : block_totals) {
    EXPECT_EQ(total, 63LL * 64 / 2);  // every block sums 0..63
  }
}

TEST(Device, SharedMemoryIsZeroedPerBlock) {
  // A later block must not see an earlier block's scratch.
  Device dev = make_device();
  const LaunchConfig cfg{.grid = Dim3{8}, .block = Dim3{32}};
  bool leaked = false;
  dev.launch_shared<int>(
      cfg, 4, 1, [&](ThreadCtx& ctx, std::span<int> shared, int) {
        if (ctx.thread_idx().x == 0) {
          for (const int v : shared) {
            if (v != 0) leaked = true;
          }
        }
        shared[ctx.thread_idx().x % 4] = 7;  // dirty it for the next block
      });
  EXPECT_FALSE(leaked);
}

TEST(Device, SharedMemoryZeroingSurvivesShuffledOrder) {
  Device dev = make_device();
  dev.set_thread_order(ThreadOrder::kShuffled);
  const LaunchConfig cfg{.grid = Dim3{6}, .block = Dim3{48}};
  std::vector<long long> block_totals(6, -1);
  dev.launch_shared<long long>(
      cfg, 1, 2, [&](ThreadCtx& ctx, std::span<long long> shared, int phase) {
        if (phase == 0) {
          ctx.atomic_add(shared[0], 1LL);
        } else if (ctx.thread_idx().x == 0) {
          block_totals[ctx.block_idx().x] = shared[0];
        }
      });
  for (const long long total : block_totals) EXPECT_EQ(total, 48);
}

TEST(Device, SharedMemoryLimitEnforcedPerDevice) {
  // CC 1.x: 16 KB per block. 3000 doubles = 24 KB must be rejected on the
  // 9800 GT and accepted on the Kepler/Pascal cards.
  Device old_card(geforce_9800_gt());
  const LaunchConfig cfg{.grid = Dim3{1}, .block = Dim3{32}};
  EXPECT_THROW(old_card.launch_shared<double>(
                   cfg, 3000, 1,
                   [](ThreadCtx&, std::span<double>, int) {}),
               std::invalid_argument);
  Device new_card(titan_x_pascal());
  EXPECT_NO_THROW(new_card.launch_shared<double>(
      cfg, 3000, 1, [](ThreadCtx&, std::span<double>, int) {}));
}

TEST(Device, ShuffledOrderStillRunsEveryThread) {
  Device dev = make_device();
  dev.set_thread_order(ThreadOrder::kShuffled);
  std::vector<int> hits(500, 0);
  dev.launch(one_thread_per_item(hits.size(), 96), [&](ThreadCtx& ctx) {
    if (ctx.global_id() < hits.size()) ++hits[ctx.global_id()];
  });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(Device, TransfersModelLatencyPlusBandwidth) {
  Device dev = make_device();
  const auto small = dev.transfer(8);
  const auto large = dev.transfer(100'000'000);
  EXPECT_GE(small.modeled_ms, dev.spec().transfer_latency_us * 1e-3);
  // 100 MB at 12 GB/s ~ 8.3 ms, far above the latency floor.
  EXPECT_GT(large.modeled_ms, 10 * small.modeled_ms);
}

TEST(Device, BufferCopiesRoundTrip) {
  Device dev = make_device();
  auto buf = dev.alloc<double>(100);
  std::vector<double> host(100);
  std::iota(host.begin(), host.end(), 0.0);
  dev.copy_to_device(buf, std::span<const double>(host));
  std::vector<double> back(100, -1.0);
  dev.copy_to_host(std::span<double>(back), buf);
  EXPECT_EQ(host, back);
  EXPECT_EQ(dev.totals().transfers, 2u);
  EXPECT_EQ(dev.totals().bytes_moved, 2u * 100u * sizeof(double));
}

TEST(Device, BufferCopySizeMismatchThrows) {
  Device dev = make_device();
  auto buf = dev.alloc<int>(10);
  std::vector<int> host(5);
  EXPECT_THROW(dev.copy_to_device(buf, std::span<const int>(host)),
               std::invalid_argument);
}

TEST(Device, TotalsAccumulateAndReset) {
  Device dev = make_device();
  dev.launch(one_thread_per_item(10, 96), [](ThreadCtx& ctx) {
    ctx.charge(5);
  });
  dev.transfer(1024);
  EXPECT_EQ(dev.totals().launches, 1u);
  EXPECT_EQ(dev.totals().transfers, 1u);
  EXPECT_GT(dev.totals().kernel_ms, 0.0);
  dev.reset_totals();
  EXPECT_EQ(dev.totals().launches, 0u);
  EXPECT_EQ(dev.totals().kernel_ms, 0.0);
}

TEST(ThreadCtx, AtomicsBehaveAndCharge) {
  ThreadCtx ctx(Dim3{}, Dim3{}, Dim3{32}, Dim3{1});
  int x = 5;
  EXPECT_EQ(ctx.atomic_cas(x, 5, 9), 5);
  EXPECT_EQ(x, 9);
  EXPECT_EQ(ctx.atomic_cas(x, 5, 1), 9);  // no-op, wrong expected
  EXPECT_EQ(x, 9);
  EXPECT_EQ(ctx.atomic_exch(x, 2), 9);
  EXPECT_EQ(x, 2);
  EXPECT_EQ(ctx.atomic_min(x, 7), 2);
  EXPECT_EQ(x, 2);
  EXPECT_EQ(ctx.atomic_min(x, -1), 2);
  EXPECT_EQ(x, -1);
  EXPECT_EQ(ctx.atomic_add(x, 10), -1);
  EXPECT_EQ(x, 9);
  EXPECT_EQ(ctx.cycles(), 6u * cost::kAtomic);
}

TEST(DeviceSpecs, PaperCatalogOrderingAndShapes) {
  const auto cards = paper_device_catalog();
  ASSERT_EQ(cards.size(), 3u);
  EXPECT_EQ(cards[0].name, "GeForce 9800 GT");
  EXPECT_EQ(cards[1].name, "GTX 880M");
  EXPECT_EQ(cards[2].name, "Titan X (Pascal)");
  // Compute capability and core counts match Section 6.1's description.
  EXPECT_EQ(cards[0].compute_capability, 10);
  EXPECT_EQ(cards[1].compute_capability, 30);
  EXPECT_EQ(cards[2].compute_capability, 61);
  EXPECT_EQ(cards[0].total_cores(), 112);
  EXPECT_EQ(cards[1].total_cores(), 1536);
  EXPECT_EQ(cards[2].total_cores(), 3584);
}

}  // namespace
}  // namespace atm::simt
