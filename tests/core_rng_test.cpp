// Tests for the deterministic RNG (src/core/rng.hpp).
#include "src/core/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace atm::core {
namespace {

TEST(SplitMix64, MatchesReferenceSequence) {
  // Reference values for seed 0 from the published splitmix64.c.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm.next(), 0x06C45D188009454FULL);
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at draw " << i;
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 12.25);
    ASSERT_GE(u, -3.5);
    ASSERT_LT(u, 12.25);
  }
}

TEST(Rng, UniformMeanIsCentred) {
  Rng rng(99);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all of 2, 3, 4, 5 appear
}

TEST(Rng, PaperSignIsPlusMinusOne) {
  Rng rng(5);
  int negatives = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    const double s = rng.paper_sign(true);
    ASSERT_TRUE(s == 1.0 || s == -1.0);
    if (s < 0) ++negatives;
  }
  // [0, 50] has 26 even values and 25 odd: negative side slightly favored.
  EXPECT_NEAR(static_cast<double>(negatives) / kDraws, 26.0 / 51.0, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace atm::core
