// Tests for Batcher's conflict-detection test (src/atm/batcher.hpp) —
// the paper's Equations 1-6 / Figure 3 geometry.
#include "src/atm/batcher.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/rng.hpp"
#include "src/core/vec2.hpp"

namespace atm::tasks {
namespace {

TEST(AxisBandWindow, HeadOnClosure) {
  // Separation 10 nm, closing at 1 nm/period, band 3: bands touch at
  // t = (10-3)/1 = 7 and separate at t = (10+3)/1 = 13.
  const AxisWindow w = axis_band_window(10.0, -1.0, 3.0);
  EXPECT_FALSE(w.always);
  EXPECT_FALSE(w.never);
  EXPECT_DOUBLE_EQ(w.entry, 7.0);
  EXPECT_DOUBLE_EQ(w.exit, 13.0);
}

TEST(AxisBandWindow, DivergingGivesPastWindow) {
  // Separation 10 nm, opening at 1 nm/period: the overlap was in the past.
  const AxisWindow w = axis_band_window(10.0, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(w.entry, -13.0);
  EXPECT_DOUBLE_EQ(w.exit, -7.0);
}

TEST(AxisBandWindow, ParallelApartNeverOverlaps) {
  const AxisWindow w = axis_band_window(10.0, 0.0, 3.0);
  EXPECT_TRUE(w.never);
}

TEST(AxisBandWindow, ParallelCloseAlwaysOverlaps) {
  const AxisWindow w = axis_band_window(1.0, 0.0, 3.0);
  EXPECT_TRUE(w.always);
}

TEST(AxisBandWindow, AlreadyInsideBand) {
  // Separation 1 nm, closing: entry time is negative (already inside).
  const AxisWindow w = axis_band_window(1.0, -1.0, 3.0);
  EXPECT_LT(w.entry, 0.0);
  EXPECT_DOUBLE_EQ(w.exit, 4.0);
}

TEST(BatcherPairTest, HeadOnCollisionDetected) {
  // Trial 20 nm east of track, closing at 0.01 nm/period in x, same y.
  const PairConflict pc = batcher_pair_test(20.0, 0.0, -0.01, 0.0);
  EXPECT_TRUE(pc.conflict);
  EXPECT_NEAR(pc.time_min, (20.0 - 3.0) / 0.01, 1e-9);  // t = 1700
  EXPECT_NEAR(pc.time_max, (20.0 + 3.0) / 0.01, 1e-9);  // t = 2300
}

TEST(BatcherPairTest, DivergingPairIsNoConflict) {
  // Flying directly apart: the printed equations' absolute-value form
  // would report a bogus future window here; the band-intersection form
  // must not.
  const PairConflict pc = batcher_pair_test(20.0, 0.0, 0.01, 0.0);
  EXPECT_FALSE(pc.conflict);
}

TEST(BatcherPairTest, CrossingTracksConflictOnlyIfWindowsIntersect) {
  // x window [7, 13]; y window [17, 23] (disjoint in time): no conflict.
  const PairConflict disjoint =
      batcher_pair_test(10.0, 20.0, -1.0, -1.0);
  // x: (10-3)/1=7..13; y: (20-3)/1=17..23 -> max entry 17 > min exit 13.
  EXPECT_FALSE(disjoint.conflict);

  // Same entry geometry in both axes: windows coincide.
  const PairConflict same = batcher_pair_test(10.0, 10.0, -1.0, -1.0);
  EXPECT_TRUE(same.conflict);
  EXPECT_DOUBLE_EQ(same.time_min, 7.0);
  EXPECT_DOUBLE_EQ(same.time_max, 13.0);
}

TEST(BatcherPairTest, ConflictBeyondHorizonIgnored) {
  // Entry at t = 9700 periods, far past the 2400-period horizon.
  const PairConflict pc = batcher_pair_test(100.0, 0.0, -0.01, 0.0);
  EXPECT_GT((100.0 - 3.0) / 0.01, 2400.0);
  EXPECT_FALSE(pc.conflict);
}

TEST(BatcherPairTest, ConflictExactlyAtHorizonBoundary) {
  // Entry strictly inside, exit past: clipped window [entry, horizon].
  const double v = (20.0 - 3.0) / 2000.0;  // entry at t = 2000
  const PairConflict pc = batcher_pair_test(20.0, 0.0, -v, 0.0);
  EXPECT_TRUE(pc.conflict);
  EXPECT_NEAR(pc.time_min, 2000.0, 1e-6);
  EXPECT_DOUBLE_EQ(pc.time_max, 2400.0);
}

TEST(BatcherPairTest, CurrentlyOverlappingPairConflictsNow) {
  const PairConflict pc = batcher_pair_test(1.0, 1.0, 0.001, 0.0);
  EXPECT_TRUE(pc.conflict);
  EXPECT_DOUBLE_EQ(pc.time_min, 0.0);
}

TEST(BatcherPairTest, ParallelSameTrackAlwaysConflicts) {
  // Same path, 1 nm apart, identical velocity: permanent band overlap.
  const PairConflict pc = batcher_pair_test(1.0, 0.5, 0.0, 0.0);
  EXPECT_TRUE(pc.conflict);
  EXPECT_DOUBLE_EQ(pc.time_min, 0.0);
  EXPECT_DOUBLE_EQ(pc.time_max, 2400.0);
}

TEST(BatcherPairTest, SymmetricInPairOrder) {
  // Swapping track and trial negates relative position and velocity;
  // the window must be identical.
  core::Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    const double px = rng.uniform(-40.0, 40.0);
    const double py = rng.uniform(-40.0, 40.0);
    const double vx = rng.uniform(-0.1, 0.1);
    const double vy = rng.uniform(-0.1, 0.1);
    const PairConflict a = batcher_pair_test(px, py, vx, vy);
    const PairConflict b = batcher_pair_test(-px, -py, -vx, -vy);
    ASSERT_EQ(a.conflict, b.conflict);
    if (a.conflict) {
      ASSERT_DOUBLE_EQ(a.time_min, b.time_min);
      ASSERT_DOUBLE_EQ(a.time_max, b.time_max);
    }
  }
}

TEST(BatcherPairTest, WindowMatchesBruteForceSampling) {
  // Property: the analytic window agrees with dense time sampling of
  // "both |dx(t)| <= 3 and |dy(t)| <= 3".
  core::Rng rng(33);
  for (int trial = 0; trial < 200; ++trial) {
    const double px = rng.uniform(-30.0, 30.0);
    const double py = rng.uniform(-30.0, 30.0);
    const double vx = rng.uniform(-0.05, 0.05);
    const double vy = rng.uniform(-0.05, 0.05);
    const PairConflict pc = batcher_pair_test(px, py, vx, vy);

    bool sampled_conflict = false;
    double first_t = -1.0;
    for (double t = 0.0; t <= 2400.0; t += 1.0) {
      if (std::fabs(px + vx * t) <= 3.0 && std::fabs(py + vy * t) <= 3.0) {
        sampled_conflict = true;
        first_t = t;
        break;
      }
    }
    if (sampled_conflict) {
      // Sampling can only find conflicts the analytic window contains.
      ASSERT_TRUE(pc.conflict)
          << "sampling found overlap at t=" << first_t << " but test said no"
          << " (p=" << px << "," << py << " v=" << vx << "," << vy << ")";
      ASSERT_LE(pc.time_min, first_t + 1e-9);
    } else if (pc.conflict) {
      // An analytic window the sampler missed must be narrower than the
      // 1-period sampling step.
      ASSERT_LT(pc.time_max - pc.time_min, 1.0);
    }
  }
}

TEST(AltitudeGate, StrictThousandFeet) {
  EXPECT_TRUE(altitude_gate(10000.0, 10999.0));
  EXPECT_FALSE(altitude_gate(10000.0, 11000.0));
  EXPECT_TRUE(altitude_gate(11000.0, 10001.0));
  EXPECT_FALSE(altitude_gate(5000.0, 20000.0));
  EXPECT_TRUE(altitude_gate(7000.0, 7000.0));
}

}  // namespace
}  // namespace atm::tasks
