// Tests for the associative processor machine (src/ap/ap_machine.hpp).
#include "src/ap/ap_machine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace atm::ap {
namespace {

ApMachine make(std::size_t n) { return ApMachine(n, staran_model()); }

TEST(ApCostModel, WordOpCycles) {
  const ApCostModel m = staran_model();
  EXPECT_DOUBLE_EQ(m.word_op_cycles(),
                   m.word_bits * m.cycles_per_bit);
}

TEST(ApMachine, RejectsBadClock) {
  ApCostModel m = staran_model();
  m.clock_mhz = 0.0;
  EXPECT_THROW(ApMachine(8, m), std::invalid_argument);
}

TEST(ApMachine, SearchSetsResponders) {
  ApMachine m = make(10);
  Mask mask;
  m.search([](std::size_t i) { return i % 3 == 0; }, mask);
  ASSERT_EQ(mask.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(mask[i] != 0, i % 3 == 0);
  }
}

TEST(ApMachine, SearchCostIsIndependentOfN) {
  // The defining AP property: an associative search costs the same for
  // 10 records as for 100000 (constant time w.r.t. PE count).
  ApMachine small = make(10);
  ApMachine large = make(100000);
  Mask mask;
  small.search([](std::size_t) { return true; }, mask);
  const double t_small = small.elapsed_ms();
  large.search([](std::size_t) { return true; }, mask);
  EXPECT_DOUBLE_EQ(t_small, large.elapsed_ms());
}

TEST(ApMachine, ParallelAppliesUnderMask) {
  ApMachine m = make(6);
  Mask mask{1, 0, 1, 0, 1, 0};
  std::vector<int> v(6, 0);
  m.parallel(mask, [&](std::size_t i) { v[i] = 1; });
  EXPECT_EQ(v, (std::vector<int>{1, 0, 1, 0, 1, 0}));
}

TEST(ApMachine, ParallelAllCoversEveryPe) {
  ApMachine m = make(100);
  std::vector<int> v(100, 0);
  m.parallel_all([&](std::size_t i) { ++v[i]; });
  for (const int x : v) EXPECT_EQ(x, 1);
}

TEST(ApMachine, AnyFirstCountResponders) {
  ApMachine m = make(5);
  const Mask none{0, 0, 0, 0, 0};
  const Mask some{0, 0, 1, 0, 1};
  EXPECT_FALSE(m.any_responder(none));
  EXPECT_TRUE(m.any_responder(some));
  EXPECT_EQ(m.first_responder(none), ApMachine::npos);
  EXPECT_EQ(m.first_responder(some), 2u);
  EXPECT_EQ(m.count_responders(some), 2u);
  EXPECT_EQ(m.count_responders(none), 0u);
}

TEST(ApMachine, MinMaxIndexRespectMask) {
  ApMachine m = make(5);
  const std::vector<double> keys{4.0, -1.0, 2.0, -7.0, 3.0};
  const Mask mask{1, 1, 1, 0, 1};  // -7 masked out
  EXPECT_EQ(m.min_index(keys, mask), 1u);
  EXPECT_EQ(m.max_index(keys, mask), 0u);
  const Mask none{0, 0, 0, 0, 0};
  EXPECT_EQ(m.min_index(keys, none), ApMachine::npos);
}

TEST(ApMachine, MinIndexTiesToLowestPe) {
  ApMachine m = make(4);
  const std::vector<double> keys{2.0, 1.0, 1.0, 5.0};
  const Mask mask{1, 1, 1, 1};
  EXPECT_EQ(m.min_index(keys, mask), 1u);
}

TEST(ApMachine, CostAccumulatesPerOperation) {
  ApMachine m = make(50);
  EXPECT_DOUBLE_EQ(m.elapsed_ms(), 0.0);
  Mask mask;
  m.search([](std::size_t) { return false; }, mask, /*word_ops=*/2);
  const double after_search = m.elapsed_ms();
  EXPECT_GT(after_search, 0.0);
  EXPECT_EQ(m.charged_word_ops(), 2u);
  (void)m.any_responder(mask);
  EXPECT_GT(m.elapsed_ms(), after_search);
  m.reset();
  EXPECT_DOUBLE_EQ(m.elapsed_ms(), 0.0);
  EXPECT_EQ(m.charged_word_ops(), 0u);
}

TEST(ApMachine, MinIndexCostsBitSerialRounds) {
  // One min-reduction costs a word op plus word_bits responder rounds —
  // and, critically, the same for any n.
  ApMachine a = make(10);
  ApMachine b = make(10000);
  const std::vector<double> keys_a(10, 1.0);
  const std::vector<double> keys_b(10000, 1.0);
  const Mask mask_a(10, 1);
  const Mask mask_b(10000, 1);
  (void)a.min_index(keys_a, mask_a);
  (void)b.min_index(keys_b, mask_b);
  EXPECT_DOUBLE_EQ(a.elapsed_ms(), b.elapsed_ms());
}

TEST(ApMachine, HostAccessCharges) {
  ApMachine m = make(10);
  m.host_access(3);
  EXPECT_EQ(m.charged_word_ops(), 3u);
}

}  // namespace
}  // namespace atm::ap
