// Soak test: a long steady-state run — 30 major cycles (4 simulated
// minutes) — checking that the system neither leaks state nor drifts into
// inconsistency, and that the airfield reaches a believable steady state.
#include <gtest/gtest.h>

#include <cmath>

#include "src/airfield/history.hpp"
#include "src/airfield/setup.hpp"
#include "src/atm/extended/full_pipeline.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"

namespace atm::tasks {
namespace {

TEST(Soak, ThirtyMajorCyclesStayConsistent) {
  constexpr std::size_t kAircraft = 600;
  PipelineConfig cfg;
  cfg.aircraft = kAircraft;
  cfg.major_cycles = 30;
  cfg.seed = 4242;
  airfield::FlightRecorder recorder(kAircraft, 480);
  cfg.recorder = &recorder;

  auto backend = make_titan_x_pascal();
  const PipelineResult result = run_pipeline(*backend, cfg);

  // Scheduling: 480 Task 1 periods, 30 collision passes, zero misses.
  EXPECT_EQ(result.deadlines().task("task1").scheduled(), 480u);
  EXPECT_EQ(result.deadlines().task("task23").scheduled(), 30u);
  EXPECT_EQ(result.deadlines().total_missed(), 0u);
  EXPECT_DOUBLE_EQ(result.virtual_end_ms, 30.0 * 8000.0);

  // State integrity after 4 simulated minutes.
  const airfield::FlightDb& db = backend->state();
  const airfield::FlightDb initial =
      airfield::make_airfield(kAircraft, cfg.seed);
  ASSERT_EQ(db.size(), kAircraft);
  for (std::size_t i = 0; i < kAircraft; ++i) {
    ASSERT_TRUE(std::isfinite(db.x[i]) && std::isfinite(db.y[i]))
        << "aircraft " << i;
    // The paper's (-x, -y) re-entry preserves exit magnitude, so noisy
    // edge oscillators random-walk outward ~noise * sqrt(periods) before
    // their velocity carries them back: bound the 480-period drift at
    // 8 nm (see airfield/flight_db.cpp).
    ASSERT_LE(std::fabs(db.x[i]), core::kGridHalfExtentNm + 8.0);
    ASSERT_LE(std::fabs(db.y[i]), core::kGridHalfExtentNm + 8.0);
    ASSERT_NEAR(std::hypot(db.dx[i], db.dy[i]),
                std::hypot(initial.dx[i], initial.dy[i]), 1e-9)
        << "speed drifted for aircraft " << i;
  }

  // The recorder kept the last 480 periods and its tail matches reality.
  EXPECT_EQ(recorder.recorded(), 480);
  const auto last = recorder.last_known(0);
  ASSERT_TRUE(last.has_value());
  EXPECT_DOUBLE_EQ(last->x, db.x[0]);

  // Task 1 timing stays flat across the run (no monotically growing
  // cost = no state accumulation bug): the last cycle's mean is within
  // 3x the first cycle's.
  double first = 0.0, final = 0.0;
  for (int p = 0; p < 16; ++p) {
    first += result.periods[static_cast<std::size_t>(p)].task1_ms;
    final += result.periods[result.periods.size() - 16 +
                            static_cast<std::size_t>(p)]
                 .task1_ms;
  }
  EXPECT_LT(final, 3.0 * first + 1e-6);
}

TEST(Soak, FullSystemTenCyclesOnTheLaptopCard) {
  extended::FullSystemConfig cfg;
  cfg.aircraft = 500;
  cfg.major_cycles = 10;
  cfg.seed = 99;
  auto backend = make_gtx_880m();
  const auto result = extended::run_full_system(*backend, cfg);

  EXPECT_EQ(result.monitor.task("task1").scheduled(), 160u);
  EXPECT_EQ(result.monitor.task("display").scheduled(), 160u);
  EXPECT_EQ(result.monitor.task("sporadic").scheduled(), 160u);
  EXPECT_EQ(result.monitor.task("advisory").scheduled(), 20u);
  EXPECT_EQ(result.monitor.task("task23").scheduled(), 10u);
  EXPECT_EQ(result.monitor.task("terrain").scheduled(), 10u);
  EXPECT_EQ(result.monitor.total_missed() + result.monitor.total_skipped(),
            0u);

  // Terrain discipline held: nobody is below clearance on their current
  // sample path at run end.
  const airfield::FlightDb& db = backend->state();
  const airfield::TerrainMap& terrain = *backend->terrain();
  for (std::size_t i = 0; i < db.size(); ++i) {
    const double ground = terrain.elevation_at(db.x[i], db.y[i]);
    ASSERT_GT(db.alt[i] - ground, -1e-9)
        << "aircraft " << i << " underground";
  }
}

}  // namespace
}  // namespace atm::tasks
