// Tests for the scenario presets.
#include "src/atm/scenarios.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/atm/platforms.hpp"

namespace atm::tasks {
namespace {

TEST(Scenarios, AllHaveUniqueNamesAndDescriptions) {
  std::set<std::string> names;
  for (const Scenario& s : all_scenarios()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.description.empty());
    EXPECT_GT(s.default_aircraft, 0u);
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
  }
  EXPECT_EQ(names.size(), 5u);
}

TEST(Scenarios, PaperAirfieldIsTheDefaults) {
  const Scenario s = paper_airfield();
  EXPECT_DOUBLE_EQ(s.setup.position_max_nm, core::kSetupPositionMaxNm);
  EXPECT_DOUBLE_EQ(s.task23.band_nm, core::kBatcherBandNm);
  EXPECT_DOUBLE_EQ(s.task1.box_half_nm, core::kCorrelationBoxHalfNm);
}

TEST(Scenarios, DroneSwarmMatchesFutureWorkDescription) {
  const Scenario s = drone_swarm();
  EXPECT_LE(s.setup.max_speed_knots, 100.0);
  EXPECT_LE(s.setup.max_altitude_feet, 2000.0);
  EXPECT_LT(s.task23.band_nm, 1.0);
  EXPECT_GT(s.task23.turn_max_deg, 45.0);
}

class ScenarioRunTest : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioRunTest, EveryScenarioRunsCleanOnTheResearchCard) {
  const Scenario scenario =
      all_scenarios()[static_cast<std::size_t>(GetParam())];
  auto backend = make_titan_x_pascal();
  const PipelineConfig cfg = make_pipeline_config(scenario, 1, 7);
  const PipelineResult result = run_pipeline(*backend, cfg);
  EXPECT_EQ(result.deadlines().total_missed(), 0u)
      << scenario.name << " missed deadlines on the Titan X";
  EXPECT_EQ(result.deadlines().task("task1").scheduled(), 16u);
  // The flight population survived intact.
  EXPECT_EQ(backend->state().size(), scenario.default_aircraft);
}

TEST_P(ScenarioRunTest, FullSystemConfigCarriesScenarioParameters) {
  const Scenario scenario =
      all_scenarios()[static_cast<std::size_t>(GetParam())];
  const extended::FullSystemConfig cfg = make_full_config(scenario, 2, 3);
  EXPECT_EQ(cfg.aircraft, scenario.default_aircraft);
  EXPECT_EQ(cfg.major_cycles, 2);
  EXPECT_DOUBLE_EQ(cfg.task23.band_nm, scenario.task23.band_nm);
  EXPECT_DOUBLE_EQ(cfg.radar.noise_nm, scenario.radar.noise_nm);
  EXPECT_DOUBLE_EQ(cfg.advisory.boundary_warn_nm,
                   scenario.advisory.boundary_warn_nm);
}

INSTANTIATE_TEST_SUITE_P(
    All, ScenarioRunTest, ::testing::Range(0, 5),
    [](const ::testing::TestParamInfo<int>& info) {
      std::string name =
          all_scenarios()[static_cast<std::size_t>(info.param)].name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace atm::tasks
