// Tests for the sporadic-requests task: semantics, cross-backend
// equivalence, and the associative advantage.
#include "src/atm/extended/sporadic.hpp"

#include <gtest/gtest.h>

#include "src/airfield/setup.hpp"
#include "src/atm/extended/display.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/reference_backend.hpp"

namespace atm::tasks::extended {
namespace {

using airfield::FlightDb;

TEST(QueryMatches, ByIdExactOnly) {
  FlightDb db(3);
  Query q;
  q.kind = QueryKind::kById;
  q.id = 1;
  EXPECT_FALSE(query_matches(db, 0, q));
  EXPECT_TRUE(query_matches(db, 1, q));
  EXPECT_FALSE(query_matches(db, 2, q));
}

TEST(QueryMatches, InSectorUsesDisplayState) {
  FlightDb db(2);
  db.sector[0] = 42;
  db.sector[1] = 7;
  Query q;
  q.kind = QueryKind::kInSector;
  q.sector = 42;
  EXPECT_TRUE(query_matches(db, 0, q));
  EXPECT_FALSE(query_matches(db, 1, q));
}

TEST(QueryMatches, NearPointIsInclusiveDisk) {
  FlightDb db(2);
  db.x[0] = 3.0;
  db.y[0] = 4.0;  // distance 5 from origin
  db.x[1] = 10.0;
  Query q;
  q.kind = QueryKind::kNearPoint;
  q.x = 0.0;
  q.y = 0.0;
  q.radius_nm = 5.0;
  EXPECT_TRUE(query_matches(db, 0, q));  // exactly on the rim
  EXPECT_FALSE(query_matches(db, 1, q));
}

TEST(AnswerQueries, CountsHitsAndOrdersIds) {
  FlightDb db(5);
  for (std::size_t i = 0; i < 5; ++i) db.x[i] = static_cast<double>(i);
  Query q;
  q.kind = QueryKind::kNearPoint;
  q.x = 2.0;
  q.radius_nm = 1.5;
  std::vector<std::vector<std::int32_t>> answers;
  const SporadicStats stats = answer_queries(db, {&q, 1}, answers);
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(answers[0], (std::vector<std::int32_t>{1, 2, 3}));
}

TEST(MakeQueryBatch, DeterministicAndWellFormed) {
  const FlightDb db = airfield::make_airfield(100, 4);
  core::Rng a(9), b(9);
  SporadicParams params;
  params.queries_per_batch = 20;
  const auto batch_a = make_query_batch(db, a, params);
  const auto batch_b = make_query_batch(db, b, params);
  ASSERT_EQ(batch_a.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(batch_a[i].kind, batch_b[i].kind);
    switch (batch_a[i].kind) {
      case QueryKind::kById:
        EXPECT_GE(batch_a[i].id, 0);
        EXPECT_LT(batch_a[i].id, 100);
        break;
      case QueryKind::kInSector:
        EXPECT_GE(batch_a[i].sector, 0);
        break;
      case QueryKind::kNearPoint:
        EXPECT_LE(std::fabs(batch_a[i].x), core::kGridHalfExtentNm);
        break;
    }
  }
}

TEST(MakeQueryBatch, EmptyDatabaseYieldsNoQueries) {
  FlightDb db;
  core::Rng rng(1);
  EXPECT_TRUE(make_query_batch(db, rng, {}).empty());
}

TEST(Sporadic, EveryBackendAnswersIdentically) {
  const FlightDb initial = airfield::make_airfield(500, 31);
  // Give the database display sectors so kInSector queries have targets.
  ReferenceBackend ref;
  ref.load(initial);
  (void)ref.run_display({});
  core::Rng qrng(5);
  SporadicParams params;
  params.queries_per_batch = 12;
  const auto batch = make_query_batch(ref.state(), qrng, params);
  const SporadicResult want = ref.run_sporadic(batch, params);
  EXPECT_GT(want.stats.hits, 0u);

  for (auto make : {&make_geforce_9800_gt, &make_gtx_880m,
                    &make_titan_x_pascal, &make_staran, &make_clearspeed,
                    &make_xeon, &make_xeon_phi}) {
    auto backend = make();
    backend->load(initial);
    (void)backend->run_display({});
    const SporadicResult got = backend->run_sporadic(batch, params);
    EXPECT_EQ(got.stats, want.stats) << backend->name();
    EXPECT_EQ(got.answers, want.answers) << backend->name();
  }
}

TEST(Sporadic, ApQueryCostIndependentOfFleetSize) {
  // The associative pitch: one query = one constant-time search. Two
  // fleets, 100 vs 10000 aircraft, same per-query machine time up to the
  // responder readout of the hits.
  Query q;
  q.kind = QueryKind::kById;
  q.id = 5;
  SporadicParams params;
  auto small = make_staran();
  auto large = make_staran();
  small->load(airfield::make_airfield(100, 1));
  large->load(airfield::make_airfield(10000, 1));
  const double t_small = small->run_sporadic({&q, 1}, params).modeled_ms;
  const double t_large = large->run_sporadic({&q, 1}, params).modeled_ms;
  EXPECT_DOUBLE_EQ(t_small, t_large);

  // While a scan-based platform pays linearly.
  auto cpu_small = make_xeon_phi();
  auto cpu_large = make_xeon_phi();
  cpu_small->load(airfield::make_airfield(100, 1));
  cpu_large->load(airfield::make_airfield(10000, 1));
  EXPECT_GT(cpu_large->run_sporadic({&q, 1}, params).modeled_ms,
            cpu_small->run_sporadic({&q, 1}, params).modeled_ms);
}

TEST(Sporadic, EmptyBatchIsFree) {
  auto backend = make_titan_x_pascal();
  backend->load(airfield::make_airfield(50, 2));
  const SporadicResult r = backend->run_sporadic({}, {});
  EXPECT_EQ(r.stats.queries, 0u);
  EXPECT_EQ(r.answers.size(), 0u);
  EXPECT_DOUBLE_EQ(r.modeled_ms, 0.0);
}

}  // namespace
}  // namespace atm::tasks::extended
