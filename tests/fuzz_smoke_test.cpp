// In-process fuzz smoke (src/testkit/fuzz.hpp): a short seeded run of
// the full differential loop must come back clean, and the budget/quota
// accounting must behave. CI runs the big sibling of this through
// tools/atm_fuzz (the fuzz-smoke step and the `fuzz` ctest label); this
// test keeps the engine itself under the default test tier.
#include <gtest/gtest.h>

#include <sstream>

#include "src/testkit/fuzz.hpp"

namespace atm::testkit {
namespace {

TEST(FuzzSmokeTest, ShortRunIsClean) {
  FuzzOptions options;
  options.first_seed = 1;
  options.cases = 6;
  std::ostringstream log;
  const FuzzSummary summary = run_fuzz(options, &log);
  EXPECT_TRUE(summary.ok()) << log.str();
  EXPECT_EQ(summary.cases_run, 6);
  EXPECT_TRUE(summary.failures.empty());
  // Each case runs the baseline + the matrix + platforms + metamorphic +
  // full system.
  EXPECT_GE(summary.runs, 6 * 30);
}

TEST(FuzzSmokeTest, DeepEveryThinsTheExpensiveProbes) {
  FuzzOptions deep;
  deep.first_seed = 1;
  deep.cases = 4;
  FuzzOptions thinned = deep;
  thinned.deep_every = 4;  // only case 0 gets platforms + full system
  const FuzzSummary a = run_fuzz(deep, nullptr);
  const FuzzSummary b = run_fuzz(thinned, nullptr);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_LT(b.runs, a.runs);
}

TEST(FuzzSmokeTest, UnmetCaseQuotaFailsTheSummary) {
  FuzzOptions options;
  options.first_seed = 1;
  options.cases = 2;
  options.require_cases = 5;  // more than the run can possibly complete
  const FuzzSummary summary = run_fuzz(options, nullptr);
  EXPECT_TRUE(summary.failures.empty());
  EXPECT_FALSE(summary.quota_met);
  EXPECT_FALSE(summary.ok());
}

TEST(FuzzSmokeTest, SummariesAreDeterministic) {
  FuzzOptions options;
  options.first_seed = 3;
  options.cases = 3;
  const FuzzSummary a = run_fuzz(options, nullptr);
  const FuzzSummary b = run_fuzz(options, nullptr);
  EXPECT_EQ(a.cases_run, b.cases_run);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

}  // namespace
}  // namespace atm::testkit
