// Tests for the reference Tasks 2+3 implementation (collision detection &
// resolution, paper Sections 5.2-5.3 / Algorithm 2).
#include "src/atm/reference/collision.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/airfield/setup.hpp"
#include "src/atm/batcher.hpp"
#include "src/core/vec2.hpp"

namespace atm::tasks::reference {
namespace {

using airfield::FlightDb;
using airfield::kNone;

/// Two aircraft flying head-on along x at the same altitude, meeting well
/// inside the critical window. The default 25 nm / 0.05 nm-per-period pair
/// meets at t ~ 220 periods (critical) and is resolvable within the +-30
/// degree turn budget: lateral displacement 0.05 * sin(20 deg) * 220 ~ 3.8
/// nm clears the 3 nm band. (A 10 nm pair would be geometrically
/// *unresolvable* — 30 degrees only buys 2.5 nm by the merge point.)
FlightDb head_on_pair(double separation_nm = 25.0,
                      double speed_nm_per_period = 0.05) {
  FlightDb db(2);
  db.x[0] = 0.0;
  db.dx[0] = speed_nm_per_period;
  db.x[1] = separation_nm;
  db.dx[1] = -speed_nm_per_period;
  db.alt[0] = db.alt[1] = 10000.0;
  return db;
}

TEST(TrialAngles, PaperAlternationSequence) {
  // +5, -5, +10, -10, ..., +30, -30 (Section 5.3).
  EXPECT_DOUBLE_EQ(trial_angle_deg(0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(trial_angle_deg(1, 5.0), -5.0);
  EXPECT_DOUBLE_EQ(trial_angle_deg(2, 5.0), 10.0);
  EXPECT_DOUBLE_EQ(trial_angle_deg(3, 5.0), -10.0);
  EXPECT_DOUBLE_EQ(trial_angle_deg(10, 5.0), 30.0);
  EXPECT_DOUBLE_EQ(trial_angle_deg(11, 5.0), -30.0);
  Task23Params params;
  EXPECT_EQ(max_trial_attempts(params), 12);
}

TEST(Task23Reference, HeadOnPairIsCriticalAndResolved) {
  FlightDb db = head_on_pair();
  const Task23Stats stats = detect_and_resolve(db);
  EXPECT_EQ(stats.aircraft, 2u);
  EXPECT_EQ(stats.conflicts, 2u);  // both see the conflict
  EXPECT_EQ(stats.critical, 2u);
  EXPECT_EQ(stats.resolved, 2u);
  EXPECT_EQ(stats.unresolved, 0u);
  // Resolved aircraft turned: their velocity changed but kept magnitude.
  EXPECT_NE(db.dy[0], 0.0);
  EXPECT_NEAR(std::hypot(db.dx[0], db.dy[0]), 0.05, 1e-12);
  // Collision flags cleared on commit (Algorithm 2 line 12).
  EXPECT_EQ(db.col[0], 0);
  EXPECT_EQ(db.col_with[0], kNone);
}

TEST(Task23Reference, ResolvedPathsAreActuallyConflictFree) {
  FlightDb db = head_on_pair();
  detect_and_resolve(db);
  // Re-running detection on the committed paths: the pair may still be
  // in *conflict* within 20 minutes (both turned 5 degrees the same way,
  // paths still cross) but must no longer be *critical*.
  ScanWork work;
  const DetectOutcome out0 = scan_against_all(
      db, 0, db.dx[0], db.dy[0], Task23Params{}, work, false);
  EXPECT_FALSE(out0.critical);
}

TEST(Task23Reference, DistantConflictIsNotCritical) {
  // Meeting at t ~ 1700 periods: inside the horizon, past critical (300).
  FlightDb db = head_on_pair(20.0, 0.005);
  const Task23Stats stats = detect_and_resolve(db);
  EXPECT_EQ(stats.conflicts, 2u);
  EXPECT_EQ(stats.critical, 0u);
  EXPECT_EQ(stats.resolved, 0u);
  // Paths unchanged; detection flags kept for the cycle report.
  EXPECT_DOUBLE_EQ(db.dy[0], 0.0);
  EXPECT_EQ(db.col[0], 1);
  EXPECT_EQ(db.col_with[0], 1);
  // time_till starts at the 300-period "safe" value and is only pulled
  // *down* by sooner conflicts (Section 5.2).
  EXPECT_DOUBLE_EQ(db.time_till[0], 300.0);
}

TEST(Task23Reference, AltitudeGateSuppressesConflict) {
  FlightDb db = head_on_pair();
  db.alt[1] = db.alt[0] + 2000.0;  // different flight levels
  const Task23Stats stats = detect_and_resolve(db);
  EXPECT_EQ(stats.conflicts, 0u);
  EXPECT_EQ(stats.pair_tests, 0u);  // the gate filters before the test
}

TEST(Task23Reference, NoConflictLeavesStateClean) {
  FlightDb db(2);
  db.x[0] = -100.0;
  db.x[1] = 100.0;
  db.dx[0] = -0.01;
  db.dx[1] = 0.01;  // flying apart
  db.alt[0] = db.alt[1] = 5000.0;
  const Task23Stats stats = detect_and_resolve(db);
  EXPECT_EQ(stats.conflicts, 0u);
  EXPECT_EQ(db.col[0], 0);
  EXPECT_DOUBLE_EQ(db.time_till[0], 300.0);
  EXPECT_EQ(db.col_with[0], kNone);
}

TEST(Task23Reference, PartnerIsSoonestConflict) {
  // Aircraft 0 faces two head-on threats; the nearer one (id 2) is sooner.
  FlightDb db(3);
  const double xs[] = {0.0, 20.0, 8.0};
  const double dxs[] = {0.05, -0.05, -0.05};
  for (std::size_t i = 0; i < 3; ++i) {
    db.alt[i] = 9000.0;
    db.x[i] = xs[i];
    db.dx[i] = dxs[i];
  }

  ScanWork work;
  const DetectOutcome det = scan_against_all(db, 0, db.dx[0], db.dy[0],
                                             Task23Params{}, work, false);
  EXPECT_TRUE(det.conflict);
  EXPECT_EQ(det.partner, 2);
  EXPECT_EQ(work.pair_tests, 2u);
  EXPECT_EQ(work.pair_candidates, 2u);
}

TEST(Task23Reference, SnapshotSemanticsIgnoreNeighboursResolution) {
  // Three-in-a-row head-on: the middle pair is critical. Aircraft are
  // resolved against *original* paths, not against what a neighbour
  // committed earlier in the loop — so results must be independent of
  // record order. We check by reversing the records.
  FlightDb fwd(2);
  fwd.alt[0] = fwd.alt[1] = 8000.0;
  fwd.x[0] = 0.0;
  fwd.dx[0] = 0.04;
  fwd.x[1] = 6.0;
  fwd.dx[1] = -0.04;

  FlightDb rev(2);
  rev.alt[0] = rev.alt[1] = 8000.0;
  rev.x[0] = 6.0;
  rev.dx[0] = -0.04;
  rev.x[1] = 0.0;
  rev.dx[1] = 0.04;

  const Task23Stats sf = detect_and_resolve(fwd);
  const Task23Stats sr = detect_and_resolve(rev);
  EXPECT_EQ(sf.resolved, sr.resolved);
  EXPECT_EQ(sf.critical, sr.critical);
  // Mirrored records end with mirrored velocities.
  EXPECT_DOUBLE_EQ(fwd.dx[0], rev.dx[1]);
  EXPECT_DOUBLE_EQ(fwd.dy[0], rev.dy[1]);
}

TEST(Task23Reference, UnresolvableBoxedInAircraftKeepsPath) {
  // Ring of aircraft converging on the centre from every 15 degrees: the
  // centre aircraft cannot turn its way (max 30 degrees) out of all of
  // them. It must keep its path and count as unresolved.
  constexpr int kRing = 24;
  FlightDb db(kRing + 1);
  for (int k = 0; k < kRing; ++k) {
    const double theta = 2.0 * std::numbers::pi * k / kRing;
    db.x[static_cast<std::size_t>(k)] = 8.0 * std::cos(theta);
    db.y[static_cast<std::size_t>(k)] = 8.0 * std::sin(theta);
    db.dx[static_cast<std::size_t>(k)] = -0.04 * std::cos(theta);
    db.dy[static_cast<std::size_t>(k)] = -0.04 * std::sin(theta);
    db.alt[static_cast<std::size_t>(k)] = 10000.0;
  }
  db.x[kRing] = 0.0;
  db.y[kRing] = 0.0;
  db.dx[kRing] = 0.03;
  db.dy[kRing] = 0.0;
  db.alt[kRing] = 10000.0;

  const double before_dx = db.dx[kRing];
  const Task23Stats stats = detect_and_resolve(db);
  EXPECT_GT(stats.unresolved, 0u);
  EXPECT_DOUBLE_EQ(db.dx[kRing], before_dx);  // unresolved keeps its path
  EXPECT_EQ(db.col[kRing], 1);                // and keeps its flags
}

TEST(Task23Reference, ResolutionPreservesSpeed) {
  const FlightDb initial = airfield::make_airfield(400, 77);
  FlightDb db = initial;
  detect_and_resolve(db);
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_NEAR(std::hypot(db.dx[i], db.dy[i]),
                std::hypot(initial.dx[i], initial.dy[i]), 1e-9)
        << "aircraft " << i;
  }
}

TEST(Task23Reference, PositionsNeverChange) {
  // Tasks 2+3 alter paths, not positions (Task 1 moves aircraft).
  const FlightDb initial = airfield::make_airfield(300, 5);
  FlightDb db = initial;
  detect_and_resolve(db);
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_DOUBLE_EQ(db.x[i], initial.x[i]);
    EXPECT_DOUBLE_EQ(db.y[i], initial.y[i]);
  }
}

TEST(Task23Reference, EmptyAndSingleAircraft) {
  FlightDb empty;
  EXPECT_EQ(detect_and_resolve(empty).conflicts, 0u);
  FlightDb one(1);
  one.dx[0] = 0.05;
  const Task23Stats stats = detect_and_resolve(one);
  EXPECT_EQ(stats.conflicts, 0u);
  EXPECT_EQ(stats.pair_tests, 0u);
}

class Task23InvariantSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Task23InvariantSweep, AccountingInvariants) {
  const std::size_t n = GetParam();
  FlightDb db = airfield::make_airfield(n, 31 + n);
  const Task23Stats stats = detect_and_resolve(db);
  EXPECT_EQ(stats.aircraft, n);
  EXPECT_EQ(stats.resolved + stats.unresolved, stats.critical);
  EXPECT_LE(stats.critical, stats.conflicts);
  EXPECT_LE(stats.conflicts, n);
  // Each rescan runs at most a full pair sweep; pair tests are bounded by
  // (detection + rescans) * (n - 1).
  EXPECT_LE(stats.pair_tests, (n + stats.rescans) * (n - 1));
  // Resolved aircraft have clean flags; critical-unresolved keep col = 1.
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (db.col[i]) ++flagged;
  }
  EXPECT_EQ(flagged, stats.conflicts - stats.resolved);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Task23InvariantSweep,
                         ::testing::Values(50, 200, 600, 1500));

}  // namespace
}  // namespace atm::tasks::reference
