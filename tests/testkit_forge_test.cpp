// ScenarioForge (src/testkit/forge.hpp): determinism of the seeded
// sampler, validity of what it forges, trajectory-family coverage, and
// the override/keep machinery the shrinker and corpus replay depend on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/core/units.hpp"
#include "src/testkit/forge.hpp"

namespace atm::testkit {
namespace {

TEST(ForgeTest, SameSeedForgesBitIdenticalCases) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const ForgedCase a = forge_case(seed);
    const ForgedCase b = forge_case(seed);
    ASSERT_EQ(a.db.size(), b.db.size()) << "seed " << seed;
    EXPECT_TRUE(a.db.same_flight_state(b.db)) << "seed " << seed;
    EXPECT_EQ(a.family, b.family) << "seed " << seed;
    EXPECT_EQ(a.major_cycles, b.major_cycles) << "seed " << seed;
    EXPECT_EQ(a.scenario.task23.horizon_periods,
              b.scenario.task23.horizon_periods)
        << "seed " << seed;
    EXPECT_EQ(a.scenario.task1.box_half_nm, b.scenario.task1.box_half_nm)
        << "seed " << seed;
    EXPECT_EQ(a.scenario.radar.noise_nm, b.scenario.radar.noise_nm)
        << "seed " << seed;
  }
}

TEST(ForgeTest, DifferentSeedsForgeDifferentFleets) {
  const ForgedCase a = forge_case(1);
  const ForgedCase b = forge_case(2);
  EXPECT_FALSE(a.db.size() == b.db.size() && a.db.same_flight_state(b.db));
}

TEST(ForgeTest, ForgedCasesAreValid) {
  const ForgeParams params;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const ForgedCase c = forge_case(seed, params);
    ASSERT_GE(c.db.size(), params.min_aircraft) << "seed " << seed;
    ASSERT_LE(c.db.size(), params.max_aircraft) << "seed " << seed;
    ASSERT_EQ(c.family.size(), c.db.size()) << "seed " << seed;
    EXPECT_GE(c.major_cycles, params.min_major_cycles);
    EXPECT_LE(c.major_cycles, params.max_major_cycles);
    EXPECT_GT(c.scenario.task23.horizon_periods, 0.0);
    EXPECT_GT(c.scenario.task23.critical_periods, 0.0);
    EXPECT_LT(c.scenario.task23.critical_periods,
              c.scenario.task23.horizon_periods);
    EXPECT_LE(c.scenario.task23.turn_step_deg,
              c.scenario.task23.turn_max_deg);
    for (std::size_t i = 0; i < c.db.size(); ++i) {
      // Everything starts on the grid (the re-entry rule would otherwise
      // teleport aircraft on the very first period) and moving.
      EXPECT_LE(std::abs(c.db.x[i]), core::kGridHalfExtentNm)
          << "seed " << seed << " aircraft " << i;
      EXPECT_LE(std::abs(c.db.y[i]), core::kGridHalfExtentNm)
          << "seed " << seed << " aircraft " << i;
      EXPECT_GT(std::hypot(c.db.dx[i], c.db.dy[i]), 0.0)
          << "seed " << seed << " aircraft " << i;
      EXPECT_GT(c.db.alt[i], 0.0) << "seed " << seed << " aircraft " << i;
      EXPECT_LT(c.family[i], static_cast<std::uint8_t>(kFamilyCount));
    }
  }
}

TEST(ForgeTest, EveryTrajectoryFamilyAppearsAcrossSeeds) {
  std::set<std::uint8_t> seen;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const ForgedCase c = forge_case(seed);
    seen.insert(c.family.begin(), c.family.end());
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kFamilyCount))
      << "40 seeds should exercise all " << kFamilyCount
      << " trajectory families";
}

TEST(ForgeTest, SelectRowsKeepsExactlyTheRequestedRows) {
  const ForgedCase c = forge_case(7);
  ASSERT_GE(c.db.size(), 6u);
  const std::vector<std::uint32_t> keep = {0, 2, 5};
  const airfield::FlightDb sub = select_rows(c.db, keep);
  ASSERT_EQ(sub.size(), keep.size());
  for (std::size_t k = 0; k < keep.size(); ++k) {
    EXPECT_EQ(sub.x[k], c.db.x[keep[k]]);
    EXPECT_EQ(sub.y[k], c.db.y[keep[k]]);
    EXPECT_EQ(sub.dx[k], c.db.dx[keep[k]]);
    EXPECT_EQ(sub.dy[k], c.db.dy[keep[k]]);
    EXPECT_EQ(sub.alt[k], c.db.alt[keep[k]]);
  }
}

TEST(ForgeTest, MaterializeAppliesOverrides) {
  CaseOverrides overrides;
  overrides.major_cycles = 1;
  overrides.zero_faults = true;
  overrides.zero_radar_noise = true;
  overrides.zero_dropout = true;
  overrides.zero_sporadic = true;
  overrides.plain_policy = true;
  overrides.keep = {1, 3, 4};

  const ForgedCase base = forge_case(11);
  const ForgedCase c = materialize(11, {}, overrides);
  ASSERT_EQ(c.db.size(), overrides.keep.size());
  EXPECT_EQ(c.major_cycles, 1);
  EXPECT_EQ(c.scenario.radar.noise_nm, 0.0);
  EXPECT_EQ(c.scenario.radar.dropout_probability, 0.0);
  EXPECT_EQ(c.scenario.sporadic.queries_per_batch, 0);
  EXPECT_EQ(c.scenario.policy.broadphase,
            core::spatial::BroadphaseMode::kBruteForce);
  EXPECT_EQ(c.scenario.policy.shard, core::spatial::ShardMode::kNone);
  EXPECT_EQ(c.scenario.policy.faults.dropout_burst_probability, 0.0);
  // Kept rows are the forged rows, family tags remapped alongside.
  for (std::size_t k = 0; k < overrides.keep.size(); ++k) {
    const std::uint32_t i = overrides.keep[k];
    EXPECT_EQ(c.db.x[k], base.db.x[i]);
    EXPECT_EQ(c.db.y[k], base.db.y[i]);
    EXPECT_EQ(c.family[k], base.family[i]);
  }
}

TEST(ForgeTest, MaterializeWithoutOverridesMatchesForgeCase) {
  const ForgedCase a = forge_case(5);
  const ForgedCase b = materialize(5, {}, {});
  ASSERT_EQ(a.db.size(), b.db.size());
  EXPECT_TRUE(a.db.same_flight_state(b.db));
  EXPECT_EQ(a.major_cycles, b.major_cycles);
}

TEST(ForgeTest, PipelineConfigPreloadsTheForgedFleet) {
  const ForgedCase c = forge_case(3);
  const tasks::PipelineConfig cfg = pipeline_config(c);
  EXPECT_TRUE(cfg.preloaded);
  EXPECT_EQ(cfg.aircraft, c.db.size());
  EXPECT_EQ(cfg.major_cycles, c.major_cycles);
  EXPECT_EQ(cfg.seed, c.seed);
}

TEST(ForgeTest, FamilyNamesAreDistinct) {
  std::set<std::string_view> names;
  for (int f = 0; f < kFamilyCount; ++f) {
    names.insert(to_string(static_cast<Family>(f)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kFamilyCount));
}

}  // namespace
}  // namespace atm::testkit
