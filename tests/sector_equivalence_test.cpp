// Sharded vs unsharded equivalence: splitting the host hot paths into
// per-sector thread-pool tasks must not change a single task outcome.
// For every named scenario, every sector count, and both broadphase
// modes (sharding composes with the per-sector indexes), the sharded
// runs must produce identical Task1Stats / Task23Stats outcome counters
// and bit-identical post-run flight state on both host execution paths
// (sequential reference and the MIMD thread pool). Only the work
// counters (box_tests, pair_candidates, pair_tests, sectors,
// halo_candidates) may differ — that the halos make this exact is the
// whole design bar (docs/SHARDING.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/airfield/setup.hpp"
#include "src/atm/mimd_backend.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/reference_backend.hpp"
#include "src/atm/scenarios.hpp"

namespace atm::tasks {
namespace {

using core::spatial::BroadphaseMode;
using core::spatial::ShardMode;

Task1Stats outcome_only(Task1Stats s) {
  s.box_tests = 0;
  s.sectors = 0;
  s.halo_candidates = 0;
  s.kernel = -1;
  s.lanes_masked = 0;
  return s;
}
Task23Stats outcome_only(Task23Stats s) {
  s.pair_tests = 0;
  s.pair_candidates = 0;
  s.rescans = 0;
  s.sectors = 0;
  s.halo_candidates = 0;
  s.kernel = -1;
  s.lanes_masked = 0;
  return s;
}

PipelineConfig make_config(const Scenario& scenario, BroadphaseMode phase,
                           ShardMode shard, int sectors_per_axis) {
  Scenario s = scenario;
  s.policy.broadphase = phase;
  s.policy.shard = shard;
  s.policy.sectors_per_axis = sectors_per_axis;
  return make_pipeline_config(s);
}

constexpr int kSectorCounts[] = {1, 2, 4};

class SectorEquivalenceTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(SectorEquivalenceTest, ReferencePathMatchesUnsharded) {
  for (const BroadphaseMode phase :
       {BroadphaseMode::kBruteForce, BroadphaseMode::kGrid}) {
    ReferenceBackend baseline;
    const PipelineResult rb = run_pipeline(
        baseline, make_config(GetParam(), phase, ShardMode::kNone, 4));
    EXPECT_EQ(rb.last_task1.sectors, 0);
    EXPECT_EQ(rb.last_task23.sectors, 0);

    for (const int axis : kSectorCounts) {
      ReferenceBackend sharded;
      const PipelineResult rs = run_pipeline(
          sharded, make_config(GetParam(), phase, ShardMode::kSectors, axis));
      SCOPED_TRACE(GetParam().name + " sectors=" + std::to_string(axis) +
                   (phase == BroadphaseMode::kGrid ? " grid" : " brute"));
      EXPECT_EQ(rs.last_task1.sectors, axis * axis)
          << "sharded Task 1 path did not run";
      EXPECT_EQ(rs.last_task23.sectors, axis * axis)
          << "sharded Task 23 path did not run";
      EXPECT_EQ(outcome_only(rb.last_task1), outcome_only(rs.last_task1));
      EXPECT_EQ(rb.last_task1.passes, rs.last_task1.passes);
      EXPECT_EQ(outcome_only(rb.last_task23), outcome_only(rs.last_task23));
      ASSERT_EQ(rb.periods.size(), rs.periods.size());
      for (std::size_t i = 0; i < rb.periods.size(); ++i) {
        EXPECT_EQ(rb.periods[i].wrapped, rs.periods[i].wrapped)
            << "re-entry wraps diverged in period " << i;
      }
      EXPECT_TRUE(baseline.state().same_flight_state(sharded.state()))
          << "sector sharding changed the flight state";
    }
  }
}

TEST_P(SectorEquivalenceTest, MimdPathMatchesUnsharded) {
  for (const BroadphaseMode phase :
       {BroadphaseMode::kBruteForce, BroadphaseMode::kGrid}) {
    MimdBackend baseline;
    const PipelineResult rb = run_pipeline(
        baseline, make_config(GetParam(), phase, ShardMode::kNone, 4));

    for (const int axis : kSectorCounts) {
      MimdBackend sharded;
      const PipelineResult rs = run_pipeline(
          sharded, make_config(GetParam(), phase, ShardMode::kSectors, axis));
      SCOPED_TRACE(GetParam().name + " sectors=" + std::to_string(axis) +
                   (phase == BroadphaseMode::kGrid ? " grid" : " brute"));
      EXPECT_EQ(outcome_only(rb.last_task1), outcome_only(rs.last_task1));
      EXPECT_EQ(outcome_only(rb.last_task23), outcome_only(rs.last_task23));
      EXPECT_TRUE(baseline.state().same_flight_state(sharded.state()))
          << "sector sharding diverged on the MIMD path";
    }
  }
}

TEST_P(SectorEquivalenceTest, ShardedMimdMatchesShardedReference) {
  // The two host paths stay equivalent to each other under sharding too:
  // same partition, different executors (serial loop vs thread pool).
  ReferenceBackend ref;
  MimdBackend xeon;
  const PipelineResult rr = run_pipeline(
      ref, make_config(GetParam(), BroadphaseMode::kGrid,
                       ShardMode::kSectors, 4));
  const PipelineResult rx = run_pipeline(
      xeon, make_config(GetParam(), BroadphaseMode::kGrid,
                        ShardMode::kSectors, 4));
  EXPECT_EQ(outcome_only(rr.last_task1), outcome_only(rx.last_task1));
  EXPECT_EQ(outcome_only(rr.last_task23), outcome_only(rx.last_task23));
  EXPECT_TRUE(ref.state().same_flight_state(xeon.state()));
}

std::string scenario_test_name(
    const ::testing::TestParamInfo<Scenario>& info) {
  std::string name = info.param.name;
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, SectorEquivalenceTest,
                         ::testing::ValuesIn(all_scenarios()),
                         scenario_test_name);

TEST(SectorEquivalence, RetryPassesRebuildThePartitionIdentically) {
  // dulles-1972 leaves radars unmatched after pass 1, so the sharded
  // Task 1 rebuilds the partition with the doubled halo reach — the
  // multi-pass path must stay outcome-identical too.
  ReferenceBackend base, shard;
  const PipelineResult rb = run_pipeline(
      base, make_config(dulles_1972(), BroadphaseMode::kBruteForce,
                        ShardMode::kNone, 4));
  const PipelineResult rs = run_pipeline(
      shard, make_config(dulles_1972(), BroadphaseMode::kBruteForce,
                         ShardMode::kSectors, 4));
  EXPECT_GT(rb.last_task1.passes, 1) << "scenario no longer retries; the "
                                        "multi-pass sharded path is untested";
  EXPECT_EQ(rb.last_task1.passes, rs.last_task1.passes);
  EXPECT_EQ(outcome_only(rb.last_task1), outcome_only(rs.last_task1));
  EXPECT_TRUE(base.state().same_flight_state(shard.state()));
}

TEST(SectorEquivalence, BoundaryClusterAtSectorSeamsStaysIdentical) {
  // A worst case for halos: a tight cluster parked on the field center,
  // which is the seam of every even sector split, flying hard at the
  // corner so re-entry teleports aircraft across the partition between
  // periods. Any halo omission loses a conflict pair here.
  airfield::FlightDb db = airfield::make_airfield(200, 7);
  for (std::size_t k = 0; k < 8; ++k) {
    db.x[k] = (k % 2 == 0) ? -0.2 : 0.2;  // straddle the 2x2/4x4 midline
    db.y[k] = (k % 4 < 2) ? -0.2 : 0.2;
    db.dx[k] = 0.09;
    db.dy[k] = 0.09;
    db.alt[k] = 10000.0 + 10.0 * static_cast<double>(k);
  }
  for (std::size_t k = 8; k < 16; ++k) {
    db.x[k] = 127.5;  // corner cluster: guarantees wraps in one cycle
    db.y[k] = 127.5;
    db.dx[k] = 0.09;
    db.dy[k] = 0.09;
    db.alt[k] = 12000.0 + 10.0 * static_cast<double>(k);
  }

  Scenario s = paper_airfield();
  PipelineConfig base_cfg = make_pipeline_config(s);
  base_cfg.aircraft = db.size();
  base_cfg.preloaded = true;
  s.policy.shard = ShardMode::kSectors;
  s.policy.sectors_per_axis = 4;
  PipelineConfig shard_cfg = make_pipeline_config(s);
  shard_cfg.aircraft = db.size();
  shard_cfg.preloaded = true;

  ReferenceBackend base, shard;
  base.load(db);
  shard.load(db);
  const PipelineResult rb = run_pipeline(base, base_cfg);
  const PipelineResult rs = run_pipeline(shard, shard_cfg);

  std::size_t wraps = 0;
  for (const PeriodLog& log : rb.periods) wraps += log.wrapped;
  EXPECT_GT(wraps, 0u) << "no aircraft wrapped; the re-entry case is dead";
  EXPECT_GT(rb.last_task23.conflicts, 0u)
      << "cluster produced no conflicts; the seam case is dead";
  EXPECT_EQ(outcome_only(rb.last_task1), outcome_only(rs.last_task1));
  EXPECT_EQ(outcome_only(rb.last_task23), outcome_only(rs.last_task23));
  EXPECT_TRUE(base.state().same_flight_state(shard.state()));
}

TEST(SectorEquivalence, ScenarioShardKnobsReachBothParamBundles) {
  Scenario s = paper_airfield();
  s.policy.shard = ShardMode::kSectors;
  s.policy.sectors_per_axis = 8;
  const PipelineConfig cfg = make_pipeline_config(s);
  EXPECT_EQ(cfg.task1.shard, ShardMode::kSectors);
  EXPECT_EQ(cfg.task1.sectors_per_axis, 8);
  EXPECT_EQ(cfg.task23.shard, ShardMode::kSectors);
  EXPECT_EQ(cfg.task23.sectors_per_axis, 8);
  const extended::FullSystemConfig full = make_full_config(s);
  EXPECT_EQ(full.task1.shard, ShardMode::kSectors);
  EXPECT_EQ(full.task1.sectors_per_axis, 8);
  EXPECT_EQ(full.task23.shard, ShardMode::kSectors);
  EXPECT_EQ(full.task23.sectors_per_axis, 8);
}

TEST(SectorEquivalence, ScenarioRegistryRoundTrips) {
  const auto names = scenario_names();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    Scenario s;
    ASSERT_TRUE(scenario_by_name(name, s)) << name;
    EXPECT_EQ(s.name, name);
  }
  Scenario s;
  EXPECT_FALSE(scenario_by_name("no-such-scenario", s));
  EXPECT_TRUE(scenario_by_name("dense-en-route", s));
  EXPECT_EQ(s.default_aircraft, dense_en_route().default_aircraft);
}

}  // namespace
}  // namespace atm::tasks
