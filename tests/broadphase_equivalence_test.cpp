// Brute-force vs grid broadphase equivalence: for every named scenario,
// the kGrid indexes must not change a single task outcome — identical
// Task1Stats / Task23Stats outcome counters (including the bounding-box
// retry pass count) and bit-identical post-run flight state — on both
// host execution paths (sequential reference and the MIMD thread pool).
// Only the work counters (box_tests, pair_candidates, pair_tests) may
// differ; that is the broadphase's whole purpose.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/airfield/setup.hpp"
#include "src/atm/mimd_backend.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/reference_backend.hpp"
#include "src/atm/scenarios.hpp"

namespace atm::tasks {
namespace {

using core::spatial::BroadphaseMode;

Task1Stats outcome_only(Task1Stats s) {
  s.box_tests = 0;
  s.kernel = -1;
  s.lanes_masked = 0;
  return s;
}
Task23Stats outcome_only(Task23Stats s) {
  s.pair_tests = 0;
  s.pair_candidates = 0;
  s.rescans = 0;
  s.kernel = -1;
  s.lanes_masked = 0;
  return s;
}

PipelineConfig config_with_mode(const Scenario& scenario,
                                BroadphaseMode mode, int cycles = 1) {
  Scenario s = scenario;
  s.policy.broadphase = mode;
  return make_pipeline_config(s, cycles);
}

class BroadphaseEquivalenceTest : public ::testing::TestWithParam<Scenario> {
};

TEST_P(BroadphaseEquivalenceTest, ReferencePathMatchesBruteForce) {
  ReferenceBackend brute, grid;
  const PipelineResult rb = run_pipeline(
      brute, config_with_mode(GetParam(), BroadphaseMode::kBruteForce));
  const PipelineResult rg = run_pipeline(
      grid, config_with_mode(GetParam(), BroadphaseMode::kGrid));

  EXPECT_EQ(outcome_only(rb.last_task1), outcome_only(rg.last_task1));
  EXPECT_EQ(rb.last_task1.passes, rg.last_task1.passes);
  EXPECT_EQ(outcome_only(rb.last_task23), outcome_only(rg.last_task23));
  ASSERT_EQ(rb.periods.size(), rg.periods.size());
  for (std::size_t i = 0; i < rb.periods.size(); ++i) {
    EXPECT_EQ(rb.periods[i].wrapped, rg.periods[i].wrapped)
        << "re-entry wraps diverged in period " << i;
  }
  EXPECT_TRUE(brute.state().same_flight_state(grid.state()))
      << GetParam().name << ": grid broadphase changed the flight state";
}

TEST_P(BroadphaseEquivalenceTest, MimdPathMatchesBruteForce) {
  MimdBackend brute, grid;
  const PipelineResult rb = run_pipeline(
      brute, config_with_mode(GetParam(), BroadphaseMode::kBruteForce));
  const PipelineResult rg = run_pipeline(
      grid, config_with_mode(GetParam(), BroadphaseMode::kGrid));

  EXPECT_EQ(outcome_only(rb.last_task1), outcome_only(rg.last_task1));
  EXPECT_EQ(outcome_only(rb.last_task23), outcome_only(rg.last_task23));
  EXPECT_TRUE(brute.state().same_flight_state(grid.state()))
      << GetParam().name << ": grid broadphase diverged on the MIMD path";
}

TEST_P(BroadphaseEquivalenceTest, GridMimdMatchesGridReference) {
  // Both host paths in kGrid mode stay equivalent to each other too (the
  // MIMD workers query the shared immutable index concurrently).
  ReferenceBackend ref;
  MimdBackend xeon;
  const PipelineResult rr = run_pipeline(
      ref, config_with_mode(GetParam(), BroadphaseMode::kGrid));
  const PipelineResult rx = run_pipeline(
      xeon, config_with_mode(GetParam(), BroadphaseMode::kGrid));
  EXPECT_EQ(outcome_only(rr.last_task1), outcome_only(rx.last_task1));
  EXPECT_EQ(outcome_only(rr.last_task23), outcome_only(rx.last_task23));
  EXPECT_TRUE(ref.state().same_flight_state(xeon.state()));
}

std::string scenario_test_name(
    const ::testing::TestParamInfo<Scenario>& info) {
  std::string name = info.param.name;
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, BroadphaseEquivalenceTest,
                         ::testing::ValuesIn(all_scenarios()),
                         scenario_test_name);

TEST(BroadphaseEquivalence, RetryPassesAreExercisedAndIdentical) {
  // dulles-1972 has noisy 1972-grade radar and dropouts, so some radars
  // stay unmatched after pass 1 and the doubling retries actually run —
  // the grid is rebuilt per pass with the doubled cell hint.
  Scenario s = dulles_1972();
  ReferenceBackend brute, grid;
  const PipelineResult rb =
      run_pipeline(brute, config_with_mode(s, BroadphaseMode::kBruteForce));
  const PipelineResult rg =
      run_pipeline(grid, config_with_mode(s, BroadphaseMode::kGrid));
  EXPECT_GT(rb.last_task1.passes, 1) << "scenario no longer retries; the "
                                        "multi-pass grid path is untested";
  EXPECT_EQ(rb.last_task1.passes, rg.last_task1.passes);
  EXPECT_EQ(outcome_only(rb.last_task1), outcome_only(rg.last_task1));
  EXPECT_TRUE(brute.state().same_flight_state(grid.state()));
}

TEST(BroadphaseEquivalence, GridEdgeReentryAircraftStayIdentical) {
  // Aircraft leaving the 256 nm field re-enter at (-x, -y) between
  // periods — a worst case for position-keyed bins, since re-entrants
  // teleport across the whole grid. Seed a fleet with a cluster flying
  // hard at the corner so wraps are guaranteed within one major cycle.
  airfield::FlightDb db = airfield::make_airfield(200, 7);
  for (std::size_t k = 0; k < 8; ++k) {
    db.x[k] = 127.5;
    db.y[k] = 127.5;
    db.dx[k] = 0.09;
    db.dy[k] = 0.09;
    db.alt[k] = 10000.0 + 100.0 * static_cast<double>(k);
  }

  PipelineConfig cfg;
  cfg.aircraft = db.size();
  cfg.major_cycles = 1;
  cfg.preloaded = true;

  ReferenceBackend brute, grid;
  brute.load(db);
  grid.load(db);
  PipelineConfig brute_cfg = cfg;
  const PipelineResult rb = run_pipeline(brute, brute_cfg);
  PipelineConfig grid_cfg = cfg;
  grid_cfg.task1.broadphase = BroadphaseMode::kGrid;
  grid_cfg.task23.broadphase = BroadphaseMode::kGrid;
  const PipelineResult rg = run_pipeline(grid, grid_cfg);

  std::size_t wraps = 0;
  for (const PeriodLog& log : rb.periods) wraps += log.wrapped;
  EXPECT_GT(wraps, 0u) << "no aircraft wrapped; the re-entry case is dead";
  EXPECT_EQ(outcome_only(rb.last_task1), outcome_only(rg.last_task1));
  EXPECT_EQ(outcome_only(rb.last_task23), outcome_only(rg.last_task23));
  EXPECT_TRUE(brute.state().same_flight_state(grid.state()));
}

TEST(BroadphaseEquivalence, ScenarioModeReachesBothParamBundles) {
  Scenario s = paper_airfield();
  s.policy.broadphase = BroadphaseMode::kGrid;
  const PipelineConfig cfg = make_pipeline_config(s);
  EXPECT_EQ(cfg.task1.broadphase, BroadphaseMode::kGrid);
  EXPECT_EQ(cfg.task23.broadphase, BroadphaseMode::kGrid);
  const extended::FullSystemConfig full = make_full_config(s);
  EXPECT_EQ(full.task1.broadphase, BroadphaseMode::kGrid);
  EXPECT_EQ(full.task23.broadphase, BroadphaseMode::kGrid);
}

}  // namespace
}  // namespace atm::tasks
