// Corpus entry format (src/testkit/corpus.hpp): serialize/parse round
// trips, malformed-input diagnostics, and the registry hook that turns a
// checked-in repro into a named scenario.
#include <gtest/gtest.h>

#include <sstream>

#include "src/atm/scenarios.hpp"
#include "src/testkit/corpus.hpp"

namespace atm::testkit {
namespace {

CorpusEntry sample_entry() {
  CorpusEntry entry;
  entry.name = "round-trip";
  entry.note = "hand-built fixture";
  entry.seed = 42;
  entry.forge.min_aircraft = 10;
  entry.forge.max_aircraft = 20;
  entry.forge.fuzz_sporadic = false;
  entry.overrides.major_cycles = 1;
  entry.overrides.zero_faults = true;
  entry.overrides.keep = {0, 3, 9};
  return entry;
}

TEST(CorpusTest, SerializeParseRoundTrips) {
  const CorpusEntry entry = sample_entry();
  std::istringstream in(serialize(entry));
  CorpusEntry parsed;
  std::string error;
  ASSERT_TRUE(parse(in, parsed, error)) << error;
  EXPECT_EQ(parsed.name, entry.name);
  EXPECT_EQ(parsed.note, entry.note);
  EXPECT_EQ(parsed.seed, entry.seed);
  EXPECT_EQ(parsed.forge, entry.forge);
  EXPECT_EQ(parsed.overrides, entry.overrides);
}

TEST(CorpusTest, SerializationIsByteStable) {
  // Goldens (and git diffs) rely on a canonical key order: serializing
  // twice — or serializing a parsed copy — is byte-identical.
  const CorpusEntry entry = sample_entry();
  const std::string first = serialize(entry);
  std::istringstream in(first);
  CorpusEntry parsed;
  std::string error;
  ASSERT_TRUE(parse(in, parsed, error)) << error;
  EXPECT_EQ(serialize(parsed), first);
}

TEST(CorpusTest, ParserSkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# a comment\n"
      "format = atm-testkit-corpus-v1\n"
      "\n"
      "name = commented\n"
      "seed = 7\n"
      "# trailing comment\n");
  CorpusEntry parsed;
  std::string error;
  ASSERT_TRUE(parse(in, parsed, error)) << error;
  EXPECT_EQ(parsed.name, "commented");
  EXPECT_EQ(parsed.seed, 7u);
}

TEST(CorpusTest, ParserRejectsMalformedInput) {
  const struct {
    const char* text;
    const char* why;
  } kCases[] = {
      {"name = x\nseed = 1\n", "missing format line"},
      {"format = atm-testkit-corpus-v1\nname = x\n", "missing seed"},
      {"format = atm-testkit-corpus-v1\nseed = 1\n", "missing name"},
      {"format = atm-testkit-corpus-v1\nname = x\nseed = banana\n",
       "bad number"},
      {"format = atm-testkit-corpus-v1\nname = x\nseed = 1\nwat = 1\n",
       "unknown key"},
  };
  for (const auto& c : kCases) {
    std::istringstream in(c.text);
    CorpusEntry parsed;
    std::string error;
    EXPECT_FALSE(parse(in, parsed, error)) << c.why;
    EXPECT_FALSE(error.empty()) << c.why;
  }
}

TEST(CorpusTest, MakeEntryCapturesTheCaseRecipe) {
  CaseOverrides overrides;
  overrides.keep = {2, 4};
  overrides.plain_policy = true;
  const ForgedCase c = materialize(13, {}, overrides);
  const CorpusEntry entry = make_entry("captured", c, "note here");
  EXPECT_EQ(entry.name, "captured");
  EXPECT_EQ(entry.note, "note here");
  EXPECT_EQ(entry.seed, 13u);
  EXPECT_EQ(entry.overrides, overrides);
  // Materializing the entry reproduces the case.
  const ForgedCase again = entry.materialize();
  ASSERT_EQ(again.db.size(), c.db.size());
  EXPECT_TRUE(again.db.same_flight_state(c.db));
}

TEST(CorpusTest, RegisteredEntrySurfacesAsScenario) {
  CorpusEntry entry;
  entry.name = "corpus-test-fixture";
  entry.seed = 9;
  register_corpus_scenario(entry);

  tasks::Scenario scenario;
  ASSERT_TRUE(tasks::scenario_by_name("corpus-corpus-test-fixture",
                                      scenario));
  const ForgedCase c = entry.materialize();
  EXPECT_EQ(scenario.default_aircraft, c.db.size());
  // Registration is idempotent: same name replaces, no duplicate rows.
  register_corpus_scenario(entry);
  std::size_t count = 0;
  for (const std::string& name : tasks::scenario_names()) {
    if (name == "corpus-corpus-test-fixture") ++count;
  }
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace atm::testkit
