// Tests for the 2-D vector and unit helpers (src/core/vec2.hpp, units.hpp).
#include "src/core/vec2.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/units.hpp"

namespace atm::core {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{-3.0, 0.5};
  EXPECT_EQ(a + b, (Vec2{-2.0, 2.5}));
  EXPECT_EQ(a - b, (Vec2{4.0, 1.5}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
}

TEST(Vec2, DotAndNorm) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
}

TEST(Vec2, RotatePreservesNorm) {
  const Vec2 v{5.0, -2.0};
  for (double deg = -180.0; deg <= 180.0; deg += 7.5) {
    const Vec2 r = rotate_deg(v, deg);
    EXPECT_NEAR(r.norm(), v.norm(), 1e-12) << "deg = " << deg;
  }
}

TEST(Vec2, RotateQuarterTurn) {
  const Vec2 v{1.0, 0.0};
  const Vec2 r = rotate_deg(v, 90.0);
  EXPECT_NEAR(r.x, 0.0, 1e-15);
  EXPECT_NEAR(r.y, 1.0, 1e-15);
}

TEST(Vec2, RotateComposition) {
  const Vec2 v{2.0, 3.0};
  const Vec2 once = rotate_deg(rotate_deg(v, 5.0), 5.0);
  const Vec2 twice = rotate_deg(v, 10.0);
  EXPECT_NEAR(once.x, twice.x, 1e-12);
  EXPECT_NEAR(once.y, twice.y, 1e-12);
}

TEST(Vec2, RotateNegativeAngleInverts) {
  const Vec2 v{-1.5, 4.0};
  const Vec2 back = rotate_deg(rotate_deg(v, 30.0), -30.0);
  EXPECT_NEAR(back.x, v.x, 1e-12);
  EXPECT_NEAR(back.y, v.y, 1e-12);
}

TEST(Vec2, Chebyshev) {
  EXPECT_DOUBLE_EQ(chebyshev({0, 0}, {3, -1}), 3.0);
  EXPECT_DOUBLE_EQ(chebyshev({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(chebyshev({-2, 5}, {0, 6}), 2.0);
}

TEST(DegRad, RoundTrip) {
  EXPECT_NEAR(rad_to_deg(deg_to_rad(123.4)), 123.4, 1e-12);
  EXPECT_NEAR(deg_to_rad(180.0), std::numbers::pi, 1e-15);
}

TEST(Units, PeriodConversions) {
  EXPECT_DOUBLE_EQ(periods_to_seconds(2.0), 1.0);
  EXPECT_DOUBLE_EQ(seconds_to_periods(8.0), 16.0);
  EXPECT_DOUBLE_EQ(seconds_to_periods(periods_to_seconds(1234.0)), 1234.0);
}

TEST(Units, KnotsConversionMatchesPaperDivisor) {
  // Paper Section 4.1: nm/hour -> nm/period by dividing by 7200.
  EXPECT_DOUBLE_EQ(knots_to_nm_per_period(7200.0), 1.0);
  EXPECT_DOUBLE_EQ(nm_per_period_to_knots(knots_to_nm_per_period(431.0)),
                   431.0);
}

TEST(Units, ScheduleConstantsMatchPaper) {
  EXPECT_EQ(kPeriodsPerMajorCycle, 16);
  EXPECT_DOUBLE_EQ(kPeriodSeconds, 0.5);
  EXPECT_DOUBLE_EQ(kMajorCycleSeconds, 8.0);
  EXPECT_DOUBLE_EQ(kLookAheadPeriods, 2400.0);  // 20 minutes
  EXPECT_DOUBLE_EQ(kCriticalTimePeriods, 300.0);
  EXPECT_DOUBLE_EQ(kBatcherBandNm, 3.0);
  EXPECT_EQ(kPaperThreadsPerBlock, 96);
}

}  // namespace
}  // namespace atm::core
