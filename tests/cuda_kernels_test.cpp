// Kernel-level unit tests: exercise the CUDA kernels directly on the SIMT
// engine (below the backend layer), including guard paths, padding
// threads, and launch shapes the backend never issues.
#include "src/atm/cuda_kernels.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "src/airfield/setup.hpp"
#include "src/atm/extended/terrain_task.hpp"
#include "src/simt/device.hpp"

namespace atm::tasks::cuda {
namespace {

using airfield::FlightDb;
using airfield::kNone;

/// Bundles a FlightDb with the scratch arrays a DroneView needs.
struct Harness {
  explicit Harness(std::size_t n) : db(n) {
    ex.resize(n);
    ey.resize(n);
    amatch.resize(n, kNone);
    nradars.resize(n, 0);
    counters.assign(kCounterSlots, 0);
  }
  DroneView view() {
    return DroneView{
        .x = db.x,
        .y = db.y,
        .dx = db.dx,
        .dy = db.dy,
        .alt = db.alt,
        .batx = db.batx,
        .baty = db.baty,
        .time_till = db.time_till,
        .ex = ex,
        .ey = ey,
        .rmatch = db.rmatch,
        .col = db.col,
        .col_with = db.col_with,
        .amatch = amatch,
        .nradars = nradars,
        .terrain_warn = db.terrain_warn,
        .sector = db.sector,
    };
  }
  FlightDb db;
  std::vector<double> ex, ey;
  std::vector<std::int32_t> amatch, nradars;
  std::vector<std::uint64_t> counters;
};

TEST(CudaKernels, PaddingThreadsOnlyPayTheGuard) {
  // 10 aircraft in 96-thread blocks: 86 threads are padding. Their charge
  // must be the guard only, so the warp max (divergence) is set by the
  // working threads.
  simt::Device dev(simt::titan_x_pascal());
  Harness h(10);
  const auto cfg = simt::one_thread_per_item(10, 96);
  const auto stats = dev.launch(cfg, [&](simt::ThreadCtx& ctx) {
    expected_position_kernel(ctx, h.view());
  });
  EXPECT_EQ(stats.threads, 96u);
  // Total charge is far below 96x the per-aircraft cost.
  EXPECT_LT(stats.total_thread_cycles, 96u * 40u);
}

TEST(CudaKernels, ExpectedPositionResetsMatchState) {
  simt::Device dev(simt::titan_x_pascal());
  Harness h(4);
  h.db.x[2] = 5.0;
  h.db.dx[2] = 0.5;
  h.db.rmatch[2] = 1;
  h.amatch[2] = 3;
  dev.launch(simt::one_thread_per_item(4, 96), [&](simt::ThreadCtx& ctx) {
    expected_position_kernel(ctx, h.view());
  });
  EXPECT_DOUBLE_EQ(h.ex[2], 5.5);
  EXPECT_EQ(h.db.rmatch[2], 0);
  EXPECT_EQ(h.amatch[2], kNone);
}

TEST(CudaKernels, SetupFlightIsThreadOrderIndependent) {
  simt::Device seq(simt::titan_x_pascal());
  simt::Device shuf(simt::titan_x_pascal());
  shuf.set_thread_order(simt::ThreadOrder::kShuffled);
  Harness a(200), b(200);
  const airfield::SetupParams params;
  const auto cfg = simt::one_thread_per_item(200, 96);
  seq.launch(cfg, [&](simt::ThreadCtx& ctx) {
    setup_flight_kernel(ctx, a.view(), 99, params);
  });
  shuf.launch(cfg, [&](simt::ThreadCtx& ctx) {
    setup_flight_kernel(ctx, b.view(), 99, params);
  });
  EXPECT_TRUE(a.db.same_flight_state(b.db));
}

TEST(CudaKernels, GenerateRadarUsesNoiseBuffer) {
  simt::Device dev(simt::gtx_880m());
  Harness h(3);
  h.db.x[0] = 1.0;
  h.db.dx[0] = 0.5;
  std::vector<double> rx(3), ry(3);
  std::vector<std::int32_t> rmw(3, kNone), nh(3), hid(3);
  const RadarView radar{rx, ry, rmw, nh, hid};
  const std::vector<double> noise{0.1, -0.2, 0.0, 0.0, 0.0, 0.0};
  dev.launch(simt::one_thread_per_item(3, 96), [&](simt::ThreadCtx& ctx) {
    generate_radar_kernel(ctx, h.view(), radar, noise);
  });
  EXPECT_DOUBLE_EQ(rx[0], 1.6);   // x + dx + noise
  EXPECT_DOUBLE_EQ(ry[0], -0.2);  // y + dy + noise
}

TEST(CudaKernels, DisplayKernelBinsAndCountsHandoffs) {
  simt::Device dev(simt::titan_x_pascal());
  Harness h(3);
  h.db.x[0] = -100.0;
  h.db.y[0] = -100.0;
  h.db.x[1] = -100.0;
  h.db.y[1] = -100.0;
  h.db.x[2] = 100.0;
  h.db.y[2] = 100.0;
  h.db.sector[2] = 0;  // previously in another sector -> handoff
  std::vector<std::int32_t> occupancy(16 * 16, 0);
  dev.launch(simt::one_thread_per_item(3, 96), [&](simt::ThreadCtx& ctx) {
    display_kernel(ctx, h.view(), occupancy, 16, h.counters);
  });
  EXPECT_EQ(h.counters[kHandoffs], 1u);
  long long total = 0;
  for (const auto c : occupancy) total += c;
  EXPECT_EQ(total, 3);
  EXPECT_NE(h.db.sector[0], kNone);
}

TEST(CudaKernels, AdvisoryKernelSetsAllBits) {
  simt::Device dev(simt::titan_x_pascal());
  Harness h(2);
  h.db.col[0] = 1;
  h.db.terrain_warn[0] = 1;
  h.db.x[0] = 126.0;
  std::vector<std::uint8_t> flags(2, 0xFF);
  dev.launch(simt::one_thread_per_item(2, 96), [&](simt::ThreadCtx& ctx) {
    advisory_kernel(ctx, h.view(), flags, AdvisoryParams{});
  });
  EXPECT_EQ(flags[0], kAdvConflictBit | kAdvTerrainBit | kAdvBoundaryBit);
  EXPECT_EQ(flags[1], 0);  // clean aircraft cleared
}

TEST(CudaKernels, TerrainKernelMatchesReferenceScan) {
  simt::Device dev(simt::geforce_9800_gt());
  const airfield::TerrainMap terrain(3);
  Harness h(50);
  {
    FlightDb tmp = airfield::make_airfield(50, 8);
    h.db = tmp;
    for (std::size_t i = 0; i < 50; ++i) h.db.alt[i] = 1500.0;
  }
  FlightDb ref_db = h.db;
  const TerrainTaskParams params;
  dev.launch(simt::one_thread_per_item(50, 96), [&](simt::ThreadCtx& ctx) {
    terrain_kernel(ctx, h.view(), terrain, params, h.counters);
  });
  const auto ref_stats =
      tasks::extended::terrain_avoidance(ref_db, terrain, params);
  EXPECT_EQ(h.counters[kTerrainWarnings], ref_stats.warnings);
  EXPECT_EQ(h.counters[kTerrainClimbs], ref_stats.climbs);
  for (std::size_t i = 0; i < 50; ++i) {
    ASSERT_DOUBLE_EQ(h.db.alt[i], ref_db.alt[i]);
    ASSERT_EQ(h.db.terrain_warn[i], ref_db.terrain_warn[i]);
  }
}

TEST(CudaKernels, CheckCollisionPathWritesOnlyOwnAircraft) {
  // Two far-apart aircraft: thread i must never touch record j's state.
  simt::Device dev(simt::titan_x_pascal());
  Harness h(2);
  h.db.x[0] = -100.0;
  h.db.x[1] = 100.0;
  h.db.alt[0] = h.db.alt[1] = 9000.0;
  h.db.dx[0] = -0.01;
  h.db.dx[1] = 0.01;
  std::vector<std::uint8_t> resolved(2, 1);
  dev.launch(simt::one_thread_per_item(2, 96), [&](simt::ThreadCtx& ctx) {
    check_collision_path_kernel(ctx, h.view(), resolved, Task23Params{},
                                h.counters);
  });
  EXPECT_EQ(h.counters[kConflicts], 0u);
  EXPECT_EQ(resolved[0], 0);
  EXPECT_EQ(resolved[1], 0);
  EXPECT_EQ(h.db.col[0], 0);
}

TEST(CudaKernels, OddBlockSizesGiveSameResults) {
  // Launch geometry must never change semantics: 1, 7, and 512 threads
  // per block produce identical collision outcomes.
  const FlightDb initial = airfield::make_airfield(300, 12);
  std::vector<std::uint64_t> conflicts;
  for (const int tpb : {1, 7, 512}) {
    simt::Device dev(simt::titan_x_pascal());
    Harness h(300);
    h.db = initial;
    std::vector<std::uint8_t> resolved(300, 0);
    dev.launch(simt::one_thread_per_item(300, tpb),
               [&](simt::ThreadCtx& ctx) {
                 check_collision_path_kernel(ctx, h.view(), resolved,
                                             Task23Params{}, h.counters);
               });
    conflicts.push_back(h.counters[kConflicts]);
  }
  EXPECT_EQ(conflicts[0], conflicts[1]);
  EXPECT_EQ(conflicts[1], conflicts[2]);
}

}  // namespace
}  // namespace atm::tasks::cuda
