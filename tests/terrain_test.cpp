// Tests for the terrain substrate and the terrain-avoidance task.
#include "src/airfield/terrain.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/airfield/setup.hpp"
#include "src/atm/extended/terrain_task.hpp"

namespace atm {
namespace {

using airfield::TerrainMap;
using airfield::TerrainParams;
using tasks::extended::scan_terrain;
using tasks::extended::scan_terrain_path;
using tasks::extended::terrain_avoidance;
using tasks::TerrainTaskParams;

TEST(TerrainMap, DeterministicPerSeed) {
  const TerrainMap a(7), b(7), c(8);
  for (double x = -120.0; x <= 120.0; x += 17.0) {
    for (double y = -120.0; y <= 120.0; y += 17.0) {
      ASSERT_DOUBLE_EQ(a.elevation_at(x, y), b.elevation_at(x, y));
    }
  }
  bool any_diff = false;
  for (double x = -120.0; x <= 120.0 && !any_diff; x += 17.0) {
    if (a.elevation_at(x, 0.0) != c.elevation_at(x, 0.0)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TerrainMap, ElevationsWithinConfiguredPeak) {
  TerrainParams params;
  params.max_peak_feet = 9000.0;
  const TerrainMap map(3, params);
  EXPECT_NEAR(map.peak_feet(), 9000.0, 1e-6);
  for (double x = -128.0; x <= 128.0; x += 8.0) {
    for (double y = -128.0; y <= 128.0; y += 8.0) {
      const double z = map.elevation_at(x, y);
      ASSERT_GE(z, 0.0);
      ASSERT_LE(z, 9000.0 + 1e-9);
    }
  }
}

TEST(TerrainMap, BilinearIsContinuous) {
  const TerrainMap map(11);
  // Sample pairs a small step apart: elevation must not jump.
  for (double x = -100.0; x < 100.0; x += 13.7) {
    for (double y = -100.0; y < 100.0; y += 11.3) {
      const double z0 = map.elevation_at(x, y);
      const double z1 = map.elevation_at(x + 0.01, y);
      ASSERT_LT(std::fabs(z1 - z0), 50.0) << "jump at " << x << "," << y;
    }
  }
}

TEST(TerrainMap, ClampsOutsideGrid) {
  const TerrainMap map(5);
  EXPECT_DOUBLE_EQ(map.elevation_at(-500.0, 0.0),
                   map.elevation_at(-128.0, 0.0));
  EXPECT_DOUBLE_EQ(map.elevation_at(0.0, 999.0),
                   map.elevation_at(0.0, 128.0));
}

TEST(TerrainScan, HighAircraftNeverWarns) {
  const TerrainMap map(5);  // peak 14000 ft by default
  airfield::FlightDb db(1);
  db.alt[0] = 30000.0;
  db.dx[0] = 0.05;
  const auto scan = scan_terrain(db, 0, map, {});
  EXPECT_FALSE(scan.warn);
}

TEST(TerrainScan, LowAircraftOverPeakWarns) {
  TerrainParams params;
  params.hill_count = 1;
  params.max_peak_feet = 10000.0;
  const TerrainMap map(5, params);
  // Park an aircraft path crossing wherever the single peak is: probe for
  // the highest sampled elevation on a coarse grid first.
  double px = 0.0, py = 0.0, peak = -1.0;
  for (double x = -120.0; x <= 120.0; x += 4.0) {
    for (double y = -120.0; y <= 120.0; y += 4.0) {
      const double z = map.elevation_at(x, y);
      if (z > peak) {
        peak = z;
        px = x;
        py = y;
      }
    }
  }
  ASSERT_GT(peak, 9000.0);
  airfield::FlightDb db(1);
  db.x[0] = px;
  db.y[0] = py;
  db.alt[0] = peak + 200.0;  // within the 1000 ft clearance
  const auto scan = scan_terrain(db, 0, map, {});
  EXPECT_TRUE(scan.warn);
  EXPECT_GE(scan.required_alt_feet, peak + 1000.0);
}

TEST(TerrainTask, ClimbRestoresClearanceAlongPath) {
  const TerrainMap map(21);
  airfield::FlightDb db = airfield::make_airfield(400, 5);
  // Force everyone low so warnings are plentiful.
  for (std::size_t i = 0; i < db.size(); ++i) db.alt[i] = 500.0;
  const auto stats = terrain_avoidance(db, map, {});
  EXPECT_GT(stats.warnings, 0u);
  EXPECT_EQ(stats.warnings, stats.climbs);  // everyone low had to climb
  // After climbing, a re-scan reports no warnings.
  const auto again = terrain_avoidance(db, map, {});
  EXPECT_EQ(again.warnings, 0u);
  EXPECT_EQ(again.climbs, 0u);
}

TEST(TerrainTask, SamplesCounterCountsWork) {
  const TerrainMap map(9);
  airfield::FlightDb db = airfield::make_airfield(50, 2);
  TerrainTaskParams params;
  params.samples = 8;
  const auto stats = terrain_avoidance(db, map, params);
  EXPECT_EQ(stats.samples, 50u * 8u);
  EXPECT_EQ(stats.aircraft, 50u);
}

TEST(TerrainTask, WarnFlagClearedWhenPathSafeAgain) {
  const TerrainMap map(9);
  airfield::FlightDb db(1);
  db.alt[0] = 100.0;
  terrain_avoidance(db, map, {});
  // The climb may have fixed it; force the flag and re-run high.
  db.terrain_warn[0] = 1;
  db.alt[0] = 39000.0;
  terrain_avoidance(db, map, {});
  EXPECT_EQ(db.terrain_warn[0], 0);
}

TEST(TerrainScanPath, MatchesDbOverload) {
  const TerrainMap map(4);
  airfield::FlightDb db = airfield::make_airfield(20, 9);
  for (std::size_t i = 0; i < db.size(); ++i) {
    const auto a = scan_terrain(db, i, map, {});
    const auto b = scan_terrain_path(db.x[i], db.y[i], db.dx[i], db.dy[i],
                                     db.alt[i], map, {});
    ASSERT_EQ(a.warn, b.warn);
    ASSERT_DOUBLE_EQ(a.required_alt_feet, b.required_alt_feet);
  }
}

}  // namespace
}  // namespace atm
