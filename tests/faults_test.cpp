// Determinism and semantics of the seeded fault injector
// (src/rt/faults.hpp): the same (seed, config, call sequence) must
// produce bit-identical faulted frames, and each fault family must do
// exactly what it says to a frame.
#include <gtest/gtest.h>

#include <vector>

#include "src/airfield/radar.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/core/rng.hpp"
#include "src/rt/faults.hpp"

namespace atm::rt {
namespace {

airfield::RadarFrame make_frame(std::size_t n, std::uint64_t seed) {
  airfield::RadarFrame frame;
  core::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    frame.rx.push_back(rng.uniform(-128.0, 128.0));
    frame.ry.push_back(rng.uniform(-128.0, 128.0));
    frame.truth.push_back(static_cast<std::int32_t>(i));
  }
  return frame;
}

FaultConfig everything_config() {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.dropout_burst_probability = 0.5;
  cfg.dropout_fraction = 0.3;
  cfg.ghost_probability = 0.05;
  cfg.noise_burst_probability = 0.5;
  cfg.noise_burst_nm = 2.0;
  cfg.stolen_time_probability = 0.25;
  cfg.stolen_time_ms = 100.0;
  return cfg;
}

TEST(FaultInjector, SameSeedProducesBitIdenticalFrames) {
  const FaultConfig cfg = everything_config();
  FaultInjector a(cfg, 42);
  FaultInjector b(cfg, 42);
  for (int period = 0; period < 32; ++period) {
    airfield::RadarFrame fa = make_frame(257, 7u + period);
    airfield::RadarFrame fb = make_frame(257, 7u + period);
    a.apply(fa);
    b.apply(fb);
    ASSERT_EQ(fa.rx, fb.rx) << "period " << period;
    ASSERT_EQ(fa.ry, fb.ry) << "period " << period;
    ASSERT_EQ(fa.truth, fb.truth) << "period " << period;
    ASSERT_EQ(a.steal_ms(), b.steal_ms()) << "period " << period;
  }
  EXPECT_EQ(a.total_dropouts(), b.total_dropouts());
  EXPECT_EQ(a.total_ghosts(), b.total_ghosts());
  EXPECT_EQ(a.total_stolen_ms(), b.total_stolen_ms());
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  const FaultConfig cfg = everything_config();
  FaultInjector a(cfg, 42);
  FaultInjector b(cfg, 43);
  bool diverged = false;
  for (int period = 0; period < 16 && !diverged; ++period) {
    airfield::RadarFrame fa = make_frame(257, 7u + period);
    airfield::RadarFrame fb = make_frame(257, 7u + period);
    a.apply(fa);
    b.apply(fb);
    diverged = fa.rx != fb.rx;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, DisabledInjectorNeverTouchesAFrame) {
  FaultConfig cfg = everything_config();
  cfg.enabled = false;
  FaultInjector inj(cfg, 42);
  airfield::RadarFrame frame = make_frame(100, 9);
  const airfield::RadarFrame before = frame;
  const FrameFaultSummary summary = inj.apply(frame);
  EXPECT_EQ(frame.rx, before.rx);
  EXPECT_EQ(frame.ry, before.ry);
  EXPECT_EQ(summary.dropouts, 0u);
  EXPECT_EQ(summary.ghosts, 0u);
  EXPECT_FALSE(summary.noise_burst);
  EXPECT_DOUBLE_EQ(inj.steal_ms(), 0.0);
}

TEST(FaultInjector, DropoutsReplaceReturnsWithTheSentinel) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.dropout_burst_probability = 1.0;
  cfg.dropout_fraction = 1.0;
  FaultInjector inj(cfg, 1);
  airfield::RadarFrame frame = make_frame(64, 2);
  const FrameFaultSummary summary = inj.apply(frame);
  EXPECT_EQ(summary.dropouts, 64u);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_GE(frame.rx[i], airfield::kDropoutCoordinate);
    EXPECT_GE(frame.ry[i], airfield::kDropoutCoordinate);
  }
  // Frame size is invariant under every fault family.
  EXPECT_EQ(frame.size(), 64u);
}

TEST(FaultInjector, GhostsDuplicateAnotherReturnInPlace) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.ghost_probability = 1.0;
  FaultInjector inj(cfg, 3);
  airfield::RadarFrame frame = make_frame(128, 4);
  const airfield::RadarFrame before = frame;
  const FrameFaultSummary summary = inj.apply(frame);
  EXPECT_GT(summary.ghosts, 0u);
  EXPECT_EQ(frame.size(), before.size());
  // Every return still holds a value that exists somewhere in the frame's
  // lineage: either its own original echo or a copy of another slot.
  std::size_t moved = 0;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    if (frame.truth[i] != before.truth[i]) ++moved;
  }
  // A chain of ghosts can coincidentally restore a slot's original truth,
  // so moved is bounded by — not equal to — the ghost count.
  EXPECT_GT(moved, 0u);
  EXPECT_LE(moved, summary.ghosts);
}

TEST(FaultInjector, StolenTimeIsAllOrNothingPerPeriod) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.stolen_time_probability = 0.5;
  cfg.stolen_time_ms = 42.0;
  FaultInjector inj(cfg, 5);
  std::uint64_t events = 0;
  for (int i = 0; i < 400; ++i) {
    const double ms = inj.steal_ms();
    if (ms > 0.0) {
      EXPECT_DOUBLE_EQ(ms, 42.0);
      ++events;
    }
  }
  EXPECT_EQ(inj.total_steal_events(), events);
  EXPECT_DOUBLE_EQ(inj.total_stolen_ms(), 42.0 * static_cast<double>(events));
  // ~50% rate; a wildly skewed draw would mean the stream is broken.
  EXPECT_GT(events, 120u);
  EXPECT_LT(events, 280u);
}

TEST(FaultedPipeline, SameSeedSameFaultsSameResult) {
  // End to end: a faulted virtual-mode run is a pure function of
  // (seed, config) — the whole point of seeding the injector.
  tasks::PipelineConfig cfg;
  cfg.aircraft = 300;
  cfg.major_cycles = 2;
  cfg.faults = everything_config();
  cfg.faults.stolen_time_ms = 30.0;
  auto a = tasks::make_titan_x_pascal();
  auto b = tasks::make_titan_x_pascal();
  const tasks::PipelineResult ra = tasks::run_pipeline(*a, cfg);
  const tasks::PipelineResult rb = tasks::run_pipeline(*b, cfg);
  EXPECT_EQ(ra.virtual_end_ms, rb.virtual_end_ms);
  EXPECT_EQ(ra.last_task1, rb.last_task1);
  EXPECT_EQ(ra.last_task23, rb.last_task23);
  ASSERT_EQ(ra.periods.size(), rb.periods.size());
  for (std::size_t i = 0; i < ra.periods.size(); ++i) {
    EXPECT_EQ(ra.periods[i].task1_ms, rb.periods[i].task1_ms);
    EXPECT_EQ(ra.periods[i].stolen_ms, rb.periods[i].stolen_ms);
  }
  EXPECT_TRUE(a->state().same_flight_state(b->state()));
}

TEST(FaultedPipeline, DropoutsReduceMatchesButTrackingSurvives) {
  tasks::PipelineConfig cfg;
  cfg.aircraft = 400;
  cfg.major_cycles = 1;
  auto clean_backend = tasks::make_reference();
  const tasks::PipelineResult clean =
      tasks::run_pipeline(*clean_backend, cfg);
  cfg.faults.enabled = true;
  cfg.faults.dropout_burst_probability = 1.0;
  cfg.faults.dropout_fraction = 0.3;
  auto faulted_backend = tasks::make_reference();
  const tasks::PipelineResult faulted =
      tasks::run_pipeline(*faulted_backend, cfg);
  // Roughly 30% of returns vanish every period: fewer matches, but the
  // tracker keeps the majority of the fleet.
  EXPECT_LT(faulted.last_task1.matched, clean.last_task1.matched);
  EXPECT_GT(faulted.last_task1.matched, 400u / 2);
  EXPECT_GT(faulted.last_task1.unmatched_radars, 0u);
}

}  // namespace
}  // namespace atm::rt
