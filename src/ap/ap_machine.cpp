#include "src/ap/ap_machine.hpp"

#include <algorithm>
#include <stdexcept>

namespace atm::ap {

ApCostModel staran_model() {
  // STARAN's multi-dimensional access memory performed field operations
  // bit-serially across all PEs. We keep that structure (32-bit fields,
  // one cycle per bit) and scale the clock to 200 MHz, following [13]'s
  // practice of projecting the AP design onto modern silicon for
  // comparison. One word op = 32 / 200 MHz = 0.16 us, independent of
  // aircraft count — calibrated so the AP meets every deadline across the
  // swept aircraft range (the paper's central AP claim) while staying well
  // above the NVIDIA cards' modeled times.
  return ApCostModel{
      .name = "STARAN AP (200 MHz projection)",
      .clock_mhz = 200.0,
      .word_bits = 32,
      .cycles_per_bit = 1.0,
      .responder_cycles = 8.0,
  };
}

ApMachine::ApMachine(std::size_t pe_records, ApCostModel model)
    : n_(pe_records), model_(std::move(model)) {
  if (model_.clock_mhz <= 0.0) {
    throw std::invalid_argument("ApMachine: clock must be positive");
  }
}

double ApMachine::elapsed_ms() const {
  return cycles_ / (model_.clock_mhz * 1e6) * 1e3;
}

void ApMachine::reset() {
  cycles_ = 0.0;
  word_ops_ = 0;
}

void ApMachine::charge_word_ops(int count) {
  cycles_ += model_.word_op_cycles() * count;
  word_ops_ += static_cast<Cycles>(count);
}

void ApMachine::charge_responder_op() { cycles_ += model_.responder_cycles; }

bool ApMachine::any_responder(const Mask& mask) {
  charge_responder_op();
  return std::any_of(mask.begin(), mask.end(),
                     [](std::uint8_t m) { return m != 0; });
}

std::size_t ApMachine::first_responder(const Mask& mask) {
  charge_responder_op();
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) return i;
  }
  return npos;
}

std::size_t ApMachine::count_responders(const Mask& mask) {
  charge_responder_op();
  std::size_t count = 0;
  for (const auto m : mask) count += m ? 1 : 0;
  return count;
}

std::size_t ApMachine::min_index(std::span<const double> keys,
                                 const Mask& mask) {
  // Bit-serial search: one responder round per bit of the key field.
  cycles_ += model_.word_op_cycles() + model_.responder_cycles *
                                           static_cast<double>(
                                               model_.word_bits);
  std::size_t best = npos;
  for (std::size_t i = 0; i < keys.size() && i < mask.size(); ++i) {
    if (!mask[i]) continue;
    if (best == npos || keys[i] < keys[best]) best = i;
  }
  return best;
}

std::size_t ApMachine::max_index(std::span<const double> keys,
                                 const Mask& mask) {
  cycles_ += model_.word_op_cycles() + model_.responder_cycles *
                                           static_cast<double>(
                                               model_.word_bits);
  std::size_t best = npos;
  for (std::size_t i = 0; i < keys.size() && i < mask.size(); ++i) {
    if (!mask[i]) continue;
    if (best == npos || keys[i] > keys[best]) best = i;
  }
  return best;
}

}  // namespace atm::ap
