// An associative processor (AP) in the STARAN tradition.
//
// The AP model (Potter, Baker et al. [6, 7] in the paper) is a SIMD array
// whose hardware supports, in *constant time with respect to the number of
// PEs*:
//
//   * broadcast of a scalar from the control unit to all PEs,
//   * associative search: every PE compares its record against the
//     broadcast value and raises a responder bit,
//   * responder detection (wired-OR "any responders?"),
//   * responder selection ("step": pick the first responder),
//   * global maximum/minimum across a field (bit-serial Falkoff search).
//
// One aircraft record lives in one PE, so an ATM task that loops once over
// all aircraft — performing only constant-time associative operations per
// iteration — runs in linear time, which is exactly the [12, 13] result the
// paper compares against.
//
// The machine here executes the operations on host vectors and charges each
// operation's cost to a bit-serial cycle model. Two calibrations are
// provided:
//
//   * staran_model(): the STARAN AP with its clock scaled to a modern
//     implementation (the comparison in [13] projects the 1970s design to
//     contemporary silicon; a literal 1972 clock would put every platform's
//     curve off the top of the figures),
//   * an emulated AP on the ClearSpeed parts is built separately on
//     src/simd's LockstepMachine (see atm/clearspeed_backend), where the
//     constant-time guarantee is lost to virtualization rounds.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace atm::ap {

using Cycles = std::uint64_t;

/// Cost calibration for an associative processor.
struct ApCostModel {
  std::string name;
  double clock_mhz = 200.0;  ///< Array clock.
  int word_bits = 32;        ///< Field width processed bit-serially.
  /// Cycles per bit for a bit-serial field operation across all PEs.
  double cycles_per_bit = 4.0;
  /// Cycles for responder logic (any/step/count) — truly constant-time
  /// hardware paths.
  double responder_cycles = 8.0;

  /// Cycles for one full-word associative/arithmetic operation.
  [[nodiscard]] double word_op_cycles() const {
    return static_cast<double>(word_bits) * cycles_per_bit;
  }
};

/// STARAN AP projected to a modern clock (see header comment).
[[nodiscard]] ApCostModel staran_model();

/// Responder mask: one byte per PE (nonzero = responding).
using Mask = std::vector<std::uint8_t>;

/// The associative machine. Record fields are caller-owned vectors (one
/// element per PE); the machine provides the associative operations and
/// accounts their cost.
class ApMachine {
 public:
  ApMachine(std::size_t pe_records, ApCostModel model);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] const ApCostModel& model() const { return model_; }
  [[nodiscard]] double elapsed_ms() const;
  [[nodiscard]] Cycles charged_word_ops() const { return word_ops_; }
  void reset();

  /// Broadcast + associative search: mask[i] = pred(i) for all PEs in
  /// parallel. Constant time (one word op) regardless of n. `word_ops` is
  /// the number of field comparisons the search performs per PE.
  template <typename Pred>
  void search(Pred&& pred, Mask& mask, int word_ops = 1) {
    mask.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      mask[i] = pred(i) ? 1 : 0;
    }
    charge_word_ops(word_ops);
  }

  /// Masked parallel field computation: fn(i) for every responder.
  /// Constant time; `word_ops` is the per-PE instruction count.
  template <typename F>
  void parallel(const Mask& mask, F&& fn, int word_ops = 1) {
    for (std::size_t i = 0; i < n_; ++i) {
      if (mask[i]) fn(i);
    }
    charge_word_ops(word_ops);
  }

  /// Unmasked parallel computation over all PEs.
  template <typename F>
  void parallel_all(F&& fn, int word_ops = 1) {
    for (std::size_t i = 0; i < n_; ++i) fn(i);
    charge_word_ops(word_ops);
  }

  /// Wired-OR responder test: is any PE responding? Constant time.
  [[nodiscard]] bool any_responder(const Mask& mask);

  /// Select the first responder (the AP "step" operation). Returns npos
  /// when no PE responds. Constant time in hardware.
  [[nodiscard]] std::size_t first_responder(const Mask& mask);

  /// Count responders (hardware population count). Constant time.
  [[nodiscard]] std::size_t count_responders(const Mask& mask);

  /// Global minimum of `keys` over responders: index of the smallest value,
  /// npos when none respond. Bit-serial Falkoff search: word_bits responder
  /// rounds, independent of n.
  [[nodiscard]] std::size_t min_index(std::span<const double> keys,
                                      const Mask& mask);

  /// Global maximum, same cost as min_index.
  [[nodiscard]] std::size_t max_index(std::span<const double> keys,
                                      const Mask& mask);

  /// Charge for control-unit access to a single PE's record, or for a
  /// control-unit broadcast of a scalar (both are word operations on the
  /// common register path).
  void host_access(int word_ops = 1) { charge_word_ops(word_ops); }

  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

 private:
  void charge_word_ops(int count);
  void charge_responder_op();

  std::size_t n_;
  ApCostModel model_;
  double cycles_ = 0.0;
  Cycles word_ops_ = 0;
};

}  // namespace atm::ap
