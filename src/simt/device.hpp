// The SIMT execution engine: kernel launches, the cycle-level cost model,
// and the host<->device transfer model.
//
// This stands in for the CUDA runtime + GPU in the paper's experiments.
// Logical CUDA threads are executed on the host (one at a time, optionally
// in a shuffled order to flush out ordering assumptions); each thread
// charges cycles for the work it does; the engine folds the per-thread
// cycle counts into a modeled kernel wall time for the configured device:
//
//   warp cycles   W_i  = max over the warp's threads of charged cycles
//                        (lock-step execution: divergence costs the warp
//                        the longest lane, like a real GPU)
//   block cycles  B    = max( max_i W_i,  sum_i W_i * warp_size / cores_per_sm )
//                        (latency bound vs. issue-throughput bound)
//   kernel cycles      = max over SMs of the sum of block cycles assigned
//                        round-robin (blocks are distributed over SMs)
//   kernel time        = launch overhead + kernel cycles / clock
//
// Transfers are modeled as latency + bytes / PCIe bandwidth.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/core/rng.hpp"
#include "src/simt/buffer.hpp"
#include "src/simt/context.hpp"
#include "src/simt/device_spec.hpp"
#include "src/simt/dim3.hpp"

namespace atm::simt {

/// Grid/block shape for a launch, like the <<<grid, block>>> triple.
struct LaunchConfig {
  Dim3 grid;
  Dim3 block;
};

/// Build the paper's 1-D launch shape: `threads_per_block` threads per
/// block (96 in the paper) and as many blocks as needed to cover n items.
[[nodiscard]] LaunchConfig one_thread_per_item(std::uint64_t n,
                                               int threads_per_block);

/// Timing/occupancy report for one kernel launch.
struct LaunchStats {
  double modeled_ms = 0.0;       ///< Modeled kernel wall time on the device.
  std::uint64_t cycles = 0;      ///< Modeled kernel cycles (critical SM).
  std::uint64_t total_thread_cycles = 0;  ///< Sum of all threads' charges.
  std::uint64_t blocks = 0;
  std::uint64_t threads = 0;     ///< Total logical threads executed.
};

/// Timing report for one host<->device transfer.
struct TransferStats {
  double modeled_ms = 0.0;
  std::uint64_t bytes = 0;
};

/// Cumulative device counters since construction or reset().
struct DeviceTotals {
  double kernel_ms = 0.0;
  double transfer_ms = 0.0;
  std::uint64_t launches = 0;
  std::uint64_t transfers = 0;
  std::uint64_t bytes_moved = 0;
};

/// In which order logical threads run on the host. Real GPUs give no
/// ordering guarantees between threads; `kShuffled` randomizes the
/// execution order so tests can verify kernels don't depend on one.
enum class ThreadOrder { kSequential, kShuffled };

/// A simulated CUDA device.
class Device {
 public:
  explicit Device(DeviceSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] const DeviceTotals& totals() const { return totals_; }
  void reset_totals() { totals_ = {}; }

  void set_thread_order(ThreadOrder order) { order_ = order; }
  void set_shuffle_seed(std::uint64_t seed) { shuffle_seed_ = seed; }

  /// Allocate a device buffer of n elements of T.
  template <typename T>
  [[nodiscard]] DeviceBuffer<T> alloc(std::size_t n) const {
    return DeviceBuffer<T>(n);
  }

  /// Model a host<->device transfer of `bytes` for storage the caller
  /// manages itself (the ATM backends keep their SoA arrays device-resident
  /// and call this exactly where the paper's program has a cudaMemcpy).
  TransferStats transfer(std::uint64_t bytes) {
    return account_transfer(bytes);
  }

  /// cudaMemcpy(HostToDevice): copy `host` into `dst` and model the cost.
  template <typename T>
  TransferStats copy_to_device(DeviceBuffer<T>& dst,
                               std::span<const T> host) {
    if (host.size() != dst.size()) {
      throw std::invalid_argument("copy_to_device: size mismatch");
    }
    std::copy(host.begin(), host.end(), dst.span().begin());
    return account_transfer(host.size_bytes());
  }

  /// cudaMemcpy(DeviceToHost): copy `src` into `host` and model the cost.
  template <typename T>
  TransferStats copy_to_host(std::span<T> host,
                             const DeviceBuffer<T>& src) {
    if (host.size() != src.size()) {
      throw std::invalid_argument("copy_to_host: size mismatch");
    }
    std::copy(src.span().begin(), src.span().end(), host.begin());
    return account_transfer(host.size_bytes());
  }

  /// Launch a barrier-free kernel: `kernel(ThreadCtx&)` is run once per
  /// logical thread. This covers all four kernels of the paper's program
  /// (their global synchronization points are kernel boundaries).
  template <typename Kernel>
  LaunchStats launch(const LaunchConfig& cfg, Kernel&& kernel) {
    return launch_phased(cfg, 1,
                         [&kernel](ThreadCtx& ctx, int) { kernel(ctx); });
  }

  /// Launch a kernel with per-block __shared__ memory: each block gets a
  /// zero-initialized scratch of `count` Ts (validated against the
  /// device's shared_mem_per_block) that lives across the barrier phases;
  /// `kernel(ThreadCtx&, std::span<T> shared, int phase)`. Shared-memory
  /// accesses should be charged at cost::kSharedAccess by the kernel.
  template <typename T, typename Kernel>
  LaunchStats launch_shared(const LaunchConfig& cfg, std::size_t count,
                            int phases, Kernel&& kernel) {
    if (count * sizeof(T) >
        static_cast<std::size_t>(spec_.shared_mem_per_block)) {
      throw std::invalid_argument(
          "launch_shared: block shared memory exceeds device limit of " +
          std::to_string(spec_.shared_mem_per_block) + " bytes");
    }
    std::vector<T> shared(count);
    // Blocks execute one after another; zero the scratch when the first
    // thread of a new block runs (order-independent: whichever thread the
    // engine schedules first trips the reset before any block thread
    // touches the scratch).
    std::uint64_t last_block = ~std::uint64_t{0};
    return launch_phased(
        cfg, phases,
        [&kernel, &shared, &last_block, count](ThreadCtx& ctx, int phase) {
          const std::uint64_t block =
              linear_index(ctx.block_idx(), ctx.grid_dim());
          if (phase == 0 && block != last_block) {
            std::fill(shared.begin(), shared.end(), T{});
            last_block = block;
          }
          kernel(ctx, std::span<T>(shared.data(), count), phase);
        });
  }

  /// Launch a kernel with `phases` block-wide barrier phases:
  /// `kernel(ThreadCtx&, int phase)` is run for phase = 0..phases-1 with an
  /// implicit __syncthreads() between phases. Per-thread cycle charges
  /// accumulate across phases.
  template <typename Kernel>
  LaunchStats launch_phased(const LaunchConfig& cfg, int phases,
                            Kernel&& kernel) {
    validate(cfg);
    LaunchStats stats;
    stats.blocks = cfg.grid.count();
    stats.threads = stats.blocks * cfg.block.count();

    const auto tpb = static_cast<std::size_t>(cfg.block.count());
    std::vector<cost::Cycles> thread_cycles(tpb);
    std::vector<std::size_t> order(tpb);
    std::iota(order.begin(), order.end(), std::size_t{0});
    core::Rng shuffle_rng(shuffle_seed_);

    std::vector<std::uint64_t> sm_load(
        static_cast<std::size_t>(spec_.sm_count), 0);

    std::uint64_t block_linear = 0;
    for (std::uint32_t bz = 0; bz < cfg.grid.z; ++bz) {
      for (std::uint32_t by = 0; by < cfg.grid.y; ++by) {
        for (std::uint32_t bx = 0; bx < cfg.grid.x; ++bx) {
          run_block(cfg, Dim3{bx, by, bz}, phases, kernel, thread_cycles,
                    order, shuffle_rng);
          const std::uint64_t block_cycles =
              block_cost(thread_cycles, stats.total_thread_cycles);
          sm_load[block_linear % sm_load.size()] += block_cycles;
          ++block_linear;
        }
      }
    }

    stats.cycles = *std::max_element(sm_load.begin(), sm_load.end());
    stats.modeled_ms = spec_.launch_overhead_us * 1e-3 +
                       static_cast<double>(stats.cycles) /
                           (spec_.clock_ghz * 1e9) * 1e3;
    totals_.kernel_ms += stats.modeled_ms;
    ++totals_.launches;
    return stats;
  }

 private:
  void validate(const LaunchConfig& cfg) const;
  TransferStats account_transfer(std::uint64_t bytes);

  /// Fold one block's per-thread cycle counts into the block cost.
  [[nodiscard]] std::uint64_t block_cost(
      std::span<const cost::Cycles> thread_cycles,
      std::uint64_t& total_accumulator) const;

  template <typename Kernel>
  void run_block(const LaunchConfig& cfg, const Dim3& block_idx, int phases,
                 Kernel&& kernel, std::vector<cost::Cycles>& thread_cycles,
                 std::vector<std::size_t>& order, core::Rng& shuffle_rng) {
    std::fill(thread_cycles.begin(), thread_cycles.end(), cost::Cycles{0});
    for (int phase = 0; phase < phases; ++phase) {
      if (order_ == ThreadOrder::kShuffled) {
        // Fisher-Yates with the device's deterministic shuffle stream.
        for (std::size_t i = order.size(); i > 1; --i) {
          const auto j = static_cast<std::size_t>(
              shuffle_rng.uniform_u64(0, i - 1));
          std::swap(order[i - 1], order[j]);
        }
      }
      for (const std::size_t t : order) {
        const auto tx = static_cast<std::uint32_t>(t % cfg.block.x);
        const auto ty =
            static_cast<std::uint32_t>((t / cfg.block.x) % cfg.block.y);
        const auto tz =
            static_cast<std::uint32_t>(t / (static_cast<std::uint64_t>(
                                               cfg.block.x) *
                                           cfg.block.y));
        ThreadCtx ctx(Dim3{tx, ty, tz}, block_idx, cfg.block, cfg.grid);
        ctx.charge(thread_cycles[t]);  // carry charges across phases
        kernel(ctx, phase);
        thread_cycles[t] = ctx.cycles();
      }
    }
  }

  DeviceSpec spec_;
  DeviceTotals totals_;
  ThreadOrder order_ = ThreadOrder::kSequential;
  std::uint64_t shuffle_seed_ = 0x51AFFEULL;
};

}  // namespace atm::simt
