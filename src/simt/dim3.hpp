// CUDA-style 3-component extents and indices.
#pragma once

#include <cstdint>

namespace atm::simt {

/// Mirror of CUDA's dim3: extents default to 1 so 1-D launches read
/// naturally (Dim3{blocks} / Dim3{threads}).
struct Dim3 {
  std::uint32_t x = 1;
  std::uint32_t y = 1;
  std::uint32_t z = 1;

  [[nodiscard]] constexpr std::uint64_t count() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }
  friend constexpr bool operator==(const Dim3&, const Dim3&) = default;
};

/// Linearize an (x, y, z) index within extents `dim` (x fastest, like CUDA).
[[nodiscard]] constexpr std::uint64_t linear_index(const Dim3& idx,
                                                   const Dim3& dim) {
  return idx.x + static_cast<std::uint64_t>(dim.x) *
                     (idx.y + static_cast<std::uint64_t>(dim.y) * idx.z);
}

}  // namespace atm::simt
