#include "src/simt/device_spec.hpp"

namespace atm::simt {

DeviceSpec geforce_9800_gt() {
  // G92 (Tesla architecture): 14 SMs x 8 SPs = 112 cores @ 1.5 GHz shader
  // clock, 256-bit GDDR3 at 57.6 GB/s, PCIe 2.0 x16. CC 1.x limits blocks
  // to 512 threads. Old driver stack: comparatively large fixed overheads.
  return DeviceSpec{
      .name = "GeForce 9800 GT",
      .compute_capability = 10,
      .sm_count = 14,
      .cores_per_sm = 8,
      .clock_ghz = 1.5,
      .mem_bandwidth_gbps = 57.6,
      .pcie_bandwidth_gbps = 3.0,
      .launch_overhead_us = 15.0,
      .transfer_latency_us = 20.0,
      .max_threads_per_block = 512,
      .shared_mem_per_block = 16 * 1024,  // CC 1.x
      .warp_size = 32,
  };
}

DeviceSpec gtx_880m() {
  // GK104 (Kepler): 8 SMX x 192 cores = 1536 cores @ 954 MHz, 256-bit
  // GDDR5 at 160 GB/s, PCIe 3.0 (laptop). CC 3.0.
  return DeviceSpec{
      .name = "GTX 880M",
      .compute_capability = 30,
      .sm_count = 8,
      .cores_per_sm = 192,
      .clock_ghz = 0.954,
      .mem_bandwidth_gbps = 160.0,
      .pcie_bandwidth_gbps = 6.0,
      .launch_overhead_us = 8.0,
      .transfer_latency_us = 12.0,
      .max_threads_per_block = 1024,
      .warp_size = 32,
  };
}

DeviceSpec titan_x_pascal() {
  // GP102 (Pascal): 28 SMs x 128 cores = 3584 cores @ 1.417 GHz boost,
  // 384-bit GDDR5X at 480 GB/s, PCIe 3.0. CC 6.1.
  return DeviceSpec{
      .name = "Titan X (Pascal)",
      .compute_capability = 61,
      .sm_count = 28,
      .cores_per_sm = 128,
      .clock_ghz = 1.417,
      .mem_bandwidth_gbps = 480.0,
      .pcie_bandwidth_gbps = 12.0,
      .launch_overhead_us = 5.0,
      .transfer_latency_us = 8.0,
      .max_threads_per_block = 1024,
      .warp_size = 32,
  };
}

std::vector<DeviceSpec> paper_device_catalog() {
  return {geforce_9800_gt(), gtx_880m(), titan_x_pascal()};
}

}  // namespace atm::simt
