// Device global-memory buffers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace atm::simt {

/// A buffer living in simulated device global memory. Host code must move
/// data in and out through Device::copy_to_device / copy_to_host so the
/// transfer cost model sees the traffic; kernels receive spans of the
/// device-side storage.
///
/// (The storage is host RAM, of course — the point of the type is to make
/// the host/device boundary explicit in the ATM backends exactly where the
/// paper's CUDA program has cudaMemcpy calls.)
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  explicit DeviceBuffer(std::size_t n) : data_(n) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t bytes() const { return data_.size() * sizeof(T); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Device-side view for kernels.
  [[nodiscard]] std::span<T> span() { return data_; }
  [[nodiscard]] std::span<const T> span() const { return data_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  std::vector<T> data_;
};

}  // namespace atm::simt
