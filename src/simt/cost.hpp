// Cycle costs for the SIMT cost model.
//
// Kernels running on the engine charge their work explicitly through
// ThreadCtx::charge(). These constants define the charge for each class of
// operation, in SM issue cycles per thread. They are deliberately coarse
// (this is a throughput model, not a pipeline simulator): what matters for
// reproducing the paper's figures is that per-thread work scales with the
// loop trip counts the algorithms actually execute, and that the
// SM-count/clock differences between the three cards translate into the
// measured device ordering.
#pragma once

#include <cstdint>

namespace atm::simt::cost {

using Cycles = std::uint64_t;

/// Simple ALU / FP32 arithmetic op (add, mul, compare, select).
inline constexpr Cycles kAlu = 1;
/// Fused multiply-add (counted as one issue).
inline constexpr Cycles kFma = 1;
/// Floating divide / sqrt / transcendental (multi-cycle SFU path).
inline constexpr Cycles kDiv = 8;
/// sin/cos/rotation via SFU.
inline constexpr Cycles kTrig = 12;
/// Coalesced global memory load/store, amortized per element.
inline constexpr Cycles kGlobalAccess = 4;
/// Shared-memory (per-block scratch) load/store.
inline constexpr Cycles kSharedAccess = 2;
/// Non-coalesced (scattered) global access, amortized per element.
inline constexpr Cycles kScatterAccess = 16;
/// Global-memory atomic operation.
inline constexpr Cycles kAtomic = 24;
/// Taken branch / loop bookkeeping per iteration.
inline constexpr Cycles kBranch = 1;

}  // namespace atm::simt::cost
