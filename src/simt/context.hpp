// Per-thread kernel execution context (the "built-ins" a CUDA kernel sees).
#pragma once

#include <cstdint>

#include "src/simt/cost.hpp"
#include "src/simt/dim3.hpp"

namespace atm::simt {

/// Execution context handed to a kernel body for one logical CUDA thread.
/// Exposes the CUDA built-ins (threadIdx, blockIdx, blockDim, gridDim), the
/// cost-accounting hook, and sequentially-consistent "atomics".
///
/// The engine executes logical threads one at a time on the host, so the
/// atomic helpers are plain read-modify-write operations — but kernels must
/// still use them wherever real CUDA code would need an atomic, because
/// (a) they charge the atomic's cycle cost and (b) the engine's
/// shuffled-execution mode (see Device::set_thread_order) exists precisely
/// to shake out order dependences that a real GPU would expose.
class ThreadCtx {
 public:
  ThreadCtx(Dim3 thread_idx, Dim3 block_idx, Dim3 block_dim, Dim3 grid_dim)
      : thread_idx_(thread_idx),
        block_idx_(block_idx),
        block_dim_(block_dim),
        grid_dim_(grid_dim) {}

  [[nodiscard]] const Dim3& thread_idx() const { return thread_idx_; }
  [[nodiscard]] const Dim3& block_idx() const { return block_idx_; }
  [[nodiscard]] const Dim3& block_dim() const { return block_dim_; }
  [[nodiscard]] const Dim3& grid_dim() const { return grid_dim_; }

  /// blockIdx.x * blockDim.x + threadIdx.x — the 1-D global id the paper's
  /// kernels use to pick "their" aircraft / radar.
  [[nodiscard]] std::uint64_t global_id() const {
    return static_cast<std::uint64_t>(block_idx_.x) * block_dim_.x +
           thread_idx_.x;
  }

  /// Charge `cycles` of issue time to this thread.
  void charge(cost::Cycles cycles) { cycles_ += cycles; }

  /// Total cycles charged so far by this thread.
  [[nodiscard]] cost::Cycles cycles() const { return cycles_; }

  // ---- Atomics (charge kAtomic and perform the op) -----------------------

  /// atomicCAS: if *addr == expected, set *addr = desired. Returns the old
  /// value (CUDA semantics).
  template <typename T>
  T atomic_cas(T& addr, T expected, T desired) {
    charge(cost::kAtomic);
    const T old = addr;
    if (old == expected) addr = desired;
    return old;
  }

  /// atomicExch: store and return the previous value.
  template <typename T>
  T atomic_exch(T& addr, T value) {
    charge(cost::kAtomic);
    const T old = addr;
    addr = value;
    return old;
  }

  /// atomicMin returning the previous value.
  template <typename T>
  T atomic_min(T& addr, T value) {
    charge(cost::kAtomic);
    const T old = addr;
    if (value < old) addr = value;
    return old;
  }

  /// atomicAdd returning the previous value.
  template <typename T>
  T atomic_add(T& addr, T value) {
    charge(cost::kAtomic);
    const T old = addr;
    addr = old + value;
    return old;
  }

 private:
  Dim3 thread_idx_;
  Dim3 block_idx_;
  Dim3 block_dim_;
  Dim3 grid_dim_;
  cost::Cycles cycles_ = 0;
};

}  // namespace atm::simt
