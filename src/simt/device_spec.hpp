// Device descriptions and the catalog of the paper's three NVIDIA cards.
//
// The paper evaluates a GeForce 9800 GT (compute capability 1.0), a
// GTX 880M (CC 3.0), and a Titan X Pascal (CC 6.1). We have no CUDA
// hardware in this environment, so each card is described by the published
// micro-architectural parameters that drive our cycle-level cost model:
// SM count, CUDA cores per SM, core clock, memory and PCIe bandwidth, and
// fixed launch/transfer overheads. The model (see device.hpp) converts
// per-thread cycle counts produced by kernel execution into a modeled
// wall time for that card.
#pragma once

#include <string>
#include <vector>

namespace atm::simt {

/// Static description of a CUDA-capable device as used by the cost model.
struct DeviceSpec {
  std::string name;
  /// Compute capability, major.minor packed as major*10+minor (10, 30, 61).
  int compute_capability = 0;
  /// Number of streaming multiprocessors.
  int sm_count = 1;
  /// CUDA cores (FP32 lanes) per SM; the throughput width of one SM.
  int cores_per_sm = 1;
  /// Core clock in GHz.
  double clock_ghz = 1.0;
  /// Device memory bandwidth in GB/s (used for global-memory traffic).
  double mem_bandwidth_gbps = 100.0;
  /// Host<->device transfer bandwidth in GB/s (PCIe generation dependent).
  double pcie_bandwidth_gbps = 3.0;
  /// Fixed kernel launch overhead in microseconds.
  double launch_overhead_us = 5.0;
  /// Fixed per-transfer latency in microseconds (driver + DMA setup).
  double transfer_latency_us = 10.0;
  /// Hardware limit on threads per block.
  int max_threads_per_block = 1024;
  /// Shared memory available to one block, in bytes.
  int shared_mem_per_block = 48 * 1024;
  /// Warp width (32 on every NVIDIA architecture the paper uses).
  int warp_size = 32;

  /// Total CUDA cores on the device.
  [[nodiscard]] int total_cores() const { return sm_count * cores_per_sm; }
};

/// The three cards from the paper's Section 6.1, with published specs.
[[nodiscard]] DeviceSpec geforce_9800_gt();
[[nodiscard]] DeviceSpec gtx_880m();
[[nodiscard]] DeviceSpec titan_x_pascal();

/// All three paper cards, slowest first (the ordering the figures use).
[[nodiscard]] std::vector<DeviceSpec> paper_device_catalog();

}  // namespace atm::simt
