#include "src/simt/device.hpp"

#include <stdexcept>

namespace atm::simt {

LaunchConfig one_thread_per_item(std::uint64_t n, int threads_per_block) {
  if (threads_per_block <= 0) {
    throw std::invalid_argument("one_thread_per_item: threads_per_block");
  }
  const auto tpb = static_cast<std::uint64_t>(threads_per_block);
  const std::uint64_t blocks = n == 0 ? 1 : (n + tpb - 1) / tpb;
  return LaunchConfig{
      .grid = Dim3{static_cast<std::uint32_t>(blocks), 1, 1},
      .block = Dim3{static_cast<std::uint32_t>(tpb), 1, 1},
  };
}

void Device::validate(const LaunchConfig& cfg) const {
  if (cfg.grid.count() == 0 || cfg.block.count() == 0) {
    throw std::invalid_argument("launch: empty grid or block");
  }
  if (cfg.block.count() >
      static_cast<std::uint64_t>(spec_.max_threads_per_block)) {
    throw std::invalid_argument("launch: block exceeds device limit of " +
                                std::to_string(spec_.max_threads_per_block) +
                                " threads");
  }
}

TransferStats Device::account_transfer(std::uint64_t bytes) {
  TransferStats ts;
  ts.bytes = bytes;
  ts.modeled_ms = spec_.transfer_latency_us * 1e-3 +
                  static_cast<double>(bytes) /
                      (spec_.pcie_bandwidth_gbps * 1e9) * 1e3;
  totals_.transfer_ms += ts.modeled_ms;
  totals_.bytes_moved += bytes;
  ++totals_.transfers;
  return ts;
}

std::uint64_t Device::block_cost(std::span<const cost::Cycles> thread_cycles,
                                 std::uint64_t& total_accumulator) const {
  const auto warp = static_cast<std::size_t>(spec_.warp_size);
  std::uint64_t warp_sum = 0;   // sum over warps of the warp's max lane
  std::uint64_t warp_max = 0;   // longest single warp (critical path)
  for (std::size_t base = 0; base < thread_cycles.size(); base += warp) {
    std::uint64_t w = 0;
    const std::size_t end = std::min(base + warp, thread_cycles.size());
    for (std::size_t t = base; t < end; ++t) {
      w = std::max(w, thread_cycles[t]);
      total_accumulator += thread_cycles[t];
    }
    warp_sum += w;
    warp_max = std::max(warp_max, w);
  }
  // Issue-throughput bound: each warp-cycle occupies warp_size lanes;
  // the SM has cores_per_sm lanes, so the block needs
  // warp_sum * warp_size / cores_per_sm cycles of issue bandwidth.
  const std::uint64_t throughput_bound =
      (warp_sum * static_cast<std::uint64_t>(spec_.warp_size) +
       static_cast<std::uint64_t>(spec_.cores_per_sm) - 1) /
      static_cast<std::uint64_t>(spec_.cores_per_sm);
  return std::max(warp_max, throughput_bound);
}

}  // namespace atm::simt
