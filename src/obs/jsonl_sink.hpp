// TraceSink writing one JSON object per line (JSONL), the interchange
// format consumed by tools/trace_summary.py and tools/plot_figures.py.
// Fields carrying their sentinel defaults are omitted, so every line
// contains exactly the fields meaningful for its event kind (the schema
// is documented field-by-field in docs/TRACING.md).
#pragma once

#include <fstream>
#include <mutex>
#include <ostream>
#include <string>

#include "src/obs/trace.hpp"

namespace atm::obs {

class JsonlTraceSink final : public TraceSink {
 public:
  /// Open `path` for writing (truncating). `ok()` reports failure —
  /// recording into a failed sink is a safe no-op.
  explicit JsonlTraceSink(const std::string& path);

  /// Write to a caller-owned stream (kept alive by the caller).
  explicit JsonlTraceSink(std::ostream& out);

  void record(const TraceEvent& event) override;
  void flush() override;

  [[nodiscard]] bool ok() const { return out_ != nullptr && out_->good(); }

  /// Serialize one event to a JSON object (no trailing newline).
  [[nodiscard]] static std::string to_json(const TraceEvent& event);

 private:
  std::mutex mutex_;  ///< Serializes record()/flush(): whole lines only.
  std::ofstream file_;
  std::ostream* out_ = nullptr;
};

}  // namespace atm::obs
