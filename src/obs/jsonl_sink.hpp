// TraceSink writing one JSON object per line (JSONL), the interchange
// format consumed by tools/trace_summary.py and tools/plot_figures.py.
// Fields carrying their sentinel defaults are omitted, so every line
// contains exactly the fields meaningful for its event kind (the schema
// is documented field-by-field in docs/TRACING.md).
#pragma once

#include <fstream>
#include <ostream>
#include <string>

#include "src/core/sync/mutex.hpp"
#include "src/obs/trace.hpp"

namespace atm::obs {

class JsonlTraceSink final : public TraceSink {
 public:
  /// Open `path` for writing (truncating). `ok()` reports failure —
  /// recording into a failed sink is a safe no-op.
  explicit JsonlTraceSink(const std::string& path);

  /// Write to a caller-owned stream (kept alive by the caller).
  explicit JsonlTraceSink(std::ostream& out);

  void record(const TraceEvent& event) override;
  void flush() override;

  /// Whether the sink has a healthy stream. Takes the sink's mutex:
  /// checking stream state is a read of the same object record() writes,
  /// so an unlocked peek would race concurrent emission (the annotation
  /// pass surfaced exactly that — see docs/STATIC_ANALYSIS.md, layer 5).
  [[nodiscard]] bool ok() const {
    const sync::MutexLock lock(mutex_);
    return ok_locked();
  }

  /// Serialize one event to a JSON object (no trailing newline).
  [[nodiscard]] static std::string to_json(const TraceEvent& event);

 private:
  [[nodiscard]] bool ok_locked() const ATM_REQUIRES(mutex_) {
    return out_ != nullptr && out_->good();
  }

  mutable sync::Mutex mutex_;  ///< Serializes record()/flush(): whole
                               ///< lines only, and guards stream state.
  std::ofstream file_;  ///< Only touched through out_ (under mutex_).
  std::ostream* out_ ATM_PT_GUARDED_BY(mutex_) = nullptr;
};

}  // namespace atm::obs
