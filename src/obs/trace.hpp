// Lightweight observability primitives for the ATM executive.
//
// The paper's contribution is timing evidence (per-task times, deadline
// misses, platform crossover points), so the executive needs a way to
// export *per-instance* telemetry — which period missed, on which
// backend, and by how much — not just end-of-run aggregates. A TraceSink
// receives one TraceEvent per interesting occurrence: a task execution
// (emitted by the Backend entry points), a deadline classification
// (emitted by rt::DeadlineMonitor), a period/cycle span (emitted by the
// pipeline), or a named counter publication.
//
// Everything here is designed for near-zero overhead when tracing is
// off: every emit site is guarded by a null check on the sink pointer,
// and no event object is constructed unless a sink is attached.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/sync/mutex.hpp"

namespace atm::obs {

/// What a TraceEvent describes.
enum class EventKind : std::uint8_t {
  kSpanBegin,  ///< A period/cycle (or other) span opened.
  kSpanEnd,    ///< The matching span closed; measured_ms holds its length.
  kTask,       ///< One backend task execution (task1, task23, terrain, ...).
  kDeadline,   ///< A DeadlineMonitor classification (met/missed/skipped).
  kCounter,    ///< A named counter published its value.
  kGovernor,   ///< An overload-governor level transition (degrade/recover).
};

[[nodiscard]] std::string_view to_string(EventKind kind);

/// One telemetry record. Fields that do not apply to an event kind keep
/// their sentinel defaults (negative, or empty strings) and sinks are
/// expected to omit them.
struct TraceEvent {
  EventKind kind = EventKind::kTask;
  std::string name;         ///< Task, span, or counter name.
  std::string backend;      ///< Platform display name ("" when unknown).
  int cycle = -1;           ///< Major cycle index ("" when unknown).
  int period = -1;          ///< Period within the cycle.
  double modeled_ms = -1.0; ///< Modeled platform time of a task.
  double measured_ms = -1.0;///< Measured host wall time (task or span).
  std::string outcome;      ///< "met" | "missed" | "skipped" (kDeadline).
  double slack_ms = 0.0;    ///< deadline - completion; negative on a miss.
  std::uint64_t aircraft = 0;   ///< Aircraft count the task ran over.
  int passes = -1;              ///< Task-1 bounding-box retry passes.
  std::int64_t conflicts = -1;  ///< Tasks 2+3 conflict count.
  std::int64_t resolved = -1;   ///< Tasks 2+3 resolution count.
  std::string broadphase;       ///< "brute" | "grid" ("" = not applicable).
  std::string shard;            ///< "none" | "sectors" ("" = n/a).
  int sectors = -1;             ///< Sector count of a sharded run.
  std::int64_t halo_candidates = -1;  ///< Ghost entries the halos added.
  int sector = -1;              ///< Sector index of a per-sector counter.
  std::int64_t box_tests = -1;       ///< Task-1 box membership tests.
  std::int64_t pair_candidates = -1; ///< Tasks 2+3 pairs enumerated
                                     ///< (pre-altitude-gate).
  std::int64_t pair_tests = -1;      ///< Tasks 2+3 Batcher tests
                                     ///< (post-altitude-gate).
  std::string kernel;           ///< Dispatched host batch kernel
                                ///< ("scalar" | "avx2"; "" = the run did
                                ///< not use the kernel layer).
  std::int64_t lanes_masked = -1;    ///< SIMD tail lanes masked off
                                     ///< (-1 = not applicable).
  std::uint64_t value = 0;      ///< Counter value (kCounter).
  int governor_level = -1;      ///< Ladder level entered (kGovernor).
  int governor_from_level = -1; ///< Ladder level left (kGovernor).
  double utilization = -1.0;    ///< Period budget utilization that drove
                                ///< the transition (kGovernor).
};

/// Receiver interface. The executive emits from one thread in program
/// order, but a sink may be shared across concurrently driven backends
/// (and the TSan stress test does exactly that), so implementations must
/// tolerate concurrent record() calls; the bundled sinks serialize
/// internally with a mutex.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void record(const TraceEvent& event) = 0;

  /// Push buffered output to its destination (no-op by default).
  virtual void flush() {}
};

/// In-memory sink for tests and programmatic inspection.
class RecordingSink final : public TraceSink {
 public:
  void record(const TraceEvent& event) override {
    const sync::MutexLock lock(mutex_);
    events_.push_back(event);
  }

  /// Direct view of the recorded events. The returned reference is only
  /// valid while no other thread is recording (inspect after the
  /// emitting work has joined); taking the lock here serializes with any
  /// recorder still in flight at the moment of the call.
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    const sync::MutexLock lock(mutex_);
    return events_;
  }

  /// Number of recorded events of `kind` (any name), or of (`kind`,
  /// `name`) when `name` is non-empty.
  [[nodiscard]] std::size_t count(EventKind kind,
                                  std::string_view name = {}) const;

  /// Number of kDeadline events for `task` with the given outcome.
  [[nodiscard]] std::size_t count_outcome(std::string_view task,
                                          std::string_view outcome) const;

  void clear() {
    const sync::MutexLock lock(mutex_);
    events_.clear();
  }

 private:
  mutable sync::Mutex mutex_;
  std::vector<TraceEvent> events_ ATM_GUARDED_BY(mutex_);
};

/// RAII span: emits kSpanBegin at construction and kSpanEnd (carrying the
/// measured host duration) at destruction. A null sink makes both no-ops.
class Span {
 public:
  Span(TraceSink* sink, std::string_view name, std::string_view backend = {},
       int cycle = -1, int period = -1);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceSink* sink_;
  TraceEvent event_;
  std::uint64_t start_ns_ = 0;
};

/// A named monotonic counter that can publish its value to a sink as one
/// kCounter event. Increments are plain integer adds — safe on hot paths.
class Counter {
 public:
  explicit Counter(std::string_view name) : name_(name) {}

  void add(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

  /// Emit the current value (no-op on a null sink).
  void publish(TraceSink* sink) const;

 private:
  std::string name_;
  std::uint64_t value_ = 0;
};

}  // namespace atm::obs
