#include "src/obs/jsonl_sink.hpp"

#include <cstdio>

namespace atm::obs {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void field_str(std::string& out, const char* key, std::string_view value) {
  out += ",\"";
  out += key;
  out += "\":\"";
  append_escaped(out, value);
  out += '"';
}

void field_int(std::string& out, const char* key, long long value) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
}

void field_ms(std::string& out, const char* key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, ",\"%s\":%.6f", key, value);
  out += buf;
}

}  // namespace

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : file_(path, std::ios::trunc) {
  if (file_.is_open()) out_ = &file_;
}

JsonlTraceSink::JsonlTraceSink(std::ostream& out) : out_(&out) {}

std::string JsonlTraceSink::to_json(const TraceEvent& ev) {
  std::string line = "{\"kind\":\"";
  line += to_string(ev.kind);
  line += '"';
  field_str(line, "name", ev.name);
  if (!ev.backend.empty()) field_str(line, "backend", ev.backend);
  if (ev.cycle >= 0) field_int(line, "cycle", ev.cycle);
  if (ev.period >= 0) field_int(line, "period", ev.period);
  if (ev.modeled_ms >= 0.0) field_ms(line, "modeled_ms", ev.modeled_ms);
  if (ev.measured_ms >= 0.0) field_ms(line, "measured_ms", ev.measured_ms);
  if (!ev.outcome.empty()) {
    field_str(line, "outcome", ev.outcome);
    if (ev.outcome != "skipped") field_ms(line, "slack_ms", ev.slack_ms);
  }
  if (ev.aircraft > 0) {
    field_int(line, "aircraft", static_cast<long long>(ev.aircraft));
  }
  if (ev.passes >= 0) field_int(line, "passes", ev.passes);
  if (ev.conflicts >= 0) {
    field_int(line, "conflicts", static_cast<long long>(ev.conflicts));
  }
  if (ev.resolved >= 0) {
    field_int(line, "resolved", static_cast<long long>(ev.resolved));
  }
  if (!ev.broadphase.empty()) field_str(line, "broadphase", ev.broadphase);
  if (!ev.shard.empty()) field_str(line, "shard", ev.shard);
  if (ev.sectors >= 0) field_int(line, "sectors", ev.sectors);
  if (ev.halo_candidates >= 0) {
    field_int(line, "halo_candidates",
              static_cast<long long>(ev.halo_candidates));
  }
  if (ev.sector >= 0) field_int(line, "sector", ev.sector);
  if (ev.box_tests >= 0) {
    field_int(line, "box_tests", static_cast<long long>(ev.box_tests));
  }
  if (ev.pair_candidates >= 0) {
    field_int(line, "pair_candidates",
              static_cast<long long>(ev.pair_candidates));
  }
  if (ev.pair_tests >= 0) {
    field_int(line, "pair_tests", static_cast<long long>(ev.pair_tests));
  }
  if (!ev.kernel.empty()) field_str(line, "kernel", ev.kernel);
  if (ev.lanes_masked >= 0) {
    field_int(line, "lanes_masked", static_cast<long long>(ev.lanes_masked));
  }
  if (ev.kind == EventKind::kCounter) {
    field_int(line, "value", static_cast<long long>(ev.value));
  }
  if (ev.governor_level >= 0) field_int(line, "level", ev.governor_level);
  if (ev.governor_from_level >= 0) {
    field_int(line, "from_level", ev.governor_from_level);
  }
  if (ev.utilization >= 0.0) field_ms(line, "utilization", ev.utilization);
  line += '}';
  return line;
}

void JsonlTraceSink::record(const TraceEvent& event) {
  // Serialize before locking: only the stream write needs the mutex.
  const std::string line = to_json(event);
  const sync::MutexLock lock(mutex_);
  if (!ok_locked()) return;
  *out_ << line << '\n';
}

void JsonlTraceSink::flush() {
  const sync::MutexLock lock(mutex_);
  if (out_ != nullptr) out_->flush();
}

}  // namespace atm::obs
