#include "src/obs/trace.hpp"

#include <chrono>

namespace atm::obs {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSpanBegin:
      return "span_begin";
    case EventKind::kSpanEnd:
      return "span_end";
    case EventKind::kTask:
      return "task";
    case EventKind::kDeadline:
      return "deadline";
    case EventKind::kCounter:
      return "counter";
    case EventKind::kGovernor:
      return "governor";
  }
  return "?";
}

std::size_t RecordingSink::count(EventKind kind,
                                 std::string_view name) const {
  const sync::MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.kind == kind && (name.empty() || ev.name == name)) ++n;
  }
  return n;
}

std::size_t RecordingSink::count_outcome(std::string_view task,
                                         std::string_view outcome) const {
  const sync::MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.kind == EventKind::kDeadline && ev.name == task &&
        ev.outcome == outcome) {
      ++n;
    }
  }
  return n;
}

Span::Span(TraceSink* sink, std::string_view name, std::string_view backend,
           int cycle, int period)
    : sink_(sink) {
  if (sink_ == nullptr) return;
  event_.kind = EventKind::kSpanBegin;
  event_.name = name;
  event_.backend = backend;
  event_.cycle = cycle;
  event_.period = period;
  start_ns_ = now_ns();
  sink_->record(event_);
}

Span::~Span() {
  if (sink_ == nullptr) return;
  event_.kind = EventKind::kSpanEnd;
  event_.measured_ms =
      static_cast<double>(now_ns() - start_ns_) / 1e6;
  sink_->record(event_);
}

void Counter::publish(TraceSink* sink) const {
  if (sink == nullptr) return;
  TraceEvent ev;
  ev.kind = EventKind::kCounter;
  ev.name = name_;
  ev.value = value_;
  sink->record(ev);
}

}  // namespace atm::obs
