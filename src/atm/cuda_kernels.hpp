// The paper's four CUDA kernels, written against the SIMT engine
// (Section 4.1: SetupFlight, GenerateRadarData, TrackDrone,
// CheckCollisionPath).
//
// TrackDrone is decomposed into its global-synchronization phases as
// separate launches (expected-position, per-pass scan/ambiguity/resolve,
// commit) — in real CUDA those phases are separated by the implicit global
// sync at kernel boundaries or by atomics; launching them separately gives
// the same semantics with none of the ordering hazards the paper works
// around ("variables to check ... so that two threads don't try to
// manipulate the same aircraft").
//
// CheckCollisionPath exists in two forms: the paper's *fused* Task 2+3
// kernel (their stated optimization: one kernel avoids extra host<->device
// round trips) and a *split* detect/resolve pair used by the A-1 ablation
// bench.
//
// Every kernel charges its work to the thread context so the device cost
// model can convert real loop trip counts into modeled card time.
#pragma once

#include <cstdint>
#include <span>

#include "src/airfield/setup.hpp"
#include "src/airfield/terrain.hpp"
#include "src/atm/extended/ext_types.hpp"
#include "src/atm/task_types.hpp"
#include "src/simt/context.hpp"

namespace atm::tasks::cuda {

/// Spans over the device-resident flight SoA (the paper's `drone` struct).
struct DroneView {
  std::span<double> x, y, dx, dy, alt, batx, baty, time_till;
  std::span<double> ex, ey;  ///< Expected positions (Task 1 working set).
  std::span<std::int8_t> rmatch;
  std::span<std::uint8_t> col;
  std::span<std::int32_t> col_with;
  std::span<std::int32_t> amatch;   ///< Radar committed to this aircraft.
  std::span<std::int32_t> nradars;  ///< Active radars covering aircraft.
  std::span<std::uint8_t> terrain_warn;  ///< Terrain-avoidance flag.
  std::span<std::int32_t> sector;        ///< Display sector id.

  [[nodiscard]] std::size_t size() const { return x.size(); }
};

/// Spans over the device-resident radar SoA.
struct RadarView {
  std::span<double> rx, ry;
  std::span<std::int32_t> rmatch_with;
  std::span<std::int32_t> nhits;   ///< Eligible aircraft covered (per pass).
  std::span<std::int32_t> hit_id;  ///< Sole covered aircraft (per pass).

  [[nodiscard]] std::size_t size() const { return rx.size(); }
};

/// Device counter slots accumulated with atomics (one atomic per thread at
/// kernel end, not per iteration — like a real stats-collecting kernel).
enum CounterSlot : std::size_t {
  kBoxTests = 0,
  kPairTests,
  kRescans,
  kConflicts,
  kCritical,
  kResolved,
  kUnresolved,
  // Extended-system slots.
  kTerrainWarnings,
  kTerrainClimbs,
  kTerrainSamples,
  kHandoffs,
  kCounterSlots,
};

// --- Simulation-setup kernels (Section 4.1) -------------------------------

/// SetupFlight: thread i initializes aircraft i. Each thread derives an
/// independent RNG stream from (seed, i), so results do not depend on
/// thread execution order.
void setup_flight_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                         std::uint64_t seed,
                         const airfield::SetupParams& params);

/// GenerateRadarData: thread i writes aircraft i's noisy return at index i
/// (the host performs the quarter-reversal shuffle afterwards, as in the
/// paper). `noise` holds 2 pre-drawn values per aircraft so the frame
/// matches the host generator bit-for-bit.
void generate_radar_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                           const RadarView& radar,
                           std::span<const double> noise);

// --- TrackDrone phases (Task 1, Section 5.1) ------------------------------

/// Phase 0: per aircraft — expected position, reset match state.
void expected_position_kernel(simt::ThreadCtx& ctx, const DroneView& drone);

/// Per pass, phase a: per aircraft — clear the pass's coverage counter.
void pass_reset_kernel(simt::ThreadCtx& ctx, const DroneView& drone);

/// Per pass, phase b: per radar — scan all aircraft, counting eligible
/// coverage within the pass's box half-extent.
void radar_scan_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                       const RadarView& radar, double box_half_nm,
                       std::span<std::uint64_t> counters);

/// Per pass, phase c: per aircraft — aircraft covered by >= 2 radars
/// become ambiguous.
void ambiguity_kernel(simt::ThreadCtx& ctx, const DroneView& drone);

/// Per pass, phase d: per radar — discard multi-hit radars; commit
/// unambiguous single-hit correlations.
void radar_resolve_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                          const RadarView& radar);

/// Final phase: per aircraft — take the correlated radar position, or the
/// expected position.
void commit_tracking_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                            const RadarView& radar);

// --- CheckCollisionPath (Tasks 2+3, Sections 5.2-5.3) ---------------------

/// The paper's fused kernel: per aircraft — Batcher detection against all
/// aircraft, then trial-rotation resolution, writing the trial path to
/// batx/baty and raising `resolved`.
void check_collision_path_kernel(simt::ThreadCtx& ctx,
                                 const DroneView& drone,
                                 std::span<std::uint8_t> resolved,
                                 const Task23Params& params,
                                 std::span<std::uint64_t> counters);

/// Split variant for the A-1 ablation: detection only.
void detect_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                   std::span<std::uint8_t> critical,
                   const Task23Params& params,
                   std::span<std::uint64_t> counters);

/// Split variant for the A-1 ablation: resolution of flagged aircraft.
void resolve_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                    std::span<const std::uint8_t> critical,
                    std::span<std::uint8_t> resolved,
                    const Task23Params& params,
                    std::span<std::uint64_t> counters);

/// Commit phase shared by both variants: per aircraft — resolved aircraft
/// turn onto the trial path and clear their collision flags.
void commit_paths_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                         std::span<const std::uint8_t> resolved,
                         const Task23Params& params);

// --- Extended-system kernels (complete ATM task set) -----------------------

/// Terrain avoidance: per aircraft — sample the projected path against the
/// (device-resident) terrain map, flag violations, climb.
void terrain_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                    const airfield::TerrainMap& terrain,
                    const TerrainTaskParams& params,
                    std::span<std::uint64_t> counters);

/// Display update: per aircraft — sector binning, handoff detection, and
/// atomic occupancy histogram.
void display_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                    std::span<std::int32_t> occupancy, int sectors_per_axis,
                    std::span<std::uint64_t> counters);

/// Advisory flag bits written by advisory_kernel.
inline constexpr std::uint8_t kAdvConflictBit = 1;
inline constexpr std::uint8_t kAdvTerrainBit = 2;
inline constexpr std::uint8_t kAdvBoundaryBit = 4;

/// AVA scan: per aircraft — classify into the advisory bitmask (the host
/// drains the queue in id order afterwards, like the real system's serial
/// voice channel).
void advisory_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                     std::span<std::uint8_t> advisory_flags,
                     const AdvisoryParams& params);

// --- Alternative detection mapping (A-3 ablation) ---------------------------
//
// The paper maps one thread to one aircraft, each scanning all others.
// An obvious alternative is one thread per *pair tile*: a 2-D grid where
// thread (i, j) tests exactly one pair and folds its result into aircraft
// i's soonest-conflict state with atomics. Two deterministic passes keep
// the tie-breaking (lowest partner id at equal time) order-independent:

/// Pass 1: per pair (i = global y, j = global x) — atomic-min the entry
/// time of every conflicting pair into `soonest[i]`.
void pair_detect_time_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                             std::span<double> soonest,
                             const Task23Params& params,
                             std::span<std::uint64_t> counters);

/// Pass 2: per pair — for pairs achieving soonest[i], atomic-min the
/// partner id; then flags/col/time_till follow per aircraft.
void pair_detect_partner_kernel(simt::ThreadCtx& ctx,
                                const DroneView& drone,
                                std::span<const double> soonest,
                                std::span<std::int32_t> partner,
                                const Task23Params& params);

/// Finalize: per aircraft — write col/col_with/time_till/critical flags
/// from the pair passes' results.
void pair_detect_finalize_kernel(simt::ThreadCtx& ctx,
                                 const DroneView& drone,
                                 std::span<const double> soonest,
                                 std::span<const std::int32_t> partner,
                                 std::span<std::uint8_t> critical,
                                 const Task23Params& params,
                                 std::span<std::uint64_t> counters);

/// Sporadic requests: per aircraft — evaluate every query of the batch,
/// writing match_flags[q * n + i]. The host compacts the answers in id
/// order afterwards (the controller wants an ordered strip anyway).
void query_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                  std::span<const Query> queries,
                  std::span<std::uint8_t> match_flags);

// --- Multi-tower correlation kernels ---------------------------------------

/// Spans over the device-resident multi-return frame.
struct MultiRadarView {
  std::span<double> rx, ry;
  std::span<std::int32_t> rmatch_with;
  std::span<std::int32_t> nhits;
  std::span<std::int32_t> hit_id;

  [[nodiscard]] std::size_t size() const { return rx.size(); }
};

/// Phase 1: per return — coverage counts; ambiguous returns discarded.
void multi_scan_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                       const MultiRadarView& radar, double box_half_nm,
                       std::span<std::uint64_t> counters);

/// Phase 2: per aircraft — choose the closest single-hit candidate.
void multi_select_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                         const MultiRadarView& radar);

/// Phase 3: per return — winners commit, losers become redundant.
void multi_disposition_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                              const MultiRadarView& radar);

/// Commit: per aircraft — matched aircraft take the winning return.
void multi_commit_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                         const MultiRadarView& radar);

}  // namespace atm::tasks::cuda
