// The 16-core Intel Xeon (MIMD, shared-memory) backend.
//
// Executes the tasks for real on a host thread pool with dynamically
// scheduled chunks, following the shared-database design of [13]: all
// aircraft and radar records live in memory shared by every worker, and
// cross-record updates go through striped mutexes. The modeled 16-core
// Xeon time comes from mimd::XeonModel fed with the work the execution
// actually performed:
//
//  * inner_ops  — inner-loop record accesses (each of which the [13]
//                 implementation performs under a reader lock on the
//                 shared record; we count those reader locks rather than
//                 execute 10^8 host mutex operations per task),
//  * locked_ops — the reader-lock count above plus the *real* write-lock
//                 acquisitions the execution performed,
//  * parallel_regions — fork/join barriers.
//
// Scheduling jitter makes run_task* nondeterministic across differently
// seeded backends — the paper's MIMD "not predictable" property — while a
// fixed seed keeps any single configuration reproducible for tests.
#pragma once

#include "src/atm/backend.hpp"
#include "src/atm/sharded.hpp"
#include "src/core/kern/soa_snapshot.hpp"
#include "src/core/spatial/swept_index.hpp"
#include "src/core/spatial/uniform_grid.hpp"
#include "src/mimd/thread_pool.hpp"
#include "src/mimd/xeon_model.hpp"

namespace atm::tasks {

class MimdBackend final : public Backend {
 public:
  explicit MimdBackend(mimd::XeonSpec spec = mimd::paper_xeon_spec(),
                       unsigned pool_workers = 0,
                       std::uint64_t jitter_seed = 0xC0FFEE);

  [[nodiscard]] std::string name() const override { return model_.spec().name; }
  [[nodiscard]] bool deterministic() const override { return false; }

  void load(const airfield::FlightDb& db) override;

  [[nodiscard]] const airfield::FlightDb& state() const override {
    return db_;
  }
  airfield::FlightDb& mutable_state() override { return db_; }

 private:
  Task1Result do_run_task1(airfield::RadarFrame& frame,
                           const Task1Params& params) final;
  Task23Result do_run_task23(const Task23Params& params) final;

  // Extended system (see backend.hpp): thread-pool execution with the
  // shared-database locking discipline, modeled through the Xeon model.
  TerrainResult do_run_terrain(const TerrainTaskParams& params) final;
  DisplayResult do_run_display(const DisplayParams& params) final;
  AdvisoryResult do_run_advisory(const AdvisoryParams& params) final;
  MultiRadarResult do_run_multi_task1(airfield::MultiRadarFrame& frame,
                                      const Task1Params& params) final;
  SporadicResult do_run_sporadic(std::span<const Query> queries,
                                 const SporadicParams& params) final;

 public:
  /// Work performed by the most recent task run (model inputs; exposed for
  /// tests and the determinism bench).
  [[nodiscard]] const mimd::WorkCounters& last_work() const {
    return last_work_;
  }

  void set_jitter_seed(std::uint64_t seed) { jitter_rng_ = core::Rng(seed); }

 private:
  mimd::XeonModel model_;
  mimd::ThreadPool pool_;
  mimd::StripedLocks locks_;
  core::Rng jitter_rng_;
  airfield::FlightDb db_;
  mimd::WorkCounters last_work_;

  // Shared working arrays (the "dynamic database" of [13]); the batch
  // kernels read ex_/ey_ and the Tasks 2+3 snapshot, so those are aligned.
  core::kern::AlignedVector<double> ex_, ey_;
  std::vector<std::int32_t> nhits_, hit_id_, nradars_, amatch_;
  std::vector<std::uint8_t> resolved_;

  // Broadphase structures (kGrid mode): built serially at the start of a
  // pass/run, then queried read-only by every worker concurrently.
  std::vector<std::uint8_t> eligible_;
  core::spatial::UniformGrid2D grid_;
  core::spatial::SweptIndex swept_;

  // Tasks 2+3 snapshot: gathered serially once per run, then scanned
  // read-only by every worker through the batch kernels.
  core::kern::SoaSnapshot snap_;

  // Sector-sharded executive (ShardMode::kSectors): per-sector snapshot
  // buffers, reused across periods. The gather copies replace the [13]
  // reader locks in the cost model — see do_run_task1/do_run_task23.
  sharded::ShardScratch shard_scratch_;
};

}  // namespace atm::tasks
