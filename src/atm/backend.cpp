#include "src/atm/backend.hpp"

#include <stdexcept>

#include "src/atm/extended/advisory.hpp"
#include "src/atm/extended/display.hpp"
#include "src/atm/extended/multiradar.hpp"
#include "src/atm/extended/sporadic.hpp"
#include "src/atm/extended/terrain_task.hpp"
#include "src/rt/clock.hpp"

namespace atm::tasks {

void Backend::emit_task_event(std::string_view task, double modeled_ms,
                              double measured_ms,
                              const TaskEventDetail& detail) {
  obs::TraceEvent ev;
  ev.kind = obs::EventKind::kTask;
  ev.name = task;
  ev.backend = name();
  ev.cycle = trace_cycle_;
  ev.period = trace_period_;
  ev.modeled_ms = modeled_ms;
  ev.measured_ms = measured_ms;
  ev.aircraft = aircraft_count();
  ev.passes = detail.passes;
  ev.conflicts = detail.conflicts;
  ev.resolved = detail.resolved;
  ev.broadphase = detail.broadphase;
  ev.shard = detail.shard;
  ev.sectors = detail.sectors;
  ev.halo_candidates = detail.halo_candidates;
  ev.box_tests = detail.box_tests;
  ev.pair_candidates = detail.pair_candidates;
  ev.pair_tests = detail.pair_tests;
  ev.kernel = detail.kernel;
  ev.lanes_masked = detail.lanes_masked;
  trace_->record(ev);
}

void Backend::emit_sector_counter(std::string_view counter, int sector,
                                  std::uint64_t value) {
  if (trace_ == nullptr) return;
  obs::TraceEvent ev;
  ev.kind = obs::EventKind::kCounter;
  ev.name = counter;
  ev.backend = name();
  ev.cycle = trace_cycle_;
  ev.period = trace_period_;
  ev.sector = sector;
  ev.value = value;
  trace_->record(ev);
}

Task1Result Backend::run_task1(airfield::RadarFrame& frame,
                               const Task1Params& params) {
  if (trace_ == nullptr) return do_run_task1(frame, params);
  const rt::Stopwatch sw;
  const Task1Result result = do_run_task1(frame, params);
  TaskEventDetail detail;
  detail.passes = result.stats.passes;
  detail.broadphase = core::spatial::to_string(params.broadphase);
  detail.shard = core::spatial::to_string(params.shard);
  if (result.stats.sectors > 0) {
    detail.sectors = result.stats.sectors;
    detail.halo_candidates =
        static_cast<std::int64_t>(result.stats.halo_candidates);
  }
  detail.box_tests = static_cast<std::int64_t>(result.stats.box_tests);
  if (result.stats.kernel >= 0) {
    detail.kernel = core::kern::to_string(
        static_cast<core::kern::Kernel>(result.stats.kernel));
    detail.lanes_masked = static_cast<std::int64_t>(result.stats.lanes_masked);
  }
  emit_task_event("task1", result.modeled_ms, sw.elapsed_ms(), detail);
  return result;
}

Task23Result Backend::run_task23(const Task23Params& params) {
  if (trace_ == nullptr) return do_run_task23(params);
  const rt::Stopwatch sw;
  const Task23Result result = do_run_task23(params);
  TaskEventDetail detail;
  detail.conflicts = static_cast<std::int64_t>(result.stats.conflicts);
  detail.resolved = static_cast<std::int64_t>(result.stats.resolved);
  detail.broadphase = core::spatial::to_string(params.broadphase);
  detail.shard = core::spatial::to_string(params.shard);
  if (result.stats.sectors > 0) {
    detail.sectors = result.stats.sectors;
    detail.halo_candidates =
        static_cast<std::int64_t>(result.stats.halo_candidates);
  }
  detail.pair_candidates =
      static_cast<std::int64_t>(result.stats.pair_candidates);
  detail.pair_tests = static_cast<std::int64_t>(result.stats.pair_tests);
  if (result.stats.kernel >= 0) {
    detail.kernel = core::kern::to_string(
        static_cast<core::kern::Kernel>(result.stats.kernel));
    detail.lanes_masked = static_cast<std::int64_t>(result.stats.lanes_masked);
  }
  emit_task_event("task23", result.modeled_ms, sw.elapsed_ms(), detail);
  return result;
}

airfield::RadarFrame Backend::generate_radar(
    core::Rng& rng, const airfield::RadarParams& params,
    double* modeled_ms) {
  if (trace_ == nullptr) return do_generate_radar(rng, params, modeled_ms);
  double local_ms = 0.0;
  if (modeled_ms == nullptr) modeled_ms = &local_ms;
  const rt::Stopwatch sw;
  airfield::RadarFrame frame = do_generate_radar(rng, params, modeled_ms);
  emit_task_event("radar", *modeled_ms, sw.elapsed_ms(), {});
  return frame;
}

TerrainResult Backend::run_terrain(const TerrainTaskParams& params) {
  if (trace_ == nullptr) return do_run_terrain(params);
  const rt::Stopwatch sw;
  const TerrainResult result = do_run_terrain(params);
  emit_task_event("terrain", result.modeled_ms, sw.elapsed_ms(), {});
  return result;
}

DisplayResult Backend::run_display(const DisplayParams& params) {
  if (trace_ == nullptr) return do_run_display(params);
  const rt::Stopwatch sw;
  const DisplayResult result = do_run_display(params);
  emit_task_event("display", result.modeled_ms, sw.elapsed_ms(), {});
  return result;
}

AdvisoryResult Backend::run_advisory(const AdvisoryParams& params) {
  if (trace_ == nullptr) return do_run_advisory(params);
  const rt::Stopwatch sw;
  AdvisoryResult result = do_run_advisory(params);
  emit_task_event("advisory", result.modeled_ms, sw.elapsed_ms(), {});
  return result;
}

MultiRadarResult Backend::run_multi_task1(airfield::MultiRadarFrame& frame,
                                          const Task1Params& params) {
  if (trace_ == nullptr) return do_run_multi_task1(frame, params);
  const rt::Stopwatch sw;
  const MultiRadarResult result = do_run_multi_task1(frame, params);
  TaskEventDetail detail;
  detail.passes = result.stats.passes;
  detail.box_tests = static_cast<std::int64_t>(result.stats.box_tests);
  emit_task_event("multi_task1", result.modeled_ms, sw.elapsed_ms(), detail);
  return result;
}

SporadicResult Backend::run_sporadic(std::span<const Query> queries,
                                     const SporadicParams& params) {
  if (trace_ == nullptr) return do_run_sporadic(queries, params);
  const rt::Stopwatch sw;
  SporadicResult result = do_run_sporadic(queries, params);
  emit_task_event("sporadic", result.modeled_ms, sw.elapsed_ms(), {});
  return result;
}

void Backend::set_terrain(
    std::shared_ptr<const airfield::TerrainMap> terrain) {
  terrain_ = std::move(terrain);
  on_terrain_attached();
}

airfield::RadarFrame Backend::do_generate_radar(
    core::Rng& rng, const airfield::RadarParams& params,
    double* modeled_ms) {
  if (modeled_ms != nullptr) *modeled_ms = 0.0;
  return airfield::generate_radar(state(), rng, params);
}

TerrainResult Backend::do_run_terrain(const TerrainTaskParams& params) {
  if (terrain_map() == nullptr) {
    throw std::logic_error("Backend::run_terrain: no terrain attached");
  }
  const rt::Stopwatch sw;
  TerrainResult result;
  result.stats =
      extended::terrain_avoidance(mutable_state(), *terrain_map(), params);
  result.modeled_ms = sw.elapsed_ms();
  return result;
}

DisplayResult Backend::do_run_display(const DisplayParams& params) {
  const rt::Stopwatch sw;
  DisplayResult result;
  std::vector<std::int32_t> occupancy;
  result.stats = extended::display_update(mutable_state(), occupancy, params);
  result.modeled_ms = sw.elapsed_ms();
  return result;
}

AdvisoryResult Backend::do_run_advisory(const AdvisoryParams& params) {
  const rt::Stopwatch sw;
  AdvisoryResult result;
  result.stats = extended::advisory_scan(state(), params, result.queue);
  result.modeled_ms = sw.elapsed_ms();
  return result;
}

MultiRadarResult Backend::do_run_multi_task1(airfield::MultiRadarFrame& frame,
                                             const Task1Params& params) {
  const rt::Stopwatch sw;
  MultiRadarResult result;
  result.stats = extended::correlate_multi(mutable_state(), frame, params);
  result.modeled_ms = sw.elapsed_ms();
  return result;
}

SporadicResult Backend::do_run_sporadic(std::span<const Query> queries,
                                        const SporadicParams& params) {
  (void)params;
  const rt::Stopwatch sw;
  SporadicResult result;
  result.stats = extended::answer_queries(state(), queries, result.answers);
  result.modeled_ms = sw.elapsed_ms();
  return result;
}

}  // namespace atm::tasks
