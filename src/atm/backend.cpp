#include "src/atm/backend.hpp"

#include <stdexcept>

#include "src/atm/extended/advisory.hpp"
#include "src/atm/extended/display.hpp"
#include "src/atm/extended/multiradar.hpp"
#include "src/atm/extended/sporadic.hpp"
#include "src/atm/extended/terrain_task.hpp"
#include "src/rt/clock.hpp"

namespace atm::tasks {

airfield::RadarFrame Backend::generate_radar(
    core::Rng& rng, const airfield::RadarParams& params,
    double* modeled_ms) {
  if (modeled_ms != nullptr) *modeled_ms = 0.0;
  return airfield::generate_radar(state(), rng, params);
}

void Backend::set_terrain(
    std::shared_ptr<const airfield::TerrainMap> terrain) {
  terrain_ = std::move(terrain);
}

TerrainResult Backend::run_terrain(const TerrainTaskParams& params) {
  if (terrain_ == nullptr) {
    throw std::logic_error("Backend::run_terrain: no terrain attached");
  }
  const rt::Stopwatch sw;
  TerrainResult result;
  result.stats =
      extended::terrain_avoidance(mutable_state(), *terrain_, params);
  result.modeled_ms = sw.elapsed_ms();
  return result;
}

DisplayResult Backend::run_display(const DisplayParams& params) {
  const rt::Stopwatch sw;
  DisplayResult result;
  std::vector<std::int32_t> occupancy;
  result.stats = extended::display_update(mutable_state(), occupancy, params);
  result.modeled_ms = sw.elapsed_ms();
  return result;
}

AdvisoryResult Backend::run_advisory(const AdvisoryParams& params) {
  const rt::Stopwatch sw;
  AdvisoryResult result;
  result.stats = extended::advisory_scan(state(), params, result.queue);
  result.modeled_ms = sw.elapsed_ms();
  return result;
}

MultiRadarResult Backend::run_multi_task1(airfield::MultiRadarFrame& frame,
                                          const Task1Params& params) {
  const rt::Stopwatch sw;
  MultiRadarResult result;
  result.stats = extended::correlate_multi(mutable_state(), frame, params);
  result.modeled_ms = sw.elapsed_ms();
  return result;
}

SporadicResult Backend::run_sporadic(std::span<const Query> queries,
                                     const SporadicParams& params) {
  (void)params;
  const rt::Stopwatch sw;
  SporadicResult result;
  result.stats = extended::answer_queries(state(), queries, result.answers);
  result.modeled_ms = sw.elapsed_ms();
  return result;
}

}  // namespace atm::tasks
