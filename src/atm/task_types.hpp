// Parameter and statistics types shared by every backend's task
// implementations.
#pragma once

#include <cstdint>

#include "src/core/kern/kernels.hpp"
#include "src/core/spatial/broadphase.hpp"
#include "src/core/spatial/sectors.hpp"
#include "src/core/units.hpp"

namespace atm::tasks {

/// Task 1 (tracking & correlation) parameters; defaults are the paper's.
struct Task1Params {
  /// Half-extent of the initial bounding box (0.5 nm => a 1 x 1 nm box).
  double box_half_nm = core::kCorrelationBoxHalfNm;
  /// How many times the box is doubled for unmatched radars (paper: 2).
  int retries = core::kCorrelationRetries;
  /// Candidate enumeration on the host paths (reference, MIMD/Xeon):
  /// kGrid bins expected positions into a uniform grid and queries only
  /// the cells overlapping each radar's box. Outcomes are identical to
  /// brute force by construction; only `box_tests` differs. Platform
  /// backends that model fixed all-pairs hardware (CUDA, STARAN,
  /// ClearSpeed, SIMD) ignore this field.
  core::spatial::BroadphaseMode broadphase =
      core::spatial::BroadphaseMode::kBruteForce;
  /// Sector sharding on the host paths: kSectors partitions the airfield
  /// into sectors_per_axis^2 sectors per pass and runs each sector's
  /// radar scan as an independent thread-pool task over its candidate
  /// (owned + halo) set. Outcomes are identical to the monolithic scan
  /// by construction (see src/core/spatial/sectors.hpp); composes with
  /// `broadphase`, which then prunes inside each sector. Platform
  /// backends modeling fixed all-pairs hardware ignore this field.
  core::spatial::ShardMode shard = core::spatial::ShardMode::kNone;
  int sectors_per_axis = 4;
  /// Batch-kernel selection for the host paths' box tests: kAuto picks
  /// AVX2 when the build and the CPU provide it, scalar otherwise.
  /// Outcomes are bit-identical either way (docs/PERF.md). Platform
  /// backends ignore this field.
  core::kern::KernelMode kernel = core::kern::KernelMode::kAuto;
};

/// Tasks 2+3 (collision detection & resolution) parameters.
struct Task23Params {
  double horizon_periods = core::kLookAheadPeriods;
  double critical_periods = core::kCriticalTimePeriods;
  double band_nm = core::kBatcherBandNm;
  double altitude_gate_feet = core::kAltitudeGateFeet;
  double turn_step_deg = core::kResolveStepDegrees;
  double turn_max_deg = core::kResolveMaxDegrees;
  /// Candidate enumeration on the host paths (reference, MIMD/Xeon):
  /// kGrid prunes pairs through the swept index (altitude slabs + a
  /// velocity-x-horizon expanded cell query) before the altitude gate and
  /// Batcher test. Outcomes are identical to brute force by construction;
  /// only `pair_candidates` (and the early-exit tail of `pair_tests`)
  /// differ. Platform backends modeling all-pairs hardware ignore this.
  core::spatial::BroadphaseMode broadphase =
      core::spatial::BroadphaseMode::kBruteForce;
  /// Sector sharding on the host paths: kSectors runs detection and the
  /// trial rotations per sector over a gathered per-sector snapshot.
  /// Outcomes are identical to the monolithic scan by construction;
  /// composes with `broadphase` (a per-sector swept index). Platform
  /// backends modeling all-pairs hardware ignore this field.
  core::spatial::ShardMode shard = core::spatial::ShardMode::kNone;
  int sectors_per_axis = 4;
  /// Batch-kernel selection for the host paths' band-intersection scans:
  /// kAuto picks AVX2 when the build and the CPU provide it, scalar
  /// otherwise. Outcomes are bit-identical either way (docs/PERF.md).
  /// Platform backends ignore this field.
  core::kern::KernelMode kernel = core::kern::KernelMode::kAuto;
};

/// Outcome counters of one Task 1 run.
struct Task1Stats {
  std::uint64_t radars = 0;
  std::uint64_t matched = 0;            ///< Radars committed to an aircraft.
  std::uint64_t discarded_radars = 0;   ///< rMatchWith set to -2.
  std::uint64_t unmatched_radars = 0;   ///< Still -1 after the final pass.
  std::uint64_t ambiguous_aircraft = 0; ///< rMatch set to -1.
  std::uint64_t updated_aircraft = 0;   ///< Position taken from a radar.
  int passes = 0;                       ///< Bounding-box passes run (1..3).
  std::uint64_t box_tests = 0;          ///< Work: bounding-box membership
                                        ///< tests executed.
  int sectors = 0;               ///< Work: sectors the run sharded into
                                 ///< (0 = unsharded).
  std::uint64_t halo_candidates = 0;  ///< Work: ghost entries the sector
                                      ///< halos added across all passes.
  int kernel = -1;  ///< Work: dispatched kern::Kernel as int (-1 = the
                    ///< run did not use the batch kernels, e.g. a
                    ///< platform backend).
  std::uint64_t lanes_masked = 0;  ///< Work: SIMD tail lanes masked off
                                   ///< (0 under the scalar kernel).

  friend bool operator==(const Task1Stats&, const Task1Stats&) = default;
};

/// Outcome counters of one Tasks 2+3 run.
struct Task23Stats {
  std::uint64_t aircraft = 0;
  std::uint64_t conflicts = 0;   ///< Aircraft with any conflict in horizon.
  std::uint64_t critical = 0;    ///< Aircraft with time_min < 300 periods.
  std::uint64_t resolved = 0;    ///< Critical aircraft given a new path.
  std::uint64_t unresolved = 0;  ///< No trial angle was conflict-free.
  std::uint64_t pair_tests = 0;  ///< Work: Batcher pair tests executed.
  std::uint64_t pair_candidates = 0;  ///< Work: pairs enumerated before the
                                      ///< altitude gate (broadphase output;
                                      ///< n-1 per scan under brute force).
  std::uint64_t rescans = 0;     ///< Work: full trial-path re-checks.
  int sectors = 0;               ///< Work: sectors the run sharded into
                                 ///< (0 = unsharded).
  std::uint64_t halo_candidates = 0;  ///< Work: ghost entries the sector
                                      ///< halos added.
  int kernel = -1;  ///< Work: dispatched kern::Kernel as int (-1 = the
                    ///< run did not use the batch kernels, e.g. a
                    ///< platform backend).
  std::uint64_t lanes_masked = 0;  ///< Work: SIMD tail lanes masked off
                                   ///< (0 under the scalar kernel).

  friend bool operator==(const Task23Stats&, const Task23Stats&) = default;
};

/// A task run's modeled platform time plus its outcome counters.
struct Task1Result {
  double modeled_ms = 0.0;
  Task1Stats stats;
};

struct Task23Result {
  double modeled_ms = 0.0;
  Task23Stats stats;
};

}  // namespace atm::tasks
