// The NVIDIA-CUDA platform backend: the paper's program structure on the
// SIMT engine, parameterized by which card's DeviceSpec it models.
#pragma once

#include <cstdint>
#include <vector>

#include "src/atm/backend.hpp"
#include "src/atm/cuda_kernels.hpp"
#include "src/simt/device.hpp"

namespace atm::tasks {

class CudaBackend final : public Backend {
 public:
  /// `threads_per_block` defaults to the paper's 96 (Section 6.1).
  explicit CudaBackend(simt::DeviceSpec spec,
                       int threads_per_block = core::kPaperThreadsPerBlock);

  [[nodiscard]] std::string name() const override;

  void load(const airfield::FlightDb& db) override;

  /// A-3 ablation: detection mapped one-thread-per-*pair* on a 2-D grid
  /// (atomic-min folding) instead of the paper's one-thread-per-aircraft
  /// row scan, followed by the same resolution kernel. Results identical;
  /// cost differs by the atomic traffic and the n^2 thread launch.
  Task23Result run_task23_pairgrid(const Task23Params& params);

  /// A-1 ablation: Tasks 2+3 as *separate* detect / resolve kernels with
  /// the host round trip of the critical flags in between — the structure
  /// the paper rejected in Section 4 ("it cuts overhead for memory and
  /// data transfer ... better to have in one function").
  Task23Result run_task23_split(const Task23Params& params);

  [[nodiscard]] const airfield::FlightDb& state() const override {
    return db_;
  }
  airfield::FlightDb& mutable_state() override { return db_; }

  /// SetupFlight as a device kernel: initialize n aircraft from a seed
  /// (distribution-equivalent to airfield::make_airfield; per-thread RNG
  /// streams). Returns the modeled kernel time.
  double setup_flights_on_device(std::size_t n, std::uint64_t seed,
                                 const airfield::SetupParams& params = {});

  /// The simulated device (for occupancy experiments and totals).
  [[nodiscard]] simt::Device& device() { return device_; }
  [[nodiscard]] int threads_per_block() const { return threads_per_block_; }
  void set_threads_per_block(int tpb) { threads_per_block_ = tpb; }

 private:
  Task1Result do_run_task1(airfield::RadarFrame& frame,
                           const Task1Params& params) final;
  Task23Result do_run_task23(const Task23Params& params) final;

  /// GenerateRadarData on the device + the paper's device->host shuffle
  /// round trip (Section 4.1), with the shuffle itself on the host.
  airfield::RadarFrame do_generate_radar(
      core::Rng& rng, const airfield::RadarParams& params,
      double* modeled_ms) final;

  // --- Extended system ----------------------------------------------------

  /// Attaching terrain models the one-time host->device upload of the
  /// heightmap.
  void on_terrain_attached() final;
  TerrainResult do_run_terrain(const TerrainTaskParams& params) final;
  DisplayResult do_run_display(const DisplayParams& params) final;
  AdvisoryResult do_run_advisory(const AdvisoryParams& params) final;
  MultiRadarResult do_run_multi_task1(airfield::MultiRadarFrame& frame,
                                      const Task1Params& params) final;
  SporadicResult do_run_sporadic(std::span<const Query> queries,
                                 const SporadicParams& params) final;

 private:
  cuda::DroneView drone_view();
  cuda::RadarView radar_view();
  void resize_scratch(std::size_t n);
  Task1Stats collect_task1_stats(const airfield::RadarFrame& frame,
                                 int passes) const;
  /// Copy the working radar arrays out to `frame.rmatch_with`.
  void export_radar_matches(airfield::RadarFrame& frame) const;
  /// Bytes of one radar frame on the wire (rx, ry, rMatchWith).
  [[nodiscard]] std::uint64_t radar_frame_bytes() const;

  simt::Device device_;
  int threads_per_block_;
  airfield::FlightDb db_;  ///< Device-resident flight SoA (see simt::Device::transfer).

  // Device-resident working buffers.
  std::vector<double> ex_, ey_;
  std::vector<std::int32_t> amatch_, nradars_;
  std::vector<double> radar_rx_, radar_ry_;
  std::vector<std::int32_t> radar_match_, radar_nhits_, radar_hit_;
  std::vector<std::uint8_t> flags_a_, flags_b_;
  std::vector<std::uint64_t> counters_;

  // Extended-system device buffers.
  std::vector<std::int32_t> occupancy_;
  std::vector<double> multi_rx_, multi_ry_;
  std::vector<std::int32_t> multi_match_, multi_nhits_, multi_hit_;
};

}  // namespace atm::tasks
