// Wide-vector commodity processor backend — the paper's Section 7.2
// future-work platform ("implement the basic ATM tasks ... in these
// commodity processors that provide efficient, vector-based parallel
// computation", citing Xeon Phi and the PLDI/PPoPP SIMDization work).
//
// The ATM inner loops are data-parallel over aircraft/radars, so a
// vectorizing implementation executes the same order-independent semantics
// as every other backend; we run the reference algorithms and model the
// platform time with mimd::VectorModel from the work the run performed.
// Unlike the lock-based MIMD baseline, vector execution is lock-step
// within a core: the platform is deterministic, which is the property the
// paper hopes this class of hardware preserves.
//
// Inner-operation accounting (first-order, documented):
//  * Task 1: the eligible box tests dominate; the vector remainder
//    (masked-out lanes) is folded into gather_efficiency.
//  * Tasks 2+3: a full pair sweep per aircraft plus half a sweep per
//    trial rescan (vector lanes cannot early-exit individually; half is
//    the expected progress of the scalar early-exit they replace).
#pragma once

#include "src/atm/reference_backend.hpp"
#include "src/mimd/vector_model.hpp"

namespace atm::tasks {

class VectorBackend final : public ReferenceBackend {
 public:
  explicit VectorBackend(mimd::VectorSpec spec = mimd::xeon_phi_spec())
      : model_(std::move(spec)) {}

  [[nodiscard]] std::string name() const override {
    return model_.spec().name;
  }

  [[nodiscard]] const mimd::VectorModel& model() const { return model_; }

 private:
  Task1Result do_run_task1(airfield::RadarFrame& frame,
                           const Task1Params& params) final;
  Task23Result do_run_task23(const Task23Params& params) final;
  TerrainResult do_run_terrain(const TerrainTaskParams& params) final;
  DisplayResult do_run_display(const DisplayParams& params) final;
  AdvisoryResult do_run_advisory(const AdvisoryParams& params) final;
  MultiRadarResult do_run_multi_task1(airfield::MultiRadarFrame& frame,
                                      const Task1Params& params) final;
  SporadicResult do_run_sporadic(std::span<const Query> queries,
                                 const SporadicParams& params) final;

 private:
  mimd::VectorModel model_;
};

}  // namespace atm::tasks
