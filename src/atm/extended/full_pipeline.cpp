#include "src/atm/extended/full_pipeline.hpp"

#include <memory>

#include "src/airfield/setup.hpp"
#include "src/atm/degrade.hpp"
#include "src/atm/extended/sporadic.hpp"
#include "src/core/units.hpp"
#include "src/rt/clock.hpp"
#include "src/rt/schedule.hpp"

namespace atm::tasks::extended {

FullSystemResult run_full_system(Backend& backend,
                                 const FullSystemConfig& cfg) {
  FullSystemResult result;
  backend.load(airfield::make_airfield(cfg.aircraft, cfg.seed, cfg.setup));
  backend.set_terrain(std::make_shared<const airfield::TerrainMap>(
      cfg.terrain_seed, cfg.terrain_map));

  std::vector<airfield::RadarTower> towers;
  if (cfg.multi_radar) {
    towers = airfield::make_tower_layout(cfg.seed ^ 0x70BE25ULL, cfg.towers);
  }

  rt::VirtualClock clock;
  const rt::MajorCycleSchedule schedule =
      rt::MajorCycleSchedule::paper_schedule();
  const double period_ms = schedule.period_ms();
  core::Rng radar_rng(cfg.seed ^ 0x4ADA1257A3ABCDEFULL);
  core::Rng query_rng(cfg.seed ^ 0x5B0AAD1C00FFEE11ULL);
  rt::FaultInjector faults(cfg.faults, cfg.seed);
  rt::Governor governor(cfg.governor, degradation_ladder());

  // Any non-met outcome in the current period; feeds the governor.
  bool trouble = false;

  // Runs one task under deadline accounting; returns false when the task
  // had to be skipped (its period had already ended).
  const auto timed = [&](const char* name, double deadline_ms, auto&& fn) {
    if (clock.now_ms() >= deadline_ms) {
      result.monitor.record_skip(name);
      trouble = true;
      return false;
    }
    const double ms = fn();
    if (result.monitor.record(name, clock.now_ms(), ms, deadline_ms) !=
        rt::Outcome::kMet) {
      trouble = true;
    }
    clock.advance_ms(ms);
    return true;
  };

  int global_period = 0;
  for (int cycle = 0; cycle < cfg.major_cycles; ++cycle) {
    for (int period = 0; period < schedule.periods_per_cycle(); ++period) {
      const double period_start =
          static_cast<double>(global_period) * period_ms;
      const double deadline = period_start + period_ms;
      trouble = false;

      // Degrade the task parameters to the governor's current ladder
      // level (level 0 copies the baseline untouched).
      Task1Params task1_params = cfg.task1;
      Task23Params task23_params = cfg.task23;
      apply_degradation(governor.level(), task1_params, task23_params);

      // Stolen host time (fault injection) preempts the executive before
      // the period's first task; on the virtual clock this is exact and
      // deterministic.
      const double stolen_ms = faults.steal_ms();
      if (stolen_ms > 0.0) clock.advance_ms(stolen_ms);

      // Radar creation precedes the period (untimed, Section 4.2).
      airfield::RadarFrame frame;
      airfield::MultiRadarFrame multi_frame;
      if (cfg.multi_radar) {
        multi_frame = airfield::generate_multi_radar(
            backend.state(), towers, radar_rng, cfg.radar);
        result.mean_coverage =
            airfield::mean_coverage(multi_frame, cfg.aircraft);
      } else {
        frame = backend.generate_radar(radar_rng, cfg.radar, nullptr);
        faults.apply(frame);
      }

      // Tracking & correlation.
      timed("task1", deadline, [&] {
        if (cfg.multi_radar) {
          const MultiRadarResult r =
              backend.run_multi_task1(multi_frame, task1_params);
          result.last_multi = r.stats;
          return r.modeled_ms;
        }
        const Task1Result r = backend.run_task1(frame, task1_params);
        result.last_task1 = r.stats;
        return r.modeled_ms;
      });

      if (cfg.apply_reentry) {
        airfield::apply_reentry_all(backend.mutable_state());
      }

      // Display update, every period.
      timed("display", deadline, [&] {
        const DisplayResult r = backend.run_display(cfg.display);
        result.last_display = r.stats;
        return r.modeled_ms;
      });

      // Sporadic controller queries, every period (arrival is simulation
      // scaffolding; answering is the ATM task). The governor's deepest
      // rung sheds the whole batch — the queries still *arrive* (the rng
      // draw keeps the stream aligned) but are not answered, so shedding
      // never perturbs what a recovered period computes.
      if (cfg.sporadic.queries_per_batch > 0) {
        const std::vector<Query> batch =
            make_query_batch(backend.state(), query_rng, cfg.sporadic,
                             cfg.display.sectors_per_axis);
        if (degradation_sheds_sporadic(governor.level())) {
          ++result.sporadic_shed;
        } else {
          timed("sporadic", deadline, [&] {
            const SporadicResult r =
                backend.run_sporadic(batch, cfg.sporadic);
            result.last_sporadic = r.stats;
            return r.modeled_ms;
          });
        }
      }

      // Collision detection & resolution + terrain, end of cycle.
      if (period == schedule.periods_per_cycle() - 1) {
        timed("task23", deadline, [&] {
          const Task23Result r = backend.run_task23(task23_params);
          result.last_task23 = r.stats;
          return r.modeled_ms;
        });
        timed("terrain", deadline, [&] {
          const TerrainResult r = backend.run_terrain(cfg.terrain);
          result.last_terrain = r.stats;
          return r.modeled_ms;
        });
      }

      // Automatic voice advisory, every advisory_every_periods.
      if ((period + 1) % cfg.advisory_every_periods == 0) {
        timed("advisory", deadline, [&] {
          AdvisoryResult r = backend.run_advisory(cfg.advisory);
          result.last_advisory = r.stats;
          result.last_queue = std::move(r.queue);
          return r.modeled_ms;
        });
      }

      governor.observe(clock.now_ms() - period_start, period_ms, trouble);
      clock.advance_to_ms(deadline);
      ++global_period;
    }
  }
  result.virtual_end_ms = clock.now_ms();
  result.final_governor_level = governor.level();
  return result;
}

}  // namespace atm::tasks::extended
