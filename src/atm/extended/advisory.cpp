#include "src/atm/extended/advisory.hpp"

#include <cmath>

#include "src/core/units.hpp"

namespace atm::tasks::extended {

int classify_advisories(const airfield::FlightDb& db, std::size_t i,
                        const AdvisoryParams& params,
                        std::vector<Advisory>& out) {
  int appended = 0;
  const auto id = static_cast<std::int32_t>(i);
  if (db.col[i]) {
    out.push_back(Advisory{id, AdvisoryType::kConflict});
    ++appended;
  }
  if (db.terrain_warn[i]) {
    out.push_back(Advisory{id, AdvisoryType::kTerrain});
    ++appended;
  }
  const double edge = core::kGridHalfExtentNm - params.boundary_warn_nm;
  if (std::fabs(db.x[i]) > edge || std::fabs(db.y[i]) > edge) {
    out.push_back(Advisory{id, AdvisoryType::kBoundary});
    ++appended;
  }
  return appended;
}

AdvisoryStats advisory_scan(const airfield::FlightDb& db,
                            const AdvisoryParams& params,
                            std::vector<Advisory>& queue) {
  AdvisoryStats stats;
  stats.aircraft = db.size();
  queue.clear();
  for (std::size_t i = 0; i < db.size(); ++i) {
    classify_advisories(db, i, params, queue);
  }
  for (const Advisory& adv : queue) {
    switch (adv.type) {
      case AdvisoryType::kConflict:
        ++stats.conflict;
        break;
      case AdvisoryType::kTerrain:
        ++stats.terrain;
        break;
      case AdvisoryType::kBoundary:
        ++stats.boundary;
        break;
    }
  }
  return stats;
}

}  // namespace atm::tasks::extended
