#include "src/atm/extended/multiradar.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace atm::tasks::extended {

using airfield::kDiscarded;
using airfield::kNone;
using airfield::kRedundant;
using airfield::MatchState;

MultiRadarStats correlate_multi(airfield::FlightDb& db,
                                airfield::MultiRadarFrame& frame,
                                MultiRadarScratch& scratch,
                                const Task1Params& params) {
  const std::size_t n = db.size();
  const std::size_t returns = frame.size();
  MultiRadarStats stats;
  stats.returns = returns;

  db.reset_correlation_state();
  frame.base.reset_matches();
  scratch.ex.resize(n);
  scratch.ey.resize(n);
  scratch.nhits.resize(returns);
  scratch.hit_id.resize(returns);
  scratch.amatch.assign(n, kNone);
  scratch.best_d2.assign(n, std::numeric_limits<double>::infinity());

  for (std::size_t i = 0; i < n; ++i) {
    scratch.ex[i] = db.x[i] + db.dx[i];
    scratch.ey[i] = db.y[i] + db.dy[i];
  }

  auto& rmw = frame.base.rmatch_with;
  const auto& rx = frame.base.rx;
  const auto& ry = frame.base.ry;

  const int total_passes = 1 + params.retries;
  for (int pass = 0; pass < total_passes; ++pass) {
    const bool any_active = std::any_of(
        rmw.begin(), rmw.end(), [](std::int32_t m) { return m == kNone; });
    if (!any_active) break;
    ++stats.passes;
    const double half = params.box_half_nm * static_cast<double>(1 << pass);

    // Phase 1 (return-major): coverage counts. A return covering two or
    // more eligible aircraft is ambiguous, exactly as in the base task.
    for (std::size_t r = 0; r < returns; ++r) {
      if (rmw[r] != kNone) continue;
      scratch.nhits[r] = 0;
      scratch.hit_id[r] = kNone;
      for (std::size_t a = 0; a < n; ++a) {
        if (db.rmatch[a] !=
            static_cast<std::int8_t>(MatchState::kUnmatched)) {
          continue;
        }
        ++stats.box_tests;
        if (std::fabs(scratch.ex[a] - rx[r]) < half &&
            std::fabs(scratch.ey[a] - ry[r]) < half) {
          ++scratch.nhits[r];
          scratch.hit_id[r] = static_cast<std::int32_t>(a);
        }
      }
      if (scratch.nhits[r] >= 2) rmw[r] = kDiscarded;
    }

    // Phase 2 (aircraft-major): pick the closest single-hit candidate.
    for (std::size_t a = 0; a < n; ++a) {
      if (db.rmatch[a] != static_cast<std::int8_t>(MatchState::kUnmatched)) {
        continue;
      }
      std::int32_t best = kNone;
      double best_d2 = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < returns; ++r) {
        if (rmw[r] != kNone) continue;  // discarded or spoken for earlier
        if (scratch.nhits[r] != 1 ||
            scratch.hit_id[r] != static_cast<std::int32_t>(a)) {
          continue;
        }
        const double dx = rx[r] - scratch.ex[a];
        const double dy = ry[r] - scratch.ey[a];
        const double d2 = dx * dx + dy * dy;
        if (d2 < best_d2) {
          best_d2 = d2;
          best = static_cast<std::int32_t>(r);
        }
      }
      if (best != kNone) {
        db.rmatch[a] = static_cast<std::int8_t>(MatchState::kMatched);
        scratch.amatch[a] = best;
        scratch.best_d2[a] = best_d2;
      }
    }

    // Phase 3 (return-major): disposition. A single-hit return either won
    // its aircraft or lost to a closer tower.
    for (std::size_t r = 0; r < returns; ++r) {
      if (rmw[r] != kNone) continue;
      if (scratch.nhits[r] != 1) continue;  // zero hits: retry next pass
      const std::int32_t a = scratch.hit_id[r];
      const auto ai = static_cast<std::size_t>(a);
      if (scratch.amatch[ai] == static_cast<std::int32_t>(r)) {
        rmw[r] = a;
      } else if (db.rmatch[ai] ==
                 static_cast<std::int8_t>(MatchState::kMatched)) {
        rmw[r] = kRedundant;
      }
      // else: its sole aircraft stayed unmatched this pass (cannot happen
      // — a single-hit candidate guarantees a non-empty candidate set —
      // but kept for clarity with the kernel variants).
    }
  }

  // Commit.
  for (std::size_t a = 0; a < n; ++a) {
    if (db.rmatch[a] == static_cast<std::int8_t>(MatchState::kMatched) &&
        scratch.amatch[a] >= 0) {
      const auto r = static_cast<std::size_t>(scratch.amatch[a]);
      db.x[a] = rx[r];
      db.y[a] = ry[r];
      ++stats.matched_aircraft;
    } else {
      db.x[a] = scratch.ex[a];
      db.y[a] = scratch.ey[a];
    }
  }
  for (const std::int32_t m : rmw) {
    if (m == kNone) ++stats.unmatched_returns;
    if (m == kDiscarded) ++stats.discarded_returns;
    if (m == kRedundant) ++stats.redundant_returns;
  }
  return stats;
}

MultiRadarStats correlate_multi(airfield::FlightDb& db,
                                airfield::MultiRadarFrame& frame,
                                const Task1Params& params) {
  MultiRadarScratch scratch;
  return correlate_multi(db, frame, scratch, params);
}

}  // namespace atm::tasks::extended
