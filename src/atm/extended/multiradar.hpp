// Multi-tower radar correlation — the unsimplified Task 1.
//
// With 2-6 towers seeing each aircraft, a period's frame carries several
// returns per aircraft and the paper's single-return rules no longer
// apply: an aircraft covered by multiple returns is not ambiguous — it is
// well-observed, and correlation should keep the *best* return and mark
// the rest redundant. Order-independent semantics shared by all backends:
//
//  pass k (box half-extent doubling as in the base Task 1):
//    * a return whose box covers >= 2 eligible aircraft is ambiguous and
//      discarded (rMatchWith = -2), exactly as in the base task;
//    * an eligible aircraft's *candidate set* is the active single-hit
//      returns covering it; if non-empty, the candidate with the smallest
//      squared distance to the aircraft's expected position (ties to the
//      lowest return index) wins: aircraft matched, return committed;
//      losing candidates are marked redundant (rMatchWith = -3);
//    * further passes only look at still-unmatched returns and aircraft.
//
//  commit: matched aircraft take their winning return's position;
//  everyone else advances to the expected position.
#pragma once

#include "src/airfield/flight_db.hpp"
#include "src/airfield/towers.hpp"
#include "src/atm/extended/ext_types.hpp"
#include "src/atm/task_types.hpp"

namespace atm::tasks::extended {

/// Reusable scratch for the multi-return correlation.
struct MultiRadarScratch {
  std::vector<double> ex, ey;
  std::vector<std::int32_t> nhits;   ///< Eligible aircraft per return.
  std::vector<std::int32_t> hit_id;  ///< Sole covered aircraft.
  std::vector<std::int32_t> amatch;  ///< Winning return per aircraft.
  std::vector<double> best_d2;       ///< Winning squared distance.
};

/// Reference (sequential) multi-return correlation and tracking.
MultiRadarStats correlate_multi(airfield::FlightDb& db,
                                airfield::MultiRadarFrame& frame,
                                MultiRadarScratch& scratch,
                                const Task1Params& params = {});

/// Convenience overload with throwaway scratch.
MultiRadarStats correlate_multi(airfield::FlightDb& db,
                                airfield::MultiRadarFrame& frame,
                                const Task1Params& params = {});

}  // namespace atm::tasks::extended
