// Automatic voice advisory (AVA) — reference implementation.
//
// STARAN's Dulles demonstration included automatic voice advisories: the
// system periodically scans the flight records and queues spoken warnings
// for aircraft in conflict, near terrain, or approaching the boundary of
// the controlled field. The scan runs every 4 seconds in our extended
// schedule; the queue is ordered by aircraft id then advisory type so
// every backend produces the identical queue.
#pragma once

#include "src/airfield/flight_db.hpp"
#include "src/atm/extended/ext_types.hpp"

namespace atm::tasks::extended {

/// Classify aircraft i. Appends its advisories (in type order) to `out`.
/// Pure shared predicate; returns how many advisories were appended.
int classify_advisories(const airfield::FlightDb& db, std::size_t i,
                        const AdvisoryParams& params,
                        std::vector<Advisory>& out);

/// Reference AVA scan over the whole database.
AdvisoryStats advisory_scan(const airfield::FlightDb& db,
                            const AdvisoryParams& params,
                            std::vector<Advisory>& queue);

}  // namespace atm::tasks::extended
