// The complete ATM system under the real-time executive — the paper's
// Section 7.2 future work ("implement all basic ATM tasks and create a
// more complete ATM system that can be tested ... to determine if it is
// still viable and will not miss deadlines").
//
// Extended schedule per 16-period major cycle:
//
//   every period     : Task 1 (tracking & correlation)  then
//                      display update
//   periods 7 and 15 : automatic voice advisory (every 4 s)
//   period 15        : Tasks 2+3 (collision detection & resolution), then
//                      terrain avoidance
//
// Optionally the radar environment is the unsimplified multi-tower one,
// in which case the multi-return correlation replaces Task 1.
#pragma once

#include <vector>

#include "src/airfield/setup.hpp"
#include "src/airfield/terrain.hpp"
#include "src/airfield/towers.hpp"
#include "src/atm/backend.hpp"
#include "src/rt/deadline.hpp"
#include "src/rt/faults.hpp"
#include "src/rt/governor.hpp"

namespace atm::tasks::extended {

struct FullSystemConfig {
  std::size_t aircraft = 1000;
  int major_cycles = 1;
  std::uint64_t seed = 42;
  std::uint64_t terrain_seed = 99;
  airfield::SetupParams setup;
  airfield::RadarParams radar;
  airfield::TerrainParams terrain_map;
  Task1Params task1;
  Task23Params task23;
  TerrainTaskParams terrain;
  DisplayParams display;
  AdvisoryParams advisory;
  /// Sporadic controller queries per period (0 disables the task).
  SporadicParams sporadic;
  /// AVA cadence in periods (8 = every 4 seconds).
  int advisory_every_periods = 8;
  /// Use the multi-tower radar environment instead of the paper's
  /// one-return simplification.
  bool multi_radar = false;
  airfield::TowerLayoutParams towers;
  bool apply_reentry = true;
  /// Deadline-aware overload governor (disabled by default). The full
  /// system walks the same tasks::degradation_ladder() as run_pipeline,
  /// and its top rung additionally sheds the sporadic query task.
  rt::GovernorConfig governor;
  /// Seeded fault injection (disabled by default). The single-radar mode
  /// corrupts the frame like run_pipeline; stolen time advances the
  /// virtual clock in both radar modes.
  rt::FaultConfig faults;
};

struct FullSystemResult {
  rt::DeadlineMonitor monitor;
  Task1Stats last_task1;
  MultiRadarStats last_multi;
  Task23Stats last_task23;
  TerrainStats last_terrain;
  DisplayStats last_display;
  AdvisoryStats last_advisory;
  SporadicStats last_sporadic;
  std::vector<Advisory> last_queue;
  double virtual_end_ms = 0.0;
  double mean_coverage = 0.0;  ///< Returns per aircraft (multi-radar mode).
  int final_governor_level = 0;     ///< Ladder level at run end.
  std::uint64_t sporadic_shed = 0;  ///< Query batches the governor shed.
};

/// Load a fresh airfield + terrain into `backend` and run the full system.
FullSystemResult run_full_system(Backend& backend,
                                 const FullSystemConfig& cfg);

}  // namespace atm::tasks::extended
