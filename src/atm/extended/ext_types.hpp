// Parameter and statistics types for the extended ("complete ATM system")
// task set — the paper's Section 7.2 future work, with task definitions
// following the basic ATM task list of [13]: terrain avoidance, controller
// display update, and automatic voice advisory, plus the multi-tower radar
// correlation of the unsimplified radar environment.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/units.hpp"

namespace atm::tasks {

// --- Terrain avoidance (every major cycle) ---------------------------------

struct TerrainTaskParams {
  /// Look-ahead along the current path, in periods (2 minutes).
  double horizon_periods = 240.0;
  /// Path sample points within the horizon.
  int samples = 16;
  /// Required ground clearance in feet.
  double clearance_feet = 1000.0;
  /// Extra altitude margin added when commanding a climb.
  double climb_buffer_feet = 500.0;
};

struct TerrainStats {
  std::uint64_t aircraft = 0;
  std::uint64_t warnings = 0;  ///< Aircraft violating clearance ahead.
  std::uint64_t climbs = 0;    ///< Aircraft commanded to a higher level.
  std::uint64_t samples = 0;   ///< Work: terrain lookups performed.

  friend bool operator==(const TerrainStats&, const TerrainStats&) = default;
};

struct TerrainResult {
  double modeled_ms = 0.0;
  TerrainStats stats;
};

// --- Controller display update (every period) ------------------------------

struct DisplayParams {
  /// Sectors per axis over the airfield (16 => 16 nm sectors).
  int sectors_per_axis = 16;
};

struct DisplayStats {
  std::uint64_t aircraft = 0;
  std::uint64_t handoffs = 0;          ///< Aircraft that changed sector.
  std::uint64_t occupied_sectors = 0;  ///< Sectors with >= 1 aircraft.
  std::uint64_t max_occupancy = 0;     ///< Densest sector's count.

  friend bool operator==(const DisplayStats&, const DisplayStats&) = default;
};

struct DisplayResult {
  double modeled_ms = 0.0;
  DisplayStats stats;
};

// --- Automatic voice advisory (every 4 seconds) -----------------------------

struct AdvisoryParams {
  /// Aircraft closer than this to the field edge get a boundary advisory.
  double boundary_warn_nm = 8.0;
};

/// Advisory message categories, in queue order.
enum class AdvisoryType : std::int8_t {
  kConflict = 0,  ///< Collision flag raised by Tasks 2+3.
  kTerrain = 1,   ///< Terrain-avoidance warning active.
  kBoundary = 2,  ///< Approaching the edge of the controlled field.
};

struct Advisory {
  std::int32_t aircraft = -1;
  AdvisoryType type = AdvisoryType::kConflict;

  friend bool operator==(const Advisory&, const Advisory&) = default;
};

struct AdvisoryStats {
  std::uint64_t aircraft = 0;
  std::uint64_t conflict = 0;
  std::uint64_t terrain = 0;
  std::uint64_t boundary = 0;

  [[nodiscard]] std::uint64_t total() const {
    return conflict + terrain + boundary;
  }
  friend bool operator==(const AdvisoryStats&,
                         const AdvisoryStats&) = default;
};

struct AdvisoryResult {
  double modeled_ms = 0.0;
  AdvisoryStats stats;
  /// The voice queue, ordered by aircraft id then type (deterministic on
  /// every backend).
  std::vector<Advisory> queue;
};

// --- Sporadic requests (controller queries, random arrival) -----------------

/// Query kinds a controller can issue against the flight database.
enum class QueryKind : std::int8_t {
  kById = 0,     ///< Flight record of one aircraft.
  kInSector = 1, ///< All aircraft in a display sector.
  kNearPoint = 2 ///< All aircraft within a radius of a point.
};

struct Query {
  QueryKind kind = QueryKind::kById;
  std::int32_t id = -1;       ///< kById target.
  std::int32_t sector = -1;   ///< kInSector target.
  double x = 0.0, y = 0.0;    ///< kNearPoint centre (nm).
  double radius_nm = 20.0;    ///< kNearPoint radius.
};

struct SporadicParams {
  /// Queries arriving per batch (0 disables the task in the full system).
  int queries_per_batch = 4;
  /// Radius used when generating kNearPoint queries.
  double near_radius_nm = 20.0;
};

struct SporadicStats {
  std::uint64_t queries = 0;
  std::uint64_t hits = 0;  ///< Total aircraft returned across answers.

  friend bool operator==(const SporadicStats&,
                         const SporadicStats&) = default;
};

struct SporadicResult {
  double modeled_ms = 0.0;
  SporadicStats stats;
  /// Per-query answers: aircraft ids in ascending order (deterministic on
  /// every backend).
  std::vector<std::vector<std::int32_t>> answers;
};

// --- Multi-tower radar correlation ------------------------------------------

struct MultiRadarStats {
  std::uint64_t returns = 0;           ///< Frame size.
  std::uint64_t matched_aircraft = 0;  ///< Aircraft that took a return.
  std::uint64_t redundant_returns = 0; ///< Covered by a better return.
  std::uint64_t discarded_returns = 0; ///< Ambiguous (covered 2+ aircraft).
  std::uint64_t unmatched_returns = 0;
  int passes = 0;
  std::uint64_t box_tests = 0;  ///< Work (architecture-dependent).

  friend bool operator==(const MultiRadarStats&,
                         const MultiRadarStats&) = default;
};

struct MultiRadarResult {
  double modeled_ms = 0.0;
  MultiRadarStats stats;
};

}  // namespace atm::tasks
