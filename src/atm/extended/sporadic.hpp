// Sporadic requests — controller queries against the dynamic flight
// database, the remaining on-demand activity of [13]'s basic ATM task set.
//
// Queries arrive randomly (a controller asks for one flight's record, for
// every aircraft in a sector, or for everything near a point) and must be
// answered within the period. This task is the associative processor's
// home turf: each query is literally one associative search; on the other
// platforms it is a scan.
//
// Answer determinism: every backend returns each query's matching aircraft
// ids in ascending order.
#pragma once

#include <span>
#include <vector>

#include "src/airfield/flight_db.hpp"
#include "src/atm/extended/ext_types.hpp"
#include "src/core/rng.hpp"

namespace atm::tasks::extended {

/// Evaluate one query against aircraft i. Pure predicate shared by every
/// backend.
[[nodiscard]] bool query_matches(const airfield::FlightDb& db,
                                 std::size_t i, const Query& query);

/// Generate a random query batch (the "controllers" — simulation
/// scaffolding, not an ATM task). kById targets an existing aircraft;
/// kInSector draws an occupied-ish sector by sampling an aircraft's
/// position; kNearPoint centres on a uniform field position.
[[nodiscard]] std::vector<Query> make_query_batch(
    const airfield::FlightDb& db, core::Rng& rng,
    const SporadicParams& params, int sectors_per_axis = 16);

/// Reference (sequential) evaluation of a query batch.
SporadicStats answer_queries(const airfield::FlightDb& db,
                             std::span<const Query> queries,
                             std::vector<std::vector<std::int32_t>>& answers);

}  // namespace atm::tasks::extended
