#include "src/atm/extended/display.hpp"

#include <algorithm>

#include "src/core/units.hpp"

namespace atm::tasks::extended {

std::int32_t sector_of(double x, double y, int sectors_per_axis) {
  const double span = 2.0 * core::kGridHalfExtentNm;
  const double fx = (x + core::kGridHalfExtentNm) / span;
  const double fy = (y + core::kGridHalfExtentNm) / span;
  const int k = sectors_per_axis;
  const int cx = std::clamp(static_cast<int>(fx * k), 0, k - 1);
  const int cy = std::clamp(static_cast<int>(fy * k), 0, k - 1);
  return static_cast<std::int32_t>(cy * k + cx);
}

DisplayStats display_update(airfield::FlightDb& db,
                            std::vector<std::int32_t>& occupancy,
                            const DisplayParams& params) {
  DisplayStats stats;
  stats.aircraft = db.size();
  const int k = params.sectors_per_axis;
  occupancy.assign(static_cast<std::size_t>(k) * k, 0);

  for (std::size_t i = 0; i < db.size(); ++i) {
    const std::int32_t s = sector_of(db.x[i], db.y[i], k);
    if (db.sector[i] != airfield::kNone && db.sector[i] != s) {
      ++stats.handoffs;
    }
    db.sector[i] = s;
    ++occupancy[static_cast<std::size_t>(s)];
  }
  for (const std::int32_t count : occupancy) {
    if (count > 0) ++stats.occupied_sectors;
    stats.max_occupancy =
        std::max(stats.max_occupancy, static_cast<std::uint64_t>(count));
  }
  return stats;
}

}  // namespace atm::tasks::extended
