// Controller display update — reference implementation.
//
// Every period the display processor bins aircraft into control sectors,
// detects sector handoffs (an aircraft crossing into a new controller's
// sector), and refreshes per-sector occupancy for the controller screens.
// In [13]'s task set this is the display-processing activity scheduled
// alongside tracking each half-second.
#pragma once

#include <vector>

#include "src/airfield/flight_db.hpp"
#include "src/atm/extended/ext_types.hpp"

namespace atm::tasks::extended {

/// Sector id of position (x, y) on a k x k grid over the airfield.
/// Pure function shared by all backends.
[[nodiscard]] std::int32_t sector_of(double x, double y,
                                     int sectors_per_axis);

/// Reference display update: assigns db.sector, counts handoffs, and
/// fills `occupancy` (resized to k*k) with per-sector aircraft counts.
DisplayStats display_update(airfield::FlightDb& db,
                            std::vector<std::int32_t>& occupancy,
                            const DisplayParams& params = {});

}  // namespace atm::tasks::extended
