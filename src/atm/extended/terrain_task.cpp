#include "src/atm/extended/terrain_task.hpp"

#include <algorithm>

namespace atm::tasks::extended {

TerrainScan scan_terrain_path(double x, double y, double dx, double dy,
                              double alt,
                              const airfield::TerrainMap& terrain,
                              const TerrainTaskParams& params) {
  TerrainScan scan;
  double max_ground = 0.0;
  for (int k = 0; k < params.samples; ++k) {
    const double t = params.horizon_periods *
                     static_cast<double>(k + 1) /
                     static_cast<double>(params.samples);
    const double px = x + dx * t;
    const double py = y + dy * t;
    const double ground = terrain.elevation_at(px, py);
    max_ground = std::max(max_ground, ground);
    if (alt - ground < params.clearance_feet) {
      scan.warn = true;
    }
  }
  scan.required_alt_feet =
      max_ground + params.clearance_feet + params.climb_buffer_feet;
  return scan;
}

TerrainScan scan_terrain(const airfield::FlightDb& db, std::size_t i,
                         const airfield::TerrainMap& terrain,
                         const TerrainTaskParams& params) {
  return scan_terrain_path(db.x[i], db.y[i], db.dx[i], db.dy[i], db.alt[i],
                           terrain, params);
}

bool apply_terrain_scan(airfield::FlightDb& db, std::size_t i,
                        const TerrainScan& scan) {
  db.terrain_warn[i] = scan.warn ? 1 : 0;
  if (scan.warn && scan.required_alt_feet > db.alt[i]) {
    db.alt[i] = scan.required_alt_feet;
    return true;
  }
  return false;
}

TerrainStats terrain_avoidance(airfield::FlightDb& db,
                               const airfield::TerrainMap& terrain,
                               const TerrainTaskParams& params) {
  TerrainStats stats;
  stats.aircraft = db.size();
  for (std::size_t i = 0; i < db.size(); ++i) {
    const TerrainScan scan = scan_terrain(db, i, terrain, params);
    stats.samples += static_cast<std::uint64_t>(params.samples);
    if (scan.warn) ++stats.warnings;
    if (apply_terrain_scan(db, i, scan)) ++stats.climbs;
  }
  return stats;
}

}  // namespace atm::tasks::extended
