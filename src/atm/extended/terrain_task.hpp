// Terrain avoidance — reference implementation and the shared per-aircraft
// scan every backend reuses.
//
// For each aircraft, sample the projected path over the next 2 minutes;
// if any sample's ground clearance falls below the minimum, flag a terrain
// warning and command a climb to (highest sampled terrain + clearance +
// buffer). Aircraft paths are not turned — vertical resolution is the
// standard terrain escape, and it cannot create new aircraft-to-aircraft
// conflicts worse than the ones Task 2 already manages (the altitude gate
// re-evaluates next cycle).
#pragma once

#include "src/airfield/flight_db.hpp"
#include "src/airfield/terrain.hpp"
#include "src/atm/extended/ext_types.hpp"

namespace atm::tasks::extended {

/// Per-aircraft outcome of the terrain scan.
struct TerrainScan {
  bool warn = false;
  double required_alt_feet = 0.0;  ///< max(ground) + clearance + buffer.
};

/// Scan a projected path (position, velocity, altitude) against the
/// terrain. Pure function — shared verbatim by every backend (including
/// the CUDA kernels, which see raw spans instead of a FlightDb) so results
/// are bit-identical.
[[nodiscard]] TerrainScan scan_terrain_path(
    double x, double y, double dx, double dy, double alt,
    const airfield::TerrainMap& terrain, const TerrainTaskParams& params);

/// Scan aircraft i's projected path against the terrain.
[[nodiscard]] TerrainScan scan_terrain(const airfield::FlightDb& db,
                                       std::size_t i,
                                       const airfield::TerrainMap& terrain,
                                       const TerrainTaskParams& params);

/// Apply a scan to the record: set the warning flag and climb if needed.
/// Returns true when a climb was commanded.
bool apply_terrain_scan(airfield::FlightDb& db, std::size_t i,
                        const TerrainScan& scan);

/// Reference (sequential) terrain-avoidance task over the whole database.
TerrainStats terrain_avoidance(airfield::FlightDb& db,
                               const airfield::TerrainMap& terrain,
                               const TerrainTaskParams& params = {});

}  // namespace atm::tasks::extended
