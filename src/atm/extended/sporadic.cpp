#include "src/atm/extended/sporadic.hpp"

#include <cmath>

#include "src/atm/extended/display.hpp"
#include "src/core/units.hpp"

namespace atm::tasks::extended {

bool query_matches(const airfield::FlightDb& db, std::size_t i,
                   const Query& query) {
  switch (query.kind) {
    case QueryKind::kById:
      return static_cast<std::int32_t>(i) == query.id;
    case QueryKind::kInSector:
      return db.sector[i] == query.sector;
    case QueryKind::kNearPoint: {
      const double dx = db.x[i] - query.x;
      const double dy = db.y[i] - query.y;
      return dx * dx + dy * dy <= query.radius_nm * query.radius_nm;
    }
  }
  return false;
}

std::vector<Query> make_query_batch(const airfield::FlightDb& db,
                                    core::Rng& rng,
                                    const SporadicParams& params,
                                    int sectors_per_axis) {
  std::vector<Query> batch;
  if (db.empty()) return batch;
  for (int q = 0; q < params.queries_per_batch; ++q) {
    Query query;
    const int kind = rng.uniform_int(0, 2);
    query.kind = static_cast<QueryKind>(kind);
    switch (query.kind) {
      case QueryKind::kById:
        query.id = rng.uniform_int(0, static_cast<int>(db.size()) - 1);
        break;
      case QueryKind::kInSector: {
        // Sample an aircraft's position so the sector is usually occupied.
        const auto i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(db.size()) - 1));
        query.sector = sector_of(db.x[i], db.y[i], sectors_per_axis);
        break;
      }
      case QueryKind::kNearPoint:
        query.x = rng.uniform(-core::kGridHalfExtentNm,
                              core::kGridHalfExtentNm);
        query.y = rng.uniform(-core::kGridHalfExtentNm,
                              core::kGridHalfExtentNm);
        query.radius_nm = params.near_radius_nm;
        break;
    }
    batch.push_back(query);
  }
  return batch;
}

SporadicStats answer_queries(
    const airfield::FlightDb& db, std::span<const Query> queries,
    std::vector<std::vector<std::int32_t>>& answers) {
  SporadicStats stats;
  stats.queries = queries.size();
  answers.assign(queries.size(), {});
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (std::size_t i = 0; i < db.size(); ++i) {
      if (query_matches(db, i, queries[q])) {
        answers[q].push_back(static_cast<std::int32_t>(i));
        ++stats.hits;
      }
    }
  }
  return stats;
}

}  // namespace atm::tasks::extended
