// Thin wrappers over the canonical band math in src/core/kern/. The
// implementation lives there so the batch kernels (scalar and AVX2) and
// the platform backends (CUDA model, associative tasks) share one source
// of truth for Equations 1-6; this TU just adapts the result structs to
// the historical batcher API.
#include "src/atm/batcher.hpp"

#include "src/core/kern/band_math.hpp"

namespace atm::tasks {

AxisWindow axis_band_window(double p, double v, double band_nm) {
  const core::kern::AxisWindow w = core::kern::axis_band_window(p, v, band_nm);
  return AxisWindow{w.entry, w.exit, w.always, w.never};
}

PairConflict batcher_pair_test(double px, double py, double vx, double vy,
                               double band_nm, double horizon_periods) {
  const core::kern::PairWindow pw =
      core::kern::pair_band_test(px, py, vx, vy, band_nm, horizon_periods);
  return PairConflict{pw.conflict, pw.time_min, pw.time_max};
}

}  // namespace atm::tasks
