#include "src/atm/batcher.hpp"

#include <algorithm>
#include <cmath>

#include "src/core/check.hpp"

namespace atm::tasks {
namespace {

/// Relative velocities below this (nm/period) are treated as parallel
/// tracks. 1e-9 nm/period = 7.2e-6 knots: far below any physical closure.
constexpr double kParallelEps = 1e-9;

}  // namespace

AxisWindow axis_band_window(double p, double v, double band_nm) {
  AxisWindow w;
  if (std::fabs(v) < kParallelEps) {
    if (std::fabs(p) <= band_nm) {
      w.always = true;
    } else {
      w.never = true;
    }
    return w;
  }
  const double t1 = (-band_nm - p) / v;
  const double t2 = (band_nm - p) / v;
  w.entry = std::min(t1, t2);
  w.exit = std::max(t1, t2);
  return w;
}

PairConflict batcher_pair_test(double px, double py, double vx, double vy,
                               double band_nm, double horizon_periods) {
  PairConflict out;

  // Equations 1-6 precondition: a non-positive band_nm or horizon_periods makes every
  // window empty and Tasks 2+3 report zero conflicts — a silently useless
  // sweep, not an error any caller ever wants.
  ATM_CHECK_MSG(band_nm > 0.0 && horizon_periods > 0.0,
                "degenerate Batcher params: band_nm=" << band_nm << " horizon_periods="
                                                   << horizon_periods);

  const AxisWindow wx = axis_band_window(px, vx, band_nm);
  const AxisWindow wy = axis_band_window(py, vy, band_nm);
  if (wx.never || wy.never) return out;

  // Equations 5-6: largest entry, smallest exit; an "always" axis
  // contributes (-inf, +inf) and drops out of the max/min.
  double entry = 0.0;
  double exit = horizon_periods;
  if (!wx.always) {
    entry = std::max(entry, wx.entry);
    exit = std::min(exit, wx.exit);
  }
  if (!wy.always) {
    entry = std::max(entry, wy.entry);
    exit = std::min(exit, wy.exit);
  }

  if (entry < exit) {
    out.conflict = true;
    out.time_min = entry;
    out.time_max = exit;
  }
  return out;
}

}  // namespace atm::tasks
