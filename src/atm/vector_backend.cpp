#include "src/atm/vector_backend.hpp"

namespace atm::tasks {

Task1Result VectorBackend::do_run_task1(airfield::RadarFrame& frame,
                                     const Task1Params& params) {
  Task1Result result = ReferenceBackend::do_run_task1(frame, params);
  const std::uint64_t ops =
      result.stats.box_tests + 4 * aircraft_count();
  result.modeled_ms = model_.model_ms(
      ops, 2 + 3 * static_cast<std::uint64_t>(result.stats.passes));
  return result;
}

Task23Result VectorBackend::do_run_task23(const Task23Params& params) {
  Task23Result result = ReferenceBackend::do_run_task23(params);
  const std::uint64_t n = aircraft_count();
  const std::uint64_t sweep = n > 0 ? n - 1 : 0;
  const std::uint64_t ops =
      n * sweep + result.stats.rescans * sweep / 2 + 4 * n;
  result.modeled_ms = model_.model_ms(ops, 2);
  return result;
}

TerrainResult VectorBackend::do_run_terrain(const TerrainTaskParams& params) {
  TerrainResult result = ReferenceBackend::do_run_terrain(params);
  result.modeled_ms = model_.model_ms(result.stats.samples * 5, 1);
  return result;
}

DisplayResult VectorBackend::do_run_display(const DisplayParams& params) {
  DisplayResult result = ReferenceBackend::do_run_display(params);
  result.modeled_ms = model_.model_ms(4 * aircraft_count(), 1);
  return result;
}

AdvisoryResult VectorBackend::do_run_advisory(const AdvisoryParams& params) {
  AdvisoryResult result = ReferenceBackend::do_run_advisory(params);
  result.modeled_ms =
      model_.model_ms(4 * aircraft_count() + result.queue.size(), 1);
  return result;
}

SporadicResult VectorBackend::do_run_sporadic(std::span<const Query> queries,
                                           const SporadicParams& params) {
  SporadicResult result = ReferenceBackend::do_run_sporadic(queries, params);
  result.modeled_ms = model_.model_ms(
      static_cast<std::uint64_t>(queries.size()) * aircraft_count(), 1);
  return result;
}

MultiRadarResult VectorBackend::do_run_multi_task1(
    airfield::MultiRadarFrame& frame, const Task1Params& params) {
  MultiRadarResult result = ReferenceBackend::do_run_multi_task1(frame, params);
  // Phase 1 + phase 2 are both frame-by-table sweeps.
  const std::uint64_t ops =
      2 * result.stats.box_tests + 4 * aircraft_count();
  result.modeled_ms = model_.model_ms(
      ops, 2 + 3 * static_cast<std::uint64_t>(result.stats.passes));
  return result;
}

}  // namespace atm::tasks
