// The timed major-cycle simulation (paper Section 4.2): 16 half-second
// periods per 8-second major cycle, radar generation before each period,
// Task 1 every period, Tasks 2+3 at the end of the 16th period, deadline
// accounting throughout, and waiting out the remainder of each period so
// nothing starts ahead of schedule.
//
// One entry point drives every mode: `run_pipeline(backend, cfg)` reads
// the clock mode (virtual modeled time vs. the paper's real wall-clock
// executive), whether the backend is pre-loaded, and the optional trace
// sink from the PipelineConfig.
#pragma once

#include <vector>

#include "src/airfield/history.hpp"
#include "src/airfield/setup.hpp"
#include "src/atm/backend.hpp"
#include "src/obs/trace.hpp"
#include "src/rt/clock.hpp"
#include "src/rt/deadline.hpp"
#include "src/rt/faults.hpp"
#include "src/rt/governor.hpp"
#include "src/rt/schedule.hpp"

namespace atm::tasks {

/// How the executive keeps time.
enum class ClockMode {
  /// Advance a virtual clock by each task's *modeled* platform time —
  /// deterministic, instant, the mode behind the paper's platform
  /// comparisons.
  kVirtual,
  /// The paper's actual executive loop: run each period's tasks, then
  /// wait out the remainder of the period on the host's real clock so
  /// nothing starts ahead of schedule (Section 4.2), counting misses
  /// against real deadlines. Durations are the backend's *measured host
  /// execution* times, so this mode demonstrates and tests the executive
  /// mechanics on real time.
  kWallclock,
};

struct PipelineConfig {
  std::size_t aircraft = 1000;
  int major_cycles = 1;
  std::uint64_t seed = 42;            ///< Airfield + radar noise seed.
  airfield::SetupParams setup;        ///< Airfield generation parameters.
  airfield::RadarParams radar;
  Task1Params task1;
  Task23Params task23;
  /// Apply the paper's grid re-entry rule between periods.
  bool apply_reentry = true;
  /// When non-null, the pipeline snapshots the tracked positions into
  /// this recorder after every Task 1 (the paper's "all radar is saved"
  /// retrace capability; untimed bookkeeping).
  airfield::FlightRecorder* recorder = nullptr;

  ClockMode clock_mode = ClockMode::kVirtual;
  /// Real period length in kWallclock mode. 500.0 is the paper's rate;
  /// small values keep demos/tests fast. Ignored in kVirtual mode (the
  /// virtual period is always the paper's 500 ms).
  double real_period_ms = 500.0;
  /// Skip the initial load: run on the backend's current flight state
  /// (so callers can share one airfield across platforms or chain runs).
  bool preloaded = false;
  /// When non-null, the run emits cycle/period spans, per-task events,
  /// and deadline outcomes into this sink (borrowed, never owned).
  /// Tracing never alters results: a run with a sink produces the exact
  /// PipelineResult of a run without one.
  obs::TraceSink* trace = nullptr;

  /// Deadline-aware overload governor (disabled by default). When
  /// enabled, the executive walks the tasks::degradation_ladder() on
  /// sustained overload and recovers with hysteresis; every transition
  /// is one kGovernor trace event. A disabled governor leaves every run
  /// bit-identical to the pre-governor executive.
  rt::GovernorConfig governor;
  /// Seeded fault injection (disabled by default): radar dropout bursts,
  /// ghost returns, noise bursts, and stolen host time. Deterministic
  /// given (seed, config); see src/rt/faults.hpp.
  rt::FaultConfig faults;
};

/// What happened in one half-second period.
struct PeriodLog {
  int cycle = 0;
  int period = 0;
  double radar_ms = 0.0;       ///< Modeled radar-generation time (untimed).
  double task1_ms = 0.0;
  rt::Outcome task1_outcome = rt::Outcome::kMet;
  bool task23_ran = false;
  double task23_ms = 0.0;
  rt::Outcome task23_outcome = rt::Outcome::kMet;
  std::size_t wrapped = 0;     ///< Aircraft re-entered at (-x, -y).
  int governor_level = 0;      ///< Ladder level the period ran at.
  double stolen_ms = 0.0;      ///< Host time the fault injector stole.
};

/// Result of one executive run. The deadline ledger lives behind
/// deadlines(): the monitor is the single source of truth for met /
/// missed / skipped (the per-period outcome fields in `periods` are
/// derived from the very record() calls that fill it, and run_pipeline
/// checks the two agree), so callers read aggregates from here instead
/// of re-counting by hand.
class PipelineResult {
 public:
  std::vector<PeriodLog> periods;
  core::StreamingStats task1_ms;   ///< Over started Task 1 instances.
  core::StreamingStats task23_ms;  ///< Over started Task 2+3 instances.
  Task1Stats last_task1;
  Task23Stats last_task23;
  double virtual_end_ms = 0.0;     ///< Executive clock at run end.
  int final_governor_level = 0;    ///< Ladder level at run end.
  std::uint64_t governor_degrades = 0;  ///< Degrade transitions taken.
  std::uint64_t governor_recovers = 0;  ///< Recover transitions taken.

  /// The per-task deadline ledger of the run.
  [[nodiscard]] const rt::DeadlineMonitor& deadlines() const {
    return monitor_;
  }

  /// The paper's headline count: misses plus skips across all tasks.
  [[nodiscard]] std::uint64_t missed_or_skipped() const {
    return monitor_.total_missed() + monitor_.total_skipped();
  }

  /// True when every scheduled task instance met its period deadline.
  [[nodiscard]] bool all_deadlines_met() const {
    return missed_or_skipped() == 0;
  }

 private:
  friend PipelineResult run_pipeline(Backend& backend,
                                     const PipelineConfig& cfg);
  rt::DeadlineMonitor monitor_;
};

/// Run cfg.major_cycles full major cycles on `backend` in the configured
/// clock mode. Unless cfg.preloaded is set, the backend is first loaded
/// with a fresh airfield of cfg.aircraft flights (seeded by cfg.seed).
PipelineResult run_pipeline(Backend& backend, const PipelineConfig& cfg);

}  // namespace atm::tasks
