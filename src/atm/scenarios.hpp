// Named workload scenarios: parameter bundles for the situations the
// paper's introduction and future work motivate. Each scenario configures
// the airfield generator, the radar environment, and the task parameters
// coherently, so examples/benches/tests can say what they simulate instead
// of repeating parameter soup.
#pragma once

#include <string>
#include <vector>

#include "src/airfield/radar.hpp"
#include "src/airfield/setup.hpp"
#include "src/atm/extended/ext_types.hpp"
#include "src/atm/extended/full_pipeline.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/task_types.hpp"

namespace atm::tasks {

struct Scenario {
  std::string name;
  std::string description;
  std::size_t default_aircraft = 1000;
  airfield::SetupParams setup;
  airfield::RadarParams radar;
  Task1Params task1;
  Task23Params task23;
  TerrainTaskParams terrain;
  AdvisoryParams advisory;
  /// Host-path candidate enumeration for both Task 1 and Tasks 2+3;
  /// make_pipeline_config / make_full_config copy it into the task param
  /// bundles so one knob configures the whole workload. Either value
  /// yields identical task outcomes (see src/core/spatial/).
  core::spatial::BroadphaseMode broadphase =
      core::spatial::BroadphaseMode::kBruteForce;
};

/// The paper's evaluation setup: a 256 nm field, 30-600 knot traffic at
/// all flight levels, one noisy return per aircraft per period.
[[nodiscard]] Scenario paper_airfield();

/// The STARAN heritage scenario: Goodyear's 1972 Dulles demonstration
/// scale — hundreds of aircraft, denser radar noise (real 1972 radar).
[[nodiscard]] Scenario dulles_1972();

/// High-altitude en-route traffic: fast, flight-level stratified (fewer
/// altitude-gate passes), longer look-ahead.
[[nodiscard]] Scenario dense_en_route();

/// Terminal area: a small busy box of slow descending traffic, tight
/// separation, frequent conflicts.
[[nodiscard]] Scenario terminal_area();

/// The Section 7.2 mobile-ATM drone swarm: tiny field, slow low drones,
/// GPS-grade reports, hard turns.
[[nodiscard]] Scenario drone_swarm();

/// Every scenario above, for sweep-style tests and demos.
[[nodiscard]] std::vector<Scenario> all_scenarios();

/// Instantiate a core-pipeline configuration from a scenario.
[[nodiscard]] PipelineConfig make_pipeline_config(const Scenario& scenario,
                                                  int major_cycles = 1,
                                                  std::uint64_t seed = 42);

/// Instantiate a full-system configuration from a scenario.
[[nodiscard]] extended::FullSystemConfig make_full_config(
    const Scenario& scenario, int major_cycles = 1, std::uint64_t seed = 42);

}  // namespace atm::tasks
