// Named workload scenarios: parameter bundles for the situations the
// paper's introduction and future work motivate. Each scenario configures
// the airfield generator, the radar environment, and the task parameters
// coherently, so examples/benches/tests can say what they simulate instead
// of repeating parameter soup.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/airfield/radar.hpp"
#include "src/airfield/setup.hpp"
#include "src/atm/extended/ext_types.hpp"
#include "src/atm/extended/full_pipeline.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/task_types.hpp"

namespace atm::tasks {

/// Execution policy of a scenario: every knob that shapes *how* the
/// workload runs rather than *what* the workload is. tasks::apply() is
/// the single place this block fans out into a config — the broadphase /
/// shard knobs are copied into both task bundles, and the governor /
/// fault blocks are copied to the config verbatim — so examples, benches,
/// and tests configure execution through the policy instead of poking
/// task parameters directly (the lint_atm scenario-configs rule enforces
/// this outside tests).
struct ScenarioPolicy {
  /// Host-path candidate enumeration for both Task 1 and Tasks 2+3.
  /// Either value yields identical task outcomes (see src/core/spatial/).
  core::spatial::BroadphaseMode broadphase =
      core::spatial::BroadphaseMode::kBruteForce;
  /// Host-path sector sharding for both Task 1 and Tasks 2+3. Either
  /// value yields identical task outcomes (src/core/spatial/sectors.hpp).
  core::spatial::ShardMode shard = core::spatial::ShardMode::kNone;
  int sectors_per_axis = 4;
  /// Host-path batch-kernel selection for both Task 1 and Tasks 2+3.
  /// Any value yields bit-identical task outcomes (src/core/kern/).
  core::kern::KernelMode kernel = core::kern::KernelMode::kAuto;
  /// Deadline-aware overload governor (disabled by default); see
  /// src/rt/governor.hpp and src/atm/degrade.hpp for the ladder it walks.
  rt::GovernorConfig governor;
  /// Seeded fault injection (disabled by default); see src/rt/faults.hpp.
  rt::FaultConfig faults;
};

struct Scenario {
  std::string name;
  std::string description;
  std::size_t default_aircraft = 1000;
  airfield::SetupParams setup;
  airfield::RadarParams radar;
  Task1Params task1;
  Task23Params task23;
  TerrainTaskParams terrain;
  AdvisoryParams advisory;
  /// Sporadic controller-query mix for the full-system executive
  /// (queries_per_batch = 0 disables the task); ignored by the core
  /// pipeline, fanned out by make_full_config.
  SporadicParams sporadic;
  /// How the scenario executes (broadphase, sharding, governor, faults).
  ScenarioPolicy policy;
};

/// The paper's evaluation setup: a 256 nm field, 30-600 knot traffic at
/// all flight levels, one noisy return per aircraft per period.
[[nodiscard]] Scenario paper_airfield();

/// The STARAN heritage scenario: Goodyear's 1972 Dulles demonstration
/// scale — hundreds of aircraft, denser radar noise (real 1972 radar).
[[nodiscard]] Scenario dulles_1972();

/// High-altitude en-route traffic: fast, flight-level stratified (fewer
/// altitude-gate passes), longer look-ahead.
[[nodiscard]] Scenario dense_en_route();

/// Terminal area: a small busy box of slow descending traffic, tight
/// separation, frequent conflicts.
[[nodiscard]] Scenario terminal_area();

/// The Section 7.2 mobile-ATM drone swarm: tiny field, slow low drones,
/// GPS-grade reports, hard turns.
[[nodiscard]] Scenario drone_swarm();

/// Every scenario above plus any registered extras, for sweep-style tests
/// and demos.
[[nodiscard]] std::vector<Scenario> all_scenarios();

/// Add a scenario to the registry at runtime (a scenario with the same
/// name replaces the earlier registration). This is how generated repro
/// scenarios — e.g. fuzzer corpus entries loaded by
/// testkit::register_corpus_scenario — surface through all_scenarios(),
/// scenario_names(), and scenario_by_name() next to the built-ins.
/// Thread-safe; registrations last for the process lifetime.
void register_scenario(Scenario scenario);

/// Registry: the names of every scenario, in all_scenarios() order. For
/// `--scenario <name>` listings in CLIs and benches.
[[nodiscard]] std::vector<std::string> scenario_names();

/// Registry lookup by name ("paper-airfield", "dense-en-route", ...).
/// Returns false (leaving `out` untouched) for an unknown name.
[[nodiscard]] bool scenario_by_name(std::string_view name, Scenario& out);

/// Copy a scenario's workload knobs into a config. The single place the
/// Scenario -> config field mapping lives: works for PipelineConfig,
/// extended::FullSystemConfig, and any config exposing the same fields.
/// The policy block fans out here — broadphase/shard into both task
/// bundles, governor and faults onto the config — so callers configure
/// execution exactly once, on the Scenario.
template <typename Config>
void apply(const Scenario& scenario, Config& cfg, int major_cycles,
           std::uint64_t seed) {
  cfg.aircraft = scenario.default_aircraft;
  cfg.major_cycles = major_cycles;
  cfg.seed = seed;
  cfg.setup = scenario.setup;
  cfg.radar = scenario.radar;
  cfg.task1 = scenario.task1;
  cfg.task23 = scenario.task23;
  cfg.task1.broadphase = scenario.policy.broadphase;
  cfg.task23.broadphase = scenario.policy.broadphase;
  cfg.task1.shard = scenario.policy.shard;
  cfg.task23.shard = scenario.policy.shard;
  cfg.task1.sectors_per_axis = scenario.policy.sectors_per_axis;
  cfg.task23.sectors_per_axis = scenario.policy.sectors_per_axis;
  cfg.task1.kernel = scenario.policy.kernel;
  cfg.task23.kernel = scenario.policy.kernel;
  cfg.governor = scenario.policy.governor;
  cfg.faults = scenario.policy.faults;
}

/// Instantiate a core-pipeline configuration from a scenario.
[[nodiscard]] PipelineConfig make_pipeline_config(const Scenario& scenario,
                                                  int major_cycles = 1,
                                                  std::uint64_t seed = 42);

/// Instantiate a full-system configuration from a scenario.
[[nodiscard]] extended::FullSystemConfig make_full_config(
    const Scenario& scenario, int major_cycles = 1, std::uint64_t seed = 42);

}  // namespace atm::tasks
