// The ClearSpeed CSX600 backend: the associative algorithm emulated on a
// 96-PE-per-chip lock-step SIMD array ([12, 13] used this emulation; the
// paper's figures label it "ClearSpeed").
//
// Identical algorithm to the STARAN backend, but every parallel primitive
// pays ceil(n / PEs) virtualization rounds and responder operations become
// reduction trees — the constant-time AP guarantees do not survive
// emulation, which is why this platform's curve sits above the AP's.
#pragma once

#include <memory>
#include <numeric>

#include "src/atm/assoc_tasks.hpp"
#include "src/atm/backend.hpp"
#include "src/simd/lockstep.hpp"

namespace atm::tasks {

/// Adapter exposing simd::LockstepMachine through the associative-machine
/// concept of src/atm/assoc_tasks.hpp.
class ClearSpeedAssocMachine {
 public:
  ClearSpeedAssocMachine(std::size_t n, simd::MachineSpec spec)
      : machine_(std::move(spec)), n_(n), index_keys_(n) {
    std::iota(index_keys_.begin(), index_keys_.end(), 0.0);
  }

  template <typename F>
  void parallel_all(F&& fn, int word_ops) {
    machine_.poly(n_, static_cast<simd::Cycles>(word_ops),
                  std::forward<F>(fn));
  }
  template <typename F>
  void parallel_masked(const assoc::Mask& mask, F&& fn, int word_ops) {
    // Lock-step machines execute masked steps on every PE (disabled PEs
    // idle), so the cost is the same as an unmasked step.
    machine_.poly(n_, static_cast<simd::Cycles>(word_ops),
                  [&](std::size_t i) {
                    if (mask[i]) fn(i);
                  });
  }
  template <typename P>
  void search(P&& pred, assoc::Mask& mask, int word_ops) {
    mask.resize(n_);
    machine_.poly(n_, static_cast<simd::Cycles>(word_ops),
                  [&](std::size_t i) { mask[i] = pred(i) ? 1 : 0; });
  }
  [[nodiscard]] bool any(const assoc::Mask& mask) {
    return machine_.reduce_count(mask) > 0;
  }
  [[nodiscard]] std::size_t first(const assoc::Mask& mask) {
    return machine_.reduce_min_index(index_keys_, mask);
  }
  [[nodiscard]] std::size_t count(const assoc::Mask& mask) {
    return machine_.reduce_count(mask);
  }
  [[nodiscard]] std::size_t min_index(std::span<const double> keys,
                                      const assoc::Mask& mask) {
    return machine_.reduce_min_index(keys, mask);
  }
  void broadcast() { machine_.broadcast(); }
  void host_access(int word_ops) {
    machine_.charge_scalar(static_cast<simd::Cycles>(word_ops));
  }
  [[nodiscard]] double elapsed_ms() const { return machine_.elapsed_ms(); }
  void reset() { machine_.reset(); }

  static constexpr std::size_t npos = simd::LockstepMachine::npos;

 private:
  simd::LockstepMachine machine_;
  std::size_t n_;
  std::vector<double> index_keys_;
};

/// The paper's "ClearSpeed" platform.
class ClearSpeedBackend final : public Backend {
 public:
  explicit ClearSpeedBackend(simd::MachineSpec spec = simd::csx600_spec())
      : spec_(std::move(spec)) {}

  [[nodiscard]] std::string name() const override { return spec_.name; }

  void load(const airfield::FlightDb& db) override {
    db_ = db;
    machine_ = std::make_unique<ClearSpeedAssocMachine>(db_.size(), spec_);
  }

  [[nodiscard]] const airfield::FlightDb& state() const override {
    return db_;
  }
  airfield::FlightDb& mutable_state() override { return db_; }

 private:
  Task1Result do_run_task1(airfield::RadarFrame& frame,
                           const Task1Params& params) final {
    machine_->reset();
    Task1Result result;
    result.stats = assoc::assoc_task1(*machine_, db_, frame, params);
    result.modeled_ms = machine_->elapsed_ms();
    return result;
  }

  Task23Result do_run_task23(const Task23Params& params) final {
    machine_->reset();
    Task23Result result;
    result.stats = assoc::assoc_task23(*machine_, db_, params);
    result.modeled_ms = machine_->elapsed_ms();
    return result;
  }

  TerrainResult do_run_terrain(const TerrainTaskParams& params) final {
    if (terrain_map() == nullptr) {
      throw std::logic_error(
          "ClearSpeedBackend::run_terrain: no terrain attached");
    }
    machine_->reset();
    TerrainResult result;
    result.stats = assoc::assoc_terrain(*machine_, db_, *terrain_map(), params);
    result.modeled_ms = machine_->elapsed_ms();
    return result;
  }

  DisplayResult do_run_display(const DisplayParams& params) final {
    machine_->reset();
    DisplayResult result;
    std::vector<std::int32_t> occupancy;
    result.stats = assoc::assoc_display(*machine_, db_, occupancy, params);
    result.modeled_ms = machine_->elapsed_ms();
    return result;
  }

  AdvisoryResult do_run_advisory(const AdvisoryParams& params) final {
    machine_->reset();
    AdvisoryResult result;
    result.stats =
        assoc::assoc_advisory(*machine_, db_, params, result.queue);
    result.modeled_ms = machine_->elapsed_ms();
    return result;
  }

  MultiRadarResult do_run_multi_task1(airfield::MultiRadarFrame& frame,
                                   const Task1Params& params) final {
    machine_->reset();
    MultiRadarResult result;
    result.stats = assoc::assoc_multi_task1(*machine_, db_, frame, params);
    result.modeled_ms = machine_->elapsed_ms();
    return result;
  }

  SporadicResult do_run_sporadic(std::span<const Query> queries,
                              const SporadicParams& params) final {
    (void)params;
    machine_->reset();
    SporadicResult result;
    result.stats =
        assoc::assoc_sporadic(*machine_, db_, queries, result.answers);
    result.modeled_ms = machine_->elapsed_ms();
    return result;
  }

 private:
  simd::MachineSpec spec_;
  airfield::FlightDb db_;
  std::unique_ptr<ClearSpeedAssocMachine> machine_;
};

}  // namespace atm::tasks
