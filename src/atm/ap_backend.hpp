// The STARAN associative-processor backend.
#pragma once

#include <memory>

#include "src/ap/ap_machine.hpp"
#include "src/atm/assoc_tasks.hpp"
#include "src/atm/backend.hpp"

namespace atm::tasks {

/// Adapter exposing ap::ApMachine through the associative-machine concept
/// used by the shared task templates (src/atm/assoc_tasks.hpp).
class ApAssocMachine {
 public:
  ApAssocMachine(std::size_t n, ap::ApCostModel model)
      : machine_(n, std::move(model)) {}

  template <typename F>
  void parallel_all(F&& fn, int word_ops) {
    machine_.parallel_all(std::forward<F>(fn), word_ops);
  }
  template <typename F>
  void parallel_masked(const assoc::Mask& mask, F&& fn, int word_ops) {
    machine_.parallel(mask, std::forward<F>(fn), word_ops);
  }
  template <typename P>
  void search(P&& pred, assoc::Mask& mask, int word_ops) {
    machine_.search(std::forward<P>(pred), mask, word_ops);
  }
  [[nodiscard]] bool any(const assoc::Mask& mask) {
    return machine_.any_responder(mask);
  }
  [[nodiscard]] std::size_t first(const assoc::Mask& mask) {
    return machine_.first_responder(mask);
  }
  [[nodiscard]] std::size_t count(const assoc::Mask& mask) {
    return machine_.count_responders(mask);
  }
  [[nodiscard]] std::size_t min_index(std::span<const double> keys,
                                      const assoc::Mask& mask) {
    return machine_.min_index(keys, mask);
  }
  void broadcast() { machine_.host_access(1); }
  void host_access(int word_ops) { machine_.host_access(word_ops); }
  [[nodiscard]] double elapsed_ms() const { return machine_.elapsed_ms(); }
  void reset() { machine_.reset(); }

  static constexpr std::size_t npos = ap::ApMachine::npos;

 private:
  ap::ApMachine machine_;
};

/// The paper's "AP (STARAN)" platform.
class ApBackend final : public Backend {
 public:
  explicit ApBackend(ap::ApCostModel model = ap::staran_model())
      : model_(std::move(model)) {}

  [[nodiscard]] std::string name() const override { return model_.name; }

  void load(const airfield::FlightDb& db) override {
    db_ = db;
    machine_ = std::make_unique<ApAssocMachine>(db_.size(), model_);
  }

  [[nodiscard]] const airfield::FlightDb& state() const override {
    return db_;
  }
  airfield::FlightDb& mutable_state() override { return db_; }

 private:
  Task1Result do_run_task1(airfield::RadarFrame& frame,
                           const Task1Params& params) final {
    machine_->reset();
    Task1Result result;
    result.stats = assoc::assoc_task1(*machine_, db_, frame, params);
    result.modeled_ms = machine_->elapsed_ms();
    return result;
  }

  Task23Result do_run_task23(const Task23Params& params) final {
    machine_->reset();
    Task23Result result;
    result.stats = assoc::assoc_task23(*machine_, db_, params);
    result.modeled_ms = machine_->elapsed_ms();
    return result;
  }

  TerrainResult do_run_terrain(const TerrainTaskParams& params) final {
    if (terrain_map() == nullptr) {
      throw std::logic_error("ApBackend::run_terrain: no terrain attached");
    }
    machine_->reset();
    TerrainResult result;
    result.stats = assoc::assoc_terrain(*machine_, db_, *terrain_map(), params);
    result.modeled_ms = machine_->elapsed_ms();
    return result;
  }

  DisplayResult do_run_display(const DisplayParams& params) final {
    machine_->reset();
    DisplayResult result;
    std::vector<std::int32_t> occupancy;
    result.stats = assoc::assoc_display(*machine_, db_, occupancy, params);
    result.modeled_ms = machine_->elapsed_ms();
    return result;
  }

  AdvisoryResult do_run_advisory(const AdvisoryParams& params) final {
    machine_->reset();
    AdvisoryResult result;
    result.stats =
        assoc::assoc_advisory(*machine_, db_, params, result.queue);
    result.modeled_ms = machine_->elapsed_ms();
    return result;
  }

  MultiRadarResult do_run_multi_task1(airfield::MultiRadarFrame& frame,
                                   const Task1Params& params) final {
    machine_->reset();
    MultiRadarResult result;
    result.stats = assoc::assoc_multi_task1(*machine_, db_, frame, params);
    result.modeled_ms = machine_->elapsed_ms();
    return result;
  }

  SporadicResult do_run_sporadic(std::span<const Query> queries,
                              const SporadicParams& params) final {
    (void)params;
    machine_->reset();
    SporadicResult result;
    result.stats =
        assoc::assoc_sporadic(*machine_, db_, queries, result.answers);
    result.modeled_ms = machine_->elapsed_ms();
    return result;
  }

 private:
  ap::ApCostModel model_;
  airfield::FlightDb db_;
  std::unique_ptr<ApAssocMachine> machine_;
};

}  // namespace atm::tasks
