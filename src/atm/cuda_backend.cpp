#include "src/atm/cuda_backend.hpp"

#include <algorithm>
#include <limits>

namespace atm::tasks {

using airfield::kDiscarded;
using airfield::kNone;
using airfield::MatchState;

CudaBackend::CudaBackend(simt::DeviceSpec spec, int threads_per_block)
    : device_(std::move(spec)), threads_per_block_(threads_per_block) {}

std::string CudaBackend::name() const { return device_.spec().name; }

cuda::DroneView CudaBackend::drone_view() {
  return cuda::DroneView{
      .x = db_.x,
      .y = db_.y,
      .dx = db_.dx,
      .dy = db_.dy,
      .alt = db_.alt,
      .batx = db_.batx,
      .baty = db_.baty,
      .time_till = db_.time_till,
      .ex = ex_,
      .ey = ey_,
      .rmatch = db_.rmatch,
      .col = db_.col,
      .col_with = db_.col_with,
      .amatch = amatch_,
      .nradars = nradars_,
      .terrain_warn = db_.terrain_warn,
      .sector = db_.sector,
  };
}

cuda::RadarView CudaBackend::radar_view() {
  return cuda::RadarView{
      .rx = radar_rx_,
      .ry = radar_ry_,
      .rmatch_with = radar_match_,
      .nhits = radar_nhits_,
      .hit_id = radar_hit_,
  };
}

void CudaBackend::resize_scratch(std::size_t n) {
  ex_.resize(n);
  ey_.resize(n);
  amatch_.resize(n);
  nradars_.resize(n);
  radar_rx_.resize(n);
  radar_ry_.resize(n);
  radar_match_.resize(n);
  radar_nhits_.resize(n);
  radar_hit_.resize(n);
  flags_a_.resize(n);
  flags_b_.resize(n);
  counters_.assign(cuda::kCounterSlots, 0);
}

std::uint64_t CudaBackend::radar_frame_bytes() const {
  return db_.size() * (2 * sizeof(double) + sizeof(std::int32_t));
}

void CudaBackend::load(const airfield::FlightDb& db) {
  db_ = db;
  resize_scratch(db_.size());
  // Initial host->device upload of the persistent flight fields
  // (x, y, dx, dy, alt, batx, baty, time_till, rmatch, col, colWith).
  const std::uint64_t bytes =
      db_.size() * (8 * sizeof(double) + sizeof(std::int8_t) +
                    sizeof(std::uint8_t) + sizeof(std::int32_t));
  device_.transfer(bytes);
}

double CudaBackend::setup_flights_on_device(
    std::size_t n, std::uint64_t seed, const airfield::SetupParams& params) {
  db_.resize(n);
  resize_scratch(n);
  const auto cfg = simt::one_thread_per_item(n, threads_per_block_);
  const cuda::DroneView drone = drone_view();
  const auto stats = device_.launch(cfg, [&](simt::ThreadCtx& ctx) {
    cuda::setup_flight_kernel(ctx, drone, seed, params);
  });
  return stats.modeled_ms;
}

airfield::RadarFrame CudaBackend::do_generate_radar(
    core::Rng& rng, const airfield::RadarParams& params,
    double* modeled_ms) {
  if (params.dropout_probability > 0.0) {
    // Dropout decisions are a host-generator feature; fall back.
    return Backend::do_generate_radar(rng, params, modeled_ms);
  }
  const std::size_t n = db_.size();
  // Draw the noise in the host generator's exact order so the frame is
  // identical across backends (determinism requirement; see DESIGN.md).
  std::vector<double> noise(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    noise[2 * i] = rng.uniform(-params.noise_nm, params.noise_nm);
    noise[2 * i + 1] = rng.uniform(-params.noise_nm, params.noise_nm);
  }

  double ms = 0.0;
  ms += device_.transfer(noise.size() * sizeof(double)).modeled_ms;
  const auto cfg = simt::one_thread_per_item(n, threads_per_block_);
  const cuda::DroneView drone = drone_view();
  const cuda::RadarView radar = radar_view();
  ms += device_
            .launch(cfg,
                    [&](simt::ThreadCtx& ctx) {
                      cuda::generate_radar_kernel(ctx, drone, radar, noise);
                    })
            .modeled_ms;
  // Paper Section 4.1: radar is copied back to the host, split into
  // fourths, and each fourth reversed; Task 1 then re-uploads it.
  ms += device_.transfer(radar_frame_bytes()).modeled_ms;

  airfield::RadarFrame frame;
  frame.resize(n);
  std::copy(radar_rx_.begin(), radar_rx_.end(), frame.rx.begin());
  std::copy(radar_ry_.begin(), radar_ry_.end(), frame.ry.begin());
  for (std::size_t i = 0; i < n; ++i) {
    frame.truth[i] = static_cast<std::int32_t>(i);
  }
  airfield::quarter_reversal_shuffle(frame);
  if (modeled_ms != nullptr) *modeled_ms = ms;
  return frame;
}

Task1Result CudaBackend::do_run_task1(airfield::RadarFrame& frame,
                                   const Task1Params& params) {
  const std::size_t n = db_.size();
  Task1Result result;
  if (frame.size() != n) {
    throw std::invalid_argument("CudaBackend: radar frame size mismatch");
  }

  // Upload the (host-shuffled) radar frame (Algorithm 1, line 1).
  std::copy(frame.rx.begin(), frame.rx.end(), radar_rx_.begin());
  std::copy(frame.ry.begin(), frame.ry.end(), radar_ry_.begin());
  std::fill(radar_match_.begin(), radar_match_.end(), kNone);
  counters_.assign(cuda::kCounterSlots, 0);
  result.modeled_ms += device_.transfer(radar_frame_bytes()).modeled_ms;

  const auto cfg = simt::one_thread_per_item(n, threads_per_block_);
  const cuda::DroneView drone = drone_view();
  const cuda::RadarView radar = radar_view();

  result.modeled_ms +=
      device_
          .launch(cfg,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::expected_position_kernel(ctx, drone);
                  })
          .modeled_ms;

  int passes = 0;
  const int total_passes = 1 + params.retries;
  for (int pass = 0; pass < total_passes; ++pass) {
    // Host-side pass gate: any radar still unmatched? The device keeps a
    // flag the host reads back (modeled as a 8-byte transfer).
    const bool any_active =
        std::any_of(radar_match_.begin(), radar_match_.end(),
                    [](std::int32_t m) { return m == kNone; });
    result.modeled_ms += device_.transfer(sizeof(std::uint64_t)).modeled_ms;
    if (!any_active) break;
    ++passes;
    const double half =
        params.box_half_nm * static_cast<double>(1 << pass);

    result.modeled_ms +=
        device_
            .launch(cfg,
                    [&](simt::ThreadCtx& ctx) {
                      cuda::pass_reset_kernel(ctx, drone);
                    })
            .modeled_ms;
    result.modeled_ms +=
        device_
            .launch(cfg,
                    [&](simt::ThreadCtx& ctx) {
                      cuda::radar_scan_kernel(ctx, drone, radar, half,
                                              counters_);
                    })
            .modeled_ms;
    result.modeled_ms +=
        device_
            .launch(cfg,
                    [&](simt::ThreadCtx& ctx) {
                      cuda::ambiguity_kernel(ctx, drone);
                    })
            .modeled_ms;
    result.modeled_ms +=
        device_
            .launch(cfg,
                    [&](simt::ThreadCtx& ctx) {
                      cuda::radar_resolve_kernel(ctx, drone, radar);
                    })
            .modeled_ms;
  }

  result.modeled_ms +=
      device_
          .launch(cfg,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::commit_tracking_kernel(ctx, drone, radar);
                  })
          .modeled_ms;

  export_radar_matches(frame);
  result.stats = collect_task1_stats(frame, passes);
  return result;
}

void CudaBackend::export_radar_matches(airfield::RadarFrame& frame) const {
  std::copy(radar_match_.begin(), radar_match_.end(),
            frame.rmatch_with.begin());
}

Task1Stats CudaBackend::collect_task1_stats(
    const airfield::RadarFrame& frame, int passes) const {
  Task1Stats stats;
  stats.radars = frame.size();
  stats.passes = passes;
  stats.box_tests = counters_[cuda::kBoxTests];
  for (const std::int32_t m : radar_match_) {
    if (m == kNone) ++stats.unmatched_radars;
    if (m == kDiscarded) ++stats.discarded_radars;
  }
  for (std::size_t a = 0; a < db_.size(); ++a) {
    if (db_.rmatch[a] == static_cast<std::int8_t>(MatchState::kAmbiguous)) {
      ++stats.ambiguous_aircraft;
    }
    if (db_.rmatch[a] == static_cast<std::int8_t>(MatchState::kMatched) &&
        amatch_[a] >= 0) {
      ++stats.matched;
      ++stats.updated_aircraft;
    }
  }
  return stats;
}

Task23Result CudaBackend::do_run_task23(const Task23Params& params) {
  const std::size_t n = db_.size();
  Task23Result result;
  counters_.assign(cuda::kCounterSlots, 0);

  const auto cfg = simt::one_thread_per_item(n, threads_per_block_);
  const cuda::DroneView drone = drone_view();

  // The paper's fused CheckCollisionPath kernel, then the commit pass.
  result.modeled_ms +=
      device_
          .launch(cfg,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::check_collision_path_kernel(ctx, drone, flags_a_,
                                                      params, counters_);
                  })
          .modeled_ms;
  result.modeled_ms +=
      device_
          .launch(cfg,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::commit_paths_kernel(ctx, drone, flags_a_, params);
                  })
          .modeled_ms;

  result.stats.aircraft = n;
  result.stats.pair_tests = counters_[cuda::kPairTests];
  result.stats.rescans = counters_[cuda::kRescans];
  result.stats.conflicts = counters_[cuda::kConflicts];
  result.stats.critical = counters_[cuda::kCritical];
  result.stats.resolved = counters_[cuda::kResolved];
  result.stats.unresolved = counters_[cuda::kUnresolved];
  return result;
}

Task23Result CudaBackend::run_task23_split(const Task23Params& params) {
  const std::size_t n = db_.size();
  Task23Result result;
  counters_.assign(cuda::kCounterSlots, 0);

  const auto cfg = simt::one_thread_per_item(n, threads_per_block_);
  const cuda::DroneView drone = drone_view();

  // Detect, then round-trip the critical flags through the host (the
  // overhead the paper's fused design avoids), then resolve, then commit.
  result.modeled_ms +=
      device_
          .launch(cfg,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::detect_kernel(ctx, drone, flags_a_, params,
                                        counters_);
                  })
          .modeled_ms;
  result.modeled_ms +=
      device_.transfer(n * sizeof(std::uint8_t)).modeled_ms;  // flags to host
  result.modeled_ms +=
      device_.transfer(n * sizeof(std::uint8_t)).modeled_ms;  // and back
  result.modeled_ms +=
      device_
          .launch(cfg,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::resolve_kernel(ctx, drone, flags_a_, flags_b_,
                                         params, counters_);
                  })
          .modeled_ms;
  result.modeled_ms +=
      device_
          .launch(cfg,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::commit_paths_kernel(ctx, drone, flags_b_, params);
                  })
          .modeled_ms;

  result.stats.aircraft = n;
  result.stats.pair_tests = counters_[cuda::kPairTests];
  result.stats.rescans = counters_[cuda::kRescans];
  result.stats.conflicts = counters_[cuda::kConflicts];
  result.stats.critical = counters_[cuda::kCritical];
  result.stats.resolved = counters_[cuda::kResolved];
  result.stats.unresolved = counters_[cuda::kUnresolved];
  return result;
}

Task23Result CudaBackend::run_task23_pairgrid(const Task23Params& params) {
  const std::size_t n = db_.size();
  Task23Result result;
  result.stats.aircraft = n;
  counters_.assign(cuda::kCounterSlots, 0);
  if (n == 0) return result;

  std::vector<double> soonest(n, params.horizon_periods + 1.0);
  std::vector<std::int32_t> partner(
      n, std::numeric_limits<std::int32_t>::max());

  // 2-D pair grid: 16 x 6 = 96 threads per block (the paper's block size,
  // reshaped), covering the n x n pair matrix.
  const auto tiles_x = static_cast<std::uint32_t>((n + 15) / 16);
  const auto tiles_y = static_cast<std::uint32_t>((n + 5) / 6);
  const simt::LaunchConfig pair_cfg{
      .grid = simt::Dim3{tiles_x, tiles_y, 1},
      .block = simt::Dim3{16, 6, 1},
  };
  const auto cfg_air = simt::one_thread_per_item(n, threads_per_block_);
  const cuda::DroneView drone = drone_view();

  result.modeled_ms +=
      device_
          .launch(pair_cfg,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::pair_detect_time_kernel(ctx, drone, soonest,
                                                  params, counters_);
                  })
          .modeled_ms;
  result.modeled_ms +=
      device_
          .launch(pair_cfg,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::pair_detect_partner_kernel(ctx, drone, soonest,
                                                     partner, params);
                  })
          .modeled_ms;
  result.modeled_ms +=
      device_
          .launch(cfg_air,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::pair_detect_finalize_kernel(ctx, drone, soonest,
                                                      partner, flags_a_,
                                                      params, counters_);
                  })
          .modeled_ms;
  result.modeled_ms +=
      device_
          .launch(cfg_air,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::resolve_kernel(ctx, drone, flags_a_, flags_b_,
                                         params, counters_);
                  })
          .modeled_ms;
  result.modeled_ms +=
      device_
          .launch(cfg_air,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::commit_paths_kernel(ctx, drone, flags_b_, params);
                  })
          .modeled_ms;

  result.stats.pair_tests = counters_[cuda::kPairTests];
  result.stats.rescans = counters_[cuda::kRescans];
  result.stats.conflicts = counters_[cuda::kConflicts];
  result.stats.critical = counters_[cuda::kCritical];
  result.stats.resolved = counters_[cuda::kResolved];
  result.stats.unresolved = counters_[cuda::kUnresolved];
  return result;
}

// --- Extended system --------------------------------------------------------

void CudaBackend::on_terrain_attached() {
  if (terrain_map() != nullptr) {
    // One-time upload of the heightmap (static data, like the paper's
    // initial drone upload).
    device_.transfer(terrain_map()->cells().size() * sizeof(double));
  }
}

TerrainResult CudaBackend::do_run_terrain(const TerrainTaskParams& params) {
  if (terrain_map() == nullptr) {
    throw std::logic_error("CudaBackend::run_terrain: no terrain attached");
  }
  const std::size_t n = db_.size();
  TerrainResult result;
  counters_.assign(cuda::kCounterSlots, 0);
  const auto cfg = simt::one_thread_per_item(n, threads_per_block_);
  const cuda::DroneView drone = drone_view();
  const airfield::TerrainMap& terrain = *terrain_map();
  result.modeled_ms +=
      device_
          .launch(cfg,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::terrain_kernel(ctx, drone, terrain, params,
                                         counters_);
                  })
          .modeled_ms;
  result.stats.aircraft = n;
  result.stats.warnings = counters_[cuda::kTerrainWarnings];
  result.stats.climbs = counters_[cuda::kTerrainClimbs];
  result.stats.samples = counters_[cuda::kTerrainSamples];
  return result;
}

DisplayResult CudaBackend::do_run_display(const DisplayParams& params) {
  const std::size_t n = db_.size();
  DisplayResult result;
  counters_.assign(cuda::kCounterSlots, 0);
  const auto k = static_cast<std::size_t>(params.sectors_per_axis);
  occupancy_.assign(k * k, 0);

  const auto cfg = simt::one_thread_per_item(n, threads_per_block_);
  const cuda::DroneView drone = drone_view();
  result.modeled_ms +=
      device_
          .launch(cfg,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::display_kernel(ctx, drone, occupancy_,
                                         params.sectors_per_axis, counters_);
                  })
          .modeled_ms;
  // The controller display lives on the host: download the occupancy grid.
  result.modeled_ms +=
      device_.transfer(occupancy_.size() * sizeof(std::int32_t)).modeled_ms;

  result.stats.aircraft = n;
  result.stats.handoffs = counters_[cuda::kHandoffs];
  for (const std::int32_t count : occupancy_) {
    if (count > 0) ++result.stats.occupied_sectors;
    result.stats.max_occupancy = std::max(
        result.stats.max_occupancy, static_cast<std::uint64_t>(count));
  }
  return result;
}

AdvisoryResult CudaBackend::do_run_advisory(const AdvisoryParams& params) {
  const std::size_t n = db_.size();
  AdvisoryResult result;
  flags_a_.assign(n, 0);

  const auto cfg = simt::one_thread_per_item(n, threads_per_block_);
  const cuda::DroneView drone = drone_view();
  result.modeled_ms +=
      device_
          .launch(cfg,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::advisory_kernel(ctx, drone, flags_a_, params);
                  })
          .modeled_ms;
  // The voice channel is a host device: download the flags and drain the
  // queue in aircraft order (a serial voice channel has one order anyway).
  result.modeled_ms +=
      device_.transfer(n * sizeof(std::uint8_t)).modeled_ms;

  result.stats.aircraft = n;
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<std::int32_t>(i);
    if (flags_a_[i] & cuda::kAdvConflictBit) {
      result.queue.push_back(Advisory{id, AdvisoryType::kConflict});
      ++result.stats.conflict;
    }
    if (flags_a_[i] & cuda::kAdvTerrainBit) {
      result.queue.push_back(Advisory{id, AdvisoryType::kTerrain});
      ++result.stats.terrain;
    }
    if (flags_a_[i] & cuda::kAdvBoundaryBit) {
      result.queue.push_back(Advisory{id, AdvisoryType::kBoundary});
      ++result.stats.boundary;
    }
  }
  return result;
}

SporadicResult CudaBackend::do_run_sporadic(std::span<const Query> queries,
                                         const SporadicParams& params) {
  (void)params;
  const std::size_t n = db_.size();
  const std::size_t q = queries.size();
  SporadicResult result;
  result.stats.queries = q;
  result.answers.assign(q, {});
  if (q == 0 || n == 0) return result;

  // Upload the query batch, run the kernel, download the match matrix.
  std::vector<std::uint8_t> flags(q * n, 0);
  result.modeled_ms += device_.transfer(q * sizeof(Query)).modeled_ms;
  const auto cfg = simt::one_thread_per_item(n, threads_per_block_);
  const cuda::DroneView drone = drone_view();
  result.modeled_ms +=
      device_
          .launch(cfg,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::query_kernel(ctx, drone, queries, flags);
                  })
          .modeled_ms;
  result.modeled_ms += device_.transfer(flags.size()).modeled_ms;

  for (std::size_t qi = 0; qi < q; ++qi) {
    for (std::size_t i = 0; i < n; ++i) {
      if (flags[qi * n + i]) {
        result.answers[qi].push_back(static_cast<std::int32_t>(i));
        ++result.stats.hits;
      }
    }
  }
  return result;
}

MultiRadarResult CudaBackend::do_run_multi_task1(
    airfield::MultiRadarFrame& frame, const Task1Params& params) {
  const std::size_t n = db_.size();
  const std::size_t returns = frame.size();
  MultiRadarResult result;
  result.stats.returns = returns;
  counters_.assign(cuda::kCounterSlots, 0);

  // Upload the multi-return frame.
  multi_rx_ = frame.base.rx;
  multi_ry_ = frame.base.ry;
  multi_match_.assign(returns, kNone);
  multi_nhits_.assign(returns, 0);
  multi_hit_.assign(returns, kNone);
  result.modeled_ms +=
      device_
          .transfer(returns * (2 * sizeof(double) + sizeof(std::int32_t)))
          .modeled_ms;

  const cuda::DroneView drone = drone_view();
  const cuda::MultiRadarView radar{
      .rx = multi_rx_,
      .ry = multi_ry_,
      .rmatch_with = multi_match_,
      .nhits = multi_nhits_,
      .hit_id = multi_hit_,
  };
  const auto cfg_air = simt::one_thread_per_item(n, threads_per_block_);
  const auto cfg_ret = simt::one_thread_per_item(returns, threads_per_block_);

  result.modeled_ms +=
      device_
          .launch(cfg_air,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::expected_position_kernel(ctx, drone);
                  })
          .modeled_ms;

  const int total_passes = 1 + params.retries;
  for (int pass = 0; pass < total_passes; ++pass) {
    const bool any_active =
        std::any_of(multi_match_.begin(), multi_match_.end(),
                    [](std::int32_t m) { return m == kNone; });
    result.modeled_ms += device_.transfer(sizeof(std::uint64_t)).modeled_ms;
    if (!any_active) break;
    ++result.stats.passes;
    const double half = params.box_half_nm * static_cast<double>(1 << pass);

    result.modeled_ms +=
        device_
            .launch(cfg_ret,
                    [&](simt::ThreadCtx& ctx) {
                      cuda::multi_scan_kernel(ctx, drone, radar, half,
                                              counters_);
                    })
            .modeled_ms;
    result.modeled_ms +=
        device_
            .launch(cfg_air,
                    [&](simt::ThreadCtx& ctx) {
                      cuda::multi_select_kernel(ctx, drone, radar);
                    })
            .modeled_ms;
    result.modeled_ms +=
        device_
            .launch(cfg_ret,
                    [&](simt::ThreadCtx& ctx) {
                      cuda::multi_disposition_kernel(ctx, drone, radar);
                    })
            .modeled_ms;
  }

  result.modeled_ms +=
      device_
          .launch(cfg_air,
                  [&](simt::ThreadCtx& ctx) {
                    cuda::multi_commit_kernel(ctx, drone, radar);
                  })
          .modeled_ms;

  std::copy(multi_match_.begin(), multi_match_.end(),
            frame.base.rmatch_with.begin());
  result.stats.box_tests = counters_[cuda::kBoxTests];
  for (const std::int32_t m : multi_match_) {
    if (m == kNone) ++result.stats.unmatched_returns;
    if (m == kDiscarded) ++result.stats.discarded_returns;
    if (m == airfield::kRedundant) ++result.stats.redundant_returns;
  }
  for (std::size_t a = 0; a < n; ++a) {
    if (db_.rmatch[a] == static_cast<std::int8_t>(MatchState::kMatched) &&
        amatch_[a] >= 0) {
      ++result.stats.matched_aircraft;
    }
  }
  return result;
}

}  // namespace atm::tasks
