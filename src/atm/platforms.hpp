// Factory for the six platforms of the paper's evaluation (plus the host
// reference oracle).
#pragma once

#include <memory>
#include <vector>

#include "src/atm/backend.hpp"

namespace atm::tasks {

/// Which platforms to construct.
enum class PlatformSet {
  kNvidiaOnly,   ///< The three CUDA cards (Figures 5 and 7).
  kAllPlatforms, ///< CUDA cards + STARAN + ClearSpeed + Xeon (Figs. 4, 6).
};

/// Build fresh backends for the requested platform set, in the paper's
/// figure order (STARAN, ClearSpeed, Xeon, then the NVIDIA cards slowest
/// to fastest).
[[nodiscard]] std::vector<std::unique_ptr<Backend>> make_platforms(
    PlatformSet set);

/// Individual factories (each returns a fresh, unloaded backend).
[[nodiscard]] std::unique_ptr<Backend> make_geforce_9800_gt();
[[nodiscard]] std::unique_ptr<Backend> make_gtx_880m();
[[nodiscard]] std::unique_ptr<Backend> make_titan_x_pascal();
[[nodiscard]] std::unique_ptr<Backend> make_staran();
[[nodiscard]] std::unique_ptr<Backend> make_clearspeed();
[[nodiscard]] std::unique_ptr<Backend> make_xeon();
[[nodiscard]] std::unique_ptr<Backend> make_reference();
/// Future-work platform (Section 7.2): wide-vector commodity processor.
[[nodiscard]] std::unique_ptr<Backend> make_xeon_phi();

}  // namespace atm::tasks
