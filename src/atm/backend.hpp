// The platform backend interface: one implementation per architecture the
// paper evaluates (three NVIDIA devices via the SIMT engine, the STARAN
// AP, the ClearSpeed emulation, and the 16-core Xeon), plus the host
// reference golden.
//
// A backend owns its copy of the flight database, executes the ATM tasks
// with its architecture's algorithm/primitives, and reports a *modeled*
// platform time per run. All backends implement the same order-independent
// task semantics (see src/atm/reference), so given identical inputs their
// flight states stay identical — the cross-backend equivalence the test
// suite enforces — while their modeled times differ the way the paper's
// platforms differ.
//
// The task entry points are non-virtual (NVI): the public `run_*` methods
// time the host execution, delegate to the protected `do_run_*` hooks the
// platform backends override, and emit one obs::TraceEvent per execution
// when a trace sink is attached — so every caller (executive, benches,
// tests) gets uniform telemetry without each backend repeating the
// instrumentation.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "src/airfield/flight_db.hpp"
#include "src/airfield/radar.hpp"
#include "src/airfield/terrain.hpp"
#include "src/airfield/towers.hpp"
#include "src/atm/extended/ext_types.hpp"
#include "src/atm/task_types.hpp"
#include "src/core/rng.hpp"
#include "src/obs/trace.hpp"

namespace atm::tasks {

class Backend {
 public:
  virtual ~Backend() = default;

  /// Platform display name ("Titan X (Pascal)", "Intel Xeon (16 cores)"…).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Whether repeated runs of identical work yield identical modeled
  /// times (the paper's SIMD/CUDA determinism property; false for MIMD).
  [[nodiscard]] virtual bool deterministic() const { return true; }

  /// Upload the initial flight database (models the paper's one-time
  /// host->device copy where the platform has one).
  virtual void load(const airfield::FlightDb& db) = 0;

  /// Task 1 for one period. Fills `frame.rmatch_with` and advances the
  /// backend's aircraft by one period.
  Task1Result run_task1(airfield::RadarFrame& frame,
                        const Task1Params& params);

  /// Tasks 2+3 for one major cycle.
  Task23Result run_task23(const Task23Params& params);

  /// Host-visible view of the backend's current flight state.
  [[nodiscard]] virtual const airfield::FlightDb& state() const = 0;

  /// Mutable access for host bookkeeping between tasks (grid re-entry).
  virtual airfield::FlightDb& mutable_state() = 0;

  /// Produce this period's radar frame from the backend's current state.
  /// Radar creation is simulation scaffolding, not an ATM task (paper
  /// Section 4.2), so its modeled cost is returned separately through
  /// `modeled_ms` (nullptr to ignore) and never counted against the
  /// period deadline. The default implementation runs the host generator;
  /// the CUDA backend overrides it to model the paper's device-generate /
  /// host-shuffle round trip.
  airfield::RadarFrame generate_radar(core::Rng& rng,
                                      const airfield::RadarParams& params,
                                      double* modeled_ms);

  /// Convenience: number of aircraft loaded.
  [[nodiscard]] std::size_t aircraft_count() const { return state().size(); }

  // --- Observability ------------------------------------------------------

  /// Attach (or detach, with nullptr) the sink receiving one task event
  /// per `run_*` execution. The sink is borrowed, never owned; tracing is
  /// disabled by default and costs one branch per task when off.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] obs::TraceSink* trace_sink() const { return trace_; }

  /// Stamp subsequent task events with an executive position (the
  /// pipeline calls this each period; -1 means "not in a pipeline").
  void set_trace_context(int cycle, int period) {
    trace_cycle_ = cycle;
    trace_period_ = period;
  }

  // --- Extended system: the paper's Section 7.2 "complete ATM system" ----
  //
  // The base-class `do_run_*` implementations run the reference
  // algorithms on the backend's state and report measured host wall time;
  // every platform backend overrides them with its own execution + cost
  // model, exactly like the core tasks. The terrain model is attached
  // once (it is static data; the CUDA backend models its one-time upload
  // in its on_terrain_attached hook).

  /// Attach the terrain model used by run_terrain.
  void set_terrain(std::shared_ptr<const airfield::TerrainMap> terrain);

  /// Terrain map currently attached (may be null).
  [[nodiscard]] const airfield::TerrainMap* terrain() const {
    return terrain_.get();
  }

  /// Terrain avoidance: flag and climb aircraft whose projected path
  /// violates ground clearance. Runs once per major cycle.
  TerrainResult run_terrain(const TerrainTaskParams& params);

  /// Controller display update: sector binning, handoffs, occupancy.
  /// Runs every period.
  DisplayResult run_display(const DisplayParams& params);

  /// Automatic voice advisory scan. Runs every 4 seconds.
  AdvisoryResult run_advisory(const AdvisoryParams& params);

  /// Multi-tower Task 1: correlation over a frame with several returns
  /// per aircraft (the unsimplified radar environment).
  MultiRadarResult run_multi_task1(airfield::MultiRadarFrame& frame,
                                   const Task1Params& params);

  /// Sporadic requests: answer a batch of controller queries against the
  /// flight database.
  SporadicResult run_sporadic(std::span<const Query> queries,
                              const SporadicParams& params);

 protected:
  // Platform hooks behind the public entry points above.
  virtual Task1Result do_run_task1(airfield::RadarFrame& frame,
                                   const Task1Params& params) = 0;
  virtual Task23Result do_run_task23(const Task23Params& params) = 0;
  virtual airfield::RadarFrame do_generate_radar(
      core::Rng& rng, const airfield::RadarParams& params,
      double* modeled_ms);
  virtual TerrainResult do_run_terrain(const TerrainTaskParams& params);
  virtual DisplayResult do_run_display(const DisplayParams& params);
  virtual AdvisoryResult do_run_advisory(const AdvisoryParams& params);
  virtual MultiRadarResult do_run_multi_task1(
      airfield::MultiRadarFrame& frame, const Task1Params& params);
  virtual SporadicResult do_run_sporadic(std::span<const Query> queries,
                                         const SporadicParams& params);

  /// Called after set_terrain stores the new map (which may be null);
  /// platforms model their upload cost here.
  virtual void on_terrain_attached() {}

  /// The attached terrain map (nullptr when none) — subclasses read the
  /// state through this accessor; the owning pointer is private.
  [[nodiscard]] const airfield::TerrainMap* terrain_map() const {
    return terrain_.get();
  }

  /// Emit one per-sector kCounter event (e.g. "task23.sector_owned") when
  /// a sink is attached; no-op otherwise. The sharded host backends call
  /// this once per sector after a sharded run so sinks can roll up load
  /// balance per sector.
  void emit_sector_counter(std::string_view counter, int sector,
                           std::uint64_t value);

 private:
  /// Optional outcome/work detail attached to a kTask event. Sentinel
  /// values (-1, empty) mean "not applicable" and sinks omit them.
  struct TaskEventDetail {
    int passes = -1;
    std::int64_t conflicts = -1;
    std::int64_t resolved = -1;
    std::string_view broadphase = {};
    std::string_view shard = {};
    int sectors = -1;
    std::int64_t halo_candidates = -1;
    std::int64_t box_tests = -1;
    std::int64_t pair_candidates = -1;
    std::int64_t pair_tests = -1;
    std::string_view kernel = {};
    std::int64_t lanes_masked = -1;
  };

  /// Shared helper: emit one kTask event (only called with a sink).
  void emit_task_event(std::string_view task, double modeled_ms,
                       double measured_ms, const TaskEventDetail& detail);

  std::shared_ptr<const airfield::TerrainMap> terrain_;
  obs::TraceSink* trace_ = nullptr;
  int trace_cycle_ = -1;
  int trace_period_ = -1;
};

}  // namespace atm::tasks
