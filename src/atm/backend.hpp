// The platform backend interface: one implementation per architecture the
// paper evaluates (three NVIDIA devices via the SIMT engine, the STARAN
// AP, the ClearSpeed emulation, and the 16-core Xeon), plus the host
// reference golden.
//
// A backend owns its copy of the flight database, executes the ATM tasks
// with its architecture's algorithm/primitives, and reports a *modeled*
// platform time per run. All backends implement the same order-independent
// task semantics (see src/atm/reference), so given identical inputs their
// flight states stay identical — the cross-backend equivalence the test
// suite enforces — while their modeled times differ the way the paper's
// platforms differ.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "src/airfield/flight_db.hpp"
#include "src/airfield/radar.hpp"
#include "src/airfield/terrain.hpp"
#include "src/airfield/towers.hpp"
#include "src/atm/extended/ext_types.hpp"
#include "src/atm/task_types.hpp"
#include "src/core/rng.hpp"

namespace atm::tasks {

class Backend {
 public:
  virtual ~Backend() = default;

  /// Platform display name ("Titan X (Pascal)", "Intel Xeon (16 cores)"…).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Whether repeated runs of identical work yield identical modeled
  /// times (the paper's SIMD/CUDA determinism property; false for MIMD).
  [[nodiscard]] virtual bool deterministic() const { return true; }

  /// Upload the initial flight database (models the paper's one-time
  /// host->device copy where the platform has one).
  virtual void load(const airfield::FlightDb& db) = 0;

  /// Task 1 for one period. Fills `frame.rmatch_with` and advances the
  /// backend's aircraft by one period.
  virtual Task1Result run_task1(airfield::RadarFrame& frame,
                                const Task1Params& params) = 0;

  /// Tasks 2+3 for one major cycle.
  virtual Task23Result run_task23(const Task23Params& params) = 0;

  /// Host-visible view of the backend's current flight state.
  [[nodiscard]] virtual const airfield::FlightDb& state() const = 0;

  /// Mutable access for host bookkeeping between tasks (grid re-entry).
  virtual airfield::FlightDb& mutable_state() = 0;

  /// Produce this period's radar frame from the backend's current state.
  /// Radar creation is simulation scaffolding, not an ATM task (paper
  /// Section 4.2), so its modeled cost is returned separately through
  /// `modeled_ms` (nullptr to ignore) and never counted against the
  /// period deadline. The default implementation runs the host generator;
  /// the CUDA backend overrides it to model the paper's device-generate /
  /// host-shuffle round trip.
  virtual airfield::RadarFrame generate_radar(
      core::Rng& rng, const airfield::RadarParams& params,
      double* modeled_ms);

  /// Convenience: number of aircraft loaded.
  [[nodiscard]] std::size_t aircraft_count() const { return state().size(); }

  // --- Extended system: the paper's Section 7.2 "complete ATM system" ----
  //
  // The base-class implementations run the reference algorithms on the
  // backend's state and report measured host wall time; every platform
  // backend overrides them with its own execution + cost model, exactly
  // like the core tasks. The terrain model is attached once (it is static
  // data; the CUDA backend models its one-time upload).

  /// Attach the terrain model used by run_terrain.
  virtual void set_terrain(
      std::shared_ptr<const airfield::TerrainMap> terrain);

  /// Terrain map currently attached (may be null).
  [[nodiscard]] const airfield::TerrainMap* terrain() const {
    return terrain_.get();
  }

  /// Terrain avoidance: flag and climb aircraft whose projected path
  /// violates ground clearance. Runs once per major cycle.
  virtual TerrainResult run_terrain(const TerrainTaskParams& params);

  /// Controller display update: sector binning, handoffs, occupancy.
  /// Runs every period.
  virtual DisplayResult run_display(const DisplayParams& params);

  /// Automatic voice advisory scan. Runs every 4 seconds.
  virtual AdvisoryResult run_advisory(const AdvisoryParams& params);

  /// Multi-tower Task 1: correlation over a frame with several returns
  /// per aircraft (the unsimplified radar environment).
  virtual MultiRadarResult run_multi_task1(airfield::MultiRadarFrame& frame,
                                           const Task1Params& params);

  /// Sporadic requests: answer a batch of controller queries against the
  /// flight database.
  virtual SporadicResult run_sporadic(std::span<const Query> queries,
                                      const SporadicParams& params);

 protected:
  std::shared_ptr<const airfield::TerrainMap> terrain_;
};

}  // namespace atm::tasks
