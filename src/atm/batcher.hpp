// Batcher's conflict-detection test (paper Section 5.2, Equations 1-6).
//
// On the time-x graph (paper Fig. 3) each aircraft is a line x(t) with an
// error band of +-1.5 nm; two aircraft can collide in x while the bands
// overlap, i.e. while |dx(t)| <= 3 nm where dx(t) is their relative x
// separation. The same holds in y. The pair is on a collision course when
// the x-overlap window and the y-overlap window intersect in the future:
// time_min = max of the entry times, time_max = min of the exit times, and
// a conflict exists iff time_min < time_max (Equations 5-6).
//
// Equations 1-4 as printed in the paper divide absolute separation by
// absolute relative speed; that form assumes closing geometry (it reports a
// positive "entry time" even for aircraft flying apart). We implement the
// exact band-intersection the equations describe on the time-x graph —
// solving |p + v t| <= band for t and clipping to the look-ahead horizon —
// which agrees with the printed equations whenever they apply and is
// correct for diverging pairs. This is the same test on every backend, so
// the platforms stay result-equivalent.
//
// The math itself lives in src/core/kern/band_math.hpp (the single
// source of truth the batch kernels also compile from); these wrappers
// keep the historical per-pair API for the platform backends.
#pragma once

#include "src/core/kern/band_math.hpp"
#include "src/core/units.hpp"

namespace atm::tasks {

/// Time interval (in periods) during which two bands overlap on one axis.
struct AxisWindow {
  double entry = 0.0;  ///< First time the bands overlap.
  double exit = 0.0;   ///< Last time the bands overlap.
  bool always = false; ///< Bands overlap at all times (parallel & close).
  bool never = false;  ///< Bands never overlap (parallel & apart).
};

/// Overlap window of |p + v t| <= band (one axis). `p` is the current
/// relative separation (nm), `v` the relative velocity (nm/period).
[[nodiscard]] AxisWindow axis_band_window(double p, double v,
                                          double band_nm);

/// Result of the pair test: conflict flag and the window [time_min,
/// time_max] clipped to [0, horizon].
struct PairConflict {
  bool conflict = false;
  double time_min = 0.0;
  double time_max = 0.0;
};

/// Full Batcher pair test on relative position (px, py) and relative
/// velocity (vx, vy), with total band width `band` (3 nm in the paper) and
/// look-ahead `horizon` (20 minutes = 2400 periods).
[[nodiscard]] PairConflict batcher_pair_test(
    double px, double py, double vx, double vy,
    double band_nm = core::kBatcherBandNm,
    double horizon_periods = core::kLookAheadPeriods);

/// Altitude proximity gate of Algorithm 2 line 3: pairs further apart than
/// `gate_feet` vertically are not in conflict.
[[nodiscard]] inline bool altitude_gate(
    double alt_a, double alt_b,
    double gate_feet = core::kAltitudeGateFeet) {
  return core::kern::altitude_gate_pass(alt_a, alt_b, gate_feet);
}

}  // namespace atm::tasks
