// Host reference backend: the sequential golden implementation wrapped in
// the Backend interface. Its "modeled time" is the measured host wall time
// (informational only — the reference is a semantic oracle, not one of the
// paper's platforms).
#pragma once

#include <memory>

#include "src/atm/backend.hpp"
#include "src/atm/reference/correlate.hpp"
#include "src/atm/sharded.hpp"

namespace atm::tasks {

class ReferenceBackend : public Backend {
 public:
  [[nodiscard]] std::string name() const override {
    return "Host reference (sequential)";
  }

  void load(const airfield::FlightDb& db) override { db_ = db; }

  [[nodiscard]] const airfield::FlightDb& state() const override {
    return db_;
  }
  airfield::FlightDb& mutable_state() override { return db_; }

 protected:
  // The reference is the one deliberately extensible backend: tests derive
  // slowdown-injecting oracles from it and chain to these hooks.
  // atm-lint: allow(nvi-private-final) tests subclass the reference oracle
  Task1Result do_run_task1(airfield::RadarFrame& frame,
                           const Task1Params& params) override;
  // atm-lint: allow(nvi-private-final) tests subclass the reference oracle
  Task23Result do_run_task23(const Task23Params& params) override;

 private:
  /// The pool the sharded paths run on; created on the first sharded call
  /// (the plain sequential reference never pays for worker threads).
  mimd::ThreadPool& shard_pool();

  airfield::FlightDb db_;
  reference::Task1Scratch scratch_;
  std::unique_ptr<mimd::ThreadPool> pool_;
  sharded::ShardScratch shard_scratch_;
};

}  // namespace atm::tasks
