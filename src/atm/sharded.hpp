// Sector-sharded execution of the host hot paths (Task 1 correlation and
// Tasks 2+3 collision detection/resolution), shared by the reference and
// MIMD backends.
//
// Execution model (the per-shard self-scheduling design the ROADMAP's
// sharding item asks for): each period the airfield is partitioned into
// an S x S SectorPartition; every sector becomes one thread-pool task
// that *gathers* its candidate records (owned + halo) into a sector-local
// snapshot and then scans lock-free against that snapshot. Cross-sector
// pairs are never lost because the halo reach bounds how far any exact
// match can sit from the sector:
//
//  * Task 1, pass with box half-extent h: a radar in sector s can only
//    match aircraft whose expected position is within h per axis of the
//    radar, so reach = h.
//  * Tasks 2+3: a pair can only conflict inside the horizon if the
//    current per-axis separation is at most band + (|v_i| + |v_j|) *
//    horizon <= band + 2 * max_speed * horizon = reach (trial rotations
//    preserve |v_i|, so one reach covers Task 3's rescans too). At the
//    paper's 20-minute horizon this saturates the field — the halos then
//    carry everyone, and sharding buys parallel per-sector execution and
//    lock-free commits rather than pruning (pruning is the broadphase's
//    job, and it composes: `broadphase = kGrid` builds the grid / swept
//    index per sector over the gathered snapshot).
//
// Outcome equivalence (the bar the sector equivalence tests enforce):
// per-aircraft and per-radar outcomes are computed with the exact same
// tests and (value, id) tie-breaks as the monolithic scans, over a
// candidate superset, while all mutated state is single-writer — each
// aircraft/radar is owned by exactly one sector task (Task 1's shared
// per-aircraft coverage counts use relaxed atomic adds, which commute).
// Only the work counters (box_tests, pair_candidates, pair_tests,
// sectors, halo_candidates) may differ from the unsharded run.
#pragma once

#include <cstdint>
#include <vector>

#include "src/airfield/flight_db.hpp"
#include "src/airfield/radar.hpp"
#include "src/atm/reference/collision.hpp"
#include "src/atm/reference/correlate.hpp"
#include "src/atm/task_types.hpp"
#include "src/core/kern/soa_snapshot.hpp"
#include "src/core/spatial/sectors.hpp"
#include "src/core/spatial/swept_index.hpp"
#include "src/core/spatial/uniform_grid.hpp"
#include "src/mimd/thread_pool.hpp"

namespace atm::tasks::sharded {

/// Work the sharded executive performed, in the shape the MIMD cost model
/// and the per-sector trace counters consume. The gather counts are the
/// shard handoff: one locked read per record copied into a sector
/// snapshot; the local scans afterwards touch no shared record.
struct ShardTelemetry {
  int sectors = 0;
  std::uint64_t gather_ops = 0;   ///< Records copied into sector snapshots.
  std::uint64_t inner_ops = 0;    ///< Snapshot records the local scans read.
  std::uint64_t parallel_regions = 0;  ///< fork/join barriers.
  std::vector<std::uint64_t> sector_owned;       ///< Per-sector owned items.
  std::vector<std::uint64_t> sector_candidates;  ///< Owned + halo items.
};

/// Reusable buffers for the sharded paths (partition, per-sector
/// snapshots and indexes, and the flat per-aircraft/per-radar arrays the
/// passes share). One per backend; allocate once, reuse every period.
struct ShardScratch {
  core::spatial::SectorPartition partition;

  /// One sector task's gathered snapshot plus its optional broadphase.
  /// The snapshot arrays are aligned for the batch kernels; `view()`
  /// exposes the Tasks 2+3 snapshot in kernel form.
  struct SectorBuffers {
    core::kern::AlignedVector<double> x, y, dx, dy, alt;  ///< Tasks 2+3.
    core::kern::AlignedVector<double> ex, ey;  ///< Task 1 snapshot.
    std::vector<std::int32_t> id;           ///< Global ids of the snapshot.
    std::vector<std::int32_t> cand;         ///< Task 1 grid candidates.
    std::vector<std::int32_t> hits;         ///< Task 1 kernel hit output.
    reference::ScanScratch scan;            ///< Tasks 2+3 scan buffers.
    core::spatial::SweptIndex swept;
    core::spatial::UniformGrid2D grid;

    [[nodiscard]] core::kern::SoaView view() const {
      return {x.data(), y.data(), dx.data(), dy.data(), alt.data(),
              x.size()};
    }
  };
  std::vector<SectorBuffers> sectors;

  reference::Task1Scratch task1;          ///< Flat per-aircraft/radar state.
  std::vector<std::uint8_t> resolved;     ///< Tasks 2+3 commit flags.
  std::vector<std::int32_t> radar_start;  ///< Active-radar CSR, per pass.
  std::vector<std::int32_t> radar_ids;
};

/// Sharded Task 1. Outcome-identical to reference::correlate_and_track /
/// the MIMD backend's monolithic pass structure for any scenario and
/// seed. `telemetry`, when non-null, is overwritten with this run's work.
Task1Stats correlate_and_track(airfield::FlightDb& db,
                               airfield::RadarFrame& frame,
                               mimd::ThreadPool& pool, ShardScratch& scratch,
                               const Task1Params& params,
                               ShardTelemetry* telemetry = nullptr);

/// Sharded Tasks 2+3. Outcome-identical to
/// reference::detect_and_resolve for any scenario and seed.
Task23Stats detect_and_resolve(airfield::FlightDb& db,
                               mimd::ThreadPool& pool, ShardScratch& scratch,
                               const Task23Params& params,
                               ShardTelemetry* telemetry = nullptr);

}  // namespace atm::tasks::sharded
