#include "src/atm/cuda_kernels.hpp"

#include <cmath>

#include <limits>

#include "src/airfield/flight_db.hpp"
#include "src/atm/batcher.hpp"
#include "src/atm/extended/display.hpp"
#include "src/atm/extended/terrain_task.hpp"
#include "src/atm/reference/collision.hpp"
#include "src/core/rng.hpp"
#include "src/core/units.hpp"
#include "src/core/vec2.hpp"
#include "src/simt/cost.hpp"

namespace atm::tasks::cuda {
namespace {

using airfield::kDiscarded;
using airfield::kNone;
using airfield::MatchState;
namespace sc = simt::cost;

// Per-operation cycle charges for the ATM kernels, composed from the SIMT
// primitive costs. These are throughput estimates of the straightforward
// PTX each step compiles to.

/// Out-of-range guard (id computation + compare + early return).
constexpr sc::Cycles kGuard = 3 * sc::kAlu;
/// Per-thread fixed work: argument loads, own-record loads.
constexpr sc::Cycles kThreadInit = 4 * sc::kGlobalAccess + 4 * sc::kAlu;
/// Inner-loop iteration skipped by the eligibility test.
constexpr sc::Cycles kSkipIneligible = sc::kGlobalAccess + sc::kBranch;
/// Bounding-box membership test (2 coord loads, 4 compares, 2 abs).
constexpr sc::Cycles kBoxTest =
    2 * sc::kGlobalAccess + 6 * sc::kAlu + sc::kBranch;
/// Bookkeeping when a box test hits (counter update + id store).
constexpr sc::Cycles kHitBookkeeping = 2 * sc::kGlobalAccess + 2 * sc::kAlu;
/// Altitude-gate iteration that fails the gate.
constexpr sc::Cycles kGateFail =
    sc::kGlobalAccess + 3 * sc::kAlu + sc::kBranch;
/// Full Batcher pair test (4 loads, ~20 ALU, 2 divides, window logic).
constexpr sc::Cycles kPairTest =
    4 * sc::kGlobalAccess + 20 * sc::kAlu + 2 * sc::kDiv;
/// Conflict bookkeeping (min update, partner id).
constexpr sc::Cycles kConflictBookkeeping = 6 * sc::kAlu;
/// Trial-path setup (sin/cos rotation of the velocity).
constexpr sc::Cycles kTrialSetup = 2 * sc::kTrig + 6 * sc::kAlu;
/// Commit phase per aircraft.
constexpr sc::Cycles kCommit = 4 * sc::kGlobalAccess + 4 * sc::kAlu;
/// SetupFlight per-thread work (RNG, sqrt, unit conversion).
constexpr sc::Cycles kSetupWork =
    30 * sc::kAlu + 2 * sc::kDiv + 6 * sc::kGlobalAccess;
/// GenerateRadarData per-thread work.
constexpr sc::Cycles kRadarWork = 6 * sc::kGlobalAccess + 6 * sc::kAlu;
/// Pass-reset / ambiguity per-aircraft work.
constexpr sc::Cycles kFlagWork = 2 * sc::kGlobalAccess + 2 * sc::kAlu;
/// Radar-resolve per-radar work.
constexpr sc::Cycles kResolveRadar = 4 * sc::kGlobalAccess + 6 * sc::kAlu;

}  // namespace

void setup_flight_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                         std::uint64_t seed,
                         const airfield::SetupParams& params) {
  const std::uint64_t i = ctx.global_id();
  if (i >= drone.size()) {
    ctx.charge(kGuard);
    return;
  }
  // Independent per-thread stream: results cannot depend on the order the
  // engine (or a real GPU) schedules threads.
  core::Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (i + 1)));
  const airfield::FlightInit init = airfield::draw_flight(rng, params);
  drone.x[i] = init.x;
  drone.y[i] = init.y;
  drone.dx[i] = init.dx;
  drone.dy[i] = init.dy;
  drone.alt[i] = init.alt;
  drone.batx[i] = init.dx;
  drone.baty[i] = init.dy;
  drone.rmatch[i] = static_cast<std::int8_t>(MatchState::kUnmatched);
  drone.col[i] = 0;
  drone.time_till[i] = core::kCriticalTimePeriods;
  drone.col_with[i] = kNone;
  ctx.charge(kGuard + kSetupWork);
}

void generate_radar_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                           const RadarView& radar,
                           std::span<const double> noise) {
  const std::uint64_t i = ctx.global_id();
  if (i >= drone.size()) {
    ctx.charge(kGuard);
    return;
  }
  radar.rx[i] = drone.x[i] + drone.dx[i] + noise[2 * i];
  radar.ry[i] = drone.y[i] + drone.dy[i] + noise[2 * i + 1];
  ctx.charge(kGuard + kRadarWork);
}

void expected_position_kernel(simt::ThreadCtx& ctx,
                              const DroneView& drone) {
  const std::uint64_t i = ctx.global_id();
  if (i >= drone.size()) {
    ctx.charge(kGuard);
    return;
  }
  drone.ex[i] = drone.x[i] + drone.dx[i];
  drone.ey[i] = drone.y[i] + drone.dy[i];
  drone.rmatch[i] = static_cast<std::int8_t>(MatchState::kUnmatched);
  drone.amatch[i] = kNone;
  ctx.charge(kGuard + kThreadInit + kFlagWork);
}

void pass_reset_kernel(simt::ThreadCtx& ctx, const DroneView& drone) {
  const std::uint64_t i = ctx.global_id();
  if (i >= drone.size()) {
    ctx.charge(kGuard);
    return;
  }
  drone.nradars[i] = 0;
  ctx.charge(kGuard + kFlagWork);
}

void radar_scan_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                       const RadarView& radar, double box_half_nm,
                       std::span<std::uint64_t> counters) {
  const std::uint64_t r = ctx.global_id();
  if (r >= radar.size()) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + kThreadInit);
  if (radar.rmatch_with[r] != kNone) return;  // not active this pass

  radar.nhits[r] = 0;
  radar.hit_id[r] = kNone;
  const double rx = radar.rx[r];
  const double ry = radar.ry[r];
  std::uint64_t box_tests = 0;
  for (std::size_t a = 0; a < drone.size(); ++a) {
    if (drone.rmatch[a] != static_cast<std::int8_t>(MatchState::kUnmatched)) {
      ctx.charge(kSkipIneligible);
      continue;
    }
    ctx.charge(kBoxTest);
    ++box_tests;
    if (std::fabs(drone.ex[a] - rx) < box_half_nm &&
        std::fabs(drone.ey[a] - ry) < box_half_nm) {
      ++radar.nhits[r];
      radar.hit_id[r] = static_cast<std::int32_t>(a);
      ctx.atomic_add(drone.nradars[a], std::int32_t{1});
      ctx.charge(kHitBookkeeping);
    }
  }
  ctx.atomic_add(counters[kBoxTests], box_tests);
}

void ambiguity_kernel(simt::ThreadCtx& ctx, const DroneView& drone) {
  const std::uint64_t a = ctx.global_id();
  if (a >= drone.size()) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + kFlagWork);
  if (drone.rmatch[a] == static_cast<std::int8_t>(MatchState::kUnmatched) &&
      drone.nradars[a] >= 2) {
    drone.rmatch[a] = static_cast<std::int8_t>(MatchState::kAmbiguous);
  }
}

void radar_resolve_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                          const RadarView& radar) {
  const std::uint64_t r = ctx.global_id();
  if (r >= radar.size()) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + kResolveRadar);
  if (radar.rmatch_with[r] != kNone) return;  // was not active this pass
  if (radar.nhits[r] >= 2) {
    radar.rmatch_with[r] = kDiscarded;
    return;
  }
  if (radar.nhits[r] == 1) {
    const std::int32_t a = radar.hit_id[r];
    radar.rmatch_with[r] = a;  // the radar records the id either way
    const auto ai = static_cast<std::size_t>(a);
    if (drone.nradars[ai] == 1) {
      // Exclusive: no other active radar covers this aircraft, so no other
      // thread writes these fields. The atomic mirrors the paper's
      // defensive "two threads don't try to manipulate the same aircraft"
      // guard and charges its cost.
      ctx.atomic_exch(drone.rmatch[ai],
                      static_cast<std::int8_t>(MatchState::kMatched));
      drone.amatch[ai] = static_cast<std::int32_t>(r);
    }
  }
}

void commit_tracking_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                            const RadarView& radar) {
  const std::uint64_t a = ctx.global_id();
  if (a >= drone.size()) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + kCommit);
  if (drone.rmatch[a] == static_cast<std::int8_t>(MatchState::kMatched) &&
      drone.amatch[a] >= 0) {
    const auto r = static_cast<std::size_t>(drone.amatch[a]);
    drone.x[a] = radar.rx[r];
    drone.y[a] = radar.ry[r];
  } else {
    drone.x[a] = drone.ex[a];
    drone.y[a] = drone.ey[a];
  }
}

namespace {

/// Detection scan of aircraft i's (vx, vy) path against all aircraft on
/// their current global-memory paths. Shared by the fused and split
/// kernels; charges per-iteration costs to `ctx`.
reference::DetectOutcome device_scan(simt::ThreadCtx& ctx,
                                     const DroneView& drone, std::size_t i,
                                     double vx, double vy,
                                     const Task23Params& params,
                                     std::uint64_t& pair_tests,
                                     bool stop_at_critical) {
  reference::DetectOutcome out;
  double soonest = params.horizon_periods + 1.0;
  for (std::size_t j = 0; j < drone.size(); ++j) {
    if (j == i) {
      ctx.charge(sc::kBranch);
      continue;
    }
    if (!altitude_gate(drone.alt[i], drone.alt[j],
                       params.altitude_gate_feet)) {
      ctx.charge(kGateFail);
      continue;
    }
    ctx.charge(kPairTest);
    ++pair_tests;
    const PairConflict pc = batcher_pair_test(
        drone.x[j] - drone.x[i], drone.y[j] - drone.y[i],
        drone.dx[j] - vx, drone.dy[j] - vy, params.band_nm,
        params.horizon_periods);
    if (!pc.conflict) continue;
    ctx.charge(kConflictBookkeeping);
    out.conflict = true;
    if (pc.time_min < soonest) {
      soonest = pc.time_min;
      out.partner = static_cast<std::int32_t>(j);
      out.time_min = pc.time_min;
    }
    if (pc.time_min < params.critical_periods) {
      out.critical = true;
      if (stop_at_critical) return out;
    }
  }
  return out;
}

/// Trial-rotation resolution for a critical aircraft. Shared by the fused
/// and split kernels. Returns true when a conflict-free path was stored.
bool device_resolve(simt::ThreadCtx& ctx, const DroneView& drone,
                    std::size_t i, const Task23Params& params,
                    std::uint64_t& pair_tests, std::uint64_t& rescans) {
  const core::Vec2 vel{drone.dx[i], drone.dy[i]};
  const int attempts = reference::max_trial_attempts(params);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const double angle =
        reference::trial_angle_deg(attempt, params.turn_step_deg);
    const core::Vec2 trial = core::rotate_deg(vel, angle);
    ctx.charge(kTrialSetup);
    ++rescans;
    const reference::DetectOutcome check =
        device_scan(ctx, drone, i, trial.x, trial.y, params, pair_tests,
                    /*stop_at_critical=*/true);
    if (!check.critical) {
      drone.batx[i] = trial.x;
      drone.baty[i] = trial.y;
      return true;
    }
  }
  return false;
}

}  // namespace

void check_collision_path_kernel(simt::ThreadCtx& ctx,
                                 const DroneView& drone,
                                 std::span<std::uint8_t> resolved,
                                 const Task23Params& params,
                                 std::span<std::uint64_t> counters) {
  const std::uint64_t i = ctx.global_id();
  if (i >= drone.size()) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + kThreadInit);

  // Each thread initializes its own aircraft's collision state (the
  // paper's kernel does the same at entry).
  drone.col[i] = 0;
  drone.col_with[i] = kNone;
  drone.time_till[i] = params.critical_periods;
  drone.batx[i] = drone.dx[i];
  drone.baty[i] = drone.dy[i];
  resolved[i] = 0;
  ctx.charge(kFlagWork);

  std::uint64_t pair_tests = 0;
  std::uint64_t rescans = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t critical = 0;
  std::uint64_t n_resolved = 0;
  std::uint64_t n_unresolved = 0;

  const reference::DetectOutcome det =
      device_scan(ctx, drone, i, drone.dx[i], drone.dy[i], params,
                  pair_tests, /*stop_at_critical=*/false);
  if (det.conflict) {
    ++conflicts;
    drone.col[i] = 1;
    drone.col_with[i] = det.partner;
    if (det.time_min < drone.time_till[i]) {
      drone.time_till[i] = det.time_min;
    }
    ctx.charge(kConflictBookkeeping);
  }
  if (det.critical) {
    ++critical;
    if (device_resolve(ctx, drone, i, params, pair_tests, rescans)) {
      resolved[i] = 1;
      ++n_resolved;
    } else {
      ++n_unresolved;
    }
  }

  ctx.atomic_add(counters[kPairTests], pair_tests);
  ctx.atomic_add(counters[kRescans], rescans);
  ctx.atomic_add(counters[kConflicts], conflicts);
  ctx.atomic_add(counters[kCritical], critical);
  ctx.atomic_add(counters[kResolved], n_resolved);
  ctx.atomic_add(counters[kUnresolved], n_unresolved);
}

void detect_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                   std::span<std::uint8_t> critical,
                   const Task23Params& params,
                   std::span<std::uint64_t> counters) {
  const std::uint64_t i = ctx.global_id();
  if (i >= drone.size()) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + kThreadInit);

  drone.col[i] = 0;
  drone.col_with[i] = kNone;
  drone.time_till[i] = params.critical_periods;
  drone.batx[i] = drone.dx[i];
  drone.baty[i] = drone.dy[i];
  critical[i] = 0;
  ctx.charge(kFlagWork);

  std::uint64_t pair_tests = 0;
  const reference::DetectOutcome det =
      device_scan(ctx, drone, i, drone.dx[i], drone.dy[i], params,
                  pair_tests, /*stop_at_critical=*/false);
  if (det.conflict) {
    drone.col[i] = 1;
    drone.col_with[i] = det.partner;
    if (det.time_min < drone.time_till[i]) {
      drone.time_till[i] = det.time_min;
    }
    ctx.atomic_add(counters[kConflicts], std::uint64_t{1});
    ctx.charge(kConflictBookkeeping);
  }
  if (det.critical) {
    critical[i] = 1;
    ctx.atomic_add(counters[kCritical], std::uint64_t{1});
  }
  ctx.atomic_add(counters[kPairTests], pair_tests);
}

void resolve_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                    std::span<const std::uint8_t> critical,
                    std::span<std::uint8_t> resolved,
                    const Task23Params& params,
                    std::span<std::uint64_t> counters) {
  const std::uint64_t i = ctx.global_id();
  if (i >= drone.size()) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + kThreadInit);
  resolved[i] = 0;
  if (!critical[i]) return;

  std::uint64_t pair_tests = 0;
  std::uint64_t rescans = 0;
  if (device_resolve(ctx, drone, i, params, pair_tests, rescans)) {
    resolved[i] = 1;
    ctx.atomic_add(counters[kResolved], std::uint64_t{1});
  } else {
    ctx.atomic_add(counters[kUnresolved], std::uint64_t{1});
  }
  ctx.atomic_add(counters[kPairTests], pair_tests);
  ctx.atomic_add(counters[kRescans], rescans);
}

void commit_paths_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                         std::span<const std::uint8_t> resolved,
                         const Task23Params& params) {
  const std::uint64_t i = ctx.global_id();
  if (i >= drone.size()) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + kCommit);
  if (!resolved[i]) return;
  drone.dx[i] = drone.batx[i];
  drone.dy[i] = drone.baty[i];
  drone.col[i] = 0;
  drone.col_with[i] = kNone;
  drone.time_till[i] = params.critical_periods;
}

// --- Extended-system kernels -----------------------------------------------

namespace {

using airfield::kRedundant;

/// One terrain sample: 4 scattered heightmap loads + the bilinear math.
constexpr sc::Cycles kTerrainSample = 4 * sc::kScatterAccess + 12 * sc::kAlu;
/// Display per-aircraft work: sector math + handoff compare + stores.
constexpr sc::Cycles kDisplayWork = 4 * sc::kGlobalAccess + 10 * sc::kAlu;
/// Advisory classification per aircraft.
constexpr sc::Cycles kAdvisoryWork = 4 * sc::kGlobalAccess + 10 * sc::kAlu;
/// Candidate-distance evaluation in the multi-tower select phase.
constexpr sc::Cycles kCandidateTest =
    3 * sc::kGlobalAccess + 8 * sc::kAlu + sc::kBranch;

}  // namespace

void terrain_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                    const airfield::TerrainMap& terrain,
                    const TerrainTaskParams& params,
                    std::span<std::uint64_t> counters) {
  const std::uint64_t i = ctx.global_id();
  if (i >= drone.size()) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + kThreadInit);

  const extended::TerrainScan scan = extended::scan_terrain_path(
      drone.x[i], drone.y[i], drone.dx[i], drone.dy[i], drone.alt[i],
      terrain, params);
  ctx.charge(static_cast<sc::Cycles>(params.samples) * kTerrainSample);

  drone.terrain_warn[i] = scan.warn ? 1 : 0;
  std::uint64_t climbed = 0;
  if (scan.warn && scan.required_alt_feet > drone.alt[i]) {
    drone.alt[i] = scan.required_alt_feet;
    climbed = 1;
  }
  ctx.charge(kFlagWork);

  ctx.atomic_add(counters[kTerrainSamples],
                 static_cast<std::uint64_t>(params.samples));
  if (scan.warn) {
    ctx.atomic_add(counters[kTerrainWarnings], std::uint64_t{1});
  }
  if (climbed) {
    ctx.atomic_add(counters[kTerrainClimbs], std::uint64_t{1});
  }
}

void display_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                    std::span<std::int32_t> occupancy, int sectors_per_axis,
                    std::span<std::uint64_t> counters) {
  const std::uint64_t i = ctx.global_id();
  if (i >= drone.size()) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + kDisplayWork);

  const std::int32_t s =
      extended::sector_of(drone.x[i], drone.y[i], sectors_per_axis);
  if (drone.sector[i] != kNone && drone.sector[i] != s) {
    ctx.atomic_add(counters[kHandoffs], std::uint64_t{1});
  }
  drone.sector[i] = s;
  ctx.atomic_add(occupancy[static_cast<std::size_t>(s)], std::int32_t{1});
}

void advisory_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                     std::span<std::uint8_t> advisory_flags,
                     const AdvisoryParams& params) {
  const std::uint64_t i = ctx.global_id();
  if (i >= drone.size()) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + kAdvisoryWork);

  std::uint8_t flags = 0;
  if (drone.col[i]) flags |= kAdvConflictBit;
  if (drone.terrain_warn[i]) flags |= kAdvTerrainBit;
  const double edge = core::kGridHalfExtentNm - params.boundary_warn_nm;
  if (std::fabs(drone.x[i]) > edge || std::fabs(drone.y[i]) > edge) {
    flags |= kAdvBoundaryBit;
  }
  advisory_flags[i] = flags;
}

void pair_detect_time_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                             std::span<double> soonest,
                             const Task23Params& params,
                             std::span<std::uint64_t> counters) {
  const std::uint64_t j = static_cast<std::uint64_t>(ctx.block_idx().x) *
                              ctx.block_dim().x +
                          ctx.thread_idx().x;
  const std::uint64_t i = static_cast<std::uint64_t>(ctx.block_idx().y) *
                              ctx.block_dim().y +
                          ctx.thread_idx().y;
  const std::size_t n = drone.size();
  if (i >= n || j >= n || i == j) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + 2 * sc::kAlu);
  if (!altitude_gate(drone.alt[i], drone.alt[j],
                     params.altitude_gate_feet)) {
    ctx.charge(kGateFail);
    return;
  }
  ctx.charge(kPairTest);
  ctx.atomic_add(counters[kPairTests], std::uint64_t{1});
  const PairConflict pc = batcher_pair_test(
      drone.x[j] - drone.x[i], drone.y[j] - drone.y[i],
      drone.dx[j] - drone.dx[i], drone.dy[j] - drone.dy[i], params.band_nm,
      params.horizon_periods);
  if (pc.conflict) {
    ctx.atomic_min(soonest[i], pc.time_min);
  }
}

void pair_detect_partner_kernel(simt::ThreadCtx& ctx,
                                const DroneView& drone,
                                std::span<const double> soonest,
                                std::span<std::int32_t> partner,
                                const Task23Params& params) {
  const std::uint64_t j = static_cast<std::uint64_t>(ctx.block_idx().x) *
                              ctx.block_dim().x +
                          ctx.thread_idx().x;
  const std::uint64_t i = static_cast<std::uint64_t>(ctx.block_idx().y) *
                              ctx.block_dim().y +
                          ctx.thread_idx().y;
  const std::size_t n = drone.size();
  if (i >= n || j >= n || i == j) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + 2 * sc::kAlu);
  if (soonest[i] > params.horizon_periods) return;  // no conflict at all
  if (!altitude_gate(drone.alt[i], drone.alt[j],
                     params.altitude_gate_feet)) {
    ctx.charge(kGateFail);
    return;
  }
  ctx.charge(kPairTest);
  const PairConflict pc = batcher_pair_test(
      drone.x[j] - drone.x[i], drone.y[j] - drone.y[i],
      drone.dx[j] - drone.dx[i], drone.dy[j] - drone.dy[i], params.band_nm,
      params.horizon_periods);
  if (pc.conflict && pc.time_min == soonest[i]) {
    ctx.atomic_min(partner[i], static_cast<std::int32_t>(j));
  }
}

void pair_detect_finalize_kernel(simt::ThreadCtx& ctx,
                                 const DroneView& drone,
                                 std::span<const double> soonest,
                                 std::span<const std::int32_t> partner,
                                 std::span<std::uint8_t> critical,
                                 const Task23Params& params,
                                 std::span<std::uint64_t> counters) {
  const std::uint64_t i = ctx.global_id();
  if (i >= drone.size()) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + kFlagWork + kConflictBookkeeping);
  drone.col[i] = 0;
  drone.col_with[i] = kNone;
  drone.time_till[i] = params.critical_periods;
  drone.batx[i] = drone.dx[i];
  drone.baty[i] = drone.dy[i];
  critical[i] = 0;
  if (soonest[i] <= params.horizon_periods) {
    drone.col[i] = 1;
    drone.col_with[i] = partner[i];
    if (soonest[i] < drone.time_till[i]) drone.time_till[i] = soonest[i];
    ctx.atomic_add(counters[kConflicts], std::uint64_t{1});
    if (soonest[i] < params.critical_periods) {
      critical[i] = 1;
      ctx.atomic_add(counters[kCritical], std::uint64_t{1});
    }
  }
}

void query_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                  std::span<const Query> queries,
                  std::span<std::uint8_t> match_flags) {
  const std::uint64_t i = ctx.global_id();
  if (i >= drone.size()) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + kThreadInit);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const Query& query = queries[q];
    bool match = false;
    switch (query.kind) {
      case QueryKind::kById:
        match = static_cast<std::int32_t>(i) == query.id;
        ctx.charge(2 * sc::kAlu);
        break;
      case QueryKind::kInSector:
        match = drone.sector[i] == query.sector;
        ctx.charge(sc::kGlobalAccess + sc::kAlu);
        break;
      case QueryKind::kNearPoint: {
        const double dx = drone.x[i] - query.x;
        const double dy = drone.y[i] - query.y;
        match = dx * dx + dy * dy <= query.radius_nm * query.radius_nm;
        ctx.charge(2 * sc::kGlobalAccess + 6 * sc::kAlu);
        break;
      }
    }
    match_flags[q * drone.size() + i] = match ? 1 : 0;
    ctx.charge(sc::kGlobalAccess);
  }
}

// --- Multi-tower correlation kernels ---------------------------------------

void multi_scan_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                       const MultiRadarView& radar, double box_half_nm,
                       std::span<std::uint64_t> counters) {
  const std::uint64_t r = ctx.global_id();
  if (r >= radar.size()) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + kThreadInit);
  if (radar.rmatch_with[r] != kNone) return;

  radar.nhits[r] = 0;
  radar.hit_id[r] = kNone;
  const double rx = radar.rx[r];
  const double ry = radar.ry[r];
  std::uint64_t box_tests = 0;
  for (std::size_t a = 0; a < drone.size(); ++a) {
    if (drone.rmatch[a] != static_cast<std::int8_t>(MatchState::kUnmatched)) {
      ctx.charge(kSkipIneligible);
      continue;
    }
    ctx.charge(kBoxTest);
    ++box_tests;
    if (std::fabs(drone.ex[a] - rx) < box_half_nm &&
        std::fabs(drone.ey[a] - ry) < box_half_nm) {
      ++radar.nhits[r];
      radar.hit_id[r] = static_cast<std::int32_t>(a);
      ctx.charge(kHitBookkeeping);
    }
  }
  if (radar.nhits[r] >= 2) {
    radar.rmatch_with[r] = kDiscarded;
    ctx.charge(kFlagWork);
  }
  ctx.atomic_add(counters[kBoxTests], box_tests);
}

void multi_select_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                         const MultiRadarView& radar) {
  const std::uint64_t a = ctx.global_id();
  if (a >= drone.size()) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + kThreadInit);
  if (drone.rmatch[a] != static_cast<std::int8_t>(MatchState::kUnmatched)) {
    return;
  }

  std::int32_t best = kNone;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < radar.size(); ++r) {
    if (radar.rmatch_with[r] != kNone || radar.nhits[r] != 1 ||
        radar.hit_id[r] != static_cast<std::int32_t>(a)) {
      ctx.charge(kSkipIneligible);
      continue;
    }
    ctx.charge(kCandidateTest);
    const double dx = radar.rx[r] - drone.ex[a];
    const double dy = radar.ry[r] - drone.ey[a];
    const double d2 = dx * dx + dy * dy;
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<std::int32_t>(r);
    }
  }
  if (best != kNone) {
    drone.rmatch[a] = static_cast<std::int8_t>(MatchState::kMatched);
    drone.amatch[a] = best;
    ctx.charge(kFlagWork);
  }
}

void multi_disposition_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                              const MultiRadarView& radar) {
  const std::uint64_t r = ctx.global_id();
  if (r >= radar.size()) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + kResolveRadar);
  if (radar.rmatch_with[r] != kNone) return;
  if (radar.nhits[r] != 1) return;  // zero hits: retry next pass
  const std::int32_t a = radar.hit_id[r];
  const auto ai = static_cast<std::size_t>(a);
  if (drone.amatch[ai] == static_cast<std::int32_t>(r)) {
    radar.rmatch_with[r] = a;
  } else if (drone.rmatch[ai] ==
             static_cast<std::int8_t>(MatchState::kMatched)) {
    radar.rmatch_with[r] = kRedundant;
  }
}

void multi_commit_kernel(simt::ThreadCtx& ctx, const DroneView& drone,
                         const MultiRadarView& radar) {
  const std::uint64_t a = ctx.global_id();
  if (a >= drone.size()) {
    ctx.charge(kGuard);
    return;
  }
  ctx.charge(kGuard + kCommit);
  if (drone.rmatch[a] == static_cast<std::int8_t>(MatchState::kMatched) &&
      drone.amatch[a] >= 0) {
    const auto r = static_cast<std::size_t>(drone.amatch[a]);
    drone.x[a] = radar.rx[r];
    drone.y[a] = radar.ry[r];
  } else {
    drone.x[a] = drone.ex[a];
    drone.y[a] = drone.ey[a];
  }
}

}  // namespace atm::tasks::cuda
