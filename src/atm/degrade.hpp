// The degradation ladder: what each governor level means for the ATM
// task parameters (see src/rt/governor.hpp for the controller and
// docs/ROBUSTNESS.md for the design).
//
// Every step trades a little fidelity or host work for period headroom,
// in escalation order — cheapest/most reversible first:
//
//   1 grid-broadphase  host candidate enumeration switches brute -> grid
//                      (outcome-identical; pure work reduction)
//   2 raise-sectors    host scans shard into sectors on the thread pool,
//                      or double the sector count if already sharded
//                      (outcome-identical; pure work redistribution)
//   3 cap-retries      Task 1 box-doubling retries capped at 1 (late
//                      returns may stay unmatched one period longer)
//   4 coarse-resolve   Task 3 trial-turn sweep steps twice as coarse
//                      (resolutions may bank harder than strictly needed)
//   5 shed-sporadic    sporadic controller queries are shed outright
//                      (full-system executive only; core tasks keep
//                      running)
//
// Steps are cumulative: level k applies steps 1..k. Level 0 leaves every
// parameter untouched, which is what keeps governed-but-idle runs
// bit-identical to ungoverned ones.
#pragma once

#include <string>
#include <vector>

#include "src/atm/task_types.hpp"

namespace atm::tasks {

/// Ladder step names in escalation order; size() is the deepest level.
/// The pipeline hands this to rt::Governor so transition trace events
/// carry the step being entered or left.
[[nodiscard]] const std::vector<std::string>& degradation_ladder();

/// Apply every ladder step up to `level` (0 = none) to the task
/// parameter bundles in place. Call it on a fresh copy of the baseline
/// parameters each period (the raise-sectors step escalates relative to
/// what it finds, so re-applying to already-degraded bundles compounds).
void apply_degradation(int level, Task1Params& task1, Task23Params& task23);

/// True when `level` sheds the sporadic-query task (the full-system
/// executive skips the batch and counts it as shed, not skipped).
[[nodiscard]] bool degradation_sheds_sporadic(int level);

}  // namespace atm::tasks
