// The associative-processor formulation of the ATM tasks ([12, 13]),
// shared by the STARAN backend and its ClearSpeed emulation.
//
// Both machines run the *same algorithm*; what differs is the cost of each
// primitive: on a true AP (one PE per aircraft) every parallel operation,
// search, responder step, and min-reduction is constant time, so the task
// loops below are linear in the number of aircraft — the [12, 13] result.
// On the ClearSpeed emulation (192 physical PEs) every parallel primitive
// pays ceil(n / 192) virtualization rounds, which is what the emulated
// curves in the paper's figures reflect.
//
// The algorithms are expressed against a small "associative machine"
// concept (see AssocMachineConcept below) implemented by adapters over
// ap::ApMachine and simd::LockstepMachine.
//
// Task 1 (tracking & correlation), associative form:
//   * all PEs compute expected positions in parallel;
//   * the control unit iterates the (unmatched) radars: broadcast the
//     return, associative-search the eligible aircraft within the box,
//     count responders in constant time; a single responder is a tentative
//     pair (selected with the "step" operation), multiple responders
//     discard the radar, and every responder increments its own coverage
//     counter in parallel;
//   * after the radar sweep, aircraft with coverage >= 2 become ambiguous
//     in one parallel step, tentative pairs whose aircraft kept coverage 1
//     commit;
//   * unmatched radars repeat with a doubled box (two retries), then one
//     parallel step moves every aircraft to its radar/expected position.
//
// Tasks 2+3, associative form:
//   * the control unit iterates the aircraft: broadcast the track, all PEs
//     run Batcher's test against their own record in parallel; "any
//     responders" answers conflict existence in constant time and a
//     bit-serial min-reduction finds the soonest conflicting partner;
//   * a critical track trials rotated paths: each trial is a broadcast
//     plus one parallel re-test — constant time per trial on the AP,
//     regardless of aircraft count;
//   * one final parallel step commits resolved paths.
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/airfield/flight_db.hpp"
#include "src/airfield/radar.hpp"
#include "src/airfield/terrain.hpp"
#include "src/airfield/towers.hpp"
#include "src/atm/batcher.hpp"
#include "src/atm/extended/advisory.hpp"
#include "src/atm/extended/display.hpp"
#include "src/atm/extended/ext_types.hpp"
#include "src/atm/extended/sporadic.hpp"
#include "src/atm/extended/terrain_task.hpp"
#include "src/atm/reference/collision.hpp"
#include "src/atm/task_types.hpp"
#include "src/core/vec2.hpp"

namespace atm::tasks::assoc {

/// Mask type shared by the adapters (nonzero byte = responder).
using Mask = std::vector<std::uint8_t>;

// The machine adapter concept (documented, duck-typed):
//   void   parallel_all(F fn, int word_ops);            fn(i) for all PEs
//   void   parallel_masked(const Mask&, F fn, int ops); fn(i) for responders
//   void   search(P pred, Mask& out, int word_ops);     out[i] = pred(i)
//   bool   any(const Mask&);
//   size_t first(const Mask&);                           npos when none
//   size_t count(const Mask&);
//   size_t min_index(span<const double>, const Mask&);   npos when none
//   void   broadcast();
//   void   host_access(int word_ops);                    control-unit scalar
//   double elapsed_ms();  void reset();
//   static constexpr size_t npos;

/// Word-op weights of the associative task steps (bit-serial field ops per
/// parallel instruction). Shared so both machines charge identical op
/// counts and differ only in per-op cost.
struct AssocOpWeights {
  int expected_position = 2;  ///< ex = x + dx; ey = y + dy.
  int reset_flags = 1;
  int box_search = 4;         ///< Two field compares per axis.
  int coverage_inc = 1;
  int ambiguity = 2;
  int commit_tracking = 3;
  int batcher_scan = 16;      ///< Projection, 4 divides, window logic.
  int conflict_flags = 2;
  int trial_check = 16;
  int commit_paths = 2;
  // Extended-system steps.
  int terrain_sample = 6;     ///< Bilinear lookup + compare, per sample.
  int display_sector = 3;     ///< Sector arithmetic + handoff compare.
  int advisory_classify = 3;  ///< Flag tests + boundary compare.
  int candidate_distance = 2; ///< Squared-distance evaluation.
  int query_search = 2;       ///< One associative query evaluation.
};

/// Task 1 on an associative machine. Semantics identical to
/// tasks::reference::correlate_and_track. stats.box_tests counts PE
/// comparisons (all PEs compare on every search — that is how an
/// associative search works), so it differs from the sequential backends'
/// eligible-only count; outcome fields are identical.
template <typename M>
Task1Stats assoc_task1(M& m, airfield::FlightDb& db,
                       airfield::RadarFrame& frame,
                       const Task1Params& params,
                       const AssocOpWeights& w = {}) {
  using airfield::kDiscarded;
  using airfield::kNone;
  using airfield::MatchState;

  const std::size_t n = db.size();
  Task1Stats stats;
  stats.radars = frame.size();

  db.reset_correlation_state();
  frame.reset_matches();

  std::vector<double> ex(n), ey(n), rxa(n, 0.0), rya(n, 0.0);
  std::vector<std::int32_t> hits(n, 0);
  std::vector<std::int32_t> amatch(n, kNone);

  m.parallel_all(
      [&](std::size_t i) {
        ex[i] = db.x[i] + db.dx[i];
        ey[i] = db.y[i] + db.dy[i];
      },
      w.expected_position);

  Mask mask;
  std::vector<std::pair<std::int32_t, std::int32_t>> pending;

  const int total_passes = 1 + params.retries;
  for (int pass = 0; pass < total_passes; ++pass) {
    bool any_active = false;
    for (const std::int32_t rm : frame.rmatch_with) {
      if (rm == kNone) {
        any_active = true;
        break;
      }
    }
    if (!any_active) break;
    ++stats.passes;
    const double half = params.box_half_nm * static_cast<double>(1 << pass);

    m.parallel_all([&](std::size_t i) { hits[i] = 0; }, w.reset_flags);
    pending.clear();

    for (std::size_t r = 0; r < frame.size(); ++r) {
      if (frame.rmatch_with[r] != kNone) continue;
      const double rx = frame.rx[r];
      const double ry = frame.ry[r];
      m.broadcast();
      m.search(
          [&](std::size_t a) {
            return db.rmatch[a] ==
                       static_cast<std::int8_t>(MatchState::kUnmatched) &&
                   std::fabs(ex[a] - rx) < half &&
                   std::fabs(ey[a] - ry) < half;
          },
          mask, w.box_search);
      stats.box_tests += n;  // every PE compares
      const std::size_t cnt = m.count(mask);
      if (cnt == 0) continue;
      m.parallel_masked(mask, [&](std::size_t a) { ++hits[a]; },
                        w.coverage_inc);
      if (cnt >= 2) {
        frame.rmatch_with[r] = kDiscarded;
      } else {
        pending.emplace_back(static_cast<std::int32_t>(r),
                             static_cast<std::int32_t>(m.first(mask)));
      }
    }

    // Ambiguity in one parallel step.
    m.search(
        [&](std::size_t a) {
          return db.rmatch[a] ==
                     static_cast<std::int8_t>(MatchState::kUnmatched) &&
                 hits[a] >= 2;
        },
        mask, w.ambiguity);
    m.parallel_masked(
        mask,
        [&](std::size_t a) {
          db.rmatch[a] = static_cast<std::int8_t>(MatchState::kAmbiguous);
        },
        w.reset_flags);

    // Commit tentative pairs whose aircraft kept single coverage.
    for (const auto& [r, a] : pending) {
      frame.rmatch_with[static_cast<std::size_t>(r)] = a;
      m.host_access(1);
      const auto ai = static_cast<std::size_t>(a);
      if (hits[ai] == 1) {
        db.rmatch[ai] = static_cast<std::int8_t>(MatchState::kMatched);
        amatch[ai] = r;
        rxa[ai] = frame.rx[static_cast<std::size_t>(r)];
        rya[ai] = frame.ry[static_cast<std::size_t>(r)];
        m.host_access(2);
      }
    }
  }

  // Commit the new positions in one parallel step.
  m.parallel_all(
      [&](std::size_t a) {
        if (db.rmatch[a] == static_cast<std::int8_t>(MatchState::kMatched) &&
            amatch[a] >= 0) {
          db.x[a] = rxa[a];
          db.y[a] = rya[a];
          ++stats.matched;
          ++stats.updated_aircraft;
        } else {
          db.x[a] = ex[a];
          db.y[a] = ey[a];
        }
      },
      w.commit_tracking);

  for (const std::int32_t rm : frame.rmatch_with) {
    if (rm == kNone) ++stats.unmatched_radars;
    if (rm == kDiscarded) ++stats.discarded_radars;
  }
  for (std::size_t a = 0; a < n; ++a) {
    if (db.rmatch[a] == static_cast<std::int8_t>(MatchState::kAmbiguous)) {
      ++stats.ambiguous_aircraft;
    }
  }
  return stats;
}

/// Tasks 2+3 on an associative machine. Semantics identical to
/// tasks::reference::detect_and_resolve. stats.pair_tests counts the
/// altitude-gated Batcher evaluations the PEs performed (parallel scans
/// evaluate every PE; there is no early exit in lock-step hardware).
template <typename M>
Task23Stats assoc_task23(M& m, airfield::FlightDb& db,
                         const Task23Params& params,
                         const AssocOpWeights& w = {}) {
  using airfield::kNone;

  const std::size_t n = db.size();
  Task23Stats stats;
  stats.aircraft = n;

  db.reset_collision_state();
  m.parallel_all([](std::size_t) {}, w.reset_flags);

  std::vector<double> tmin(n, 0.0);
  std::vector<std::uint8_t> resolved(n, 0);
  Mask conflict_mask(n, 0), bad_mask(n, 0);

  const int attempts = reference::max_trial_attempts(params);

  for (std::size_t i = 0; i < n; ++i) {
    m.host_access(1);  // control unit reads out the track record
    m.broadcast();

    // Parallel Batcher scan of track i against every PE's own record.
    m.parallel_all(
        [&](std::size_t j) {
          tmin[j] = params.horizon_periods + 1.0;
          conflict_mask[j] = 0;
          if (j == i) return;
          if (!altitude_gate(db.alt[i], db.alt[j],
                             params.altitude_gate_feet)) {
            return;
          }
          ++stats.pair_tests;
          const PairConflict pc = batcher_pair_test(
              db.x[j] - db.x[i], db.y[j] - db.y[i], db.dx[j] - db.dx[i],
              db.dy[j] - db.dy[i], params.band_nm, params.horizon_periods);
          if (pc.conflict) {
            tmin[j] = pc.time_min;
            conflict_mask[j] = 1;
          }
        },
        w.batcher_scan);
    if (!m.any(conflict_mask)) continue;

    const std::size_t partner = m.min_index(tmin, conflict_mask);
    const double soonest = tmin[partner];
    ++stats.conflicts;
    db.col[i] = 1;
    db.col_with[i] = static_cast<std::int32_t>(partner);
    if (soonest < db.time_till[i]) db.time_till[i] = soonest;
    m.host_access(1);

    if (soonest >= params.critical_periods) continue;
    ++stats.critical;

    const core::Vec2 vel{db.dx[i], db.dy[i]};
    for (int attempt = 0; attempt < attempts; ++attempt) {
      const double angle =
          reference::trial_angle_deg(attempt, params.turn_step_deg);
      const core::Vec2 trial = core::rotate_deg(vel, angle);
      m.host_access(1);  // control unit computes and broadcasts the trial
      m.broadcast();
      ++stats.rescans;
      m.parallel_all(
          [&](std::size_t j) {
            bad_mask[j] = 0;
            if (j == i) return;
            if (!altitude_gate(db.alt[i], db.alt[j],
                               params.altitude_gate_feet)) {
              return;
            }
            ++stats.pair_tests;
            const PairConflict pc = batcher_pair_test(
                db.x[j] - db.x[i], db.y[j] - db.y[i], db.dx[j] - trial.x,
                db.dy[j] - trial.y, params.band_nm,
                params.horizon_periods);
            if (pc.conflict && pc.time_min < params.critical_periods) {
              bad_mask[j] = 1;
            }
          },
          w.trial_check);
      if (!m.any(bad_mask)) {
        db.batx[i] = trial.x;
        db.baty[i] = trial.y;
        resolved[i] = 1;
        m.host_access(1);
        break;
      }
    }
    if (resolved[i]) {
      ++stats.resolved;
    } else {
      ++stats.unresolved;
    }
  }

  // Commit resolved paths in one parallel step.
  m.parallel_all(
      [&](std::size_t i) {
        if (!resolved[i]) return;
        db.dx[i] = db.batx[i];
        db.dy[i] = db.baty[i];
        db.col[i] = 0;
        db.col_with[i] = kNone;
        db.time_till[i] = params.critical_periods;
      },
      w.commit_paths);
  return stats;
}

// --- Extended-system tasks on an associative machine ------------------------

/// Terrain avoidance: every PE scans its own record's projected path
/// against the (PE-memory-resident) terrain in parallel — constant time
/// with respect to aircraft count, samples * lookup word-ops total.
template <typename M>
TerrainStats assoc_terrain(M& m, airfield::FlightDb& db,
                           const airfield::TerrainMap& terrain,
                           const TerrainTaskParams& params,
                           const AssocOpWeights& w = {}) {
  TerrainStats stats;
  stats.aircraft = db.size();
  m.parallel_all(
      [&](std::size_t i) {
        const extended::TerrainScan scan =
            extended::scan_terrain(db, i, terrain, params);
        stats.samples += static_cast<std::uint64_t>(params.samples);
        if (scan.warn) ++stats.warnings;
        if (extended::apply_terrain_scan(db, i, scan)) ++stats.climbs;
      },
      params.samples * w.terrain_sample);
  return stats;
}

/// Display update: sector arithmetic is one parallel step; the occupancy
/// histogram is one associative search + responder count per sector
/// (constant time each on a true AP).
template <typename M>
DisplayStats assoc_display(M& m, airfield::FlightDb& db,
                           std::vector<std::int32_t>& occupancy,
                           const DisplayParams& params,
                           const AssocOpWeights& w = {}) {
  DisplayStats stats;
  stats.aircraft = db.size();
  const int k = params.sectors_per_axis;
  occupancy.assign(static_cast<std::size_t>(k) * k, 0);

  std::vector<std::int32_t> new_sector(db.size(), airfield::kNone);
  m.parallel_all(
      [&](std::size_t i) {
        new_sector[i] = extended::sector_of(db.x[i], db.y[i], k);
      },
      w.display_sector);

  Mask mask;
  m.search(
      [&](std::size_t i) {
        return db.sector[i] != airfield::kNone &&
               db.sector[i] != new_sector[i];
      },
      mask, 1);
  stats.handoffs = m.count(mask);

  m.parallel_all([&](std::size_t i) { db.sector[i] = new_sector[i]; }, 1);

  for (std::int32_t s = 0; s < k * k; ++s) {
    m.search([&](std::size_t i) { return db.sector[i] == s; }, mask, 1);
    const std::size_t count = m.count(mask);
    occupancy[static_cast<std::size_t>(s)] = static_cast<std::int32_t>(count);
    if (count > 0) ++stats.occupied_sectors;
    stats.max_occupancy =
        std::max(stats.max_occupancy, static_cast<std::uint64_t>(count));
  }
  return stats;
}

/// AVA: one search per advisory class; the control unit steps through the
/// responders in id order to drain the voice queue.
template <typename M>
AdvisoryStats assoc_advisory(M& m, const airfield::FlightDb& db,
                             const AdvisoryParams& params,
                             std::vector<Advisory>& queue,
                             const AssocOpWeights& w = {}) {
  AdvisoryStats stats;
  stats.aircraft = db.size();
  queue.clear();

  Mask conflict_mask, terrain_mask, boundary_mask;
  m.search([&](std::size_t i) { return db.col[i] != 0; }, conflict_mask,
           w.advisory_classify);
  m.search([&](std::size_t i) { return db.terrain_warn[i] != 0; },
           terrain_mask, w.advisory_classify);
  const double edge = core::kGridHalfExtentNm - params.boundary_warn_nm;
  m.search(
      [&](std::size_t i) {
        return std::fabs(db.x[i]) > edge || std::fabs(db.y[i]) > edge;
      },
      boundary_mask, w.advisory_classify);

  stats.conflict = m.count(conflict_mask);
  stats.terrain = m.count(terrain_mask);
  stats.boundary = m.count(boundary_mask);

  // Drain in aircraft order (types interleaved per aircraft, matching the
  // reference queue). Each message is one responder step + one readout.
  for (std::size_t i = 0; i < db.size(); ++i) {
    const auto id = static_cast<std::int32_t>(i);
    if (conflict_mask[i]) {
      queue.push_back(Advisory{id, AdvisoryType::kConflict});
      m.host_access(1);
    }
    if (terrain_mask[i]) {
      queue.push_back(Advisory{id, AdvisoryType::kTerrain});
      m.host_access(1);
    }
    if (boundary_mask[i]) {
      queue.push_back(Advisory{id, AdvisoryType::kBoundary});
      m.host_access(1);
    }
  }
  return stats;
}

/// Sporadic requests: THE associative-processor task — each controller
/// query is exactly one broadcast + associative search, constant time in
/// the aircraft count, with the responders stepped out in id order.
template <typename M>
SporadicStats assoc_sporadic(M& m, const airfield::FlightDb& db,
                             std::span<const Query> queries,
                             std::vector<std::vector<std::int32_t>>& answers,
                             const AssocOpWeights& w = {}) {
  SporadicStats stats;
  stats.queries = queries.size();
  answers.assign(queries.size(), {});
  Mask mask;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const Query& query = queries[q];
    m.broadcast();
    m.search(
        [&](std::size_t i) {
          return extended::query_matches(db, i, query);
        },
        mask, w.query_search);
    // Step out the responders (one responder-select per hit).
    for (std::size_t i = 0; i < db.size(); ++i) {
      if (!mask[i]) continue;
      answers[q].push_back(static_cast<std::int32_t>(i));
      ++stats.hits;
      m.host_access(1);
    }
  }
  return stats;
}

/// Multi-tower correlation on an associative machine: the control unit
/// iterates the returns (broadcast + search, as in the base Task 1); the
/// closest-candidate selection happens in control-unit memory, and the
/// commits are masked parallel writes.
template <typename M>
MultiRadarStats assoc_multi_task1(M& m, airfield::FlightDb& db,
                                  airfield::MultiRadarFrame& frame,
                                  const Task1Params& params,
                                  const AssocOpWeights& w = {}) {
  using airfield::kDiscarded;
  using airfield::kNone;
  using airfield::kRedundant;
  using airfield::MatchState;

  const std::size_t n = db.size();
  const std::size_t returns = frame.size();
  MultiRadarStats stats;
  stats.returns = returns;

  db.reset_correlation_state();
  frame.base.reset_matches();

  std::vector<double> ex(n), ey(n);
  std::vector<std::int32_t> amatch(n, kNone);
  std::vector<double> best_d2(n, 0.0);
  std::vector<std::int32_t> nhits(returns, 0);
  std::vector<std::int32_t> hit_id(returns, kNone);

  m.parallel_all(
      [&](std::size_t i) {
        ex[i] = db.x[i] + db.dx[i];
        ey[i] = db.y[i] + db.dy[i];
      },
      w.expected_position);

  auto& rmw = frame.base.rmatch_with;
  Mask mask;

  const int total_passes = 1 + params.retries;
  for (int pass = 0; pass < total_passes; ++pass) {
    bool any_active = false;
    for (const std::int32_t rm : rmw) {
      if (rm == kNone) {
        any_active = true;
        break;
      }
    }
    if (!any_active) break;
    ++stats.passes;
    const double half = params.box_half_nm * static_cast<double>(1 << pass);

    // Phase 1: per active return — associative box search.
    for (std::size_t r = 0; r < returns; ++r) {
      if (rmw[r] != kNone) continue;
      const double rx = frame.base.rx[r];
      const double ry = frame.base.ry[r];
      m.broadcast();
      m.search(
          [&](std::size_t a) {
            return db.rmatch[a] ==
                       static_cast<std::int8_t>(MatchState::kUnmatched) &&
                   std::fabs(ex[a] - rx) < half &&
                   std::fabs(ey[a] - ry) < half;
          },
          mask, w.box_search);
      stats.box_tests += n;
      const std::size_t cnt = m.count(mask);
      nhits[r] = static_cast<std::int32_t>(cnt);
      if (cnt >= 2) {
        rmw[r] = kDiscarded;
        hit_id[r] = kNone;
      } else if (cnt == 1) {
        hit_id[r] = static_cast<std::int32_t>(m.first(mask));
      } else {
        hit_id[r] = kNone;
      }
    }

    // Phase 2: closest-candidate selection in control-unit memory.
    std::vector<std::int32_t> best(n, kNone);
    std::vector<double> best_dist(n, 0.0);
    for (std::size_t r = 0; r < returns; ++r) {
      if (rmw[r] != kNone || nhits[r] != 1) continue;
      const auto a = static_cast<std::size_t>(hit_id[r]);
      const double dx = frame.base.rx[r] - ex[a];
      const double dy = frame.base.ry[r] - ey[a];
      const double d2 = dx * dx + dy * dy;
      m.host_access(w.candidate_distance);
      if (best[a] == kNone || d2 < best_dist[a]) {
        best[a] = static_cast<std::int32_t>(r);
        best_dist[a] = d2;
      }
    }

    // Phase 3: commit winners (masked single-PE writes), mark losers.
    for (std::size_t r = 0; r < returns; ++r) {
      if (rmw[r] != kNone || nhits[r] != 1) continue;
      const auto a = static_cast<std::size_t>(hit_id[r]);
      if (best[a] == static_cast<std::int32_t>(r)) {
        db.rmatch[a] = static_cast<std::int8_t>(MatchState::kMatched);
        amatch[a] = static_cast<std::int32_t>(r);
        best_d2[a] = best_dist[a];
        rmw[r] = hit_id[r];
        m.host_access(2);
      } else {
        rmw[r] = kRedundant;
        m.host_access(1);
      }
    }
  }

  // Commit positions in one parallel step.
  m.parallel_all(
      [&](std::size_t a) {
        if (db.rmatch[a] == static_cast<std::int8_t>(MatchState::kMatched) &&
            amatch[a] >= 0) {
          const auto r = static_cast<std::size_t>(amatch[a]);
          db.x[a] = frame.base.rx[r];
          db.y[a] = frame.base.ry[r];
          ++stats.matched_aircraft;
        } else {
          db.x[a] = ex[a];
          db.y[a] = ey[a];
        }
      },
      w.commit_tracking);

  for (const std::int32_t rm : rmw) {
    if (rm == kNone) ++stats.unmatched_returns;
    if (rm == kDiscarded) ++stats.discarded_returns;
    if (rm == kRedundant) ++stats.redundant_returns;
  }
  return stats;
}

}  // namespace atm::tasks::assoc
