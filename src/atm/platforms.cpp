#include "src/atm/platforms.hpp"

#include "src/atm/ap_backend.hpp"
#include "src/atm/clearspeed_backend.hpp"
#include "src/atm/cuda_backend.hpp"
#include "src/atm/mimd_backend.hpp"
#include "src/atm/reference_backend.hpp"
#include "src/atm/vector_backend.hpp"

namespace atm::tasks {

std::unique_ptr<Backend> make_geforce_9800_gt() {
  return std::make_unique<CudaBackend>(simt::geforce_9800_gt());
}

std::unique_ptr<Backend> make_gtx_880m() {
  return std::make_unique<CudaBackend>(simt::gtx_880m());
}

std::unique_ptr<Backend> make_titan_x_pascal() {
  return std::make_unique<CudaBackend>(simt::titan_x_pascal());
}

std::unique_ptr<Backend> make_staran() {
  return std::make_unique<ApBackend>();
}

std::unique_ptr<Backend> make_clearspeed() {
  return std::make_unique<ClearSpeedBackend>();
}

std::unique_ptr<Backend> make_xeon() {
  return std::make_unique<MimdBackend>();
}

std::unique_ptr<Backend> make_reference() {
  return std::make_unique<ReferenceBackend>();
}

std::unique_ptr<Backend> make_xeon_phi() {
  return std::make_unique<VectorBackend>();
}

std::vector<std::unique_ptr<Backend>> make_platforms(PlatformSet set) {
  std::vector<std::unique_ptr<Backend>> platforms;
  if (set == PlatformSet::kAllPlatforms) {
    platforms.push_back(make_staran());
    platforms.push_back(make_clearspeed());
    platforms.push_back(make_xeon());
  }
  platforms.push_back(make_geforce_9800_gt());
  platforms.push_back(make_gtx_880m());
  platforms.push_back(make_titan_x_pascal());
  return platforms;
}

}  // namespace atm::tasks
