#include "src/atm/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "src/atm/reference/collision.hpp"
#include "src/core/check.hpp"
#include "src/core/kern/kernels.hpp"
#include "src/core/vec2.hpp"

namespace atm::tasks::sharded {

using airfield::kDiscarded;
using airfield::kNone;
using airfield::MatchState;

namespace {

/// Items per dynamically claimed chunk for the flat (non-sector) phases.
constexpr std::size_t kChunk = 64;

void reset_telemetry(ShardTelemetry& t, std::size_t sectors) {
  t.sectors = static_cast<int>(sectors);
  t.gather_ops = 0;
  t.inner_ops = 0;
  t.parallel_regions = 0;
  t.sector_owned.assign(sectors, 0);
  t.sector_candidates.assign(sectors, 0);
}

}  // namespace

Task1Stats correlate_and_track(airfield::FlightDb& db,
                               airfield::RadarFrame& frame,
                               mimd::ThreadPool& pool, ShardScratch& scratch,
                               const Task1Params& params,
                               ShardTelemetry* telemetry) {
  const std::size_t n = db.size();
  Task1Stats stats;
  stats.radars = frame.size();
  const core::kern::Kernel kernel = core::kern::resolve(params.kernel);
  stats.kernel = static_cast<int>(kernel);
  ATM_CHECK_MSG(params.box_half_nm > 0.0 && params.retries >= 0 &&
                    params.sectors_per_axis >= 1,
                "degenerate sharded correlation params: box_half_nm="
                    << params.box_half_nm << " retries=" << params.retries
                    << " sectors_per_axis=" << params.sectors_per_axis);

  const auto sectors =
      static_cast<std::size_t>(params.sectors_per_axis) *
      static_cast<std::size_t>(params.sectors_per_axis);
  stats.sectors = static_cast<int>(sectors);
  ShardTelemetry local_telemetry;
  ShardTelemetry& tele = telemetry != nullptr ? *telemetry : local_telemetry;
  reset_telemetry(tele, sectors);
  scratch.sectors.resize(sectors);
  scratch.task1.resize(n, frame.size());
  reference::Task1Scratch& t1 = scratch.task1;

  db.reset_correlation_state();
  frame.reset_matches();
  std::fill(t1.amatch.begin(), t1.amatch.end(), kNone);

  // Expected positions (parallel region).
  pool.parallel_for(0, n, kChunk, [&](std::size_t i) {
    t1.ex[i] = db.x[i] + db.dx[i];
    t1.ey[i] = db.y[i] + db.dy[i];
  });
  ++tele.parallel_regions;

  // Per-sector work and box-test counts, filled by the sector tasks and
  // summed after the join (deterministic, no shared accumulators).
  std::vector<std::uint64_t> sector_tests(sectors, 0);
  std::vector<std::uint64_t> sector_inner(sectors, 0);
  std::vector<std::uint64_t> sector_lanes(sectors, 0);

  const bool use_grid =
      params.broadphase == core::spatial::BroadphaseMode::kGrid;
  const int total_passes = 1 + params.retries;
  double prev_half = 0.0;
  for (int pass = 0; pass < total_passes; ++pass) {
    const bool any_active =
        std::any_of(frame.rmatch_with.begin(), frame.rmatch_with.end(),
                    [](std::int32_t m) { return m == kNone; });
    if (!any_active) break;
    ++stats.passes;
    const double half = params.box_half_nm * static_cast<double>(1 << pass);
    ATM_CHECK_MSG(half > prev_half && std::isfinite(half),
                  "correlation box failed to grow: pass=" << pass << " half="
                                                          << half << " prev="
                                                          << prev_half);
    prev_half = half;

    std::fill(t1.nhits.begin(), t1.nhits.end(), 0);
    std::fill(t1.hit_id.begin(), t1.hit_id.end(), kNone);
    std::fill(t1.nradars.begin(), t1.nradars.end(), 0);
    for (std::size_t a = 0; a < n; ++a) {
      t1.eligible[a] =
          db.rmatch[a] == static_cast<std::int8_t>(MatchState::kUnmatched)
              ? 1
              : 0;
    }

    // Partition the eligible expected positions; a radar's box only
    // reaches `half` per axis, so that is the halo reach. Rebuilt per
    // pass: the box doubles and the eligible set shrinks.
    scratch.partition.build(t1.ex, t1.ey, t1.eligible, /*halo_reach_nm=*/half,
                            params.sectors_per_axis);
    stats.halo_candidates += scratch.partition.halo_total();

    // Assign the still-active radars to sectors by position (CSR build).
    scratch.radar_start.assign(sectors + 1, 0);
    for (std::size_t r = 0; r < frame.size(); ++r) {
      if (frame.rmatch_with[r] != kNone) continue;
      const int s = scratch.partition.sector_of(frame.rx[r], frame.ry[r]);
      ++scratch.radar_start[static_cast<std::size_t>(s) + 1];
    }
    for (std::size_t s = 0; s < sectors; ++s) {
      scratch.radar_start[s + 1] += scratch.radar_start[s];
    }
    scratch.radar_ids.resize(
        static_cast<std::size_t>(scratch.radar_start[sectors]));
    {
      std::vector<std::int32_t> cursor(scratch.radar_start.begin(),
                                       scratch.radar_start.end() - 1);
      for (std::size_t r = 0; r < frame.size(); ++r) {
        if (frame.rmatch_with[r] != kNone) continue;
        const auto s = static_cast<std::size_t>(
            scratch.partition.sector_of(frame.rx[r], frame.ry[r]));
        scratch.radar_ids[static_cast<std::size_t>(cursor[s]++)] =
            static_cast<std::int32_t>(r);
      }
    }

    // One task per sector: gather the candidate snapshot, then scan the
    // sector's radars against it. nhits/hit_id are per-radar (each radar
    // owned by one sector task); the shared per-aircraft coverage count
    // uses commutative relaxed adds, so the result is order-independent.
    pool.parallel_for(0, sectors, 1, [&](std::size_t s) {
      const std::span<const std::int32_t> radars{
          scratch.radar_ids.data() + scratch.radar_start[s],
          static_cast<std::size_t>(scratch.radar_start[s + 1] -
                                   scratch.radar_start[s])};
      const std::span<const std::int32_t> cand =
          scratch.partition.candidates(s);
      tele.sector_owned[s] += radars.size();
      if (radars.empty()) return;
      tele.sector_candidates[s] += cand.size();

      ShardScratch::SectorBuffers& buf = scratch.sectors[s];
      buf.ex.resize(cand.size());
      buf.ey.resize(cand.size());
      buf.id.assign(cand.begin(), cand.end());
      for (std::size_t k = 0; k < cand.size(); ++k) {
        const auto a = static_cast<std::size_t>(cand[k]);
        buf.ex[k] = t1.ex[a];
        buf.ey[k] = t1.ey[a];
      }
      if (use_grid) {
        buf.grid.build(buf.ex, buf.ey, {}, /*cell_hint_nm=*/2.0 * half);
      }

      std::uint64_t local_tests = 0;
      std::uint64_t local_ops = 0;
      std::uint64_t local_lanes = 0;
      buf.hits.resize(cand.size());
      for (const std::int32_t radar : radars) {
        const auto r = static_cast<std::size_t>(radar);
        // The partition was built over eligible aircraft only, so every
        // snapshot slot is a test candidate (eligible = nullptr). Hit
        // slots come back in enumeration order; the coverage adds stay
        // relaxed-atomic (commutative) exactly as before.
        std::size_t hit_count = 0;
        if (use_grid) {
          buf.cand.clear();
          buf.grid.for_each_in_box(
              frame.rx[r] - half, frame.rx[r] + half, frame.ry[r] - half,
              frame.ry[r] + half, [&](std::size_t k) {
                buf.cand.push_back(static_cast<std::int32_t>(k));
              });
          local_ops += buf.cand.size();
          local_tests += buf.cand.size();
          hit_count = core::kern::box_test_batch_indexed(
              kernel, buf.ex.data(), buf.ey.data(), buf.cand.data(),
              buf.cand.size(), frame.rx[r], frame.ry[r], half,
              buf.hits.data(), &local_lanes);
        } else {
          local_ops += cand.size();
          local_tests += cand.size();
          hit_count = core::kern::box_test_batch(
              kernel, buf.ex.data(), buf.ey.data(), cand.size(),
              /*eligible=*/nullptr, frame.rx[r], frame.ry[r], half,
              buf.hits.data(), &local_lanes);
        }
        for (std::size_t h = 0; h < hit_count; ++h) {
          const auto k = static_cast<std::size_t>(buf.hits[h]);
          ++t1.nhits[r];
          t1.hit_id[r] = buf.id[k];
          std::atomic_ref<std::int32_t> coverage(
              t1.nradars[static_cast<std::size_t>(buf.id[k])]);
          coverage.fetch_add(1, std::memory_order_relaxed);
        }
      }
      sector_tests[s] += local_tests;
      sector_inner[s] += local_ops;
      sector_lanes[s] += local_lanes;
    });
    ++tele.parallel_regions;

    // Ambiguity (the pool join above made every coverage add visible).
    pool.parallel_for(0, n, kChunk, [&](std::size_t a) {
      if (db.rmatch[a] ==
              static_cast<std::int8_t>(MatchState::kUnmatched) &&
          t1.nradars[a] >= 2) {
        db.rmatch[a] = static_cast<std::int8_t>(MatchState::kAmbiguous);
      }
    });
    ++tele.parallel_regions;

    // Radar disposition. Single-writer everywhere: rmatch_with[r] belongs
    // to radar r, and the aircraft write is guarded by nradars == 1 —
    // exactly one active radar covers that aircraft this pass.
    pool.parallel_for(0, frame.size(), kChunk, [&](std::size_t r) {
      if (frame.rmatch_with[r] != kNone) return;
      if (t1.nhits[r] >= 2) {
        frame.rmatch_with[r] = kDiscarded;
        return;
      }
      if (t1.nhits[r] == 1) {
        const std::int32_t a = t1.hit_id[r];
        frame.rmatch_with[r] = a;
        const auto ai = static_cast<std::size_t>(a);
        if (t1.nradars[ai] == 1) {
          db.rmatch[ai] = static_cast<std::int8_t>(MatchState::kMatched);
          t1.amatch[ai] = static_cast<std::int32_t>(r);
        }
      }
    });
    ++tele.parallel_regions;
  }

  // Commit.
  pool.parallel_for(0, n, kChunk, [&](std::size_t a) {
    if (db.rmatch[a] == static_cast<std::int8_t>(MatchState::kMatched) &&
        t1.amatch[a] >= 0) {
      const auto r = static_cast<std::size_t>(t1.amatch[a]);
      db.x[a] = frame.rx[r];
      db.y[a] = frame.ry[r];
    } else {
      db.x[a] = t1.ex[a];
      db.y[a] = t1.ey[a];
    }
  });
  ++tele.parallel_regions;

  // Outcome stats.
  for (const std::int32_t m : frame.rmatch_with) {
    if (m == kNone) ++stats.unmatched_radars;
    if (m == kDiscarded) ++stats.discarded_radars;
  }
  for (std::size_t a = 0; a < n; ++a) {
    if (db.rmatch[a] == static_cast<std::int8_t>(MatchState::kAmbiguous)) {
      ++stats.ambiguous_aircraft;
    }
    if (db.rmatch[a] == static_cast<std::int8_t>(MatchState::kMatched) &&
        t1.amatch[a] >= 0) {
      ++stats.matched;
      ++stats.updated_aircraft;
    }
  }

  for (std::size_t s = 0; s < sectors; ++s) {
    stats.box_tests += sector_tests[s];
    stats.lanes_masked += sector_lanes[s];
    tele.inner_ops += sector_inner[s];
    tele.gather_ops += tele.sector_candidates[s];
  }
  return stats;
}

Task23Stats detect_and_resolve(airfield::FlightDb& db,
                               mimd::ThreadPool& pool, ShardScratch& scratch,
                               const Task23Params& params,
                               ShardTelemetry* telemetry) {
  const std::size_t n = db.size();
  Task23Stats stats;
  stats.aircraft = n;
  const core::kern::Kernel kernel = core::kern::resolve(params.kernel);
  stats.kernel = static_cast<int>(kernel);
  ATM_CHECK_MSG(params.sectors_per_axis >= 1,
                "degenerate shard params: sectors_per_axis="
                    << params.sectors_per_axis);

  const auto sectors =
      static_cast<std::size_t>(params.sectors_per_axis) *
      static_cast<std::size_t>(params.sectors_per_axis);
  stats.sectors = static_cast<int>(sectors);
  ShardTelemetry local_telemetry;
  ShardTelemetry& tele = telemetry != nullptr ? *telemetry : local_telemetry;
  reset_telemetry(tele, sectors);
  scratch.sectors.resize(sectors);
  scratch.resolved.assign(n, 0);

  db.reset_collision_state();

  // Halo reach: a pair conflicting inside the horizon is currently at
  // most band + (|v_i| + |v_j|) * horizon apart per axis, and a Task-3
  // trial rotation preserves |v_i|. At paper horizons this saturates the
  // field — the candidate sets then carry everyone and the win is the
  // per-sector parallel execution, not pruning (see sharded.hpp).
  double max_speed = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double s2 = db.dx[i] * db.dx[i] + db.dy[i] * db.dy[i];
    max_speed = std::max(max_speed, s2);
  }
  max_speed = std::sqrt(max_speed);
  const double reach =
      params.band_nm + 2.0 * max_speed * params.horizon_periods;
  scratch.partition.build(db.x, db.y, {}, reach, params.sectors_per_axis);
  stats.halo_candidates = scratch.partition.halo_total();

  const bool use_index =
      params.broadphase == core::spatial::BroadphaseMode::kGrid;
  const int attempts = reference::max_trial_attempts(params);

  // Per-sector outcome/work slots, summed deterministically after the
  // join.
  struct SectorTally {
    std::uint64_t conflicts = 0, critical = 0, resolved = 0, unresolved = 0;
    std::uint64_t rescans = 0, inner_ops = 0;
    reference::ScanWork work;
  };
  std::vector<SectorTally> tally(sectors);

  // One task per sector: gather the snapshot (positions, velocities,
  // altitudes of owned + halo), optionally build the sector's swept
  // index, then run detection and the trial rotations for every owned
  // aircraft against the snapshot. All db writes target owned aircraft —
  // the owner partition is disjoint, so every write has one writer; the
  // snapshot fields (x/y/dx/dy/alt) are never written before the commit
  // phase below, so concurrent gathers race with nothing.
  pool.parallel_for(0, sectors, 1, [&](std::size_t s) {
    const std::span<const std::int32_t> owned = scratch.partition.owned(s);
    const std::span<const std::int32_t> cand =
        scratch.partition.candidates(s);
    tele.sector_owned[s] = owned.size();
    if (owned.empty()) return;
    tele.sector_candidates[s] = cand.size();

    ShardScratch::SectorBuffers& buf = scratch.sectors[s];
    buf.x.resize(cand.size());
    buf.y.resize(cand.size());
    buf.dx.resize(cand.size());
    buf.dy.resize(cand.size());
    buf.alt.resize(cand.size());
    buf.id.assign(cand.begin(), cand.end());
    for (std::size_t k = 0; k < cand.size(); ++k) {
      const auto j = static_cast<std::size_t>(cand[k]);
      buf.x[k] = db.x[j];
      buf.y[k] = db.y[j];
      buf.dx[k] = db.dx[j];
      buf.dy[k] = db.dy[j];
      buf.alt[k] = db.alt[j];
    }
    if (use_index) {
      core::spatial::SweptIndexParams ip;
      ip.horizon_periods = params.horizon_periods;
      ip.band_nm = params.band_nm;
      ip.altitude_gate_feet = params.altitude_gate_feet;
      buf.swept.build(buf.x, buf.y, buf.dx, buf.dy, buf.alt, ip);
    }

    // Detection through the shared scan: the sector's snapshot view with
    // buf.id as the slot -> aircraft map, so self-exclusion, the
    // (time_min, id) tie-break, and the reported partner all use global
    // ids — identical to the monolithic scan over a candidate superset.
    const core::kern::SoaView view = buf.view();
    const core::spatial::SweptIndex* index = use_index ? &buf.swept : nullptr;
    SectorTally& t = tally[s];
    for (const std::int32_t id : owned) {
      const auto i = static_cast<std::size_t>(id);
      std::uint64_t scans = 1;
      const reference::DetectOutcome det = reference::scan_candidates(
          view, buf.id.data(), id, db.x[i], db.y[i], db.alt[i], db.dx[i],
          db.dy[i], params, kernel, t.work, /*stop_at_critical=*/false,
          index, buf.scan);
      if (det.conflict) {
        ++t.conflicts;
        db.col[i] = 1;
        db.col_with[i] = det.partner;
        if (det.time_min < db.time_till[i]) db.time_till[i] = det.time_min;
      }
      if (det.critical) {
        ++t.critical;
        const core::Vec2 vel{db.dx[i], db.dy[i]};
        bool ok = false;
        for (int attempt = 0; attempt < attempts; ++attempt) {
          const double angle =
              reference::trial_angle_deg(attempt, params.turn_step_deg);
          const core::Vec2 trial = core::rotate_deg(vel, angle);
          ++t.rescans;
          ++scans;
          const reference::DetectOutcome check = reference::scan_candidates(
              view, buf.id.data(), id, db.x[i], db.y[i], db.alt[i],
              trial.x, trial.y, params, kernel, t.work,
              /*stop_at_critical=*/true, index, buf.scan);
          if (!check.critical) {
            db.batx[i] = trial.x;
            db.baty[i] = trial.y;
            scratch.resolved[i] = 1;
            ok = true;
            break;
          }
        }
        if (ok) {
          ++t.resolved;
        } else {
          ++t.unresolved;
        }
      }
      t.inner_ops += use_index ? 0 : scans * cand.size();
    }
    if (use_index) t.inner_ops += t.work.pair_candidates;
  });
  ++tele.parallel_regions;

  // Commit.
  pool.parallel_for(0, n, kChunk, [&](std::size_t i) {
    if (!scratch.resolved[i]) return;
    db.dx[i] = db.batx[i];
    db.dy[i] = db.baty[i];
    db.col[i] = 0;
    db.col_with[i] = kNone;
    db.time_till[i] = params.critical_periods;
  });
  ++tele.parallel_regions;

  for (std::size_t s = 0; s < sectors; ++s) {
    const SectorTally& t = tally[s];
    stats.conflicts += t.conflicts;
    stats.critical += t.critical;
    stats.resolved += t.resolved;
    stats.unresolved += t.unresolved;
    stats.rescans += t.rescans;
    stats.pair_tests += t.work.pair_tests;
    stats.pair_candidates += t.work.pair_candidates;
    stats.lanes_masked += t.work.lanes_masked;
    tele.inner_ops += t.inner_ops;
    tele.gather_ops += tele.sector_candidates[s];
  }
  return stats;
}

}  // namespace atm::tasks::sharded
