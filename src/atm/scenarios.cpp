#include "src/atm/scenarios.hpp"

#include <utility>

#include "src/core/sync/mutex.hpp"

namespace atm::tasks {

namespace {

/// Runtime-registered scenarios (corpus repros, tool-defined workloads).
/// Guarded: registration can race with a concurrent all_scenarios() sweep
/// (e.g. a bench thread listing names while a corpus loads).
struct ScenarioRegistry {
  sync::Mutex mu;
  std::vector<Scenario> extra ATM_GUARDED_BY(mu);
};

ScenarioRegistry& registry() {
  static ScenarioRegistry r;
  return r;
}

}  // namespace

Scenario paper_airfield() {
  Scenario s;
  s.name = "paper-airfield";
  s.description =
      "The paper's Section 4 simulation: 256 nm field, 30-600 knot "
      "aircraft at all flight levels, one noisy radar return per aircraft "
      "per half-second period.";
  s.default_aircraft = 1000;
  return s;  // every parameter is already the paper default
}

Scenario dulles_1972() {
  Scenario s;
  s.name = "dulles-1972";
  s.description =
      "Goodyear's STARAN demonstration scale: hundreds of aircraft on "
      "1972-grade radar (coarser returns, wider correlation box).";
  s.default_aircraft = 400;
  s.radar.noise_nm = 0.4;
  s.radar.dropout_probability = 0.03;  // 1972 radar loses sweeps
  s.task1.box_half_nm = 0.75;          // 1.5 x 1.5 nm initial box
  return s;
}

Scenario dense_en_route() {
  Scenario s;
  s.name = "dense-en-route";
  s.description =
      "High-altitude en-route traffic: fast, stratified onto flight "
      "levels (FL290-FL410), longer conflict look-ahead.";
  s.default_aircraft = 3000;
  s.setup.min_speed_knots = 380.0;
  s.setup.max_speed_knots = 600.0;
  s.setup.min_altitude_feet = 29000.0;
  s.setup.max_altitude_feet = 41000.0;
  s.task23.horizon_periods = 30.0 * 60.0 / core::kPeriodSeconds;  // 30 min
  return s;
}

Scenario terminal_area() {
  Scenario s;
  s.name = "terminal-area";
  s.description =
      "A busy terminal box: slow descending traffic below 15000 ft in a "
      "64 nm area, tight separation band, short critical window.";
  s.default_aircraft = 300;
  s.setup.position_max_nm = 32.0;
  s.setup.min_speed_knots = 140.0;
  s.setup.max_speed_knots = 280.0;
  s.setup.min_altitude_feet = 2000.0;
  s.setup.max_altitude_feet = 15000.0;
  s.task23.band_nm = 1.5;
  s.task23.critical_periods = core::seconds_to_periods(90.0);
  s.terrain.clearance_feet = 1500.0;  // approach segments fly lower margins
  return s;
}

Scenario drone_swarm() {
  Scenario s;
  s.name = "drone-swarm";
  s.description =
      "Section 7.2 mobile ATM for a drone swarm: an 8 nm box of 20-80 "
      "knot drones under 1200 ft with GPS-grade position reports and "
      "aggressive turning authority.";
  s.default_aircraft = 96;
  s.setup.position_max_nm = 4.0;
  s.setup.min_speed_knots = 20.0;
  s.setup.max_speed_knots = 80.0;
  s.setup.min_altitude_feet = 100.0;
  s.setup.max_altitude_feet = 1200.0;
  s.radar.noise_nm = 0.02;
  s.task1.box_half_nm = 0.05;
  s.task23.band_nm = 0.5;
  s.task23.altitude_gate_feet = 200.0;
  s.task23.horizon_periods = core::seconds_to_periods(5.0 * 60.0);
  s.task23.critical_periods = core::seconds_to_periods(60.0);
  s.task23.turn_step_deg = 15.0;
  s.task23.turn_max_deg = 90.0;
  s.advisory.boundary_warn_nm = 1.0;
  return s;
}

std::vector<Scenario> all_scenarios() {
  std::vector<Scenario> scenarios = {paper_airfield(), dulles_1972(),
                                     dense_en_route(), terminal_area(),
                                     drone_swarm()};
  ScenarioRegistry& reg = registry();
  sync::MutexLock lock(reg.mu);
  for (const Scenario& s : reg.extra) scenarios.push_back(s);
  return scenarios;
}

void register_scenario(Scenario scenario) {
  ScenarioRegistry& reg = registry();
  sync::MutexLock lock(reg.mu);
  for (Scenario& s : reg.extra) {
    if (s.name == scenario.name) {
      s = std::move(scenario);
      return;
    }
  }
  reg.extra.push_back(std::move(scenario));
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const Scenario& s : all_scenarios()) names.push_back(s.name);
  return names;
}

bool scenario_by_name(std::string_view name, Scenario& out) {
  for (Scenario& s : all_scenarios()) {
    if (s.name == name) {
      out = std::move(s);
      return true;
    }
  }
  return false;
}

PipelineConfig make_pipeline_config(const Scenario& scenario,
                                    int major_cycles, std::uint64_t seed) {
  PipelineConfig cfg;
  apply(scenario, cfg, major_cycles, seed);
  return cfg;
}

extended::FullSystemConfig make_full_config(const Scenario& scenario,
                                            int major_cycles,
                                            std::uint64_t seed) {
  extended::FullSystemConfig cfg;
  apply(scenario, cfg, major_cycles, seed);
  cfg.terrain = scenario.terrain;
  cfg.advisory = scenario.advisory;
  cfg.sporadic = scenario.sporadic;
  return cfg;
}

}  // namespace atm::tasks
