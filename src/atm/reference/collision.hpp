// Reference (sequential) implementation of Tasks 2+3: collision detection
// and resolution (paper Sections 5.2-5.3, Algorithm 2).
//
// Order-independent semantics shared by all backends:
//
//  * Detection (Task 2): for each aircraft i, run Batcher's pair test
//    against every other aircraft j within the 1000 ft altitude gate,
//    using everyone's *current* path (snapshot semantics — in the CUDA
//    program all threads read the same global state concurrently). The
//    soonest conflicting partner (ties to the lowest id) sets col,
//    time_till, and colWith.
//
//  * Resolution (Task 3): aircraft whose soonest conflict is critical
//    (time_min < 300 periods) trial new paths by rotating their velocity
//    +-5, +-10, ... +-30 degrees (positive first, the paper's
//    alternation), re-running detection for the trial path against all
//    other aircraft's *original* paths. The first conflict-free trial
//    (no critical conflict) is stored in batx/baty. If no angle works the
//    aircraft keeps its path and is counted unresolved.
//
//  * Commit: resolved aircraft replace (dx, dy) with (batx, baty) and
//    clear their collision flags (Algorithm 2 line 12); everyone else
//    keeps their detection flags for the cycle report.
#pragma once

#include "src/airfield/flight_db.hpp"
#include "src/atm/task_types.hpp"
#include "src/core/kern/kernels.hpp"
#include "src/core/kern/soa_snapshot.hpp"
#include "src/core/spatial/swept_index.hpp"

namespace atm::tasks::reference {

/// Result of the detection scan for a single aircraft: the soonest
/// conflicting partner on its *current* or *trial* path.
struct DetectOutcome {
  bool conflict = false;      ///< Any conflict inside the horizon.
  bool critical = false;      ///< Soonest conflict below critical time.
  double time_min = 0.0;      ///< Entry time of the soonest conflict.
  std::int32_t partner = -1;  ///< Aircraft id of the soonest conflict.
};

/// Work counters accumulated by the detection scan. These describe how
/// much work an execution did, not what it concluded; the two broadphase
/// modes legitimately differ here while agreeing on every DetectOutcome.
struct ScanWork {
  std::uint64_t pair_candidates = 0;  ///< Pairs enumerated (pre-gate).
  std::uint64_t pair_tests = 0;       ///< Batcher tests (post-gate).
  std::uint64_t lanes_masked = 0;     ///< SIMD tail lanes masked off.
};

/// Reusable per-scan buffers: the broadphase candidate gather plus one
/// block of kernel output. Thread-confined — every concurrent scanner
/// (MIMD worker, sector task) owns its own.
struct ScanScratch {
  std::vector<std::int32_t> cand;          ///< Broadphase candidates.
  core::kern::AlignedVector<double> tmin;  ///< Kernel block output.
  std::vector<std::uint8_t> flags;         ///< Kernel block output.
};

/// Scan one track (position (xi, yi, alti), velocity (vx, vy)) against
/// every aircraft slot in `view` through the band-intersection batch
/// kernel. This is the single detection scan every host path runs:
///
///  * `view` is a gathered snapshot (the whole FlightDb, or one sector's
///    owned + halo buffers);
///  * `ids[slot]` maps a view slot to its aircraft id (nullptr = slots
///    are the ids); `self` is excluded by id, and DetectOutcome.partner
///    is reported as an id;
///  * `index`, when non-null, must be built over the same slots as
///    `view`; the scan then feeds only its candidates to the kernel;
///  * when `stop_at_critical` is set the scan consumes candidates (in
///    enumeration order, blockwise) only up to the first critical
///    conflict — the work counters tally exactly the consumed lanes, so
///    they match the historical one-at-a-time early exit.
///
/// The soonest conflict is selected with an explicit (time_min, partner
/// id) tie-break, so the outcome is independent of enumeration order and
/// identical with and without an index — and bit-identical across
/// kernels (docs/PERF.md).
DetectOutcome scan_candidates(const core::kern::SoaView& view,
                              const std::int32_t* ids, std::int32_t self,
                              double xi, double yi, double alti, double vx,
                              double vy, const Task23Params& params,
                              core::kern::Kernel kernel, ScanWork& work,
                              bool stop_at_critical,
                              const core::spatial::SweptIndex* index,
                              ScanScratch& scratch);

/// Convenience oracle form over a FlightDb: gathers a throwaway snapshot
/// and runs scan_candidates for aircraft i with path (vx, vy). Tests use
/// this as the single-scan semantic oracle; the task drivers gather once
/// and call scan_candidates directly.
DetectOutcome scan_against_all(const airfield::FlightDb& db, std::size_t i,
                               double vx, double vy,
                               const Task23Params& params, ScanWork& work,
                               bool stop_at_critical,
                               const core::spatial::SweptIndex* index =
                                   nullptr);

/// Fill `index` from db's current positions, velocities, and altitudes
/// using the params' horizon, band, and altitude gate. The index stays
/// valid for every scan of the run (detection and trial rotations):
/// detect_and_resolve never moves an aircraft before the commit phase,
/// and a trial rotation preserves the speed the query expands by.
void build_swept_index(const airfield::FlightDb& db,
                       const Task23Params& params,
                       core::spatial::SweptIndex& index);

/// The trial-angle sequence of Task 3: +step, -step, +2*step, -2*step, ...
/// up to +-max. Returns the rotation for attempt k (0-based), in degrees.
[[nodiscard]] double trial_angle_deg(int attempt, double step_deg);

/// Number of trial attempts implied by (step, max): 2 * max / step.
[[nodiscard]] int max_trial_attempts(const Task23Params& params);

/// Run Tasks 2+3 on `db` in place. Returns outcome counters.
Task23Stats detect_and_resolve(airfield::FlightDb& db,
                               const Task23Params& params = {});

}  // namespace atm::tasks::reference
