// Reference (sequential) implementation of Tasks 2+3: collision detection
// and resolution (paper Sections 5.2-5.3, Algorithm 2).
//
// Order-independent semantics shared by all backends:
//
//  * Detection (Task 2): for each aircraft i, run Batcher's pair test
//    against every other aircraft j within the 1000 ft altitude gate,
//    using everyone's *current* path (snapshot semantics — in the CUDA
//    program all threads read the same global state concurrently). The
//    soonest conflicting partner (ties to the lowest id) sets col,
//    time_till, and colWith.
//
//  * Resolution (Task 3): aircraft whose soonest conflict is critical
//    (time_min < 300 periods) trial new paths by rotating their velocity
//    +-5, +-10, ... +-30 degrees (positive first, the paper's
//    alternation), re-running detection for the trial path against all
//    other aircraft's *original* paths. The first conflict-free trial
//    (no critical conflict) is stored in batx/baty. If no angle works the
//    aircraft keeps its path and is counted unresolved.
//
//  * Commit: resolved aircraft replace (dx, dy) with (batx, baty) and
//    clear their collision flags (Algorithm 2 line 12); everyone else
//    keeps their detection flags for the cycle report.
#pragma once

#include "src/airfield/flight_db.hpp"
#include "src/atm/task_types.hpp"
#include "src/core/spatial/swept_index.hpp"

namespace atm::tasks::reference {

/// Result of the detection scan for a single aircraft: the soonest
/// conflicting partner on its *current* or *trial* path.
struct DetectOutcome {
  bool conflict = false;      ///< Any conflict inside the horizon.
  bool critical = false;      ///< Soonest conflict below critical time.
  double time_min = 0.0;      ///< Entry time of the soonest conflict.
  std::int32_t partner = -1;  ///< Aircraft id of the soonest conflict.
};

/// Work counters accumulated by the detection scan. These describe how
/// much work an execution did, not what it concluded; the two broadphase
/// modes legitimately differ here while agreeing on every DetectOutcome.
struct ScanWork {
  std::uint64_t pair_candidates = 0;  ///< Pairs enumerated (pre-gate).
  std::uint64_t pair_tests = 0;       ///< Batcher tests (post-gate).
};

/// Scan aircraft i's path (vx, vy from position db.x/y[i]) against all
/// other aircraft on their current paths. When `stop_at_critical` is set
/// the scan returns at the first critical conflict (the trial-path check
/// in Task 3 only needs existence, and the CUDA kernel breaks there too).
///
/// `index`, when non-null, must be a SweptIndex built over db's current
/// positions/velocities/altitudes with this params bundle; the scan then
/// enumerates only the index's candidates instead of every aircraft. The
/// soonest conflict is selected with an explicit (time_min, partner id)
/// tie-break, so the outcome is independent of enumeration order and
/// identical with and without an index.
DetectOutcome scan_against_all(const airfield::FlightDb& db, std::size_t i,
                               double vx, double vy,
                               const Task23Params& params, ScanWork& work,
                               bool stop_at_critical,
                               const core::spatial::SweptIndex* index =
                                   nullptr);

/// Fill `index` from db's current positions, velocities, and altitudes
/// using the params' horizon, band, and altitude gate. The index stays
/// valid for every scan of the run (detection and trial rotations):
/// detect_and_resolve never moves an aircraft before the commit phase,
/// and a trial rotation preserves the speed the query expands by.
void build_swept_index(const airfield::FlightDb& db,
                       const Task23Params& params,
                       core::spatial::SweptIndex& index);

/// The trial-angle sequence of Task 3: +step, -step, +2*step, -2*step, ...
/// up to +-max. Returns the rotation for attempt k (0-based), in degrees.
[[nodiscard]] double trial_angle_deg(int attempt, double step_deg);

/// Number of trial attempts implied by (step, max): 2 * max / step.
[[nodiscard]] int max_trial_attempts(const Task23Params& params);

/// Run Tasks 2+3 on `db` in place. Returns outcome counters.
Task23Stats detect_and_resolve(airfield::FlightDb& db,
                               const Task23Params& params = {});

}  // namespace atm::tasks::reference
