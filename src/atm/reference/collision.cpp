#include "src/atm/reference/collision.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/vec2.hpp"

namespace atm::tasks::reference {

namespace {

/// Candidates are fed to the band kernel in blocks of this many lanes,
/// and the per-lane decision loop runs after each block: under
/// stop_at_critical at most one block of kernel work past the stopping
/// lane is wasted, while full blocks keep the SIMD lanes saturated.
constexpr std::size_t kScanBlock = 512;

}  // namespace

DetectOutcome scan_candidates(const core::kern::SoaView& view,
                              const std::int32_t* ids, std::int32_t self,
                              double xi, double yi, double alti, double vx,
                              double vy, const Task23Params& params,
                              core::kern::Kernel kernel, ScanWork& work,
                              bool stop_at_critical,
                              const core::spatial::SweptIndex* index,
                              ScanScratch& scratch) {
  DetectOutcome out;
  double soonest = params.horizon_periods + 1.0;

  // Candidate slots: every view slot (brute force) or the broadphase
  // enumeration gathered into scratch.cand. Collection order is the
  // index's enumeration order, so the consumed-lane prefix under
  // stop_at_critical matches the historical one-at-a-time visit.
  const std::int32_t* idx = nullptr;
  std::size_t m = view.n;
  if (index != nullptr) {
    scratch.cand.clear();
    index->for_each_candidate(xi, yi, alti, std::sqrt(vx * vx + vy * vy),
                              [&](std::size_t slot) {
                                scratch.cand.push_back(
                                    static_cast<std::int32_t>(slot));
                                return false;
                              });
    idx = scratch.cand.data();
    m = scratch.cand.size();
  }
  if (scratch.tmin.size() < kScanBlock) {
    scratch.tmin.resize(kScanBlock);
    scratch.flags.resize(kScanBlock);
  }

  const core::kern::BandParams band{params.band_nm, params.horizon_periods,
                                    params.altitude_gate_feet};
  bool stopped = false;
  for (std::size_t base = 0; base < m && !stopped; base += kScanBlock) {
    const std::size_t count = std::min(kScanBlock, m - base);
    core::kern::SoaView block = view;
    const std::int32_t* block_idx = nullptr;
    if (idx != nullptr) {
      block_idx = idx + base;
    } else {
      block.x += base;
      block.y += base;
      block.dx += base;
      block.dy += base;
      block.alt += base;
      block.n = count;
    }
    core::kern::band_intersect_batch(kernel, block, block_idx, count, xi,
                                     yi, alti, vx, vy, band,
                                     scratch.tmin.data(),
                                     scratch.flags.data(),
                                     &work.lanes_masked);

    // The per-lane decision loop: all outcome logic (self skip, work
    // counters, soonest-partner tie-break, critical early exit) lives
    // here, consuming lanes in candidate order. The soonest-conflict min
    // uses a (time_min, partner id) lexicographic tie-break: for the
    // ascending brute-force scan this is exactly the historical
    // first-writer-wins behaviour, and it makes the outcome independent
    // of the order an index enumerates candidates in.
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t slot = block_idx != nullptr
                                   ? static_cast<std::size_t>(block_idx[k])
                                   : base + k;
      const std::int32_t j =
          ids != nullptr ? ids[slot] : static_cast<std::int32_t>(slot);
      if (j == self) continue;
      ++work.pair_candidates;
      if ((scratch.flags[k] & core::kern::kBandGatePass) == 0) continue;
      ++work.pair_tests;
      if ((scratch.flags[k] & core::kern::kBandConflict) == 0) continue;
      out.conflict = true;
      const double tmin = scratch.tmin[k];
      if (tmin < soonest || (tmin == soonest && j < out.partner)) {
        soonest = tmin;
        out.partner = j;
        out.time_min = tmin;
      }
      if (tmin < params.critical_periods) {
        out.critical = true;
        if (stop_at_critical) {
          stopped = true;
          break;
        }
      }
    }
  }
  return out;
}

DetectOutcome scan_against_all(const airfield::FlightDb& db, std::size_t i,
                               double vx, double vy,
                               const Task23Params& params, ScanWork& work,
                               bool stop_at_critical,
                               const core::spatial::SweptIndex* index) {
  core::kern::SoaSnapshot snap;
  snap.gather(db);
  ScanScratch scratch;
  return scan_candidates(snap.view(), /*ids=*/nullptr,
                         static_cast<std::int32_t>(i), db.x[i], db.y[i],
                         db.alt[i], vx, vy, params,
                         core::kern::resolve(params.kernel), work,
                         stop_at_critical, index, scratch);
}

void build_swept_index(const airfield::FlightDb& db,
                       const Task23Params& params,
                       core::spatial::SweptIndex& index) {
  core::spatial::SweptIndexParams ip;
  ip.horizon_periods = params.horizon_periods;
  ip.band_nm = params.band_nm;
  ip.altitude_gate_feet = params.altitude_gate_feet;
  index.build(db.x, db.y, db.dx, db.dy, db.alt, ip);
}

double trial_angle_deg(int attempt, double step_deg) {
  // attempt 0 -> +step, 1 -> -step, 2 -> +2*step, 3 -> -2*step, ...
  const int magnitude = attempt / 2 + 1;
  const double sign = (attempt % 2 == 0) ? 1.0 : -1.0;
  return sign * step_deg * static_cast<double>(magnitude);
}

int max_trial_attempts(const Task23Params& params) {
  const int steps =
      static_cast<int>(std::floor(params.turn_max_deg / params.turn_step_deg +
                                  1e-9));
  return 2 * steps;
}

Task23Stats detect_and_resolve(airfield::FlightDb& db,
                               const Task23Params& params) {
  const std::size_t n = db.size();
  Task23Stats stats;
  stats.aircraft = n;
  const core::kern::Kernel kernel = core::kern::resolve(params.kernel);
  stats.kernel = static_cast<int>(kernel);

  db.reset_collision_state();
  std::vector<std::uint8_t> resolved_flag(n, 0);

  // One gathered snapshot (and, under kGrid, one swept index over the
  // same slots) serves every scan of the run. Positions, velocities, and
  // altitudes are only mutated by the commit phase below, after all
  // scanning is done.
  core::kern::SoaSnapshot snap;
  snap.gather(db);
  const core::kern::SoaView view = snap.view();
  core::spatial::SweptIndex swept;
  const core::spatial::SweptIndex* index = nullptr;
  if (params.broadphase == core::spatial::BroadphaseMode::kGrid) {
    build_swept_index(db, params, swept);
    index = &swept;
  }

  ScanWork work;
  ScanScratch scratch;
  const int attempts = max_trial_attempts(params);

  for (std::size_t i = 0; i < n; ++i) {
    // Task 2: detection on the current path.
    DetectOutcome det = scan_candidates(
        view, /*ids=*/nullptr, static_cast<std::int32_t>(i), db.x[i],
        db.y[i], db.alt[i], db.dx[i], db.dy[i], params, kernel, work,
        /*stop_at_critical=*/false, index, scratch);
    if (det.conflict) {
      ++stats.conflicts;
      db.col[i] = 1;
      db.col_with[i] = det.partner;
      if (det.time_min < db.time_till[i]) db.time_till[i] = det.time_min;
    }
    if (!det.critical) continue;
    ++stats.critical;

    // Task 3: trial rotations against everyone's original paths.
    const core::Vec2 vel{db.dx[i], db.dy[i]};
    for (int attempt = 0; attempt < attempts; ++attempt) {
      const double angle = trial_angle_deg(attempt, params.turn_step_deg);
      const core::Vec2 trial = core::rotate_deg(vel, angle);
      ++stats.rescans;
      const DetectOutcome check = scan_candidates(
          view, /*ids=*/nullptr, static_cast<std::int32_t>(i), db.x[i],
          db.y[i], db.alt[i], trial.x, trial.y, params, kernel, work,
          /*stop_at_critical=*/true, index, scratch);
      if (!check.critical) {
        db.batx[i] = trial.x;
        db.baty[i] = trial.y;
        resolved_flag[i] = 1;
        break;
      }
    }
    if (resolved_flag[i]) {
      ++stats.resolved;
    } else {
      ++stats.unresolved;
    }
  }

  // Commit: resolved aircraft turn onto the trial path and clear their
  // collision flags (Algorithm 2 line 12).
  for (std::size_t i = 0; i < n; ++i) {
    if (!resolved_flag[i]) continue;
    db.dx[i] = db.batx[i];
    db.dy[i] = db.baty[i];
    db.col[i] = 0;
    db.col_with[i] = airfield::kNone;
    db.time_till[i] = params.critical_periods;
  }
  stats.pair_tests = work.pair_tests;
  stats.pair_candidates = work.pair_candidates;
  stats.lanes_masked = work.lanes_masked;
  return stats;
}

}  // namespace atm::tasks::reference
