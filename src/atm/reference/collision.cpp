#include "src/atm/reference/collision.hpp"

#include <cmath>
#include <vector>

#include "src/atm/batcher.hpp"
#include "src/core/vec2.hpp"

namespace atm::tasks::reference {

DetectOutcome scan_against_all(const airfield::FlightDb& db, std::size_t i,
                               double vx, double vy,
                               const Task23Params& params, ScanWork& work,
                               bool stop_at_critical,
                               const core::spatial::SweptIndex* index) {
  DetectOutcome out;
  double soonest = params.horizon_periods + 1.0;
  // The per-candidate body; returns true to stop the enumeration. The
  // soonest-conflict min uses a (time_min, partner id) lexicographic
  // tie-break: for the ascending brute-force scan below this is exactly
  // the historical first-writer-wins behaviour, and it makes the outcome
  // independent of the order an index enumerates candidates in.
  const auto visit = [&](std::size_t j) -> bool {
    if (j == i) return false;
    ++work.pair_candidates;
    if (!altitude_gate(db.alt[i], db.alt[j], params.altitude_gate_feet)) {
      return false;
    }
    ++work.pair_tests;
    const PairConflict pc = batcher_pair_test(
        db.x[j] - db.x[i], db.y[j] - db.y[i], db.dx[j] - vx,
        db.dy[j] - vy, params.band_nm, params.horizon_periods);
    if (!pc.conflict) return false;
    out.conflict = true;
    if (pc.time_min < soonest ||
        (pc.time_min == soonest &&
         static_cast<std::int32_t>(j) < out.partner)) {
      soonest = pc.time_min;
      out.partner = static_cast<std::int32_t>(j);
      out.time_min = pc.time_min;
    }
    if (pc.time_min < params.critical_periods) {
      out.critical = true;
      if (stop_at_critical) return true;
    }
    return false;
  };
  if (index != nullptr) {
    const double speed = std::sqrt(vx * vx + vy * vy);
    index->for_each_candidate(db.x[i], db.y[i], db.alt[i], speed, visit);
  } else {
    for (std::size_t j = 0; j < db.size(); ++j) {
      if (visit(j)) break;
    }
  }
  return out;
}

void build_swept_index(const airfield::FlightDb& db,
                       const Task23Params& params,
                       core::spatial::SweptIndex& index) {
  core::spatial::SweptIndexParams ip;
  ip.horizon_periods = params.horizon_periods;
  ip.band_nm = params.band_nm;
  ip.altitude_gate_feet = params.altitude_gate_feet;
  index.build(db.x, db.y, db.dx, db.dy, db.alt, ip);
}

double trial_angle_deg(int attempt, double step_deg) {
  // attempt 0 -> +step, 1 -> -step, 2 -> +2*step, 3 -> -2*step, ...
  const int magnitude = attempt / 2 + 1;
  const double sign = (attempt % 2 == 0) ? 1.0 : -1.0;
  return sign * step_deg * static_cast<double>(magnitude);
}

int max_trial_attempts(const Task23Params& params) {
  const int steps =
      static_cast<int>(std::floor(params.turn_max_deg / params.turn_step_deg +
                                  1e-9));
  return 2 * steps;
}

Task23Stats detect_and_resolve(airfield::FlightDb& db,
                               const Task23Params& params) {
  const std::size_t n = db.size();
  Task23Stats stats;
  stats.aircraft = n;

  db.reset_collision_state();
  std::vector<std::uint8_t> resolved_flag(n, 0);

  // kGrid: one swept index serves every scan of the run. Positions,
  // velocities, and altitudes are only mutated by the commit phase below,
  // after all scanning is done.
  core::spatial::SweptIndex swept;
  const core::spatial::SweptIndex* index = nullptr;
  if (params.broadphase == core::spatial::BroadphaseMode::kGrid) {
    build_swept_index(db, params, swept);
    index = &swept;
  }

  ScanWork work;
  const int attempts = max_trial_attempts(params);

  for (std::size_t i = 0; i < n; ++i) {
    // Task 2: detection on the current path.
    DetectOutcome det = scan_against_all(db, i, db.dx[i], db.dy[i], params,
                                         work,
                                         /*stop_at_critical=*/false, index);
    if (det.conflict) {
      ++stats.conflicts;
      db.col[i] = 1;
      db.col_with[i] = det.partner;
      if (det.time_min < db.time_till[i]) db.time_till[i] = det.time_min;
    }
    if (!det.critical) continue;
    ++stats.critical;

    // Task 3: trial rotations against everyone's original paths.
    const core::Vec2 vel{db.dx[i], db.dy[i]};
    for (int attempt = 0; attempt < attempts; ++attempt) {
      const double angle = trial_angle_deg(attempt, params.turn_step_deg);
      const core::Vec2 trial = core::rotate_deg(vel, angle);
      ++stats.rescans;
      const DetectOutcome check = scan_against_all(
          db, i, trial.x, trial.y, params, work,
          /*stop_at_critical=*/true, index);
      if (!check.critical) {
        db.batx[i] = trial.x;
        db.baty[i] = trial.y;
        resolved_flag[i] = 1;
        break;
      }
    }
    if (resolved_flag[i]) {
      ++stats.resolved;
    } else {
      ++stats.unresolved;
    }
  }

  // Commit: resolved aircraft turn onto the trial path and clear their
  // collision flags (Algorithm 2 line 12).
  for (std::size_t i = 0; i < n; ++i) {
    if (!resolved_flag[i]) continue;
    db.dx[i] = db.batx[i];
    db.dy[i] = db.baty[i];
    db.col[i] = 0;
    db.col_with[i] = airfield::kNone;
    db.time_till[i] = params.critical_periods;
  }
  stats.pair_tests = work.pair_tests;
  stats.pair_candidates = work.pair_candidates;
  return stats;
}

}  // namespace atm::tasks::reference
