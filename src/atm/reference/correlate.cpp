#include "src/atm/reference/correlate.hpp"

#include <algorithm>
#include <cmath>

#include "src/core/check.hpp"
#include "src/core/kern/kernels.hpp"

namespace atm::tasks::reference {

using airfield::kDiscarded;
using airfield::kNone;
using airfield::MatchState;

void Task1Scratch::resize(std::size_t aircraft, std::size_t radars) {
  ex.resize(aircraft);
  ey.resize(aircraft);
  nhits.resize(radars);
  hit_id.resize(radars);
  nradars.resize(aircraft);
  amatch.resize(aircraft);
  eligible.resize(aircraft);
  hits.resize(aircraft);
}

Task1Stats correlate_and_track(airfield::FlightDb& db,
                               airfield::RadarFrame& frame,
                               Task1Scratch& scratch,
                               const Task1Params& params) {
  const std::size_t n = db.size();
  Task1Stats stats;
  stats.radars = frame.size();
  const core::kern::Kernel kernel = core::kern::resolve(params.kernel);
  stats.kernel = static_cast<int>(kernel);
  ATM_CHECK_MSG(params.box_half_nm > 0.0 && params.retries >= 0,
                "degenerate correlation params: box_half_nm="
                    << params.box_half_nm << " retries=" << params.retries);

  scratch.resize(n, frame.size());
  db.reset_correlation_state();
  frame.reset_matches();
  std::fill(scratch.amatch.begin(), scratch.amatch.end(), kNone);

  // Expected positions: each aircraft advances one period along its track.
  for (std::size_t i = 0; i < n; ++i) {
    scratch.ex[i] = db.x[i] + db.dx[i];
    scratch.ey[i] = db.y[i] + db.dy[i];
  }

  const int total_passes = 1 + params.retries;
  double prev_half = 0.0;
  for (int pass = 0; pass < total_passes; ++pass) {
    const double half = params.box_half_nm * static_cast<double>(1 << pass);
    // Retry-doubling contract: each pass widens the box (and the widening
    // must not overflow to inf), otherwise the retry passes silently
    // re-test the same box and the pass count lies.
    ATM_CHECK_MSG(half > prev_half && std::isfinite(half),
                  "correlation box failed to grow: pass=" << pass << " half="
                                                          << half
                                                          << " prev="
                                                          << prev_half);
    prev_half = half;
    ++stats.passes;

    std::fill(scratch.nhits.begin(), scratch.nhits.end(), 0);
    std::fill(scratch.hit_id.begin(), scratch.hit_id.end(), kNone);
    std::fill(scratch.nradars.begin(), scratch.nradars.end(), 0);

    // Count coverage. The per-hit updates are order-free (hit_id[r] is
    // only read when nhits[r] == 1, i.e. when it had a single writer), so
    // candidates may come from a full eligible scan (brute force) or from
    // the grid cells overlapping the radar's box — the exact |dx|,|dy| <
    // half test (a batch box kernel either way) decides membership and
    // outcomes are identical; only the box_tests work counter differs.
    // db.rmatch is read-only during this phase (dispositions run after),
    // so the eligibility mask is hoisted out of the radar loop.
    const bool use_grid =
        params.broadphase == core::spatial::BroadphaseMode::kGrid;
    std::size_t eligible_count = 0;
    for (std::size_t a = 0; a < n; ++a) {
      const bool e =
          db.rmatch[a] == static_cast<std::int8_t>(MatchState::kUnmatched);
      scratch.eligible[a] = e ? 1 : 0;
      eligible_count += e ? 1u : 0u;
    }
    if (use_grid) {
      scratch.grid.build(scratch.ex, scratch.ey, scratch.eligible,
                         /*cell_hint_nm=*/2.0 * half);
    }
    bool any_active = false;
    for (std::size_t r = 0; r < frame.size(); ++r) {
      if (frame.rmatch_with[r] != kNone) continue;
      any_active = true;
      std::size_t hit_count = 0;
      if (use_grid) {
        scratch.cand.clear();
        scratch.grid.for_each_in_box(
            frame.rx[r] - half, frame.rx[r] + half, frame.ry[r] - half,
            frame.ry[r] + half, [&](std::size_t a) {
              scratch.cand.push_back(static_cast<std::int32_t>(a));
            });
        stats.box_tests += scratch.cand.size();
        hit_count = core::kern::box_test_batch_indexed(
            kernel, scratch.ex.data(), scratch.ey.data(),
            scratch.cand.data(), scratch.cand.size(), frame.rx[r],
            frame.ry[r], half, scratch.hits.data(), &stats.lanes_masked);
      } else {
        // Brute force tests exactly the eligible aircraft (the kernel
        // masks the rest off at emission), so the work counter is the
        // eligible count — identical to the pre-kernel per-test tally.
        stats.box_tests += eligible_count;
        hit_count = core::kern::box_test_batch(
            kernel, scratch.ex.data(), scratch.ey.data(), n,
            scratch.eligible.data(), frame.rx[r], frame.ry[r], half,
            scratch.hits.data(), &stats.lanes_masked);
      }
      for (std::size_t k = 0; k < hit_count; ++k) {
        const std::int32_t a = scratch.hits[k];
        ++scratch.nhits[r];
        scratch.hit_id[r] = a;
        ++scratch.nradars[static_cast<std::size_t>(a)];
      }
    }
    if (!any_active) {
      --stats.passes;
      break;
    }

    // Ambiguous aircraft drop out permanently.
    for (std::size_t a = 0; a < n; ++a) {
      if (db.rmatch[a] ==
              static_cast<std::int8_t>(MatchState::kUnmatched) &&
          scratch.nradars[a] >= 2) {
        db.rmatch[a] = static_cast<std::int8_t>(MatchState::kAmbiguous);
      }
    }

    // Radar dispositions.
    for (std::size_t r = 0; r < frame.size(); ++r) {
      if (frame.rmatch_with[r] != kNone) continue;
      if (scratch.nhits[r] >= 2) {
        frame.rmatch_with[r] = kDiscarded;
      } else if (scratch.nhits[r] == 1) {
        const std::int32_t a = scratch.hit_id[r];
        frame.rmatch_with[r] = a;  // radar records the id either way
        if (scratch.nradars[static_cast<std::size_t>(a)] == 1) {
          db.rmatch[static_cast<std::size_t>(a)] =
              static_cast<std::int8_t>(MatchState::kMatched);
          scratch.amatch[static_cast<std::size_t>(a)] =
              static_cast<std::int32_t>(r);
        }
      }
    }

    // Another pass only if some radar is still unmatched.
    const bool unmatched_remain =
        std::any_of(frame.rmatch_with.begin(), frame.rmatch_with.end(),
                    [](std::int32_t m) { return m == kNone; });
    if (!unmatched_remain) break;
  }

  // Commit: correlated aircraft take the radar position; everyone else
  // advances to the expected position.
  std::vector<std::uint8_t> updated(n, 0);
  for (std::size_t r = 0; r < frame.size(); ++r) {
    const std::int32_t a = frame.rmatch_with[r];
    if (a < 0) continue;
    const auto ai = static_cast<std::size_t>(a);
    if (db.rmatch[ai] == static_cast<std::int8_t>(MatchState::kMatched) &&
        scratch.amatch[ai] == static_cast<std::int32_t>(r)) {
      db.x[ai] = frame.rx[r];
      db.y[ai] = frame.ry[r];
      updated[ai] = 1;
      ++stats.matched;
    }
  }
  for (std::size_t a = 0; a < n; ++a) {
    if (!updated[a]) {
      db.x[a] = scratch.ex[a];
      db.y[a] = scratch.ey[a];
    } else {
      ++stats.updated_aircraft;
    }
  }

  for (std::size_t r = 0; r < frame.size(); ++r) {
    if (frame.rmatch_with[r] == kNone) ++stats.unmatched_radars;
    if (frame.rmatch_with[r] == kDiscarded) ++stats.discarded_radars;
  }
  for (std::size_t a = 0; a < n; ++a) {
    if (db.rmatch[a] == static_cast<std::int8_t>(MatchState::kAmbiguous)) {
      ++stats.ambiguous_aircraft;
    }
  }
  return stats;
}

Task1Stats correlate_and_track(airfield::FlightDb& db,
                               airfield::RadarFrame& frame,
                               const Task1Params& params) {
  Task1Scratch scratch;
  return correlate_and_track(db, frame, scratch, params);
}

}  // namespace atm::tasks::reference
