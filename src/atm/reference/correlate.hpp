// Reference (sequential) implementation of Task 1: radar correlation and
// tracking (paper Section 5.1, Algorithm 1).
//
// Every platform backend implements the same *order-independent* semantics
// reproduced here, so backend results can be compared bit-for-bit:
//
//  pass k (box half-extent = 0.5 nm * 2^k, k = 0..retries):
//    * consider "active" radars (rMatchWith == -1) against "eligible"
//      aircraft (rMatch == 0);
//    * an active radar whose box covers >= 2 eligible aircraft is
//      discarded (rMatchWith = -2);
//    * an eligible aircraft covered by >= 2 active radars becomes
//      ambiguous (rMatch = -1) and keeps its expected position;
//    * a radar covering exactly one aircraft that is covered by exactly
//      one radar is a correlation: rMatch = 1, rMatchWith = aircraft id;
//    * a radar covering exactly one aircraft that turned ambiguous keeps
//      the aircraft id (it is spent, matching the paper's behaviour of
//      not retrying such radars) but will fail the commit check;
//    * the next pass runs only if unmatched radars remain.
//
//  commit: a correlated aircraft takes its radar's measured position; all
//  other aircraft take their expected position (x + dx, y + dy).
//
// This is the count-based reading of Algorithm 1: the paper's CUDA kernel
// reaches the same states through first-writer-wins updates plus explicit
// un-matching; counting hits per radar and radars per aircraft yields those
// final states without depending on thread execution order.
#pragma once

#include "src/airfield/flight_db.hpp"
#include "src/airfield/radar.hpp"
#include "src/atm/task_types.hpp"
#include "src/core/kern/soa_snapshot.hpp"
#include "src/core/spatial/uniform_grid.hpp"

namespace atm::tasks::reference {

/// Scratch space for one Task 1 run; reusable across periods to avoid
/// re-allocating (the paper's program allocates once up front).
struct Task1Scratch {
  /// Expected positions, aligned for the batch box kernels.
  core::kern::AlignedVector<double> ex, ey;
  std::vector<std::int32_t> nhits;       ///< Eligible aircraft per radar.
  std::vector<std::int32_t> hit_id;      ///< Sole hit of a radar.
  std::vector<std::int32_t> nradars;     ///< Active radars per aircraft.
  std::vector<std::int32_t> amatch;      ///< Radar committed to aircraft.
  std::vector<std::uint8_t> eligible;    ///< Mask: rmatch == kUnmatched.
  std::vector<std::int32_t> cand;        ///< Grid-mode candidate gather.
  std::vector<std::int32_t> hits;        ///< Kernel hit output (<= n).
  core::spatial::UniformGrid2D grid;     ///< Broadphase bins (kGrid mode).
  /// nhits/hit_id are per-radar; everything else is per-aircraft. The
  /// counts can differ (dropouts, multi-return frames).
  void resize(std::size_t aircraft, std::size_t radars);
};

/// Run Task 1 on `db` against `frame`, updating both in place. Consumes
/// and fills `scratch`. Returns outcome counters (modeled platform time is
/// the backends' job; the reference is the semantic golden).
Task1Stats correlate_and_track(airfield::FlightDb& db,
                               airfield::RadarFrame& frame,
                               Task1Scratch& scratch,
                               const Task1Params& params = {});

/// Convenience overload with throwaway scratch.
Task1Stats correlate_and_track(airfield::FlightDb& db,
                               airfield::RadarFrame& frame,
                               const Task1Params& params = {});

}  // namespace atm::tasks::reference
