#include "src/atm/pipeline.hpp"

#include <thread>

#include "src/airfield/setup.hpp"
#include "src/core/units.hpp"
#include "src/rt/clock.hpp"

namespace atm::tasks {

PipelineResult run_pipeline(Backend& backend, const PipelineConfig& cfg) {
  backend.load(airfield::make_airfield(cfg.aircraft, cfg.seed, cfg.setup));
  return run_pipeline_loaded(backend, cfg);
}

PipelineResult run_pipeline_loaded(Backend& backend,
                                   const PipelineConfig& cfg) {
  PipelineResult result;
  rt::VirtualClock clock;
  const rt::MajorCycleSchedule schedule =
      rt::MajorCycleSchedule::paper_schedule();
  const double period_ms = schedule.period_ms();

  // Radar noise stream: independent of everything else so the frames a
  // backend sees depend only on (seed, its own flight state).
  core::Rng radar_rng(cfg.seed ^ 0x4ADA1257A3ABCDEFULL);

  int global_period = 0;
  for (int cycle = 0; cycle < cfg.major_cycles; ++cycle) {
    for (int period = 0; period < schedule.periods_per_cycle(); ++period) {
      PeriodLog log;
      log.cycle = cycle;
      log.period = period;

      // Radar creation precedes the period and is not an ATM task
      // (Section 4.2), so it does not consume period budget.
      airfield::RadarFrame frame =
          backend.generate_radar(radar_rng, cfg.radar, &log.radar_ms);

      // Periods live on a fixed time grid; an overrunning task delays the
      // start of everything after it, and a task whose period has already
      // ended is skipped (Section 3: "Remaining tasks that may not have
      // time to complete their execution before the end of the period must
      // be skipped").
      const double period_deadline =
          static_cast<double>(global_period + 1) * period_ms;

      // Task 1.
      if (clock.now_ms() >= period_deadline) {
        result.monitor.record_skip("task1");
        log.task1_outcome = rt::Outcome::kSkipped;
      } else {
        const Task1Result r1 = backend.run_task1(frame, cfg.task1);
        log.task1_ms = r1.modeled_ms;
        log.task1_outcome = result.monitor.record(
            "task1", clock.now_ms(), r1.modeled_ms, period_deadline);
        clock.advance_ms(r1.modeled_ms);
        result.task1_ms.add(r1.modeled_ms);
        result.last_task1 = r1.stats;
      }

      // Host bookkeeping between tasks: grid re-entry (untimed — part of
      // the airfield simulation, not of ATM).
      if (cfg.apply_reentry) {
        log.wrapped = airfield::apply_reentry_all(backend.mutable_state());
      }
      // Save this period's tracked positions ("all radar is saved").
      if (cfg.recorder != nullptr) {
        cfg.recorder->record(backend.state());
      }

      // Tasks 2+3 in the final period of the cycle, after Task 1.
      if (period == schedule.periods_per_cycle() - 1) {
        if (clock.now_ms() >= period_deadline) {
          result.monitor.record_skip("task23");
          log.task23_outcome = rt::Outcome::kSkipped;
        } else {
          const Task23Result r23 = backend.run_task23(cfg.task23);
          log.task23_ran = true;
          log.task23_ms = r23.modeled_ms;
          log.task23_outcome = result.monitor.record(
              "task23", clock.now_ms(), r23.modeled_ms, period_deadline);
          clock.advance_ms(r23.modeled_ms);
          result.task23_ms.add(r23.modeled_ms);
          result.last_task23 = r23.stats;
        }
      }

      // Wait out the remainder of the period so the next one does not
      // start ahead of schedule (Section 4.2). Overruns are *not* given
      // back: a late finish delays subsequent periods.
      clock.advance_to_ms(period_deadline);
      ++global_period;
      result.periods.push_back(log);
    }
  }
  result.virtual_end_ms = clock.now_ms();
  return result;
}

PipelineResult run_pipeline_wallclock(Backend& backend,
                                      const PipelineConfig& cfg,
                                      double real_period_ms) {
  backend.load(airfield::make_airfield(cfg.aircraft, cfg.seed, cfg.setup));

  PipelineResult result;
  const rt::MajorCycleSchedule schedule =
      rt::MajorCycleSchedule::paper_schedule();
  core::Rng radar_rng(cfg.seed ^ 0x4ADA1257A3ABCDEFULL);

  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const auto period =
      std::chrono::duration<double, std::milli>(real_period_ms);
  const auto now_ms = [&] {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  int global_period = 0;
  for (int cycle = 0; cycle < cfg.major_cycles; ++cycle) {
    for (int p = 0; p < schedule.periods_per_cycle(); ++p) {
      PeriodLog log;
      log.cycle = cycle;
      log.period = p;
      airfield::RadarFrame frame =
          backend.generate_radar(radar_rng, cfg.radar, &log.radar_ms);

      const double deadline =
          static_cast<double>(global_period + 1) * real_period_ms;

      if (now_ms() >= deadline) {
        result.monitor.record_skip("task1");
        log.task1_outcome = rt::Outcome::kSkipped;
      } else {
        const double start = now_ms();
        const Task1Result r1 = backend.run_task1(frame, cfg.task1);
        const double duration = now_ms() - start;
        log.task1_ms = duration;
        log.task1_outcome =
            result.monitor.record("task1", start, duration, deadline);
        result.task1_ms.add(duration);
        result.last_task1 = r1.stats;
      }

      if (cfg.apply_reentry) {
        log.wrapped = airfield::apply_reentry_all(backend.mutable_state());
      }
      if (cfg.recorder != nullptr) {
        cfg.recorder->record(backend.state());
      }

      if (p == schedule.periods_per_cycle() - 1) {
        if (now_ms() >= deadline) {
          result.monitor.record_skip("task23");
          log.task23_outcome = rt::Outcome::kSkipped;
        } else {
          const double start = now_ms();
          const Task23Result r23 = backend.run_task23(cfg.task23);
          const double duration = now_ms() - start;
          log.task23_ran = true;
          log.task23_ms = duration;
          log.task23_outcome =
              result.monitor.record("task23", start, duration, deadline);
          result.task23_ms.add(duration);
          result.last_task23 = r23.stats;
        }
      }

      // "Whatever time is left, we wait that long before executing the
      // next period" (Section 4.2) — on the real clock this time.
      const auto target =
          t0 + std::chrono::duration_cast<Clock::duration>(
                   period * (global_period + 1));
      if (Clock::now() < target) std::this_thread::sleep_until(target);
      ++global_period;
      result.periods.push_back(log);
    }
  }
  result.virtual_end_ms = now_ms();
  return result;
}

}  // namespace atm::tasks
