#include "src/atm/pipeline.hpp"

#include <chrono>
#include <thread>

#include "src/airfield/setup.hpp"
#include "src/atm/degrade.hpp"
#include "src/core/check.hpp"
#include "src/core/units.hpp"
#include "src/rt/clock.hpp"

namespace atm::tasks {

namespace {

/// Restores the borrowed trace wiring when the run leaves scope, so the
/// caller's backend (and the monitor copy inside the returned result)
/// never retain a pointer into state the caller may destroy first.
class TraceWiring {
 public:
  TraceWiring(Backend& backend, rt::DeadlineMonitor& monitor,
              rt::Governor& governor, obs::TraceSink* sink)
      : backend_(backend), monitor_(monitor), governor_(governor) {
    backend_.set_trace_sink(sink);
    monitor_.set_trace(sink);
    governor_.set_trace(sink);
  }
  ~TraceWiring() {
    backend_.set_trace_sink(nullptr);
    monitor_.set_trace(nullptr);
    governor_.set_trace(nullptr);
    backend_.set_trace_context(-1, -1);
    monitor_.set_trace_context({}, -1, -1);
    governor_.set_trace_context({}, -1, -1);
  }

 private:
  Backend& backend_;
  rt::DeadlineMonitor& monitor_;
  rt::Governor& governor_;
};

/// Cross-check the "PeriodLog derives from the monitor" contract: the
/// per-period outcome fields are filled from the same record() calls
/// that feed the DeadlineMonitor, so their aggregates must agree.
void check_outcome_accounting(const PipelineResult& result) {
  std::uint64_t met = 0;
  std::uint64_t missed = 0;
  std::uint64_t skipped = 0;
  const auto tally = [&](rt::Outcome outcome) {
    switch (outcome) {
      case rt::Outcome::kMet:
        ++met;
        break;
      case rt::Outcome::kMissed:
        ++missed;
        break;
      case rt::Outcome::kSkipped:
        ++skipped;
        break;
    }
  };
  for (const PeriodLog& log : result.periods) {
    tally(log.task1_outcome);
    if (log.task23_ran || log.task23_outcome == rt::Outcome::kSkipped) {
      tally(log.task23_outcome);
    }
  }
  const rt::DeadlineMonitor& monitor = result.deadlines();
  ATM_CHECK_MSG(met == monitor.total_met() &&
                    missed == monitor.total_missed() &&
                    skipped == monitor.total_skipped(),
                "PeriodLog outcomes diverge from the DeadlineMonitor: logs "
                    << met << "/" << missed << "/" << skipped << " vs monitor "
                    << monitor.total_met() << "/" << monitor.total_missed()
                    << "/" << monitor.total_skipped());
}

}  // namespace

PipelineResult run_pipeline(Backend& backend, const PipelineConfig& cfg) {
  if (!cfg.preloaded) {
    backend.load(airfield::make_airfield(cfg.aircraft, cfg.seed, cfg.setup));
  }

  PipelineResult result;
  const rt::MajorCycleSchedule schedule =
      rt::MajorCycleSchedule::paper_schedule();
  const bool wallclock = cfg.clock_mode == ClockMode::kWallclock;
  const double period_ms =
      wallclock ? cfg.real_period_ms : schedule.period_ms();

  // Radar noise stream: independent of everything else so the frames a
  // backend sees depend only on (seed, its own flight state).
  core::Rng radar_rng(cfg.seed ^ 0x4ADA1257A3ABCDEFULL);

  // Fault injection draws from its own salted stream, so enabling it
  // never perturbs airfield generation or radar noise.
  rt::FaultInjector faults(cfg.faults, cfg.seed);

  // The overload governor: observes every period, walks the degradation
  // ladder on sustained overload, recovers with hysteresis.
  rt::Governor governor(cfg.governor, degradation_ladder());

  // Executive clock: virtual mode advances by modeled task times;
  // wall-clock mode reads the host's steady clock.
  rt::VirtualClock vclock;
  using HostClock = std::chrono::steady_clock;
  const auto t0 = HostClock::now();
  const auto now_ms = [&] {
    if (!wallclock) return vclock.now_ms();
    return std::chrono::duration<double, std::milli>(HostClock::now() - t0)
        .count();
  };

  obs::TraceSink* trace = cfg.trace;
  const TraceWiring wiring(backend, result.monitor_, governor, trace);
  const std::string backend_name =
      trace != nullptr ? backend.name() : std::string();
  obs::Counter wrapped_counter("wrapped_aircraft");

  int global_period = 0;
  for (int cycle = 0; cycle < cfg.major_cycles; ++cycle) {
    const obs::Span cycle_span(trace, "cycle", backend_name, cycle);
    for (int period = 0; period < schedule.periods_per_cycle(); ++period) {
      PeriodLog log;
      log.cycle = cycle;
      log.period = period;
      log.governor_level = governor.level();
      if (trace != nullptr) {
        backend.set_trace_context(cycle, period);
        result.monitor_.set_trace_context(backend_name, cycle, period);
        governor.set_trace_context(backend_name, cycle, period);
      }
      const obs::Span period_span(trace, "period", backend_name, cycle,
                                  period);

      // Task parameters this period runs with: the configured baseline,
      // degraded to the governor's current ladder level (level 0 copies
      // the baseline untouched).
      Task1Params task1_params = cfg.task1;
      Task23Params task23_params = cfg.task23;
      apply_degradation(governor.level(), task1_params, task23_params);

      // Stolen time (fault injection): other host load preempts the
      // executive before the period's first task. Wall-clock mode waits
      // it out for real; virtual mode advances the modeled clock, which
      // makes overload deterministic.
      log.stolen_ms = faults.steal_ms();
      if (log.stolen_ms > 0.0) {
        if (wallclock) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(log.stolen_ms));
        } else {
          vclock.advance_ms(log.stolen_ms);
        }
      }

      // Radar creation precedes the period and is not an ATM task
      // (Section 4.2), so it does not consume period budget. Sensor
      // faults corrupt the frame after generation, the way a degraded
      // sensor corrupts a real sweep.
      airfield::RadarFrame frame =
          backend.generate_radar(radar_rng, cfg.radar, &log.radar_ms);
      faults.apply(frame);

      // Periods live on a fixed time grid; an overrunning task delays the
      // start of everything after it, and a task whose period has already
      // ended is skipped (Section 3: "Remaining tasks that may not have
      // time to complete their execution before the end of the period must
      // be skipped").
      const double period_start =
          static_cast<double>(global_period) * period_ms;
      const double period_deadline = period_start + period_ms;

      // Task 1.
      if (now_ms() >= period_deadline) {
        result.monitor_.record_skip("task1");
        log.task1_outcome = rt::Outcome::kSkipped;
      } else {
        const double start = now_ms();
        const Task1Result r1 = backend.run_task1(frame, task1_params);
        const double duration =
            wallclock ? now_ms() - start : r1.modeled_ms;
        log.task1_ms = duration;
        log.task1_outcome = result.monitor_.record("task1", start, duration,
                                                   period_deadline);
        if (!wallclock) vclock.advance_ms(duration);
        result.task1_ms.add(duration);
        result.last_task1 = r1.stats;
      }

      // Host bookkeeping between tasks: grid re-entry (untimed — part of
      // the airfield simulation, not of ATM).
      if (cfg.apply_reentry) {
        log.wrapped = airfield::apply_reentry_all(backend.mutable_state());
        wrapped_counter.add(log.wrapped);
      }
      // Save this period's tracked positions ("all radar is saved").
      if (cfg.recorder != nullptr) {
        cfg.recorder->record(backend.state());
      }

      // Tasks 2+3 in the final period of the cycle, after Task 1.
      if (period == schedule.periods_per_cycle() - 1) {
        if (now_ms() >= period_deadline) {
          result.monitor_.record_skip("task23");
          log.task23_outcome = rt::Outcome::kSkipped;
        } else {
          const double start = now_ms();
          const Task23Result r23 = backend.run_task23(task23_params);
          const double duration =
              wallclock ? now_ms() - start : r23.modeled_ms;
          log.task23_ran = true;
          log.task23_ms = duration;
          log.task23_outcome = result.monitor_.record(
              "task23", start, duration, period_deadline);
          if (!wallclock) vclock.advance_ms(duration);
          result.task23_ms.add(duration);
          result.last_task23 = r23.stats;
        }
      }

      // Feed the governor: utilization is everything consumed since the
      // period's *scheduled* start (an overrun inherited from earlier
      // periods is load too), and any miss or skip degrades immediately.
      const bool trouble =
          log.task1_outcome != rt::Outcome::kMet ||
          (log.task23_ran && log.task23_outcome != rt::Outcome::kMet) ||
          log.task23_outcome == rt::Outcome::kSkipped;
      governor.observe(now_ms() - period_start, period_ms, trouble);

      // Wait out the remainder of the period so the next one does not
      // start ahead of schedule (Section 4.2). Overruns are *not* given
      // back: a late finish delays subsequent periods.
      if (wallclock) {
        const auto target =
            t0 + std::chrono::duration_cast<HostClock::duration>(
                     std::chrono::duration<double, std::milli>(
                         period_ms * (global_period + 1)));
        if (HostClock::now() < target) std::this_thread::sleep_until(target);
      } else {
        vclock.advance_to_ms(period_deadline);
      }
      ++global_period;
      result.periods.push_back(log);
    }
  }
  result.virtual_end_ms = now_ms();
  result.final_governor_level = governor.level();
  result.governor_degrades = governor.degrade_count();
  result.governor_recovers = governor.recover_count();
  wrapped_counter.publish(trace);
  if (faults.enabled() && trace != nullptr) {
    obs::Counter dropouts("fault.dropouts");
    dropouts.add(faults.total_dropouts());
    dropouts.publish(trace);
    obs::Counter ghosts("fault.ghosts");
    ghosts.add(faults.total_ghosts());
    ghosts.publish(trace);
    obs::Counter bursts("fault.noise_bursts");
    bursts.add(faults.total_noise_bursts());
    bursts.publish(trace);
    obs::Counter stolen("fault.steal_events");
    stolen.add(faults.total_steal_events());
    stolen.publish(trace);
  }
  if (trace != nullptr) trace->flush();
  check_outcome_accounting(result);
  return result;
}

}  // namespace atm::tasks
