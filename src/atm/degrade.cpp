#include "src/atm/degrade.hpp"

#include <algorithm>

#include "src/core/check.hpp"

namespace atm::tasks {

namespace {

/// Sector counts the shard step uses: enable at 4x4, escalate to 8x8.
constexpr int kShardSectorsPerAxis = 4;
constexpr int kShardSectorsPerAxisMax = 8;

/// The deepest retry count level 3 allows Task 1.
constexpr int kCappedRetries = 1;

/// How much coarser level 4 makes the trial-turn sweep.
constexpr double kCoarseResolveFactor = 2.0;

}  // namespace

const std::vector<std::string>& degradation_ladder() {
  static const std::vector<std::string> kLadder = {
      "grid-broadphase", "raise-sectors", "cap-retries", "coarse-resolve",
      "shed-sporadic",
  };
  return kLadder;
}

void apply_degradation(int level, Task1Params& task1, Task23Params& task23) {
  ATM_CHECK_MSG(level >= 0 &&
                    level <= static_cast<int>(degradation_ladder().size()),
                "degradation level " << level << " outside the ladder (0.."
                                     << degradation_ladder().size() << ")");
  if (level >= 1) {  // grid-broadphase
    task1.broadphase = core::spatial::BroadphaseMode::kGrid;
    task23.broadphase = core::spatial::BroadphaseMode::kGrid;
  }
  if (level >= 2) {  // raise-sectors
    const auto raise = [](core::spatial::ShardMode& shard, int& per_axis) {
      if (shard == core::spatial::ShardMode::kSectors) {
        per_axis = std::min(per_axis * 2, kShardSectorsPerAxisMax);
      } else {
        shard = core::spatial::ShardMode::kSectors;
        per_axis = std::max(per_axis, kShardSectorsPerAxis);
      }
    };
    raise(task1.shard, task1.sectors_per_axis);
    raise(task23.shard, task23.sectors_per_axis);
  }
  if (level >= 3) {  // cap-retries
    task1.retries = std::min(task1.retries, kCappedRetries);
  }
  if (level >= 4) {  // coarse-resolve
    // Coarsen the sweep but keep at least the two extreme trial angles,
    // so a critical aircraft is never left without a resolution attempt.
    task23.turn_step_deg = std::min(task23.turn_step_deg *
                                        kCoarseResolveFactor,
                                    task23.turn_max_deg);
  }
}

bool degradation_sheds_sporadic(int level) {
  return level >= static_cast<int>(degradation_ladder().size());
}

}  // namespace atm::tasks
