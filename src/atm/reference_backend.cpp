#include "src/atm/reference_backend.hpp"

#include "src/atm/reference/collision.hpp"
#include "src/rt/clock.hpp"

namespace atm::tasks {

Task1Result ReferenceBackend::do_run_task1(airfield::RadarFrame& frame,
                                           const Task1Params& params) {
  const rt::Stopwatch sw;
  Task1Result result;
  result.stats = reference::correlate_and_track(db_, frame, scratch_, params);
  result.modeled_ms = sw.elapsed_ms();
  return result;
}

Task23Result ReferenceBackend::do_run_task23(const Task23Params& params) {
  const rt::Stopwatch sw;
  Task23Result result;
  result.stats = reference::detect_and_resolve(db_, params);
  result.modeled_ms = sw.elapsed_ms();
  return result;
}

}  // namespace atm::tasks
