#include "src/atm/reference_backend.hpp"

#include "src/atm/reference/collision.hpp"
#include "src/rt/clock.hpp"

namespace atm::tasks {

mimd::ThreadPool& ReferenceBackend::shard_pool() {
  if (pool_ == nullptr) pool_ = std::make_unique<mimd::ThreadPool>();
  return *pool_;
}

Task1Result ReferenceBackend::do_run_task1(airfield::RadarFrame& frame,
                                           const Task1Params& params) {
  const rt::Stopwatch sw;
  Task1Result result;
  if (params.shard == core::spatial::ShardMode::kSectors) {
    sharded::ShardTelemetry telemetry;
    result.stats = sharded::correlate_and_track(
        db_, frame, shard_pool(), shard_scratch_, params, &telemetry);
    for (int s = 0; s < telemetry.sectors; ++s) {
      emit_sector_counter("task1.sector_owned", s,
                          telemetry.sector_owned[static_cast<std::size_t>(s)]);
      emit_sector_counter(
          "task1.sector_candidates", s,
          telemetry.sector_candidates[static_cast<std::size_t>(s)]);
    }
  } else {
    result.stats =
        reference::correlate_and_track(db_, frame, scratch_, params);
  }
  result.modeled_ms = sw.elapsed_ms();
  return result;
}

Task23Result ReferenceBackend::do_run_task23(const Task23Params& params) {
  const rt::Stopwatch sw;
  Task23Result result;
  if (params.shard == core::spatial::ShardMode::kSectors) {
    sharded::ShardTelemetry telemetry;
    result.stats = sharded::detect_and_resolve(db_, shard_pool(),
                                               shard_scratch_, params,
                                               &telemetry);
    for (int s = 0; s < telemetry.sectors; ++s) {
      emit_sector_counter("task23.sector_owned", s,
                          telemetry.sector_owned[static_cast<std::size_t>(s)]);
      emit_sector_counter(
          "task23.sector_candidates", s,
          telemetry.sector_candidates[static_cast<std::size_t>(s)]);
    }
  } else {
    result.stats = reference::detect_and_resolve(db_, params);
  }
  result.modeled_ms = sw.elapsed_ms();
  return result;
}

}  // namespace atm::tasks
