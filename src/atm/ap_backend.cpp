#include "src/atm/ap_backend.hpp"

// Header-only backend; this translation unit anchors the archive member
// and instantiates the shared templates once for faster client builds.

namespace atm::tasks {
namespace {

[[maybe_unused]] void instantiate(ApAssocMachine& m, airfield::FlightDb& db,
                                  airfield::RadarFrame& frame) {
  (void)assoc::assoc_task1(m, db, frame, Task1Params{});
  (void)assoc::assoc_task23(m, db, Task23Params{});
}

}  // namespace
}  // namespace atm::tasks
