#include "src/atm/mimd_backend.hpp"

#include <atomic>
#include <cmath>

#include "src/atm/extended/display.hpp"
#include "src/atm/extended/sporadic.hpp"
#include "src/atm/extended/terrain_task.hpp"
#include "src/atm/reference/collision.hpp"
#include "src/core/kern/kernels.hpp"
#include "src/core/units.hpp"
#include "src/core/vec2.hpp"

namespace atm::tasks {

using airfield::kDiscarded;
using airfield::kNone;
using airfield::MatchState;

namespace {
/// Items per dynamically claimed chunk. Small enough for load balance,
/// large enough that chunk claiming doesn't dominate.
constexpr std::size_t kChunk = 64;
}  // namespace

MimdBackend::MimdBackend(mimd::XeonSpec spec, unsigned pool_workers,
                         std::uint64_t jitter_seed)
    : model_(std::move(spec)),
      pool_(pool_workers),
      locks_(128),
      jitter_rng_(jitter_seed) {}

void MimdBackend::load(const airfield::FlightDb& db) {
  db_ = db;
  const std::size_t n = db_.size();
  ex_.resize(n);
  ey_.resize(n);
  nradars_.resize(n);
  amatch_.resize(n);
  resolved_.resize(n);
  eligible_.resize(n);
}

Task1Result MimdBackend::do_run_task1(airfield::RadarFrame& frame,
                                   const Task1Params& params) {
  const std::size_t n = db_.size();
  Task1Result result;

  if (params.shard == core::spatial::ShardMode::kSectors) {
    // Sector-sharded executive: sector tasks gather private snapshots and
    // scan lock-free. The model charges one locked read per gathered
    // record instead of one per inner-loop access — the sharding's whole
    // point is that the [13] shared-record reader locks (and their
    // contention) disappear from the hot loop.
    mimd::WorkCounters work;
    work.items = n;
    sharded::ShardTelemetry telemetry;
    result.stats = sharded::correlate_and_track(db_, frame, pool_,
                                                shard_scratch_, params,
                                                &telemetry);
    work.inner_ops = telemetry.inner_ops;
    work.locked_ops = telemetry.gather_ops + locks_.acquisitions();
    work.contended = locks_.contended();
    work.parallel_regions = telemetry.parallel_regions;
    locks_.reset_counters();
    last_work_ = work;
    result.modeled_ms = model_.model_ms(work, jitter_rng_);
    for (int s = 0; s < telemetry.sectors; ++s) {
      emit_sector_counter("task1.sector_owned", s,
                          telemetry.sector_owned[static_cast<std::size_t>(s)]);
      emit_sector_counter(
          "task1.sector_candidates", s,
          telemetry.sector_candidates[static_cast<std::size_t>(s)]);
    }
    return result;
  }

  result.stats.radars = frame.size();
  const core::kern::Kernel kernel = core::kern::resolve(params.kernel);
  result.stats.kernel = static_cast<int>(kernel);
  // Per-radar scratch; the frame can carry more returns than aircraft.
  nhits_.resize(frame.size());
  hit_id_.resize(frame.size());

  mimd::WorkCounters work;
  work.items = n;
  std::atomic<std::uint64_t> inner_ops{0};
  std::atomic<std::uint64_t> box_tests{0};
  std::atomic<std::uint64_t> lanes_masked{0};

  db_.reset_correlation_state();
  frame.reset_matches();
  std::fill(amatch_.begin(), amatch_.end(), kNone);

  // Expected positions (parallel region).
  pool_.parallel_for(0, n, kChunk, [&](std::size_t i) {
    ex_[i] = db_.x[i] + db_.dx[i];
    ey_[i] = db_.y[i] + db_.dy[i];
  });
  ++work.parallel_regions;

  const int total_passes = 1 + params.retries;
  for (int pass = 0; pass < total_passes; ++pass) {
    const bool any_active =
        std::any_of(frame.rmatch_with.begin(), frame.rmatch_with.end(),
                    [](std::int32_t m) { return m == kNone; });
    if (!any_active) break;
    ++result.stats.passes;
    const double half = params.box_half_nm * static_cast<double>(1 << pass);

    std::fill(nradars_.begin(), nradars_.end(), 0);

    // Eligibility mask, computed serially once per pass for both modes
    // (the kernels consume it brute-force; the grid build bins by it).
    // rmatch is not mutated during the scan, so the hoisted mask equals
    // the historical inline eligibility check and outcomes are identical.
    const bool use_grid =
        params.broadphase == core::spatial::BroadphaseMode::kGrid;
    std::size_t eligible_count = 0;
    for (std::size_t a = 0; a < n; ++a) {
      const bool e =
          db_.rmatch[a] == static_cast<std::int8_t>(MatchState::kUnmatched);
      eligible_[a] = e ? 1 : 0;
      eligible_count += e ? 1u : 0u;
    }
    if (use_grid) {
      grid_.build(ex_, ey_, eligible_, /*cell_hint_nm=*/2.0 * half);
    }

    // Coverage scan: one worker-claimed radar runs a batch box kernel
    // over the shared aircraft table (all of it, eligibility-masked, or
    // just the grid cells under its box); hits on shared per-aircraft
    // counters go through the striped locks. The candidate/hit buffers
    // are per-thread (the pool has no worker ids; thread_local buffers
    // persist across chunks and runs, which is exactly the reuse the
    // scratch wants).
    pool_.parallel_for(0, frame.size(), kChunk, [&](std::size_t r) {
      if (frame.rmatch_with[r] != kNone) return;
      nhits_[r] = 0;
      hit_id_[r] = kNone;
      thread_local std::vector<std::int32_t> cand;
      thread_local std::vector<std::int32_t> hits;
      hits.resize(n);
      std::uint64_t local_ops = 0;
      std::uint64_t local_tests = 0;
      std::uint64_t local_lanes = 0;
      std::size_t hit_count = 0;
      if (use_grid) {
        cand.clear();
        grid_.for_each_in_box(frame.rx[r] - half, frame.rx[r] + half,
                              frame.ry[r] - half, frame.ry[r] + half,
                              [&](std::size_t a) {
                                cand.push_back(static_cast<std::int32_t>(a));
                              });
        local_ops += cand.size();
        local_tests += cand.size();
        hit_count = core::kern::box_test_batch_indexed(
            kernel, ex_.data(), ey_.data(), cand.data(), cand.size(),
            frame.rx[r], frame.ry[r], half, hits.data(), &local_lanes);
      } else {
        // Brute force sweeps the whole shared table (local_ops counts the
        // record reads) but only the eligible records are box tests.
        local_ops += n;
        local_tests += eligible_count;
        hit_count = core::kern::box_test_batch(
            kernel, ex_.data(), ey_.data(), n, eligible_.data(),
            frame.rx[r], frame.ry[r], half, hits.data(), &local_lanes);
      }
      for (std::size_t h = 0; h < hit_count; ++h) {
        const auto a = static_cast<std::size_t>(hits[h]);
        ++nhits_[r];
        hit_id_[r] = hits[h];
        locks_.with_lock(a, [&] { ++nradars_[a]; });
      }
      inner_ops.fetch_add(local_ops, std::memory_order_relaxed);
      // Outcome counter (architecture-independent): eligible box tests.
      // A single shared accumulator must not hide behind per-radar stripe
      // locks (stripe r and stripe r' don't exclude each other — TSan
      // caught the lost updates); accumulate like the other outcome stats.
      box_tests.fetch_add(local_tests, std::memory_order_relaxed);
      lanes_masked.fetch_add(local_lanes, std::memory_order_relaxed);
    });
    ++work.parallel_regions;

    // Ambiguity.
    pool_.parallel_for(0, n, kChunk, [&](std::size_t a) {
      if (db_.rmatch[a] ==
              static_cast<std::int8_t>(MatchState::kUnmatched) &&
          nradars_[a] >= 2) {
        db_.rmatch[a] = static_cast<std::int8_t>(MatchState::kAmbiguous);
      }
    });
    ++work.parallel_regions;

    // Radar disposition; correlation commits write shared aircraft records
    // under their stripe lock.
    pool_.parallel_for(0, frame.size(), kChunk, [&](std::size_t r) {
      if (frame.rmatch_with[r] != kNone) return;
      if (nhits_[r] >= 2) {
        frame.rmatch_with[r] = kDiscarded;
        return;
      }
      if (nhits_[r] == 1) {
        const std::int32_t a = hit_id_[r];
        frame.rmatch_with[r] = a;
        const auto ai = static_cast<std::size_t>(a);
        if (nradars_[ai] == 1) {
          locks_.with_lock(ai, [&] {
            db_.rmatch[ai] = static_cast<std::int8_t>(MatchState::kMatched);
            amatch_[ai] = static_cast<std::int32_t>(r);
          });
        }
      }
    });
    ++work.parallel_regions;
  }

  // Commit.
  pool_.parallel_for(0, n, kChunk, [&](std::size_t a) {
    if (db_.rmatch[a] == static_cast<std::int8_t>(MatchState::kMatched) &&
        amatch_[a] >= 0) {
      const auto r = static_cast<std::size_t>(amatch_[a]);
      db_.x[a] = frame.rx[r];
      db_.y[a] = frame.ry[r];
    } else {
      db_.x[a] = ex_[a];
      db_.y[a] = ey_[a];
    }
  });
  ++work.parallel_regions;

  // Outcome stats.
  for (const std::int32_t m : frame.rmatch_with) {
    if (m == kNone) ++result.stats.unmatched_radars;
    if (m == kDiscarded) ++result.stats.discarded_radars;
  }
  for (std::size_t a = 0; a < n; ++a) {
    if (db_.rmatch[a] == static_cast<std::int8_t>(MatchState::kAmbiguous)) {
      ++result.stats.ambiguous_aircraft;
    }
    if (db_.rmatch[a] == static_cast<std::int8_t>(MatchState::kMatched) &&
        amatch_[a] >= 0) {
      ++result.stats.matched;
      ++result.stats.updated_aircraft;
    }
  }

  result.stats.box_tests = box_tests.load();
  result.stats.lanes_masked = lanes_masked.load();
  work.inner_ops = inner_ops.load();
  // [13]-style shared-record reader locks (counted, see header) plus the
  // write locks the execution really performed.
  work.locked_ops = work.inner_ops + locks_.acquisitions();
  work.contended = locks_.contended();
  locks_.reset_counters();
  last_work_ = work;
  result.modeled_ms = model_.model_ms(work, jitter_rng_);
  return result;
}

Task23Result MimdBackend::do_run_task23(const Task23Params& params) {
  const std::size_t n = db_.size();
  Task23Result result;

  if (params.shard == core::spatial::ShardMode::kSectors) {
    mimd::WorkCounters work;
    work.items = n;
    sharded::ShardTelemetry telemetry;
    result.stats = sharded::detect_and_resolve(db_, pool_, shard_scratch_,
                                               params, &telemetry);
    work.inner_ops = telemetry.inner_ops;
    work.locked_ops = telemetry.gather_ops + locks_.acquisitions();
    work.contended = locks_.contended();
    work.parallel_regions = telemetry.parallel_regions;
    locks_.reset_counters();
    last_work_ = work;
    result.modeled_ms = model_.model_ms(work, jitter_rng_);
    for (int s = 0; s < telemetry.sectors; ++s) {
      emit_sector_counter("task23.sector_owned", s,
                          telemetry.sector_owned[static_cast<std::size_t>(s)]);
      emit_sector_counter(
          "task23.sector_candidates", s,
          telemetry.sector_candidates[static_cast<std::size_t>(s)]);
    }
    return result;
  }

  result.stats.aircraft = n;
  const core::kern::Kernel kernel = core::kern::resolve(params.kernel);
  result.stats.kernel = static_cast<int>(kernel);

  mimd::WorkCounters work;
  work.items = n;
  std::atomic<std::uint64_t> inner_ops{0};
  std::atomic<std::uint64_t> lanes_masked{0};
  std::atomic<std::uint64_t> pair_tests{0}, pair_candidates{0}, rescans{0},
      conflicts{0}, critical{0}, resolved_count{0}, unresolved{0};

  db_.reset_collision_state();
  std::fill(resolved_.begin(), resolved_.end(), 0);

  // One serially gathered snapshot (and, under kGrid, one swept index
  // over the same slots) queried read-only by every worker. Valid for
  // the whole scan phase — positions/velocities only change in the
  // commit region below.
  snap_.gather(db_);
  const core::kern::SoaView view = snap_.view();
  const core::spatial::SweptIndex* index = nullptr;
  if (params.broadphase == core::spatial::BroadphaseMode::kGrid) {
    reference::build_swept_index(db_, params, swept_);
    index = &swept_;
  }

  pool_.parallel_for(0, n, /*chunk=*/8, [&](std::size_t i) {
    reference::ScanWork local_work;
    thread_local reference::ScanScratch scratch;
    std::uint64_t scans = 1;  // detection sweep; trials add theirs below
    const reference::DetectOutcome det = reference::scan_candidates(
        view, /*ids=*/nullptr, static_cast<std::int32_t>(i), db_.x[i],
        db_.y[i], db_.alt[i], db_.dx[i], db_.dy[i], params, kernel,
        local_work, /*stop_at_critical=*/false, index, scratch);
    if (det.conflict) {
      conflicts.fetch_add(1, std::memory_order_relaxed);
      locks_.with_lock(i, [&] {
        db_.col[i] = 1;
        db_.col_with[i] = det.partner;
        if (det.time_min < db_.time_till[i]) {
          db_.time_till[i] = det.time_min;
        }
      });
    }
    if (det.critical) {
      critical.fetch_add(1, std::memory_order_relaxed);
      const core::Vec2 vel{db_.dx[i], db_.dy[i]};
      const int attempts = reference::max_trial_attempts(params);
      bool ok = false;
      for (int attempt = 0; attempt < attempts; ++attempt) {
        const double angle =
            reference::trial_angle_deg(attempt, params.turn_step_deg);
        const core::Vec2 trial = core::rotate_deg(vel, angle);
        rescans.fetch_add(1, std::memory_order_relaxed);
        ++scans;
        const reference::DetectOutcome check = reference::scan_candidates(
            view, /*ids=*/nullptr, static_cast<std::int32_t>(i), db_.x[i],
            db_.y[i], db_.alt[i], trial.x, trial.y, params, kernel,
            local_work, /*stop_at_critical=*/true, index, scratch);
        if (!check.critical) {
          locks_.with_lock(i, [&] {
            db_.batx[i] = trial.x;
            db_.baty[i] = trial.y;
            resolved_[i] = 1;
          });
          ok = true;
          break;
        }
      }
      if (ok) {
        resolved_count.fetch_add(1, std::memory_order_relaxed);
      } else {
        unresolved.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Model input: shared-table record reads this worker really performed
    // — full table sweeps under brute force, enumerated candidates under
    // the grid (the broadphase's whole point is doing fewer of these).
    const std::uint64_t local_ops =
        index != nullptr ? local_work.pair_candidates : scans * n;
    pair_tests.fetch_add(local_work.pair_tests, std::memory_order_relaxed);
    pair_candidates.fetch_add(local_work.pair_candidates,
                              std::memory_order_relaxed);
    inner_ops.fetch_add(local_ops, std::memory_order_relaxed);
    lanes_masked.fetch_add(local_work.lanes_masked,
                           std::memory_order_relaxed);
  });
  ++work.parallel_regions;

  // Commit.
  pool_.parallel_for(0, n, kChunk, [&](std::size_t i) {
    if (!resolved_[i]) return;
    db_.dx[i] = db_.batx[i];
    db_.dy[i] = db_.baty[i];
    db_.col[i] = 0;
    db_.col_with[i] = kNone;
    db_.time_till[i] = params.critical_periods;
  });
  ++work.parallel_regions;

  result.stats.pair_tests = pair_tests.load();
  result.stats.pair_candidates = pair_candidates.load();
  result.stats.rescans = rescans.load();
  result.stats.conflicts = conflicts.load();
  result.stats.critical = critical.load();
  result.stats.resolved = resolved_count.load();
  result.stats.unresolved = unresolved.load();
  result.stats.lanes_masked = lanes_masked.load();

  work.inner_ops = inner_ops.load();
  work.locked_ops = work.inner_ops + locks_.acquisitions();
  work.contended = locks_.contended();
  locks_.reset_counters();
  last_work_ = work;
  result.modeled_ms = model_.model_ms(work, jitter_rng_);
  return result;
}

// --- Extended system --------------------------------------------------------

TerrainResult MimdBackend::do_run_terrain(const TerrainTaskParams& params) {
  if (terrain_map() == nullptr) {
    throw std::logic_error("MimdBackend::run_terrain: no terrain attached");
  }
  const std::size_t n = db_.size();
  TerrainResult result;
  result.stats.aircraft = n;

  mimd::WorkCounters work;
  work.items = n;
  std::atomic<std::uint64_t> warnings{0}, climbs{0};

  const airfield::TerrainMap& terrain = *terrain_map();
  pool_.parallel_for(0, n, kChunk, [&](std::size_t i) {
    const extended::TerrainScan scan =
        extended::scan_terrain(db_, i, terrain, params);
    if (scan.warn) warnings.fetch_add(1, std::memory_order_relaxed);
    if (extended::apply_terrain_scan(db_, i, scan)) {
      climbs.fetch_add(1, std::memory_order_relaxed);
    }
  });
  ++work.parallel_regions;

  result.stats.warnings = warnings.load();
  result.stats.climbs = climbs.load();
  result.stats.samples = n * static_cast<std::uint64_t>(params.samples);
  // Each terrain sample reads 4 shared heightmap cells plus the record.
  work.inner_ops = result.stats.samples * 5;
  work.locked_ops = work.inner_ops + locks_.acquisitions();
  work.contended = locks_.contended();
  locks_.reset_counters();
  last_work_ = work;
  result.modeled_ms = model_.model_ms(work, jitter_rng_);
  return result;
}

DisplayResult MimdBackend::do_run_display(const DisplayParams& params) {
  const std::size_t n = db_.size();
  DisplayResult result;
  result.stats.aircraft = n;
  const int k = params.sectors_per_axis;

  mimd::WorkCounters work;
  work.items = n;
  std::vector<std::int32_t> occupancy(static_cast<std::size_t>(k) * k, 0);
  std::atomic<std::uint64_t> handoffs{0};

  // Occupancy bins are shared by all workers: real striped-lock traffic.
  pool_.parallel_for(0, n, kChunk, [&](std::size_t i) {
    const std::int32_t s = extended::sector_of(db_.x[i], db_.y[i], k);
    if (db_.sector[i] != kNone && db_.sector[i] != s) {
      handoffs.fetch_add(1, std::memory_order_relaxed);
    }
    db_.sector[i] = s;
    locks_.with_lock(static_cast<std::size_t>(s),
                     [&] { ++occupancy[static_cast<std::size_t>(s)]; });
  });
  ++work.parallel_regions;

  result.stats.handoffs = handoffs.load();
  for (const std::int32_t count : occupancy) {
    if (count > 0) ++result.stats.occupied_sectors;
    result.stats.max_occupancy = std::max(
        result.stats.max_occupancy, static_cast<std::uint64_t>(count));
  }
  work.inner_ops = n * 4;  // record read, sector math, bin update
  work.locked_ops = work.inner_ops + locks_.acquisitions();
  work.contended = locks_.contended();
  locks_.reset_counters();
  last_work_ = work;
  result.modeled_ms = model_.model_ms(work, jitter_rng_);
  return result;
}

AdvisoryResult MimdBackend::do_run_advisory(const AdvisoryParams& params) {
  const std::size_t n = db_.size();
  AdvisoryResult result;
  result.stats.aircraft = n;

  mimd::WorkCounters work;
  work.items = n;
  std::vector<std::uint8_t> flags(n, 0);

  const double edge = core::kGridHalfExtentNm - params.boundary_warn_nm;
  pool_.parallel_for(0, n, kChunk, [&](std::size_t i) {
    std::uint8_t f = 0;
    if (db_.col[i]) f |= 1;
    if (db_.terrain_warn[i]) f |= 2;
    if (std::fabs(db_.x[i]) > edge || std::fabs(db_.y[i]) > edge) f |= 4;
    flags[i] = f;
  });
  ++work.parallel_regions;

  // Serial drain (the voice channel is one stream); each enqueue on the
  // shared queue would be a locked operation on a real MIMD system.
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<std::int32_t>(i);
    if (flags[i] & 1) {
      result.queue.push_back(Advisory{id, AdvisoryType::kConflict});
      ++result.stats.conflict;
    }
    if (flags[i] & 2) {
      result.queue.push_back(Advisory{id, AdvisoryType::kTerrain});
      ++result.stats.terrain;
    }
    if (flags[i] & 4) {
      result.queue.push_back(Advisory{id, AdvisoryType::kBoundary});
      ++result.stats.boundary;
    }
  }
  work.inner_ops = n * 4;
  work.locked_ops =
      work.inner_ops + result.queue.size() + locks_.acquisitions();
  work.contended = locks_.contended();
  locks_.reset_counters();
  last_work_ = work;
  result.modeled_ms = model_.model_ms(work, jitter_rng_);
  return result;
}

SporadicResult MimdBackend::do_run_sporadic(std::span<const Query> queries,
                                         const SporadicParams& params) {
  (void)params;
  const std::size_t n = db_.size();
  const std::size_t q = queries.size();
  SporadicResult result;
  result.stats.queries = q;
  result.answers.assign(q, {});

  mimd::WorkCounters work;
  work.items = n;
  if (q > 0 && n > 0) {
    // Each worker scans a chunk of the shared table against every query;
    // per-query partial answers merge under the query's stripe lock.
    std::vector<std::uint8_t> flags(q * n, 0);
    pool_.parallel_for(0, n, kChunk, [&](std::size_t i) {
      for (std::size_t qi = 0; qi < q; ++qi) {
        if (extended::query_matches(db_, i, queries[qi])) {
          flags[qi * n + i] = 1;
        }
      }
    });
    ++work.parallel_regions;
    for (std::size_t qi = 0; qi < q; ++qi) {
      for (std::size_t i = 0; i < n; ++i) {
        if (flags[qi * n + i]) {
          locks_.with_lock(qi, [&] {
            result.answers[qi].push_back(static_cast<std::int32_t>(i));
          });
          ++result.stats.hits;
        }
      }
    }
  }
  work.inner_ops = static_cast<std::uint64_t>(n) * q;
  work.locked_ops = work.inner_ops + locks_.acquisitions();
  work.contended = locks_.contended();
  locks_.reset_counters();
  last_work_ = work;
  result.modeled_ms = model_.model_ms(work, jitter_rng_);
  return result;
}

MultiRadarResult MimdBackend::do_run_multi_task1(
    airfield::MultiRadarFrame& frame, const Task1Params& params) {
  const std::size_t n = db_.size();
  const std::size_t returns = frame.size();
  MultiRadarResult result;
  result.stats.returns = returns;

  mimd::WorkCounters work;
  work.items = n;
  std::atomic<std::uint64_t> inner_ops{0};
  std::atomic<std::uint64_t> box_tests{0};

  db_.reset_correlation_state();
  frame.base.reset_matches();
  std::fill(amatch_.begin(), amatch_.end(), kNone);
  std::vector<std::int32_t> nhits(returns, 0), hit_id(returns, kNone);

  pool_.parallel_for(0, n, kChunk, [&](std::size_t i) {
    ex_[i] = db_.x[i] + db_.dx[i];
    ey_[i] = db_.y[i] + db_.dy[i];
  });
  ++work.parallel_regions;

  auto& rmw = frame.base.rmatch_with;
  const auto& rx = frame.base.rx;
  const auto& ry = frame.base.ry;

  const int total_passes = 1 + params.retries;
  for (int pass = 0; pass < total_passes; ++pass) {
    const bool any_active = std::any_of(
        rmw.begin(), rmw.end(), [](std::int32_t m) { return m == kNone; });
    if (!any_active) break;
    ++result.stats.passes;
    const double half = params.box_half_nm * static_cast<double>(1 << pass);

    // Phase 1 (return-major).
    pool_.parallel_for(0, returns, kChunk, [&](std::size_t r) {
      if (rmw[r] != kNone) return;
      nhits[r] = 0;
      hit_id[r] = kNone;
      std::uint64_t local_ops = 0;
      std::uint64_t local_tests = 0;
      for (std::size_t a = 0; a < n; ++a) {
        ++local_ops;
        if (db_.rmatch[a] !=
            static_cast<std::int8_t>(MatchState::kUnmatched)) {
          continue;
        }
        ++local_tests;
        if (std::fabs(ex_[a] - rx[r]) < half &&
            std::fabs(ey_[a] - ry[r]) < half) {
          ++nhits[r];
          hit_id[r] = static_cast<std::int32_t>(a);
        }
      }
      if (nhits[r] >= 2) rmw[r] = kDiscarded;
      inner_ops.fetch_add(local_ops, std::memory_order_relaxed);
      box_tests.fetch_add(local_tests, std::memory_order_relaxed);
    });
    ++work.parallel_regions;

    // Phase 2 (aircraft-major): closest candidate.
    pool_.parallel_for(0, n, kChunk, [&](std::size_t a) {
      if (db_.rmatch[a] !=
          static_cast<std::int8_t>(MatchState::kUnmatched)) {
        return;
      }
      std::int32_t best = kNone;
      double best_d2 = 0.0;
      std::uint64_t local_ops = 0;
      for (std::size_t r = 0; r < returns; ++r) {
        ++local_ops;
        if (rmw[r] != kNone || nhits[r] != 1 ||
            hit_id[r] != static_cast<std::int32_t>(a)) {
          continue;
        }
        const double dx = rx[r] - ex_[a];
        const double dy = ry[r] - ey_[a];
        const double d2 = dx * dx + dy * dy;
        if (best == kNone || d2 < best_d2) {
          best = static_cast<std::int32_t>(r);
          best_d2 = d2;
        }
      }
      if (best != kNone) {
        locks_.with_lock(a, [&] {
          db_.rmatch[a] = static_cast<std::int8_t>(MatchState::kMatched);
          amatch_[a] = best;
        });
      }
      inner_ops.fetch_add(local_ops, std::memory_order_relaxed);
    });
    ++work.parallel_regions;

    // Phase 3 (return-major): disposition.
    pool_.parallel_for(0, returns, kChunk, [&](std::size_t r) {
      if (rmw[r] != kNone || nhits[r] != 1) return;
      const std::int32_t a = hit_id[r];
      const auto ai = static_cast<std::size_t>(a);
      if (amatch_[ai] == static_cast<std::int32_t>(r)) {
        rmw[r] = a;
      } else if (db_.rmatch[ai] ==
                 static_cast<std::int8_t>(MatchState::kMatched)) {
        rmw[r] = airfield::kRedundant;
      }
    });
    ++work.parallel_regions;
  }

  // Commit.
  pool_.parallel_for(0, n, kChunk, [&](std::size_t a) {
    if (db_.rmatch[a] == static_cast<std::int8_t>(MatchState::kMatched) &&
        amatch_[a] >= 0) {
      const auto r = static_cast<std::size_t>(amatch_[a]);
      db_.x[a] = rx[r];
      db_.y[a] = ry[r];
    } else {
      db_.x[a] = ex_[a];
      db_.y[a] = ey_[a];
    }
  });
  ++work.parallel_regions;

  result.stats.box_tests = box_tests.load();
  for (const std::int32_t m : rmw) {
    if (m == kNone) ++result.stats.unmatched_returns;
    if (m == kDiscarded) ++result.stats.discarded_returns;
    if (m == airfield::kRedundant) ++result.stats.redundant_returns;
  }
  for (std::size_t a = 0; a < n; ++a) {
    if (db_.rmatch[a] == static_cast<std::int8_t>(MatchState::kMatched) &&
        amatch_[a] >= 0) {
      ++result.stats.matched_aircraft;
    }
  }
  work.inner_ops = inner_ops.load();
  work.locked_ops = work.inner_ops + locks_.acquisitions();
  work.contended = locks_.contended();
  locks_.reset_counters();
  last_work_ = work;
  result.modeled_ms = model_.model_ms(work, jitter_rng_);
  return result;
}

}  // namespace atm::tasks
