#include "src/atm/clearspeed_backend.hpp"

// Anchors the archive member and pre-instantiates the shared templates.

namespace atm::tasks {
namespace {

[[maybe_unused]] void instantiate(ClearSpeedAssocMachine& m,
                                  airfield::FlightDb& db,
                                  airfield::RadarFrame& frame) {
  (void)assoc::assoc_task1(m, db, frame, Task1Params{});
  (void)assoc::assoc_task23(m, db, Task23Params{});
}

}  // namespace
}  // namespace atm::tasks
