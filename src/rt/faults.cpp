#include "src/rt/faults.hpp"

#include <cmath>

#include "src/core/check.hpp"

namespace atm::rt {

namespace {

/// Salt keeping the fault stream independent of the airfield seed and
/// the radar noise stream (which uses its own salt in the pipeline).
constexpr std::uint64_t kFaultStreamSalt = 0xFA017ED5EEDFA017ULL;

bool valid_probability(double p) { return p >= 0.0 && p <= 1.0; }

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config, std::uint64_t seed)
    : config_(config), rng_(seed ^ kFaultStreamSalt) {
  ATM_CHECK_MSG(valid_probability(config_.dropout_burst_probability) &&
                    valid_probability(config_.dropout_fraction) &&
                    valid_probability(config_.ghost_probability) &&
                    valid_probability(config_.noise_burst_probability) &&
                    valid_probability(config_.stolen_time_probability),
                "fault probabilities must be in [0, 1]");
  ATM_CHECK_MSG(config_.stolen_time_ms >= 0.0 &&
                    std::isfinite(config_.stolen_time_ms) &&
                    config_.noise_burst_nm >= 0.0,
                "fault magnitudes must be finite and non-negative: "
                "stolen_time_ms="
                    << config_.stolen_time_ms
                    << " noise_burst_nm=" << config_.noise_burst_nm);
}

FrameFaultSummary FaultInjector::apply(airfield::RadarFrame& frame) {
  FrameFaultSummary summary;
  if (!config_.enabled || frame.size() == 0) return summary;
  const std::size_t n = frame.size();

  // Noise burst first: it models a period of degraded sensing, so ghosts
  // copied afterwards inherit the burst error like any real echo.
  if (config_.noise_burst_probability > 0.0 &&
      rng_.uniform() < config_.noise_burst_probability) {
    summary.noise_burst = true;
    ++noise_bursts_;
    for (std::size_t i = 0; i < n; ++i) {
      if (frame.rx[i] >= airfield::kDropoutCoordinate) continue;
      frame.rx[i] +=
          rng_.uniform(-config_.noise_burst_nm, config_.noise_burst_nm);
      frame.ry[i] +=
          rng_.uniform(-config_.noise_burst_nm, config_.noise_burst_nm);
    }
  }

  // Ghosts: slot i is overwritten by a duplicate of slot j's echo (the
  // victim's own return is lost — a ghost displaces, it does not add, so
  // every backend still sees the paper's fixed-size frame). Ground truth
  // follows the echo's source; the ATM tasks never read it.
  if (config_.ghost_probability > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (rng_.uniform() >= config_.ghost_probability) continue;
      const std::size_t j = static_cast<std::size_t>(
          rng_.uniform_u64(0, static_cast<std::uint64_t>(n - 1)));
      if (j == i) continue;
      frame.rx[i] = frame.rx[j];
      frame.ry[i] = frame.ry[j];
      frame.truth[i] = frame.truth[j];
      ++summary.ghosts;
    }
    ghosts_ += summary.ghosts;
  }

  // Dropout burst last: a whole sweep degrades at once, and anything the
  // burst hits — original return or ghost — vanishes off-field.
  if (config_.dropout_burst_probability > 0.0 &&
      rng_.uniform() < config_.dropout_burst_probability) {
    for (std::size_t i = 0; i < n; ++i) {
      if (rng_.uniform() >= config_.dropout_fraction) continue;
      if (frame.rx[i] >= airfield::kDropoutCoordinate) continue;
      frame.rx[i] = airfield::kDropoutCoordinate;
      frame.ry[i] = airfield::kDropoutCoordinate;
      ++summary.dropouts;
    }
    dropouts_ += summary.dropouts;
  }
  return summary;
}

double FaultInjector::steal_ms() {
  if (!config_.enabled || config_.stolen_time_probability <= 0.0 ||
      config_.stolen_time_ms <= 0.0) {
    return 0.0;
  }
  if (rng_.uniform() >= config_.stolen_time_probability) return 0.0;
  ++steal_events_;
  stolen_ms_ += config_.stolen_time_ms;
  return config_.stolen_time_ms;
}

}  // namespace atm::rt
