#include "src/rt/schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace atm::rt {

MajorCycleSchedule::MajorCycleSchedule(int periods_per_cycle,
                                       double period_ms)
    : periods_(static_cast<std::size_t>(periods_per_cycle)),
      period_ms_(period_ms) {
  if (periods_per_cycle <= 0 || period_ms <= 0.0) {
    throw std::invalid_argument("MajorCycleSchedule: invalid dimensions");
  }
}

void MajorCycleSchedule::add_every_period(const std::string& task,
                                          int order) {
  for (int p = 0; p < periods_per_cycle(); ++p) {
    add_in_period(task, p, order);
  }
}

void MajorCycleSchedule::add_in_period(const std::string& task, int period,
                                       int order) {
  if (period < 0 || period >= periods_per_cycle()) {
    throw std::out_of_range("MajorCycleSchedule: period out of range");
  }
  auto& slots = periods_[static_cast<std::size_t>(period)];
  slots.push_back(Slot{task, order});
  std::stable_sort(slots.begin(), slots.end(),
                   [](const Slot& a, const Slot& b) {
                     return a.order < b.order;
                   });
}

const std::vector<Slot>& MajorCycleSchedule::slots(int period) const {
  if (period < 0 || period >= periods_per_cycle()) {
    throw std::out_of_range("MajorCycleSchedule: period out of range");
  }
  return periods_[static_cast<std::size_t>(period)];
}

MajorCycleSchedule MajorCycleSchedule::paper_schedule() {
  MajorCycleSchedule schedule(core::kPeriodsPerMajorCycle,
                              core::kPeriodSeconds * 1000.0);
  schedule.add_every_period("task1", /*order=*/0);
  schedule.add_in_period("task23", schedule.periods_per_cycle() - 1,
                         /*order=*/1);
  return schedule;
}

}  // namespace atm::rt
