// Deadline accounting for the periodic ATM tasks.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/core/stats.hpp"
#include "src/obs/trace.hpp"

namespace atm::rt {

/// Outcome of one scheduled task instance.
enum class Outcome {
  kMet,      ///< Completed before the period deadline.
  kMissed,   ///< Completion passed the period deadline.
  kSkipped,  ///< Never started: the period had no budget left (paper:
             ///< "Remaining tasks ... must be skipped").
};

/// Per-task aggregate over a run.
struct TaskRecord {
  std::uint64_t met = 0;
  std::uint64_t missed = 0;
  std::uint64_t skipped = 0;
  core::StreamingStats duration_ms;  ///< Durations of *started* instances.

  [[nodiscard]] std::uint64_t scheduled() const {
    return met + missed + skipped;
  }
};

/// Collects deadline outcomes for named tasks across a run.
class DeadlineMonitor {
 public:
  /// Record a started task instance. `start_ms`/`duration_ms` are virtual
  /// times; `deadline_ms` is the absolute end of the period. Returns the
  /// outcome it classified.
  Outcome record(const std::string& task, double start_ms,
                 double duration_ms, double deadline_ms);

  /// Record a task instance that could not start in its period.
  void record_skip(const std::string& task);

  [[nodiscard]] const TaskRecord& task(const std::string& name) const;
  [[nodiscard]] bool has_task(const std::string& name) const;

  /// Total misses + skips across all tasks (the paper's headline count).
  [[nodiscard]] std::uint64_t total_missed() const;
  [[nodiscard]] std::uint64_t total_skipped() const;
  [[nodiscard]] std::uint64_t total_met() const;

  /// Render a per-task summary table.
  [[nodiscard]] std::string summary() const;

  void reset() { tasks_.clear(); }

  // --- Observability -------------------------------------------------------

  /// Attach (or detach, with nullptr) a sink that receives one kDeadline
  /// event per record()/record_skip() call, carrying the outcome and the
  /// slack to the period deadline. The sink is borrowed, never owned.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }

  /// Stamp subsequent deadline events with the executive position and the
  /// platform being driven (the pipeline updates this each period).
  void set_trace_context(std::string backend, int cycle, int period) {
    trace_backend_ = std::move(backend);
    trace_cycle_ = cycle;
    trace_period_ = period;
  }

 private:
  void emit(const std::string& task, std::string_view outcome,
            double slack_ms, double duration_ms);

  std::map<std::string, TaskRecord> tasks_;
  obs::TraceSink* trace_ = nullptr;
  std::string trace_backend_;
  int trace_cycle_ = -1;
  int trace_period_ = -1;
};

}  // namespace atm::rt
