// Deadline accounting for the periodic ATM tasks.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/core/stats.hpp"

namespace atm::rt {

/// Outcome of one scheduled task instance.
enum class Outcome {
  kMet,      ///< Completed before the period deadline.
  kMissed,   ///< Completion passed the period deadline.
  kSkipped,  ///< Never started: the period had no budget left (paper:
             ///< "Remaining tasks ... must be skipped").
};

/// Per-task aggregate over a run.
struct TaskRecord {
  std::uint64_t met = 0;
  std::uint64_t missed = 0;
  std::uint64_t skipped = 0;
  core::StreamingStats duration_ms;  ///< Durations of *started* instances.

  [[nodiscard]] std::uint64_t scheduled() const {
    return met + missed + skipped;
  }
};

/// Collects deadline outcomes for named tasks across a run.
class DeadlineMonitor {
 public:
  /// Record a started task instance. `start_ms`/`duration_ms` are virtual
  /// times; `deadline_ms` is the absolute end of the period. Returns the
  /// outcome it classified.
  Outcome record(const std::string& task, double start_ms,
                 double duration_ms, double deadline_ms);

  /// Record a task instance that could not start in its period.
  void record_skip(const std::string& task);

  [[nodiscard]] const TaskRecord& task(const std::string& name) const;
  [[nodiscard]] bool has_task(const std::string& name) const;

  /// Total misses + skips across all tasks (the paper's headline count).
  [[nodiscard]] std::uint64_t total_missed() const;
  [[nodiscard]] std::uint64_t total_skipped() const;
  [[nodiscard]] std::uint64_t total_met() const;

  /// Render a per-task summary table.
  [[nodiscard]] std::string summary() const;

  void reset() { tasks_.clear(); }

 private:
  std::map<std::string, TaskRecord> tasks_;
};

}  // namespace atm::rt
