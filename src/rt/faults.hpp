// Deterministic, seeded fault injection for the real-time executive.
//
// The equivalence suites prove every backend computes the same flight
// state from the same inputs; this layer makes the *inputs* hostile in a
// reproducible way, so overload and degraded sensing are scenarios, not
// ad-hoc test hacks. Two fault families:
//
//   * sensor faults, applied to each period's RadarFrame in place —
//     dropout bursts (returns replaced by the off-field sentinel, the
//     paper's "a radar report may not be obtained"), ghost/duplicate
//     echoes (a return overwritten by a copy of another aircraft's
//     return), and noise bursts (extra positional error on every
//     return); and
//
//   * stolen time — preemption by other host load. In kWallclock mode
//     the executive busy-waits the stolen slice out before the period's
//     tasks; in kVirtual mode it advances the virtual clock, which makes
//     overload deterministic and unit-testable.
//
// All randomness comes from one core::Rng owned by the injector and
// seeded from (run seed, fixed salt), so the same (seed, config, call
// sequence) produces bit-identical faulted frames on every backend and
// every run — the property tests/faults_test.cpp asserts.
#pragma once

#include <cstdint>

#include "src/airfield/radar.hpp"
#include "src/core/rng.hpp"

namespace atm::rt {

/// Fault environment of a run. Disabled by default; a disabled injector
/// never touches a frame, never draws from its generator, and steals no
/// time, so runs without faults stay bit-identical to runs made before
/// this layer existed.
struct FaultConfig {
  bool enabled = false;
  /// Per-period probability of a radar dropout burst; during a burst
  /// each return independently drops with `dropout_fraction`.
  double dropout_burst_probability = 0.0;
  double dropout_fraction = 0.25;
  /// Per-return probability of being overwritten by a ghost: a duplicate
  /// echo of another (uniformly drawn) return in the same frame.
  double ghost_probability = 0.0;
  /// Per-period probability of a noise burst adding uniform
  /// [-noise_burst_nm, +noise_burst_nm] to both coordinates of every
  /// live return.
  double noise_burst_probability = 0.0;
  double noise_burst_nm = 1.0;
  /// Per-period probability that other host load steals
  /// `stolen_time_ms` from the period before its first task runs.
  double stolen_time_probability = 0.0;
  double stolen_time_ms = 0.0;
};

/// What one FaultInjector::apply() call did to a frame.
struct FrameFaultSummary {
  std::uint64_t dropouts = 0;     ///< Returns replaced by the sentinel.
  std::uint64_t ghosts = 0;       ///< Returns overwritten by duplicates.
  bool noise_burst = false;       ///< Extra noise applied to the frame.
};

class FaultInjector {
 public:
  /// `seed` is the run seed; the injector salts it so its stream is
  /// independent of airfield generation and radar noise.
  FaultInjector(const FaultConfig& config, std::uint64_t seed);

  [[nodiscard]] bool enabled() const { return config_.enabled; }

  /// Mutate one radar frame in place: noise burst, then ghosts, then the
  /// dropout burst (a ghost can itself be dropped — echoes vanish too).
  /// Frame size never changes. No-op (and draw-free) when disabled.
  FrameFaultSummary apply(airfield::RadarFrame& frame);

  /// Stolen host time for the upcoming period, in ms (0 when none).
  /// No-op (and draw-free) when disabled.
  [[nodiscard]] double steal_ms();

  /// Aggregates over the run, for end-of-run counters.
  [[nodiscard]] std::uint64_t total_dropouts() const { return dropouts_; }
  [[nodiscard]] std::uint64_t total_ghosts() const { return ghosts_; }
  [[nodiscard]] std::uint64_t total_noise_bursts() const {
    return noise_bursts_;
  }
  [[nodiscard]] std::uint64_t total_steal_events() const {
    return steal_events_;
  }
  [[nodiscard]] double total_stolen_ms() const { return stolen_ms_; }

 private:
  FaultConfig config_;
  core::Rng rng_;
  std::uint64_t dropouts_ = 0;
  std::uint64_t ghosts_ = 0;
  std::uint64_t noise_bursts_ = 0;
  std::uint64_t steal_events_ = 0;
  double stolen_ms_ = 0.0;
};

}  // namespace atm::rt
