#include "src/rt/governor.hpp"

#include <cmath>
#include <utility>

#include "src/core/check.hpp"

namespace atm::rt {

namespace {

const std::string kBaselineName = "baseline";

}  // namespace

std::string_view to_string(GovernorAction action) {
  switch (action) {
    case GovernorAction::kHold:
      return "hold";
    case GovernorAction::kDegrade:
      return "degrade";
    case GovernorAction::kRecover:
      return "recover";
  }
  return "?";
}

Governor::Governor(const GovernorConfig& config,
                   std::vector<std::string> ladder)
    : config_(config), ladder_(std::move(ladder)) {
  // Controller contract: a recover threshold at or above the degrade
  // threshold removes the deadband and lets the level oscillate every
  // period — the exact failure mode the hysteresis exists to prevent.
  ATM_CHECK_MSG(!config_.enabled ||
                    config_.recover_utilization < config_.degrade_utilization,
                "governor hysteresis band is empty: recover_utilization="
                    << config_.recover_utilization << " >= degrade_utilization="
                    << config_.degrade_utilization);
  ATM_CHECK_MSG(config_.degrade_hold_periods >= 1 &&
                    config_.recover_hold_periods >= 1,
                "governor hold periods must be >= 1 (degrade="
                    << config_.degrade_hold_periods
                    << " recover=" << config_.recover_hold_periods << ")");
}

const std::string& Governor::step_name(int level) const {
  if (level <= 0 || level > max_level()) return kBaselineName;
  return ladder_[static_cast<std::size_t>(level - 1)];
}

GovernorAction Governor::observe(double used_ms, double budget_ms,
                                 bool deadline_trouble) {
  if (!config_.enabled || ladder_.empty()) return GovernorAction::kHold;
  ATM_CHECK_MSG(budget_ms > 0.0 && std::isfinite(used_ms) && used_ms >= 0.0,
                "bad governor observation: used_ms=" << used_ms
                                                     << " budget_ms="
                                                     << budget_ms);
  const double utilization = used_ms / budget_ms;
  const bool hot =
      deadline_trouble || utilization > config_.degrade_utilization;
  const bool calm = !hot && utilization < config_.recover_utilization;

  if (hot) {
    calm_streak_ = 0;
    if (++hot_streak_ >= config_.degrade_hold_periods &&
        level_ < max_level()) {
      hot_streak_ = 0;
      const int from = level_++;
      ++degrades_;
      emit(GovernorAction::kDegrade, from, utilization);
      return GovernorAction::kDegrade;
    }
    return GovernorAction::kHold;
  }
  hot_streak_ = 0;
  if (!calm) {
    // Deadband: neither hot enough to degrade nor calm enough to start
    // (or continue) recovering. The level holds and any recovery streak
    // restarts, which is what keeps a near-budget workload stable.
    calm_streak_ = 0;
    return GovernorAction::kHold;
  }
  if (++calm_streak_ >= config_.recover_hold_periods && level_ > 0) {
    calm_streak_ = 0;
    const int from = level_--;
    ++recovers_;
    emit(GovernorAction::kRecover, from, utilization);
    return GovernorAction::kRecover;
  }
  return GovernorAction::kHold;
}

void Governor::emit(GovernorAction action, int from_level,
                    double utilization_ratio) {
  if (trace_ == nullptr) return;
  obs::TraceEvent ev;
  ev.kind = obs::EventKind::kGovernor;
  // The event names the ladder step being entered (degrade) or left
  // (recover) — either way, the deeper of the two levels.
  ev.name = step_name(std::max(level_, from_level));
  ev.backend = trace_backend_;
  ev.cycle = trace_cycle_;
  ev.period = trace_period_;
  ev.outcome = to_string(action);
  ev.governor_level = level_;
  ev.governor_from_level = from_level;
  ev.utilization = utilization_ratio;
  trace_->record(ev);
}

}  // namespace atm::rt
