// The paper's periodic schedule: an 8-second major cycle of 16 half-second
// periods, Task 1 every period, Tasks 2+3 once per major cycle.
#pragma once

#include <string>
#include <vector>

#include "src/core/units.hpp"

namespace atm::rt {

/// One scheduled task slot within a period.
struct Slot {
  std::string task;
  /// Relative priority within the period (lower runs first). Task 1 runs
  /// before Tasks 2+3 in the shared 16th period.
  int order = 0;
};

/// A cyclic schedule: `periods[p]` lists the slots of period p of the
/// major cycle, in execution order.
class MajorCycleSchedule {
 public:
  /// Construct an empty schedule of `periods_per_cycle` periods, each
  /// `period_ms` long.
  MajorCycleSchedule(int periods_per_cycle, double period_ms);

  /// Add a task to every period (the paper's Task 1).
  void add_every_period(const std::string& task, int order = 0);

  /// Add a task to one specific period of the cycle (Tasks 2+3 run in the
  /// final period, index periods_per_cycle - 1).
  void add_in_period(const std::string& task, int period, int order = 0);

  [[nodiscard]] int periods_per_cycle() const {
    return static_cast<int>(periods_.size());
  }
  [[nodiscard]] double period_ms() const { return period_ms_; }
  [[nodiscard]] double major_cycle_ms() const {
    return period_ms_ * periods_per_cycle();
  }

  /// Slots of period p, ordered by `order`.
  [[nodiscard]] const std::vector<Slot>& slots(int period) const;

  /// The paper's schedule: 16 x 500 ms periods, "task1" every period,
  /// "task23" in the last period after Task 1.
  [[nodiscard]] static MajorCycleSchedule paper_schedule();

 private:
  std::vector<std::vector<Slot>> periods_;
  double period_ms_;
};

}  // namespace atm::rt
