// Clocks for the real-time executive.
//
// The paper's program busy-waits out the remainder of each half-second
// period on a real GPU ("Whatever time is left, we wait that long before
// executing the next period"). Our platforms are cost models, so the
// executive advances a *virtual* clock by each task's modeled duration and
// by the wait to the period boundary. This keeps deadline semantics exact
// (a task misses iff its modeled completion passes the period end) and
// makes the whole real-time behaviour deterministic and unit-testable.
// A wall-clock stopwatch is provided for informational host measurements.
#pragma once

#include <chrono>

namespace atm::rt {

/// Simulated time in milliseconds since executive start.
class VirtualClock {
 public:
  [[nodiscard]] double now_ms() const { return now_ms_; }

  /// Advance by a task's modeled duration.
  void advance_ms(double ms) { now_ms_ += ms; }

  /// Advance to an absolute time, if it is in the future (waiting out the
  /// rest of a period). Returns the time waited (>= 0).
  double advance_to_ms(double deadline_ms) {
    const double wait = deadline_ms - now_ms_;
    if (wait > 0.0) now_ms_ = deadline_ms;
    return wait > 0.0 ? wait : 0.0;
  }

  void reset() { now_ms_ = 0.0; }

 private:
  double now_ms_ = 0.0;
};

/// Host wall-clock stopwatch (informational; the simulation itself runs on
/// VirtualClock).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double elapsed_ms() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace atm::rt
