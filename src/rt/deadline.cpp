#include "src/rt/deadline.hpp"

#include <sstream>
#include <stdexcept>

#include "src/core/table.hpp"

namespace atm::rt {

Outcome DeadlineMonitor::record(const std::string& task, double start_ms,
                                double duration_ms, double deadline_ms) {
  TaskRecord& rec = tasks_[task];
  rec.duration_ms.add(duration_ms);
  const bool met = start_ms + duration_ms <= deadline_ms;
  if (met) {
    ++rec.met;
    return Outcome::kMet;
  }
  ++rec.missed;
  return Outcome::kMissed;
}

void DeadlineMonitor::record_skip(const std::string& task) {
  ++tasks_[task].skipped;
}

const TaskRecord& DeadlineMonitor::task(const std::string& name) const {
  const auto it = tasks_.find(name);
  if (it == tasks_.end()) {
    throw std::out_of_range("DeadlineMonitor: unknown task " + name);
  }
  return it->second;
}

bool DeadlineMonitor::has_task(const std::string& name) const {
  return tasks_.contains(name);
}

std::uint64_t DeadlineMonitor::total_missed() const {
  std::uint64_t sum = 0;
  for (const auto& [_, rec] : tasks_) sum += rec.missed;
  return sum;
}

std::uint64_t DeadlineMonitor::total_skipped() const {
  std::uint64_t sum = 0;
  for (const auto& [_, rec] : tasks_) sum += rec.skipped;
  return sum;
}

std::uint64_t DeadlineMonitor::total_met() const {
  std::uint64_t sum = 0;
  for (const auto& [_, rec] : tasks_) sum += rec.met;
  return sum;
}

std::string DeadlineMonitor::summary() const {
  core::TextTable table({"task", "met", "missed", "skipped", "mean ms",
                         "max ms"});
  for (const auto& [name, rec] : tasks_) {
    table.begin_row();
    table.add_cell(name);
    table.add_cell(static_cast<long long>(rec.met));
    table.add_cell(static_cast<long long>(rec.missed));
    table.add_cell(static_cast<long long>(rec.skipped));
    table.add_cell(rec.duration_ms.mean(), 3);
    table.add_cell(rec.duration_ms.max(), 3);
  }
  return table.to_string();
}

}  // namespace atm::rt
