#include "src/rt/deadline.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "src/core/check.hpp"
#include "src/core/table.hpp"

namespace atm::rt {

void DeadlineMonitor::emit(const std::string& task, std::string_view outcome,
                           double slack_ms, double duration_ms) {
  obs::TraceEvent ev;
  ev.kind = obs::EventKind::kDeadline;
  ev.name = task;
  ev.backend = trace_backend_;
  ev.cycle = trace_cycle_;
  ev.period = trace_period_;
  ev.outcome = outcome;
  ev.slack_ms = slack_ms;
  if (duration_ms >= 0.0) ev.modeled_ms = duration_ms;
  trace_->record(ev);
}

Outcome DeadlineMonitor::record(const std::string& task, double start_ms,
                                double duration_ms, double deadline_ms) {
  // Accounting contract: a negative or non-finite duration means a cost
  // model produced garbage, and every miss/met statistic downstream of it
  // (the paper's headline numbers) would inherit the corruption.
  ATM_CHECK_MSG(duration_ms >= 0.0 && std::isfinite(duration_ms) &&
                    std::isfinite(start_ms) && std::isfinite(deadline_ms),
                "bad deadline sample: task=" << task << " start_ms="
                                             << start_ms << " duration_ms="
                                             << duration_ms << " deadline_ms="
                                             << deadline_ms);
  TaskRecord& rec = tasks_[task];
  rec.duration_ms.add(duration_ms);
  const double slack_ms = deadline_ms - (start_ms + duration_ms);
  const bool met = slack_ms >= 0.0;
  if (trace_ != nullptr) {
    emit(task, met ? "met" : "missed", slack_ms, duration_ms);
  }
  if (met) {
    ++rec.met;
    return Outcome::kMet;
  }
  ++rec.missed;
  return Outcome::kMissed;
}

void DeadlineMonitor::record_skip(const std::string& task) {
  ++tasks_[task].skipped;
  if (trace_ != nullptr) emit(task, "skipped", 0.0, -1.0);
}

const TaskRecord& DeadlineMonitor::task(const std::string& name) const {
  const auto it = tasks_.find(name);
  if (it == tasks_.end()) {
    throw std::out_of_range("DeadlineMonitor: unknown task " + name);
  }
  return it->second;
}

bool DeadlineMonitor::has_task(const std::string& name) const {
  return tasks_.contains(name);
}

std::uint64_t DeadlineMonitor::total_missed() const {
  std::uint64_t sum = 0;
  for (const auto& [_, rec] : tasks_) sum += rec.missed;
  return sum;
}

std::uint64_t DeadlineMonitor::total_skipped() const {
  std::uint64_t sum = 0;
  for (const auto& [_, rec] : tasks_) sum += rec.skipped;
  return sum;
}

std::uint64_t DeadlineMonitor::total_met() const {
  std::uint64_t sum = 0;
  for (const auto& [_, rec] : tasks_) sum += rec.met;
  return sum;
}

std::string DeadlineMonitor::summary() const {
  core::TextTable table({"task", "met", "missed", "skipped", "mean ms",
                         "max ms"});
  for (const auto& [name, rec] : tasks_) {
    table.begin_row();
    table.add_cell(name);
    table.add_cell(static_cast<long long>(rec.met));
    table.add_cell(static_cast<long long>(rec.missed));
    table.add_cell(static_cast<long long>(rec.skipped));
    table.add_cell(rec.duration_ms.mean(), 3);
    table.add_cell(rec.duration_ms.max(), 3);
  }
  return table.to_string();
}

}  // namespace atm::rt
