// Deadline-aware overload governor: a feedback controller that watches
// per-period budget utilization and walks a degradation ladder with
// hysteresis.
//
// The paper only *counts* deadline misses (rt::DeadlineMonitor): the CUDA
// and SIMD platforms never miss, the 16-core Xeon misses many as traffic
// grows, and the executive silently skips whatever no longer fits the
// period. A production ATM loop must instead shed and degrade work under
// overload — drop to a cheaper candidate enumeration, coarsen the
// resolution sweep, shed sporadic queries — and recover step by step when
// headroom returns. The Governor is the generic controller half of that:
// it owns the level state machine, the thresholds, and the hysteresis,
// while the *meaning* of each ladder step (what changes in the task
// parameters) belongs to the layer that owns those parameters (see
// src/atm/degrade.hpp and docs/ROBUSTNESS.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/trace.hpp"

namespace atm::rt {

/// Tuning for the overload governor. Defaults are conservative: degrade
/// quickly (one hot period) and recover slowly (four calm periods), with
/// a deadband between the two thresholds so the level cannot oscillate on
/// a workload that hovers near the budget.
struct GovernorConfig {
  /// Master switch. Disabled governors never change level and emit no
  /// trace events, so a disabled run is bit-identical to a run without a
  /// governor at all.
  bool enabled = false;
  /// Degrade one step when period utilization (time consumed since the
  /// period's scheduled start, over the period budget) exceeds this — or
  /// immediately when any deadline in the period was missed or skipped.
  double degrade_utilization = 0.90;
  /// Recover one step only while utilization stays strictly below this.
  /// Must be below degrade_utilization: the gap is the hysteresis band.
  double recover_utilization = 0.60;
  /// Consecutive hot periods required before degrading one step.
  int degrade_hold_periods = 1;
  /// Consecutive calm periods required before recovering one step.
  int recover_hold_periods = 4;
};

/// What the governor decided after one period observation.
enum class GovernorAction {
  kHold,     ///< Level unchanged (deadband, streak not yet long enough,
             ///< already at a ladder end, or governor disabled).
  kDegrade,  ///< Stepped one level down the ladder (level + 1).
  kRecover,  ///< Stepped one level back up (level - 1).
};

[[nodiscard]] std::string_view to_string(GovernorAction action);

/// The level state machine. Level 0 is the undegraded baseline; level k
/// (1-based) means ladder steps 1..k are in force. The governor never
/// moves more than one step per observation, never leaves [0, ladder
/// size], and emits one obs::EventKind::kGovernor trace event per
/// transition when a sink is attached.
class Governor {
 public:
  /// `ladder` names the degradation steps in escalation order; its size
  /// bounds the level. An empty ladder pins the governor at level 0.
  Governor(const GovernorConfig& config, std::vector<std::string> ladder);

  /// Feed one period's observation: `used_ms` is the time consumed
  /// between the period's *scheduled* start and task completion (so an
  /// overrun inherited from earlier periods counts as load),
  /// `budget_ms` the period length, and `deadline_trouble` whether any
  /// task in the period was missed or skipped. Returns the action taken;
  /// level() is the level the *next* period should run at.
  GovernorAction observe(double used_ms, double budget_ms,
                         bool deadline_trouble);

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] int level() const { return level_; }
  [[nodiscard]] int max_level() const {
    return static_cast<int>(ladder_.size());
  }
  /// Name of ladder step `level` (1-based); "baseline" for level 0.
  [[nodiscard]] const std::string& step_name(int level) const;

  /// Transition counts over the run.
  [[nodiscard]] std::uint64_t degrade_count() const { return degrades_; }
  [[nodiscard]] std::uint64_t recover_count() const { return recovers_; }

  // --- Observability -------------------------------------------------------

  /// Attach (or detach, with nullptr) a sink receiving one kGovernor
  /// event per level transition. The sink is borrowed, never owned.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }

  /// Stamp subsequent transition events with the executive position.
  void set_trace_context(std::string backend, int cycle, int period) {
    trace_backend_ = std::move(backend);
    trace_cycle_ = cycle;
    trace_period_ = period;
  }

 private:
  void emit(GovernorAction action, int from_level, double utilization_ratio);

  GovernorConfig config_;
  std::vector<std::string> ladder_;
  int level_ = 0;
  int hot_streak_ = 0;
  int calm_streak_ = 0;
  std::uint64_t degrades_ = 0;
  std::uint64_t recovers_ = 0;
  obs::TraceSink* trace_ = nullptr;
  std::string trace_backend_;
  int trace_cycle_ = -1;
  int trace_period_ = -1;
};

}  // namespace atm::rt
