// Multi-tower radar environment.
//
// The paper simplifies radar to "at most one radar [return] received for
// each aircraft each period", while noting that "most aircraft in the US
// are within the range of 2 to 6 radars" and that "the processing of all
// radar ... [is] an ideal tool to use in testing the ability of different
// architectures to handle real-time computations". This module implements
// the unsimplified environment: a layout of radar towers with finite
// range, each producing an independently noised return for every aircraft
// it can see, so a period's frame carries ~2-6 returns per aircraft.
//
// The multi-return correlation semantics live in
// src/atm/extended/multiradar.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "src/airfield/flight_db.hpp"
#include "src/airfield/radar.hpp"
#include "src/core/rng.hpp"

namespace atm::airfield {

/// One radar tower on the airfield.
struct RadarTower {
  double x = 0.0;       ///< Position east (nm).
  double y = 0.0;       ///< Position north (nm).
  double range_nm = 0;  ///< Detection radius.
};

/// Tower layout parameters: towers sit on a jittered k x k grid with a
/// range chosen so interior aircraft are seen by several towers.
struct TowerLayoutParams {
  int grid = 3;               ///< k: towers per axis (k^2 towers).
  double range_nm = 150.0;    ///< Per-tower detection radius.
  double jitter_nm = 20.0;    ///< Random displacement off the grid point.
};

/// Build a deterministic tower layout.
[[nodiscard]] std::vector<RadarTower> make_tower_layout(
    std::uint64_t seed, const TowerLayoutParams& params = {});

/// A multi-return radar frame: same SoA as RadarFrame plus the producing
/// tower of each return. Frame size is the number of (tower, visible
/// aircraft) pairs, not the aircraft count.
struct MultiRadarFrame {
  RadarFrame base;                  ///< rx/ry/rmatch_with/truth.
  std::vector<std::int32_t> tower;  ///< Producing tower per return.

  [[nodiscard]] std::size_t size() const { return base.size(); }
};

/// Generate one period's returns from every tower that sees each
/// aircraft's expected position, with independent noise per return, then
/// apply the quarter-reversal shuffle across the whole frame. Draw order
/// is (aircraft-major, tower-minor), fixed, so identical seeds give
/// identical frames on every backend.
[[nodiscard]] MultiRadarFrame generate_multi_radar(
    const FlightDb& db, const std::vector<RadarTower>& towers,
    core::Rng& rng, const RadarParams& params = {});

/// Average returns per aircraft in a frame (coverage diagnostic).
[[nodiscard]] double mean_coverage(const MultiRadarFrame& frame,
                                   std::size_t aircraft);

}  // namespace atm::airfield
