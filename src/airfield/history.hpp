// Flight history recording and retrace.
//
// Paper Section 4.1: "All radar in the USA is saved and can be used to
// retrace the flight of aircraft that has disappeared over large
// uninhabited areas including oceans." This module provides that
// capability for the simulation: a ring-buffer recorder snapshots every
// aircraft's tracked position each period, and retrace queries reconstruct
// a flight's recent trajectory — including its last known position after
// it "disappears" (stops being tracked).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/airfield/flight_db.hpp"

namespace atm::airfield {

/// One recorded sample of one aircraft.
struct TrackPoint {
  std::int64_t period = 0;  ///< Global period index of the sample.
  double x = 0.0;           ///< Tracked position east (nm).
  double y = 0.0;           ///< Tracked position north (nm).
  double alt = 0.0;         ///< Altitude (feet).
};

/// Fixed-capacity ring buffer of per-period position snapshots.
class FlightRecorder {
 public:
  /// Record up to `capacity_periods` most-recent periods for `aircraft`
  /// flights.
  FlightRecorder(std::size_t aircraft, int capacity_periods);

  [[nodiscard]] std::size_t aircraft() const { return aircraft_; }
  [[nodiscard]] int capacity() const { return capacity_; }
  /// Periods currently held (saturates at capacity).
  [[nodiscard]] int recorded() const;
  /// Global index of the latest recorded period, or -1 when empty.
  [[nodiscard]] std::int64_t latest_period() const { return next_ - 1; }

  /// Snapshot the database's current positions as the next period.
  /// The database size must match the recorder's aircraft count.
  void record(const FlightDb& db);

  /// The last `count` recorded samples of one aircraft, oldest first.
  /// Fewer are returned if the history is shorter.
  [[nodiscard]] std::vector<TrackPoint> retrace(std::int32_t aircraft_id,
                                                int count) const;

  /// The most recent recorded sample of one aircraft (its "last known
  /// position"), or nullopt when nothing is recorded.
  [[nodiscard]] std::optional<TrackPoint> last_known(
      std::int32_t aircraft_id) const;

  /// Straight-line extrapolation from the last two samples, `periods`
  /// ahead of the latest record — the search-planning estimate for a
  /// disappeared flight. Requires >= 2 recorded periods.
  [[nodiscard]] std::optional<TrackPoint> extrapolate(
      std::int32_t aircraft_id, double periods_ahead) const;

 private:
  [[nodiscard]] const TrackPoint& at(std::int64_t period,
                                     std::size_t aircraft_id) const;

  std::size_t aircraft_;
  int capacity_;
  std::int64_t next_ = 0;  ///< Next global period index to write.
  std::vector<TrackPoint> ring_;  ///< capacity x aircraft, row per period.
};

}  // namespace atm::airfield
