#include "src/airfield/setup.hpp"

#include <algorithm>
#include <cmath>

namespace atm::airfield {

FlightInit draw_flight(core::Rng& rng, const SetupParams& params) {
  FlightInit init;

  // Position: magnitude in [0, max), sign from the paper's parity draw
  // ("if this number is even, then the value of x will be negative"; for y
  // the odd draw flips).
  const double px = rng.uniform(0.0, params.position_max_nm);
  const double py = rng.uniform(0.0, params.position_max_nm);
  const double sx = rng.paper_sign(/*negative_on_even=*/true);
  const double sy = rng.paper_sign(/*negative_on_even=*/false);
  init.x = px * sx;
  init.y = py * sy;

  // Speed and direction. The paper draws |dx| from the same [30, 600]
  // range as the speed; |dx| cannot exceed S for dy to be real, so the
  // draw is clamped to S (the re-written CUDA program does the same).
  const double speed =
      rng.uniform(params.min_speed_knots, params.max_speed_knots);
  const double dx_knots =
      std::min(rng.uniform(params.min_speed_knots, params.max_speed_knots),
               speed);
  const double dy_knots =
      std::sqrt(std::max(0.0, speed * speed - dx_knots * dx_knots));
  const double sdx = rng.paper_sign(/*negative_on_even=*/true);
  const double sdy = rng.paper_sign(/*negative_on_even=*/false);

  init.dx = core::knots_to_nm_per_period(dx_knots * sdx);
  init.dy = core::knots_to_nm_per_period(dy_knots * sdy);

  init.alt =
      rng.uniform(params.min_altitude_feet, params.max_altitude_feet);
  return init;
}

void setup_flight(FlightDb& db, std::size_t i, core::Rng& rng,
                  const SetupParams& params) {
  const FlightInit init = draw_flight(rng, params);
  db.x[i] = init.x;
  db.y[i] = init.y;
  db.dx[i] = init.dx;
  db.dy[i] = init.dy;
  db.alt[i] = init.alt;

  db.batx[i] = db.dx[i];
  db.baty[i] = db.dy[i];
  db.rmatch[i] = static_cast<std::int8_t>(MatchState::kUnmatched);
  db.col[i] = 0;
  db.time_till[i] = core::kCriticalTimePeriods;
  db.col_with[i] = kNone;
}

void setup_all_flights(FlightDb& db, core::Rng& rng,
                       const SetupParams& params) {
  for (std::size_t i = 0; i < db.size(); ++i) {
    setup_flight(db, i, rng, params);
  }
}

FlightDb make_airfield(std::size_t n, std::uint64_t seed,
                       const SetupParams& params) {
  FlightDb db(n);
  core::Rng rng(seed);
  setup_all_flights(db, rng, params);
  return db;
}

}  // namespace atm::airfield
