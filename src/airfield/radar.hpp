// GenerateRadarData: synthesize the per-period radar returns
// (paper Sections 4.1 and 5.1).
//
// Each period, every aircraft produces (at most) one radar return equal to
// its expected position plus a small random noise in both coordinates.
// The return list is then deliberately de-correlated from the aircraft
// order — the paper splits the array into fourths and reverses each fourth
// on the host — so that Task 1 has real work to do.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/airfield/flight_db.hpp"
#include "src/core/rng.hpp"

namespace atm::airfield {

/// One period's radar returns, struct-of-arrays like the flight records.
struct RadarFrame {
  std::vector<double> rx;  ///< Measured east position (nm).
  std::vector<double> ry;  ///< Measured north position (nm).
  /// Working field of Task 1: kNone (unmatched), kDiscarded, or the id of
  /// the correlated aircraft.
  std::vector<std::int32_t> rmatch_with;
  /// Ground truth: which aircraft produced this return. Never read by the
  /// ATM tasks; used only to score correlation quality in tests/benches.
  std::vector<std::int32_t> truth;

  [[nodiscard]] std::size_t size() const { return rx.size(); }
  void resize(std::size_t n);
  /// Reset the working field before a Task 1 run.
  void reset_matches();
};

/// Radar generation parameters.
struct RadarParams {
  /// Maximum magnitude of the positional noise added to each coordinate
  /// (uniform in [-noise, +noise] nm). Kept below the initial 0.5 nm
  /// half-box so a clean return correlates on the first pass.
  double noise_nm = 0.25;
  /// Probability that an aircraft produces no return this period ("a radar
  /// report may not be obtained for some aircraft during some periods").
  /// A dropped return is represented by an off-field sentinel position so
  /// frame size stays n (as in the paper's fixed-size arrays).
  double dropout_probability = 0.0;
};

/// Off-field sentinel for dropped returns.
inline constexpr double kDropoutCoordinate = 1.0e6;

/// Generate one radar frame from the *expected* next-period positions of
/// the aircraft in `db` (pos + vel), with noise from `rng`, then apply the
/// paper's quarter-reversal shuffle. Draws exactly 2 noise values plus one
/// dropout value (when dropout is enabled) per aircraft, in index order, so
/// every backend consuming the same seed sees the same frame.
[[nodiscard]] RadarFrame generate_radar(const FlightDb& db, core::Rng& rng,
                                        const RadarParams& params = {});

/// The paper's host-side shuffle: split the frame into fourths and reverse
/// each fourth in place. Exposed separately for tests and for the CUDA
/// backend, which models the device->host->device round trip around it.
void quarter_reversal_shuffle(RadarFrame& frame);

/// Score a correlation result against ground truth: the number of radars
/// whose rmatch_with equals their true aircraft.
[[nodiscard]] std::size_t count_correct_matches(const RadarFrame& frame);

}  // namespace atm::airfield
