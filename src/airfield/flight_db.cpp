#include "src/airfield/flight_db.hpp"

#include <cmath>

namespace atm::airfield {

void FlightDb::resize(std::size_t n) {
  x.resize(n, 0.0);
  y.resize(n, 0.0);
  dx.resize(n, 0.0);
  dy.resize(n, 0.0);
  alt.resize(n, 0.0);
  batx.resize(n, 0.0);
  baty.resize(n, 0.0);
  rmatch.resize(n, static_cast<std::int8_t>(MatchState::kUnmatched));
  col.resize(n, 0);
  time_till.resize(n, core::kCriticalTimePeriods);
  col_with.resize(n, kNone);
  terrain_warn.resize(n, 0);
  sector.resize(n, kNone);
}

void FlightDb::reset_correlation_state() {
  std::fill(rmatch.begin(), rmatch.end(),
            static_cast<std::int8_t>(MatchState::kUnmatched));
}

void FlightDb::reset_collision_state() {
  std::fill(col.begin(), col.end(), std::uint8_t{0});
  std::fill(time_till.begin(), time_till.end(), core::kCriticalTimePeriods);
  std::fill(col_with.begin(), col_with.end(), kNone);
  // Trial paths start as the current path (Algorithm 2 rotates from here).
  batx = dx;
  baty = dy;
}

bool FlightDb::same_flight_state(const FlightDb& other, double tol) const {
  if (size() != other.size()) return false;
  for (std::size_t i = 0; i < size(); ++i) {
    if (std::fabs(x[i] - other.x[i]) > tol ||
        std::fabs(y[i] - other.y[i]) > tol ||
        std::fabs(dx[i] - other.dx[i]) > tol ||
        std::fabs(dy[i] - other.dy[i]) > tol ||
        std::fabs(alt[i] - other.alt[i]) > tol) {
      return false;
    }
  }
  return true;
}

bool apply_reentry(FlightDb& db, std::size_t i) {
  const double limit = core::kGridHalfExtentNm;
  if (std::fabs(db.x[i]) <= limit && std::fabs(db.y[i]) <= limit) {
    return false;
  }
  // Paper Section 4.1: "another aircraft with the same speed and direction
  // of flight is re-entered into the grid at the location (-x, -y)".
  //
  // Note a consequence the paper inherits: the flip preserves the exit
  // magnitude, and since tracked positions carry radar noise, an aircraft
  // oscillating across the boundary random-walks its |position| by the
  // noise amplitude each period — over hundreds of periods edge aircraft
  // can sit several nm beyond the nominal 128 nm line before their
  // velocity carries them back in. This is faithful to the paper's rule;
  // the long-run tests bound the drift rather than forbid it.
  db.x[i] = -db.x[i];
  db.y[i] = -db.y[i];
  return true;
}

std::size_t apply_reentry_all(FlightDb& db) {
  std::size_t wrapped = 0;
  for (std::size_t i = 0; i < db.size(); ++i) {
    wrapped += apply_reentry(db, i) ? 1 : 0;
  }
  return wrapped;
}

}  // namespace atm::airfield
