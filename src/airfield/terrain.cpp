#include "src/airfield/terrain.hpp"

#include <algorithm>
#include <cmath>

namespace atm::airfield {

TerrainMap::TerrainMap(std::uint64_t seed, const TerrainParams& params)
    : cells_(params.grid_cells) {
  const int corners = cells_ + 1;
  data_.assign(static_cast<std::size_t>(corners) * corners, 0.0);

  // Sum of Gaussian hills with random centres, widths, and heights.
  core::Rng rng(seed);
  struct Hill {
    double cx, cy, sigma, height;
  };
  std::vector<Hill> hills;
  hills.reserve(static_cast<std::size_t>(params.hill_count));
  for (int h = 0; h < params.hill_count; ++h) {
    hills.push_back(Hill{
        rng.uniform(-core::kGridHalfExtentNm, core::kGridHalfExtentNm),
        rng.uniform(-core::kGridHalfExtentNm, core::kGridHalfExtentNm),
        rng.uniform(params.min_sigma_nm, params.max_sigma_nm),
        rng.uniform(0.15, 1.0),
    });
  }

  const double cell_nm = 2.0 * core::kGridHalfExtentNm / cells_;
  double raw_peak = 0.0;
  for (int row = 0; row < corners; ++row) {
    const double y = -core::kGridHalfExtentNm + row * cell_nm;
    for (int col = 0; col < corners; ++col) {
      const double x = -core::kGridHalfExtentNm + col * cell_nm;
      double z = 0.0;
      for (const Hill& hill : hills) {
        const double dx = x - hill.cx;
        const double dy = y - hill.cy;
        z += hill.height *
             std::exp(-(dx * dx + dy * dy) / (2.0 * hill.sigma * hill.sigma));
      }
      data_[static_cast<std::size_t>(row) * corners + col] = z;
      raw_peak = std::max(raw_peak, z);
    }
  }

  // Normalize so the tallest point is max_peak_feet.
  const double scale =
      raw_peak > 0.0 ? params.max_peak_feet / raw_peak : 0.0;
  for (double& z : data_) z *= scale;
  peak_ = raw_peak * scale;
}

double TerrainMap::to_cell(double coord_nm) const {
  const double clamped = std::clamp(coord_nm, -core::kGridHalfExtentNm,
                                    core::kGridHalfExtentNm);
  return (clamped + core::kGridHalfExtentNm) /
         (2.0 * core::kGridHalfExtentNm) * cells_;
}

double TerrainMap::elevation_at(double x, double y) const {
  const int corners = cells_ + 1;
  const double fx = to_cell(x);
  const double fy = to_cell(y);
  const int cx = std::min(static_cast<int>(fx), cells_ - 1);
  const int cy = std::min(static_cast<int>(fy), cells_ - 1);
  const double tx = fx - cx;
  const double ty = fy - cy;
  const auto at = [&](int row, int col) {
    return data_[static_cast<std::size_t>(row) * corners + col];
  };
  const double top =
      at(cy, cx) * (1.0 - tx) + at(cy, cx + 1) * tx;
  const double bottom =
      at(cy + 1, cx) * (1.0 - tx) + at(cy + 1, cx + 1) * tx;
  return top * (1.0 - ty) + bottom * ty;
}

}  // namespace atm::airfield
