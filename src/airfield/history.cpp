#include "src/airfield/history.hpp"

#include <algorithm>
#include <stdexcept>

namespace atm::airfield {

FlightRecorder::FlightRecorder(std::size_t aircraft, int capacity_periods)
    : aircraft_(aircraft), capacity_(capacity_periods) {
  if (capacity_periods <= 0) {
    throw std::invalid_argument("FlightRecorder: capacity must be positive");
  }
  ring_.resize(static_cast<std::size_t>(capacity_) * aircraft_);
}

int FlightRecorder::recorded() const {
  return static_cast<int>(
      std::min<std::int64_t>(next_, static_cast<std::int64_t>(capacity_)));
}

void FlightRecorder::record(const FlightDb& db) {
  if (db.size() != aircraft_) {
    throw std::invalid_argument("FlightRecorder: aircraft count mismatch");
  }
  const auto row =
      static_cast<std::size_t>(next_ % capacity_) * aircraft_;
  for (std::size_t i = 0; i < aircraft_; ++i) {
    ring_[row + i] = TrackPoint{next_, db.x[i], db.y[i], db.alt[i]};
  }
  ++next_;
}

const TrackPoint& FlightRecorder::at(std::int64_t period,
                                     std::size_t aircraft_id) const {
  const auto row =
      static_cast<std::size_t>(period % capacity_) * aircraft_;
  return ring_[row + aircraft_id];
}

std::vector<TrackPoint> FlightRecorder::retrace(std::int32_t aircraft_id,
                                                int count) const {
  std::vector<TrackPoint> out;
  if (aircraft_id < 0 ||
      static_cast<std::size_t>(aircraft_id) >= aircraft_ || next_ == 0) {
    return out;
  }
  const std::int64_t oldest =
      std::max<std::int64_t>(0, next_ - recorded());
  const std::int64_t from =
      std::max(oldest, next_ - static_cast<std::int64_t>(count));
  for (std::int64_t p = from; p < next_; ++p) {
    out.push_back(at(p, static_cast<std::size_t>(aircraft_id)));
  }
  return out;
}

std::optional<TrackPoint> FlightRecorder::last_known(
    std::int32_t aircraft_id) const {
  if (aircraft_id < 0 ||
      static_cast<std::size_t>(aircraft_id) >= aircraft_ || next_ == 0) {
    return std::nullopt;
  }
  return at(next_ - 1, static_cast<std::size_t>(aircraft_id));
}

std::optional<TrackPoint> FlightRecorder::extrapolate(
    std::int32_t aircraft_id, double periods_ahead) const {
  if (recorded() < 2) return std::nullopt;
  if (aircraft_id < 0 ||
      static_cast<std::size_t>(aircraft_id) >= aircraft_) {
    return std::nullopt;
  }
  const auto id = static_cast<std::size_t>(aircraft_id);
  const TrackPoint& last = at(next_ - 1, id);
  const TrackPoint& prev = at(next_ - 2, id);
  TrackPoint out;
  out.period = last.period + static_cast<std::int64_t>(periods_ahead);
  out.x = last.x + (last.x - prev.x) * periods_ahead;
  out.y = last.y + (last.y - prev.y) * periods_ahead;
  out.alt = last.alt + (last.alt - prev.alt) * periods_ahead;
  return out;
}

}  // namespace atm::airfield
