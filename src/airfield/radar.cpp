#include "src/airfield/radar.hpp"

#include <algorithm>

namespace atm::airfield {

void RadarFrame::resize(std::size_t n) {
  rx.resize(n, 0.0);
  ry.resize(n, 0.0);
  rmatch_with.resize(n, kNone);
  truth.resize(n, kNone);
}

void RadarFrame::reset_matches() {
  std::fill(rmatch_with.begin(), rmatch_with.end(), kNone);
}

RadarFrame generate_radar(const FlightDb& db, core::Rng& rng,
                          const RadarParams& params) {
  RadarFrame frame;
  frame.resize(db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    const core::Vec2 expected = db.expected(i);
    const double nx = rng.uniform(-params.noise_nm, params.noise_nm);
    const double ny = rng.uniform(-params.noise_nm, params.noise_nm);
    bool dropped = false;
    if (params.dropout_probability > 0.0) {
      dropped = rng.uniform() < params.dropout_probability;
    }
    if (dropped) {
      frame.rx[i] = kDropoutCoordinate;
      frame.ry[i] = kDropoutCoordinate;
      frame.truth[i] = kNone;
    } else {
      frame.rx[i] = expected.x + nx;
      frame.ry[i] = expected.y + ny;
      frame.truth[i] = static_cast<std::int32_t>(i);
    }
  }
  quarter_reversal_shuffle(frame);
  return frame;
}

void quarter_reversal_shuffle(RadarFrame& frame) {
  const std::size_t n = frame.size();
  if (n < 2) return;
  const std::size_t quarter = n / 4;
  auto reverse_range = [&frame](std::size_t lo, std::size_t hi) {
    std::reverse(frame.rx.begin() + static_cast<std::ptrdiff_t>(lo),
                 frame.rx.begin() + static_cast<std::ptrdiff_t>(hi));
    std::reverse(frame.ry.begin() + static_cast<std::ptrdiff_t>(lo),
                 frame.ry.begin() + static_cast<std::ptrdiff_t>(hi));
    std::reverse(frame.truth.begin() + static_cast<std::ptrdiff_t>(lo),
                 frame.truth.begin() + static_cast<std::ptrdiff_t>(hi));
  };
  if (quarter == 0) {
    // Fewer than 4 returns: a single whole-array reversal still
    // de-correlates the order.
    reverse_range(0, n);
    return;
  }
  for (int q = 0; q < 4; ++q) {
    const std::size_t lo = static_cast<std::size_t>(q) * quarter;
    const std::size_t hi = (q == 3) ? n : lo + quarter;
    reverse_range(lo, hi);
  }
}

std::size_t count_correct_matches(const RadarFrame& frame) {
  std::size_t correct = 0;
  for (std::size_t r = 0; r < frame.size(); ++r) {
    if (frame.rmatch_with[r] >= 0 &&
        frame.rmatch_with[r] == frame.truth[r]) {
      ++correct;
    }
  }
  return correct;
}

}  // namespace atm::airfield
