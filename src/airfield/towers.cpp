#include "src/airfield/towers.hpp"

#include <algorithm>
#include <cmath>

namespace atm::airfield {

std::vector<RadarTower> make_tower_layout(std::uint64_t seed,
                                          const TowerLayoutParams& params) {
  std::vector<RadarTower> towers;
  core::Rng rng(seed);
  const int k = std::max(1, params.grid);
  const double spacing = 2.0 * core::kGridHalfExtentNm / k;
  for (int row = 0; row < k; ++row) {
    for (int col = 0; col < k; ++col) {
      const double base_x =
          -core::kGridHalfExtentNm + (col + 0.5) * spacing;
      const double base_y =
          -core::kGridHalfExtentNm + (row + 0.5) * spacing;
      towers.push_back(RadarTower{
          base_x + rng.uniform(-params.jitter_nm, params.jitter_nm),
          base_y + rng.uniform(-params.jitter_nm, params.jitter_nm),
          params.range_nm,
      });
    }
  }
  return towers;
}

MultiRadarFrame generate_multi_radar(const FlightDb& db,
                                     const std::vector<RadarTower>& towers,
                                     core::Rng& rng,
                                     const RadarParams& params) {
  MultiRadarFrame frame;
  for (std::size_t i = 0; i < db.size(); ++i) {
    const core::Vec2 expected = db.expected(i);
    for (std::size_t t = 0; t < towers.size(); ++t) {
      const double dx = expected.x - towers[t].x;
      const double dy = expected.y - towers[t].y;
      if (dx * dx + dy * dy > towers[t].range_nm * towers[t].range_nm) {
        continue;
      }
      // Each covering tower produces its own independently noised return.
      const double nx = rng.uniform(-params.noise_nm, params.noise_nm);
      const double ny = rng.uniform(-params.noise_nm, params.noise_nm);
      if (params.dropout_probability > 0.0 &&
          rng.uniform() < params.dropout_probability) {
        continue;  // this tower's return was lost this period
      }
      frame.base.rx.push_back(expected.x + nx);
      frame.base.ry.push_back(expected.y + ny);
      frame.base.truth.push_back(static_cast<std::int32_t>(i));
      frame.tower.push_back(static_cast<std::int32_t>(t));
    }
  }
  frame.base.rmatch_with.assign(frame.base.rx.size(), kNone);

  // Quarter-reversal shuffle over the whole frame, towers included.
  const std::size_t n = frame.size();
  if (n >= 2) {
    const std::size_t quarter = n / 4;
    auto reverse_range = [&frame](std::size_t lo, std::size_t hi) {
      const auto l = static_cast<std::ptrdiff_t>(lo);
      const auto h = static_cast<std::ptrdiff_t>(hi);
      std::reverse(frame.base.rx.begin() + l, frame.base.rx.begin() + h);
      std::reverse(frame.base.ry.begin() + l, frame.base.ry.begin() + h);
      std::reverse(frame.base.truth.begin() + l,
                   frame.base.truth.begin() + h);
      std::reverse(frame.tower.begin() + l, frame.tower.begin() + h);
    };
    if (quarter == 0) {
      reverse_range(0, n);
    } else {
      for (int q = 0; q < 4; ++q) {
        const std::size_t lo = static_cast<std::size_t>(q) * quarter;
        const std::size_t hi = (q == 3) ? n : lo + quarter;
        reverse_range(lo, hi);
      }
    }
  }
  return frame;
}

double mean_coverage(const MultiRadarFrame& frame, std::size_t aircraft) {
  if (aircraft == 0) return 0.0;
  return static_cast<double>(frame.size()) /
         static_cast<double>(aircraft);
}

}  // namespace atm::airfield
