// Terrain elevation model for the terrain-avoidance task.
//
// The paper's prior work ([13], and Thompson et al. [11], which the paper
// contrasts itself against) includes *terrain avoidance* among the basic
// ATM tasks: warn when an aircraft's projected path comes within a
// clearance margin of the ground. The paper defers it to future work
// ("implement all basic ATM tasks and create a more complete ATM
// system"); we implement it as part of the extended system.
//
// The terrain is a deterministic synthetic heightmap over the airfield: a
// seeded sum of smooth ridges/hills on a regular grid, sampled with
// bilinear interpolation. Deterministic per seed, so every backend sees
// the same ground.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/rng.hpp"
#include "src/core/units.hpp"

namespace atm::airfield {

/// Parameters of the synthetic terrain generator.
struct TerrainParams {
  int grid_cells = 128;        ///< Cells per axis over the 256 nm field.
  int hill_count = 40;         ///< Gaussian hills summed into the map.
  double max_peak_feet = 14000.0;   ///< Tallest terrain allowed.
  double min_sigma_nm = 4.0;   ///< Narrowest hill footprint.
  double max_sigma_nm = 24.0;  ///< Widest hill footprint.
};

/// A heightmap over the [-half, +half]^2 airfield, in feet.
class TerrainMap {
 public:
  /// Generate from a seed (deterministic).
  TerrainMap(std::uint64_t seed, const TerrainParams& params = {});

  /// Elevation in feet at airfield coordinates (x, y) nm, bilinear
  /// interpolation; coordinates outside the grid clamp to the edge.
  [[nodiscard]] double elevation_at(double x, double y) const;

  /// Highest cell in the map.
  [[nodiscard]] double peak_feet() const { return peak_; }

  [[nodiscard]] int grid_cells() const { return cells_; }

  /// Raw cell access (row-major), for the device-resident copy the CUDA
  /// backend keeps.
  [[nodiscard]] const std::vector<double>& cells() const { return data_; }

  /// Map airfield coordinate to fractional cell index.
  [[nodiscard]] double to_cell(double coord_nm) const;

 private:
  int cells_;
  double peak_ = 0.0;
  std::vector<double> data_;  ///< (cells+1)^2 corner samples, row-major.
};

}  // namespace atm::airfield
