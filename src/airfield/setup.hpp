// SetupFlight: initialize the simulated airfield (paper Section 4.1).
#pragma once

#include <cstddef>

#include "src/airfield/flight_db.hpp"
#include "src/core/rng.hpp"

namespace atm::airfield {

/// Parameters of the paper's SetupFlight procedure. Defaults are exactly
/// the values of Section 4.1.
struct SetupParams {
  double position_max_nm = core::kSetupPositionMaxNm;  ///< |x|,|y| draw max.
  double min_speed_knots = core::kMinSpeedKnots;
  double max_speed_knots = core::kMaxSpeedKnots;
  double min_altitude_feet = core::kMinAltitudeFeet;
  double max_altitude_feet = core::kMaxAltitudeFeet;
};

/// The values SetupFlight assigns to one aircraft.
struct FlightInit {
  double x = 0.0;
  double y = 0.0;
  double dx = 0.0;  ///< nm/period.
  double dy = 0.0;  ///< nm/period.
  double alt = 0.0;
};

/// Draw one aircraft's initial state from `rng` using the paper's draw
/// sequence (shared by the host SetupFlight and the CUDA SetupFlight
/// kernel).
[[nodiscard]] FlightInit draw_flight(core::Rng& rng,
                                     const SetupParams& params = {});

/// Initialize aircraft record i in-place, consuming randomness from `rng`
/// with the paper's draw sequence:
///   1. x, y uniform in [0, position_max); each sign decided by drawing an
///      integer in [0, 50] and testing parity,
///   2. speed S uniform in [min_speed, max_speed] knots,
///   3. |dx| uniform in [min_speed, max_speed] clamped to <= S, sign
///      random; |dy| = sqrt(S^2 - dx^2), sign random,
///   4. dx, dy converted from nm/hour to nm/period (divide by 7200),
///   5. altitude uniform in [min_altitude, max_altitude].
void setup_flight(FlightDb& db, std::size_t i, core::Rng& rng,
                  const SetupParams& params = {});

/// Initialize all n records (the host-reference SetupFlight kernel).
void setup_all_flights(FlightDb& db, core::Rng& rng,
                       const SetupParams& params = {});

/// Create a ready-to-fly database of n aircraft from a seed.
[[nodiscard]] FlightDb make_airfield(std::size_t n, std::uint64_t seed,
                                     const SetupParams& params = {});

}  // namespace atm::airfield
