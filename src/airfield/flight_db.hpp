// The dynamic flight database: one record per tracked aircraft.
//
// Mirrors the paper's `drone` structure (Section 5): position (x, y),
// per-period velocity (dx, dy), the Batcher trial path (batx, baty),
// altitude, collision flags (col, time_till, colWith), and the
// tracking-correlation match flag (rMatch). Stored struct-of-arrays: the
// associative and SIMD machines operate field-parallel, and the SIMT
// engine's coalescing model rewards it for the same reason real CUDA does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/units.hpp"
#include "src/core/vec2.hpp"

namespace atm::airfield {

/// Sentinel ids used by the correlation and collision fields.
inline constexpr std::int32_t kNone = -1;       ///< No match / no collision.
inline constexpr std::int32_t kDiscarded = -2;  ///< Radar dropped (ambiguous).
/// Multi-tower correlation only: the return covered exactly one aircraft
/// but a closer return from another tower won the correlation.
inline constexpr std::int32_t kRedundant = -3;

/// rMatch states for an aircraft during Task 1 (paper Section 5.1).
enum class MatchState : std::int8_t {
  kUnmatched = 0,   ///< No radar correlated yet.
  kMatched = 1,     ///< Exactly one radar correlated.
  kAmbiguous = -1,  ///< Multiple radars hit: keep expected position.
};

/// Struct-of-arrays flight records.
class FlightDb {
 public:
  FlightDb() = default;
  explicit FlightDb(std::size_t n) { resize(n); }

  void resize(std::size_t n);
  [[nodiscard]] std::size_t size() const { return x.size(); }
  [[nodiscard]] bool empty() const { return x.empty(); }

  // --- persistent flight state -------------------------------------------
  std::vector<double> x;    ///< Position east (nm).
  std::vector<double> y;    ///< Position north (nm).
  std::vector<double> dx;   ///< Velocity east (nm/period).
  std::vector<double> dy;   ///< Velocity north (nm/period).
  std::vector<double> alt;  ///< Altitude (feet).

  // --- per-task working state --------------------------------------------
  std::vector<double> batx;  ///< Trial-path velocity east (Task 3).
  std::vector<double> baty;  ///< Trial-path velocity north (Task 3).
  std::vector<std::int8_t> rmatch;     ///< MatchState as raw int.
  std::vector<std::uint8_t> col;       ///< Collision anticipated this cycle.
  std::vector<double> time_till;       ///< Periods until soonest collision.
  std::vector<std::int32_t> col_with;  ///< Partner aircraft id or kNone.

  // --- extended-system working state (complete ATM task set) -------------
  std::vector<std::uint8_t> terrain_warn;  ///< Terrain-avoidance flag.
  std::vector<std::int32_t> sector;        ///< Display sector id or kNone.

  /// Position of aircraft i as a vector.
  [[nodiscard]] core::Vec2 pos(std::size_t i) const {
    return core::Vec2{x[i], y[i]};
  }
  /// Velocity (nm/period) of aircraft i as a vector.
  [[nodiscard]] core::Vec2 vel(std::size_t i) const {
    return core::Vec2{dx[i], dy[i]};
  }
  /// Expected position one period ahead (Task 1's prediction).
  [[nodiscard]] core::Vec2 expected(std::size_t i) const {
    return core::Vec2{x[i] + dx[i], y[i] + dy[i]};
  }

  /// Reset the per-task working fields to their pre-task defaults.
  void reset_correlation_state();
  void reset_collision_state();

  /// Exact equality of persistent state (positions, velocities, altitude)
  /// with another database — the cross-backend equivalence check.
  [[nodiscard]] bool same_flight_state(const FlightDb& other,
                                       double tol = 0.0) const;
};

/// Apply the paper's grid re-entry rule to aircraft i: an aircraft leaving
/// the field at (x, y) re-enters at (-x, -y) with unchanged velocity.
/// Returns true if the aircraft wrapped.
bool apply_reentry(FlightDb& db, std::size_t i);

/// Apply re-entry to all aircraft; returns the number wrapped.
std::size_t apply_reentry_all(FlightDb& db);

}  // namespace atm::airfield
