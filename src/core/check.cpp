#include "src/core/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace atm::core::detail {

void check_failed(const char* kind, const char* expr, const char* file,
                  int line, const std::string& msg) {
  // One fprintf so the message stays contiguous even when several threads
  // fail simultaneously (e.g. under the TSan stress test).
  if (msg.empty()) {
    std::fprintf(stderr, "%s failed: %s\n  at %s:%d\n", kind, expr, file,
                 line);
  } else {
    std::fprintf(stderr, "%s failed: %s\n  at %s:%d\n  context: %s\n", kind,
                 expr, file, line, msg.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace atm::core::detail
