#include "src/core/spatial/uniform_grid.hpp"

#include <algorithm>
#include <cmath>

#include "src/core/check.hpp"

namespace atm::core::spatial {

void UniformGrid2D::build(std::span<const double> xs,
                          std::span<const double> ys,
                          std::span<const std::uint8_t> mask,
                          double cell_hint_nm, int max_cells_per_axis) {
  const std::size_t n = xs.size();
  const auto included = [&](std::size_t i) {
    return mask.empty() || mask[i] != 0;
  };

  // Bounds over the inserted points.
  bool any = false;
  double min_x = 0.0, max_x = 0.0, min_y = 0.0, max_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!included(i)) continue;
    if (!any) {
      min_x = max_x = xs[i];
      min_y = max_y = ys[i];
      any = true;
    } else {
      min_x = std::min(min_x, xs[i]);
      max_x = std::max(max_x, xs[i]);
      min_y = std::min(min_y, ys[i]);
      max_y = std::max(max_y, ys[i]);
    }
  }
  if (!any) {
    ids_.clear();
    cell_start_.assign(1, 0);
    cols_ = rows_ = 0;
    return;
  }

  ATM_CHECK_MSG(std::isfinite(min_x) && std::isfinite(max_x) &&
                    std::isfinite(min_y) && std::isfinite(max_y),
                "non-finite point bounds: x=[" << min_x << ", " << max_x
                                               << "] y=[" << min_y << ", "
                                               << max_y << "]");
  const double extent = std::max(max_x - min_x, max_y - min_y);
  double cell = std::max(cell_hint_nm, 1e-9);
  if (max_cells_per_axis < 1) max_cells_per_axis = 1;
  cell = std::max(cell, extent / static_cast<double>(max_cells_per_axis));
  min_x_ = min_x;
  min_y_ = min_y;
  inv_cell_ = 1.0 / cell;
  cols_ = std::max(1, static_cast<int>((max_x - min_x) * inv_cell_) + 1);
  rows_ = std::max(1, static_cast<int>((max_y - min_y) * inv_cell_) + 1);
  // Clamping contract: every inserted point must land inside the grid, or
  // the CSR placement below writes out of bounds.
  ATM_CHECK_MSG(col_of(max_x) < cols_ && row_of(max_y) < rows_,
                "clamp overflow: cols=" << cols_ << " rows=" << rows_
                                        << " inv_cell=" << inv_cell_);

  // CSR counting sort: count per cell, prefix-sum, place.
  const std::size_t cells =
      static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  cell_start_.assign(cells + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!included(i)) continue;
    const std::size_t cell_idx =
        static_cast<std::size_t>(row_of(ys[i])) *
            static_cast<std::size_t>(cols_) +
        static_cast<std::size_t>(col_of(xs[i]));
    ++cell_start_[cell_idx + 1];
  }
  for (std::size_t c = 0; c < cells; ++c) {
    cell_start_[c + 1] += cell_start_[c];
  }
  cursor_.assign(cell_start_.begin(), cell_start_.end() - 1);
  ids_.resize(static_cast<std::size_t>(cell_start_[cells]));
  for (std::size_t i = 0; i < n; ++i) {
    if (!included(i)) continue;
    const std::size_t cell_idx =
        static_cast<std::size_t>(row_of(ys[i])) *
            static_cast<std::size_t>(cols_) +
        static_cast<std::size_t>(col_of(xs[i]));
    ATM_ASSERT_MSG(cursor_[cell_idx] < cell_start_[cell_idx + 1],
                   "CSR cursor overran cell " << cell_idx);
    ids_[static_cast<std::size_t>(cursor_[cell_idx]++)] =
        static_cast<std::int32_t>(i);
  }
  // Counting sort postcondition: every inserted id was placed exactly once.
  ATM_CHECK_MSG(static_cast<std::size_t>(cell_start_[cells]) == ids_.size(),
                "CSR total " << cell_start_[cells] << " != placed "
                             << ids_.size());
}

}  // namespace atm::core::spatial
