// Swept broadphase index for the collision-detection look-ahead: a uniform
// grid keyed by current position plus altitude slabs, queried with a box
// expanded by velocity x horizon (the 4D-AABB idea of Bak & Hobbs reduced
// to the ATM tasks' geometry).
//
// Why the query expands instead of the insertion sweeping: every aircraft
// is inserted exactly once, by its *current* position, into one (slab,
// cell) bucket. A query for aircraft i expands its box by
//
//     band + (|v_i| + max_j |v_j|) * horizon
//
// per axis — if i and j can come within `band` of each other on an axis
// inside the horizon, their current positions differ by at most that
// radius, so j's bucket intersects the query box. Using |v_i| (speed, not
// direction) keeps the same query valid for every Task-3 trial rotation of
// i's velocity. Altitude slabs are `gate` feet wide, so any j within the
// altitude gate of i lies in i's slab or an adjacent one.
//
// Exactness contract: `for_each_candidate` enumerates a superset of every
// j (j != i is NOT filtered here) that can pass the altitude gate and the
// Batcher pair test against aircraft i at any velocity of magnitude
// `speed`; each inserted id is enumerated at most once. The caller
// re-applies the exact gate and pair test, so outcomes are identical to a
// brute-force scan.
//
// The index is immutable after build() and safe to query from many
// threads concurrently (the MIMD backend does).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace atm::core::spatial {

struct SweptIndexParams {
  double horizon_periods = 0.0;   ///< Look-ahead window (periods).
  double band_nm = 0.0;           ///< Batcher band width (total, nm).
  double altitude_gate_feet = 0.0;///< Slab height = altitude gate.
  /// Upper bound on grid cells per xy axis. The build also shrinks the
  /// grid (down to 1x1) when the typical query radius covers the field —
  /// at the paper's 20-minute horizon and en-route speeds the xy sweep
  /// saturates and all pruning comes from the altitude slabs.
  int max_cells_per_axis = 64;
};

class SweptIndex {
 public:
  /// Build from current positions, velocities (nm/period), and altitudes.
  void build(std::span<const double> x, std::span<const double> y,
             std::span<const double> dx, std::span<const double> dy,
             std::span<const double> alt, const SweptIndexParams& params);

  [[nodiscard]] bool empty() const { return ids_.empty(); }
  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] int slabs() const { return slabs_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] double max_speed() const { return max_speed_; }

  /// Visit every candidate id for a track starting at (xi, yi), altitude
  /// alti, moving at `speed` nm/period in any direction. The visitor
  /// returns true to stop the enumeration early (the Task-3 trial check
  /// stops at the first critical conflict).
  template <typename Fn>
  void for_each_candidate(double xi, double yi, double alti, double speed,
                          Fn&& fn) const {
    if (ids_.empty()) return;
    const double reach = band_ + (speed + max_speed_) * horizon_;
    const int cx0 = col_of(xi - reach);
    const int cx1 = col_of(xi + reach);
    const int cy0 = row_of(yi - reach);
    const int cy1 = row_of(yi + reach);
    const int s = slab_of(alti);
    const int s0 = s > 0 ? s - 1 : 0;
    const int s1 = s < slabs_ - 1 ? s + 1 : slabs_ - 1;
    const std::size_t slab_stride =
        static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
    for (int si = s0; si <= s1; ++si) {
      for (int cy = cy0; cy <= cy1; ++cy) {
        for (int cx = cx0; cx <= cx1; ++cx) {
          const std::size_t cell =
              static_cast<std::size_t>(si) * slab_stride +
              static_cast<std::size_t>(cy) * static_cast<std::size_t>(cols_) +
              static_cast<std::size_t>(cx);
          for (std::int32_t k = cell_start_[cell];
               k < cell_start_[cell + 1]; ++k) {
            if (fn(static_cast<std::size_t>(
                    ids_[static_cast<std::size_t>(k)]))) {
              return;
            }
          }
        }
      }
    }
  }

 private:
  [[nodiscard]] int col_of(double x) const {
    const double c = (x - min_x_) * inv_cell_;
    if (c <= 0.0) return 0;
    const int ci = static_cast<int>(c);
    return ci >= cols_ ? cols_ - 1 : ci;
  }
  [[nodiscard]] int row_of(double y) const {
    const double r = (y - min_y_) * inv_cell_;
    if (r <= 0.0) return 0;
    const int ri = static_cast<int>(r);
    return ri >= rows_ ? rows_ - 1 : ri;
  }
  [[nodiscard]] int slab_of(double alt) const {
    const double s = (alt - min_alt_) * inv_slab_;
    if (s <= 0.0) return 0;
    const int si = static_cast<int>(s);
    return si >= slabs_ ? slabs_ - 1 : si;
  }

  double min_x_ = 0.0, min_y_ = 0.0, min_alt_ = 0.0;
  double inv_cell_ = 0.0, inv_slab_ = 0.0;
  double band_ = 0.0, horizon_ = 0.0, max_speed_ = 0.0;
  int cols_ = 0, rows_ = 0, slabs_ = 0;
  std::vector<std::int32_t> cell_start_;  ///< CSR, slabs*rows*cols + 1.
  std::vector<std::int32_t> ids_;
  std::vector<std::int32_t> cursor_;      ///< Build scratch.
};

}  // namespace atm::core::spatial
