// Sector sharding for the ATM hot paths: an S x S partition of the
// airfield with per-sector halo (ghost) sets.
//
// The broadphase indexes in this directory prune *candidates* inside one
// monolithic scan; a SectorPartition instead splits the scan itself so
// each sector's work can run as an independent task (the per-shard
// self-scheduling style MIT LL used for aircraft-track processing).
// Every inserted point gets exactly one *owner* sector — the clamped
// cell its coordinates fall in — and additionally appears in the
// *candidate* list of every sector whose queries could need it: all
// sectors within `halo_reach_nm` per axis of the point.
//
// Exactness contract (the property the sector equivalence tests assert):
// for ANY query point p — inserted or not, in bounds or not — and any
// inserted point q with |p.x - q.x| <= reach and |p.y - q.y| <= reach,
// q is in candidates(sector_of(p)). The proof is monotonicity of the
// clamped cell map: q's candidate range spans col_of(q.x - reach) ..
// col_of(q.x + reach), and q.x - reach <= p.x <= q.x + reach implies
// col_of(p.x) lies inside it (same per row). So a per-sector scan of
// candidates(s) sees a superset of every exact match of every query
// owned by s, the caller re-applies its exact test, and outcomes are
// bit-identical to the unsharded scan; only work counters differ.
//
// The partition is immutable after build() and safe to read from many
// threads concurrently (the sharded executives query it from every
// worker).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace atm::core::spatial {

/// Whether a host task splits its scan into per-sector tasks.
enum class ShardMode {
  /// One monolithic scan (the paper's algorithm).
  kNone,
  /// Per-sector tasks over an S x S partition with halo sets.
  kSectors,
};

/// Stable short name: "none" | "sectors".
[[nodiscard]] std::string_view to_string(ShardMode mode);

/// Parse "none" / "sectors" (case-sensitive). Empty optional on anything
/// else.
[[nodiscard]] std::optional<ShardMode> parse_shard_mode(
    std::string_view name);

/// An S x S spatial partition with CSR-packed owner and candidate lists.
class SectorPartition {
 public:
  /// Rebuild from points (xs[i], ys[i]) for every i with mask[i] != 0 (an
  /// empty mask inserts all points). Bounds are taken from the inserted
  /// points; out-of-range coordinates clamp into the edge sectors, like
  /// UniformGrid2D. Each inserted point is owned by exactly one sector
  /// and listed as a candidate of every sector within `halo_reach_nm`
  /// per axis. Buffers are reused across builds; O(n + sectors).
  void build(std::span<const double> xs, std::span<const double> ys,
             std::span<const std::uint8_t> mask, double halo_reach_nm,
             int sectors_per_axis);

  [[nodiscard]] bool empty() const { return owned_ids_.empty(); }
  /// Inserted (masked-in) points.
  [[nodiscard]] std::size_t size() const { return owned_ids_.size(); }
  [[nodiscard]] int sectors_per_axis() const { return axis_; }
  [[nodiscard]] std::size_t sector_count() const {
    return static_cast<std::size_t>(axis_) * static_cast<std::size_t>(axis_);
  }
  [[nodiscard]] double halo_reach_nm() const { return reach_; }

  /// The clamped sector of an arbitrary coordinate (valid even for points
  /// that were not inserted — Task 1 maps radar returns through this).
  [[nodiscard]] int sector_of(double x, double y) const {
    return row_of(y) * axis_ + col_of(x);
  }

  /// Owner sector of inserted point i; -1 if i was masked out.
  [[nodiscard]] int owner_of(std::size_t i) const { return owner_[i]; }

  /// Ids owned by sector s (disjoint across sectors; union = inserted).
  [[nodiscard]] std::span<const std::int32_t> owned(std::size_t s) const {
    return {owned_ids_.data() + owned_start_[s],
            static_cast<std::size_t>(owned_start_[s + 1] - owned_start_[s])};
  }

  /// Ids a scan owned by sector s must consider: owned(s) plus the halo
  /// (each id appears at most once per sector).
  [[nodiscard]] std::span<const std::int32_t> candidates(
      std::size_t s) const {
    return {cand_ids_.data() + cand_start_[s],
            static_cast<std::size_t>(cand_start_[s + 1] - cand_start_[s])};
  }

  /// Sum of candidate-list sizes minus the inserted count: how many ghost
  /// copies the halos added (the shard handoff cost).
  [[nodiscard]] std::uint64_t halo_total() const {
    return cand_ids_.size() - owned_ids_.size();
  }
  [[nodiscard]] std::uint64_t candidate_total() const {
    return cand_ids_.size();
  }

  /// Debug oracle for the exactness contract: true iff every inserted
  /// point within `halo_reach_nm` per axis of (px, py) is listed in
  /// candidates(sector_of(px, py)). O(n + candidates); for ATM_ASSERT
  /// and the halo unit tests, not for hot paths.
  [[nodiscard]] bool covers(double px, double py,
                            std::span<const double> xs,
                            std::span<const double> ys) const;

 private:
  [[nodiscard]] int col_of(double x) const {
    const double c = (x - min_x_) * inv_cell_x_;
    if (c <= 0.0) return 0;
    const int ci = static_cast<int>(c);
    return ci >= axis_ ? axis_ - 1 : ci;
  }
  [[nodiscard]] int row_of(double y) const {
    const double r = (y - min_y_) * inv_cell_y_;
    if (r <= 0.0) return 0;
    const int ri = static_cast<int>(r);
    return ri >= axis_ ? axis_ - 1 : ri;
  }

  double min_x_ = 0.0, min_y_ = 0.0;
  double inv_cell_x_ = 0.0, inv_cell_y_ = 0.0;
  double reach_ = 0.0;
  int axis_ = 1;
  std::vector<std::int32_t> owner_;        ///< Per input index; -1 masked out.
  std::vector<std::int32_t> owned_start_;  ///< CSR offsets, sectors + 1.
  std::vector<std::int32_t> owned_ids_;
  std::vector<std::int32_t> cand_start_;   ///< CSR offsets, sectors + 1.
  std::vector<std::int32_t> cand_ids_;
  std::vector<std::int32_t> cursor_;       ///< Build scratch.
};

}  // namespace atm::core::spatial
