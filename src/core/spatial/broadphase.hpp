// Broadphase selection for the candidate-pruning spatial indexes.
//
// The ATM hot paths (Task 1 correlation, Tasks 2+3 collision detection)
// are all-pairs scans at heart; a broadphase index prunes the candidate
// set *without changing any outcome*: every index in this directory
// guarantees a superset of the exact matches, and the caller re-applies
// the exact test (bounding-box membership, altitude gate, Batcher pair
// test) to every candidate. Only the work counters (tests executed,
// candidates enumerated) may differ between modes.
#pragma once

#include <optional>
#include <string_view>

namespace atm::core::spatial {

/// How a task enumerates its candidate set.
enum class BroadphaseMode {
  /// Scan everything against everything (the paper's algorithm).
  kBruteForce,
  /// Prune candidates through the uniform grid / swept index.
  kGrid,
};

/// Stable short name: "brute" | "grid".
[[nodiscard]] std::string_view to_string(BroadphaseMode mode);

/// Parse "brute" / "brute-force" / "grid" (case-sensitive). Empty optional
/// on anything else.
[[nodiscard]] std::optional<BroadphaseMode> parse_broadphase(
    std::string_view name);

}  // namespace atm::core::spatial
