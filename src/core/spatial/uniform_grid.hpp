// A rebuildable uniform grid over 2-D points, CSR-packed for cache-friendly
// cell walks.
//
// Task 1 correlation uses one of these per bounding-box pass: eligible
// aircraft expected positions are binned by cell, and each radar return
// queries only the cells overlapping its (doubling) correlation box
// instead of scanning the whole flight table.
//
// Exactness contract: `for_each_in_box` enumerates a *superset* of the
// inserted points inside the box (cell granularity; out-of-bounds
// coordinates are clamped into the edge cells), and enumerates every
// inserted id at most once (each point lives in exactly one cell). The
// caller must re-apply its exact membership test to every candidate, so
// outcomes never depend on the grid geometry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace atm::core::spatial {

class UniformGrid2D {
 public:
  /// Rebuild the grid from points (xs[i], ys[i]) for every i with
  /// mask[i] != 0 (an empty mask inserts all points). Bounds are taken
  /// from the inserted points. `cell_hint_nm` is the preferred cell edge (nm)
  /// length (the caller's query box width is a good choice: a query then
  /// touches at most 4 cells); it is enlarged as needed to keep the grid
  /// within `max_cells_per_axis` cells per axis.
  ///
  /// Buffers are reused across builds; rebuilding every pass is O(n +
  /// cells).
  void build(std::span<const double> xs, std::span<const double> ys,
             std::span<const std::uint8_t> mask, double cell_hint_nm,
             int max_cells_per_axis = 128);

  [[nodiscard]] bool empty() const { return ids_.empty(); }
  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int rows() const { return rows_; }

  /// Visit every inserted id whose cell intersects the closed box
  /// [x0, x1] x [y0, y1]. Each id is visited at most once.
  template <typename Fn>
  void for_each_in_box(double x0, double x1, double y0, double y1,
                       Fn&& fn) const {
    if (ids_.empty()) return;
    const int cx0 = col_of(x0);
    const int cx1 = col_of(x1);
    const int cy0 = row_of(y0);
    const int cy1 = row_of(y1);
    for (int cy = cy0; cy <= cy1; ++cy) {
      for (int cx = cx0; cx <= cx1; ++cx) {
        const std::size_t cell =
            static_cast<std::size_t>(cy) * static_cast<std::size_t>(cols_) +
            static_cast<std::size_t>(cx);
        for (std::int32_t k = cell_start_[cell]; k < cell_start_[cell + 1];
             ++k) {
          fn(static_cast<std::size_t>(ids_[static_cast<std::size_t>(k)]));
        }
      }
    }
  }

 private:
  /// Column of x, clamped into [0, cols-1] (out-of-bounds queries and
  /// points land in the edge cells; the caller's exact test rejects any
  /// false candidates this produces).
  [[nodiscard]] int col_of(double x) const {
    const double c = (x - min_x_) * inv_cell_;
    if (c <= 0.0) return 0;
    const int ci = static_cast<int>(c);
    return ci >= cols_ ? cols_ - 1 : ci;
  }
  [[nodiscard]] int row_of(double y) const {
    const double r = (y - min_y_) * inv_cell_;
    if (r <= 0.0) return 0;
    const int ri = static_cast<int>(r);
    return ri >= rows_ ? rows_ - 1 : ri;
  }

  double min_x_ = 0.0;
  double min_y_ = 0.0;
  double inv_cell_ = 0.0;
  int cols_ = 0;
  int rows_ = 0;
  std::vector<std::int32_t> cell_start_;  ///< CSR offsets, cols*rows + 1.
  std::vector<std::int32_t> ids_;         ///< Inserted ids, grouped by cell.
  std::vector<std::int32_t> cursor_;      ///< Build scratch.
};

}  // namespace atm::core::spatial
