#include "src/core/spatial/broadphase.hpp"

namespace atm::core::spatial {

std::string_view to_string(BroadphaseMode mode) {
  switch (mode) {
    case BroadphaseMode::kBruteForce:
      return "brute";
    case BroadphaseMode::kGrid:
      return "grid";
  }
  return "?";
}

std::optional<BroadphaseMode> parse_broadphase(std::string_view name) {
  if (name == "brute" || name == "brute-force" || name == "bruteforce") {
    return BroadphaseMode::kBruteForce;
  }
  if (name == "grid") return BroadphaseMode::kGrid;
  return std::nullopt;
}

}  // namespace atm::core::spatial
