#include "src/core/spatial/sectors.hpp"

#include <algorithm>
#include <cmath>

#include "src/core/check.hpp"

namespace atm::core::spatial {

std::string_view to_string(ShardMode mode) {
  switch (mode) {
    case ShardMode::kNone:
      return "none";
    case ShardMode::kSectors:
      return "sectors";
  }
  return "?";
}

std::optional<ShardMode> parse_shard_mode(std::string_view name) {
  if (name == "none") return ShardMode::kNone;
  if (name == "sectors") return ShardMode::kSectors;
  return std::nullopt;
}

void SectorPartition::build(std::span<const double> xs,
                            std::span<const double> ys,
                            std::span<const std::uint8_t> mask,
                            double halo_reach_nm, int sectors_per_axis) {
  const std::size_t n = xs.size();
  ATM_CHECK_MSG(ys.size() == n && (mask.empty() || mask.size() == n),
                "mismatched spans: xs=" << n << " ys=" << ys.size()
                                        << " mask=" << mask.size());
  ATM_CHECK_MSG(sectors_per_axis >= 1 && std::isfinite(halo_reach_nm) &&
                    halo_reach_nm >= 0.0,
                "degenerate partition params: sectors_per_axis="
                    << sectors_per_axis << " halo_reach_nm="
                    << halo_reach_nm);
  axis_ = sectors_per_axis;
  reach_ = halo_reach_nm;

  const auto inserted = [&](std::size_t i) {
    return mask.empty() || mask[i] != 0;
  };

  owner_.assign(n, -1);
  const std::size_t sectors = sector_count();
  owned_start_.assign(sectors + 1, 0);
  cand_start_.assign(sectors + 1, 0);
  owned_ids_.clear();
  cand_ids_.clear();

  // Bounds from the inserted points (clamping makes any query valid).
  bool any = false;
  double min_x = 0.0, max_x = 0.0, min_y = 0.0, max_y = 0.0;
  std::size_t masked_in = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!inserted(i)) continue;
    ++masked_in;
    if (!any) {
      min_x = max_x = xs[i];
      min_y = max_y = ys[i];
      any = true;
      continue;
    }
    min_x = std::min(min_x, xs[i]);
    max_x = std::max(max_x, xs[i]);
    min_y = std::min(min_y, ys[i]);
    max_y = std::max(max_y, ys[i]);
  }
  min_x_ = min_x;
  min_y_ = min_y;
  if (!any) {
    inv_cell_x_ = inv_cell_y_ = 0.0;
    return;
  }
  const double span_x = max_x - min_x;
  const double span_y = max_y - min_y;
  inv_cell_x_ = span_x > 0.0 ? static_cast<double>(axis_) / span_x : 0.0;
  inv_cell_y_ = span_y > 0.0 ? static_cast<double>(axis_) / span_y : 0.0;

  // Count pass: one owner per point, one candidate entry per sector whose
  // rectangle lies within `reach` per axis (computed through the same
  // clamped cell map the queries use, so coverage is by construction).
  for (std::size_t i = 0; i < n; ++i) {
    if (!inserted(i)) continue;
    const int oc = col_of(xs[i]);
    const int orow = row_of(ys[i]);
    owner_[i] = orow * axis_ + oc;
    ++owned_start_[static_cast<std::size_t>(owner_[i]) + 1];
    const int c0 = col_of(xs[i] - reach_);
    const int c1 = col_of(xs[i] + reach_);
    const int r0 = row_of(ys[i] - reach_);
    const int r1 = row_of(ys[i] + reach_);
    // Contract: the halo range always covers the owner sector (clamped
    // cell maps are monotone); a violation means the geometry is corrupt
    // and per-sector scans would silently drop pairs.
    ATM_CHECK_MSG(c0 <= oc && oc <= c1 && r0 <= orow && orow <= r1,
                  "halo range lost the owner sector: i=" << i << " owner=("
                      << oc << "," << orow << ") cols=[" << c0 << "," << c1
                      << "] rows=[" << r0 << "," << r1 << "]");
    for (int r = r0; r <= r1; ++r) {
      for (int c = c0; c <= c1; ++c) {
        ++cand_start_[static_cast<std::size_t>(r * axis_ + c) + 1];
      }
    }
  }
  for (std::size_t s = 0; s < sectors; ++s) {
    owned_start_[s + 1] += owned_start_[s];
    cand_start_[s + 1] += cand_start_[s];
  }
  owned_ids_.resize(static_cast<std::size_t>(owned_start_[sectors]));
  cand_ids_.resize(static_cast<std::size_t>(cand_start_[sectors]));

  // Fill pass.
  cursor_.assign(owned_start_.begin(), owned_start_.end() - 1);
  std::vector<std::int32_t>& owned_cursor = cursor_;
  for (std::size_t i = 0; i < n; ++i) {
    if (owner_[i] < 0) continue;
    const auto s = static_cast<std::size_t>(owner_[i]);
    owned_ids_[static_cast<std::size_t>(owned_cursor[s]++)] =
        static_cast<std::int32_t>(i);
  }
  cursor_.assign(cand_start_.begin(), cand_start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (owner_[i] < 0) continue;
    const int c0 = col_of(xs[i] - reach_);
    const int c1 = col_of(xs[i] + reach_);
    const int r0 = row_of(ys[i] - reach_);
    const int r1 = row_of(ys[i] + reach_);
    for (int r = r0; r <= r1; ++r) {
      for (int c = c0; c <= c1; ++c) {
        const auto s = static_cast<std::size_t>(r * axis_ + c);
        cand_ids_[static_cast<std::size_t>(cursor_[s]++)] =
            static_cast<std::int32_t>(i);
      }
    }
  }

  // Contract: every inserted point landed in exactly one owner list and
  // both CSR fills consumed exactly their counted slots.
  ATM_CHECK_MSG(owned_ids_.size() == masked_in,
                "owner lists lost aircraft: owned=" << owned_ids_.size()
                                                    << " inserted="
                                                    << masked_in);
  for (std::size_t s = 0; s < sectors; ++s) {
    ATM_CHECK_MSG(cursor_[s] == cand_start_[s + 1],
                  "candidate CSR fill diverged in sector " << s);
  }
}

bool SectorPartition::covers(double px, double py,
                             std::span<const double> xs,
                             std::span<const double> ys) const {
  const auto s = static_cast<std::size_t>(sector_of(px, py));
  std::vector<std::uint8_t> in_cand(owner_.size(), 0);
  for (const std::int32_t id : candidates(s)) {
    in_cand[static_cast<std::size_t>(id)] = 1;
  }
  for (std::size_t q = 0; q < owner_.size(); ++q) {
    if (owner_[q] < 0) continue;
    if (std::fabs(xs[q] - px) <= reach_ && std::fabs(ys[q] - py) <= reach_ &&
        !in_cand[q]) {
      return false;
    }
  }
  return true;
}

}  // namespace atm::core::spatial
