#include "src/core/spatial/swept_index.hpp"

#include <algorithm>
#include <cmath>

#include "src/core/check.hpp"

namespace atm::core::spatial {

void SweptIndex::build(std::span<const double> x, std::span<const double> y,
                       std::span<const double> dx, std::span<const double> dy,
                       std::span<const double> alt,
                       const SweptIndexParams& params) {
  const std::size_t n = x.size();
  ATM_CHECK_MSG(y.size() == n && dx.size() == n && dy.size() == n &&
                    alt.size() == n,
                "span length mismatch: x=" << n << " y=" << y.size()
                                           << " dx=" << dx.size() << " dy="
                                           << dy.size() << " alt="
                                           << alt.size());
  ATM_CHECK_MSG(params.band_nm >= 0.0 && params.horizon_periods >= 0.0,
                "negative sweep: band_nm=" << params.band_nm
                                           << " horizon_periods="
                                           << params.horizon_periods);
  band_ = params.band_nm;
  horizon_ = params.horizon_periods;
  if (n == 0) {
    ids_.clear();
    cell_start_.assign(1, 0);
    cols_ = rows_ = slabs_ = 0;
    max_speed_ = 0.0;
    return;
  }

  double min_x = x[0], max_x = x[0], min_y = y[0], max_y = y[0];
  double min_alt = alt[0], max_alt = alt[0];
  double speed_sum = 0.0;
  max_speed_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    min_x = std::min(min_x, x[i]);
    max_x = std::max(max_x, x[i]);
    min_y = std::min(min_y, y[i]);
    max_y = std::max(max_y, y[i]);
    min_alt = std::min(min_alt, alt[i]);
    max_alt = std::max(max_alt, alt[i]);
    const double speed = std::sqrt(dx[i] * dx[i] + dy[i] * dy[i]);
    speed_sum += speed;
    max_speed_ = std::max(max_speed_, speed);
  }
  min_x_ = min_x;
  min_y_ = min_y;
  min_alt_ = min_alt;

  // Altitude slabs, one gate-width tall. A non-positive gate degenerates
  // to a single slab (no altitude pruning, still exact).
  if (params.altitude_gate_feet > 0.0) {
    inv_slab_ = 1.0 / params.altitude_gate_feet;
    slabs_ = std::max(
        1, static_cast<int>((max_alt - min_alt) * inv_slab_) + 1);
  } else {
    inv_slab_ = 0.0;
    slabs_ = 1;
  }

  // xy cells sized to the *typical* query radius, so a typical query
  // touches O(1) cells; when the sweep saturates the field the grid
  // collapses to 1x1 and the slabs carry all the pruning.
  const double extent = std::max(max_x - min_x, max_y - min_y);
  const double mean_speed = speed_sum / static_cast<double>(n);
  const double typical_reach =
      band_ + (mean_speed + max_speed_) * horizon_;
  const int max_cells = std::max(1, params.max_cells_per_axis);
  double cell = std::max(typical_reach,
                         extent / static_cast<double>(max_cells));
  cell = std::max(cell, 1e-9);
  inv_cell_ = 1.0 / cell;
  cols_ = std::max(1, static_cast<int>((max_x - min_x) * inv_cell_) + 1);
  rows_ = std::max(1, static_cast<int>((max_y - min_y) * inv_cell_) + 1);

  // Slab-bounds contract: the highest altitude (and the farthest xy
  // corner) must clamp into the top bucket, or cell_of below indexes past
  // the CSR table.
  ATM_CHECK_MSG(slab_of(max_alt) < slabs_ && col_of(max_x) < cols_ &&
                    row_of(max_y) < rows_,
                "clamp overflow: slabs=" << slabs_ << " cols=" << cols_
                                         << " rows=" << rows_
                                         << " max_alt=" << max_alt);
  const std::size_t cells = static_cast<std::size_t>(slabs_) *
                            static_cast<std::size_t>(cols_) *
                            static_cast<std::size_t>(rows_);
  const std::size_t slab_stride =
      static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  const auto cell_of = [&](std::size_t i) {
    return static_cast<std::size_t>(slab_of(alt[i])) * slab_stride +
           static_cast<std::size_t>(row_of(y[i])) *
               static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(col_of(x[i]));
  };

  cell_start_.assign(cells + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++cell_start_[cell_of(i) + 1];
  for (std::size_t c = 0; c < cells; ++c) {
    cell_start_[c + 1] += cell_start_[c];
  }
  cursor_.assign(cell_start_.begin(), cell_start_.end() - 1);
  ids_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids_[static_cast<std::size_t>(cursor_[cell_of(i)]++)] =
        static_cast<std::int32_t>(i);
  }
  ATM_CHECK_MSG(static_cast<std::size_t>(cell_start_[cells]) == n,
                "CSR total " << cell_start_[cells] << " != aircraft " << n);
}

}  // namespace atm::core::spatial
