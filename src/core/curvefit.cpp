#include "src/core/curvefit.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace atm::core {
namespace {

/// Solve the dense linear system A x = b in place with partial pivoting.
/// A is n x n in row-major order. Throws on a (numerically) singular
/// system, which for our Vandermonde normal equations means duplicate or
/// degenerate abscissae.
std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b,
                                        std::size_t n) {
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: pick the row with the largest magnitude in `col`.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row * n + col]) > std::fabs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    if (std::fabs(a[pivot * n + col]) < 1e-12) {
      throw std::domain_error(
          "curvefit: singular normal equations (degenerate x values)");
    }
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) {
        std::swap(a[col * n + k], a[pivot * n + k]);
      }
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / a[col * n + col];
      for (std::size_t k = col; k < n; ++k) {
        a[row * n + k] -= factor * a[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= a[i * n + k] * x[k];
    x[i] = acc / a[i * n + i];
  }
  return x;
}

GoodnessOfFit compute_gof(std::span<const double> xs,
                          std::span<const double> ys, const PolyFit& fit) {
  GoodnessOfFit gof;
  const std::size_t n = xs.size();
  double mean_y = 0.0;
  for (double y : ys) mean_y += y;
  mean_y /= static_cast<double>(n);

  double sst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double resid = ys[i] - fit.eval(xs[i]);
    gof.sse += resid * resid;
    const double dev = ys[i] - mean_y;
    sst += dev * dev;
  }
  const double dof =
      static_cast<double>(n) - static_cast<double>(fit.coeffs.size());
  gof.r2 = sst > 0.0 ? 1.0 - gof.sse / sst : 1.0;
  // MATLAB: adjusted R^2 = 1 - (SSE/(n-m)) / (SST/(n-1)).
  if (dof > 0.0 && sst > 0.0) {
    gof.adj_r2 =
        1.0 - (gof.sse / dof) / (sst / (static_cast<double>(n) - 1.0));
  } else {
    gof.adj_r2 = gof.r2;
  }
  gof.rmse = dof > 0.0 ? std::sqrt(gof.sse / dof) : 0.0;
  return gof;
}

}  // namespace

double PolyFit::eval(double x) const {
  double acc = 0.0;
  for (std::size_t k = coeffs.size(); k-- > 0;) {
    acc = acc * x + coeffs[k];
  }
  return acc;
}

std::string PolyFit::to_string() const {
  std::string out = "y =";
  bool first = true;
  for (std::size_t k = coeffs.size(); k-- > 0;) {
    char buf[64];
    if (k >= 2) {
      std::snprintf(buf, sizeof buf, " %s%.6g*x^%zu", first ? "" : "+ ",
                    coeffs[k], k);
    } else if (k == 1) {
      std::snprintf(buf, sizeof buf, " %s%.6g*x", first ? "" : "+ ",
                    coeffs[k]);
    } else {
      std::snprintf(buf, sizeof buf, " %s%.6g", first ? "" : "+ ",
                    coeffs[k]);
    }
    out += buf;
    first = false;
  }
  return out;
}

PolyFit fit_polynomial(std::span<const double> xs, std::span<const double> ys,
                       int degree) {
  if (degree < 0) throw std::invalid_argument("curvefit: negative degree");
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("curvefit: xs and ys size mismatch");
  }
  const auto m = static_cast<std::size_t>(degree) + 1;
  if (xs.size() < m) {
    throw std::invalid_argument("curvefit: not enough points for degree");
  }

  // Normal equations: (V^T V) c = V^T y where V is the Vandermonde matrix.
  // Accumulate moments sum(x^k) for k in [0, 2*degree] and sum(y * x^k).
  std::vector<double> moments(2 * m - 1, 0.0);
  std::vector<double> rhs(m, 0.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double xp = 1.0;
    for (std::size_t k = 0; k < moments.size(); ++k) {
      moments[k] += xp;
      if (k < m) rhs[k] += ys[i] * xp;
      xp *= xs[i];
    }
  }
  std::vector<double> a(m * m);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) a[r * m + c] = moments[r + c];
  }

  PolyFit fit;
  fit.coeffs = solve_linear_system(std::move(a), std::move(rhs), m);
  fit.gof = compute_gof(xs, ys, fit);
  return fit;
}

PolyFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  return fit_polynomial(xs, ys, 1);
}

PolyFit fit_quadratic(std::span<const double> xs,
                      std::span<const double> ys) {
  return fit_polynomial(xs, ys, 2);
}

std::string CurveShapeReport::classification() const {
  if (!quadratic_preferred) return "linear";
  if (quad_to_linear_coeff_ratio < 1e-3) {
    return "quadratic (very small coefficient; near-linear)";
  }
  return "quadratic";
}

CurveShapeReport analyze_curve_shape(std::span<const double> xs,
                                     std::span<const double> ys) {
  CurveShapeReport report;
  report.linear = fit_linear(xs, ys);
  report.quadratic = fit_quadratic(xs, ys);
  report.quadratic_preferred =
      report.quadratic.gof.adj_r2 > report.linear.gof.adj_r2;
  const double lin_coeff = std::fabs(report.quadratic.coeffs[1]);
  const double quad_coeff = std::fabs(report.quadratic.coeffs[2]);
  report.quad_to_linear_coeff_ratio =
      lin_coeff > 0.0 ? quad_coeff / lin_coeff : 0.0;
  return report;
}

}  // namespace atm::core
