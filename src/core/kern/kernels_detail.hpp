// Internal declarations of the per-implementation kernel entry points.
// Only kernels.cpp (the dispatcher) and the implementation TUs include
// this; everyone else goes through src/core/kern/kernels.hpp.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/core/kern/kernels.hpp"

namespace atm::core::kern::detail {

std::size_t box_test_batch_scalar(const double* ex, const double* ey,
                                  std::size_t n,
                                  const std::uint8_t* eligible, double cx,
                                  double cy, double half_nm,
                                  std::int32_t* out_hits);

std::size_t box_test_batch_indexed_scalar(const double* ex,
                                          const double* ey,
                                          const std::int32_t* idx,
                                          std::size_t m, double cx,
                                          double cy, double half_nm,
                                          std::int32_t* out_hits);

void band_intersect_batch_scalar(const SoaView& view,
                                 const std::int32_t* idx, std::size_t m,
                                 double xi, double yi, double alti,
                                 double vxi, double vyi,
                                 const BandParams& params, double* out_tmin,
                                 std::uint8_t* out_flags);

#if defined(ATM_HOST_SIMD_AVX2)
std::size_t box_test_batch_avx2(const double* ex, const double* ey,
                                std::size_t n,
                                const std::uint8_t* eligible, double cx,
                                double cy, double half_nm,
                                std::int32_t* out_hits,
                                std::uint64_t* lanes_masked);

std::size_t box_test_batch_indexed_avx2(const double* ex, const double* ey,
                                        const std::int32_t* idx,
                                        std::size_t m, double cx, double cy,
                                        double half_nm,
                                        std::int32_t* out_hits,
                                        std::uint64_t* lanes_masked);

void band_intersect_batch_avx2(const SoaView& view, const std::int32_t* idx,
                               std::size_t m, double xi, double yi,
                               double alti, double vxi, double vyi,
                               const BandParams& params, double* out_tmin,
                               std::uint8_t* out_flags,
                               std::uint64_t* lanes_masked);
#endif  // ATM_HOST_SIMD_AVX2

}  // namespace atm::core::kern::detail
