// Canonical scalar form of the Batcher band-intersection math (paper
// Section 5.2, Equations 1-6) and the altitude proximity gate.
//
// This header is the single source of truth for the inner predicates:
// src/atm/batcher.{hpp,cpp} delegates here, the scalar batch kernel
// (kernels_scalar.cpp) calls these functions per element, and the AVX2
// kernel (kernels_avx2.cpp) replicates exactly these operations in
// 4-wide double lanes — same operation order, same IEEE rounding, and
// min/max operand ordering chosen to match std::min/std::max NaN and
// signed-zero behaviour — so every implementation is bit-identical on
// every input, including NaN/denormal radar noise.
//
// On the time-x graph (paper Fig. 3) each aircraft is a line x(t) with an
// error band of +-1.5 nm; two aircraft can collide in x while the bands
// overlap, i.e. while |dx(t)| <= 3 nm where dx(t) is their relative x
// separation. The same holds in y. The pair is on a collision course when
// the x-overlap window and the y-overlap window intersect in the future:
// time_min = max of the entry times, time_max = min of the exit times,
// and a conflict exists iff time_min < time_max (Equations 5-6), both
// clipped to [0, horizon].
#pragma once

#include <algorithm>
#include <cmath>

#include "src/core/check.hpp"

namespace atm::core::kern {

/// Relative velocities below this (nm/period) are treated as parallel
/// tracks. 1e-9 nm/period = 7.2e-6 knots: far below any physical closure.
inline constexpr double kParallelEps = 1e-9;

/// Time interval (in periods) during which two bands overlap on one axis.
struct AxisWindow {
  double entry = 0.0;   ///< First time the bands overlap.
  double exit = 0.0;    ///< Last time the bands overlap.
  bool always = false;  ///< Bands overlap at all times (parallel & close).
  bool never = false;   ///< Bands never overlap (parallel & apart).
};

/// Overlap window of |p + v t| <= band (one axis). `p` is the current
/// relative separation (nm), `v` the relative velocity (nm/period).
[[nodiscard]] inline AxisWindow axis_band_window(double p, double v,
                                                 double band_nm) {
  AxisWindow w;
  if (std::fabs(v) < kParallelEps) {
    if (std::fabs(p) <= band_nm) {
      w.always = true;
    } else {
      w.never = true;
    }
    return w;
  }
  const double t1 = (-band_nm - p) / v;
  const double t2 = (band_nm - p) / v;
  w.entry = std::min(t1, t2);
  w.exit = std::max(t1, t2);
  return w;
}

/// Result of the pair test: conflict flag and the window [time_min,
/// time_max] clipped to [0, horizon].
struct PairWindow {
  bool conflict = false;
  double time_min = 0.0;
  double time_max = 0.0;
};

/// Full Batcher pair test on relative position (px, py) and relative
/// velocity (vx, vy), with total band width `band_nm` and look-ahead
/// `horizon_periods`.
[[nodiscard]] inline PairWindow pair_band_test(double px, double py,
                                               double vx, double vy,
                                               double band_nm,
                                               double horizon_periods) {
  PairWindow out;

  // Equations 1-6 precondition: a non-positive band_nm or
  // horizon_periods makes every window empty and Tasks 2+3 report zero
  // conflicts — a silently useless sweep, not an error any caller wants.
  ATM_CHECK_MSG(band_nm > 0.0 && horizon_periods > 0.0,
                "degenerate Batcher params: band_nm="
                    << band_nm << " horizon_periods=" << horizon_periods);

  const AxisWindow wx = axis_band_window(px, vx, band_nm);
  const AxisWindow wy = axis_band_window(py, vy, band_nm);
  if (wx.never || wy.never) return out;

  // Equations 5-6: largest entry, smallest exit; an "always" axis
  // contributes (-inf, +inf) and drops out of the max/min.
  double entry = 0.0;
  double exit = horizon_periods;
  if (!wx.always) {
    entry = std::max(entry, wx.entry);
    exit = std::min(exit, wx.exit);
  }
  if (!wy.always) {
    entry = std::max(entry, wy.entry);
    exit = std::min(exit, wy.exit);
  }

  if (entry < exit) {
    out.conflict = true;
    out.time_min = entry;
    out.time_max = exit;
  }
  return out;
}

/// Altitude proximity gate of Algorithm 2 line 3: pairs further apart
/// than `gate_feet` vertically are not in conflict.
[[nodiscard]] inline bool altitude_gate_pass(double alt_a, double alt_b,
                                             double gate_feet) {
  const double d = alt_a - alt_b;
  return (d < 0 ? -d : d) < gate_feet;
}

}  // namespace atm::core::kern
