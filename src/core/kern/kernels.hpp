// Unified batch-kernel API for the host hot paths.
//
// One narrow seam replaces the four copies of inner-loop math that used
// to live in reference/MIMD/sharded Task 1 and Tasks 2+3:
//
//  * box_test_batch / box_test_batch_indexed — Task 1 correlation: which
//    candidates fall inside a radar's retry-doubled box. Hits are written
//    as candidate ids in enumeration order, so callers replay the exact
//    per-hit updates (nhits/hit_id/coverage) the scalar loop performed.
//  * band_intersect_batch — Tasks 2+3: the altitude gate plus Batcher's
//    time-x/time-y band intersection (Equations 1-6, band_math.hpp) over
//    a candidate list. Pure per-lane predicates (gate-pass flag, conflict
//    flag, conflict entry time); all decision logic (soonest-partner
//    tie-breaks, critical early exit, every work counter) stays with the
//    caller, consuming lanes in candidate order.
//
// Each kernel has a portable scalar implementation and an AVX2 one
// (4-wide double lanes, masked tails), selected at runtime: the scalar
// path delegates per element to the canonical band_math.hpp functions,
// and the AVX2 path replicates those operations bit-exactly (IEEE ops
// with matched rounding and min/max operand order), so outcomes are
// bit-identical across {scalar, avx2} on every input — including NaN and
// denormal radar noise — and identical to the pre-kernel scalar loops.
//
// Dispatch: the AVX2 translation unit exists only when the build enables
// ATM_HOST_SIMD on x86-64 (CMake compiles kernels_avx2.cpp with -mavx2
// and defines ATM_HOST_SIMD_AVX2); at runtime resolve() additionally
// cpuid-gates on AVX2 support, so a binary built with the option runs
// correctly on any host. This header is also the plug point for future
// lane widths (ISPC/NEON/AVX-512): add a Kernel enumerator and an
// implementation TU, nothing above this seam changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/core/kern/soa_snapshot.hpp"

namespace atm::core::kern {

/// Double lanes per AVX2 register; the tail-masking granularity.
inline constexpr std::size_t kLanes = 4;

/// A concrete kernel implementation.
enum class Kernel : std::uint8_t {
  kScalar = 0,  ///< Portable, delegates to band_math.hpp per element.
  kAvx2 = 1,    ///< 4-wide double AVX2, bit-identical to kScalar.
};

/// Config-surface request: what the caller wants dispatched.
enum class KernelMode : std::uint8_t {
  kAuto = 0,    ///< Best available: AVX2 when compiled in + cpuid says so.
  kScalar = 1,  ///< Force the portable path.
  kAvx2 = 2,    ///< Request AVX2; falls back to scalar when unavailable.
};

/// True when the AVX2 kernels are compiled into this binary AND the CPU
/// we are running on reports AVX2 (cpuid, cached after the first call).
[[nodiscard]] bool avx2_available();

/// Resolve a request to the kernel that will actually run. kAvx2 without
/// AVX2 availability degrades to kScalar (outcomes are identical by
/// contract, so the fallback is silent by design).
[[nodiscard]] Kernel resolve(KernelMode mode);

[[nodiscard]] std::string_view to_string(Kernel kernel);
[[nodiscard]] std::string_view to_string(KernelMode mode);

/// Parse "auto" | "scalar" | "avx2" into a mode. Returns false (leaving
/// `out` untouched) for anything else.
[[nodiscard]] bool kernel_mode_from_string(std::string_view name,
                                           KernelMode& out);

// ---------------------------------------------------------------------------
// Task 1: bounding-box membership.

/// Contiguous box test over candidates [0, n): a hit is a candidate with
/// |ex[i] - cx| < half_nm and |ey[i] - cy| < half_nm whose `eligible`
/// byte is non-zero (a null `eligible` means everyone is eligible). Hit
/// ids are written to `out_hits` (capacity >= n) in ascending order —
/// exactly the order the scalar loop visited them. Returns the hit
/// count. `lanes_masked`, when non-null, accumulates the number of
/// masked-off tail lanes this call processed (0 for the scalar kernel).
std::size_t box_test_batch(Kernel kernel, const double* ex,
                           const double* ey, std::size_t n,
                           const std::uint8_t* eligible, double cx,
                           double cy, double half_nm,
                           std::int32_t* out_hits,
                           std::uint64_t* lanes_masked);

/// Indexed variant for broadphase candidate lists: tests ex[idx[k]],
/// ey[idx[k]] for k in [0, m) and writes the *idx values* of the hits to
/// `out_hits` (capacity >= m) in list order. The candidate list is
/// assumed pre-filtered for eligibility (grids are built over eligible
/// entries), matching the scalar grid path.
std::size_t box_test_batch_indexed(Kernel kernel, const double* ex,
                                   const double* ey,
                                   const std::int32_t* idx, std::size_t m,
                                   double cx, double cy, double half_nm,
                                   std::int32_t* out_hits,
                                   std::uint64_t* lanes_masked);

// ---------------------------------------------------------------------------
// Tasks 2+3: altitude gate + Batcher band intersection.

/// Per-lane result flags of band_intersect_batch.
inline constexpr std::uint8_t kBandGatePass = 1u;  ///< Altitude gate passed.
inline constexpr std::uint8_t kBandConflict = 2u;  ///< Conflict in horizon.

/// The parameter bundle the band kernel needs (a subset of Task23Params,
/// kept free of src/atm types to preserve the core -> atm layering).
struct BandParams {
  double band_nm = 0.0;
  double horizon_periods = 0.0;
  double altitude_gate_feet = 0.0;
};

/// Batch pair test of one focus aircraft (position xi/yi, altitude alti,
/// velocity vxi/vyi) against m candidates from `view`: candidate k is
/// slot idx[k] when `idx` is non-null, else slot k. For each k writes
///   out_flags[k] — kBandGatePass / kBandConflict bits;
///   out_tmin[k]  — the conflict entry time when kBandConflict is set,
///                  +0.0 otherwise.
/// Both output buffers need capacity >= m. The kernel never excludes the
/// focus aircraft itself — self-skip (like every counter) is caller
/// decision logic. `lanes_masked` as in box_test_batch.
void band_intersect_batch(Kernel kernel, const SoaView& view,
                          const std::int32_t* idx, std::size_t m,
                          double xi, double yi, double alti, double vxi,
                          double vyi, const BandParams& params,
                          double* out_tmin, std::uint8_t* out_flags,
                          std::uint64_t* lanes_masked);

}  // namespace atm::core::kern
