// AVX2 kernel implementations: 4-wide double lanes, masked tails.
//
// Bit-exactness contract (the kern_equivalence tests enforce this on
// every scenario and on adversarial NaN/denormal inputs): every lane
// computes exactly the operations of the scalar path in band_math.hpp,
// in the same order, with the same IEEE-754 rounding —
//
//  * add/sub/div/compare are correctly-rounded in both scalar and vector
//    form, so (-band - p) / v etc. produce identical bits;
//  * fabs is the sign-bit mask (identical to std::fabs bit behaviour);
//  * std::min(a, b)/std::max(a, b) return `a` when the lanes compare
//    unordered (NaN) or equal (signed zeros); VMINPD/VMAXPD return their
//    *second* operand in those cases, so every emulation below swaps the
//    operands: std::min(a, b) == _mm256_min_pd(b, a);
//  * no FMA contraction: the kernels contain no mul+add chains, and this
//    TU is compiled with -mavx2 only (no -mfma).
//
// Parallel-track lanes (|v| < kParallelEps) blend their axis window to
// (-inf, +inf), which drops out of the entry/exit max/min exactly like
// the scalar "always" skip; parallel-and-apart lanes force the conflict
// flag off, like the scalar "never" early return. Division by a tiny v
// may produce inf/NaN in such lanes — those values are fully blended or
// masked away and never reach an output.
//
// Tail handling: the last n % 4 candidates load through maskload (or a
// first-index-padded gather for the indexed variants); result bits are
// masked to the live lanes before any hit is emitted or flag stored, and
// the number of dead lanes is reported through `lanes_masked`.
#include <immintrin.h>

#include <bit>
#include <cstring>
#include <limits>

#include "src/core/check.hpp"
#include "src/core/kern/band_math.hpp"
#include "src/core/kern/kernels_detail.hpp"

namespace atm::core::kern::detail {

namespace {

/// Load masks for 1..4 live lanes: tail_mask(rem) has the top bit set in
/// the first `rem` 64-bit elements.
alignas(32) constexpr std::int64_t kTailMaskTable[8] = {-1, -1, -1, -1,
                                                        0,  0,  0,  0};

inline __m256i tail_mask(std::size_t rem) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
      kTailMaskTable + (kLanes - rem)));
}

inline __m256d abs_pd(__m256d v) {
  const __m256d sign_clear = _mm256_castsi256_pd(
      _mm256_set1_epi64x(0x7fffffffffffffffLL));
  return _mm256_and_pd(v, sign_clear);
}

/// Lane bits (movemask) restricted to the first `rem` lanes.
inline unsigned live_bits(int movemask, std::size_t rem) {
  return static_cast<unsigned>(movemask) & ((1u << rem) - 1u);
}

}  // namespace

std::size_t box_test_batch_avx2(const double* ex, const double* ey,
                                std::size_t n,
                                const std::uint8_t* eligible, double cx,
                                double cy, double half_nm,
                                std::int32_t* out_hits,
                                std::uint64_t* lanes_masked) {
  const __m256d vcx = _mm256_set1_pd(cx);
  const __m256d vcy = _mm256_set1_pd(cy);
  const __m256d vhalf = _mm256_set1_pd(half_nm);
  std::size_t hits = 0;

  // The vector test is the pure box predicate; eligibility filters at
  // emission (hit sets are identical — the predicate is a conjunction).
  const auto emit = [&](unsigned bits, std::size_t base) {
    while (bits != 0) {
      const auto lane = static_cast<unsigned>(std::countr_zero(bits));
      bits &= bits - 1u;
      const std::size_t id = base + lane;
      if (eligible == nullptr || eligible[id] != 0) {
        out_hits[hits++] = static_cast<std::int32_t>(id);
      }
    }
  };

  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(ex + i), vcx);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ey + i), vcy);
    const __m256d in =
        _mm256_and_pd(_mm256_cmp_pd(abs_pd(dx), vhalf, _CMP_LT_OQ),
                      _mm256_cmp_pd(abs_pd(dy), vhalf, _CMP_LT_OQ));
    emit(static_cast<unsigned>(_mm256_movemask_pd(in)), i);
  }
  if (i < n) {
    const std::size_t rem = n - i;
    const __m256i mask = tail_mask(rem);
    const __m256d dx =
        _mm256_sub_pd(_mm256_maskload_pd(ex + i, mask), vcx);
    const __m256d dy =
        _mm256_sub_pd(_mm256_maskload_pd(ey + i, mask), vcy);
    const __m256d in =
        _mm256_and_pd(_mm256_cmp_pd(abs_pd(dx), vhalf, _CMP_LT_OQ),
                      _mm256_cmp_pd(abs_pd(dy), vhalf, _CMP_LT_OQ));
    emit(live_bits(_mm256_movemask_pd(in), rem), i);
    if (lanes_masked != nullptr) *lanes_masked += kLanes - rem;
  }
  return hits;
}

std::size_t box_test_batch_indexed_avx2(const double* ex, const double* ey,
                                        const std::int32_t* idx,
                                        std::size_t m, double cx, double cy,
                                        double half_nm,
                                        std::int32_t* out_hits,
                                        std::uint64_t* lanes_masked) {
  const __m256d vcx = _mm256_set1_pd(cx);
  const __m256d vcy = _mm256_set1_pd(cy);
  const __m256d vhalf = _mm256_set1_pd(half_nm);
  std::size_t hits = 0;

  const auto emit = [&](unsigned bits, std::size_t base) {
    while (bits != 0) {
      const auto lane = static_cast<unsigned>(std::countr_zero(bits));
      bits &= bits - 1u;
      out_hits[hits++] = idx[base + lane];
    }
  };

  std::size_t k = 0;
  for (; k + kLanes <= m; k += kLanes) {
    const __m128i vidx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(idx + k));
    const __m256d dx =
        _mm256_sub_pd(_mm256_i32gather_pd(ex, vidx, 8), vcx);
    const __m256d dy =
        _mm256_sub_pd(_mm256_i32gather_pd(ey, vidx, 8), vcy);
    const __m256d in =
        _mm256_and_pd(_mm256_cmp_pd(abs_pd(dx), vhalf, _CMP_LT_OQ),
                      _mm256_cmp_pd(abs_pd(dy), vhalf, _CMP_LT_OQ));
    emit(static_cast<unsigned>(_mm256_movemask_pd(in)), k);
  }
  if (k < m) {
    const std::size_t rem = m - k;
    // Dead lanes gather idx[k] again — a valid address whose result is
    // masked off below.
    std::int32_t padded[kLanes];
    for (std::size_t j = 0; j < kLanes; ++j) {
      padded[j] = idx[k + (j < rem ? j : 0)];
    }
    const __m128i vidx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(padded));
    const __m256d dx =
        _mm256_sub_pd(_mm256_i32gather_pd(ex, vidx, 8), vcx);
    const __m256d dy =
        _mm256_sub_pd(_mm256_i32gather_pd(ey, vidx, 8), vcy);
    const __m256d in =
        _mm256_and_pd(_mm256_cmp_pd(abs_pd(dx), vhalf, _CMP_LT_OQ),
                      _mm256_cmp_pd(abs_pd(dy), vhalf, _CMP_LT_OQ));
    emit(live_bits(_mm256_movemask_pd(in), rem), k);
    if (lanes_masked != nullptr) *lanes_masked += kLanes - rem;
  }
  return hits;
}

void band_intersect_batch_avx2(const SoaView& view, const std::int32_t* idx,
                               std::size_t m, double xi, double yi,
                               double alti, double vxi, double vyi,
                               const BandParams& params, double* out_tmin,
                               std::uint8_t* out_flags,
                               std::uint64_t* lanes_masked) {
  ATM_CHECK_MSG(params.band_nm > 0.0 && params.horizon_periods > 0.0,
                "degenerate Batcher params: band_nm="
                    << params.band_nm
                    << " horizon_periods=" << params.horizon_periods);

  const __m256d vxi4 = _mm256_set1_pd(xi);
  const __m256d vyi4 = _mm256_set1_pd(yi);
  const __m256d valti = _mm256_set1_pd(alti);
  const __m256d vvxi = _mm256_set1_pd(vxi);
  const __m256d vvyi = _mm256_set1_pd(vyi);
  const __m256d vband = _mm256_set1_pd(params.band_nm);
  const __m256d vnegband = _mm256_set1_pd(-params.band_nm);
  const __m256d vhorizon = _mm256_set1_pd(params.horizon_periods);
  const __m256d vgate = _mm256_set1_pd(params.altitude_gate_feet);
  const __m256d veps = _mm256_set1_pd(kParallelEps);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vneginf =
      _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  const __m256d vposinf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());

  // One axis of Equations 1-4: window of |p + v t| <= band. Returns the
  // (entry, exit) lanes with parallel lanes blended to (-inf, +inf), and
  // fills `never` (parallel and outside the band).
  const auto axis_window = [&](__m256d p, __m256d v, __m256d& entry,
                               __m256d& exit, __m256d& never) {
    const __m256d t1 = _mm256_div_pd(_mm256_sub_pd(vnegband, p), v);
    const __m256d t2 = _mm256_div_pd(_mm256_sub_pd(vband, p), v);
    entry = _mm256_min_pd(t2, t1);  // == std::min(t1, t2)
    exit = _mm256_max_pd(t2, t1);   // == std::max(t1, t2)
    const __m256d parallel = _mm256_cmp_pd(abs_pd(v), veps, _CMP_LT_OQ);
    const __m256d inband = _mm256_cmp_pd(abs_pd(p), vband, _CMP_LE_OQ);
    never = _mm256_andnot_pd(inband, parallel);
    entry = _mm256_blendv_pd(entry, vneginf, parallel);
    exit = _mm256_blendv_pd(exit, vposinf, parallel);
  };

  // Compute 4 candidate lanes; writes tmin lanes and returns the
  // (gate, conflict) movemasks packed as low/high nibbles of one int.
  const auto process = [&](__m256d x4, __m256d y4, __m256d dx4, __m256d dy4,
                           __m256d alt4, __m256d& tmin) -> unsigned {
    const __m256d dalt = abs_pd(_mm256_sub_pd(valti, alt4));
    const __m256d gate = _mm256_cmp_pd(dalt, vgate, _CMP_LT_OQ);

    const __m256d px = _mm256_sub_pd(x4, vxi4);
    const __m256d py = _mm256_sub_pd(y4, vyi4);
    const __m256d vx = _mm256_sub_pd(dx4, vvxi);
    const __m256d vy = _mm256_sub_pd(dy4, vvyi);

    __m256d entry_x, exit_x, never_x, entry_y, exit_y, never_y;
    axis_window(px, vx, entry_x, exit_x, never_x);
    axis_window(py, vy, entry_y, exit_y, never_y);

    // Equations 5-6 accumulation; operand order emulates
    // std::max(acc, w) == _mm256_max_pd(w, acc) (NaN/tie -> acc).
    __m256d entry = _mm256_max_pd(entry_x, vzero);
    entry = _mm256_max_pd(entry_y, entry);
    __m256d exit = _mm256_min_pd(exit_x, vhorizon);
    exit = _mm256_min_pd(exit_y, exit);

    __m256d conflict = _mm256_cmp_pd(entry, exit, _CMP_LT_OQ);
    conflict = _mm256_andnot_pd(never_x, conflict);
    conflict = _mm256_andnot_pd(never_y, conflict);
    conflict = _mm256_and_pd(conflict, gate);

    tmin = _mm256_and_pd(entry, conflict);  // +0.0 in non-conflict lanes
    const auto gate_bits = static_cast<unsigned>(_mm256_movemask_pd(gate));
    const auto conf_bits =
        static_cast<unsigned>(_mm256_movemask_pd(conflict));
    return gate_bits | (conf_bits << kLanes);
  };

  const auto flags_of = [](unsigned packed, unsigned lane) -> std::uint8_t {
    std::uint8_t f = 0;
    if ((packed >> lane) & 1u) f |= kBandGatePass;
    if ((packed >> (lane + kLanes)) & 1u) f |= kBandConflict;
    return f;
  };

  std::size_t k = 0;
  for (; k + kLanes <= m; k += kLanes) {
    __m256d x4, y4, dx4, dy4, alt4;
    if (idx != nullptr) {
      const __m128i vidx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k));
      x4 = _mm256_i32gather_pd(view.x, vidx, 8);
      y4 = _mm256_i32gather_pd(view.y, vidx, 8);
      dx4 = _mm256_i32gather_pd(view.dx, vidx, 8);
      dy4 = _mm256_i32gather_pd(view.dy, vidx, 8);
      alt4 = _mm256_i32gather_pd(view.alt, vidx, 8);
    } else {
      x4 = _mm256_loadu_pd(view.x + k);
      y4 = _mm256_loadu_pd(view.y + k);
      dx4 = _mm256_loadu_pd(view.dx + k);
      dy4 = _mm256_loadu_pd(view.dy + k);
      alt4 = _mm256_loadu_pd(view.alt + k);
    }
    __m256d tmin;
    const unsigned packed = process(x4, y4, dx4, dy4, alt4, tmin);
    _mm256_storeu_pd(out_tmin + k, tmin);
    for (unsigned lane = 0; lane < kLanes; ++lane) {
      out_flags[k + lane] = flags_of(packed, lane);
    }
  }
  if (k < m) {
    const std::size_t rem = m - k;
    __m256d x4, y4, dx4, dy4, alt4;
    if (idx != nullptr) {
      std::int32_t padded[kLanes];
      for (std::size_t j = 0; j < kLanes; ++j) {
        padded[j] = idx[k + (j < rem ? j : 0)];
      }
      const __m128i vidx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(padded));
      x4 = _mm256_i32gather_pd(view.x, vidx, 8);
      y4 = _mm256_i32gather_pd(view.y, vidx, 8);
      dx4 = _mm256_i32gather_pd(view.dx, vidx, 8);
      dy4 = _mm256_i32gather_pd(view.dy, vidx, 8);
      alt4 = _mm256_i32gather_pd(view.alt, vidx, 8);
    } else {
      const __m256i mask = tail_mask(rem);
      x4 = _mm256_maskload_pd(view.x + k, mask);
      y4 = _mm256_maskload_pd(view.y + k, mask);
      dx4 = _mm256_maskload_pd(view.dx + k, mask);
      dy4 = _mm256_maskload_pd(view.dy + k, mask);
      alt4 = _mm256_maskload_pd(view.alt + k, mask);
    }
    __m256d tmin;
    const unsigned packed = process(x4, y4, dx4, dy4, alt4, tmin);
    alignas(32) double tmp[kLanes];
    _mm256_store_pd(tmp, tmin);
    for (std::size_t lane = 0; lane < rem; ++lane) {
      out_tmin[k + lane] = tmp[lane];
      out_flags[k + lane] = flags_of(packed, static_cast<unsigned>(lane));
    }
    if (lanes_masked != nullptr) *lanes_masked += kLanes - rem;
  }
}

}  // namespace atm::core::kern::detail
