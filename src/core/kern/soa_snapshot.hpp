// Structure-of-arrays snapshot of per-aircraft motion state, in the
// layout the batch kernels (src/core/kern/kernels.hpp) consume.
//
// The host hot paths historically read the flight table field-by-field
// through whatever container the caller owned; the kernel layer instead
// takes contiguous, 32-byte-aligned double arrays gathered once per run
// (positions, velocities, and altitudes never change between gather and
// commit — see the snapshot semantics notes in
// src/atm/reference/collision.hpp). The kernels themselves only require
// contiguity (they use unaligned vector loads, and indexed variants
// gather), so alignment is a throughput property, not a correctness
// precondition; the AlignedVector storage here guarantees it anyway so
// every full-width lane load of a snapshot is a single aligned fetch.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace atm::core::kern {

/// Alignment of every kernel-facing array: one AVX2 register (32 bytes).
inline constexpr std::size_t kKernelAlignment = 32;

/// Minimal C++17 allocator handing out storage aligned to `Alignment`.
/// std::vector's default allocator only guarantees alignof(double) = 8.
template <typename T, std::size_t Alignment>
class AlignedAllocator {
  static_assert(Alignment >= alignof(T) &&
                    (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two covering alignof(T)");

 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) = default;
};

/// A std::vector whose data() is 32-byte aligned (kernel lane width).
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, kKernelAlignment>>;

/// Non-owning pointer view over SoA motion-state arrays. `alt` may be
/// null for callers that only run the box kernels; the band kernel
/// requires all five arrays.
struct SoaView {
  const double* x = nullptr;
  const double* y = nullptr;
  const double* dx = nullptr;
  const double* dy = nullptr;
  const double* alt = nullptr;
  std::size_t n = 0;
};

/// Owning SoA snapshot of positions, velocities, and altitudes, gathered
/// once per task run from any db-like source exposing x/y/dx/dy/alt
/// sequences (airfield::FlightDb, or a sector's candidate subset).
struct SoaSnapshot {
  AlignedVector<double> x, y, dx, dy, alt;

  [[nodiscard]] std::size_t size() const { return x.size(); }

  /// Copy the full table. O(n) per run against the O(n^2) scans that
  /// consume it; the copy also pins snapshot semantics — commits to the
  /// source mid-run cannot leak into in-flight scans.
  template <typename Db>
  void gather(const Db& db) {
    x.assign(db.x.begin(), db.x.end());
    y.assign(db.y.begin(), db.y.end());
    dx.assign(db.dx.begin(), db.dx.end());
    dy.assign(db.dy.begin(), db.dy.end());
    alt.assign(db.alt.begin(), db.alt.end());
  }

  [[nodiscard]] SoaView view() const {
    return {x.data(), y.data(), dx.data(), dy.data(), alt.data(), x.size()};
  }
};

}  // namespace atm::core::kern
