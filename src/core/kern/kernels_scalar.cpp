// Portable scalar kernel implementations. Each function is the straight-
// line form of the loop it replaced in the host paths, delegating the
// math to the canonical band_math.hpp functions — so the scalar kernel
// is bit-identical to the pre-kernel code by construction, and serves as
// the oracle the AVX2 implementation is tested against.
#include <cmath>

#include "src/core/kern/band_math.hpp"
#include "src/core/kern/kernels_detail.hpp"

namespace atm::core::kern::detail {

std::size_t box_test_batch_scalar(const double* ex, const double* ey,
                                  std::size_t n,
                                  const std::uint8_t* eligible, double cx,
                                  double cy, double half_nm,
                                  std::int32_t* out_hits) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (eligible != nullptr && eligible[i] == 0) continue;
    if (std::fabs(ex[i] - cx) < half_nm && std::fabs(ey[i] - cy) < half_nm) {
      out_hits[hits++] = static_cast<std::int32_t>(i);
    }
  }
  return hits;
}

std::size_t box_test_batch_indexed_scalar(const double* ex,
                                          const double* ey,
                                          const std::int32_t* idx,
                                          std::size_t m, double cx,
                                          double cy, double half_nm,
                                          std::int32_t* out_hits) {
  std::size_t hits = 0;
  for (std::size_t k = 0; k < m; ++k) {
    const auto i = static_cast<std::size_t>(idx[k]);
    if (std::fabs(ex[i] - cx) < half_nm && std::fabs(ey[i] - cy) < half_nm) {
      out_hits[hits++] = idx[k];
    }
  }
  return hits;
}

void band_intersect_batch_scalar(const SoaView& view,
                                 const std::int32_t* idx, std::size_t m,
                                 double xi, double yi, double alti,
                                 double vxi, double vyi,
                                 const BandParams& params, double* out_tmin,
                                 std::uint8_t* out_flags) {
  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t j =
        idx != nullptr ? static_cast<std::size_t>(idx[k]) : k;
    double tmin = 0.0;
    std::uint8_t flags = 0;
    if (altitude_gate_pass(alti, view.alt[j], params.altitude_gate_feet)) {
      flags |= kBandGatePass;
      const PairWindow pw = pair_band_test(
          view.x[j] - xi, view.y[j] - yi, view.dx[j] - vxi,
          view.dy[j] - vyi, params.band_nm, params.horizon_periods);
      if (pw.conflict) {
        flags |= kBandConflict;
        tmin = pw.time_min;
      }
    }
    out_tmin[k] = tmin;
    out_flags[k] = flags;
  }
}

}  // namespace atm::core::kern::detail
