// Kernel dispatch: runtime cpuid gating plus name round-trips for the
// config surface (--kernel flags, trace events, bench tables).
#include "src/core/kern/kernels.hpp"

#include "src/core/check.hpp"
#include "src/core/kern/kernels_detail.hpp"

namespace atm::core::kern {

bool avx2_available() {
#if defined(ATM_HOST_SIMD_AVX2)
  // __builtin_cpu_supports probes cpuid once and caches inside libgcc /
  // compiler-rt; the static localizes the probe anyway.
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
#else
  return false;
#endif
}

Kernel resolve(KernelMode mode) {
  switch (mode) {
    case KernelMode::kScalar:
      return Kernel::kScalar;
    case KernelMode::kAvx2:
    case KernelMode::kAuto:
      break;
  }
  return avx2_available() ? Kernel::kAvx2 : Kernel::kScalar;
}

std::string_view to_string(Kernel kernel) {
  switch (kernel) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kAvx2:
      return "avx2";
  }
  return "?";
}

std::string_view to_string(KernelMode mode) {
  switch (mode) {
    case KernelMode::kAuto:
      return "auto";
    case KernelMode::kScalar:
      return "scalar";
    case KernelMode::kAvx2:
      return "avx2";
  }
  return "?";
}

bool kernel_mode_from_string(std::string_view name, KernelMode& out) {
  if (name == "auto") {
    out = KernelMode::kAuto;
  } else if (name == "scalar") {
    out = KernelMode::kScalar;
  } else if (name == "avx2") {
    out = KernelMode::kAvx2;
  } else {
    return false;
  }
  return true;
}

namespace {

/// A Kernel value must already be resolved against availability; kAvx2
/// reaching a scalar-only binary is a dispatch bug, not a fallback.
void check_resolved(Kernel kernel) {
  ATM_CHECK_MSG(kernel == Kernel::kScalar || avx2_available(),
                "unresolved kernel request: avx2 selected but unavailable "
                "(route requests through kern::resolve)");
}

}  // namespace

std::size_t box_test_batch(Kernel kernel, const double* ex,
                           const double* ey, std::size_t n,
                           const std::uint8_t* eligible, double cx,
                           double cy, double half_nm,
                           std::int32_t* out_hits,
                           std::uint64_t* lanes_masked) {
  check_resolved(kernel);
#if defined(ATM_HOST_SIMD_AVX2)
  if (kernel == Kernel::kAvx2) {
    return detail::box_test_batch_avx2(ex, ey, n, eligible, cx, cy,
                                       half_nm, out_hits, lanes_masked);
  }
#endif
  return detail::box_test_batch_scalar(ex, ey, n, eligible, cx, cy,
                                       half_nm, out_hits);
}

std::size_t box_test_batch_indexed(Kernel kernel, const double* ex,
                                   const double* ey,
                                   const std::int32_t* idx, std::size_t m,
                                   double cx, double cy, double half_nm,
                                   std::int32_t* out_hits,
                                   std::uint64_t* lanes_masked) {
  check_resolved(kernel);
#if defined(ATM_HOST_SIMD_AVX2)
  if (kernel == Kernel::kAvx2) {
    return detail::box_test_batch_indexed_avx2(
        ex, ey, idx, m, cx, cy, half_nm, out_hits, lanes_masked);
  }
#endif
  return detail::box_test_batch_indexed_scalar(ex, ey, idx, m, cx, cy,
                                               half_nm, out_hits);
}

void band_intersect_batch(Kernel kernel, const SoaView& view,
                          const std::int32_t* idx, std::size_t m,
                          double xi, double yi, double alti, double vxi,
                          double vyi, const BandParams& params,
                          double* out_tmin, std::uint8_t* out_flags,
                          std::uint64_t* lanes_masked) {
  check_resolved(kernel);
#if defined(ATM_HOST_SIMD_AVX2)
  if (kernel == Kernel::kAvx2) {
    detail::band_intersect_batch_avx2(view, idx, m, xi, yi, alti, vxi,
                                      vyi, params, out_tmin, out_flags,
                                      lanes_masked);
    return;
  }
#endif
  detail::band_intersect_batch_scalar(view, idx, m, xi, yi, alti, vxi,
                                      vyi, params, out_tmin, out_flags);
}

}  // namespace atm::core::kern
