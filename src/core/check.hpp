// Runtime contract checks for the ATM reproduction.
//
// The paper's claims are timing claims, and a timing number harvested from
// a corrupted run is worse than a crash: it looks like evidence. These
// macros make the invariant-dense hot paths (grid clamping, correlation
// box doubling, Batcher preconditions, deadline accounting) fail loudly
// and immediately instead of silently skewing results.
//
//  * ATM_CHECK(cond)            — always on, in every build type. On
//    failure prints the expression and file:line to stderr and aborts.
//  * ATM_CHECK_MSG(cond, ctx)   — ATM_CHECK plus formatted context; `ctx`
//    is an ostream chain ("half=" << half << " pass=" << pass) evaluated
//    only on failure.
//  * ATM_ASSERT(cond)           — debug-only (compiles to nothing under
//    NDEBUG, without evaluating `cond`). For O(n) or per-candidate checks
//    too expensive for release hot loops.
//  * ATM_ASSERT_MSG(cond, ctx)  — ATM_ASSERT with context.
//
// Policy (docs/STATIC_ANALYSIS.md): ATM_CHECK guards cheap, load-bearing
// invariants whose violation corrupts reported results; ATM_ASSERT guards
// expensive redundancy (full-array postconditions). Neither replaces
// error handling for conditions a caller can legitimately trigger —
// those keep throwing.
#pragma once

#include <sstream>
#include <string>

namespace atm::core::detail {

/// Print "<kind> failed: <expr>\n  at <file>:<line>\n  context: <msg>" to
/// stderr and abort(). Out-of-line so the macro's failure arm stays cold.
[[noreturn]] void check_failed(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& msg);

}  // namespace atm::core::detail

#define ATM_CHECK(cond)                                                 \
  do {                                                                  \
    if (!(cond)) [[unlikely]] {                                         \
      ::atm::core::detail::check_failed("ATM_CHECK", #cond, __FILE__,   \
                                        __LINE__, std::string{});       \
    }                                                                   \
  } while (false)

#define ATM_CHECK_MSG(cond, ctx)                                        \
  do {                                                                  \
    if (!(cond)) [[unlikely]] {                                         \
      std::ostringstream atm_check_ctx_;                                \
      atm_check_ctx_ << ctx; /* NOLINT(bugprone-macro-parentheses): stream chain */   \
      ::atm::core::detail::check_failed("ATM_CHECK", #cond, __FILE__,   \
                                        __LINE__, atm_check_ctx_.str());\
    }                                                                   \
  } while (false)

#ifdef NDEBUG
// Compiles out entirely: `cond` and `ctx` are not evaluated (they sit in
// an unevaluated sizeof context so typos still fail to compile).
#define ATM_ASSERT(cond) \
  static_cast<void>(sizeof(static_cast<bool>(cond)))
#define ATM_ASSERT_MSG(cond, ctx) \
  static_cast<void>(sizeof(static_cast<bool>(cond)))
#else
#define ATM_ASSERT(cond)                                                \
  do {                                                                  \
    if (!(cond)) [[unlikely]] {                                         \
      ::atm::core::detail::check_failed("ATM_ASSERT", #cond, __FILE__,  \
                                        __LINE__, std::string{});       \
    }                                                                   \
  } while (false)
#define ATM_ASSERT_MSG(cond, ctx)                                       \
  do {                                                                  \
    if (!(cond)) [[unlikely]] {                                         \
      std::ostringstream atm_check_ctx_;                                \
      atm_check_ctx_ << ctx; /* NOLINT(bugprone-macro-parentheses): stream chain */   \
      ::atm::core::detail::check_failed("ATM_ASSERT", #cond, __FILE__,  \
                                        __LINE__, atm_check_ctx_.str());\
    }                                                                   \
  } while (false)
#endif
