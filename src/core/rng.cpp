#include "src/core/rng.hpp"

// Header-only implementation; this translation unit exists so the library
// target has a stable archive member and to hold the static_asserts below.

namespace atm::core {
namespace {

// Known-answer sanity checks evaluated at compile time: the first SplitMix64
// output for seed 0 is the published reference value.
constexpr std::uint64_t first_splitmix(std::uint64_t seed) {
  SplitMix64 sm(seed);
  return sm.next();
}
static_assert(first_splitmix(0) == 0xE220A8397B1DCDAFULL,
              "SplitMix64 does not match the reference sequence");

}  // namespace
}  // namespace atm::core
