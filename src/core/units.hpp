// Units and simulation-wide constants for the ATM reproduction.
//
// The paper (Section 3 and 4) fixes the airfield geometry and the real-time
// schedule used by the Goodyear STARAN demonstration: a 256 nm x 256 nm
// bounding area, an 8 second "major cycle" split into 16 half-second
// periods, Task 1 every period, and Tasks 2+3 once per major cycle.
//
// We keep all positions in nautical miles and all simulation time in
// *periods* (one period = 0.5 s). SetupFlight (Section 4.1) generates
// velocities in nm/hour and divides them by 7200 to convert to nm/period;
// collision times produced by Batcher's algorithm (Equations 1-6) are in
// periods as well.
#pragma once

#include <cstdint>

namespace atm::core {

/// Length of one scheduling period in seconds (the paper's half-second).
inline constexpr double kPeriodSeconds = 0.5;

/// Number of half-second periods in one 8-second major cycle.
inline constexpr int kPeriodsPerMajorCycle = 16;

/// Length of one major cycle in seconds.
inline constexpr double kMajorCycleSeconds =
    kPeriodSeconds * kPeriodsPerMajorCycle;

/// Half-extent of the simulated airfield: aircraft live in
/// [-kGridHalfExtentNm, +kGridHalfExtentNm]^2 (a 256 nm x 256 nm field;
/// SetupFlight draws initial coordinates from [-125, 125]).
inline constexpr double kGridHalfExtentNm = 128.0;

/// SetupFlight's initial-position half-extent (Section 4.1: "Random values
/// are selected between 0 and 128" then sign-flipped, aircraft satisfy
/// -125 <= x, y <= 125"). We honor the 128 draw; the 125 bound in the text
/// is the same grid described conservatively.
inline constexpr double kSetupPositionMaxNm = 128.0;

/// Speed range for SetupFlight, in nautical miles per hour (knots).
inline constexpr double kMinSpeedKnots = 30.0;
inline constexpr double kMaxSpeedKnots = 600.0;

/// nm/hour -> nm/period conversion divisor (Section 4.1: "dx is converted
/// from nautical miles per hour to nautical miles per period by dividing it
/// by 7200"). 3600 s/hour / 0.5 s/period = 7200 periods/hour.
inline constexpr double kPeriodsPerHour = 7200.0;

/// Collision look-ahead horizon: 20 minutes expressed in periods.
inline constexpr double kLookAheadPeriods = 20.0 * 60.0 / kPeriodSeconds;

/// "Safe" collision time: Batcher times below this are critical and force
/// a course change (Section 5.2: "300 is considered a safe number").
inline constexpr double kCriticalTimePeriods = 300.0;

/// Total bounding-band width used by Batcher's equations (Section 5.2:
/// "The constant value 3 ... means we add 1.5 to x for the upper bound and
/// subtract 1.5 from x for the lower bound").
inline constexpr double kBatcherBandNm = 3.0;

/// Initial tracking-correlation bounding box is 1 x 1 nm, i.e. +-0.5 nm
/// around the expected position (Section 5.1).
inline constexpr double kCorrelationBoxHalfNm = 0.5;

/// Number of bounding-box doubling retries in Task 1 (Section 5.1 performs
/// exactly two extra passes: 2 x 2 nm then 4 x 4 nm).
inline constexpr int kCorrelationRetries = 2;

/// Altitude proximity gate for collision detection (Algorithm 2, line 3:
/// "within 1000 feet of each other").
inline constexpr double kAltitudeGateFeet = 1000.0;

/// Altitude range assigned by SetupFlight, in feet. The paper only says the
/// altitude "will also be selected randomly"; commercial airspace spans
/// roughly 0-40000 ft.
inline constexpr double kMinAltitudeFeet = 1000.0;
inline constexpr double kMaxAltitudeFeet = 40000.0;

/// Collision-resolution turn step and limit in degrees (Section 5.3:
/// rotate 5 degrees per attempt, alternating sides, up to 30).
inline constexpr double kResolveStepDegrees = 5.0;
inline constexpr double kResolveMaxDegrees = 30.0;

/// Threads per block used by the paper's CUDA configuration (Section 6.1:
/// "the limit on threads per block remains 96").
inline constexpr int kPaperThreadsPerBlock = 96;

/// Seconds in one hour, for unit conversions.
inline constexpr double kSecondsPerHour = 3600.0;

/// Convert a count of periods to seconds.
[[nodiscard]] constexpr double periods_to_seconds(double periods) {
  return periods * kPeriodSeconds;
}

/// Convert seconds to a count of periods.
[[nodiscard]] constexpr double seconds_to_periods(double seconds) {
  return seconds / kPeriodSeconds;
}

/// Convert a speed in knots (nm/hour) to nm/period.
[[nodiscard]] constexpr double knots_to_nm_per_period(double knots) {
  return knots / kPeriodsPerHour;
}

/// Convert a velocity in nm/period back to knots.
[[nodiscard]] constexpr double nm_per_period_to_knots(double nm_per_period) {
  return nm_per_period * kPeriodsPerHour;
}

}  // namespace atm::core
