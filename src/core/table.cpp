#include "src/core/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace atm::core {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::begin_row() { rows_.emplace_back(); }

void TextTable::add_cell(std::string value) {
  if (rows_.empty()) begin_row();
  rows_.back().push_back(std::move(value));
}

void TextTable::add_cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  add_cell(std::string(buf));
}

void TextTable::add_cell(long long value) {
  add_cell(std::to_string(value));
}

void TextTable::add_cell(std::size_t value) {
  add_cell(std::to_string(value));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << cell;
      if (c + 1 < widths.size()) {
        out << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    out << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool TextTable::write_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << to_csv();
  return static_cast<bool>(file);
}

std::string format_ms(double ms) {
  char buf[64];
  if (ms < 1.0) {
    std::snprintf(buf, sizeof buf, "%.1f us", ms * 1000.0);
  } else if (ms < 1000.0) {
    std::snprintf(buf, sizeof buf, "%.3f ms", ms);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", ms / 1000.0);
  }
  return std::string(buf);
}

}  // namespace atm::core
