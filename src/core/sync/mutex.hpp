// The repo's annotated synchronization primitives: thin wrappers over
// std::mutex / std::unique_lock carrying the Clang Thread Safety
// Analysis attributes from annotated.hpp. Everything outside
// src/core/sync/ must lock through these (lint rule `sync-wrapper`):
// a raw std::mutex is invisible to the analysis, so a field guarded by
// one can be touched lock-free without any tool noticing until a
// schedule exposes the race.
//
// This file is the only place allowed to name the raw standard types,
// and the only place where ATM_NO_THREAD_SAFETY_ANALYSIS may appear —
// the wrappers are the trusted computing base the analysis assumes
// correct, exactly like Abseil's mutex.h.
#pragma once

#include <mutex>

#include "src/core/sync/annotated.hpp"

namespace atm::sync {

/// An exclusive capability over std::mutex. Default-constructible and
/// pinned in place (no copy/move), so `std::vector<Mutex>(n)` works for
/// striped-lock arrays the same way `std::vector<std::mutex>` does.
class ATM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ATM_ACQUIRE() { m_.lock(); }
  void unlock() ATM_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() ATM_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

  /// The underlying std::mutex, for std::condition_variable waits (see
  /// MutexLock::native_handle()). Waiting releases and reacquires the
  /// mutex invisibly to the analysis; that is sound here for the same
  /// reason it is for Abseil's CondVar — the capability is held at
  /// every guarded access on both sides of the wait.
  [[nodiscard]] std::mutex& native_handle() { return m_; }

 private:
  std::mutex m_;
};

/// RAII scoped lock over Mutex — the annotated replacement for both
/// std::lock_guard and std::unique_lock. Internally a
/// std::unique_lock so condition variables can wait on it via
/// native_handle(); the capability is considered held for the whole
/// scope (waits included, see Mutex::native_handle()).
class ATM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ATM_ACQUIRE(mu) : lock_(mu.native_handle()) {}
  ~MutexLock() ATM_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For `cv.wait(lock.native_handle())` / the predicate overloads.
  [[nodiscard]] std::unique_lock<std::mutex>& native_handle() {
    return lock_;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace atm::sync
