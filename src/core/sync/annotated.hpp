// Clang Thread Safety Analysis annotation macros — layer 5 of the
// static-analysis stack (docs/STATIC_ANALYSIS.md).
//
// TSan (layer 1) only catches races the schedule happens to expose at
// run time; these attributes let Clang prove lock discipline at compile
// time, the approach Abseil and LLVM use on their own concurrency code.
// Every ATM_* macro expands to the corresponding
// `__attribute__((...))` under Clang and to nothing elsewhere, so GCC
// builds are untouched (the default CI job, built with GCC and
// -Werror, is the regression test that they really do compile away).
//
// The analysis runs when `ATM_THREAD_SAFETY=ON` adds `-Wthread-safety
// -Wthread-safety-beta` (promoted to errors) to every library under
// src/ — see the CMake option in the top-level CMakeLists.txt and the
// negative-compile tests under tests/static/ that pin down each rule
// the analysis enforces.
//
// Cheat-sheet (full reference:
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//   ATM_CAPABILITY("mutex")      class is a lockable capability
//   ATM_SCOPED_CAPABILITY        RAII class acquiring in ctor, releasing
//                                in dtor
//   ATM_GUARDED_BY(mu)           field may only be touched holding mu
//   ATM_PT_GUARDED_BY(mu)        pointee may only be touched holding mu
//   ATM_REQUIRES(mu)             caller must already hold mu
//   ATM_ACQUIRE(mu...) / ATM_RELEASE(mu...)   function takes / drops mu
//   ATM_TRY_ACQUIRE(true, mu)    returns `true` iff mu was taken
//   ATM_EXCLUDES(mu)             caller must NOT hold mu (deadlock guard)
//   ATM_NO_THREAD_SAFETY_ANALYSIS  opt a function out (forbidden outside
//                                src/core/sync/ — lint + acceptance gate)
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define ATM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ATM_THREAD_ANNOTATION_(x)  // not Clang: annotations compile away
#endif

#define ATM_CAPABILITY(x) ATM_THREAD_ANNOTATION_(capability(x))

#define ATM_SCOPED_CAPABILITY ATM_THREAD_ANNOTATION_(scoped_lockable)

#define ATM_GUARDED_BY(x) ATM_THREAD_ANNOTATION_(guarded_by(x))

#define ATM_PT_GUARDED_BY(x) ATM_THREAD_ANNOTATION_(pt_guarded_by(x))

#define ATM_ACQUIRED_BEFORE(...) \
  ATM_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

#define ATM_ACQUIRED_AFTER(...) \
  ATM_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define ATM_REQUIRES(...) \
  ATM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define ATM_REQUIRES_SHARED(...) \
  ATM_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define ATM_ACQUIRE(...) \
  ATM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define ATM_ACQUIRE_SHARED(...) \
  ATM_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

#define ATM_RELEASE(...) \
  ATM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define ATM_RELEASE_SHARED(...) \
  ATM_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define ATM_TRY_ACQUIRE(...) \
  ATM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define ATM_TRY_ACQUIRE_SHARED(...) \
  ATM_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

#define ATM_EXCLUDES(...) ATM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define ATM_ASSERT_CAPABILITY(x) ATM_THREAD_ANNOTATION_(assert_capability(x))

#define ATM_RETURN_CAPABILITY(x) ATM_THREAD_ANNOTATION_(lock_returned(x))

#define ATM_NO_THREAD_SAFETY_ANALYSIS \
  ATM_THREAD_ANNOTATION_(no_thread_safety_analysis)
