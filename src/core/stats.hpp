// Streaming descriptive statistics used by the timing harnesses.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace atm::core {

/// Welford-style streaming accumulator: mean/variance/min/max without
/// storing samples. Numerically stable for long runs.
class StreamingStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const StreamingStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of a sample set (linear interpolation between order
/// statistics, the "exclusive" convention). `p` in [0, 100].
[[nodiscard]] double percentile(std::span<const double> sorted, double p);

/// Convenience: copy, sort, and take a percentile.
[[nodiscard]] double percentile_of(std::vector<double> samples, double p);

}  // namespace atm::core
