// Aligned plain-text tables for the benchmark harnesses.
//
// Every figure-reproduction bench prints its series as a table; keeping the
// formatting in one place makes the outputs uniform and greppable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace atm::core {

/// A simple column-aligned text table. Cells are strings; numeric helpers
/// format with fixed precision.
class TextTable {
 public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Begin a new row; subsequent add_cell calls fill it left to right.
  void begin_row();
  void add_cell(std::string value);
  void add_cell(double value, int precision = 4);
  void add_cell(long long value);
  void add_cell(std::size_t value);

  /// Number of completed + in-progress rows.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render with padded columns, a header underline, and two-space gutters.
  [[nodiscard]] std::string to_string() const;

  /// Render as RFC-4180-ish CSV (quotes around cells containing commas,
  /// quotes, or newlines), header row first. For piping bench output into
  /// plotting tools.
  [[nodiscard]] std::string to_csv() const;

  /// Write the CSV rendering to `path`. Returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a duration in milliseconds with adaptive units (us/ms/s).
[[nodiscard]] std::string format_ms(double ms);

}  // namespace atm::core
