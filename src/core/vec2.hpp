// Small 2-D vector used for aircraft positions and velocities.
#pragma once

#include <cmath>
#include <numbers>

namespace atm::core {

/// A 2-D vector in airfield coordinates (nautical miles, or nm/period for
/// velocities). Plain aggregate: cheap to copy, trivially relocatable.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  friend constexpr Vec2 operator+(Vec2 a, const Vec2& b) { return a += b; }
  friend constexpr Vec2 operator-(Vec2 a, const Vec2& b) { return a -= b; }
  friend constexpr Vec2 operator*(Vec2 a, double s) { return a *= s; }
  friend constexpr Vec2 operator*(double s, Vec2 a) { return a *= s; }
  friend constexpr bool operator==(const Vec2&, const Vec2&) = default;

  [[nodiscard]] constexpr double dot(const Vec2& o) const {
    return x * o.x + y * o.y;
  }
  [[nodiscard]] constexpr double norm2() const { return dot(*this); }
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }
};

/// Degrees -> radians.
[[nodiscard]] constexpr double deg_to_rad(double deg) {
  return deg * std::numbers::pi / 180.0;
}

/// Radians -> degrees.
[[nodiscard]] constexpr double rad_to_deg(double rad) {
  return rad * 180.0 / std::numbers::pi;
}

/// Rotate a vector counter-clockwise by `rad` radians. Used by Task 3 to
/// turn an aircraft's velocity when trialling a new, conflict-free path.
[[nodiscard]] inline Vec2 rotate(const Vec2& v, double rad) {
  const double c = std::cos(rad);
  const double s = std::sin(rad);
  return Vec2{v.x * c - v.y * s, v.x * s + v.y * c};
}

/// Rotate by an angle given in degrees (positive = counter-clockwise).
[[nodiscard]] inline Vec2 rotate_deg(const Vec2& v, double deg) {
  return rotate(v, deg_to_rad(deg));
}

/// Chebyshev (max-axis) distance between two points; bounding-box
/// membership tests in Task 1 are Chebyshev-ball tests.
[[nodiscard]] inline double chebyshev(const Vec2& a, const Vec2& b) {
  return std::max(std::fabs(a.x - b.x), std::fabs(a.y - b.y));
}

}  // namespace atm::core
