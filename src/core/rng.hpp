// Deterministic random number generation for the airfield simulation.
//
// Reproducibility is a first-class requirement here: the paper's central
// claim is that the deterministic platforms produce "the exact same timings
// again and again", and our cost models are exactly reproducible. The
// simulation inputs must therefore be exactly reproducible too, so every
// component takes an explicit seeded generator instead of touching global
// state. We use xoshiro256** (public-domain, Blackman & Vigna) seeded via
// SplitMix64, which is the recommended seeding procedure.
#pragma once

#include <array>
#include <cstdint>

namespace atm::core {

/// SplitMix64: tiny, high-quality 64-bit generator used to expand a single
/// seed into the xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the main generator. Satisfies the C++ named requirement
/// UniformRandomBitGenerator, so it also works with <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a single 64-bit seed (expanded via SplitMix64).
  explicit constexpr Rng(std::uint64_t seed = 0x5EEDDA7A5EEDDA7AULL) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive). Uses rejection-free Lemire
  /// style reduction; bias is negligible for the small ranges we use.
  constexpr std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t span = hi - lo + 1;
    return lo + next() % span;
  }

  /// Uniform int in [lo, hi] (inclusive).
  constexpr int uniform_int(int lo, int hi) {
    return lo + static_cast<int>(uniform_u64(0, static_cast<std::uint64_t>(
                                                    hi - lo)));
  }

  /// Random sign following the paper's SetupFlight procedure: draw an
  /// integer in [0, 50]; one parity flips the sign. Returns -1.0 or +1.0.
  constexpr double paper_sign(bool negative_on_even) {
    const bool even = (uniform_u64(0, 50) % 2) == 0;
    return (even == negative_on_even) ? -1.0 : 1.0;
  }

  /// Fork an independent stream (for per-subsystem determinism regardless
  /// of call interleaving elsewhere).
  constexpr Rng fork() { return Rng(next() ^ 0xA5A5A5A55A5A5A5AULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace atm::core
