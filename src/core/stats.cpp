#include "src/core/stats.hpp"

#include <algorithm>
#include <cmath>

namespace atm::core {

void StreamingStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile_of(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  return percentile(samples, p);
}

}  // namespace atm::core
