// Least-squares polynomial curve fitting with MATLAB-style goodness of fit.
//
// The paper (Section 6) inspects the nature of its timing curves with
// MATLAB's Curve Fitting Toolbox, which reports four "goodness of fit"
// values: SSE, R-square, adjusted R-square, and RMSE. This module
// reproduces exactly those four values for polynomial fits so the
// Figure 8/9 analysis can be regenerated without MATLAB.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace atm::core {

/// The four goodness-of-fit numbers MATLAB's cftool reports.
struct GoodnessOfFit {
  double sse = 0.0;    ///< Sum of squared errors (residual sum of squares).
  double r2 = 0.0;     ///< Coefficient of determination, 1 - SSE/SST.
  double adj_r2 = 0.0; ///< R-square adjusted for residual degrees of freedom.
  double rmse = 0.0;   ///< Root mean squared error, sqrt(SSE / dof).
};

/// A fitted polynomial c0 + c1*x + c2*x^2 + ... with its fit quality.
struct PolyFit {
  std::vector<double> coeffs;  ///< coeffs[k] multiplies x^k.
  GoodnessOfFit gof;

  /// Evaluate the polynomial at x (Horner's rule).
  [[nodiscard]] double eval(double x) const;

  /// Degree of the fitted polynomial (coeffs.size() - 1).
  [[nodiscard]] int degree() const {
    return static_cast<int>(coeffs.size()) - 1;
  }

  /// Human-readable form, e.g. "y = 1.2e-05*x^2 + 0.0031*x + 0.42".
  [[nodiscard]] std::string to_string() const;
};

/// Fit a polynomial of the given degree by least squares (normal equations
/// solved with partially pivoted Gaussian elimination). Requires
/// xs.size() == ys.size() and at least degree+1 points.
[[nodiscard]] PolyFit fit_polynomial(std::span<const double> xs,
                                     std::span<const double> ys, int degree);

/// Convenience wrappers matching the paper's two candidate models.
[[nodiscard]] PolyFit fit_linear(std::span<const double> xs,
                                 std::span<const double> ys);
[[nodiscard]] PolyFit fit_quadratic(std::span<const double> xs,
                                    std::span<const double> ys);

/// Result of comparing the linear and quadratic models on one data set,
/// mirroring the paper's Figure 8/9 discussion.
struct CurveShapeReport {
  PolyFit linear;
  PolyFit quadratic;
  /// True when the quadratic model's adjusted R-square beats the linear
  /// model's (MATLAB's criterion for model selection across different
  /// numbers of coefficients).
  bool quadratic_preferred = false;
  /// |quadratic coefficient| / |linear coefficient| of the quadratic fit;
  /// the paper's "very small quadratic coefficient" observation is this
  /// ratio being tiny.
  double quad_to_linear_coeff_ratio = 0.0;
  /// Classification used in our figure reproductions.
  [[nodiscard]] std::string classification() const;
};

/// Fit both models and report which shape the series has.
[[nodiscard]] CurveShapeReport analyze_curve_shape(
    std::span<const double> xs, std::span<const double> ys);

}  // namespace atm::core
