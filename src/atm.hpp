// Umbrella header: the whole public API in one include.
//
//   #include "src/atm.hpp"
//
// Fine-grained headers remain available (and are what the library itself
// uses); this is a convenience for quick experiments and downstream apps.
#pragma once

#include "src/airfield/flight_db.hpp"    // IWYU pragma: export
#include "src/airfield/history.hpp"      // IWYU pragma: export
#include "src/airfield/radar.hpp"        // IWYU pragma: export
#include "src/airfield/setup.hpp"        // IWYU pragma: export
#include "src/airfield/terrain.hpp"      // IWYU pragma: export
#include "src/airfield/towers.hpp"       // IWYU pragma: export
#include "src/atm/backend.hpp"           // IWYU pragma: export
#include "src/atm/extended/full_pipeline.hpp"  // IWYU pragma: export
#include "src/atm/pipeline.hpp"          // IWYU pragma: export
#include "src/atm/platforms.hpp"         // IWYU pragma: export
#include "src/atm/scenarios.hpp"         // IWYU pragma: export
#include "src/core/curvefit.hpp"         // IWYU pragma: export
#include "src/core/rng.hpp"              // IWYU pragma: export
#include "src/core/stats.hpp"            // IWYU pragma: export
#include "src/core/table.hpp"            // IWYU pragma: export
#include "src/core/units.hpp"            // IWYU pragma: export
#include "src/rt/clock.hpp"              // IWYU pragma: export
#include "src/rt/deadline.hpp"           // IWYU pragma: export
#include "src/rt/schedule.hpp"           // IWYU pragma: export
