// Regression-corpus entries: self-contained text files (tests/corpus/
// *.seed) that replay one forged case exactly.
//
// An entry is (name, seed, ForgeParams, CaseOverrides) in a flat
// `key = value` format — everything materialize() needs, nothing more.
// The fleet itself is never serialized: it is re-forged from the seed,
// which keeps entries tiny, diffable, and immune to FlightDb layout
// changes. Each checked-in entry runs as its own tier-1 ctest entry via
// `atm_fuzz --replay` (see tests/CMakeLists.txt), and the shrinker's
// minimal repros are emitted in this format so promoting a failure into
// the corpus is a file copy (docs/TESTING.md walks through it).
#pragma once

#include <iosfwd>
#include <string>

#include "src/testkit/forge.hpp"

namespace atm::testkit {

struct CorpusEntry {
  std::string name;  ///< Registry/ctest identifier (kebab-case).
  std::string note;  ///< Free-form provenance line (optional).
  std::uint64_t seed = 0;
  ForgeParams forge;
  CaseOverrides overrides;

  [[nodiscard]] ForgedCase materialize() const {
    return testkit::materialize(seed, forge, overrides);
  }
};

/// Serialize in the canonical `key = value` form (stable key order, so
/// golden-fixture comparisons are byte-exact).
[[nodiscard]] std::string serialize(const CorpusEntry& entry);

/// Build the entry describing an already-shrunk (or hand-picked) case.
[[nodiscard]] CorpusEntry make_entry(std::string name, const ForgedCase& c,
                                     std::string note = {});

/// Parse one entry. Returns false and fills `error` on malformed input
/// (unknown key, bad number, missing seed/format line).
[[nodiscard]] bool parse(std::istream& in, CorpusEntry& out,
                         std::string& error);

/// Load from a .seed file; false + `error` when unreadable or malformed.
[[nodiscard]] bool load(const std::string& path, CorpusEntry& out,
                        std::string& error);

/// Write serialize(entry) to `path`; false on I/O failure.
[[nodiscard]] bool save(const std::string& path, const CorpusEntry& entry);

/// Register the entry's scenario under "corpus-<name>" so scenario-driven
/// CLIs and benches (`--scenario corpus-<name>`) can run the repro's
/// parameter bundle by name (tasks::register_scenario).
void register_corpus_scenario(const CorpusEntry& entry);

}  // namespace atm::testkit
