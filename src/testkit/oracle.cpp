#include "src/testkit/oracle.hpp"

#include <cmath>
#include <memory>
#include <numeric>
#include <sstream>
#include <utility>

#include "src/atm/extended/full_pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/reference/collision.hpp"
#include "src/atm/reference_backend.hpp"
#include "src/core/spatial/swept_index.hpp"

namespace atm::testkit {

namespace {

/// Salt for the permutation stream (independent of the forge stream).
constexpr std::uint64_t kPermuteSalt = 0x9E3779B97F4A7C15ULL;

void diverge(OracleReport& report, const std::string& where,
             std::string detail) {
  report.divergences.push_back(Divergence{where, std::move(detail)});
}

/// One leg of the host matrix.
struct HostLeg {
  bool mimd = false;
  core::kern::KernelMode kernel = core::kern::KernelMode::kScalar;
  core::spatial::BroadphaseMode broadphase =
      core::spatial::BroadphaseMode::kBruteForce;
  core::spatial::ShardMode shard = core::spatial::ShardMode::kNone;
  int sectors_per_axis = 0;

  [[nodiscard]] std::string label() const {
    std::ostringstream out;
    out << (mimd ? "mimd" : "reference") << '/'
        << (kernel == core::kern::KernelMode::kAvx2 ? "avx2" : "scalar")
        << '/'
        << (broadphase == core::spatial::BroadphaseMode::kGrid ? "grid"
                                                               : "brute")
        << '/';
    if (shard == core::spatial::ShardMode::kNone) {
      out << "unsharded";
    } else {
      out << sectors_per_axis << 'x' << sectors_per_axis;
    }
    return out.str();
  }
};

/// The matrix config: the forged scenario with the governor disabled and
/// the leg's execution axes substituted. Sensor faults stay as forged
/// (deterministic and identical for every leg); governor and stolen time
/// are forced off because the host backends' modeled times are measured
/// wall times — any timing feedback would make legs diverge for
/// scheduling reasons, not semantic ones.
tasks::PipelineConfig leg_config(const ForgedCase& c, const HostLeg& leg) {
  tasks::PipelineConfig cfg = pipeline_config(c);
  cfg.governor = rt::GovernorConfig{};
  cfg.faults.stolen_time_probability = 0.0;
  cfg.faults.stolen_time_ms = 0.0;
  cfg.task1.kernel = leg.kernel;
  cfg.task23.kernel = leg.kernel;
  cfg.task1.broadphase = leg.broadphase;
  cfg.task23.broadphase = leg.broadphase;
  cfg.task1.shard = leg.shard;
  cfg.task23.shard = leg.shard;
  if (leg.shard == core::spatial::ShardMode::kSectors) {
    cfg.task1.sectors_per_axis = leg.sectors_per_axis;
    cfg.task23.sectors_per_axis = leg.sectors_per_axis;
  }
  return cfg;
}

template <typename T>
bool compare_series(const std::string& where, const char* what,
                    const std::vector<T>& got, const std::vector<T>& want,
                    OracleReport& report) {
  if (got == want) return true;
  std::ostringstream out;
  out << what << " differs";
  if (got.size() != want.size()) {
    out << " (size " << got.size() << " vs " << want.size() << ")";
  } else {
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (!(got[i] == want[i])) {
        out << " (first at index " << i << ")";
        break;
      }
    }
  }
  diverge(report, where, out.str());
  return false;
}

}  // namespace

tasks::Task1Stats outcome_only(tasks::Task1Stats s) {
  s.box_tests = 0;
  s.sectors = 0;
  s.halo_candidates = 0;
  s.kernel = -1;
  s.lanes_masked = 0;
  return s;
}

tasks::Task23Stats outcome_only(tasks::Task23Stats s) {
  s.pair_tests = 0;
  s.pair_candidates = 0;
  s.rescans = 0;
  s.sectors = 0;
  s.halo_candidates = 0;
  s.kernel = -1;
  s.lanes_masked = 0;
  return s;
}

std::string OracleReport::to_string() const {
  std::ostringstream out;
  for (const Divergence& d : divergences) {
    out << d.where << ": " << d.detail << '\n';
  }
  return out.str();
}

bool compare_runs(const std::string& where,
                  const tasks::PipelineResult& got,
                  const airfield::FlightDb& got_state,
                  const tasks::PipelineResult& want,
                  const airfield::FlightDb& want_state,
                  OracleReport& report) {
  const std::size_t before = report.divergences.size();

  if (got.periods.size() != want.periods.size()) {
    std::ostringstream out;
    out << "period count " << got.periods.size() << " vs "
        << want.periods.size();
    diverge(report, where, out.str());
  } else {
    for (std::size_t i = 0; i < got.periods.size(); ++i) {
      if (got.periods[i].wrapped != want.periods[i].wrapped ||
          got.periods[i].task23_ran != want.periods[i].task23_ran) {
        std::ostringstream out;
        out << "period " << i << " wrapped/task23_ran "
            << got.periods[i].wrapped << '/' << got.periods[i].task23_ran
            << " vs " << want.periods[i].wrapped << '/'
            << want.periods[i].task23_ran;
        diverge(report, where, out.str());
        break;
      }
    }
  }

  if (outcome_only(got.last_task1) != outcome_only(want.last_task1)) {
    std::ostringstream out;
    out << "task1 outcome: matched " << got.last_task1.matched << " vs "
        << want.last_task1.matched << ", updated "
        << got.last_task1.updated_aircraft << " vs "
        << want.last_task1.updated_aircraft << ", ambiguous "
        << got.last_task1.ambiguous_aircraft << " vs "
        << want.last_task1.ambiguous_aircraft;
    diverge(report, where, out.str());
  }
  if (outcome_only(got.last_task23) != outcome_only(want.last_task23)) {
    std::ostringstream out;
    out << "task23 outcome: conflicts " << got.last_task23.conflicts
        << " vs " << want.last_task23.conflicts << ", critical "
        << got.last_task23.critical << " vs " << want.last_task23.critical
        << ", resolved " << got.last_task23.resolved << " vs "
        << want.last_task23.resolved << ", unresolved "
        << got.last_task23.unresolved << " vs "
        << want.last_task23.unresolved;
    diverge(report, where, out.str());
  }

  if (!got_state.same_flight_state(want_state)) {
    diverge(report, where,
            "flight state (x/y/dx/dy/alt) is not bit-identical");
  }
  compare_series(where, "col", got_state.col, want_state.col, report);
  compare_series(where, "col_with", got_state.col_with, want_state.col_with,
                 report);
  compare_series(where, "time_till", got_state.time_till,
                 want_state.time_till, report);
  compare_series(where, "rmatch", got_state.rmatch, want_state.rmatch,
                 report);

  return report.divergences.size() == before;
}

namespace {

void check_host_matrix(const ForgedCase& c,
                       const tasks::PipelineResult& base,
                       const airfield::FlightDb& base_state,
                       tasks::ReferenceBackend& ref, tasks::Backend& mimd,
                       OracleReport& report) {
  constexpr core::kern::KernelMode kKernels[] = {
      core::kern::KernelMode::kScalar, core::kern::KernelMode::kAvx2};
  constexpr core::spatial::BroadphaseMode kBroadphases[] = {
      core::spatial::BroadphaseMode::kBruteForce,
      core::spatial::BroadphaseMode::kGrid};
  constexpr int kShardAxes[] = {0, 2, 4};  // 0 = unsharded

  for (const bool mimd_leg : {false, true}) {
    for (const core::kern::KernelMode kernel : kKernels) {
      for (const core::spatial::BroadphaseMode broadphase : kBroadphases) {
        for (const int per_axis : kShardAxes) {
          HostLeg leg;
          leg.mimd = mimd_leg;
          leg.kernel = kernel;
          leg.broadphase = broadphase;
          leg.shard = per_axis == 0 ? core::spatial::ShardMode::kNone
                                    : core::spatial::ShardMode::kSectors;
          leg.sectors_per_axis = per_axis;
          if (!mimd_leg && kernel == core::kern::KernelMode::kScalar &&
              broadphase == core::spatial::BroadphaseMode::kBruteForce &&
              per_axis == 0) {
            continue;  // that leg IS the baseline
          }
          tasks::Backend& backend = mimd_leg
                                        ? mimd
                                        : static_cast<tasks::Backend&>(ref);
          backend.load(c.db);
          const tasks::PipelineResult result =
              tasks::run_pipeline(backend, leg_config(c, leg));
          ++report.runs;
          compare_runs(leg.label(), result, backend.state(), base,
                       base_state, report);
        }
      }
    }
  }
}

void check_platform_backends(const ForgedCase& c,
                             const tasks::PipelineResult& base,
                             const airfield::FlightDb& base_state,
                             OracleReport& report) {
  struct NamedFactory {
    const char* label;
    std::unique_ptr<tasks::Backend> (*make)();
  };
  const NamedFactory kPlatforms[] = {
      {"staran", &tasks::make_staran},
      {"clearspeed", &tasks::make_clearspeed},
      {"vector", &tasks::make_xeon_phi},
  };
  // Platform backends model all-pairs hardware and ignore the host-path
  // axes, so they run the baseline configuration.
  HostLeg baseline_leg;
  const tasks::PipelineConfig cfg = leg_config(c, baseline_leg);
  for (const NamedFactory& platform : kPlatforms) {
    std::unique_ptr<tasks::Backend> backend = platform.make();
    backend->load(c.db);
    const tasks::PipelineResult result = tasks::run_pipeline(*backend, cfg);
    ++report.runs;
    compare_runs(platform.label, result, backend->state(), base, base_state,
                 report);
  }
}

/// Aircraft-permutation invariance: detection/resolution outcomes must
/// not depend on record order. Conflict flags, soonest-conflict times,
/// and post-commit paths are compared through the permutation; col_with
/// is excluded by design — its (time, lowest id) tie-break legitimately
/// picks a different partner under relabeling when two partners tie.
void check_permutation(const ForgedCase& c, OracleReport& report) {
  const std::size_t n = c.db.size();
  if (n < 2) return;

  core::Rng rng(c.seed ^ kPermuteSalt);
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = rng.uniform_u64(0, i);
    std::swap(perm[i], perm[j]);
  }

  airfield::FlightDb original = c.db;
  airfield::FlightDb permuted(n);
  for (std::size_t slot = 0; slot < n; ++slot) {
    const std::size_t i = perm[slot];  // permuted[slot] = original[i]
    permuted.x[slot] = c.db.x[i];
    permuted.y[slot] = c.db.y[i];
    permuted.dx[slot] = c.db.dx[i];
    permuted.dy[slot] = c.db.dy[i];
    permuted.alt[slot] = c.db.alt[i];
  }

  const tasks::Task23Stats stats_a =
      tasks::reference::detect_and_resolve(original, c.scenario.task23);
  const tasks::Task23Stats stats_b =
      tasks::reference::detect_and_resolve(permuted, c.scenario.task23);
  report.runs += 2;

  if (outcome_only(stats_a) != outcome_only(stats_b)) {
    std::ostringstream out;
    out << "outcome counters change under permutation: conflicts "
        << stats_a.conflicts << " vs " << stats_b.conflicts << ", critical "
        << stats_a.critical << " vs " << stats_b.critical << ", resolved "
        << stats_a.resolved << " vs " << stats_b.resolved;
    diverge(report, "permutation", out.str());
  }
  for (std::size_t slot = 0; slot < n; ++slot) {
    const std::size_t i = perm[slot];
    if (permuted.col[slot] != original.col[i] ||
        permuted.time_till[slot] != original.time_till[i] ||
        permuted.dx[slot] != original.dx[i] ||
        permuted.dy[slot] != original.dy[i]) {
      std::ostringstream out;
      out << "aircraft " << i << " (slot " << slot
          << ") changes outcome under permutation";
      diverge(report, "permutation", out.str());
      break;
    }
  }
}

/// Broadphase-pruning soundness: any partner the brute-force scan finds
/// must be enumerated by the swept index for the same track — the
/// index's exactness contract, checked against forged geometry instead
/// of only the curated scenarios.
void check_broadphase_soundness(const ForgedCase& c, OracleReport& report) {
  const airfield::FlightDb& db = c.db;
  if (db.size() < 2) return;
  core::spatial::SweptIndex index;
  tasks::reference::build_swept_index(db, c.scenario.task23, index);

  for (std::size_t i = 0; i < db.size(); ++i) {
    tasks::reference::ScanWork work;
    const tasks::reference::DetectOutcome brute =
        tasks::reference::scan_against_all(db, i, db.dx[i], db.dy[i],
                                           c.scenario.task23, work, false);
    if (!brute.conflict) continue;
    const double speed = std::hypot(db.dx[i], db.dy[i]);
    bool found = false;
    index.for_each_candidate(
        db.x[i], db.y[i], db.alt[i], speed, [&](std::size_t j) {
          if (j == static_cast<std::size_t>(brute.partner)) {
            found = true;
            return true;
          }
          return false;
        });
    if (!found) {
      std::ostringstream out;
      out << "swept index prunes aircraft " << brute.partner
          << ", the brute-force soonest conflict of aircraft " << i;
      diverge(report, "broadphase-soundness", out.str());
      return;
    }
  }
  ++report.runs;
}

/// The extended executive (display, terrain, advisory, sporadic mix):
/// reference vs MIMD on outcome level. run_full_system generates its own
/// airfield from the scenario setup, so this leg exercises the forged
/// *parameters* (including the sporadic-query mix) rather than the
/// forged fleet.
void check_full_system(const ForgedCase& c, tasks::ReferenceBackend& ref,
                       tasks::Backend& mimd, OracleReport& report) {
  tasks::extended::FullSystemConfig cfg =
      tasks::make_full_config(c.scenario, c.major_cycles, c.seed);
  cfg.governor = rt::GovernorConfig{};
  cfg.faults.stolen_time_probability = 0.0;
  cfg.faults.stolen_time_ms = 0.0;

  const tasks::extended::FullSystemResult a =
      tasks::extended::run_full_system(ref, cfg);
  const tasks::extended::FullSystemResult b =
      tasks::extended::run_full_system(mimd, cfg);
  report.runs += 2;

  const std::string where = "full-system";
  if (outcome_only(a.last_task1) != outcome_only(b.last_task1)) {
    diverge(report, where, "task1 outcome counters differ");
  }
  if (outcome_only(a.last_task23) != outcome_only(b.last_task23)) {
    diverge(report, where, "task23 outcome counters differ");
  }
  if (!(a.last_terrain == b.last_terrain)) {
    diverge(report, where, "terrain stats differ");
  }
  if (!(a.last_display == b.last_display)) {
    diverge(report, where, "display stats differ");
  }
  if (!(a.last_advisory == b.last_advisory)) {
    diverge(report, where, "advisory stats differ");
  }
  if (!(a.last_sporadic == b.last_sporadic)) {
    std::ostringstream out;
    out << "sporadic stats differ: queries " << a.last_sporadic.queries
        << " vs " << b.last_sporadic.queries << ", hits "
        << a.last_sporadic.hits << " vs " << b.last_sporadic.hits;
    diverge(report, where, out.str());
  }
  if (a.sporadic_shed != b.sporadic_shed) {
    diverge(report, where, "sporadic shed counts differ");
  }
  if (!ref.state().same_flight_state(mimd.state())) {
    diverge(report, where, "flight state diverged after the full system");
  }
}

}  // namespace

OracleReport check_case(const ForgedCase& c, const OracleOptions& options) {
  OracleReport report;

  // Baseline: sequential reference, scalar kernel, brute force, unsharded.
  tasks::ReferenceBackend ref;
  std::unique_ptr<tasks::Backend> mimd = tasks::make_xeon();
  HostLeg baseline_leg;
  ref.load(c.db);
  const tasks::PipelineResult base =
      tasks::run_pipeline(ref, leg_config(c, baseline_leg));
  const airfield::FlightDb base_state = ref.state();
  ++report.runs;

  if (options.host_matrix) {
    check_host_matrix(c, base, base_state, ref, *mimd, report);
  }
  if (options.platform_backends) {
    check_platform_backends(c, base, base_state, report);
  }
  if (options.metamorphic) {
    check_permutation(c, report);
    check_broadphase_soundness(c, report);
  }
  if (options.full_system) {
    check_full_system(c, ref, *mimd, report);
  }
  return report;
}

}  // namespace atm::testkit
