// The budgeted fuzz loop: forge consecutive seeds, push each case
// through the differential oracle, collect divergences. This is the
// engine behind `tools/atm_fuzz` (CI's fuzz-smoke step and the `fuzz`
// ctest label) and tests/fuzz_smoke_test.cpp.
//
// Outcomes are fully deterministic per seed; the wall-clock budget only
// decides how many seeds a run gets through, never what any seed
// computes, so a failure printed by a budgeted run replays exactly with
// `atm_fuzz --seeds <seed>:1`.
#pragma once

#include <iosfwd>

#include "src/testkit/oracle.hpp"

namespace atm::testkit {

struct FuzzOptions {
  std::uint64_t first_seed = 1;
  int cases = 32;  ///< Consecutive seeds starting at first_seed.
  /// Stop starting new cases once this much wall time has elapsed
  /// (0 = no budget).
  double budget_ms = 0.0;
  /// Fail the summary when fewer cases than this complete (guards CI
  /// budgets against silently fuzzing nothing).
  int require_cases = 0;
  ForgeParams forge;
  OracleOptions oracle;
  /// Run the expensive probes (platform backends + full system) on every
  /// Nth case only; 1 = every case.
  int deep_every = 1;
};

struct FuzzFailure {
  std::uint64_t seed = 0;
  std::vector<Divergence> divergences;
};

struct FuzzSummary {
  int cases_run = 0;
  int runs = 0;  ///< Total oracle executions across all cases.
  bool quota_met = true;
  std::vector<FuzzFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty() && quota_met; }
};

/// Run the loop; progress and failures go to `log` when non-null.
[[nodiscard]] FuzzSummary run_fuzz(const FuzzOptions& options,
                                   std::ostream* log = nullptr);

}  // namespace atm::testkit
