// A deliberately buggy backend for validating the testkit itself: the
// shrinker self-test (and any harness smoke test) needs a bug with a
// deterministic, shrink-friendly footprint to converge on. The shim
// models the classic fleet-bound off-by-one — a Tasks 2+3 scan loop
// written `i < n - 1` — by running the reference implementation over the
// fleet with the final record dropped, while still reporting the full
// fleet in the headline aircraft counter (a real buggy loop counts the
// fleet outside the loop, so the counter hides the skipped subject).
//
// The bug fires exactly when the final aircraft carries a conflict —
// either its own detection is skipped, or a partner's soonest conflict
// disappears with it — so most forged cases agree with the reference,
// and a failing case shrinks down to the few tracks whose conflict
// involves the fleet's last record.
//
// Test-only: nothing under src/ outside the testkit may reference this
// class, and it is deliberately NOT registered in platforms.cpp.
#pragma once

#include <cstddef>
#include <string>

#include "src/atm/reference_backend.hpp"

namespace atm::testkit {

class PlantedBugBackend final : public tasks::ReferenceBackend {
 public:
  [[nodiscard]] std::string name() const override {
    return "Planted fleet off-by-one (testkit shim)";
  }

 private:
  tasks::Task23Result do_run_task23(
      const tasks::Task23Params& params) final {
    const airfield::FlightDb full = state();
    const std::size_t n = full.size();
    if (n < 2) return ReferenceBackend::do_run_task23(params);

    // Scan the fleet minus its last record (`i < n - 1`). resize()
    // truncates every column, working state included.
    airfield::FlightDb short_fleet = full;
    short_fleet.resize(n - 1);
    load(short_fleet);
    tasks::Task23Result result = ReferenceBackend::do_run_task23(params);
    result.stats.aircraft = n;

    // Splice the untouched last record back on top of the post-task
    // state: it was never scanned, so it keeps its pre-task fields.
    airfield::FlightDb merged = state();
    merged.resize(n);
    const std::size_t last = n - 1;
    merged.x[last] = full.x[last];
    merged.y[last] = full.y[last];
    merged.dx[last] = full.dx[last];
    merged.dy[last] = full.dy[last];
    merged.alt[last] = full.alt[last];
    merged.batx[last] = full.batx[last];
    merged.baty[last] = full.baty[last];
    merged.rmatch[last] = full.rmatch[last];
    merged.col[last] = full.col[last];
    merged.time_till[last] = full.time_till[last];
    merged.col_with[last] = full.col_with[last];
    merged.terrain_warn[last] = full.terrain_warn[last];
    merged.sector[last] = full.sector[last];
    load(merged);
    return result;
  }
};

}  // namespace atm::testkit
