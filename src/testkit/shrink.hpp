// Greedy scenario shrinker: minimize a failing forged case to a small,
// self-contained repro.
//
// The move set is exactly CaseOverrides — duration first (major cycles
// down to one), then ddmin-style aircraft removal over the keep list
// (halving chunk sizes, the delta-debugging schedule), then policy-knob
// zeroing (faults, radar noise, dropout, sporadic mix, forged policy) —
// looped to a fixpoint. Every candidate is re-materialized from (seed,
// ForgeParams, CaseOverrides) and re-judged by the caller's predicate,
// so the shrunk repro replays bit-identically from those three values
// alone; serialize it with src/testkit/corpus.hpp.
#pragma once

#include <functional>

#include "src/testkit/forge.hpp"

namespace atm::testkit {

struct ShrinkOptions {
  /// Hard cap on predicate evaluations (each one is a full replay).
  int max_evaluations = 600;
};

struct ShrinkResult {
  ForgedCase minimal;
  int evaluations = 0;
  /// False when the starting case did not fail the predicate (nothing
  /// to shrink; `minimal` is then the starting case).
  bool failing = false;
};

/// `fails` returns true while the bug still reproduces. The returned
/// case is 1-minimal over the move set: no single remaining aircraft,
/// extra major cycle, or zeroable knob can be dropped without losing
/// the failure (within the evaluation budget).
[[nodiscard]] ShrinkResult shrink_case(
    std::uint64_t seed, const ForgeParams& params,
    const CaseOverrides& start,
    const std::function<bool(const ForgedCase&)>& fails,
    const ShrinkOptions& options = {});

}  // namespace atm::testkit
