#include "src/testkit/forge.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/core/check.hpp"
#include "src/core/units.hpp"

namespace atm::testkit {

namespace {

/// Salt separating the forge's stream from every other consumer of a
/// user-visible seed (the pipeline radar stream, the fault injector, ...).
constexpr std::uint64_t kForgeSalt = 0xF0E6E5C3A1B2D4E8ULL;

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Speed draw in nm/period from the scenario's traffic envelope.
double draw_speed(core::Rng& rng, const airfield::SetupParams& setup) {
  return core::knots_to_nm_per_period(
      rng.uniform(setup.min_speed_knots, setup.max_speed_knots));
}

double clamp_alt(double alt_feet, const airfield::SetupParams& setup) {
  return std::clamp(alt_feet, setup.min_altitude_feet,
                    setup.max_altitude_feet);
}

/// Altitude with at least one gate of headroom on both sides where the
/// envelope allows, so stacked groups can straddle the gate upward.
double draw_base_alt(core::Rng& rng, const airfield::SetupParams& setup,
                     double gate_feet) {
  const double lo = setup.min_altitude_feet + gate_feet;
  const double hi = setup.max_altitude_feet - gate_feet;
  if (lo >= hi) {
    return rng.uniform(setup.min_altitude_feet, setup.max_altitude_feet);
  }
  return rng.uniform(lo, hi);
}

struct FleetBuilder {
  airfield::FlightDb& db;
  std::vector<std::uint8_t>& family;
  std::size_t target;

  [[nodiscard]] bool full() const { return db.size() >= target; }

  void add(Family f, double x, double y, double dx, double dy, double alt) {
    if (full()) return;
    const std::size_t i = db.size();
    db.resize(i + 1);
    db.x[i] = x;
    db.y[i] = y;
    db.dx[i] = dx;
    db.dy[i] = dy;
    db.alt[i] = alt;
    family.push_back(static_cast<std::uint8_t>(f));
  }
};

/// A pair of tracks timed to pass through one point. The meeting time is
/// drawn around the conflict horizon (0.05x .. 1.15x), so some pairs
/// conflict early, some near the horizon edge (the geometry that catches
/// off-by-one horizon bugs), and some just outside it.
void emit_crossing(core::Rng& rng, FleetBuilder& out,
                   const tasks::Scenario& s) {
  const double field = s.setup.position_max_nm;
  const double px = rng.uniform(-0.6 * field, 0.6 * field);
  const double py = rng.uniform(-0.6 * field, 0.6 * field);
  const double alt = clamp_alt(draw_base_alt(rng, s.setup,
                                             s.task23.altitude_gate_feet),
                               s.setup);
  // Second aircraft: sometimes inside the altitude gate (a real conflict),
  // sometimes just outside (exercises the gate exactly).
  const double gate = s.task23.altitude_gate_feet;
  const double alt_b = clamp_alt(
      alt + rng.uniform(0.0, 1.6 * gate) * (rng.uniform() < 0.5 ? -1.0 : 1.0),
      s.setup);
  const double eta_wanted =
      s.task23.horizon_periods * rng.uniform(0.05, 1.15);
  for (int k = 0; k < 2; ++k) {
    const double heading = rng.uniform(0.0, kTwoPi);
    const double speed = draw_speed(rng, s.setup);
    // Keep the start position on the grid: cap the lead distance by the
    // room between the meeting point and the re-entry boundary.
    const double room =
        0.92 * core::kGridHalfExtentNm - std::max(std::fabs(px),
                                                  std::fabs(py));
    const double eta = std::min(eta_wanted, std::max(room, 1.0) / speed);
    const double dx = speed * std::cos(heading);
    const double dy = speed * std::sin(heading);
    out.add(Family::kCrossing, px - dx * eta, py - dy * eta, dx, dy,
            k == 0 ? alt : alt_b);
  }
}

/// A lane of co-heading aircraft offset laterally by a fraction of the
/// Batcher band (some pairs inside the band, some outside).
void emit_parallel(core::Rng& rng, FleetBuilder& out,
                   const tasks::Scenario& s) {
  const double field = s.setup.position_max_nm;
  const int lane = rng.uniform_int(2, 4);
  const double heading = rng.uniform(0.0, kTwoPi);
  const double speed = draw_speed(rng, s.setup);
  const double bx = rng.uniform(-0.5 * field, 0.5 * field);
  const double by = rng.uniform(-0.5 * field, 0.5 * field);
  const double alt = clamp_alt(draw_base_alt(rng, s.setup,
                                             s.task23.altitude_gate_feet),
                               s.setup);
  // Perpendicular to the heading.
  const double nx = -std::sin(heading);
  const double ny = std::cos(heading);
  double offset = 0.0;
  for (int k = 0; k < lane; ++k) {
    out.add(Family::kParallel, bx + nx * offset, by + ny * offset,
            speed * std::cos(heading), speed * std::sin(heading), alt);
    offset += s.task23.band_nm * rng.uniform(0.3, 1.2);
  }
}

/// A vertical stack: same ground track at altitudes spaced around the
/// altitude gate (0.6x .. 1.4x), so adjacent pairs flip between gated
/// and un-gated.
void emit_stacked(core::Rng& rng, FleetBuilder& out,
                  const tasks::Scenario& s) {
  const double field = s.setup.position_max_nm;
  const int levels = rng.uniform_int(2, 4);
  const double x = rng.uniform(-0.6 * field, 0.6 * field);
  const double y = rng.uniform(-0.6 * field, 0.6 * field);
  const double heading = rng.uniform(0.0, kTwoPi);
  const double speed = draw_speed(rng, s.setup);
  double alt = clamp_alt(rng.uniform(s.setup.min_altitude_feet,
                                     s.setup.max_altitude_feet),
                         s.setup);
  for (int k = 0; k < levels; ++k) {
    const double jitter = s.task1.box_half_nm * rng.uniform(0.0, 0.4);
    out.add(Family::kStacked, x + jitter, y - jitter,
            speed * std::cos(heading), speed * std::sin(heading), alt);
    alt = clamp_alt(
        alt + s.task23.altitude_gate_feet * rng.uniform(0.6, 1.4),
        s.setup);
  }
}

/// Tracks hugging the sector seams (x or y = 0, +-half the grid) and the
/// re-entry boundary, moving across the line — the halo-set and wrap
/// edge cases.
void emit_seam(core::Rng& rng, FleetBuilder& out, const tasks::Scenario& s) {
  const int count = rng.uniform_int(2, 4);
  const double half = core::kGridHalfExtentNm;
  for (int k = 0; k < count; ++k) {
    // Seam coordinates at the 2x2 and 4x4 sector boundaries plus the
    // re-entry edge.
    constexpr double kSeamFractions[] = {0.0, 0.5, -0.5, 0.98, -0.98};
    const double seam =
        half * kSeamFractions[rng.uniform_u64(0, 4)];
    const double along = rng.uniform(-0.9 * half, 0.9 * half);
    const double hug = rng.uniform(-1.5, 1.5);
    const double speed = draw_speed(rng, s.setup);
    const double heading = rng.uniform(0.0, kTwoPi);
    const double dx = speed * std::cos(heading);
    const double dy = speed * std::sin(heading);
    const double alt = clamp_alt(rng.uniform(s.setup.min_altitude_feet,
                                             s.setup.max_altitude_feet),
                                 s.setup);
    if (rng.uniform() < 0.5) {
      out.add(Family::kSeamHugging, seam + hug, along, dx, dy, alt);
    } else {
      out.add(Family::kSeamHugging, along, seam + hug, dx, dy, alt);
    }
  }
}

/// A dense cluster in a small disc: the broadphase stress geometry.
void emit_hotspot(core::Rng& rng, FleetBuilder& out,
                  const tasks::Scenario& s) {
  const double field = s.setup.position_max_nm;
  const int count = rng.uniform_int(3, 6);
  const double cx = rng.uniform(-0.7 * field, 0.7 * field);
  const double cy = rng.uniform(-0.7 * field, 0.7 * field);
  const double radius = s.task23.band_nm * rng.uniform(0.5, 3.0);
  const double alt = clamp_alt(draw_base_alt(rng, s.setup,
                                             s.task23.altitude_gate_feet),
                               s.setup);
  for (int k = 0; k < count; ++k) {
    const double ang = rng.uniform(0.0, kTwoPi);
    const double r = radius * std::sqrt(rng.uniform());
    const double heading = rng.uniform(0.0, kTwoPi);
    const double speed = draw_speed(rng, s.setup);
    const double spread = s.task23.altitude_gate_feet * rng.uniform(0.0, 0.8);
    out.add(Family::kHotspot, cx + r * std::cos(ang), cy + r * std::sin(ang),
            speed * std::cos(heading), speed * std::sin(heading),
            clamp_alt(alt + spread, s.setup));
  }
}

void emit_cruise(core::Rng& rng, FleetBuilder& out,
                 const tasks::Scenario& s) {
  const airfield::FlightInit f = airfield::draw_flight(rng, s.setup);
  out.add(Family::kCruise, f.x, f.y, f.dx, f.dy, f.alt);
}

tasks::Scenario sample_scenario(core::Rng& rng, const ForgeParams& params,
                                std::uint64_t seed) {
  tasks::Scenario s;
  s.name = "forge-" + std::to_string(seed);
  s.description = "testkit-forged scenario (seed " + std::to_string(seed) +
                  "; see src/testkit/forge.hpp)";

  // Traffic envelope. The field stays inside the re-entry grid so the
  // full-system load (which generates from setup) matches the forge.
  s.setup.position_max_nm = rng.uniform(24.0, core::kGridHalfExtentNm);
  s.setup.min_speed_knots = rng.uniform(30.0, 200.0);
  s.setup.max_speed_knots =
      s.setup.min_speed_knots + rng.uniform(60.0, 400.0);
  s.setup.min_altitude_feet = rng.uniform(1000.0, 15000.0);
  s.setup.max_altitude_feet =
      s.setup.min_altitude_feet + rng.uniform(4000.0, 25000.0);

  // Task 1: correlation box and radar quality, kept coherent (noise
  // below the half-box so a clean return correlates on the first pass).
  s.task1.box_half_nm = rng.uniform(0.1, 1.0);
  s.task1.retries = rng.uniform_int(0, 3);
  s.radar.noise_nm = s.task1.box_half_nm * rng.uniform(0.0, 0.45);
  s.radar.dropout_probability =
      rng.uniform() < 0.35 ? rng.uniform(0.0, 0.05) : 0.0;

  // Tasks 2+3: conflict geometry.
  s.task23.band_nm = rng.uniform(0.5, 4.0);
  s.task23.altitude_gate_feet = rng.uniform(300.0, 1500.0);
  s.task23.horizon_periods = rng.uniform(400.0, 3600.0);
  s.task23.critical_periods =
      rng.uniform(60.0, 0.5 * s.task23.horizon_periods);
  s.task23.turn_step_deg = rng.uniform(2.5, 15.0);
  s.task23.turn_max_deg = std::min(
      s.task23.turn_step_deg * static_cast<double>(rng.uniform_int(2, 6)),
      90.0);

  if (params.fuzz_policy) {
    s.policy.broadphase = rng.uniform() < 0.5
                              ? core::spatial::BroadphaseMode::kBruteForce
                              : core::spatial::BroadphaseMode::kGrid;
    s.policy.shard = rng.uniform() < 0.5 ? core::spatial::ShardMode::kNone
                                         : core::spatial::ShardMode::kSectors;
    constexpr int kAxes[] = {2, 3, 4, 6, 8};
    s.policy.sectors_per_axis = kAxes[rng.uniform_u64(0, 4)];
    constexpr core::kern::KernelMode kKernels[] = {
        core::kern::KernelMode::kAuto, core::kern::KernelMode::kScalar,
        core::kern::KernelMode::kAvx2};
    s.policy.kernel = kKernels[rng.uniform_u64(0, 2)];
  }

  // Deterministic sensor faults only; governor and stolen time stay off
  // (see the header comment).
  if (params.fuzz_sensor_faults && rng.uniform() < 0.5) {
    s.policy.faults.enabled = true;
    s.policy.faults.dropout_burst_probability = rng.uniform(0.0, 0.25);
    s.policy.faults.dropout_fraction = rng.uniform(0.1, 0.5);
    s.policy.faults.ghost_probability = rng.uniform(0.0, 0.2);
    s.policy.faults.noise_burst_probability = rng.uniform(0.0, 0.25);
    s.policy.faults.noise_burst_nm = rng.uniform(0.3, 1.5);
  }

  if (params.fuzz_sporadic) {
    s.sporadic.queries_per_batch = rng.uniform_int(0, 8);
    s.sporadic.near_radius_nm = rng.uniform(5.0, 40.0);
  }
  return s;
}

}  // namespace

std::string_view to_string(Family family) {
  switch (family) {
    case Family::kCruise: return "cruise";
    case Family::kCrossing: return "crossing";
    case Family::kParallel: return "parallel";
    case Family::kStacked: return "stacked";
    case Family::kSeamHugging: return "seam";
    case Family::kHotspot: return "hotspot";
  }
  return "?";
}

ForgedCase forge_case(std::uint64_t seed, const ForgeParams& params) {
  ATM_CHECK_MSG(params.min_aircraft >= 2 &&
                    params.min_aircraft <= params.max_aircraft,
                "forge aircraft bounds [" << params.min_aircraft << ", "
                                          << params.max_aircraft
                                          << "] are not a valid range");
  ATM_CHECK_MSG(params.min_major_cycles >= 1 &&
                    params.min_major_cycles <= params.max_major_cycles,
                "forge major-cycle bounds are not a valid range");

  core::Rng root(seed ^ kForgeSalt);
  core::Rng param_rng = root.fork();
  core::Rng fleet_rng = root.fork();

  ForgedCase c;
  c.seed = seed;
  c.forge = params;
  c.scenario = sample_scenario(param_rng, params, seed);
  c.major_cycles = param_rng.uniform_int(params.min_major_cycles,
                                         params.max_major_cycles);

  const std::size_t n =
      param_rng.uniform_u64(params.min_aircraft, params.max_aircraft);
  FleetBuilder out{c.db, c.family, n};
  while (!out.full()) {
    switch (fleet_rng.uniform_u64(0, 5)) {
      case 0: emit_cruise(fleet_rng, out, c.scenario); break;
      case 1: emit_crossing(fleet_rng, out, c.scenario); break;
      case 2: emit_parallel(fleet_rng, out, c.scenario); break;
      case 3: emit_stacked(fleet_rng, out, c.scenario); break;
      case 4: emit_seam(fleet_rng, out, c.scenario); break;
      default: emit_hotspot(fleet_rng, out, c.scenario); break;
    }
  }
  c.scenario.default_aircraft = c.db.size();
  return c;
}

airfield::FlightDb select_rows(const airfield::FlightDb& db,
                               const std::vector<std::uint32_t>& keep) {
  airfield::FlightDb out(keep.size());
  for (std::size_t k = 0; k < keep.size(); ++k) {
    const std::size_t i = keep[k];
    ATM_CHECK_MSG(i < db.size(), "select_rows index " << i
                                     << " outside fleet of " << db.size());
    out.x[k] = db.x[i];
    out.y[k] = db.y[i];
    out.dx[k] = db.dx[i];
    out.dy[k] = db.dy[i];
    out.alt[k] = db.alt[i];
  }
  return out;
}

ForgedCase materialize(std::uint64_t seed, const ForgeParams& params,
                       const CaseOverrides& overrides) {
  ForgedCase c = forge_case(seed, params);
  c.overrides = overrides;
  if (overrides.major_cycles > 0) c.major_cycles = overrides.major_cycles;
  if (overrides.zero_faults) c.scenario.policy.faults = rt::FaultConfig{};
  if (overrides.zero_radar_noise) c.scenario.radar.noise_nm = 0.0;
  if (overrides.zero_dropout) c.scenario.radar.dropout_probability = 0.0;
  if (overrides.zero_sporadic) c.scenario.sporadic.queries_per_batch = 0;
  if (overrides.plain_policy) {
    c.scenario.policy.broadphase = core::spatial::BroadphaseMode::kBruteForce;
    c.scenario.policy.shard = core::spatial::ShardMode::kNone;
    c.scenario.policy.sectors_per_axis = 4;
    c.scenario.policy.kernel = core::kern::KernelMode::kAuto;
  }
  if (!overrides.keep.empty()) {
    c.db = select_rows(c.db, overrides.keep);
    std::vector<std::uint8_t> kept_family;
    kept_family.reserve(overrides.keep.size());
    for (const std::uint32_t i : overrides.keep) {
      kept_family.push_back(c.family[i]);
    }
    c.family = std::move(kept_family);
    c.scenario.default_aircraft = c.db.size();
  }
  return c;
}

tasks::PipelineConfig pipeline_config(const ForgedCase& c) {
  tasks::PipelineConfig cfg =
      tasks::make_pipeline_config(c.scenario, c.major_cycles, c.seed);
  cfg.aircraft = c.db.size();
  cfg.preloaded = true;
  return cfg;
}

}  // namespace atm::testkit
