#include "src/testkit/corpus.hpp"

#include <fstream>
#include <sstream>
#include <utility>

namespace atm::testkit {

namespace {

constexpr const char* kFormatLine = "atm-testkit-corpus-v1";

void put(std::ostringstream& out, const char* key, std::uint64_t value) {
  out << key << " = " << value << '\n';
}

void put_flag(std::ostringstream& out, const char* key, bool value) {
  // Only non-default flags are written, keeping entries minimal; the
  // parser accepts 0 explicitly all the same.
  if (value) out << key << " = 1\n";
}

bool parse_u64(const std::string& value, std::uint64_t& out) {
  std::istringstream in(value);
  in >> out;
  return static_cast<bool>(in) && in.eof();
}

bool parse_bool(const std::string& value, bool& out) {
  if (value == "0") {
    out = false;
    return true;
  }
  if (value == "1") {
    out = true;
    return true;
  }
  return false;
}

std::string trim(const std::string& s) {
  const std::size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return {};
  const std::size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

}  // namespace

std::string serialize(const CorpusEntry& entry) {
  std::ostringstream out;
  out << "format = " << kFormatLine << '\n';
  out << "name = " << entry.name << '\n';
  if (!entry.note.empty()) out << "note = " << entry.note << '\n';
  put(out, "seed", entry.seed);
  put(out, "forge.min_aircraft", entry.forge.min_aircraft);
  put(out, "forge.max_aircraft", entry.forge.max_aircraft);
  put(out, "forge.min_major_cycles",
      static_cast<std::uint64_t>(entry.forge.min_major_cycles));
  put(out, "forge.max_major_cycles",
      static_cast<std::uint64_t>(entry.forge.max_major_cycles));
  out << "forge.fuzz_policy = " << (entry.forge.fuzz_policy ? 1 : 0) << '\n';
  out << "forge.fuzz_sensor_faults = "
      << (entry.forge.fuzz_sensor_faults ? 1 : 0) << '\n';
  out << "forge.fuzz_sporadic = " << (entry.forge.fuzz_sporadic ? 1 : 0)
      << '\n';
  if (entry.overrides.major_cycles > 0) {
    put(out, "major_cycles",
        static_cast<std::uint64_t>(entry.overrides.major_cycles));
  }
  put_flag(out, "zero.faults", entry.overrides.zero_faults);
  put_flag(out, "zero.radar_noise", entry.overrides.zero_radar_noise);
  put_flag(out, "zero.dropout", entry.overrides.zero_dropout);
  put_flag(out, "zero.sporadic", entry.overrides.zero_sporadic);
  put_flag(out, "zero.policy", entry.overrides.plain_policy);
  if (!entry.overrides.keep.empty()) {
    out << "keep = ";
    for (std::size_t i = 0; i < entry.overrides.keep.size(); ++i) {
      if (i > 0) out << ',';
      out << entry.overrides.keep[i];
    }
    out << '\n';
  }
  return out.str();
}

CorpusEntry make_entry(std::string name, const ForgedCase& c,
                       std::string note) {
  CorpusEntry entry;
  entry.name = std::move(name);
  entry.note = std::move(note);
  entry.seed = c.seed;
  entry.forge = c.forge;
  entry.overrides = c.overrides;
  return entry;
}

bool parse(std::istream& in, CorpusEntry& out, std::string& error) {
  CorpusEntry entry;
  bool saw_format = false;
  bool saw_seed = false;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos) {
      error = "line " + std::to_string(line_no) + ": expected key = value";
      return false;
    }
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));

    std::uint64_t u64 = 0;
    bool flag = false;
    bool ok = true;
    if (key == "format") {
      saw_format = value == kFormatLine;
      ok = saw_format;
    } else if (key == "name") {
      entry.name = value;
    } else if (key == "note") {
      entry.note = value;
    } else if (key == "seed") {
      ok = parse_u64(value, entry.seed);
      saw_seed = ok;
    } else if (key == "forge.min_aircraft") {
      ok = parse_u64(value, u64);
      entry.forge.min_aircraft = static_cast<std::size_t>(u64);
    } else if (key == "forge.max_aircraft") {
      ok = parse_u64(value, u64);
      entry.forge.max_aircraft = static_cast<std::size_t>(u64);
    } else if (key == "forge.min_major_cycles") {
      ok = parse_u64(value, u64);
      entry.forge.min_major_cycles = static_cast<int>(u64);
    } else if (key == "forge.max_major_cycles") {
      ok = parse_u64(value, u64);
      entry.forge.max_major_cycles = static_cast<int>(u64);
    } else if (key == "forge.fuzz_policy") {
      ok = parse_bool(value, entry.forge.fuzz_policy);
    } else if (key == "forge.fuzz_sensor_faults") {
      ok = parse_bool(value, entry.forge.fuzz_sensor_faults);
    } else if (key == "forge.fuzz_sporadic") {
      ok = parse_bool(value, entry.forge.fuzz_sporadic);
    } else if (key == "major_cycles") {
      ok = parse_u64(value, u64);
      entry.overrides.major_cycles = static_cast<int>(u64);
    } else if (key == "zero.faults") {
      ok = parse_bool(value, flag);
      entry.overrides.zero_faults = flag;
    } else if (key == "zero.radar_noise") {
      ok = parse_bool(value, flag);
      entry.overrides.zero_radar_noise = flag;
    } else if (key == "zero.dropout") {
      ok = parse_bool(value, flag);
      entry.overrides.zero_dropout = flag;
    } else if (key == "zero.sporadic") {
      ok = parse_bool(value, flag);
      entry.overrides.zero_sporadic = flag;
    } else if (key == "zero.policy") {
      ok = parse_bool(value, flag);
      entry.overrides.plain_policy = flag;
    } else if (key == "keep") {
      entry.overrides.keep.clear();
      std::istringstream list(value);
      std::string item;
      while (std::getline(list, item, ',')) {
        std::uint64_t index = 0;
        if (!parse_u64(trim(item), index)) {
          ok = false;
          break;
        }
        entry.overrides.keep.push_back(static_cast<std::uint32_t>(index));
      }
    } else {
      error = "line " + std::to_string(line_no) + ": unknown key '" + key +
              "'";
      return false;
    }
    if (!ok) {
      error = "line " + std::to_string(line_no) + ": bad value for '" +
              key + "'";
      return false;
    }
  }
  if (!saw_format) {
    error = "missing or wrong 'format = " + std::string(kFormatLine) + "'";
    return false;
  }
  if (!saw_seed) {
    error = "missing 'seed'";
    return false;
  }
  if (entry.name.empty()) {
    error = "missing 'name'";
    return false;
  }
  out = std::move(entry);
  return true;
}

bool load(const std::string& path, CorpusEntry& out, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  return parse(in, out, error);
}

bool save(const std::string& path, const CorpusEntry& entry) {
  std::ofstream out(path);
  if (!out) return false;
  out << serialize(entry);
  return static_cast<bool>(out);
}

void register_corpus_scenario(const CorpusEntry& entry) {
  ForgedCase c = entry.materialize();
  tasks::Scenario scenario = std::move(c.scenario);
  scenario.name = "corpus-" + entry.name;
  scenario.description =
      "testkit corpus repro '" + entry.name + "' (seed " +
      std::to_string(entry.seed) +
      (entry.note.empty() ? std::string{} : "; " + entry.note) + ")";
  tasks::register_scenario(std::move(scenario));
}

}  // namespace atm::testkit
