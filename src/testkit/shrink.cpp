#include "src/testkit/shrink.hpp"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <utility>

namespace atm::testkit {

namespace {

struct Shrinker {
  std::uint64_t seed;
  const ForgeParams& forge;
  const std::function<bool(const ForgedCase&)>& fails;
  int budget;
  int evaluations = 0;

  [[nodiscard]] bool spent() const { return evaluations >= budget; }

  bool judge(const CaseOverrides& overrides) {
    if (spent()) return false;
    ++evaluations;
    return fails(materialize(seed, forge, overrides));
  }

  /// Try one candidate; adopt it into `current` when it still fails.
  bool adopt(CaseOverrides& current, CaseOverrides candidate) {
    if (!judge(candidate)) return false;
    current = std::move(candidate);
    return true;
  }

  bool shrink_duration(CaseOverrides& current) {
    if (current.major_cycles == 1) return false;
    CaseOverrides candidate = current;
    candidate.major_cycles = 1;
    return adopt(current, std::move(candidate));
  }

  /// ddmin over the keep list: try dropping chunks of halving size until
  /// no single aircraft can be removed.
  bool shrink_aircraft(CaseOverrides& current) {
    bool progressed = false;
    std::size_t chunk = std::max<std::size_t>(1, current.keep.size() / 2);
    while (chunk >= 1 && current.keep.size() > 1 && !spent()) {
      bool removed = false;
      for (std::size_t start = 0;
           start < current.keep.size() && !spent();) {
        CaseOverrides candidate = current;
        const std::size_t end =
            std::min(start + chunk, candidate.keep.size());
        candidate.keep.erase(
            candidate.keep.begin() + static_cast<std::ptrdiff_t>(start),
            candidate.keep.begin() + static_cast<std::ptrdiff_t>(end));
        if (!candidate.keep.empty() &&
            adopt(current, std::move(candidate))) {
          removed = true;
          progressed = true;
          // The window now holds the next chunk; do not advance.
        } else {
          start += chunk;
        }
      }
      if (chunk == 1 && !removed) break;
      chunk = std::max<std::size_t>(1, chunk / 2);
      if (removed && chunk * 2 <= current.keep.size()) {
        chunk = std::max<std::size_t>(1, current.keep.size() / 2);
      }
    }
    return progressed;
  }

  bool shrink_knobs(CaseOverrides& current) {
    bool progressed = false;
    const auto try_flag = [&](bool CaseOverrides::* flag) {
      if (current.*flag || spent()) return;
      CaseOverrides candidate = current;
      candidate.*flag = true;
      if (adopt(current, std::move(candidate))) progressed = true;
    };
    try_flag(&CaseOverrides::zero_faults);
    try_flag(&CaseOverrides::zero_dropout);
    try_flag(&CaseOverrides::zero_radar_noise);
    try_flag(&CaseOverrides::zero_sporadic);
    try_flag(&CaseOverrides::plain_policy);
    return progressed;
  }
};

}  // namespace

ShrinkResult shrink_case(std::uint64_t seed, const ForgeParams& params,
                         const CaseOverrides& start,
                         const std::function<bool(const ForgedCase&)>& fails,
                         const ShrinkOptions& options) {
  Shrinker shrinker{seed, params, fails, options.max_evaluations};

  CaseOverrides current = start;
  if (current.keep.empty()) {
    // Normalize to an explicit keep list so aircraft removal has a
    // concrete set to chip at.
    const ForgedCase forged = forge_case(seed, params);
    current.keep.resize(forged.db.size());
    std::iota(current.keep.begin(), current.keep.end(), 0U);
  }

  ShrinkResult result;
  if (!shrinker.judge(current)) {
    result.minimal = materialize(seed, params, start);
    result.evaluations = shrinker.evaluations;
    result.failing = false;
    return result;
  }

  bool progressed = true;
  while (progressed && !shrinker.spent()) {
    progressed = false;
    progressed |= shrinker.shrink_duration(current);
    progressed |= shrinker.shrink_aircraft(current);
    progressed |= shrinker.shrink_knobs(current);
  }

  result.minimal = materialize(seed, params, current);
  result.evaluations = shrinker.evaluations;
  result.failing = true;
  return result;
}

}  // namespace atm::testkit
