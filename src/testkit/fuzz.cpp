#include "src/testkit/fuzz.hpp"

#include <chrono>
#include <ostream>

namespace atm::testkit {

FuzzSummary run_fuzz(const FuzzOptions& options, std::ostream* log) {
  FuzzSummary summary;
  // Wall clock for the *budget* only: which seeds run may vary with host
  // load, what each seed computes never does.
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_ms = [&start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  for (int i = 0; i < options.cases; ++i) {
    if (options.budget_ms > 0.0 && elapsed_ms() > options.budget_ms) {
      if (log) {
        *log << "fuzz: budget of " << options.budget_ms << " ms reached after "
             << summary.cases_run << " cases\n";
      }
      break;
    }
    const std::uint64_t seed =
        options.first_seed + static_cast<std::uint64_t>(i);
    const ForgedCase c = forge_case(seed, options.forge);

    OracleOptions oracle = options.oracle;
    if (options.deep_every > 1 && i % options.deep_every != 0) {
      oracle.platform_backends = false;
      oracle.full_system = false;
    }
    const OracleReport report = check_case(c, oracle);
    ++summary.cases_run;
    summary.runs += report.runs;
    if (!report.ok()) {
      summary.failures.push_back(FuzzFailure{seed, report.divergences});
      if (log) {
        *log << "fuzz: seed " << seed << " DIVERGED ("
             << c.db.size() << " aircraft, " << c.major_cycles
             << " major cycles)\n"
             << report.to_string();
      }
    } else if (log && summary.cases_run % 25 == 0) {
      *log << "fuzz: " << summary.cases_run << " cases, " << summary.runs
           << " runs, 0 divergences (" << elapsed_ms() / 1000.0 << " s)\n";
    }
  }

  summary.quota_met = summary.cases_run >= options.require_cases;
  if (log) {
    *log << "fuzz: done — " << summary.cases_run << " cases, "
         << summary.runs << " runs, " << summary.failures.size()
         << " divergent seed(s)"
         << (summary.quota_met ? "" : " [case quota NOT met]") << '\n';
  }
  return summary;
}

}  // namespace atm::testkit
