// Differential conformance oracle: run one forged case across the whole
// host configuration matrix and assert bit-identical outcomes, plus the
// metamorphic invariants no single configuration can check on its own.
//
// Four independent probes, each switchable:
//
//  * host matrix — {reference, MIMD} x {scalar, avx2} x {brute, grid} x
//    {unsharded, 2x2, 4x4} through the full pipeline; every leg must
//    produce the baseline's outcome counters, per-period wrap counts,
//    bit-identical flight state, and identical correlation/collision
//    working state. (kAvx2 resolves to scalar on hosts without AVX2 —
//    kern::resolve() — so the matrix is portable.)
//  * platform backends — STARAN AP, ClearSpeed, and the vector backend
//    on outcome-level equivalence against the same baseline (they model
//    all-pairs hardware and ignore the host-path axes).
//  * metamorphic invariants — aircraft-permutation invariance of the
//    detection/resolution outcome, and broadphase-pruning soundness
//    (every brute-force conflict partner must be enumerated by the swept
//    index).
//  * full system — the Section 7.2 extended executive (display, terrain,
//    advisory, sporadic queries) reference vs. MIMD on outcome level.
//
// The sector-count invariance the ISSUE names is the shard axis of the
// host matrix: 1 (unsharded) vs 2x2 vs 4x4 over identical inputs.
#pragma once

#include <string>
#include <vector>

#include "src/testkit/forge.hpp"

namespace atm::testkit {

struct OracleOptions {
  bool host_matrix = true;
  bool platform_backends = true;
  bool metamorphic = true;
  bool full_system = true;
};

/// One observed divergence: which run disagreed and how.
struct Divergence {
  std::string where;   ///< e.g. "mimd/avx2/grid/4x4" or "permutation".
  std::string detail;  ///< Human-readable mismatch description.
};

struct OracleReport {
  int runs = 0;  ///< Pipeline/system executions performed.
  std::vector<Divergence> divergences;

  [[nodiscard]] bool ok() const { return divergences.empty(); }
  /// All divergences joined into one printable block.
  [[nodiscard]] std::string to_string() const;
};

/// Run every enabled probe for one case. A clean report means every
/// configuration agreed bit-for-bit and every invariant held.
[[nodiscard]] OracleReport check_case(const ForgedCase& c,
                                      const OracleOptions& options = {});

/// Outcome-level projections of the task counters: work fields that
/// legitimately vary across broadphase/shard/kernel/platform choices
/// (box_tests, pair counts, sector and kernel bookkeeping) are cleared;
/// what the task *concluded* is kept. Exposed for tests and tools.
[[nodiscard]] tasks::Task1Stats outcome_only(tasks::Task1Stats s);
[[nodiscard]] tasks::Task23Stats outcome_only(tasks::Task23Stats s);

/// Compare two pipeline executions of the same case (states + outcome
/// stats + per-period wraps), appending any mismatch to `report` under
/// the label `where`. Returns true when the runs agree. `got`/`want` are
/// the backends' post-run states. Exposed so the shrinker and the
/// planted-bug self-test can reuse the exact comparison the matrix uses.
bool compare_runs(const std::string& where,
                  const tasks::PipelineResult& got,
                  const airfield::FlightDb& got_state,
                  const tasks::PipelineResult& want,
                  const airfield::FlightDb& want_state,
                  OracleReport& report);

}  // namespace atm::testkit
