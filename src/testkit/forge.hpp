// ScenarioForge: seeded sampling of randomized-but-valid ATM scenarios.
//
// Every case is a replayable (seed, ForgeParams) pair: the forge draws the
// scenario parameters, the execution policy, and a structured traffic
// fleet from a single core::Rng stream (forked per concern, the repo's
// stream discipline), so two calls with the same inputs produce
// bit-identical cases on every host. The fleet mixes trajectory families
// the random SetupFlight draw essentially never produces — head-on
// crossings timed to converge, parallel lanes a fraction of the Batcher
// band apart, altitude stacks straddling the altitude gate, tracks
// hugging sector seams and the re-entry boundary, and dense hotspots —
// exactly the adversarial geometry the differential oracle
// (src/testkit/oracle.hpp) wants to push through the backend x kernel x
// broadphase x shard matrix.
//
// Determinism notes (why two knobs are deliberately NOT fuzzed): the
// reference and MIMD backends report *measured host wall time* as their
// modeled time, so anything that feeds timing back into control flow —
// the overload governor's level walk, stolen-time fault injection —
// makes a run schedule-dependent. The forge therefore never enables the
// governor or stolen time; sensor faults (dropout bursts, ghosts, noise
// bursts) depend only on (seed, period) and stay fully deterministic, so
// they are fair game.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/airfield/flight_db.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/scenarios.hpp"

namespace atm::testkit {

/// Trajectory families the forge mixes into a fleet.
enum class Family : std::uint8_t {
  kCruise = 0,       ///< Plain SetupFlight-style random track.
  kCrossing = 1,     ///< Pair timed to converge on one point.
  kParallel = 2,     ///< Lane of co-heading tracks ~a band apart.
  kStacked = 3,      ///< Vertical stack straddling the altitude gate.
  kSeamHugging = 4,  ///< Tracks on sector seams / the re-entry boundary.
  kHotspot = 5,      ///< Dense cluster in a small disc.
};
inline constexpr int kFamilyCount = 6;

[[nodiscard]] std::string_view to_string(Family family);

/// Knobs of the forge itself (what the sampler may reach for). Replay
/// requires the exact ForgeParams alongside the seed; corpus entries
/// serialize every field (src/testkit/corpus.hpp).
struct ForgeParams {
  std::size_t min_aircraft = 24;
  std::size_t max_aircraft = 96;
  int min_major_cycles = 1;
  int max_major_cycles = 2;
  /// Randomize Scenario::policy (broadphase / shard / kernel). The
  /// differential oracle overrides these axes anyway; the forged policy
  /// is what single replays and registered corpus scenarios run with.
  bool fuzz_policy = true;
  /// Randomize deterministic sensor faults (dropout bursts, ghosts,
  /// noise bursts). Never stolen time — see the header comment.
  bool fuzz_sensor_faults = true;
  /// Randomize the sporadic controller-query mix (full system only).
  bool fuzz_sporadic = true;

  friend bool operator==(const ForgeParams&, const ForgeParams&) = default;
};

/// Deterministic edits applied on top of a forged case — the shrinker's
/// entire move set, so a minimized repro is just (seed, ForgeParams,
/// CaseOverrides) and replays exactly.
struct CaseOverrides {
  int major_cycles = 0;       ///< > 0 replaces the forged cycle count.
  bool zero_faults = false;   ///< Disable fault injection.
  bool zero_radar_noise = false;
  bool zero_dropout = false;  ///< Clear radar dropout probability.
  bool zero_sporadic = false;
  /// Reset the forged policy to brute / unsharded / auto-kernel.
  bool plain_policy = false;
  /// Keep only these aircraft (indices into the forged fleet, ascending);
  /// empty keeps the whole fleet.
  std::vector<std::uint32_t> keep;

  friend bool operator==(const CaseOverrides&,
                         const CaseOverrides&) = default;
};

/// One forged case: the scenario parameter bundle plus the concrete
/// fleet, ready to preload into any backend.
struct ForgedCase {
  std::uint64_t seed = 0;
  ForgeParams forge;
  CaseOverrides overrides;
  tasks::Scenario scenario;  ///< Post-override parameters + policy.
  airfield::FlightDb db;     ///< The fleet, post-keep filter.
  int major_cycles = 1;
  /// Family tag per aircraft (post-keep), for diagnostics and coverage
  /// assertions.
  std::vector<std::uint8_t> family;
};

/// Forge the case for `seed` with no overrides.
[[nodiscard]] ForgedCase forge_case(std::uint64_t seed,
                                    const ForgeParams& params = {});

/// Forge, then apply overrides (the replay path for shrunk repros).
[[nodiscard]] ForgedCase materialize(std::uint64_t seed,
                                     const ForgeParams& params,
                                     const CaseOverrides& overrides);

/// Copy of `db` containing only the rows in `keep` (ascending indices).
[[nodiscard]] airfield::FlightDb select_rows(
    const airfield::FlightDb& db, const std::vector<std::uint32_t>& keep);

/// Pipeline configuration for running a forged case: the scenario's
/// parameters with the backend preloaded from the forged fleet.
[[nodiscard]] tasks::PipelineConfig pipeline_config(const ForgedCase& c);

}  // namespace atm::testkit
