#include "src/mimd/thread_pool.hpp"

#include <algorithm>

#include "src/core/check.hpp"

namespace atm::mimd {

ThreadPool::ThreadPool(unsigned workers) {
  unsigned n = workers;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const sync::MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t chunk,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  Job job;
  job.begin = begin;
  job.end = end;
  job.chunk = std::max<std::size_t>(1, chunk);
  job.fn = &fn;
  job.next.store(begin);

  {
    const sync::MutexLock lock(mutex_);
    job_ = &job;
    ++job_generation_;
  }
  cv_work_.notify_all();

  // The calling thread helps, so the pool makes progress even on a
  // single-core host.
  for (;;) {
    const std::size_t start = job.next.fetch_add(job.chunk);
    if (start >= end) break;
    const std::size_t stop = std::min(end, start + job.chunk);
    for (std::size_t i = start; i < stop; ++i) (*job.fn)(i);
    job.done.fetch_add(stop - start);
  }

  // Wait until every iteration ran AND no worker still holds a reference
  // to the (stack-allocated) job.
  const std::size_t total = end - begin;
  sync::MutexLock lock(mutex_);
  job_ = nullptr;  // stop new workers from picking the job up
  cv_done_.wait(lock.native_handle(), [&] {
    return job.done.load() >= total && job.active.load() == 0;
  });
  // Join contract: every iteration ran exactly once. More would mean two
  // workers claimed one chunk (corrupted results with no crash); the
  // stack-allocated job dying while a worker still holds it would be worse.
  ATM_CHECK_MSG(job.done.load() == total && job.active.load() == 0,
                "parallel_for join mismatch: done=" << job.done.load()
                                                    << " total=" << total
                                                    << " active="
                                                    << job.active.load());
}

void ThreadPool::worker_loop() {
  std::size_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      sync::MutexLock lock(mutex_);
      // Spelled as an explicit loop (not the predicate overload): the
      // guarded reads sit in this function's body, where the analysis
      // sees the scoped capability — inside a wait-predicate lambda it
      // could not prove mutex_ is held.
      while (!(stop_ ||
               (job_ != nullptr && job_generation_ != seen_generation))) {
        cv_work_.wait(lock.native_handle());
      }
      if (stop_) return;
      job = job_;
      seen_generation = job_generation_;
      job->active.fetch_add(1);
    }
    for (;;) {
      const std::size_t start = job->next.fetch_add(job->chunk);
      if (start >= job->end) break;
      const std::size_t stop = std::min(job->end, start + job->chunk);
      for (std::size_t i = start; i < stop; ++i) (*job->fn)(i);
      job->done.fetch_add(stop - start);
    }
    {
      const sync::MutexLock lock(mutex_);
      job->active.fetch_sub(1);
    }
    cv_done_.notify_all();
  }
}

StripedLocks::StripedLocks(std::size_t stripes)
    : mutexes_(std::max<std::size_t>(1, stripes)) {}

}  // namespace atm::mimd
