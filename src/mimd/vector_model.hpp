// Cost model for a wide-vector commodity processor (Xeon Phi class).
//
// The paper's Section 7.2: "there is a renewed interest in exploring
// SIMDization through increasingly wide vector units on commodity
// processors and accelerators (such as Intel's Xeon Phi) [8, 9]. We would
// like to build up on this work and implement the basic ATM tasks ... in
// these commodity processors". This model realizes that study: the ATM
// inner loops are data-parallel and map onto vector lanes; execution is
// synchronous within a core (deterministic, unlike the lock-based MIMD
// baseline), so the platform behaves SIMD-like.
//
//   t = barriers
//     + serial_fraction * ops * cycles_per_op / clock              (scalar tail)
//     + (1 - serial_fraction) * ops * cycles_per_op
//         / (clock * cores * lanes * gather_efficiency)            (vector body)
//
// gather_efficiency accounts for the scattered loads the correlation and
// pair-test loops need (vector gathers never reach full lane throughput).
#pragma once

#include <cstdint>
#include <string>

namespace atm::mimd {

struct VectorSpec {
  std::string name = "Xeon Phi (61 cores x 16 lanes)";
  int cores = 61;
  double clock_ghz = 1.238;     ///< Knights Corner class.
  int lanes = 16;               ///< 512-bit SIMD over 32-bit elements.
  double gather_efficiency = 0.6;
  double cycles_per_inner_op = 10.0;
  double serial_fraction = 0.02;
  double barrier_us = 20.0;     ///< Fork/join across 61 cores.
};

/// The Knights Corner card of the paper's citations [8, 9].
[[nodiscard]] VectorSpec xeon_phi_spec();

/// A contemporary AVX-512 desktop part, for contrast.
[[nodiscard]] VectorSpec avx512_desktop_spec();

class VectorModel {
 public:
  explicit VectorModel(VectorSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const VectorSpec& spec() const { return spec_; }

  /// Modeled time for `inner_ops` data-parallel inner-loop operations
  /// spread over `parallel_regions` fork/join regions. Deterministic —
  /// lock-free lock-step lanes have no scheduling jitter.
  [[nodiscard]] double model_ms(std::uint64_t inner_ops,
                                std::uint64_t parallel_regions) const;

  /// Peak throughput in giga-ops/s (for the normalization study).
  [[nodiscard]] double peak_gops() const;

 private:
  VectorSpec spec_;
};

}  // namespace atm::mimd
