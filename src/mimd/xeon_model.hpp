// Cost model for the paper's 16-core Intel Xeon baseline.
//
// The multi-core ATM implementation in [13] keeps the aircraft database in
// shared memory that every core reads and writes, with the synchronization
// that requires. Its reported behaviour — rapidly (the paper says possibly
// exponentially) growing runtimes and large numbers of missed deadlines —
// comes from three asynchronous-execution effects the authors call out:
// lock contention on the shared records, fork/join barriers every parallel
// region, and OS scheduling jitter that makes constant-time work take a
// variable amount of time (Section 2.3: MIMD machines are not
// "predictable").
//
// Our MIMD backend really executes the tasks on a host thread pool with
// striped locks (src/mimd/thread_pool.hpp) and counts the work it did:
// inner-loop operations, lock acquisitions, and parallel regions. This
// model converts those measured counters into the modeled 16-core Xeon
// time:
//
//   t = barriers + compute/cores + locks * lock_cost * contention / cores
//   contention(n) = 1 + alpha * sqrt(n / 1000)        (hot-lock crowding)
//   t *= (1 + jitter)                                 (scheduling noise)
//
// The contention exponent and constants are calibrated so the modeled
// curve reproduces the relationship in the paper's Figures 4 and 6: the
// Xeon sits far above every other platform and crosses the half-second
// deadline inside the swept aircraft range. The jitter term is driven by a
// caller-provided RNG, so repeated runs give *different* times — the
// paper's nondeterminism claim — while any fixed seed stays reproducible.
#pragma once

#include <cstdint>
#include <string>

#include "src/core/rng.hpp"

namespace atm::mimd {

/// Work counters measured from an actual thread-pool execution.
struct WorkCounters {
  std::uint64_t items = 0;        ///< Outer work items (aircraft/radars).
  std::uint64_t inner_ops = 0;    ///< Inner-loop operations executed.
  std::uint64_t locked_ops = 0;   ///< Lock acquisitions performed.
  std::uint64_t contended = 0;    ///< Lock acquisitions that hit contention.
  std::uint64_t parallel_regions = 0;  ///< fork/join barriers.

  WorkCounters& operator+=(const WorkCounters& o) {
    items += o.items;
    inner_ops += o.inner_ops;
    locked_ops += o.locked_ops;
    contended += o.contended;
    parallel_regions += o.parallel_regions;
    return *this;
  }
};

/// Calibration constants for the modeled Xeon.
struct XeonSpec {
  std::string name = "Intel Xeon (16 cores)";
  int cores = 16;
  double clock_ghz = 2.4;
  double cycles_per_inner_op = 10.0;  ///< Pair/box test incl. loads.
  double lock_ns = 25.0;              ///< Uncontended lock+unlock.
  double contention_alpha = 1.0;      ///< Hot-lock crowding coefficient.
  double barrier_us = 12.0;           ///< Per parallel-region fork/join.
  double jitter_frac = 0.15;          ///< Max uniform scheduling noise.
  double spike_probability = 0.05;    ///< Chance of an OS straggler spike.
  double spike_frac = 0.5;            ///< Extra inflation during a spike.
};

/// The paper's baseline machine.
[[nodiscard]] XeonSpec paper_xeon_spec();

/// Converts measured work into modeled multi-core milliseconds.
class XeonModel {
 public:
  explicit XeonModel(XeonSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const XeonSpec& spec() const { return spec_; }

  /// Modeled time for the measured work. `jitter_rng` drives the
  /// scheduling-noise terms; pass a fixed-seed RNG for reproducible runs
  /// or a per-run seed to expose the MIMD nondeterminism.
  [[nodiscard]] double model_ms(const WorkCounters& work,
                                core::Rng& jitter_rng) const;

  /// The deterministic part only (no jitter): useful for tests.
  [[nodiscard]] double deterministic_ms(const WorkCounters& work) const;

 private:
  XeonSpec spec_;
};

}  // namespace atm::mimd
