#include "src/mimd/xeon_model.hpp"

#include <cmath>

namespace atm::mimd {

XeonSpec paper_xeon_spec() { return XeonSpec{}; }

double XeonModel::deterministic_ms(const WorkCounters& work) const {
  const double cores = static_cast<double>(spec_.cores);

  const double compute_ns = static_cast<double>(work.inner_ops) *
                            spec_.cycles_per_inner_op / spec_.clock_ghz /
                            cores;

  const double contention =
      1.0 + spec_.contention_alpha *
                std::sqrt(static_cast<double>(work.items) / 1000.0);
  const double lock_ns = static_cast<double>(work.locked_ops) *
                         spec_.lock_ns * contention / cores;

  const double barrier_ns =
      static_cast<double>(work.parallel_regions) * spec_.barrier_us * 1e3;

  return (compute_ns + lock_ns + barrier_ns) * 1e-6;
}

double XeonModel::model_ms(const WorkCounters& work,
                           core::Rng& jitter_rng) const {
  double ms = deterministic_ms(work);
  double inflate = 1.0 + jitter_rng.uniform(0.0, spec_.jitter_frac);
  if (jitter_rng.uniform() < spec_.spike_probability) {
    inflate += jitter_rng.uniform(0.0, spec_.spike_frac);
  }
  return ms * inflate;
}

}  // namespace atm::mimd
