#include "src/mimd/vector_model.hpp"

namespace atm::mimd {

VectorSpec xeon_phi_spec() { return VectorSpec{}; }

VectorSpec avx512_desktop_spec() {
  return VectorSpec{
      .name = "AVX-512 desktop (8 cores x 16 lanes)",
      .cores = 8,
      .clock_ghz = 3.6,
      .lanes = 16,
      .gather_efficiency = 0.7,
      .cycles_per_inner_op = 8.0,
      .serial_fraction = 0.02,
      .barrier_us = 5.0,
  };
}

double VectorModel::model_ms(std::uint64_t inner_ops,
                             std::uint64_t parallel_regions) const {
  const double ops = static_cast<double>(inner_ops);
  const double cycles = spec_.cycles_per_inner_op;
  const double scalar_ns =
      spec_.serial_fraction * ops * cycles / spec_.clock_ghz;
  const double vector_ns =
      (1.0 - spec_.serial_fraction) * ops * cycles /
      (spec_.clock_ghz * spec_.cores * spec_.lanes *
       spec_.gather_efficiency);
  const double barrier_ns =
      static_cast<double>(parallel_regions) * spec_.barrier_us * 1e3;
  return (scalar_ns + vector_ns + barrier_ns) * 1e-6;
}

double VectorModel::peak_gops() const {
  return spec_.clock_ghz * spec_.cores * spec_.lanes;
}

}  // namespace atm::mimd
