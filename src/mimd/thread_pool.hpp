// A shared-memory thread pool — the MIMD multiprocessor substrate.
//
// The paper's multi-core baseline (Section 2.3, [13]) stores aircraft data
// in shared memory that all processors access, executing asynchronously.
// This pool reproduces that execution style: worker threads pull index
// chunks dynamically (so completion order is nondeterministic, like a real
// MIMD machine under OS scheduling), and the ATM MIMD backend layers real
// mutex-striped locking over the shared flight database on top of it.
//
// On this reproduction host the pool also *works* as a real parallel
// substrate; the modeled 16-core Xeon timing comes from xeon_model.hpp fed
// with the work and contention counters the execution produces.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "src/core/sync/mutex.hpp"

namespace atm::mimd {

/// Fixed-size worker pool with dynamically scheduled parallel_for.
class ThreadPool {
 public:
  /// Spin up `workers` threads (defaults to hardware concurrency, min 1).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Run fn(i) for every i in [begin, end), split into `chunk`-sized units
  /// claimed dynamically by the workers. Blocks until all iterations are
  /// done. Exceptions from fn terminate (kernel-boundary noexcept policy).
  void parallel_for(std::size_t begin, std::size_t end, std::size_t chunk,
                    const std::function<void(std::size_t)>& fn);

 private:
  struct Job {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<int> active{0};  ///< Workers currently holding the job.
  };

  void worker_loop();

  std::vector<std::thread> threads_;
  sync::Mutex mutex_;
  // The condition variables carry no state of their own; every variable
  // they signal about is guarded below. Waits go through
  // MutexLock::native_handle() so the capability stays held across them.
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Job* job_ ATM_GUARDED_BY(mutex_) = nullptr;          ///< Current job, if any.
  std::size_t job_generation_ ATM_GUARDED_BY(mutex_) = 0;
  bool stop_ ATM_GUARDED_BY(mutex_) = false;
};

/// A set of striped mutexes guarding a shared array: index i is protected
/// by stripe i % stripes. Counts acquisitions and observed contention
/// (try_lock failures), which feed the Xeon contention model.
///
/// Lock-contract note: which *data* stripe i protects is a dynamic,
/// per-element property (slot i of whatever array the caller shards), so
/// it cannot be expressed as an ATM_GUARDED_BY annotation — the static
/// layer proves with_lock's acquire/release balance, and the TSan stress
/// suite covers the element-to-stripe mapping discipline.
class StripedLocks {
 public:
  explicit StripedLocks(std::size_t stripes = 64);

  /// Lock the stripe for index i, run fn, unlock. Returns through fn.
  template <typename F>
  void with_lock(std::size_t i, F&& fn) {
    sync::Mutex& m = mutexes_[i % mutexes_.size()];
    if (!m.try_lock()) {
      contended_.fetch_add(1, std::memory_order_relaxed);
      m.lock();
    }
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    fn();
    m.unlock();
  }

  [[nodiscard]] std::uint64_t acquisitions() const {
    return acquisitions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t contended() const {
    return contended_.load(std::memory_order_relaxed);
  }
  void reset_counters() {
    acquisitions_.store(0);
    contended_.store(0);
  }

 private:
  std::vector<sync::Mutex> mutexes_;
  std::atomic<std::uint64_t> acquisitions_{0};
  std::atomic<std::uint64_t> contended_{0};
};

}  // namespace atm::mimd
