// A classic lock-step SIMD array machine, modeled on the ClearSpeed CSX600.
//
// The prior work this paper compares against ([12, 13]) emulated the STARAN
// associative processor on a ClearSpeed CSX600 accelerator: two chips, each
// a SIMD array of 96 processing elements (PEs) with per-PE memory joined by
// a ring network, programmed in Cn ("poly" variables are elementwise across
// PEs). This module provides that machine shape:
//
//  * a fixed number of physical PEs (96 per chip x chips);
//  * data sets larger than the PE count are *virtualized*: each parallel
//    ("poly") operation over n elements costs ceil(n / PEs) lock-step
//    rounds, every round costing the operation's cycle charge;
//  * broadcast from the control unit is one round regardless of n;
//  * reductions cost the virtualization rounds plus a log2(PEs) tree;
//  * ring shift moves every element to its neighbour in one round per
//    virtualization slice.
//
// The machine accumulates modeled cycles; elapsed_ms() converts them with
// the chip clock. All data lives in caller-owned vectors; the machine is
// the execution/cost layer, exactly like the SIMT engine in src/simt.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>

namespace atm::simd {

using Cycles = std::uint64_t;

/// Static description of a lock-step SIMD machine.
struct MachineSpec {
  std::string name;
  int pe_count = 96;       ///< Physical PEs operating in lock-step.
  double clock_mhz = 210;  ///< PE array clock.
  Cycles op_cycles = 2;    ///< Cycles per elementwise op per round.
  Cycles broadcast_cycles = 2;   ///< Control-unit broadcast, per round.
  Cycles reduce_step_cycles = 3; ///< Per tree level of a reduction.
  Cycles ring_hop_cycles = 2;    ///< Per ring-network hop.
};

/// The ClearSpeed CSX600 as used in [12, 13]: two 96-PE chips driven
/// together (192 PEs), 210 MHz.
[[nodiscard]] MachineSpec csx600_spec();

/// A single 96-PE chip (useful for the block-size ablation).
[[nodiscard]] MachineSpec csx600_single_chip_spec();

/// Lock-step SIMD execution engine with cycle accounting.
class LockstepMachine {
 public:
  explicit LockstepMachine(MachineSpec spec);

  [[nodiscard]] const MachineSpec& spec() const { return spec_; }

  /// Modeled cycles consumed so far.
  [[nodiscard]] Cycles cycles() const { return cycles_; }

  /// Modeled elapsed time in milliseconds.
  [[nodiscard]] double elapsed_ms() const;

  void reset() { cycles_ = 0; }

  /// Number of virtualization rounds for an n-element poly operation.
  [[nodiscard]] Cycles rounds(std::size_t n) const;

  /// Elementwise ("poly") operation: apply fn(i) for each i in [0, n).
  /// `weight` is the per-element cycle charge in units of op_cycles
  /// (e.g. weight 4 for a 4-instruction body).
  template <typename F>
  void poly(std::size_t n, Cycles weight, F&& fn) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    cycles_ += rounds(n) * weight * spec_.op_cycles;
  }

  /// Broadcast a scalar to all PEs: constant rounds (the control unit
  /// drives the common value onto the instruction stream).
  void broadcast() { cycles_ += spec_.broadcast_cycles; }

  /// Charge control-unit scalar work (single-record readout/writeback).
  void charge_scalar(Cycles ops) { cycles_ += ops * spec_.op_cycles; }

  /// Masked global minimum: returns the index of the smallest key among
  /// i with mask[i] != 0, or npos when none. Costs virtualization rounds
  /// plus a reduction tree over the PEs.
  [[nodiscard]] std::size_t reduce_min_index(std::span<const double> keys,
                                             std::span<const std::uint8_t> mask);

  /// Masked population count (how many PEs respond).
  [[nodiscard]] std::size_t reduce_count(std::span<const std::uint8_t> mask);

  /// Ring shift: out[i] = in[(i + n - 1) % n] (rotate right by one), the
  /// canonical neighbour-communication primitive of the CSX ring.
  void ring_shift(std::span<const double> in, std::span<double> out);

  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

 private:
  MachineSpec spec_;
  Cycles cycles_ = 0;
};

}  // namespace atm::simd
