#include "src/simd/lockstep.hpp"

#include <bit>

namespace atm::simd {

MachineSpec csx600_spec() {
  return MachineSpec{
      .name = "ClearSpeed CSX600 (2 x 96 PEs)",
      .pe_count = 192,
      .clock_mhz = 210.0,
      .op_cycles = 2,
      .broadcast_cycles = 2,
      .reduce_step_cycles = 3,
      .ring_hop_cycles = 2,
  };
}

MachineSpec csx600_single_chip_spec() {
  MachineSpec spec = csx600_spec();
  spec.name = "ClearSpeed CSX600 (single chip, 96 PEs)";
  spec.pe_count = 96;
  return spec;
}

LockstepMachine::LockstepMachine(MachineSpec spec) : spec_(std::move(spec)) {
  if (spec_.pe_count <= 0) {
    throw std::invalid_argument("LockstepMachine: pe_count must be positive");
  }
}

double LockstepMachine::elapsed_ms() const {
  return static_cast<double>(cycles_) / (spec_.clock_mhz * 1e6) * 1e3;
}

Cycles LockstepMachine::rounds(std::size_t n) const {
  const auto pes = static_cast<std::size_t>(spec_.pe_count);
  return n == 0 ? 0 : static_cast<Cycles>((n + pes - 1) / pes);
}

std::size_t LockstepMachine::reduce_min_index(
    std::span<const double> keys, std::span<const std::uint8_t> mask) {
  std::size_t best = npos;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (!mask[i]) continue;
    if (best == npos || keys[i] < keys[best]) best = i;
  }
  const auto tree_levels =
      static_cast<Cycles>(std::bit_width(static_cast<unsigned>(
                              spec_.pe_count > 1 ? spec_.pe_count - 1 : 1)));
  cycles_ += rounds(keys.size()) * spec_.op_cycles +
             tree_levels * spec_.reduce_step_cycles;
  return best;
}

std::size_t LockstepMachine::reduce_count(
    std::span<const std::uint8_t> mask) {
  std::size_t count = 0;
  for (const auto m : mask) count += m ? 1 : 0;
  const auto tree_levels =
      static_cast<Cycles>(std::bit_width(static_cast<unsigned>(
                              spec_.pe_count > 1 ? spec_.pe_count - 1 : 1)));
  cycles_ += rounds(mask.size()) * spec_.op_cycles +
             tree_levels * spec_.reduce_step_cycles;
  return count;
}

void LockstepMachine::ring_shift(std::span<const double> in,
                                 std::span<double> out) {
  if (in.size() != out.size()) {
    throw std::invalid_argument("ring_shift: size mismatch");
  }
  const std::size_t n = in.size();
  if (n == 0) return;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = in[(i + n - 1) % n];
  }
  cycles_ += rounds(n) * spec_.ring_hop_cycles;
}

}  // namespace atm::simd
