// Sector-sharding ablation: the monolithic host scans vs the per-sector
// executive (src/core/spatial/sectors.hpp, docs/SHARDING.md).
//
// The paper's multi-core Xeon loses to every accelerator because its
// shared-memory scan pays lock traffic on one flight database — the
// contention term in the cost model grows with aircraft count and makes
// the curve super-linear. Sharding replaces the striped-lock scan with
// per-sector snapshot gathers plus halo sets, so the modeled 16-core
// Xeon time drops back toward the linear work term. This bench sweeps
// sector counts on the dense-en-route scenario and reports:
//
//   * modeled 16-core Xeon ms (the paper's platform; the headline), and
//   * host wall ms on the sequential reference path (informational —
//     this container is single-core, so wall time mostly shows the
//     gather overhead, not the parallel win),
//
// while double-checking that every sharded run produces the exact task
// outcomes of the unsharded scan.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/airfield/setup.hpp"
#include "src/atm/mimd_backend.hpp"
#include "src/atm/reference_backend.hpp"
#include "src/atm/scenarios.hpp"
#include "src/core/table.hpp"
#include "src/rt/clock.hpp"

namespace {

using atm::core::spatial::ShardMode;

struct TaskRun {
  double wall_ms = 0.0;     ///< Host wall time (reference backend).
  double modeled_ms = 0.0;  ///< Modeled platform time (MIMD backend).
  atm::tasks::Task1Stats task1;
  atm::tasks::Task23Stats task23;
};

atm::tasks::Task1Stats outcome_task1(atm::tasks::Task1Stats s) {
  s.box_tests = 0;
  s.sectors = 0;
  s.halo_candidates = 0;
  s.kernel = -1;
  s.lanes_masked = 0;
  return s;
}

atm::tasks::Task23Stats outcome_task23(atm::tasks::Task23Stats s) {
  s.pair_tests = 0;
  s.pair_candidates = 0;
  s.rescans = 0;
  s.sectors = 0;
  s.halo_candidates = 0;
  s.kernel = -1;
  s.lanes_masked = 0;
  return s;
}

atm::tasks::PipelineConfig sharded_config(
    const atm::tasks::Scenario& scenario, int sectors_per_axis) {
  atm::tasks::Scenario s = scenario;
  s.policy.shard = sectors_per_axis > 0 ? ShardMode::kSectors : ShardMode::kNone;
  s.policy.sectors_per_axis = sectors_per_axis > 0 ? sectors_per_axis : 4;
  return make_pipeline_config(s);
}

/// Sum `periods` consecutive Task 1 runs from a fresh airfield. Radar
/// noise is seeded identically for every call, so every sector count
/// sees bit-identical frames.
template <typename BackendT>
TaskRun run_task1(const atm::tasks::Scenario& scenario, std::size_t n,
                  int sectors_per_axis, int periods) {
  using namespace atm;
  const tasks::PipelineConfig cfg = sharded_config(scenario, sectors_per_axis);
  BackendT backend;
  backend.load(airfield::make_airfield(n, cfg.seed, cfg.setup));
  core::Rng rng(cfg.seed + 1);
  TaskRun run;
  for (int p = 0; p < periods; ++p) {
    airfield::RadarFrame frame =
        backend.generate_radar(rng, cfg.radar, nullptr);
    const rt::Stopwatch sw;
    const tasks::Task1Result result = backend.run_task1(frame, cfg.task1);
    run.wall_ms += sw.elapsed_ms();
    run.modeled_ms += result.modeled_ms;
    run.task1 = result.stats;
  }
  return run;
}

/// Run Tasks 2+3 once per rep from a fresh airfield; keep the best rep.
template <typename BackendT>
TaskRun run_task23(const atm::tasks::Scenario& scenario, std::size_t n,
                   int sectors_per_axis, int reps) {
  using namespace atm;
  const tasks::PipelineConfig cfg = sharded_config(scenario, sectors_per_axis);
  TaskRun run;
  for (int rep = 0; rep < reps; ++rep) {
    BackendT backend;
    backend.load(airfield::make_airfield(n, cfg.seed, cfg.setup));
    const rt::Stopwatch sw;
    const tasks::Task23Result result = backend.run_task23(cfg.task23);
    const double wall = sw.elapsed_ms();
    if (rep == 0 || wall < run.wall_ms) run.wall_ms = wall;
    if (rep == 0 || result.modeled_ms < run.modeled_ms) {
      run.modeled_ms = result.modeled_ms;
    }
    run.task23 = result.stats;
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace atm;
  const tasks::Scenario scenario =
      bench::scenario_from_args(argc, argv, tasks::dense_en_route());
  const bool smoke = bench::smoke_mode();
  const std::vector<std::size_t> sweep =
      smoke ? std::vector<std::size_t>{600}
            : std::vector<std::size_t>{1000, 3000, 6000};
  const std::vector<int> axes{0, 2, 4};  // 0 = unsharded baseline
  const int task1_periods = smoke ? 2 : 8;
  const int task23_reps = smoke ? 1 : 3;

  bench::JsonReport report("sharding",
                           bench::json_path_from_args(argc, argv));
  report.set_scenario(scenario.name);
  report.add_param("smoke", static_cast<long long>(smoke));
  report.add_param("task1_periods", static_cast<long long>(task1_periods));
  report.add_param("task23_reps", static_cast<long long>(task23_reps));

  core::TextTable table({"task", "metric", "aircraft", "unsharded [ms]",
                         "2x2 [ms]", "4x4 [ms]", "speedup 4x4",
                         "halo cands 4x4"});
  bool outcomes_match = true;
  double headline_speedup = 0.0;  // modeled MIMD task23, 4x4 @ 3000

  for (const std::size_t n : sweep) {
    std::vector<TaskRun> t1_ref, t23_ref, t23_mimd;
    for (const int axis : axes) {
      t1_ref.push_back(run_task1<tasks::ReferenceBackend>(
          scenario, n, axis, task1_periods));
      t23_ref.push_back(run_task23<tasks::ReferenceBackend>(
          scenario, n, axis, task23_reps));
      t23_mimd.push_back(run_task23<tasks::MimdBackend>(
          scenario, n, axis, task23_reps));
      const auto add_json = [&](const char* task, const char* backend,
                                const TaskRun& run,
                                const std::string& digest) {
        report.begin_result();
        report.add_field("task", std::string(task));
        report.add_field("backend", std::string(backend));
        report.add_field("aircraft", static_cast<long long>(n));
        report.add_field("sectors_per_axis", static_cast<long long>(axis));
        report.add_field("wall_ms", run.wall_ms);
        report.add_field("modeled_ms", run.modeled_ms);
        report.add_field("digest", digest);
      };
      add_json("task1", "reference", t1_ref.back(),
               bench::outcome_digest(t1_ref.back().task1));
      add_json("task23", "reference", t23_ref.back(),
               bench::outcome_digest(t23_ref.back().task23));
      add_json("task23", "mimd-xeon", t23_mimd.back(),
               bench::outcome_digest(t23_mimd.back().task23));
      if (axis > 0) {
        outcomes_match &= outcome_task1(t1_ref.front().task1) ==
                          outcome_task1(t1_ref.back().task1);
        outcomes_match &= outcome_task23(t23_ref.front().task23) ==
                          outcome_task23(t23_ref.back().task23);
        outcomes_match &= outcome_task23(t23_mimd.front().task23) ==
                          outcome_task23(t23_mimd.back().task23);
      }
    }

    const auto row = [&](const std::string& task, const std::string& metric,
                         const std::vector<TaskRun>& runs, bool modeled,
                         std::uint64_t halo) {
      const auto ms = [&](const TaskRun& r) {
        return modeled ? r.modeled_ms : r.wall_ms;
      };
      table.begin_row();
      table.add_cell(task);
      table.add_cell(metric);
      table.add_cell(n);
      table.add_cell(ms(runs[0]), 3);
      table.add_cell(ms(runs[1]), 3);
      table.add_cell(ms(runs[2]), 3);
      table.add_cell(ms(runs[2]) > 0.0 ? ms(runs[0]) / ms(runs[2]) : 0.0, 2);
      table.add_cell(halo);
    };
    row("task1", "reference wall", t1_ref, false,
        t1_ref.back().task1.halo_candidates);
    row("task23", "reference wall", t23_ref, false,
        t23_ref.back().task23.halo_candidates);
    row("task23", "xeon16 modeled", t23_mimd, true,
        t23_mimd.back().task23.halo_candidates);

    if (n == 3000) {
      const double base = t23_mimd[0].modeled_ms;
      const double shard = t23_mimd[2].modeled_ms;
      headline_speedup = shard > 0.0 ? base / shard : 0.0;
    }
  }

  std::printf("== Sector-sharding ablation: %s ==\n", scenario.name.c_str());
  std::printf("%s\n", scenario.description.c_str());
  std::printf("Task 1 sums %d consecutive periods; Tasks 2+3 take the best "
              "of %d runs.\n\n",
              task1_periods, task23_reps);
  std::cout << table;

  std::printf("\ntask outcomes identical across sector counts: %s\n",
              outcomes_match ? "yes" : "NO — SHARDING BUG");
  const bool json_ok = report.write();
  if (!outcomes_match || !json_ok) return 1;
  if (smoke) {
    std::printf("smoke mode: end-to-end check only, no speedup gate.\n");
    return 0;
  }
  std::printf("%s @ 3000 aircraft: modeled 16-core Xeon Tasks 2+3 speedup "
              "at 4x4 sectors: %.2fx\n",
              scenario.name.c_str(), headline_speedup);
  std::cout << "\nObservation: sharding removes the striped-lock traffic "
               "on the shared flight\ndatabase — each sector gathers a "
               "snapshot, scans lock-free, and the contention\nterm that "
               "makes the paper's multi-core curve super-linear falls out "
               "of the\nmodeled time. The halos buy that locality at a "
               "small ghost-copy cost.\n";
  return headline_speedup >= 1.5 ? 0 : 1;
}
