// T-D reproduction: the paper's deadline claims (Section 6.2).
//
// "The NVIDIA-CUDA devices never miss a deadline, nor do they come close
// to it" while the multi-core "regularly missed a large number of
// deadlines". We run full major cycles under the real-time executive on
// every platform and count met/missed/skipped task instances.
//
// Expected: zero misses for the three NVIDIA cards, STARAN, and
// ClearSpeed at every swept size; a growing miss+skip count for the Xeon
// from the mid-thousands on.
#include <iostream>

#include "bench/common.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/core/table.hpp"

int main() {
  using namespace atm;
  const std::vector<std::size_t> sweep =
      bench::maybe_smoke({1000, 2000, 4000, 8000});

  core::TextTable table({"platform", "aircraft", "task1 met", "task1 miss",
                         "task1 skip", "task23 met", "task23 miss",
                         "task23 skip", "verdict"});
  for (const std::size_t n : sweep) {
    for (auto& backend :
         tasks::make_platforms(tasks::PlatformSet::kAllPlatforms)) {
      tasks::PipelineConfig cfg;
      cfg.aircraft = n;
      cfg.major_cycles = 1;
      cfg.seed = 42 + n;
      cfg.trace = bench::bench_trace_sink();
      const tasks::PipelineResult result = tasks::run_pipeline(*backend, cfg);
      const rt::TaskRecord& t1 = result.deadlines().task("task1");
      const rt::TaskRecord& t23 = result.deadlines().task("task23");
      table.begin_row();
      table.add_cell(backend->name());
      table.add_cell(n);
      table.add_cell(static_cast<long long>(t1.met));
      table.add_cell(static_cast<long long>(t1.missed));
      table.add_cell(static_cast<long long>(t1.skipped));
      table.add_cell(static_cast<long long>(t23.met));
      table.add_cell(static_cast<long long>(t23.missed));
      table.add_cell(static_cast<long long>(t23.skipped));
      const std::uint64_t bad = result.deadlines().total_missed() +
                                result.deadlines().total_skipped();
      table.add_cell(bad == 0 ? std::string("all deadlines met")
                              : std::to_string(bad) + " missed/skipped");
    }
  }
  std::cout << "\n== Deadline accounting over one 8 s major cycle "
               "(16 x 0.5 s periods) ==\n"
            << table;
  std::cout << "\nPASS criteria: NVIDIA/STARAN/ClearSpeed rows read 'all "
               "deadlines met' at every n;\nthe Xeon accumulates misses "
               "and skips as n grows.\n";
  return 0;
}
